package paella_test

import (
	"testing"

	"paella"
)

func TestServerEndToEnd(t *testing.T) {
	srv := paella.NewServer(paella.ServerConfig{})
	m, err := paella.ZooModel("resnet18")
	if err != nil {
		t.Fatal(err)
	}
	srv.MustDeploy(m)
	cl := srv.NewClient(paella.Hybrid)
	var jct paella.Time
	srv.Go("client", func(p *paella.Proc) {
		start := srv.Now()
		id := cl.Predict(p, "resnet18")
		got := cl.ReadResult(p)
		if got != id {
			t.Errorf("ReadResult = %d, want %d", got, id)
		}
		jct = srv.Now() - start
	})
	srv.Run()
	if jct <= 0 {
		t.Fatal("request did not complete")
	}
	// ResNet-18 executes in ~1.6ms; end-to-end should be close to that.
	if jct < paella.Millisecond || jct > 4*paella.Millisecond {
		t.Fatalf("JCT = %v, want ≈1.6-3ms", jct)
	}
	if len(srv.Records()) != 1 {
		t.Fatalf("records = %d", len(srv.Records()))
	}
	// The collector's Delivered stamp precedes the client's post-read
	// bookkeeping by a few µs of client-side cost.
	if srv.Throughput() <= 0 || srv.P99() > jct || jct-srv.P99() > 50*paella.Microsecond {
		t.Fatalf("stats: tput=%f p99=%v jct=%v", srv.Throughput(), srv.P99(), jct)
	}
}

func TestServerDefaults(t *testing.T) {
	srv := paella.NewServer(paella.ServerConfig{})
	if srv.Now() != 0 {
		t.Fatal("fresh server clock not at zero")
	}
	if err := srv.Deploy(&paella.Model{Name: "broken"}); err == nil {
		t.Fatal("deploying an invalid model succeeded")
	}
}

func TestPolicyConstructors(t *testing.T) {
	for name, p := range map[string]paella.Policy{
		"SRPT":        paella.SRPT(),
		"SJF":         paella.SJF(),
		"FIFO":        paella.FIFO(),
		"RR":          paella.RoundRobin(),
		"SRPTDeficit": paella.SRPTDeficit(100),
	} {
		if p == nil {
			t.Errorf("%s constructor returned nil", name)
		}
	}
}

func TestZoo(t *testing.T) {
	zoo := paella.Zoo()
	if len(zoo) != 8 {
		t.Fatalf("zoo size = %d", len(zoo))
	}
	if _, err := paella.ZooModel("nope"); err == nil {
		t.Fatal("unknown zoo model resolved")
	}
}

func TestDeployAdaptor(t *testing.T) {
	srv := paella.NewServer(paella.ServerConfig{})
	m, err := paella.ZooModel("squeezenet1.1")
	if err != nil {
		t.Fatal(err)
	}
	adaptor := paella.AdaptorFunc(func(p *paella.Proc, ctx *paella.Runtime) {
		s := ctx.StreamCreate()
		s.MemcpyAsync(nil, paella.HostToDevice, m.InputBytes)
		for _, ki := range m.Seq {
			s.LaunchKernelAsync(m.Kernels[ki], paella.LaunchOpts{})
		}
		s.MemcpyAsync(nil, paella.DeviceToHost, m.OutputBytes)
		ctx.DeviceSynchronize(p)
	})
	if err := srv.DeployAdaptor(m, adaptor); err != nil {
		t.Fatal(err)
	}
	cl := srv.NewClient(paella.Hybrid)
	var jct paella.Time
	srv.Go("client", func(p *paella.Proc) {
		start := srv.Now()
		cl.Predict(p, "squeezenet1.1")
		cl.ReadResult(p)
		jct = srv.Now() - start
	})
	srv.Run()
	// SqueezeNet executes in ~4.8ms.
	if jct < 4*paella.Millisecond || jct > 8*paella.Millisecond {
		t.Fatalf("adaptor JCT = %v, want ≈5ms", jct)
	}
}

func TestRemoteClientFacade(t *testing.T) {
	srv := paella.NewServer(paella.ServerConfig{})
	m, err := paella.ZooModel("resnet18")
	if err != nil {
		t.Fatal(err)
	}
	srv.MustDeploy(m)
	rc := srv.NewRemoteClient(paella.DefaultNet())
	done := false
	srv.Go("remote", func(p *paella.Proc) {
		id := rc.Predict(p, "resnet18", m.InputBytes, m.OutputBytes)
		rc.Wait(p, id)
		done = true
	})
	srv.Run()
	if !done {
		t.Fatal("remote request never completed")
	}
}

func TestSplitMIGFacade(t *testing.T) {
	parts, err := paella.SplitMIG(paella.TeslaT4(), []int{10, 30})
	if err != nil || len(parts) != 2 {
		t.Fatalf("SplitMIG = %v, %v", parts, err)
	}
	if _, err := paella.SplitMIG(paella.TeslaT4(), []int{100}); err == nil {
		t.Fatal("oversubscribed MIG split accepted")
	}
}

func TestMultipleModelsMultipleClients(t *testing.T) {
	srv := paella.NewServer(paella.ServerConfig{
		GPU:    paella.TeslaT4(),
		Policy: paella.SRPT(),
	})
	for _, name := range []string{"resnet18", "squeezenet1.1"} {
		m, err := paella.ZooModel(name)
		if err != nil {
			t.Fatal(err)
		}
		srv.MustDeploy(m)
	}
	done := 0
	for i := 0; i < 3; i++ {
		cl := srv.NewClient(paella.Hybrid)
		srv.Go("client", func(p *paella.Proc) {
			for r := 0; r < 4; r++ {
				mdl := "resnet18"
				if r%2 == 1 {
					mdl = "squeezenet1.1"
				}
				cl.Predict(p, mdl)
				cl.ReadResult(p)
				done++
			}
		})
	}
	srv.Run()
	if done != 12 {
		t.Fatalf("completed %d of 12", done)
	}
	if u := srv.GPUUtilization(); u <= 0 || u > 1 {
		t.Fatalf("GPUUtilization = %f", u)
	}
}
