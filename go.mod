module paella

go 1.22
