// Package remote implements the paper's remote-inference extension (§5.1):
// a local client process acts as an RPC server for remote requests and
// transparently forwards them into the Paella dispatcher's shared-memory
// channels. Both ends use kernel-bypass networking in the paper (eRPC); the
// cost model here reflects that: a few µs of per-message CPU plus wire
// latency and bandwidth-limited tensor transfer.
package remote

import (
	"fmt"

	"paella/internal/core"
	"paella/internal/sim"
)

// NetConfig models the network between the remote client and the serving
// host.
type NetConfig struct {
	// RTT is the round-trip wire latency.
	RTT sim.Time
	// BytesPerNs is the link bandwidth (≈12.5 for 100 GbE).
	BytesPerNs float64
	// PerMsgCPU is the per-message CPU cost at each end (eRPC-class
	// kernel-bypass stacks spend ~1-2µs per message).
	PerMsgCPU sim.Time
}

// DefaultNet returns a 100 GbE kernel-bypass network: 10µs RTT, ~2µs of
// CPU per message end-to-end.
func DefaultNet() NetConfig {
	return NetConfig{
		RTT:        10 * sim.Microsecond,
		BytesPerNs: 12.5,
		PerMsgCPU:  2 * sim.Microsecond,
	}
}

// transfer returns the one-way wire time for a message of the given size.
func (n NetConfig) transfer(bytes int) sim.Time {
	d := n.RTT / 2
	if n.BytesPerNs > 0 {
		d += sim.Time(float64(bytes) / n.BytesPerNs)
	}
	return d
}

// Gateway is the RPC server co-located with the dispatcher: it owns a
// local client connection and forwards remote requests into it. One
// gateway serves one remote client (mirroring the paper's per-client
// shared-memory regions).
type Gateway struct {
	env  *sim.Env
	net  NetConfig
	conn *core.ClientConn

	nextID  uint64
	pending map[uint64]*pendingReq
}

type pendingReq struct {
	inputBytes  int
	outputBytes int
	done        *sim.Completion
}

// NewGateway connects a gateway to the dispatcher.
func NewGateway(env *sim.Env, d *core.Dispatcher, net NetConfig) *Gateway {
	g := &Gateway{
		env:     env,
		net:     net,
		conn:    d.Connect(),
		pending: make(map[uint64]*pendingReq),
	}
	g.conn.OnComplete = g.onComplete
	return g
}

func (g *Gateway) onComplete(reqID uint64) {
	pr, ok := g.pending[reqID]
	if !ok {
		panic(fmt.Sprintf("remote: completion for unknown request %d", reqID))
	}
	delete(g.pending, reqID)
	// Response: gateway CPU, then output tensor crosses the wire.
	g.env.After(g.net.PerMsgCPU+g.net.transfer(pr.outputBytes), pr.done.Fire)
}

// Client is the remote inference client.
type Client struct {
	env *sim.Env
	gw  *Gateway

	// results holds fired completions in submission order; ReadResult
	// returns the first completed request.
	inflight map[uint64]*sim.Completion
	order    []uint64
}

// NewClient returns a remote client bound to a gateway.
func NewClient(env *sim.Env, gw *Gateway) *Client {
	return &Client{env: env, gw: gw, inflight: make(map[uint64]*sim.Completion)}
}

// Predict submits a remote inference request for the named model with the
// given tensor sizes, returning a request handle. The input tensor is
// transferred over the wire before the gateway writes it into the
// dispatcher's shared-memory region.
func (c *Client) Predict(p *sim.Proc, modelName string, inputBytes, outputBytes int) uint64 {
	p.Sleep(c.gw.net.PerMsgCPU)
	g := c.gw
	g.nextID++
	id := g.nextID
	done := sim.NewCompletion(c.env)
	c.inflight[id] = done
	c.order = append(c.order, id)
	// Request crosses the wire, then the gateway forwards it locally.
	c.env.After(g.net.transfer(inputBytes), func() {
		g.pending[id] = &pendingReq{inputBytes: inputBytes, outputBytes: outputBytes, done: done}
		ok := g.conn.Submit(core.Request{
			ID:     id,
			Model:  modelName,
			Client: g.conn.ID,
			Submit: g.env.Now(),
		})
		if !ok {
			// Ring full: retry after a short backoff, as the local client
			// library would.
			g.env.After(20*sim.Microsecond, func() { g.retry(id, modelName) })
		}
	})
	return id
}

func (g *Gateway) retry(id uint64, modelName string) {
	ok := g.conn.Submit(core.Request{ID: id, Model: modelName, Client: g.conn.ID, Submit: g.env.Now()})
	if !ok {
		g.env.After(20*sim.Microsecond, func() { g.retry(id, modelName) })
	}
}

// Wait blocks until the given request's response has fully arrived.
func (c *Client) Wait(p *sim.Proc, id uint64) {
	done, ok := c.inflight[id]
	if !ok {
		panic(fmt.Sprintf("remote: wait for unknown request %d", id))
	}
	p.Wait(done)
	delete(c.inflight, id)
}

// Outstanding returns the number of requests awaiting responses.
func (c *Client) Outstanding() int { return len(c.inflight) }
