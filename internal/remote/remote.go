// Package remote implements the paper's remote-inference extension (§5.1):
// a local client process acts as an RPC server for remote requests and
// transparently forwards them into the Paella dispatcher's shared-memory
// channels. Both ends use kernel-bypass networking in the paper (eRPC); the
// cost model here reflects that: a few µs of per-message CPU plus wire
// latency and bandwidth-limited tensor transfer.
//
// The gateway is fault-aware: ring-full submissions retry with seeded,
// jittered exponential backoff up to NetConfig.MaxAttempts; an optional
// NetConfig.RequestTimeout abandons (and cancels) requests the dispatcher
// never answered; and typed dispatcher failures (admission shed, kernel
// timeout, load failure) propagate back over the wire. All three surface as
// the error returned by Client.Wait.
package remote

import (
	"errors"
	"fmt"
	"math/rand"

	"paella/internal/core"
	"paella/internal/sim"
)

// Typed gateway-side failures, returned by Client.Wait. Dispatcher-side
// failures (core.ErrAdmissionShed etc.) pass through unchanged.
var (
	// ErrRingFull: the dispatcher's request ring stayed full through every
	// backoff attempt (NetConfig.MaxAttempts).
	ErrRingFull = errors.New("remote: submit retries exhausted (ring full)")
	// ErrGatewayTimeout: no response within NetConfig.RequestTimeout; the
	// gateway cancelled the request at the dispatcher and gave up.
	ErrGatewayTimeout = errors.New("remote: request timed out at gateway")
)

// NetConfig models the network between the remote client and the serving
// host, plus the gateway's retry/timeout policy.
type NetConfig struct {
	// RTT is the round-trip wire latency.
	RTT sim.Time
	// BytesPerNs is the link bandwidth (≈12.5 for 100 GbE).
	BytesPerNs float64
	// PerMsgCPU is the per-message CPU cost at each end (eRPC-class
	// kernel-bypass stacks spend ~1-2µs per message).
	PerMsgCPU sim.Time

	// RetryBase is the first backoff after a ring-full submit; subsequent
	// attempts double it, each with up-to-one-base of seeded jitter so
	// colliding gateways desynchronize (default 20µs).
	RetryBase sim.Time
	// MaxAttempts bounds submit attempts before the request fails with
	// ErrRingFull (default 8).
	MaxAttempts int
	// RequestTimeout, when positive, bounds the submit→response interval:
	// on expiry the gateway cancels the request at the dispatcher and the
	// client's Wait returns ErrGatewayTimeout. Zero disables the timeout.
	RequestTimeout sim.Time
	// Seed drives the retry jitter; runs with equal seeds are identical.
	Seed int64
}

// DefaultNet returns a 100 GbE kernel-bypass network: 10µs RTT, ~2µs of
// CPU per message end-to-end, 8 jittered submit attempts, no timeout.
func DefaultNet() NetConfig {
	return NetConfig{
		RTT:         10 * sim.Microsecond,
		BytesPerNs:  12.5,
		PerMsgCPU:   2 * sim.Microsecond,
		RetryBase:   20 * sim.Microsecond,
		MaxAttempts: 8,
	}
}

// transfer returns the one-way wire time for a message of the given size.
func (n NetConfig) transfer(bytes int) sim.Time {
	d := n.RTT / 2
	if n.BytesPerNs > 0 {
		d += sim.Time(float64(bytes) / n.BytesPerNs)
	}
	return d
}

// Gateway is the RPC server co-located with the dispatcher: it owns a
// local client connection and forwards remote requests into it. One
// gateway serves one remote client (mirroring the paper's per-client
// shared-memory regions).
type Gateway struct {
	env  *sim.Env
	net  NetConfig
	conn *core.ClientConn
	rng  *rand.Rand

	nextID  uint64
	pending map[uint64]*pendingReq
	// results holds the terminal error (nil on success) for each request
	// whose completion has fired, until the client's Wait collects it.
	results map[uint64]error
	// abandoned marks timed-out requests whose late completion or failure
	// must be swallowed rather than treated as unknown.
	abandoned map[uint64]bool
}

type pendingReq struct {
	inputBytes  int
	outputBytes int
	done        *sim.Completion
}

// NewGateway connects a gateway to the dispatcher.
func NewGateway(env *sim.Env, d *core.Dispatcher, net NetConfig) *Gateway {
	g := &Gateway{
		env:       env,
		net:       net,
		conn:      d.Connect(),
		rng:       rand.New(rand.NewSource(net.Seed ^ 0x67617465)),
		pending:   make(map[uint64]*pendingReq),
		results:   make(map[uint64]error),
		abandoned: make(map[uint64]bool),
	}
	g.conn.OnComplete = g.onComplete
	g.conn.OnFailed = g.onFailed
	return g
}

func (g *Gateway) onComplete(reqID uint64) {
	if g.abandoned[reqID] {
		delete(g.abandoned, reqID)
		return
	}
	pr, ok := g.pending[reqID]
	if !ok {
		panic(fmt.Sprintf("remote: completion for unknown request %d", reqID))
	}
	delete(g.pending, reqID)
	g.results[reqID] = nil
	// Response: gateway CPU, then output tensor crosses the wire.
	g.env.After(g.net.PerMsgCPU+g.net.transfer(pr.outputBytes), pr.done.Fire)
}

// onFailed relays a typed dispatcher failure to the remote client. The
// error response is a small control message — no tensor payload.
func (g *Gateway) onFailed(reqID uint64, err error) {
	if g.abandoned[reqID] {
		delete(g.abandoned, reqID)
		return
	}
	g.fail(reqID, err)
}

// fail terminates a pending request with err and sends the (payload-free)
// error response over the wire.
func (g *Gateway) fail(reqID uint64, err error) {
	pr, ok := g.pending[reqID]
	if !ok {
		return
	}
	delete(g.pending, reqID)
	g.results[reqID] = err
	g.env.After(g.net.PerMsgCPU+g.net.transfer(0), pr.done.Fire)
}

// submit pushes the request into the dispatcher ring, backing off with
// seeded jitter while the ring is full. attempt is 1-based.
func (g *Gateway) submit(id uint64, modelName string, attempt int) {
	ok := g.conn.Submit(core.Request{
		ID:     id,
		Model:  modelName,
		Client: g.conn.ID,
		Submit: g.env.Now(),
	})
	if ok {
		return
	}
	max := g.net.MaxAttempts
	if max <= 0 {
		max = 8
	}
	if attempt >= max {
		g.fail(id, ErrRingFull)
		return
	}
	base := g.net.RetryBase
	if base <= 0 {
		base = 20 * sim.Microsecond
	}
	// Exponential backoff with up-to-one-base of seeded jitter: deterministic
	// per seed, desynchronized across gateways.
	backoff := base<<uint(attempt-1) + sim.Time(g.rng.Int63n(int64(base)))
	g.env.After(backoff, func() { g.submit(id, modelName, attempt+1) })
}

// Client is the remote inference client.
type Client struct {
	env *sim.Env
	gw  *Gateway

	// inflight holds each outstanding request's completion handle.
	inflight map[uint64]*sim.Completion
}

// NewClient returns a remote client bound to a gateway.
func NewClient(env *sim.Env, gw *Gateway) *Client {
	return &Client{env: env, gw: gw, inflight: make(map[uint64]*sim.Completion)}
}

// Predict submits a remote inference request for the named model with the
// given tensor sizes, returning a request handle. The input tensor is
// transferred over the wire before the gateway writes it into the
// dispatcher's shared-memory region.
func (c *Client) Predict(p *sim.Proc, modelName string, inputBytes, outputBytes int) uint64 {
	p.Sleep(c.gw.net.PerMsgCPU)
	g := c.gw
	g.nextID++
	id := g.nextID
	done := sim.NewCompletion(c.env)
	c.inflight[id] = done
	// Request crosses the wire, then the gateway forwards it locally.
	c.env.After(g.net.transfer(inputBytes), func() {
		g.pending[id] = &pendingReq{inputBytes: inputBytes, outputBytes: outputBytes, done: done}
		g.submit(id, modelName, 1)
		if to := g.net.RequestTimeout; to > 0 {
			g.env.After(to, func() {
				if _, live := g.pending[id]; live {
					// Abandon: cancel dispatcher-side work and swallow any
					// late completion it still produces.
					g.abandoned[id] = true
					g.conn.Cancel(id)
					g.fail(id, ErrGatewayTimeout)
				}
			})
		}
	})
	return id
}

// Wait blocks until the given request's response (or error response) has
// fully arrived, and returns the request's terminal error: nil on success,
// ErrRingFull/ErrGatewayTimeout from the gateway, or the dispatcher's typed
// failure (core.ErrAdmissionShed, core.ErrKernelTimeout, ...).
func (c *Client) Wait(p *sim.Proc, id uint64) error {
	done, ok := c.inflight[id]
	if !ok {
		panic(fmt.Sprintf("remote: wait for unknown request %d", id))
	}
	p.Wait(done)
	delete(c.inflight, id)
	err := c.gw.results[id]
	delete(c.gw.results, id)
	return err
}

// Outstanding returns the number of requests awaiting responses.
func (c *Client) Outstanding() int { return len(c.inflight) }
