package remote

import (
	"testing"

	"paella/internal/compiler"
	"paella/internal/core"
	"paella/internal/gpu"
	"paella/internal/model"
	"paella/internal/sched"
	"paella/internal/sim"
)

func setup(t *testing.T) (*sim.Env, *core.Dispatcher) {
	t.Helper()
	env := sim.NewEnv()
	devCfg := gpu.TeslaT4()
	d := core.NewWithDevice(env, devCfg, core.DefaultConfig(sched.NewPaella(10000)))
	ins := compiler.MustCompile(model.TinyNet(), compiler.DefaultConfig(), devCfg, 1)
	if err := d.RegisterModel(ins); err != nil {
		t.Fatal(err)
	}
	d.Start()
	return env, d
}

func TestRemoteRoundTrip(t *testing.T) {
	env, d := setup(t)
	gw := NewGateway(env, d, DefaultNet())
	c := NewClient(env, gw)
	var jct sim.Time
	env.Spawn("remote-client", func(p *sim.Proc) {
		start := env.Now()
		id := c.Predict(p, "tinynet", 28*28*4, 10*4)
		if err := c.Wait(p, id); err != nil {
			t.Errorf("Wait: %v", err)
		}
		jct = env.Now() - start
	})
	env.Run()
	if jct <= 0 {
		t.Fatal("remote request never completed")
	}
	if c.Outstanding() != 0 {
		t.Fatalf("Outstanding = %d", c.Outstanding())
	}
	// Remote adds ≥ RTT + per-message CPU over the local path.
	if jct < DefaultNet().RTT {
		t.Fatalf("JCT %v below network RTT", jct)
	}
}

func TestRemoteVsLocalOverhead(t *testing.T) {
	// Local path.
	env, d := setup(t)
	conn := d.Connect()
	var localDone sim.Time
	conn.OnComplete = func(uint64) { localDone = env.Now() }
	env.At(0, func() {
		conn.Submit(core.Request{ID: 1, Model: "tinynet", Client: conn.ID, Submit: 0})
	})
	env.Run()

	// Remote path on a fresh timeline.
	env2, d2 := setup(t)
	gw := NewGateway(env2, d2, DefaultNet())
	c := NewClient(env2, gw)
	var remoteJCT sim.Time
	env2.Spawn("remote", func(p *sim.Proc) {
		start := env2.Now()
		id := c.Predict(p, "tinynet", 28*28*4, 10*4)
		c.Wait(p, id)
		remoteJCT = env2.Now() - start
	})
	env2.Run()

	extra := remoteJCT - localDone
	// The eRPC-class network adds on the order of the RTT plus message
	// CPU — tens of µs, not the hundreds a gRPC frontend costs.
	if extra < 10*sim.Microsecond || extra > 100*sim.Microsecond {
		t.Fatalf("remote overhead = %v (local %v, remote %v), want 10-100µs",
			extra, localDone, remoteJCT)
	}
}

func TestRemoteManyConcurrent(t *testing.T) {
	env, d := setup(t)
	gw := NewGateway(env, d, DefaultNet())
	c := NewClient(env, gw)
	const n = 50
	completed := 0
	env.Spawn("remote", func(p *sim.Proc) {
		ids := make([]uint64, 0, n)
		for i := 0; i < n; i++ {
			ids = append(ids, c.Predict(p, "tinynet", 28*28*4, 10*4))
		}
		for _, id := range ids {
			if err := c.Wait(p, id); err != nil {
				t.Errorf("Wait(%d): %v", id, err)
			}
			completed++
		}
	})
	env.Run()
	if completed != n {
		t.Fatalf("completed %d of %d", completed, n)
	}
}

func TestLargeTensorTransferCost(t *testing.T) {
	net := DefaultNet()
	small := net.transfer(1 << 10)
	large := net.transfer(16 << 20)
	// 16MB at 12.5 B/ns ≈ 1.34ms — must dominate the RTT.
	if large < 100*small {
		t.Fatalf("bandwidth model broken: 1KB=%v 16MB=%v", small, large)
	}
}

// TestRingFullBackoff regression-tests the gateway's retry policy: with a
// tiny request ring and a stalled dispatcher, submits back off with jittered
// exponential delays and eventually surface ErrRingFull to Wait instead of
// retrying forever (the old behaviour polled every 20µs unboundedly).
func TestRingFullBackoff(t *testing.T) {
	env := sim.NewEnv()
	devCfg := gpu.TeslaT4()
	cfg := core.DefaultConfig(sched.NewPaella(10000))
	cfg.RingCapacity = 2
	d := core.NewWithDevice(env, devCfg, cfg)
	ins := compiler.MustCompile(model.TinyNet(), compiler.DefaultConfig(), devCfg, 1)
	if err := d.RegisterModel(ins); err != nil {
		t.Fatal(err)
	}
	// Dispatcher never started: the ring fills and stays full. The two
	// requests that did enter the ring are reaped by the gateway timeout.
	net := DefaultNet()
	net.MaxAttempts = 4
	net.RequestTimeout = 50 * sim.Millisecond
	gw := NewGateway(env, d, net)
	c := NewClient(env, gw)
	errs := make(map[uint64]error)
	env.Spawn("remote", func(p *sim.Proc) {
		ids := make([]uint64, 0, 4)
		for i := 0; i < 4; i++ {
			ids = append(ids, c.Predict(p, "tinynet", 1<<10, 1<<8))
		}
		for _, id := range ids {
			errs[id] = c.Wait(p, id)
		}
	})
	env.Run()
	ringFull, timedOut := 0, 0
	for _, err := range errs {
		switch err {
		case ErrRingFull:
			ringFull++
		case ErrGatewayTimeout:
			timedOut++
		}
	}
	// Ring holds 2 (timed out); the other 2 must exhaust their attempts.
	if ringFull != 2 || timedOut != 2 {
		t.Fatalf("ErrRingFull=%d ErrGatewayTimeout=%d, want 2 and 2 (errs=%v)",
			ringFull, timedOut, errs)
	}
	if c.Outstanding() != 0 {
		t.Fatalf("Outstanding = %d after failures", c.Outstanding())
	}
}

// TestBackoffJitterDeterministic: equal seeds give identical retry
// timelines; different seeds diverge.
func TestBackoffJitterDeterministic(t *testing.T) {
	run := func(seed int64) sim.Time {
		env := sim.NewEnv()
		devCfg := gpu.TeslaT4()
		cfg := core.DefaultConfig(sched.NewPaella(10000))
		cfg.RingCapacity = 2
		d := core.NewWithDevice(env, devCfg, cfg)
		ins := compiler.MustCompile(model.TinyNet(), compiler.DefaultConfig(), devCfg, 1)
		if err := d.RegisterModel(ins); err != nil {
			t.Fatal(err)
		}
		net := DefaultNet()
		net.MaxAttempts = 5
		net.Seed = seed
		net.RequestTimeout = 50 * sim.Millisecond
		gw := NewGateway(env, d, net)
		c := NewClient(env, gw)
		var end sim.Time
		env.Spawn("remote", func(p *sim.Proc) {
			ids := make([]uint64, 0, 3)
			for i := 0; i < 3; i++ {
				ids = append(ids, c.Predict(p, "tinynet", 1<<10, 1<<8))
			}
			// The third request never fits the 2-slot ring: its Wait returns
			// at the jitter-determined moment the attempts ran out.
			if err := c.Wait(p, ids[2]); err != ErrRingFull {
				t.Errorf("seed %d: Wait(ids[2]) = %v, want ErrRingFull", seed, err)
			}
			end = env.Now()
			c.Wait(p, ids[0])
			c.Wait(p, ids[1])
		})
		env.Run()
		return end
	}
	a, b, c2 := run(1), run(1), run(2)
	if a != b {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	if a == c2 {
		t.Fatalf("different seeds produced identical retry timelines (%v)", a)
	}
}

// TestGatewayTimeout: a request the dispatcher never answers returns
// ErrGatewayTimeout after NetConfig.RequestTimeout.
func TestGatewayTimeout(t *testing.T) {
	env := sim.NewEnv()
	devCfg := gpu.TeslaT4()
	d := core.NewWithDevice(env, devCfg, core.DefaultConfig(sched.NewPaella(10000)))
	ins := compiler.MustCompile(model.TinyNet(), compiler.DefaultConfig(), devCfg, 1)
	if err := d.RegisterModel(ins); err != nil {
		t.Fatal(err)
	}
	// Dispatcher never started: the request sits in the ring forever.
	net := DefaultNet()
	net.RequestTimeout = 5 * sim.Millisecond
	gw := NewGateway(env, d, net)
	c := NewClient(env, gw)
	var got error
	var at sim.Time
	env.Spawn("remote", func(p *sim.Proc) {
		id := c.Predict(p, "tinynet", 1<<10, 1<<8)
		got = c.Wait(p, id)
		at = env.Now()
	})
	env.Run()
	if got != ErrGatewayTimeout {
		t.Fatalf("Wait = %v, want ErrGatewayTimeout", got)
	}
	if at < net.RequestTimeout {
		t.Fatalf("timeout fired at %v, before RequestTimeout %v", at, net.RequestTimeout)
	}
}

func TestWaitUnknownPanics(t *testing.T) {
	env, d := setup(t)
	gw := NewGateway(env, d, DefaultNet())
	c := NewClient(env, gw)
	env.Spawn("bad", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("Wait on unknown id did not panic")
			}
		}()
		c.Wait(p, 999)
	})
	env.Run()
}
