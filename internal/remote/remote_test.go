package remote

import (
	"testing"

	"paella/internal/compiler"
	"paella/internal/core"
	"paella/internal/gpu"
	"paella/internal/model"
	"paella/internal/sched"
	"paella/internal/sim"
)

func setup(t *testing.T) (*sim.Env, *core.Dispatcher) {
	t.Helper()
	env := sim.NewEnv()
	devCfg := gpu.TeslaT4()
	d := core.NewWithDevice(env, devCfg, core.DefaultConfig(sched.NewPaella(10000)))
	ins := compiler.MustCompile(model.TinyNet(), compiler.DefaultConfig(), devCfg, 1)
	if err := d.RegisterModel(ins); err != nil {
		t.Fatal(err)
	}
	d.Start()
	return env, d
}

func TestRemoteRoundTrip(t *testing.T) {
	env, d := setup(t)
	gw := NewGateway(env, d, DefaultNet())
	c := NewClient(env, gw)
	var jct sim.Time
	env.Spawn("remote-client", func(p *sim.Proc) {
		start := env.Now()
		id := c.Predict(p, "tinynet", 28*28*4, 10*4)
		c.Wait(p, id)
		jct = env.Now() - start
	})
	env.Run()
	if jct <= 0 {
		t.Fatal("remote request never completed")
	}
	if c.Outstanding() != 0 {
		t.Fatalf("Outstanding = %d", c.Outstanding())
	}
	// Remote adds ≥ RTT + per-message CPU over the local path.
	if jct < DefaultNet().RTT {
		t.Fatalf("JCT %v below network RTT", jct)
	}
}

func TestRemoteVsLocalOverhead(t *testing.T) {
	// Local path.
	env, d := setup(t)
	conn := d.Connect()
	var localDone sim.Time
	conn.OnComplete = func(uint64) { localDone = env.Now() }
	env.At(0, func() {
		conn.Submit(core.Request{ID: 1, Model: "tinynet", Client: conn.ID, Submit: 0})
	})
	env.Run()

	// Remote path on a fresh timeline.
	env2, d2 := setup(t)
	gw := NewGateway(env2, d2, DefaultNet())
	c := NewClient(env2, gw)
	var remoteJCT sim.Time
	env2.Spawn("remote", func(p *sim.Proc) {
		start := env2.Now()
		id := c.Predict(p, "tinynet", 28*28*4, 10*4)
		c.Wait(p, id)
		remoteJCT = env2.Now() - start
	})
	env2.Run()

	extra := remoteJCT - localDone
	// The eRPC-class network adds on the order of the RTT plus message
	// CPU — tens of µs, not the hundreds a gRPC frontend costs.
	if extra < 10*sim.Microsecond || extra > 100*sim.Microsecond {
		t.Fatalf("remote overhead = %v (local %v, remote %v), want 10-100µs",
			extra, localDone, remoteJCT)
	}
}

func TestRemoteManyConcurrent(t *testing.T) {
	env, d := setup(t)
	gw := NewGateway(env, d, DefaultNet())
	c := NewClient(env, gw)
	const n = 50
	completed := 0
	env.Spawn("remote", func(p *sim.Proc) {
		ids := make([]uint64, 0, n)
		for i := 0; i < n; i++ {
			ids = append(ids, c.Predict(p, "tinynet", 28*28*4, 10*4))
		}
		for _, id := range ids {
			c.Wait(p, id)
			completed++
		}
	})
	env.Run()
	if completed != n {
		t.Fatalf("completed %d of %d", completed, n)
	}
}

func TestLargeTensorTransferCost(t *testing.T) {
	net := DefaultNet()
	small := net.transfer(1 << 10)
	large := net.transfer(16 << 20)
	// 16MB at 12.5 B/ns ≈ 1.34ms — must dominate the RTT.
	if large < 100*small {
		t.Fatalf("bandwidth model broken: 1KB=%v 16MB=%v", small, large)
	}
}

func TestWaitUnknownPanics(t *testing.T) {
	env, d := setup(t)
	gw := NewGateway(env, d, DefaultNet())
	c := NewClient(env, gw)
	env.Spawn("bad", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("Wait on unknown id did not panic")
			}
		}()
		c.Wait(p, 999)
	})
	env.Run()
}
