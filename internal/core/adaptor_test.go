package core

import (
	"testing"

	"paella/internal/compiler"
	"paella/internal/cudart"
	"paella/internal/gpu"
	"paella/internal/model"
	"paella/internal/sched"
	"paella/internal/sim"
)

// seqAdaptor replays a model's standard op sequence through the hooked
// runtime: input copy, kernels on one stream, synchronize.
type seqAdaptor struct {
	m *model.Model
}

func (a *seqAdaptor) Run(p *sim.Proc, ctx *cudart.Context) {
	s := ctx.StreamCreate()
	if a.m.InputBytes > 0 {
		s.MemcpyAsync(nil, cudart.HostToDevice, a.m.InputBytes)
	}
	for _, ki := range a.m.Seq {
		s.LaunchKernelAsync(a.m.Kernels[ki], cudart.LaunchOpts{})
	}
	if !a.m.PinnedOutput && a.m.OutputBytes > 0 {
		s.MemcpyAsync(nil, cudart.DeviceToHost, a.m.OutputBytes)
	}
	ctx.DeviceSynchronize(p)
}

func adaptorSetup(t *testing.T) (*sim.Env, *Dispatcher, *compiler.Instrumented) {
	t.Helper()
	env := sim.NewEnv()
	devCfg := gpu.TeslaT4()
	devCfg.LaunchOverhead = 0
	d := NewWithDevice(env, devCfg, DefaultConfig(sched.NewPaella(10000)))
	ins := compiler.MustCompile(model.TinyNet(), compiler.DefaultConfig(), devCfg, 1)
	d.Start()
	return env, d, ins
}

func TestAdaptorJobCompletes(t *testing.T) {
	env, d, ins := adaptorSetup(t)
	if err := d.RegisterAdaptor("custom", ins, &seqAdaptor{m: ins.Model}); err != nil {
		t.Fatal(err)
	}
	conn := d.Connect()
	var done sim.Time = -1
	conn.OnComplete = func(uint64) { done = env.Now() }
	env.At(0, func() {
		conn.Submit(Request{ID: 1, Model: "custom", Client: 0, Submit: 0})
	})
	env.Run()
	if done < 0 {
		t.Fatal("adaptor job never completed")
	}
	st := d.Stats()
	// TinyNet: 3 kernels + 1 input copy through the waitlist.
	if st.KernelsSent != 3 || st.CopiesSent != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if len(d.inflight) != 0 || !d.mirror.Idle() {
		t.Fatal("dispatcher state not drained")
	}
}

// TestAdaptorMatchesModelPath: the same model served through the adaptor
// path and the standard model path must produce (nearly) identical
// completion times — the transparent-wrapper property of §4.2.
func TestAdaptorMatchesModelPath(t *testing.T) {
	run := func(useAdaptor bool) sim.Time {
		env, d, ins := adaptorSetup(t)
		if useAdaptor {
			if err := d.RegisterAdaptor("tinynet", ins, &seqAdaptor{m: ins.Model}); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := d.RegisterModel(ins); err != nil {
				t.Fatal(err)
			}
		}
		conn := d.Connect()
		var done sim.Time
		conn.OnComplete = func(uint64) { done = env.Now() }
		env.At(0, func() {
			conn.Submit(Request{ID: 1, Model: "tinynet", Client: 0, Submit: 0})
		})
		env.Run()
		return done
	}
	mp := run(false)
	ap := run(true)
	diff := ap - mp
	if diff < 0 {
		diff = -diff
	}
	// Identical GPU work; only µs-scale bookkeeping may differ.
	if diff > 20*sim.Microsecond {
		t.Fatalf("adaptor path %v vs model path %v (Δ %v)", ap, mp, diff)
	}
}

// twoStreamAdaptor launches two independent kernels on separate virtual
// streams: the dispatcher's waitlists must let them overlap on the GPU.
type twoStreamAdaptor struct {
	k *gpu.KernelSpec
}

func (a *twoStreamAdaptor) Run(p *sim.Proc, ctx *cudart.Context) {
	s1, s2 := ctx.StreamCreate(), ctx.StreamCreate()
	s1.LaunchKernelAsync(a.k, cudart.LaunchOpts{})
	s2.LaunchKernelAsync(a.k, cudart.LaunchOpts{})
	ctx.DeviceSynchronize(p)
}

// chainAdaptor launches the same two kernels on ONE stream (serialized).
type chainAdaptor struct {
	k *gpu.KernelSpec
}

func (a *chainAdaptor) Run(p *sim.Proc, ctx *cudart.Context) {
	s := ctx.StreamCreate()
	s.LaunchKernelAsync(a.k, cudart.LaunchOpts{})
	s.LaunchKernelAsync(a.k, cudart.LaunchOpts{})
	ctx.DeviceSynchronize(p)
}

func TestAdaptorMultiStreamOverlaps(t *testing.T) {
	k := &gpu.KernelSpec{
		Name: "branch", Blocks: 4, ThreadsPerBlock: 256,
		RegsPerThread: 16, BlockDuration: 100 * sim.Microsecond,
	}
	mk := func(a Adaptor) sim.Time {
		env := sim.NewEnv()
		devCfg := gpu.TeslaT4()
		devCfg.LaunchOverhead = 0
		d := NewWithDevice(env, devCfg, DefaultConfig(sched.NewPaella(10000)))
		m := &model.Model{Name: "branchy", Kernels: []*gpu.KernelSpec{k}, Seq: []int{0, 0}, PinnedOutput: true}
		ins := compiler.MustInstrument(m, compiler.Config{})
		if _, err := compiler.ProfileModel(ins, devCfg, 1); err != nil {
			t.Fatal(err)
		}
		if err := d.RegisterAdaptor("branchy", ins, a); err != nil {
			t.Fatal(err)
		}
		d.Start()
		conn := d.Connect()
		var done sim.Time
		conn.OnComplete = func(uint64) { done = env.Now() }
		env.At(0, func() {
			conn.Submit(Request{ID: 1, Model: "branchy", Client: 0, Submit: 0})
		})
		env.Run()
		return done
	}
	parallel := mk(&twoStreamAdaptor{k: k})
	serial := mk(&chainAdaptor{k: k})
	// Two 100µs kernels: overlapped ≈ 100µs + overheads, chained ≈ 200µs+.
	if serial < parallel+80*sim.Microsecond {
		t.Fatalf("multi-stream adaptor did not overlap: parallel=%v serial=%v", parallel, serial)
	}
}

// defaultStreamAdaptor exercises Figure 7's legacy rule inside the
// waitlist: a default-stream op serializes against other streams.
type defaultStreamAdaptor struct {
	k *gpu.KernelSpec
}

func (a *defaultStreamAdaptor) Run(p *sim.Proc, ctx *cudart.Context) {
	s1 := ctx.StreamCreate()
	s1.LaunchKernelAsync(a.k, cudart.LaunchOpts{})
	// Default-stream kernel: must wait for s1's kernel, and s1's next
	// kernel must wait for it.
	ctx.DefaultStream().LaunchKernelAsync(a.k, cudart.LaunchOpts{})
	s1.LaunchKernelAsync(a.k, cudart.LaunchOpts{})
	ctx.DeviceSynchronize(p)
}

func TestAdaptorDefaultStreamSerializes(t *testing.T) {
	k := &gpu.KernelSpec{
		Name: "dsk", Blocks: 1, ThreadsPerBlock: 128,
		RegsPerThread: 8, BlockDuration: 100 * sim.Microsecond,
	}
	env := sim.NewEnv()
	devCfg := gpu.TeslaT4()
	devCfg.LaunchOverhead = 0
	d := NewWithDevice(env, devCfg, DefaultConfig(sched.NewPaella(10000)))
	m := &model.Model{Name: "ds", Kernels: []*gpu.KernelSpec{k}, Seq: []int{0, 0, 0}, PinnedOutput: true}
	ins := compiler.MustInstrument(m, compiler.Config{})
	if _, err := compiler.ProfileModel(ins, devCfg, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterAdaptor("ds", ins, &defaultStreamAdaptor{k: k}); err != nil {
		t.Fatal(err)
	}
	d.Start()
	conn := d.Connect()
	var done sim.Time
	conn.OnComplete = func(uint64) { done = env.Now() }
	env.At(0, func() {
		conn.Submit(Request{ID: 1, Model: "ds", Client: 0, Submit: 0})
	})
	env.Run()
	// Full serialization: 3 × 100µs plus small overheads.
	if done < 300*sim.Microsecond {
		t.Fatalf("default-stream rule violated: done at %v, want ≥300µs", done)
	}
	if done > 320*sim.Microsecond {
		t.Fatalf("unexpectedly slow: %v", done)
	}
}

func TestRegisterAdaptorValidation(t *testing.T) {
	env := sim.NewEnv()
	_ = env
	_, d, ins := adaptorSetup(t)
	a := &seqAdaptor{m: ins.Model}
	// No profile.
	bare := compiler.MustInstrument(model.TinyNet(), compiler.DefaultConfig())
	if err := d.RegisterAdaptor("x", bare, a); err == nil {
		t.Fatal("adaptor without profile registered")
	}
	if err := d.RegisterAdaptor("x", ins, a); err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterAdaptor("x", ins, a); err == nil {
		t.Fatal("duplicate adaptor registered")
	}
	// Name collision with a model.
	if err := d.RegisterModel(ins); err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterAdaptor("tinynet", ins, a); err == nil {
		t.Fatal("adaptor shadowing a registered model accepted")
	}
	// Wrong mode.
	cfg := DefaultConfig(nil)
	cfg.Mode = ModeJobByJob
	d2 := NewWithDevice(sim.NewEnv(), gpu.TeslaT4(), cfg)
	if err := d2.RegisterAdaptor("x", ins, a); err == nil {
		t.Fatal("adaptor registered on non-gated dispatcher")
	}
}

// TestAdaptorUnderLoadWithModelJobs mixes adaptor-backed and model-backed
// jobs under contention.
func TestAdaptorUnderLoadWithModelJobs(t *testing.T) {
	env, d, ins := adaptorSetup(t)
	if err := d.RegisterModel(ins); err != nil { // "tinynet"
		t.Fatal(err)
	}
	ins2 := compiler.MustCompile(model.Fig2Job(), compiler.DefaultConfig(), d.Device().Config(), 1)
	if err := d.RegisterAdaptor("fig2-adaptor", ins2, &seqAdaptor{m: ins2.Model}); err != nil {
		t.Fatal(err)
	}
	conn := d.Connect()
	done := 0
	conn.OnComplete = func(uint64) { done++ }
	for i := 0; i < 30; i++ {
		id := uint64(i + 1)
		name := "tinynet"
		if i%3 == 0 {
			name = "fig2-adaptor"
		}
		nm := name
		env.At(sim.Time(i)*30*sim.Microsecond, func() {
			conn.Submit(Request{ID: id, Model: nm, Client: 0, Submit: env.Now()})
		})
	}
	env.Run()
	if done != 30 {
		t.Fatalf("completed %d of 30", done)
	}
}
