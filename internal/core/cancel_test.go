package core

import (
	"testing"

	"paella/internal/model"
	"paella/internal/sim"
)

func TestCancelQueuedJob(t *testing.T) {
	env, d := testSetup(t, gatedCfg(), model.Fig2Job())
	conn := d.Connect()
	finished := map[uint64]sim.Time{}
	conn.OnComplete = func(id uint64) { finished[id] = env.Now() }
	// Fill the device with several jobs, then cancel the last (still
	// queued) one immediately.
	for i := 0; i < 6; i++ {
		id := uint64(i + 1)
		env.At(0, func() {
			conn.Submit(Request{ID: id, Model: "fig2job", Client: 0, Submit: 0})
		})
	}
	env.At(50*sim.Microsecond, func() { conn.Cancel(6) })
	env.Run()
	if len(finished) != 6 {
		t.Fatalf("finished %d of 6", len(finished))
	}
	// The cancelled job must be marked and must have finished far earlier
	// than a full run (8 × 300µs kernels ≈ 2.4ms+).
	var cancelledRec, normalRec *sim.Time
	for _, r := range d.Collector().Records() {
		r := r
		if r.ID == 6 {
			if !r.Cancelled {
				t.Fatal("job 6 not marked cancelled")
			}
			v := r.Delivered
			cancelledRec = &v
		}
		if r.ID == 1 {
			v := r.Delivered
			normalRec = &v
		}
	}
	if cancelledRec == nil || normalRec == nil {
		t.Fatal("records missing")
	}
	if *cancelledRec >= *normalRec {
		t.Fatalf("cancelled job (%v) did not finish before a normal job (%v)",
			*cancelledRec, *normalRec)
	}
}

func TestCancelMidRunDrainsInFlight(t *testing.T) {
	env, d := testSetup(t, gatedCfg(), model.Fig2Job())
	conn := d.Connect()
	var doneAt sim.Time = -1
	conn.OnComplete = func(id uint64) { doneAt = env.Now() }
	env.At(0, func() {
		conn.Submit(Request{ID: 1, Model: "fig2job", Client: 0, Submit: 0})
	})
	// Cancel while the first ~300µs kernel is on the device.
	env.At(150*sim.Microsecond, func() { conn.Cancel(1) })
	env.Run()
	if doneAt < 0 {
		t.Fatal("cancelled job never delivered")
	}
	// The in-flight kernel must drain (finish ≥ its 300µs end) but the
	// remaining 7 kernels are dropped (finish ≪ 2.4ms).
	if doneAt < 290*sim.Microsecond || doneAt > 600*sim.Microsecond {
		t.Fatalf("cancelled mid-run at %v, want ≈300-400µs", doneAt)
	}
	st := d.Stats()
	if st.KernelsSent >= 8 {
		t.Fatalf("cancel did not stop kernel dispatch: %d sent", st.KernelsSent)
	}
	if len(d.inflight) != 0 || !d.mirror.Idle() {
		t.Fatal("state not drained after cancel")
	}
}

func TestCancelUnknownOrDoneIsNoop(t *testing.T) {
	env, d := testSetup(t, gatedCfg(), model.TinyNet())
	conn := d.Connect()
	done := 0
	conn.OnComplete = func(uint64) { done++ }
	env.At(0, func() {
		conn.Submit(Request{ID: 1, Model: "tinynet", Client: 0, Submit: 0})
	})
	env.Run()
	if done != 1 {
		t.Fatal("setup job did not complete")
	}
	// Cancelling a finished job and a never-submitted id must be no-ops.
	conn.Cancel(1)
	conn.Cancel(999)
	env.Run()
	if done != 1 || d.Stats().Completed != 1 {
		t.Fatalf("no-op cancel changed state: done=%d stats=%+v", done, d.Stats())
	}
}

func TestCancelDoubleCancelSafe(t *testing.T) {
	env, d := testSetup(t, gatedCfg(), model.Fig2Job())
	conn := d.Connect()
	done := 0
	conn.OnComplete = func(uint64) { done++ }
	env.At(0, func() {
		conn.Submit(Request{ID: 1, Model: "fig2job", Client: 0, Submit: 0})
	})
	env.At(100*sim.Microsecond, func() { conn.Cancel(1); conn.Cancel(1) })
	env.At(200*sim.Microsecond, func() { conn.Cancel(1) })
	env.Run()
	if done != 1 || d.Stats().Completed != 1 {
		t.Fatalf("double cancel corrupted state: done=%d stats=%+v", done, d.Stats())
	}
}
