package core

import (
	"fmt"
	"sort"

	"paella/internal/compiler"
	"paella/internal/cudart"
	"paella/internal/gpu"
	"paella/internal/metrics"
	"paella/internal/sched"
	"paella/internal/sim"
)

// Adaptor is the user-supplied job definition of the paper's Figure 8: a
// class whose run() issues the job's CUDA operations. Run executes as a
// cooperative coroutine (§4.2) against a *hooked* runtime context — every
// kernel launch and memcpy is intercepted into the job's waitlist, and
// blocking calls (stream/device synchronize) yield back to the dispatcher.
//
// Adaptors must issue kernels from the *instrumented* model registered
// with the dispatcher, must not spin, and must not perform non-CUDA
// blocking work (§4.2's restrictions).
type Adaptor interface {
	// Run issues the job's GPU work on ctx and returns when results are
	// ready (typically after ctx.DeviceSynchronize or a final stream
	// synchronize).
	Run(p *sim.Proc, ctx *cudart.Context)
}

// AdaptorFunc adapts a function to the Adaptor interface.
type AdaptorFunc func(p *sim.Proc, ctx *cudart.Context)

// Run implements Adaptor.
func (f AdaptorFunc) Run(p *sim.Proc, ctx *cudart.Context) { f(p, ctx) }

// adaptorEntry is a registered adaptor-backed model.
type adaptorEntry struct {
	ins     *compiler.Instrumented
	adaptor Adaptor
}

// RegisterAdaptor adds an adaptor-style job definition (Figure 8) under
// the given model name. The Instrumented model supplies the profile for
// SRPT estimates; the adaptor's Run decides the actual operation stream
// (which may use multiple virtual CUDA streams — the dispatcher's
// waitlists enforce stream semantics per Figure 7).
func (d *Dispatcher) RegisterAdaptor(name string, ins *compiler.Instrumented, a Adaptor) error {
	if d.cfg.Mode != ModeGated {
		return fmt.Errorf("core: adaptors require ModeGated, not %v", d.cfg.Mode)
	}
	if ins.Profile == nil {
		return fmt.Errorf("core: adaptor %q registered without a profile", name)
	}
	if _, dup := d.models[name]; dup {
		return fmt.Errorf("core: model %q already registered", name)
	}
	if d.adaptors == nil {
		d.adaptors = make(map[string]*adaptorEntry)
	}
	if _, dup := d.adaptors[name]; dup {
		return fmt.Errorf("core: adaptor %q already registered", name)
	}
	d.adaptors[name] = &adaptorEntry{ins: ins, adaptor: a}
	return nil
}

// wlOpState tracks a waitlisted operation's lifecycle.
type wlOpState int

const (
	wlWaiting    wlOpState = iota // inactive or active, not yet released
	wlDispatched                  // released to the device / DMA engine
	wlDone
)

// wlOp is one intercepted CUDA operation in a job's waitlist (Figure 7's
// entries, with the active/inactive distinction computed on demand).
type wlOp struct {
	kind   jobOpKind
	stream int
	spec   *gpu.KernelSpec // kernels
	bytes  int             // copies
	dir    cudart.MemcpyKind
	// complete unblocks the adaptor-side cudart op when called.
	complete func()
	deps     []*wlOp // default-stream serialization
	state    wlOpState
}

func (o *wlOp) depsDone() bool {
	for _, dep := range o.deps {
		if dep.state != wlDone {
			return false
		}
	}
	return true
}

// waitlist holds a job's intercepted operations, indexed per virtual
// stream, and implements the CUDA stream semantics of Figure 7: only the
// oldest incomplete op of each stream is ever active, the default stream
// (id 0) serializes against all others, and ops become dispatchable only
// when their dependencies complete.
type waitlist struct {
	d   *Dispatcher
	job *Job
	// streams maps virtual stream id → pending ops in issue order.
	streams map[int][]*wlOp
	// streamOrder keeps deterministic iteration.
	streamOrder []int
	// lastDefault is the most recent default-stream op still incomplete.
	pendingTotal int
}

func newWaitlist(d *Dispatcher, j *Job) *waitlist {
	return &waitlist{d: d, job: j, streams: make(map[int][]*wlOp)}
}

// HookKernel implements cudart.LaunchHook.
func (w *waitlist) HookKernel(streamID int, spec *gpu.KernelSpec, complete func()) {
	w.push(&wlOp{kind: opKernel, stream: streamID, spec: spec, complete: complete})
}

// HookMemcpy implements cudart.LaunchHook.
func (w *waitlist) HookMemcpy(streamID int, kind cudart.MemcpyKind, bytes int, complete func()) {
	w.push(&wlOp{kind: opCopyIn, stream: streamID, bytes: bytes, dir: kind, complete: complete})
}

// push appends an op in issue order, computing its default-stream deps
// (stream 0 waits for everything outstanding; others wait for outstanding
// stream-0 work), then pumps.
func (w *waitlist) push(o *wlOp) {
	if o.stream == 0 {
		for _, sid := range w.streamOrder {
			if sid == 0 {
				continue
			}
			for _, other := range w.streams[sid] {
				if other.state != wlDone {
					o.deps = append(o.deps, other)
				}
			}
		}
	} else if def := w.streams[0]; len(def) > 0 {
		for i := len(def) - 1; i >= 0; i-- {
			if def[i].state != wlDone {
				o.deps = append(o.deps, def[i])
				break
			}
		}
	}
	if _, ok := w.streams[o.stream]; !ok {
		w.streamOrder = append(w.streamOrder, o.stream)
		sort.Ints(w.streamOrder)
	}
	w.streams[o.stream] = append(w.streams[o.stream], o)
	w.pendingTotal++
	w.pump()
}

// head returns the stream's oldest incomplete op, or nil.
func (w *waitlist) head(stream int) *wlOp {
	ops := w.streams[stream]
	if len(ops) == 0 {
		return nil
	}
	return ops[0]
}

// activeKernel returns the first active, undispatched kernel op across
// streams (deterministic stream order), or nil.
func (w *waitlist) activeKernel() *wlOp {
	for _, sid := range w.streamOrder {
		o := w.head(sid)
		if o != nil && o.kind == opKernel && o.state == wlWaiting && o.depsDone() {
			return o
		}
	}
	return nil
}

// pump dispatches any active copies immediately (they use the DMA
// engines, not SMs) and reconciles the job's policy membership with
// whether an active kernel awaits release.
func (w *waitlist) pump() {
	for _, sid := range w.streamOrder {
		o := w.head(sid)
		if o == nil || o.kind == opKernel || o.state != wlWaiting || !o.depsDone() {
			continue
		}
		o.state = wlDispatched
		w.d.stats.CopiesSent++
		op := o
		w.d.env.After(w.d.memcpyDuration(o.bytes), func() { w.opFinished(op) })
	}
	w.reconcilePolicy()
}

// reconcilePolicy adds or removes the job from the scheduling policy so
// that membership ⇔ an active kernel is waiting for release.
func (w *waitlist) reconcilePolicy() {
	want := w.activeKernel() != nil
	switch {
	case want && !w.job.inPolicy:
		w.job.entry.Remaining = w.job.Ins.Profile.RemainingAfter(w.job.execsDone)
		w.d.cfg.Policy.Add(&w.job.entry)
		w.job.inPolicy = true
		w.d.wakeNow()
	case !want && w.job.inPolicy:
		w.d.cfg.Policy.Remove(&w.job.entry)
		w.job.inPolicy = false
	}
}

// opFinished marks an op complete, pops it from its stream, unblocks the
// adaptor-side runtime op, and pumps successors.
func (w *waitlist) opFinished(o *wlOp) {
	if o.state != wlDispatched {
		panic("core: waitlist op finished in state " + fmt.Sprint(o.state))
	}
	o.state = wlDone
	ops := w.streams[o.stream]
	if len(ops) == 0 || ops[0] != o {
		panic(fmt.Sprintf("core: waitlist stream %d completed out of order", o.stream))
	}
	w.streams[o.stream] = ops[1:]
	w.pendingTotal--
	o.complete()
	w.pump()
}

// admitAdaptor starts an adaptor-backed request: a fresh hooked runtime
// context plus a coroutine running the user's Run (§4.2's architecture).
func (d *Dispatcher) admitAdaptor(req Request, entry *adaptorEntry) {
	now := d.env.Now()
	j := &Job{
		Req:  req,
		Ins:  entry.ins,
		conn: d.clients[req.Client],
		rec: metrics.JobRecord{
			ID:          req.ID,
			Model:       req.Model,
			Client:      req.Client,
			Tenant:      req.Tenant,
			Submit:      req.Submit,
			Admit:       now,
			FrameworkNs: d.cfg.AdmitCost,
		},
	}
	j.entry = sched.JobEntry{
		ID:        req.ID,
		Client:    req.Client,
		Arrival:   now,
		Total:     entry.ins.Profile.TotalTime(),
		Remaining: entry.ins.Profile.TotalTime(),
		Deadline:  req.Deadline,
		Payload:   j,
	}
	d.cfg.Policy.JobAdmitted(req.Client)
	j.wl = newWaitlist(d, j)
	jctx := cudart.NewContext(d.env, d.dev, cudart.Config{
		MemcpyLatency:  d.cfg.MemcpyLatency,
		PCIeBytesPerNs: d.cfg.PCIeBytesPerNs,
	})
	jctx.SetHook(j.wl)
	d.stats.Admitted++
	adaptor := entry.adaptor
	d.env.Spawn("job-"+req.Model, func(p *sim.Proc) {
		adaptor.Run(p, jctx)
		if j.wl.pendingTotal != 0 {
			panic(fmt.Sprintf("core: adaptor %q returned with %d ops pending (missing synchronize?)",
				req.Model, j.wl.pendingTotal))
		}
		d.finish(j)
	})
}
