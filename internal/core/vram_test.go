package core

import (
	"testing"

	"paella/internal/model"
	"paella/internal/sched"
	"paella/internal/sim"
	"paella/internal/vram"
)

// weighted returns a TinyNet clone with a name and a weight footprint.
func weighted(name string, weightBytes int) *model.Model {
	m := model.TinyNet()
	m.Name = name
	m.WeightBytes = weightBytes
	return m
}

func vramCfg(capacity int64) Config {
	cfg := DefaultConfig(sched.NewPaella(100))
	cfg.VRAM = &vram.Config{CapacityBytes: capacity, BlockBytes: 1 << 20}
	return cfg
}

// TestVRAMColdStartThenWarm: the first request for a model pays the weight
// load (visible in its record and its JCT); a later request hits warm.
func TestVRAMColdStartThenWarm(t *testing.T) {
	const weights = 24 << 20
	env, d := testSetup(t, vramCfg(64<<20), weighted("m", weights))
	conn := d.Connect()
	submit(env, conn, 1, "m", 0)
	submit(env, conn, 2, "m", 20*sim.Millisecond)
	env.Run()

	recs := d.Collector().Records()
	if len(recs) != 2 {
		t.Fatalf("completed %d jobs, want 2", len(recs))
	}
	cold, warm := recs[0], recs[1]
	if cold.ID != 1 {
		cold, warm = warm, cold
	}
	if !cold.ColdStart || cold.LoadNs <= 0 {
		t.Fatalf("first request not a cold start: %+v", cold)
	}
	if warm.ColdStart || warm.LoadNs != 0 {
		t.Fatalf("second request not warm: %+v", warm)
	}
	// The load is a 24 MiB H2D transfer; the cold JCT must carry it.
	loadWire := d.PCIe().Duration(weights)
	if cold.LoadNs < loadWire {
		t.Fatalf("cold LoadNs %v < wire time %v", cold.LoadNs, loadWire)
	}
	if cold.JCT() < warm.JCT()+loadWire/2 {
		t.Fatalf("cold JCT %v not visibly above warm JCT %v", cold.JCT(), warm.JCT())
	}
	st := d.VRAM().Stats()
	if st.Loads != 1 || st.ColdPins != 1 || st.WarmHits != 1 {
		t.Fatalf("vram stats = %+v", st)
	}
	if c := d.Collector().ColdStarts(); c != 1 {
		t.Fatalf("collector cold starts = %d, want 1", c)
	}
}

// TestVRAMEvictionAndReload: with room for only one model, alternating
// requests evict and re-page weights each switch.
func TestVRAMEvictionAndReload(t *testing.T) {
	env, d := testSetup(t, vramCfg(32<<20),
		weighted("a", 24<<20), weighted("b", 24<<20))
	conn := d.Connect()
	submit(env, conn, 1, "a", 0)
	submit(env, conn, 2, "b", 20*sim.Millisecond)
	submit(env, conn, 3, "a", 40*sim.Millisecond)
	env.Run()

	if n := d.Collector().Len(); n != 3 {
		t.Fatalf("completed %d jobs, want 3", n)
	}
	st := d.VRAM().Stats()
	if st.Loads != 3 {
		t.Fatalf("loads = %d, want 3 (a, b, a again)", st.Loads)
	}
	if st.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", st.Evictions)
	}
	for _, r := range d.Collector().Records() {
		if !r.ColdStart {
			t.Fatalf("request %d should have cold-started: %+v", r.ID, r)
		}
	}
	d.VRAM().CheckInvariants()
}

// TestVRAMPinnedLoadWaits: when the running model pins all of VRAM, a
// competing model's load parks until the pin drops — and then completes.
// This is the no-deadlock property of the pending-load retry path.
func TestVRAMPinnedLoadWaits(t *testing.T) {
	env, d := testSetup(t, vramCfg(32<<20),
		weighted("a", 24<<20), weighted("b", 24<<20))
	conn := d.Connect()
	dA := submit(env, conn, 1, "a", 0)
	dB := submit(env, conn, 2, "b", 0)
	env.Run()

	if *dA < 0 || *dB < 0 {
		t.Fatalf("jobs did not both complete (a=%v b=%v): pending load stuck", *dA, *dB)
	}
	// b could only load after a finished and was evicted.
	if *dB <= *dA {
		t.Fatalf("b delivered at %v, before a at %v", *dB, *dA)
	}
	st := d.VRAM().Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	d.VRAM().CheckInvariants()
}

// TestVRAMZeroWeightModelsUnaffected: models without a weight footprint
// never cold-start even under a tiny VRAM budget.
func TestVRAMZeroWeightModelsUnaffected(t *testing.T) {
	env, d := testSetup(t, vramCfg(1<<20), model.TinyNet())
	conn := d.Connect()
	submit(env, conn, 1, "tinynet", 0)
	env.Run()
	recs := d.Collector().Records()
	if len(recs) != 1 || recs[0].ColdStart || recs[0].LoadNs != 0 {
		t.Fatalf("records = %+v", recs)
	}
}

// TestVRAMWarmTiebreakUpgrade: a job admitted cold is upgraded to warm in
// the policy order once its weights land (entry re-added with Warm set).
func TestVRAMWarmTiebreakUpgrade(t *testing.T) {
	env, d := testSetup(t, vramCfg(64<<20), weighted("m", 24<<20))
	conn := d.Connect()
	submit(env, conn, 1, "m", 0)
	env.Run()
	recs := d.Collector().Records()
	if len(recs) != 1 || !recs[0].ColdStart {
		t.Fatalf("records = %+v", recs)
	}
	// Kernel dispatch cannot precede residency: FirstDispatch is at or
	// after the admission-to-resident wait.
	if recs[0].FirstDispatch < recs[0].Admit+recs[0].LoadNs {
		t.Fatalf("kernel dispatched at %v before weights resident at %v",
			recs[0].FirstDispatch, recs[0].Admit+recs[0].LoadNs)
	}
}
