package core

import (
	"paella/internal/gpu"
	"paella/internal/rbtree"
	"paella/internal/sched"
	"paella/internal/sim"
	"paella/internal/trace"
)

// Dynamic batching (perf extension of §6's software-defined dispatch):
// same-model jobs whose cursors sit at the same kernel position coalesce
// into one batched launch with a widened grid (blocks × batch size) and the
// profiled sub-linear per-block batch curve (compiler.Profile.BatchScale).
// Formation is scheduler-driven — the policy's pick stays the batch head,
// partners ride along in request-id order — and SLO-aware: a lone ready
// kernel may be held open for partners only while the ready queue is deep
// enough to pay for the wait and the hold fits inside the head's deadline
// slack. Everything here is inert unless Config.MaxBatch > 1; the disabled
// dispatch path is byte-identical to the unbatched dispatcher.
//
// Batches formed here live for one launch: the group drains as a unit.
// The generative engine (internal/llm, DESIGN.md §10) lifts that rule to
// iteration boundaries — continuous batching rebuilds the decode batch
// after every completed iteration, reusing this file's fairness semantics
// via sched.BatchDispatched and the same profiled batch curve.

// batchKey groups batch-compatible jobs: same model, same position in the
// kernel sequence (so the pending launches are clones of one spec).
type batchKey struct {
	model string
	pos   int
}

// batchSpecKey caches widened kernel clones per (base spec, width).
type batchSpecKey struct {
	spec *gpu.KernelSpec
	n    int
}

// batchTraceBase offsets batch async-span ids away from request ids.
const batchTraceBase uint64 = 1 << 32

func (d *Dispatcher) batchKeyOf(j *Job) batchKey {
	return batchKey{model: j.Req.Model, pos: j.cursor}
}

// policyAdd makes the job visible to the picker and, when batching is on,
// to the same-kernel batch index. All gated model-path Add sites route
// through here (adaptor waitlists keep their own reconcile path and never
// enter the batch index).
func (d *Dispatcher) policyAdd(j *Job) {
	d.cfg.Policy.Add(&j.entry)
	j.inPolicy = true
	j.readyAt = d.env.Now()
	if d.batchIndex != nil && j.wl == nil {
		d.batchIndexAdd(j)
	}
}

// policyRemove hides the job from the picker and tears down its batching
// state (index membership and any open hold).
func (d *Dispatcher) policyRemove(j *Job) {
	d.cfg.Policy.Remove(&j.entry)
	j.inPolicy = false
	if d.batchIndex != nil && j.batchNode != nil {
		d.releaseHold(j)
		d.batchIndexRemove(j)
	}
}

// batchIndexAdd registers the ready job under its batch key. A partner
// arriving is what a held job has been waiting for: the hold releases and
// the next dispatch pass forms the batch.
func (d *Dispatcher) batchIndexAdd(j *Job) {
	key := d.batchKeyOf(j)
	t := d.batchIndex[key]
	if t == nil {
		t = rbtree.New(func(a, b *Job) bool { return a.Req.ID < b.Req.ID })
		d.batchIndex[key] = t
	}
	j.batchNode = t.Insert(j)
	if held := d.holds[key]; held != nil && held != j {
		d.releaseHold(held)
		d.wakeNow()
	}
}

func (d *Dispatcher) batchIndexRemove(j *Job) {
	key := d.batchKeyOf(j)
	t := d.batchIndex[key]
	t.Delete(j.batchNode)
	j.batchNode = nil
	if t.Len() == 0 {
		delete(d.batchIndex, key)
	}
}

// releaseHold reopens a held job for dispatch (a partner arrived, or the
// job is leaving the policy altogether). The wait is attributed to the
// job's record; the generation bump disarms the pending expiry timer.
func (d *Dispatcher) releaseHold(j *Job) {
	if !j.held {
		return
	}
	j.held = false
	j.holdGen++
	j.rec.BatchWaitNs += d.env.Now() - j.holdStart
	// Restart the head-of-line clock: the hold is already attributed as
	// batch wait, so the HoL gap must not double-count it.
	j.readyAt = d.env.Now()
	delete(d.holds, d.batchKeyOf(j))
}

// expireHold is the hold timer's landing: the window closed partnerless,
// so the job dispatches solo (noHold keeps it from re-arming until it has
// actually dispatched once).
func (d *Dispatcher) expireHold(j *Job, gen uint64) {
	if !j.held || j.holdGen != gen {
		return // released by a partner, dispatched, or superseded
	}
	j.held = false
	j.holdGen++
	j.noHold = true
	j.rec.BatchWaitNs += d.env.Now() - j.holdStart
	j.readyAt = d.env.Now()
	delete(d.holds, d.batchKeyOf(j))
	d.wakeNow()
}

// batchHoldWindow sizes the adaptive formation window for a lone ready
// kernel: zero (dispatch now) when holds are disabled or the ready queue is
// shallow; otherwise a wait that grows with queue depth — deeper backlog
// means partners are likelier to arrive in time — capped at BatchWindow and
// at half the job's deadline slack, so batching never spends latency an SLO
// cannot afford.
func (d *Dispatcher) batchHoldWindow(j *Job) sim.Time {
	if d.cfg.BatchWindow <= 0 {
		return 0
	}
	minDepth := d.cfg.BatchMinDepth
	if minDepth <= 0 {
		minDepth = 2 * d.cfg.MaxBatch
	}
	depth := d.cfg.Policy.Len()
	if depth < minDepth {
		return 0
	}
	wait := d.cfg.BatchWindow * sim.Time(depth) / sim.Time(2*minDepth)
	if wait > d.cfg.BatchWindow {
		wait = d.cfg.BatchWindow
	}
	if j.entry.Deadline > 0 {
		slack := j.entry.Deadline - d.env.Now() - j.entry.Remaining
		if slack <= 0 {
			return 0
		}
		if wait > slack/2 {
			wait = slack / 2
		}
	}
	return wait
}

// tryBatch is the dispatch loop's batching gate for a picked, fitting job.
// It either dispatches the job as the head of a batched launch (partners
// ready now), holds it open for partners (adaptive window), or reports
// false so the caller releases it solo.
func (d *Dispatcher) tryBatch(j *Job) bool {
	key := d.batchKeyOf(j)
	t := d.batchIndex[key]
	if t == nil || j.batchNode == nil {
		return false
	}
	if t.Len() >= 2 {
		members := append(d.batchScratch[:0], j)
		for n := t.Min(); n != nil && len(members) < d.cfg.MaxBatch; n = n.Next() {
			if p := n.Item; p != j {
				members = append(members, p)
			}
		}
		// Keep the widened grid inside the §6 dispatch budget: the batch may
		// occupy headroom plus the overshoot allowance, never less than the
		// solo launch the gate already admitted.
		base := j.currentKernel()
		if nCap := (d.mirror.headroomBlocks() + d.mirror.overshoot) / base.Blocks; nCap < len(members) {
			if nCap < 1 {
				nCap = 1
			}
			members = members[:nCap]
		}
		if len(members) >= 2 {
			d.dispatchBatch(members)
			return true
		}
		return false
	}
	// Alone at this key: consider holding the window open for partners.
	if j.noHold {
		return false
	}
	wait := d.batchHoldWindow(j)
	if wait <= 0 {
		return false
	}
	j.held = true
	j.holdGen++
	gen := j.holdGen
	j.holdStart = d.env.Now()
	d.holds[key] = j
	d.stats.BatchHolds++
	d.env.After(wait, func() { d.expireHold(j, gen) })
	return true
}

// batchedSpec returns the cached widened clone of base for width n.
func (d *Dispatcher) batchedSpec(base *gpu.KernelSpec, n int, scale float64) *gpu.KernelSpec {
	key := batchSpecKey{spec: base, n: n}
	if s := d.batchSpecs[key]; s != nil {
		return s
	}
	s := base.Batched(n, scale)
	d.batchSpecs[key] = s
	return s
}

// dispatchBatch releases one batched kernel launch covering every member.
// The per-decision dispatch cost was charged once by the loop — that
// amortization is the dispatcher-side win — and is attributed to members
// pro rata. Fairness accounting still charges every member's client
// (sched.BatchDispatched), and the launch's SRPT position is the
// pessimistic member's (sched.BatchRemaining).
func (d *Dispatcher) dispatchBatch(members []*Job) {
	head := members[0]
	base := head.currentKernel()
	n := len(members)
	bspec := d.batchedSpec(base, n, head.Ins.Profile.BatchScale(base.Name, n))
	now := d.env.Now()

	entries := d.entryScratch[:0]
	for _, m := range members {
		entries = append(entries, &m.entry)
	}
	sched.BatchDispatched(d.cfg.Policy, entries)
	batchRem := sched.BatchRemaining(entries)

	perJobSched := (d.cfg.SchedDelay + d.cfg.DispatchCost) / sim.Time(n)
	for _, m := range members {
		d.policyRemove(m)
		m.noHold = false
		if m.rec.FirstDispatch == 0 {
			m.rec.FirstDispatch = now
		} else if m.readyAt > 0 {
			m.rec.HoLNs += now - m.readyAt
		}
		m.readyAt = 0
		m.rec.SchedNs += perJobSched
		if m.rec.BatchSize < n {
			m.rec.BatchSize = n
		}
		m.kernelsInFlight++
		if m.isFinalGPUOp() {
			d.ringBell(m)
		}
	}

	var actBytes int64
	if d.vramMgr != nil {
		// Per-member activation scratch: weights are shared across the batch
		// (one resident copy) but every member brings its own input/output
		// tensors to the device for the widened launch.
		actBytes = int64(n) * head.Ins.Model.ActivationBytes()
		d.vramMgr.ReserveActivations(actBytes)
	}

	d.nextKernelID++
	kid := d.nextKernelID
	fl := d.newInflight()
	fl.job, fl.spec, fl.sentAt, fl.actBytes = head, bspec, now, actBytes
	fl.members = append(fl.members[:0], members...)
	d.inflight[kid] = fl
	d.mirror.Reserve(bspec)
	d.stats.KernelsSent++
	d.stats.Batches++
	d.stats.BatchedJobs += uint64(n)
	d.mt.Observe(d.mtBatchW, now, float64(n))
	if d.rec != nil {
		d.rec.InstantArgs(d.schedTrack, bspec.Name, "batch-dispatch", now,
			trace.Int("size", int64(n)),
			trace.Int("head", int64(head.Req.ID)),
			trace.Int("kernel_id", int64(kid)),
			trace.Str("policy", d.cfg.Policy.Name()),
			trace.Int("batch_remaining_ns", int64(batchRem)))
	}
	d.traceCounters()
	d.queueCursor = (d.queueCursor + 1) % d.dev.NumQueues()
	l := d.newLaunch()
	l.Spec, l.KernelID, l.JobTag, l.Instrumented = bspec, kid, head.Req.Model, true
	fl.launch = l
	d.dev.Submit(d.queueCursor, l)
	if d.cfg.KernelTimeout > 0 {
		bound := sim.Time(bspec.Blocks)*bspec.BlockDuration + d.cfg.KernelTimeout
		bound <<= uint(head.retries)
		d.env.DoCallAfter(bound, watchdogFire, d, uint64(kid))
	}
}

// batchComplete fans a finished batched launch out to its members: one
// completed kernel execution each, in formation order. Online profile
// refinement is skipped — the observed span measures the widened launch,
// not the solo kernel the profile models.
func (d *Dispatcher) batchComplete(kid uint32, fl *inflightKernel) {
	now := d.env.Now()
	if fl.actBytes > 0 {
		d.vramMgr.ReleaseActivations(fl.actBytes)
	}
	if d.rec != nil {
		d.rec.AsyncArgs(d.traceProc, batchTraceBase|uint64(kid), fl.spec.Name, "batch",
			fl.sentAt, now, trace.Int("size", int64(len(fl.members))))
		for _, m := range fl.members {
			d.rec.Async(d.traceProc, m.Req.ID, "batch-exec", "job", fl.sentAt, now)
		}
	}
	for _, m := range fl.members {
		m.execsDone++
		m.kernelsInFlight--
	}
	for _, m := range fl.members {
		d.opDone(m)
	}
	d.traceCounters()
}

// batchTimeout is the watchdog recovery path for a batched launch (the
// mirror was already reconciled against the widened spec by the caller).
// Never-placed batches re-dispatch each member solo through the policy —
// re-batching a launch the device may be wedged on would repeat the fault
// at full width — while partially-placed batches force-complete every
// member, mirroring the unbatched lost-completion rule.
func (d *Dispatcher) batchTimeout(fl *inflightKernel) {
	if fl.actBytes > 0 {
		d.vramMgr.ReleaseActivations(fl.actBytes)
	}
	for _, m := range fl.members {
		m.kernelsInFlight--
	}
	max := d.cfg.MaxKernelRetries
	if max <= 0 {
		max = 3
	}
	for _, m := range fl.members {
		if m.cancelled || m.failErr != nil {
			if m.kernelsInFlight == 0 {
				d.finish(m)
			}
			continue
		}
		if fl.placed == 0 {
			if m.retries >= max {
				d.failJob(m, ErrKernelTimeout)
				continue
			}
			m.retries++
			d.stats.KernelRetries++
			d.mt.Add(d.mtRetries, d.env.Now(), 1)
			m.entry.Remaining = m.Ins.Profile.RemainingAfter(m.execsDone)
			d.policyAdd(m)
			continue
		}
		m.execsDone++
		d.opDone(m)
	}
	d.traceCounters()
	d.wakeNow()
}
