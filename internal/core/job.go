package core

import (
	"fmt"
	"sort"

	"paella/internal/channel"
	"paella/internal/compiler"
	"paella/internal/cudart"
	"paella/internal/gpu"
	"paella/internal/metrics"
	"paella/internal/rbtree"
	"paella/internal/sched"
	"paella/internal/sim"
	"paella/internal/trace"
	"paella/internal/vram"
)

type jobOpKind int

const (
	opCopyIn jobOpKind = iota
	opKernel
	opCopyOut
)

type jobOp struct {
	kind  jobOpKind
	spec  *gpu.KernelSpec // opKernel only
	bytes int             // copies only
}

// Job is one admitted inference request moving through the dispatcher.
type Job struct {
	Req  Request
	Ins  *compiler.Instrumented
	conn *ClientConn

	ops       []jobOp
	cursor    int
	execsDone int // kernel executions completed (SRPT progress)

	entry    sched.JobEntry
	inPolicy bool
	// cancelled marks a job aborted by the client; kernelsInFlight counts
	// its kernels currently on the device (which must drain first);
	// finished guards against double completion (e.g. cancel racing an
	// in-flight copy's timer).
	cancelled       bool
	finished        bool
	kernelsInFlight int
	// failErr, when non-nil, is the typed error the job will terminate
	// with once its in-flight kernels drain.
	failErr error
	// retries counts watchdog-triggered kernel re-dispatches (bounded by
	// Config.MaxKernelRetries).
	retries int
	// vramPinned marks a job holding a residency pin on its model's
	// weights (released at finish).
	vramPinned bool

	// Dynamic-batching state (inert unless Config.MaxBatch > 1). held
	// marks a job parked by the batch-formation window: it stays in the
	// policy order but the dispatch gate skips it until a partner arrives
	// or the hold expires. holdGen invalidates stale hold timers;
	// holdStart stamps the hold for per-member wait attribution; noHold
	// marks a job whose hold expired partnerless — it dispatches solo
	// rather than re-arming (reset on dispatch). batchNode is the job's
	// handle in the dispatcher's same-kernel batch index.
	held      bool
	holdGen   uint64
	holdStart sim.Time
	noHold    bool
	batchNode *rbtree.Node[*Job]

	// readyAt stamps the job's latest entry into the scheduling policy (or
	// the end of its latest batch hold). Dispatch consumes it into
	// rec.HoLNs once the job is past its first dispatch — the ready-but-
	// ungated head-of-line gap of the latency anatomy.
	readyAt sim.Time

	// wl holds the Figure 7 waitlists for adaptor-backed jobs; nil for the
	// standard model path (whose ops follow the cursor above).
	wl *waitlist

	stream *cudart.Stream // ablation modes
	rec    metrics.JobRecord
	belled bool
}

// buildOps synthesizes the job's operation list from the model: input
// copy, the kernel sequence, and (unless the output is pinned) the output
// copy. instrumented selects the instrumented kernel clones (ModeGated) or
// the originals (ablation modes, which do not consume notifications).
func buildOps(ins *compiler.Instrumented, instrumented bool) []jobOp {
	m := ins.Model
	if !instrumented {
		m = ins.Original
	}
	ops := make([]jobOp, 0, len(m.Seq)+2)
	if m.InputBytes > 0 {
		ops = append(ops, jobOp{kind: opCopyIn, bytes: m.InputBytes})
	}
	for _, ki := range m.Seq {
		ops = append(ops, jobOp{kind: opKernel, spec: m.Kernels[ki]})
	}
	if !m.PinnedOutput && m.OutputBytes > 0 {
		ops = append(ops, jobOp{kind: opCopyOut, bytes: m.OutputBytes})
	}
	return ops
}

// currentKernel returns the spec of the job's current (kernel) op.
func (j *Job) currentKernel() *gpu.KernelSpec {
	op := &j.ops[j.cursor]
	if op.kind != opKernel {
		panic("core: current op is not a kernel")
	}
	return op.spec
}

// peekKernel returns the kernel the dispatcher would release next: the
// cursor op for model jobs, or the first active waitlisted kernel for
// adaptor jobs.
func (j *Job) peekKernel() *gpu.KernelSpec {
	if j.wl != nil {
		o := j.wl.activeKernel()
		if o == nil {
			panic("core: job in policy without an active kernel")
		}
		return o.spec
	}
	return j.currentKernel()
}

// isFinalGPUOp reports whether the current op is the job's last.
func (j *Job) isFinalGPUOp() bool { return j.cursor == len(j.ops)-1 }

// admit accepts one request from a client ring (already charged AdmitCost)
// and starts its first operation. Runs in dispatcher-loop context.
func (d *Dispatcher) admit(p *sim.Proc, req Request) {
	conn := d.clients[req.Client]
	if conn.dead {
		// The client disconnected after submitting: the request fails
		// silently (no one is listening), but still leaves a typed record
		// so no job is ever unaccounted for.
		d.rejectRequest(req, ErrClientDisconnected)
		return
	}
	if d.cfg.MaxLiveJobs > 0 &&
		int(d.stats.Admitted-d.stats.Completed-d.stats.Failed) >= d.cfg.MaxLiveJobs {
		// Load shedding (§6's software-defined control applied to
		// admission): refuse immediately rather than queueing into a
		// latency collapse. The client gets a typed, retryable error.
		d.stats.Shed++
		if d.rec != nil {
			d.rec.InstantArgs(d.admitTrack, req.Model, "shed", d.env.Now(),
				trace.Int("id", int64(req.ID)), trace.Int("live", int64(d.cfg.MaxLiveJobs)))
		}
		d.mt.Add(d.mtShed, d.env.Now(), 1)
		d.rejectRequest(req, ErrAdmissionShed)
		return
	}
	ins, ok := d.models[req.Model]
	if !ok {
		if ae, isAdaptor := d.adaptors[req.Model]; isAdaptor {
			d.admitAdaptor(req, ae)
			return
		}
		panic(fmt.Sprintf("core: request for unregistered model %q", req.Model))
	}
	now := d.env.Now()
	j := &Job{
		Req:  req,
		Ins:  ins,
		conn: d.clients[req.Client],
		ops:  buildOps(ins, d.cfg.Mode == ModeGated),
		rec: metrics.JobRecord{
			ID:          req.ID,
			Model:       req.Model,
			Client:      req.Client,
			Tenant:      req.Tenant,
			Submit:      req.Submit,
			Admit:       now,
			FrameworkNs: d.cfg.AdmitCost,
		},
	}
	d.stats.Admitted++
	if d.rec != nil {
		d.rec.InstantArgs(d.admitTrack, req.Model, "admit", now,
			trace.Int("id", int64(req.ID)), trace.Int("client", int64(req.Client)))
	}
	d.traceCounters()
	switch d.cfg.Mode {
	case ModeGated:
		j.entry = sched.JobEntry{
			ID:        req.ID,
			Client:    req.Client,
			Arrival:   now,
			Total:     ins.Profile.TotalTime(),
			Remaining: ins.Profile.TotalTime(),
			Deadline:  req.Deadline,
			Payload:   j,
		}
		d.cfg.Policy.JobAdmitted(req.Client)
		d.jobs[req.ID] = j
		d.pinWeights(j)
		d.advanceGated(j)
	case ModeKernelByKernel:
		j.stream = d.rtCtx.StreamCreate()
		d.issueNext(p, j)
	case ModeJobByJob, ModeSingleStream:
		if d.cfg.Mode == ModeSingleStream {
			j.stream = d.sharedStream
		} else {
			j.stream = d.rtCtx.StreamCreate()
		}
		d.issueWholeJob(p, j)
	}
}

// rejectRequest records a typed failure for a request that was never
// admitted as a job (shed, or its client is gone) and notifies the client
// if one is still listening.
func (d *Dispatcher) rejectRequest(req Request, err error) {
	now := d.env.Now()
	rec := metrics.JobRecord{
		ID: req.ID, Model: req.Model, Client: req.Client, Tenant: req.Tenant,
		Submit: req.Submit, Admit: now,
		ExecDone: now, Delivered: now + d.cfg.ShmLatency,
		Failed: true, FailureReason: err.Error(),
	}
	d.collector.Add(rec)
	d.mt.RecordJob(rec.Delivered, &rec)
	conn := d.clients[req.Client]
	if conn.dead || conn.OnFailed == nil {
		return
	}
	id := req.ID
	cb := conn.OnFailed
	d.env.After(d.cfg.ShmLatency, func() { cb(id, err) })
}

// --- ModeGated: software-defined scheduling -------------------------------

// pinWeights takes a residency pin on the admitted job's model and, for a
// cold model, kicks off (or joins) its weight load. The job's input copy
// still proceeds — it overlaps the load on the H2D engine — but kernels
// stay gated until the model is resident. No-op when memory is
// unconstrained.
func (d *Dispatcher) pinWeights(j *Job) {
	if d.vramMgr == nil {
		return
	}
	name := j.Req.Model
	now := d.env.Now()
	d.vramMgr.Pin(name, now)
	j.vramPinned = true
	if d.vramMgr.Resident(name) {
		j.entry.Warm = true
		return
	}
	if d.rec != nil {
		// Cold-start begin, attributed to the job that triggered (or joined)
		// the load.
		d.rec.InstantArgs(d.schedTrack, name, "cold-start", now,
			trace.Int("job", int64(j.Req.ID)))
	}
	ls := d.loads[name]
	if ls == nil {
		ls = &loadState{}
		d.loads[name] = ls
		d.startLoad(name, ls)
	}
	ls.waiters = append(ls.waiters, j)
}

// startLoad begins paging the model's weights in: reserve VRAM (evicting
// LRU unpinned models as needed) and enqueue the H2D transfer on the same
// link the tensor copies use. If every eviction candidate is pinned, the
// load parks as pending until a job finishes and unpins memory.
func (d *Dispatcher) startLoad(name string, ls *loadState) {
	err := d.vramMgr.BeginLoad(name, d.env.Now())
	if err == vram.ErrNoMemory {
		ls.pending = true
		return
	}
	if err != nil {
		panic(fmt.Sprintf("core: weight load for %q: %v", name, err))
	}
	ls.pending = false
	bytes := d.models[name].Model.WeightBytes
	d.pcie.Transfer(cudart.HostToDevice, bytes, func() { d.loadDone(name) })
}

// loadDone marks the model resident, upgrades its waiting jobs to warm in
// the policy order, and charges each one the time it spent blocked on the
// load. An injected load failure (FailNextLoad) instead aborts the load and
// retries with exponential backoff; when Config.MaxLoadRetries attempts
// have failed, every waiting job terminates with ErrLoadFailed.
func (d *Dispatcher) loadDone(name string) {
	ls := d.loads[name]
	now := d.env.Now()
	if d.failNextLoad[name] > 0 {
		d.failNextLoad[name]--
		d.vramMgr.AbortLoad(name, now)
		ls.attempts++
		if d.rec != nil {
			d.rec.InstantArgs(d.schedTrack, name, "load-failed", now,
				trace.Int("attempt", int64(ls.attempts)))
		}
		max := d.cfg.MaxLoadRetries
		if max <= 0 {
			max = 3
		}
		if ls.attempts > max {
			d.stats.LoadFailures++
			delete(d.loads, name)
			for _, j := range ls.waiters {
				d.failJob(j, ErrLoadFailed)
			}
			return
		}
		d.stats.LoadRetries++
		base := d.cfg.LoadRetryBase
		if base <= 0 {
			base = 100 * sim.Microsecond
		}
		backoff := base << (ls.attempts - 1)
		d.env.After(backoff, func() {
			// The load state may have been torn down meanwhile (e.g. all
			// waiters disconnected and the job set drained).
			if cur := d.loads[name]; cur == ls {
				d.startLoad(name, ls)
			}
		})
		return
	}
	d.vramMgr.FinishLoad(name, d.env.Now())
	for _, j := range ls.waiters {
		if j.finished {
			continue
		}
		j.rec.ColdStart = true
		j.rec.LoadNs = now - j.rec.Admit
		if j.inPolicy {
			d.cfg.Policy.Remove(&j.entry)
			j.entry.Warm = true
			d.cfg.Policy.Add(&j.entry)
		} else {
			j.entry.Warm = true
		}
	}
	delete(d.loads, name)
	d.wakeNow()
}

// retryPendingLoads re-attempts memory-starved loads after a job finished
// (and so may have unpinned an eviction candidate). Names are retried in
// sorted order for determinism.
func (d *Dispatcher) retryPendingLoads() {
	var names []string
	for name, ls := range d.loads {
		if ls.pending {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		d.startLoad(name, d.loads[name])
	}
}

// advanceGated starts the job's current op, or finishes the job.
func (d *Dispatcher) advanceGated(j *Job) {
	if j.cursor >= len(j.ops) {
		d.finish(j)
		return
	}
	op := &j.ops[j.cursor]
	switch op.kind {
	case opKernel:
		// The job becomes runnable; the loop's dispatch phase releases it
		// when the policy and the occupancy mirror agree.
		j.entry.Remaining = j.Ins.Profile.RemainingAfter(j.execsDone)
		d.policyAdd(j)
		d.wakeNow()
	case opCopyIn, opCopyOut:
		// Copies bypass the SM occupancy gate (they use the DMA engines).
		if op.kind == opCopyOut {
			// §4.2: the almost-finished annotation fires before the final
			// device-to-host copy.
			d.ringBell(j)
		}
		d.stats.CopiesSent++
		if d.pcie != nil {
			// Constrained-memory configuration: tensor copies queue on the
			// shared DMA engines, contending with weight loads (and each
			// other) for PCIe bandwidth.
			d.pcie.Transfer(copyDirection(op.kind), op.bytes, func() { d.opDone(j) })
		} else {
			d.env.After(d.memcpyDuration(op.bytes), func() { d.opDone(j) })
		}
	}
}

// dispatchKernel releases the job's next kernel to the device. Runs in
// dispatcher-loop context after the gating check passed.
func (d *Dispatcher) dispatchKernel(j *Job) {
	var spec *gpu.KernelSpec
	var wlop *wlOp
	if j.wl != nil {
		wlop = j.wl.activeKernel()
		wlop.state = wlDispatched
		spec = wlop.spec
	} else {
		spec = j.currentKernel()
	}
	d.cfg.Policy.Dispatched(&j.entry)
	d.policyRemove(j)
	j.noHold = false
	if j.rec.FirstDispatch == 0 {
		j.rec.FirstDispatch = d.env.Now()
	} else if j.readyAt > 0 {
		// Ready but ungated since readyAt: the head-of-line dispatch gap
		// hardware queues hide and the anatomy makes visible.
		j.rec.HoLNs += d.env.Now() - j.readyAt
	}
	j.readyAt = 0
	j.rec.SchedNs += d.cfg.SchedDelay + d.cfg.DispatchCost

	if j.wl == nil && j.isFinalGPUOp() {
		// Pinned output: the wakeup precedes the last kernel launch (§4.2).
		d.ringBell(j)
	}
	d.nextKernelID++
	kid := d.nextKernelID
	j.kernelsInFlight++
	fl := d.newInflight()
	fl.job, fl.spec, fl.op = j, spec, wlop
	d.inflight[kid] = fl
	d.mirror.Reserve(spec)
	d.stats.KernelsSent++
	if d.rec != nil {
		d.rec.InstantArgs(d.schedTrack, spec.Name, "dispatch", d.env.Now(),
			trace.Int("job", int64(j.Req.ID)),
			trace.Int("kernel_id", int64(kid)),
			trace.Str("policy", d.cfg.Policy.Name()),
			trace.Str("reason", d.dispatchReason(&j.entry)))
	}
	d.traceCounters()
	// The launch is always Ready: the dispatcher already enforced its
	// dependencies. Virtual streams bind to hardware queues round-robin at
	// launch time (§5.2's stream replacement).
	d.queueCursor = (d.queueCursor + 1) % d.dev.NumQueues()
	l := d.newLaunch()
	l.Spec, l.KernelID, l.JobTag, l.Instrumented = spec, kid, j.Req.Model, true
	fl.launch = l
	d.dev.Submit(d.queueCursor, l)
	if d.cfg.KernelTimeout > 0 && j.wl == nil {
		// Watchdog (fault recovery): the serial upper bound — every block
		// of the kernel running one after another — plus the configured
		// grace can only be exceeded when notifications were lost or the
		// device stopped placing (retired SMs, wedged queue). Retries
		// stretch the window, a cheap exponential backoff.
		bound := sim.Time(spec.Blocks)*spec.BlockDuration + d.cfg.KernelTimeout
		bound <<= uint(j.retries)
		d.env.DoCallAfter(bound, watchdogFire, d, uint64(kid))
	}
	if j.wl != nil {
		// Another stream of this job may expose a further active kernel.
		j.wl.reconcilePolicy()
	}
}

// onKernelTimeout is the watchdog's recovery path for a kernel whose
// notifications never completed it. The occupancy mirror is reconciled
// (outstanding reservations flushed, resident blocks freed) so the fault
// cannot wedge dispatch for every other job. Then:
//
//   - No placement was ever observed (launch lost to a hung queue or its
//     notifications all dropped): re-dispatch the same kernel through the
//     normal policy path, up to Config.MaxKernelRetries, after which the
//     job fails with ErrKernelTimeout.
//   - Blocks were placed but completions went missing (a lossy notifQ):
//     the kernel did run — force-complete it and let the job advance.
//
// Late notifications for the reconciled kernel id are counted as stale and
// ignored (see applyNotif).
//
// watchdogFire is the timer payload: ctx is the Dispatcher, arg the kernel
// id — a typed event instead of a per-dispatch closure.
var watchdogFire sim.EventFn = func(ctx any, arg uint64) {
	ctx.(*Dispatcher).onKernelTimeout(uint32(arg))
}

func (d *Dispatcher) onKernelTimeout(kid uint32) {
	fl, ok := d.inflight[kid]
	if !ok {
		return // completed normally before the watchdog fired
	}
	delete(d.inflight, kid)
	defer d.putInflight(fl)
	j := fl.job
	spec := fl.spec
	d.stats.KernelTimeouts++
	// Reconcile the mirror: whatever was never reported placed is still
	// reserved; whatever was reported placed but not completed is still
	// resident. Flush both.
	if n := spec.Blocks - fl.placed; n > 0 {
		d.mirror.Place(spec, n)
	}
	if n := spec.Blocks - fl.completed; n > 0 {
		d.mirror.Complete(spec, n)
	}
	if d.rec != nil {
		d.rec.InstantArgs(d.schedTrack, spec.Name, "kernel-timeout", d.env.Now(),
			trace.Int("job", int64(j.Req.ID)), trace.Int("kernel_id", int64(kid)),
			trace.Int("placed", int64(fl.placed)), trace.Int("completed", int64(fl.completed)),
			trace.Int("retries", int64(j.retries)))
	}
	if len(fl.members) > 0 {
		d.batchTimeout(fl)
		return
	}
	j.kernelsInFlight--
	if j.cancelled || j.failErr != nil {
		if j.kernelsInFlight == 0 {
			d.finish(j)
		}
		return
	}
	if fl.placed == 0 {
		max := d.cfg.MaxKernelRetries
		if max <= 0 {
			max = 3
		}
		if j.retries >= max {
			d.failJob(j, ErrKernelTimeout)
			return
		}
		j.retries++
		d.stats.KernelRetries++
		d.mt.Add(d.mtRetries, d.env.Now(), 1)
		// Back into the ready queue: the cursor never advanced, so the
		// policy re-releases exactly this kernel once it fits again.
		j.entry.Remaining = j.Ins.Profile.RemainingAfter(j.execsDone)
		d.policyAdd(j)
		d.wakeNow()
		return
	}
	// Partially or fully placed: the device ran the blocks; only their
	// completion records were lost. Advance the job.
	j.execsDone++
	d.opDone(j)
	d.traceCounters()
	d.wakeNow()
}

// dispatchReason explains why the policy picked this entry — the sort key
// the decision turned on, plus the entry's residency temperature when
// device memory is constrained. This is the paper's "arbitrary scheduling
// policy" made auditable: every release carries its tiebreak.
func (d *Dispatcher) dispatchReason(e *sched.JobEntry) string {
	var r string
	switch d.cfg.Policy.Name() {
	case "SJF":
		r = "total=" + e.Total.String()
	case "FIFO":
		r = "arrival=" + e.Arrival.String()
	case "EDF":
		r = "deadline=" + e.Deadline.String()
	default:
		r = "remaining=" + e.Remaining.String()
	}
	if d.vramMgr != nil {
		if e.Warm {
			r += " warm"
		} else {
			r += " cold"
		}
	}
	return r
}

// applyNotif folds one instrumented notification into the occupancy mirror
// and job progress. Runs in dispatcher-loop context.
func (d *Dispatcher) applyNotif(n channel.Notification) {
	d.stats.NotifsHandled++
	fl, ok := d.inflight[n.KernelID()]
	if !ok {
		if d.tolerant() {
			// A duplicate of a final completion, or a record for a kernel
			// the watchdog already reconciled. Count and ignore.
			d.stats.StaleNotifs++
			return
		}
		panic(fmt.Sprintf("core: notification for unknown kernel %d", n.KernelID()))
	}
	count := int(n.GroupCount())
	switch n.Type() {
	case channel.Placement:
		if fl.placed+count > fl.spec.Blocks {
			// Duplicated placement records: clamp to the kernel's true block
			// count so the mirror never over-credits residency.
			if !d.tolerant() {
				panic(fmt.Sprintf("core: placement overflow for kernel %d", n.KernelID()))
			}
			d.stats.StaleNotifs++
			count = fl.spec.Blocks - fl.placed
		}
		if count <= 0 {
			return
		}
		if fl.placed == 0 {
			fl.firstPlacedAt = d.env.Now()
		}
		fl.placed += count
		d.mirror.Place(fl.spec, count)
	case channel.Completion:
		if fl.completed+count > fl.spec.Blocks {
			// Duplicated completion records: clamp symmetrically.
			if !d.tolerant() {
				panic(fmt.Sprintf("core: completion overflow for kernel %d", n.KernelID()))
			}
			d.stats.StaleNotifs++
			count = fl.spec.Blocks - fl.completed
		}
		if count <= 0 {
			return
		}
		if over := fl.completed + count - fl.placed; over > 0 {
			// A completion implies a placement: the placement record for
			// these blocks was dropped. Infer it so the mirror's resident
			// pool covers the blocks about to be released.
			if !d.tolerant() {
				panic(fmt.Sprintf("core: completion before placement for kernel %d", n.KernelID()))
			}
			d.stats.StaleNotifs++
			if fl.placed == 0 {
				fl.firstPlacedAt = d.env.Now()
			}
			fl.placed += over
			d.mirror.Place(fl.spec, over)
		}
		fl.completed += count
		d.mirror.Complete(fl.spec, count)
		if fl.completed == fl.spec.Blocks {
			delete(d.inflight, n.KernelID())
			if len(fl.members) > 0 {
				d.batchComplete(n.KernelID(), fl)
				d.putInflight(fl)
				return
			}
			fl.job.execsDone++
			fl.job.kernelsInFlight--
			if d.cfg.RefineOnline {
				d.refineProfile(fl)
			}
			j, op := fl.job, fl.op
			// Retire the record before fan-out: opDone may dispatch the
			// job's next kernel, which then reuses it from the pool.
			d.putInflight(fl)
			if op != nil {
				j.wl.opFinished(op)
			} else {
				d.opDone(j)
			}
			d.traceCounters()
		}
	default:
		panic("core: invalid notification type")
	}
}

// refineProfile implements §6's online refinement: the observed
// first-placement→completion span of the kernel (as seen through the
// notification channel) updates the profile means, and the SRPT suffix
// table is rebuilt periodically.
func (d *Dispatcher) refineProfile(fl *inflightKernel) {
	dur := d.env.Now() - fl.firstPlacedAt
	if dur <= 0 {
		return
	}
	ins := fl.job.Ins
	ins.Profile.Observe(fl.spec.Name, dur)
	every := d.cfg.RefineEvery
	if every <= 0 {
		every = 64
	}
	ins.Profile.RefreshEvery(ins.Model, every)
}

// opDone advances the job past its just-completed op.
func (d *Dispatcher) opDone(j *Job) {
	if j.finished {
		return // a copy timer landing after the job already failed
	}
	if j.cancelled || j.failErr != nil {
		// Drop remaining work; finish once the device has drained this
		// job's in-flight kernels.
		if j.kernelsInFlight == 0 {
			d.finish(j)
		}
		return
	}
	j.cursor++
	if d.cfg.Mode == ModeGated {
		d.advanceGated(j)
	}
}

// failJob terminates an in-flight job with a typed error. Undispatched work
// is dropped immediately; kernels already on the device drain first (their
// completions route through opDone's failure path), after which finish
// records the typed failure and notifies the client.
func (d *Dispatcher) failJob(j *Job, err error) {
	if j.finished || j.failErr != nil {
		return
	}
	j.failErr = err
	if j.inPolicy {
		d.policyRemove(j)
	}
	if d.rec != nil {
		d.rec.InstantArgs(d.schedTrack, j.Req.Model, "job-failed", d.env.Now(),
			trace.Int("job", int64(j.Req.ID)), trace.Str("reason", err.Error()))
	}
	if j.kernelsInFlight == 0 {
		d.finish(j)
	}
}

// disconnectClient implements ClientConn.Disconnect on the dispatcher side:
// the client's live jobs terminate with ErrClientDisconnected (in-flight
// kernels drain first) and its queued-but-unadmitted requests are rejected
// as they surface from the ring. Job ids are visited in sorted order for
// determinism.
func (d *Dispatcher) disconnectClient(id int) {
	conn := d.clients[id]
	if conn.dead {
		return
	}
	conn.dead = true
	var ids []uint64
	for rid, j := range d.jobs {
		if j.Req.Client == id {
			ids = append(ids, rid)
		}
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, rid := range ids {
		d.failJob(d.jobs[rid], ErrClientDisconnected)
	}
	d.wakeNow()
}

// cancel implements ClientConn.Cancel on the dispatcher side.
func (d *Dispatcher) cancel(reqID uint64) {
	j, ok := d.jobs[reqID]
	if !ok || j.cancelled {
		return // unknown, already finished, or already cancelled
	}
	j.cancelled = true
	j.rec.Cancelled = true
	if j.inPolicy {
		d.policyRemove(j)
	}
	if j.kernelsInFlight == 0 {
		d.finish(j)
	}
}

// finish completes the job: records metrics and delivers the result over
// the GPU→client channel.
func (d *Dispatcher) finish(j *Job) {
	if j.finished {
		return
	}
	j.finished = true
	now := d.env.Now()
	j.rec.ExecDone = now
	j.rec.Delivered = now + d.cfg.ShmLatency
	if j.failErr != nil {
		j.rec.Failed = true
		j.rec.FailureReason = j.failErr.Error()
		d.stats.Failed++
	} else {
		d.stats.Completed++
	}
	delete(d.jobs, j.Req.ID)
	if d.cfg.Mode == ModeGated {
		d.cfg.Policy.JobFinished(j.Req.Client)
	}
	if j.vramPinned {
		j.vramPinned = false
		d.vramMgr.Unpin(j.Req.Model, now)
		d.retryPendingLoads()
	}
	if d.rec != nil {
		d.traceJob(&j.rec)
	}
	d.traceCounters()
	d.collector.Add(j.rec)
	d.mt.RecordJob(j.rec.Delivered, &j.rec)
	if j.failErr != nil {
		if !j.conn.dead && j.conn.OnFailed != nil {
			id := j.Req.ID
			err := j.failErr
			cb := j.conn.OnFailed
			d.env.After(d.cfg.ShmLatency, func() { cb(id, err) })
		}
		return
	}
	d.ringBell(j) // ensure the bell rang even for degenerate op lists
	if cb := j.conn.OnComplete; cb != nil && !j.conn.dead {
		id := j.Req.ID
		d.env.After(d.cfg.ShmLatency, func() { cb(id) })
	}
}

// traceJob emits the finished job's lifecycle as async spans grouped by
// request id — Perfetto renders each job as one timeline row with its
// queued→load→pending→exec→deliver phases laid end to end.
func (d *Dispatcher) traceJob(r *metrics.JobRecord) {
	d.rec.AsyncArgs(d.traceProc, r.ID, "queued", "job", r.Submit, r.Admit,
		trace.Str("model", r.Model), trace.Int("client", int64(r.Client)),
		trace.Bool("cancelled", r.Cancelled), trace.Bool("cold", r.ColdStart))
	if r.ColdStart && r.LoadNs > 0 {
		d.rec.Async(d.traceProc, r.ID, "load", "job", r.Admit, r.Admit+r.LoadNs)
	}
	fd := r.FirstDispatch
	if fd > r.Admit {
		d.rec.Async(d.traceProc, r.ID, "pending", "job", r.Admit, fd)
	}
	if fd > 0 && r.ExecDone > fd {
		d.rec.Async(d.traceProc, r.ID, "exec", "job", fd, r.ExecDone)
	}
	if r.Delivered > r.ExecDone {
		d.rec.Async(d.traceProc, r.ID, "deliver", "job", r.ExecDone, r.Delivered)
	}
}

// ringBell delivers the almost-finished wakeup exactly once per job.
func (d *Dispatcher) ringBell(j *Job) {
	if j.belled {
		return
	}
	j.belled = true
	if cb := j.conn.OnAlmostFinished; cb != nil && !j.conn.dead {
		id := j.Req.ID
		d.env.After(d.cfg.ShmLatency, func() { cb(id) })
	}
}

func (d *Dispatcher) memcpyDuration(bytes int) sim.Time {
	dur := d.cfg.MemcpyLatency
	if d.cfg.PCIeBytesPerNs > 0 {
		dur += sim.Time(float64(bytes) / (d.cfg.PCIeBytesPerNs * d.pcieFactor))
	}
	return dur
}

// --- Ablation modes: hardware scheduling with the Paella frontend ---------

// issueOp issues the job's op at index idx onto its CUDA stream and
// returns an event that fires when the op completes.
func (d *Dispatcher) issueOp(j *Job, idx int) *cudart.Event {
	op := &j.ops[idx]
	if j.rec.FirstDispatch == 0 {
		j.rec.FirstDispatch = d.env.Now()
	}
	switch op.kind {
	case opKernel:
		d.stats.KernelsSent++
		j.stream.LaunchKernelAsync(op.spec, cudart.LaunchOpts{JobTag: j.Req.Model})
	case opCopyIn, opCopyOut:
		d.stats.CopiesSent++
		j.stream.MemcpyAsync(nil, copyDirection(op.kind), op.bytes)
	}
	return j.stream.EventRecord()
}

func copyDirection(k jobOpKind) cudart.MemcpyKind {
	if k == opCopyIn {
		return cudart.HostToDevice
	}
	return cudart.DeviceToHost
}

// issueWholeJob releases every op of the job immediately (ModeJobByJob and
// ModeSingleStream), completing when the last op's event fires.
func (d *Dispatcher) issueWholeJob(p *sim.Proc, j *Job) {
	var last *cudart.Event
	for idx := range j.ops {
		d.charge(p, d.cfg.DispatchCost)
		j.rec.SchedNs += d.cfg.DispatchCost
		last = d.issueOp(j, idx)
	}
	last.OnFire(func() { d.finish(j) })
}

// issueNext releases the job's current op and arms its completion to issue
// the next (ModeKernelByKernel). Per-op dispatch cost is charged to the
// dispatcher loop via a posted wakeup.
func (d *Dispatcher) issueNext(p *sim.Proc, j *Job) {
	if p != nil {
		d.charge(p, d.cfg.DispatchCost)
	}
	j.rec.SchedNs += d.cfg.DispatchCost
	if j.isFinalGPUOp() {
		d.ringBell(j)
	}
	ev := d.issueOp(j, j.cursor)
	ev.OnFire(func() {
		j.cursor++
		if j.cursor >= len(j.ops) {
			d.finish(j)
			return
		}
		// Issue the next op outside the loop process; the dispatch cost
		// has already been modelled for this job's ops.
		d.issueNext(nil, j)
	})
}
