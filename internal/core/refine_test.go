package core

import (
	"testing"

	"paella/internal/compiler"
	"paella/internal/gpu"
	"paella/internal/model"
	"paella/internal/sched"
	"paella/internal/sim"
)

// TestOnlineRefinementConverges corrupts a model's profiled means and
// checks that, with RefineOnline enabled, serving traffic restores them to
// the observed execution times (§6's "profiles can be further refined
// online").
func TestOnlineRefinementConverges(t *testing.T) {
	env := sim.NewEnv()
	devCfg := gpu.TeslaT4()
	devCfg.LaunchOverhead = 0
	cfg := DefaultConfig(sched.NewSRPT())
	cfg.RefineOnline = true
	cfg.RefineEvery = 4
	d := NewWithDevice(env, devCfg, cfg)

	ins := compiler.MustCompile(model.TinyNet(), compiler.DefaultConfig(), devCfg, 1)
	// Corrupt the profile: pretend every kernel takes 10× its real time.
	for _, k := range ins.Model.Kernels {
		for i := 0; i < 50; i++ {
			ins.Profile.Observe(k.Name, 10*k.BlockDuration)
		}
	}
	if err := d.RegisterModel(ins); err != nil {
		t.Fatal(err)
	}
	d.Start()

	conn := d.Connect()
	done := 0
	conn.OnComplete = func(uint64) { done++ }
	const jobs = 100
	for i := 0; i < jobs; i++ {
		id := uint64(i + 1)
		env.At(sim.Time(i)*200*sim.Microsecond, func() {
			conn.Submit(Request{ID: id, Model: "tinynet", Client: 0, Submit: env.Now()})
		})
	}
	env.Run()
	if done != jobs {
		t.Fatalf("completed %d of %d", done, jobs)
	}
	// After 100 jobs × 3 kernels of true observations, the corrupted 10×
	// means must have been pulled back toward reality.
	for _, k := range ins.Model.Kernels {
		st := ins.Profile.Stat(k.Name)
		if st == nil {
			t.Fatalf("kernel %s lost its stats", k.Name)
		}
		if st.MeanTime > 4*k.BlockDuration {
			t.Errorf("kernel %s mean %v not converging toward %v",
				k.Name, st.MeanTime, k.BlockDuration)
		}
	}
	// The suffix table must have been rebuilt from the refined means: the
	// fresh-job estimate should be far below the corrupted 10× total.
	if got := ins.Profile.TotalTime(); got > 4*ins.Model.KernelTime() {
		t.Errorf("TotalTime %v still reflects corrupted profile (real %v)",
			got, ins.Model.KernelTime())
	}
}

// TestRefinementDisabledByDefault: without the flag, serving traffic does
// not disturb the offline profile.
func TestRefinementDisabledByDefault(t *testing.T) {
	env := sim.NewEnv()
	devCfg := gpu.TeslaT4()
	d := NewWithDevice(env, devCfg, DefaultConfig(sched.NewSRPT()))
	ins := compiler.MustCompile(model.TinyNet(), compiler.DefaultConfig(), devCfg, 1)
	before := ins.Profile.TotalTime()
	if err := d.RegisterModel(ins); err != nil {
		t.Fatal(err)
	}
	d.Start()
	conn := d.Connect()
	env.At(0, func() {
		conn.Submit(Request{ID: 1, Model: "tinynet", Client: 0, Submit: 0})
	})
	env.Run()
	if got := ins.Profile.TotalTime(); got != before {
		t.Fatalf("profile changed without RefineOnline: %v → %v", before, got)
	}
}
