package core

import (
	"testing"

	"paella/internal/compiler"
	"paella/internal/gpu"
	"paella/internal/model"
	"paella/internal/sched"
	"paella/internal/sim"
)

// TestTinyRequestRingBackpressure floods a deliberately tiny request ring:
// Submit must report false (never drop silently), and a client that backs
// off and retries eventually gets everything served.
func TestTinyRequestRingBackpressure(t *testing.T) {
	env := sim.NewEnv()
	devCfg := gpu.TeslaT4()
	cfg := DefaultConfig(sched.NewPaella(10000))
	cfg.RingCapacity = 2
	d := NewWithDevice(env, devCfg, cfg)
	ins := compiler.MustCompile(model.TinyNet(), compiler.DefaultConfig(), devCfg, 1)
	if err := d.RegisterModel(ins); err != nil {
		t.Fatal(err)
	}
	d.Start()
	conn := d.Connect()
	done := 0
	conn.OnComplete = func(uint64) { done++ }

	const jobs = 64
	rejected := 0
	env.Spawn("flooder", func(p *sim.Proc) {
		for i := 0; i < jobs; i++ {
			req := Request{ID: uint64(i + 1), Model: "tinynet", Client: 0, Submit: env.Now()}
			for !conn.Submit(req) {
				rejected++
				p.Sleep(5 * sim.Microsecond)
			}
		}
	})
	env.Run()
	if done != jobs {
		t.Fatalf("completed %d of %d", done, jobs)
	}
	if rejected == 0 {
		t.Fatal("a 2-slot ring never exerted backpressure on a 64-job flood")
	}
}

// TestNotifQFlowControl runs a block-heavy workload against a small
// notification queue. The §5.2 flow-control argument — outstanding demand
// is capped by the number of outstanding blocks, which the overshoot
// budget bounds — must keep the unchecked writer from overrunning the
// consumer (an overrun would surface as a lost completion and a stuck or
// panicking dispatcher).
func TestNotifQFlowControl(t *testing.T) {
	env := sim.NewEnv()
	devCfg := gpu.TeslaT4()
	cfg := DefaultConfig(sched.NewSRPT())
	cfg.NotifQCapacity = 256 // small but ≥ outstanding-block records
	cfg.OvershootBlocks = 32
	d := NewWithDevice(env, devCfg, cfg)
	m := model.Generate(model.Table2()[5]) // densenet: 200 launches, 7408 blocks
	ins := compiler.MustCompile(m, compiler.DefaultConfig(), devCfg, 1)
	if err := d.RegisterModel(ins); err != nil {
		t.Fatal(err)
	}
	d.Start()
	conn := d.Connect()
	done := 0
	conn.OnComplete = func(uint64) { done++ }
	const jobs = 12
	for i := 0; i < jobs; i++ {
		id := uint64(i + 1)
		env.At(0, func() {
			conn.Submit(Request{ID: id, Model: m.Name, Client: 0, Submit: 0})
		})
	}
	env.Run()
	if done != jobs {
		t.Fatalf("completed %d of %d — notification loss under small notifQ", done, jobs)
	}
	if len(d.inflight) != 0 || !d.mirror.Idle() {
		t.Fatal("dispatcher state not clean after drain")
	}
}

// TestAllModesRandomMix churns every dispatcher mode with a random model
// mix and checks conservation: every admitted job completes exactly once
// and all mirror/in-flight state drains.
func TestAllModesRandomMix(t *testing.T) {
	models := []*model.Model{
		model.TinyNet(),
		model.Generate(model.Table2()[0]),
		model.Generate(model.Table2()[3]),
	}
	for _, mode := range []Mode{ModeGated, ModeKernelByKernel, ModeJobByJob, ModeSingleStream} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			env := sim.NewEnv()
			devCfg := gpu.TeslaT4()
			cfg := DefaultConfig(sched.NewPaella(10000))
			cfg.Mode = mode
			if mode != ModeGated {
				cfg.Policy = nil
			}
			d := NewWithDevice(env, devCfg, cfg)
			for _, m := range models {
				ins := compiler.MustCompile(m, compiler.DefaultConfig(), devCfg, 1)
				if err := d.RegisterModel(ins); err != nil {
					t.Fatal(err)
				}
			}
			d.Start()
			completions := map[uint64]int{}
			const clients, perClient = 3, 15
			for c := 0; c < clients; c++ {
				conn := d.Connect()
				conn.OnComplete = func(id uint64) { completions[id]++ }
				for i := 0; i < perClient; i++ {
					id := uint64(c*1000 + i + 1)
					mdl := models[(c+i)%len(models)].Name
					cn := conn
					env.At(sim.Time(i*137+c*11)*sim.Microsecond, func() {
						if !cn.Submit(Request{ID: id, Model: mdl, Client: cn.ID, Submit: env.Now()}) {
							t.Error("ring full in random mix")
						}
					})
				}
			}
			env.Run()
			if len(completions) != clients*perClient {
				t.Fatalf("%d of %d jobs completed", len(completions), clients*perClient)
			}
			for id, n := range completions {
				if n != 1 {
					t.Fatalf("job %d completed %d times", id, n)
				}
			}
			st := d.Stats()
			if st.Admitted != st.Completed {
				t.Fatalf("conservation violated: %+v", st)
			}
			if mode == ModeGated && (len(d.inflight) != 0 || !d.mirror.Idle()) {
				t.Fatal("gated state not drained")
			}
		})
	}
}
