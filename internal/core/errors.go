package core

import "errors"

// Typed failure errors. Every admitted request terminates in exactly one of
// two ways: a successful completion delivered over the completion ring, or
// one of these errors delivered through ClientConn.OnFailed and recorded in
// the job's metrics record (JobRecord.Failed/FailureReason). The fault
// layer's conservation guarantee — no admitted job is silently lost, no
// matter the fault schedule — is checkable by summing completions and typed
// failures against submissions.
var (
	// ErrAdmissionShed: the dispatcher's load-shedding admission control
	// (Config.MaxLiveJobs) rejected the request to protect tail latency of
	// the jobs already in flight.
	ErrAdmissionShed = errors.New("paella: admission shed (overload)")
	// ErrKernelTimeout: a dispatched kernel produced no placement
	// notifications within the timeout window and the bounded re-dispatch
	// budget (Config.MaxKernelRetries) is exhausted.
	ErrKernelTimeout = errors.New("paella: kernel timeout, retries exhausted")
	// ErrLoadFailed: the model's H2D weight load failed repeatedly
	// (Config.MaxLoadRetries exceeded).
	ErrLoadFailed = errors.New("paella: weight load failed, retries exhausted")
	// ErrClientDisconnected: the job's client disconnected mid-flight; the
	// result has nowhere to go and undispatched work was dropped.
	ErrClientDisconnected = errors.New("paella: client disconnected")
)
