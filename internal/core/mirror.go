package core

import "paella/internal/gpu"

// mirror is the dispatcher's software copy of GPU occupancy (§4.1,
// Table 1), maintained entirely from execution-configuration metadata and
// instrumented placement/completion notifications. Resources are tracked in
// aggregate across SMs: resident (confirmed placed) plus reserved
// (dispatched, placement not yet confirmed). The dispatcher keeps releasing
// kernels while the predicted demand fits the device, plus an overshoot
// budget of B thread blocks queued beyond full utilization so the GPU never
// idles during the notification round trip (§6's "full utilization" rule).
type mirror struct {
	capBlocks, capThreads, capRegs, capShmem int
	resBlocks, resThreads, resRegs, resShmem int
	rsvBlocks, rsvThreads, rsvRegs, rsvShmem int
	overshoot                                int
}

func newMirror(cfg gpu.Config, overshoot int) mirror {
	return mirror{
		capBlocks:  cfg.NumSMs * cfg.SM.MaxBlocks,
		capThreads: cfg.NumSMs * cfg.SM.MaxThreads,
		capRegs:    cfg.NumSMs * cfg.SM.MaxRegisters,
		capShmem:   cfg.NumSMs * cfg.SM.MaxSharedMem,
		overshoot:  overshoot,
	}
}

// CanAccept reports whether dispatching k now keeps the device within
// capacity plus the overshoot budget.
func (m *mirror) CanAccept(k *gpu.KernelSpec) bool {
	_, th, rg, sh := k.BlockCost()
	n := k.Blocks
	fits := m.resBlocks+m.rsvBlocks+n <= m.capBlocks &&
		m.resThreads+m.rsvThreads+n*th <= m.capThreads &&
		m.resRegs+m.rsvRegs+n*rg <= m.capRegs &&
		m.resShmem+m.rsvShmem+n*sh <= m.capShmem
	if fits {
		return true
	}
	// Full utilization reached: allow up to B blocks queued beyond it.
	return m.rsvBlocks < m.overshoot
}

// Reserve accounts for a dispatched kernel whose placement is not yet
// confirmed.
func (m *mirror) Reserve(k *gpu.KernelSpec) {
	_, th, rg, sh := k.BlockCost()
	n := k.Blocks
	m.rsvBlocks += n
	m.rsvThreads += n * th
	m.rsvRegs += n * rg
	m.rsvShmem += n * sh
}

// Place moves n blocks of k from reserved to resident (a placement
// notification arrived).
func (m *mirror) Place(k *gpu.KernelSpec, n int) {
	_, th, rg, sh := k.BlockCost()
	m.rsvBlocks -= n
	m.rsvThreads -= n * th
	m.rsvRegs -= n * rg
	m.rsvShmem -= n * sh
	m.resBlocks += n
	m.resThreads += n * th
	m.resRegs += n * rg
	m.resShmem += n * sh
	if m.rsvBlocks < 0 || m.rsvThreads < 0 || m.rsvRegs < 0 || m.rsvShmem < 0 {
		panic("core: mirror reservation went negative")
	}
}

// Complete releases n resident blocks of k (a completion notification
// arrived).
func (m *mirror) Complete(k *gpu.KernelSpec, n int) {
	_, th, rg, sh := k.BlockCost()
	m.resBlocks -= n
	m.resThreads -= n * th
	m.resRegs -= n * rg
	m.resShmem -= n * sh
	if m.resBlocks < 0 || m.resThreads < 0 || m.resRegs < 0 || m.resShmem < 0 {
		panic("core: mirror residency went negative")
	}
}

// rescale recomputes capacity for the given number of online SMs (fault
// injection retired or restored one). Resident and reserved accounting are
// untouched: blocks already on a retiring SM drain normally, and until they
// do the mirror simply sees the device as (transiently) over capacity,
// which correctly halts further dispatch.
func (m *mirror) rescale(cfg gpu.Config, online int) {
	if online < 0 {
		online = 0
	}
	m.capBlocks = online * cfg.SM.MaxBlocks
	m.capThreads = online * cfg.SM.MaxThreads
	m.capRegs = online * cfg.SM.MaxRegisters
	m.capShmem = online * cfg.SM.MaxSharedMem
}

// headroomBlocks returns capacity minus resident and reserved blocks —
// how many more blocks fit before the overshoot budget starts burning.
// Negative once dispatch has run past full utilization.
func (m *mirror) headroomBlocks() int {
	return m.capBlocks - m.resBlocks - m.rsvBlocks
}

// Idle reports whether the mirror believes the device is empty.
func (m *mirror) Idle() bool {
	return m.resBlocks == 0 && m.rsvBlocks == 0
}
