package core

import (
	"testing"

	"paella/internal/channel"
	"paella/internal/model"
	"paella/internal/sched"
	"paella/internal/sim"
	"paella/internal/vram"
)

// submitN pushes n requests at t=0 and returns maps filled with terminal
// outcomes: completions and typed failures by request id.
func submitN(env *sim.Env, d *Dispatcher, n int, modelName string) (map[uint64]bool, map[uint64]error) {
	conn := d.Connect()
	completed := make(map[uint64]bool)
	failed := make(map[uint64]error)
	conn.OnComplete = func(id uint64) { completed[id] = true }
	conn.OnFailed = func(id uint64, err error) { failed[id] = err }
	env.At(0, func() {
		for i := 1; i <= n; i++ {
			conn.Submit(Request{ID: uint64(i), Model: modelName, Client: conn.ID, Submit: env.Now()})
		}
	})
	return completed, failed
}

// TestAdmissionShedding: with MaxLiveJobs=1, a burst mostly sheds — each
// shed request gets ErrAdmissionShed and a Failed metrics record, and
// completed + failed still covers every submission (conservation).
func TestAdmissionShedding(t *testing.T) {
	cfg := DefaultConfig(sched.NewPaella(10000))
	cfg.MaxLiveJobs = 1
	env, d := testSetup(t, cfg, model.TinyNet())
	completed, failed := submitN(env, d, 8, "tinynet")
	env.Run()

	if len(completed)+len(failed) != 8 {
		t.Fatalf("completed %d + failed %d != 8 submitted", len(completed), len(failed))
	}
	if len(failed) == 0 {
		t.Fatal("MaxLiveJobs=1 shed nothing out of a same-instant burst of 8")
	}
	for id, err := range failed {
		if err != ErrAdmissionShed {
			t.Fatalf("request %d failed with %v, want ErrAdmissionShed", id, err)
		}
	}
	st := d.Stats()
	if st.Shed != uint64(len(failed)) {
		t.Fatalf("Stats.Shed = %d, want %d", st.Shed, len(failed))
	}
	if got := d.Collector().Failures(); got != len(failed) {
		t.Fatalf("collector Failures = %d, want %d", got, len(failed))
	}
}

// TestKernelTimeoutRetriesExhaust: with every notification dropped, the
// watchdog observes zero placements, re-dispatches up to the budget, then
// fails the job with ErrKernelTimeout. Nothing hangs: the run drains.
func TestKernelTimeoutRetriesExhaust(t *testing.T) {
	cfg := DefaultConfig(sched.NewPaella(10000))
	cfg.KernelTimeout = 20 * sim.Microsecond
	cfg.MaxKernelRetries = 2
	env, d := testSetup(t, cfg, model.TinyNet())
	d.Device().SetNotifFault(func(channel.Notification) channel.NotifVerdict {
		return channel.NotifDrop
	})
	completed, failed := submitN(env, d, 3, "tinynet")
	env.Run()

	if len(completed) != 0 {
		t.Fatalf("%d jobs completed with a fully dead notification channel", len(completed))
	}
	if len(failed) != 3 {
		t.Fatalf("failed %d of 3", len(failed))
	}
	for id, err := range failed {
		if err != ErrKernelTimeout {
			t.Fatalf("request %d failed with %v, want ErrKernelTimeout", id, err)
		}
	}
	st := d.Stats()
	if st.KernelRetries == 0 || st.KernelTimeouts == 0 {
		t.Fatalf("no watchdog activity recorded: %+v", st)
	}
	// Mirror reconciliation must leave the device logically empty.
	if !d.mirror.Idle() {
		t.Fatal("occupancy mirror not idle after reconciliation")
	}
}

// TestKernelTimeoutForcedCompletion: dropping only completion records makes
// the watchdog force-complete placed kernels; every job still finishes.
func TestKernelTimeoutForcedCompletion(t *testing.T) {
	cfg := DefaultConfig(sched.NewPaella(10000))
	cfg.KernelTimeout = 20 * sim.Microsecond
	env, d := testSetup(t, cfg, model.TinyNet())
	d.Device().SetNotifFault(func(n channel.Notification) channel.NotifVerdict {
		if n.Type() == channel.Completion {
			return channel.NotifDrop
		}
		return channel.NotifKeep
	})
	completed, failed := submitN(env, d, 3, "tinynet")
	env.Run()

	if len(failed) != 0 {
		t.Fatalf("typed failures with placements intact: %v", failed)
	}
	if len(completed) != 3 {
		t.Fatalf("completed %d of 3", len(completed))
	}
	if st := d.Stats(); st.KernelTimeouts == 0 {
		t.Fatalf("watchdog never fired: %+v", st)
	}
}

// TestDuplicatedNotifsClamp: duplicating every record must not corrupt the
// occupancy mirror in tolerant mode — jobs complete, duplicates counted.
func TestDuplicatedNotifsClamp(t *testing.T) {
	cfg := DefaultConfig(sched.NewPaella(10000))
	cfg.FaultTolerant = true
	env, d := testSetup(t, cfg, model.TinyNet())
	d.Device().SetNotifFault(func(channel.Notification) channel.NotifVerdict {
		return channel.NotifDup
	})
	completed, failed := submitN(env, d, 4, "tinynet")
	env.Run()

	if len(completed) != 4 || len(failed) != 0 {
		t.Fatalf("completed=%d failed=%d, want 4/0", len(completed), len(failed))
	}
	if st := d.Stats(); st.StaleNotifs == 0 {
		t.Fatalf("no duplicates counted: %+v", st)
	}
	if !d.mirror.Idle() {
		t.Fatal("mirror not idle after duplicated notifications")
	}
}

// TestLoadFailureRetriesThenSucceeds: one injected load failure retries
// with backoff and the job still completes cold.
func TestLoadFailureRetriesThenSucceeds(t *testing.T) {
	cfg := DefaultConfig(sched.NewPaella(10000))
	cfg.VRAM = &vram.Config{CapacityBytes: 1 << 30}
	m := model.TinyNet()
	m.WeightBytes = 16 << 20 // force a real cold-start load
	env, d := testSetup(t, cfg, m)
	d.FailNextLoad("tinynet")
	completed, failed := submitN(env, d, 2, "tinynet")
	env.Run()

	if len(completed) != 2 || len(failed) != 0 {
		t.Fatalf("completed=%d failed=%d, want 2/0", len(completed), len(failed))
	}
	st := d.Stats()
	if st.LoadRetries != 1 || st.LoadFailures != 0 {
		t.Fatalf("LoadRetries=%d LoadFailures=%d, want 1/0", st.LoadRetries, st.LoadFailures)
	}
}

// TestLoadFailureExhaustsRetries: persistent load failure terminates every
// waiter with ErrLoadFailed after the retry budget.
func TestLoadFailureExhaustsRetries(t *testing.T) {
	cfg := DefaultConfig(sched.NewPaella(10000))
	cfg.VRAM = &vram.Config{CapacityBytes: 1 << 30}
	cfg.MaxLoadRetries = 2
	m := model.TinyNet()
	m.WeightBytes = 16 << 20
	env, d := testSetup(t, cfg, m)
	for i := 0; i < 10; i++ {
		d.FailNextLoad("tinynet")
	}
	completed, failed := submitN(env, d, 3, "tinynet")
	env.Run()

	if len(completed) != 0 {
		t.Fatalf("%d jobs completed without resident weights", len(completed))
	}
	if len(failed) != 3 {
		t.Fatalf("failed %d of 3", len(failed))
	}
	for id, err := range failed {
		if err != ErrLoadFailed {
			t.Fatalf("request %d failed with %v, want ErrLoadFailed", id, err)
		}
	}
	st := d.Stats()
	if st.LoadFailures != 1 || st.LoadRetries != 2 {
		t.Fatalf("LoadFailures=%d LoadRetries=%d, want 1/2", st.LoadFailures, st.LoadRetries)
	}
	d.VRAM().CheckInvariants()
}

// TestClientDisconnect: a disconnected client's live jobs terminate with a
// typed failure record, no callbacks fire after the disconnect, and
// requests surfacing from its ring afterwards are rejected.
func TestClientDisconnect(t *testing.T) {
	cfg := DefaultConfig(sched.NewPaella(10000))
	env, d := testSetup(t, cfg, model.TinyNet())
	conn := d.Connect()
	calls := 0
	conn.OnComplete = func(uint64) { calls++ }
	conn.OnFailed = func(uint64, error) { calls++ }
	env.At(0, func() {
		for i := 1; i <= 4; i++ {
			conn.Submit(Request{ID: uint64(i), Model: "tinynet", Client: conn.ID, Submit: env.Now()})
		}
	})
	// Disconnect while the burst is mid-flight.
	env.At(50*sim.Microsecond, conn.Disconnect)
	env.Run()

	if calls != 0 {
		t.Fatalf("%d callbacks fired on a dead connection", calls)
	}
	// Conservation at the collector: every submission has a terminal record.
	col := d.Collector()
	if col.Len() != 4 {
		t.Fatalf("collector holds %d records, want 4", col.Len())
	}
	for _, r := range col.Records() {
		if !r.Failed && r.Delivered == 0 {
			t.Fatalf("record %d neither delivered nor failed", r.ID)
		}
	}
	if reasons := col.FailuresByReason(); reasons[ErrClientDisconnected.Error()] == 0 {
		t.Fatalf("no ErrClientDisconnected records: %v", reasons)
	}
}

// TestSMRetirementDrainsAndRecovers: retiring a quarter of the SMs mid-run
// shrinks mirror capacity but loses nothing; restoring brings capacity
// back. All jobs complete without the watchdog.
func TestSMRetirementDrainsAndRecovers(t *testing.T) {
	cfg := DefaultConfig(sched.NewPaella(10000))
	cfg.KernelTimeout = 100 * sim.Microsecond
	env, d := testSetup(t, cfg, model.TinyNet())
	env.At(20*sim.Microsecond, func() {
		for i := 0; i < 10; i++ {
			d.Device().RetireSM(i)
		}
	})
	env.At(2*sim.Millisecond, func() {
		for i := 0; i < 10; i++ {
			d.Device().RestoreSM(i)
		}
	})
	completed, failed := submitN(env, d, 20, "tinynet")
	env.Run()

	if len(completed) != 20 || len(failed) != 0 {
		t.Fatalf("completed=%d failed=%d, want 20/0", len(completed), len(failed))
	}
	dst := d.Device().Stats()
	if dst.SMsRetired != 10 || dst.SMsRestored != 10 {
		t.Fatalf("SMsRetired=%d SMsRestored=%d, want 10/10", dst.SMsRetired, dst.SMsRestored)
	}
	if d.Device().OnlineSMs() != d.Device().Config().NumSMs {
		t.Fatalf("OnlineSMs=%d after restore", d.Device().OnlineSMs())
	}
}

// TestVRAMPressureEvictsAndReleases: injected pressure squeezes the budget
// (forcing evictions/parked loads); releasing it lets everything complete.
func TestVRAMPressureEvictsAndReleases(t *testing.T) {
	cfg := DefaultConfig(sched.NewPaella(10000))
	// Budget fits the model, but not the model plus injected pressure.
	cfg.VRAM = &vram.Config{CapacityBytes: 8 << 20}
	m := model.TinyNet()
	m.WeightBytes = 4 << 20
	env, d := testSetup(t, cfg, m)
	env.At(0, func() {
		if got := d.InjectVRAMPressure(6 << 20); got <= 0 {
			t.Error("pressure injection took nothing")
		}
	})
	env.At(5*sim.Millisecond, d.ReleaseVRAMPressure)
	completed, failed := submitN(env, d, 3, "tinynet")
	env.Run()

	if len(completed) != 3 || len(failed) != 0 {
		t.Fatalf("completed=%d failed=%d, want 3/0", len(completed), len(failed))
	}
	d.VRAM().CheckInvariants()
	if d.VRAM().PressureBlocks() != 0 {
		t.Fatalf("pressure blocks leaked: %d", d.VRAM().PressureBlocks())
	}
}

// TestPCIeBrownoutSlowsCopies: halving the analytic PCIe bandwidth must
// stretch a run's makespan; restoring the factor restores it.
func TestPCIeBrownoutSlowsCopies(t *testing.T) {
	run := func(factor float64) sim.Time {
		cfg := DefaultConfig(sched.NewPaella(10000))
		env, d := testSetup(t, cfg, model.TinyNet())
		if factor != 1 {
			d.SetPCIeFactor(factor)
		}
		completed, _ := submitN(env, d, 5, "tinynet")
		env.Run()
		if len(completed) != 5 {
			t.Fatalf("completed %d of 5 at factor %v", len(completed), factor)
		}
		return env.Now()
	}
	healthy, browned := run(1), run(0.1)
	if browned <= healthy {
		t.Fatalf("brownout did not slow the run: healthy=%v browned=%v", healthy, browned)
	}
}
