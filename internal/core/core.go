// Package core implements the Paella dispatcher (§5): the single-core
// service that receives inference requests over per-client shared-memory
// rings, tracks ground-truth GPU occupancy through the instrumented
// notification queue, and releases each job's CUDA operations to the device
// exactly when they can be placed — bypassing the hardware scheduler's FIFO
// queues and applying an arbitrary software scheduling policy (§6).
//
// The dispatcher supports the paper's ablation modes (Table 3):
//
//   - ModeGated ("Paella"): kernel-granularity dispatch gated by the
//     occupancy mirror, ordered by a sched.Policy (SRPT+deficit by
//     default, or SJF/RR/FIFO).
//   - ModeKernelByKernel ("Paella-MS-kbk"): kernel-granularity release —
//     each kernel is issued to the job's own CUDA stream when its
//     predecessor completes — but with no occupancy information and no
//     policy (hardware scheduling order).
//   - ModeJobByJob ("Paella-MS-jbj"): whole jobs are issued to a fresh
//     CUDA stream on admission (hardware scheduling, Paella frontend).
//   - ModeSingleStream ("Paella-SS"): whole jobs are issued to one shared
//     CUDA stream on admission (strict FIFO).
//
// All modes share the frontend: zero-copy request rings, the hybrid
// interrupt/poll client wakeup, and single-core cost accounting.
package core

import (
	"fmt"

	"paella/internal/channel"
	"paella/internal/compiler"
	"paella/internal/cudart"
	"paella/internal/gpu"
	"paella/internal/metrics"
	"paella/internal/rbtree"
	"paella/internal/sched"
	"paella/internal/sim"
	"paella/internal/telemetry"
	"paella/internal/trace"
	"paella/internal/vram"
)

// Mode selects the dispatch strategy (Table 3 variants).
type Mode int

const (
	// ModeGated is full Paella: software-defined, occupancy-gated,
	// policy-ordered kernel dispatch.
	ModeGated Mode = iota
	// ModeKernelByKernel releases kernels one at a time per job, without
	// occupancy gating.
	ModeKernelByKernel
	// ModeJobByJob releases whole jobs to per-job CUDA streams.
	ModeJobByJob
	// ModeSingleStream releases whole jobs to one shared CUDA stream.
	ModeSingleStream
)

// String returns the Table 3 label of the mode.
func (m Mode) String() string {
	switch m {
	case ModeGated:
		return "Paella"
	case ModeKernelByKernel:
		return "Paella-MS-kbk"
	case ModeJobByJob:
		return "Paella-MS-jbj"
	case ModeSingleStream:
		return "Paella-SS"
	default:
		return "unknown"
	}
}

// Config parameterizes the dispatcher.
type Config struct {
	Mode Mode
	// Policy orders runnable jobs in ModeGated (ignored otherwise).
	Policy sched.Policy
	// OvershootBlocks is B (§6): how many thread blocks beyond full
	// utilization to keep queued at the device so it never starves during
	// the notification round trip.
	OvershootBlocks int
	// DispatchScan bounds how many policy candidates the dispatcher
	// examines per decision when the front of the order does not fit.
	DispatchScan int
	// RefineOnline enables §6's online profile refinement: observed
	// placement→completion times (from the notification channel) update
	// the per-kernel means that drive SRPT.
	RefineOnline bool
	// RefineEvery is how many observations accumulate between suffix-table
	// rebuilds (default 64 when RefineOnline is set).
	RefineEvery int

	// AdmitCost is dispatcher CPU time to accept one request from a ring.
	AdmitCost sim.Time
	// DispatchCost is dispatcher CPU time to release one GPU operation.
	DispatchCost sim.Time
	// SchedDelay is extra synthetic per-decision delay (the Figure 9
	// knob); zero in normal operation.
	SchedDelay sim.Time
	// PollCost is the fixed cost of one notifQ poll that returns data.
	PollCost sim.Time
	// PerNotifCost is the per-record processing cost.
	PerNotifCost sim.Time
	// ShmLatency is the one-way client↔dispatcher shared-memory latency.
	ShmLatency sim.Time

	// MemcpyLatency and PCIeBytesPerNs model DMA transfers issued by the
	// dispatcher.
	MemcpyLatency  sim.Time
	PCIeBytesPerNs float64

	// VRAM, when non-nil, bounds device memory: model weights occupy VRAM
	// and must be resident before kernels dispatch, cold models page in
	// over the same PCIe link as tensor traffic, and LRU eviction reclaims
	// space (internal/vram). Nil preserves the pre-residency behaviour —
	// every model permanently resident, analytic per-copy transfer times.
	// Residency is modelled on the gated dispatch path (ModeGated); the
	// ablation modes predate many-model serving and ignore it.
	VRAM *vram.Config

	// RingCapacity sizes each client's request ring (power of two).
	RingCapacity int
	// NotifQCapacity sizes the device notification queue (power of two).
	NotifQCapacity int

	// KernelTimeout arms a watchdog on every gated kernel dispatch: if the
	// kernel's notifications have not completed it within its serial upper
	// bound (Blocks × BlockDuration) plus this grace period, the dispatcher
	// reconciles the occupancy mirror and recovers (re-dispatch or forced
	// completion; see onKernelTimeout). Zero disables the watchdog — the
	// default, since a healthy channel never loses notifications.
	KernelTimeout sim.Time
	// MaxKernelRetries bounds watchdog-triggered re-dispatches per job
	// before the job fails with ErrKernelTimeout (default 3 when the
	// watchdog is armed).
	MaxKernelRetries int
	// MaxLiveJobs, when positive, turns on admission-control load shedding:
	// requests arriving while that many admitted jobs are still live are
	// rejected immediately with ErrAdmissionShed instead of queueing —
	// degrading goodput gracefully instead of collapsing p99.
	MaxLiveJobs int
	// MaxLoadRetries bounds weight-load retry attempts per model before the
	// waiting jobs fail with ErrLoadFailed (default 3).
	MaxLoadRetries int
	// LoadRetryBase is the first load-retry backoff; attempts double it
	// (default 100µs).
	LoadRetryBase sim.Time
	// FaultTolerant relaxes the dispatcher's fail-stop assertions for runs
	// with fault injection: stale or duplicated notifications are counted
	// and ignored instead of panicking. Implied by KernelTimeout > 0.
	FaultTolerant bool

	// MaxBatch enables dynamic batching in ModeGated when > 1: same-model,
	// same-position ready jobs coalesce into one batched kernel launch with
	// a widened grid (blocks × batch size) and the profiled sub-linear
	// per-kernel batch curve (compiler.Profile.BatchScale). ≤ 1 (the
	// default) disables batching entirely — the dispatch path is
	// byte-identical to the unbatched dispatcher.
	MaxBatch int
	// BatchWindow bounds how long the dispatcher may hold a lone ready
	// kernel waiting for batch partners. The effective wait is adaptive —
	// scaled by ready-queue depth and capped at half the head job's
	// deadline slack (see batchHoldWindow) — so batching engages under
	// load and degenerates to immediate dispatch when the queue is short.
	// Zero restricts batching to opportunistic coalescing (partners that
	// are already ready; never waits).
	BatchWindow sim.Time
	// BatchMinDepth is the ready-queue depth below which batch-formation
	// holds never engage (low occupancy: the latency cost cannot pay for
	// itself). Default 2×MaxBatch.
	BatchMinDepth int
}

// DefaultConfig returns dispatcher costs calibrated to the paper's
// measurements (single Xeon Silver core; Figure 10's µs-scale overheads).
func DefaultConfig(policy sched.Policy) Config {
	return Config{
		Mode:            ModeGated,
		Policy:          policy,
		OvershootBlocks: 96,
		DispatchScan:    16,
		AdmitCost:       1500 * sim.Nanosecond,
		DispatchCost:    2 * sim.Microsecond,
		PollCost:        300 * sim.Nanosecond,
		PerNotifCost:    60 * sim.Nanosecond,
		ShmLatency:      400 * sim.Nanosecond,
		MemcpyLatency:   10 * sim.Microsecond,
		PCIeBytesPerNs:  12.0,
		RingCapacity:    1024,
		NotifQCapacity:  1 << 14,
		// Recovery knobs: the watchdog itself stays off (KernelTimeout
		// zero) until a fault-aware caller arms it.
		MaxKernelRetries: 3,
		MaxLoadRetries:   3,
		LoadRetryBase:    100 * sim.Microsecond,
	}
}

// Request is one inference request as carried by a client ring: the
// shared-memory analogue of paella.predict's arguments (§5.1). The input
// and output tensors live in the client's shared region; only sizes travel
// here (zero-copy).
type Request struct {
	ID     uint64
	Model  string
	Client int
	// Submit is the client-side call time.
	Submit sim.Time
	// Deadline is an optional absolute completion deadline, carried
	// through the channel for deadline-aware policies (EDF). Zero means
	// best-effort.
	Deadline sim.Time
	// Tenant identifies the workload owner for multi-tenant QoS: the
	// cluster gateway's admission control and per-tenant accounting key on
	// it, and it is copied into the request's JobRecord. Empty means
	// untenanted (single-tenant deployments).
	Tenant string
	// Session groups requests that share server-side state (an LLM
	// conversation reusing KV-cache); the gateway's affinity routing keeps
	// a session on its home replica. Zero means sessionless.
	Session uint64
}

// ClientConn is the dispatcher's end of one client's shared-memory region.
type ClientConn struct {
	ID   int
	ring *channel.SPSC[Request]
	d    *Dispatcher
	// dead marks a disconnected client: its live jobs were aborted and no
	// further callbacks fire (the shared region is gone).
	dead bool

	// OnAlmostFinished is rung (once per request) when the request's
	// output is imminent — the hybrid wakeup's interrupt (§5.3).
	OnAlmostFinished func(reqID uint64)
	// OnComplete delivers the finished request id (the completion ring).
	OnComplete func(reqID uint64)
	// OnFailed delivers a typed failure for a request that will never
	// complete (admission shed, kernel timeout, load failure). Requests of
	// a disconnected client fail silently — there is no one to notify.
	OnFailed func(reqID uint64, err error)
}

// Submit pushes a request into the ring and wakes the dispatcher after the
// shared-memory propagation latency. It reports false if the ring is full
// (the client should back off and retry).
func (c *ClientConn) Submit(req Request) bool {
	if !c.ring.Push(req) {
		return false
	}
	c.d.env.After(c.d.cfg.ShmLatency, c.d.wakeNow)
	return true
}

// Disconnect severs the client mid-flight (fault injection: the client
// process died, its shared-memory region is unmapped). After the channel
// latency the dispatcher aborts the client's live jobs — in-flight kernels
// drain (GPU blocks cannot be preempted), then each job records a typed
// ErrClientDisconnected failure — and requests still queued in the ring are
// failed at admission. No callbacks fire on a dead connection.
func (c *ClientConn) Disconnect() {
	c.d.env.After(c.d.cfg.ShmLatency, func() { c.d.disconnectClient(c.ID) })
}

// Cancel aborts the identified request: undispatched kernels and copies
// are dropped; kernels already on the device run to completion (GPU
// thread blocks cannot be preempted, §2.1), after which the job finishes
// immediately with its record marked cancelled. This job-level preemption
// is exactly what the hardware's FIFO queues cannot offer. Cancellation
// applies to gated model-path jobs; the request is located after the
// channel latency, so a request that already completed is a no-op.
func (c *ClientConn) Cancel(reqID uint64) {
	c.d.env.After(c.d.cfg.ShmLatency, func() { c.d.cancel(reqID) })
}

// inflightKernel tracks one dispatched-but-unfinished kernel in ModeGated.
type inflightKernel struct {
	job           *Job
	spec          *gpu.KernelSpec
	placed        int
	completed     int
	firstPlacedAt sim.Time
	// op links back to the waitlist entry for adaptor-backed jobs (nil for
	// the standard model path).
	op *wlOp
	// members holds every job riding a batched launch (empty for an
	// unbatched kernel; members[0] == job). Completion fans out to each
	// member in formation order.
	members []*Job
	// sentAt stamps the dispatch (batch span tracing); actBytes is the
	// activation scratch reserved for the batch's members (vram gauge).
	sentAt   sim.Time
	actBytes int64
	// launch is the device-side Launch this record tracks, recycled with
	// the record when its fate is certain (LaunchDone).
	launch *gpu.Launch
}

// newInflight returns a zeroed inflight record, reusing a pooled one when
// available (its members slice keeps its capacity for batch reuse).
func (d *Dispatcher) newInflight() *inflightKernel {
	if n := len(d.flFree); n > 0 {
		fl := d.flFree[n-1]
		d.flFree = d.flFree[:n-1]
		return fl
	}
	return &inflightKernel{}
}

// putInflight retires an inflight record to the pool. The Launch is
// recycled alongside only when Recycle vouches for it (LaunchDone); a
// launch reconciled by the watchdog while the device may still hold it is
// left to the garbage collector.
func (d *Dispatcher) putInflight(fl *inflightKernel) {
	if fl.launch != nil && fl.launch.Recycle() {
		d.launchFree = append(d.launchFree, fl.launch)
	}
	members := fl.members
	for i := range members {
		members[i] = nil
	}
	*fl = inflightKernel{}
	if members != nil {
		fl.members = members[:0]
	}
	d.flFree = append(d.flFree, fl)
}

// newLaunch returns a zeroed Launch, pooled when available.
func (d *Dispatcher) newLaunch() *gpu.Launch {
	if n := len(d.launchFree); n > 0 {
		l := d.launchFree[n-1]
		d.launchFree = d.launchFree[:n-1]
		return l
	}
	return &gpu.Launch{}
}

// Dispatcher is the Paella service. Construct with New, register models,
// connect clients, then Start.
type Dispatcher struct {
	env    *sim.Env
	dev    *gpu.Device
	cfg    Config
	notifQ *channel.NotifQueue

	models   map[string]*compiler.Instrumented
	adaptors map[string]*adaptorEntry
	clients  []*ClientConn

	wake    *sim.Cond
	awake   bool
	stopped bool

	mirror       mirror
	jobs         map[uint64]*Job // live gated model-path jobs by request id
	inflight     map[uint32]*inflightKernel
	nextKernelID uint32
	queueCursor  int
	nbuf         []channel.Notification

	// fitsFn is the dispatch-gate predicate handed to Policy.PickFit,
	// allocated once at construction: the dispatch loop runs per kernel
	// release, and a per-pass closure literal was its only steady-state
	// heap allocation.
	fitsFn func(*sched.JobEntry) bool

	// flFree and launchFree pool inflight-kernel records and device Launch
	// structs: every kernel dispatch needs one of each, and both die at
	// the matching completion notification, so steady state recirculates a
	// population bounded by the in-flight window instead of allocating.
	flFree     []*inflightKernel
	launchFree []*gpu.Launch

	// Dynamic batching state (inert unless Config.MaxBatch > 1; see
	// batch.go). batchIndex groups ready same-model, same-position jobs by
	// batch key; holds tracks the (at most one per key) job held open for
	// partners; batchSpecs caches widened kernel clones; the scratch
	// slices are reused across formations.
	batchIndex   map[batchKey]*rbtree.Tree[*Job]
	holds        map[batchKey]*Job
	batchSpecs   map[batchSpecKey]*gpu.KernelSpec
	batchScratch []*Job
	entryScratch []*sched.JobEntry

	rtCtx        *cudart.Context
	sharedStream *cudart.Stream

	// vramMgr tracks weight residency when Config.VRAM is set; pcie is the
	// shared DMA link all transfers (tensors and weight loads) then ride.
	// Both are nil in the legacy unconstrained-memory configuration.
	vramMgr *vram.Manager
	pcie    *cudart.PCIeLink
	// loads tracks in-progress and memory-starved weight loads by model.
	loads map[string]*loadState
	// failNextLoad holds injected load-failure budgets by model: each unit
	// makes the next completing weight load for that model fail (fault
	// injection via FailNextLoad).
	failNextLoad map[string]int
	// pcieFactor scales the analytic memcpy bandwidth (fault injection's
	// brownout on the unconstrained-memory path; the shared PCIeLink has
	// its own factor).
	pcieFactor float64
	// pressureHeld tracks VRAM blocks held by injected memory pressure.
	pressureHeld int

	collector *metrics.Collector
	stats     Stats

	// rec is the structured tracing recorder (nil = disabled). Job
	// lifecycle phases are emitted as async spans keyed by request id under
	// traceProc; admissions and scheduling decisions are instants on their
	// own tracks; readyC/inflightC/liveC are the dispatcher's load
	// counters.
	rec        *trace.Recorder
	traceProc  trace.ProcID
	admitTrack trace.TrackID
	schedTrack trace.TrackID
	readyC     trace.CounterID
	inflightC  trace.CounterID
	liveC      trace.CounterID

	// mt is the windowed telemetry meter (nil = disabled), the recorder's
	// aggregate sibling: load gauges sampled at the traceCounters sites,
	// shed/retry counters, the batch-width histogram, and per-request
	// records fed at completion (internal/telemetry).
	mt         *telemetry.Meter
	mtLive     telemetry.MetricID
	mtInflight telemetry.MetricID
	mtReady    telemetry.MetricID
	mtShed     telemetry.MetricID
	mtRetries  telemetry.MetricID
	mtBatchW   telemetry.MetricID
}

// loadState is one model's cold-start bookkeeping: the jobs waiting for
// its weights, and whether the load is blocked on free VRAM.
type loadState struct {
	waiters []*Job
	// pending marks a load that could not begin because every candidate
	// eviction victim was pinned; it is retried when a job finishes (the
	// only event that unpins memory) or when injected pressure releases.
	pending bool
	// attempts counts failed transfer attempts (fault injection); retries
	// back off exponentially from Config.LoadRetryBase.
	attempts int
}

// Stats counts dispatcher activity.
type Stats struct {
	Admitted      uint64
	Completed     uint64
	KernelsSent   uint64
	CopiesSent    uint64
	NotifsHandled uint64
	LoopWakeups   uint64
	// Failed counts admitted jobs that terminated with a typed error.
	Failed uint64
	// Shed counts requests rejected at admission by load shedding.
	Shed uint64
	// KernelTimeouts counts watchdog firings; KernelRetries counts the
	// subset that re-dispatched the kernel; StaleNotifs counts notifications
	// ignored in fault-tolerant mode (late records for reconciled kernels,
	// duplicate block counts).
	KernelTimeouts uint64
	KernelRetries  uint64
	StaleNotifs    uint64
	// LoadRetries and LoadFailures count weight-load recovery activity.
	LoadRetries  uint64
	LoadFailures uint64
	// Batches counts batched kernel launches (width ≥ 2); BatchedJobs sums
	// their member counts; BatchHolds counts batch-formation windows armed
	// on a lone ready kernel. All zero when batching is off.
	Batches     uint64
	BatchedJobs uint64
	BatchHolds  uint64
	// BusyNs is the dispatcher core's cumulative busy time (the paper's
	// single-core claim is checkable: BusyNs / elapsed is its utilization).
	BusyNs sim.Time
}

// New builds a dispatcher bound to a device. In ModeGated the device must
// have been created with the dispatcher's notification queue — use
// NewWithDevice for the common case.
func New(env *sim.Env, dev *gpu.Device, notifQ *channel.NotifQueue, cfg Config) *Dispatcher {
	if cfg.Mode == ModeGated && cfg.Policy == nil {
		panic("core: ModeGated requires a policy")
	}
	d := &Dispatcher{
		env:          env,
		dev:          dev,
		cfg:          cfg,
		notifQ:       notifQ,
		models:       make(map[string]*compiler.Instrumented),
		wake:         sim.NewCond(env),
		jobs:         make(map[uint64]*Job),
		inflight:     make(map[uint32]*inflightKernel),
		nbuf:         make([]channel.Notification, 256),
		collector:    metrics.NewCollector(),
		failNextLoad: make(map[string]int),
		pcieFactor:   1,
	}
	d.mirror = newMirror(dev.Config(), cfg.OvershootBlocks)
	// The gate predicate is allocated once: kernels of a cold model cannot
	// run (weights still paging in), jobs held for batch formation are
	// skipped (fitting partners will release them), and everything else is
	// gated by the occupancy mirror. The scan skips non-fitting jobs so
	// warm work keeps the device busy.
	d.fitsFn = func(e *sched.JobEntry) bool {
		j := e.Payload.(*Job)
		if !d.ModelResident(j.Req.Model) {
			return false
		}
		if d.cfg.MaxBatch > 1 && j.held {
			return false
		}
		return d.mirror.CanAccept(j.peekKernel())
	}
	if cfg.MaxBatch > 1 {
		d.batchIndex = make(map[batchKey]*rbtree.Tree[*Job])
		d.holds = make(map[batchKey]*Job)
		d.batchSpecs = make(map[batchSpecKey]*gpu.KernelSpec)
		d.batchScratch = make([]*Job, 0, cfg.MaxBatch)
		d.entryScratch = make([]*sched.JobEntry, 0, cfg.MaxBatch)
	}
	// Track SM retirements: the occupancy mirror must gate against the
	// surviving capacity, or the dispatcher would keep over-releasing work
	// the device can no longer absorb.
	dev.OnTopologyChange(func(online int) {
		d.mirror.rescale(dev.Config(), online)
		d.wakeNow()
	})
	if rec := trace.FromEnv(env); rec != nil {
		d.rec = rec
		d.traceProc = rec.Process("dispatcher")
		d.admitTrack = rec.Thread(d.traceProc, "admit")
		d.schedTrack = rec.Thread(d.traceProc, "sched")
		d.readyC = rec.Counter(d.traceProc, "ready jobs")
		d.inflightC = rec.Counter(d.traceProc, "inflight kernels")
		d.liveC = rec.Counter(d.traceProc, "live jobs")
	}
	if mt := telemetry.FromEnv(env); mt != nil {
		d.mt = mt
		d.mtLive = mt.Gauge("core/live_jobs")
		d.mtInflight = mt.Gauge("core/inflight_kernels")
		d.mtReady = mt.Gauge("core/ready_jobs")
		d.mtShed = mt.Counter("core/shed")
		d.mtRetries = mt.Counter("core/kernel_retries")
		d.mtBatchW = mt.Histogram("core/batch_width")
	}
	if cfg.VRAM != nil {
		d.vramMgr = vram.MustNewManager(*cfg.VRAM)
		d.pcie = cudart.NewPCIeLink(env, cfg.MemcpyLatency, cfg.PCIeBytesPerNs)
		d.loads = make(map[string]*loadState)
		if d.rec != nil {
			d.vramMgr.AttachTrace(d.rec, d.traceProc)
		}
		d.vramMgr.AttachMeter(d.mt)
	}
	// The ablation modes drive the device through an unhooked CUDA
	// runtime; dispatch costs are charged by the dispatcher loop, so the
	// runtime's own host costs are zeroed.
	d.rtCtx = cudart.NewContext(env, dev, cudart.Config{
		MemcpyLatency:  cfg.MemcpyLatency,
		PCIeBytesPerNs: cfg.PCIeBytesPerNs,
	})
	if cfg.Mode == ModeSingleStream {
		d.sharedStream = d.rtCtx.StreamCreate()
	}
	if notifQ != nil {
		dev.OnNotifPosted(d.wakeNow)
	}
	return d
}

// NewWithDevice builds the notification queue, device and dispatcher
// together (the common setup path).
func NewWithDevice(env *sim.Env, devCfg gpu.Config, cfg Config) *Dispatcher {
	cap := cfg.NotifQCapacity
	if cap == 0 {
		cap = 1 << 14
	}
	nq := channel.NewNotifQueue(cap)
	dev := gpu.NewDevice(env, devCfg, nq)
	return New(env, dev, nq, cfg)
}

// Env returns the simulation environment.
func (d *Dispatcher) Env() *sim.Env { return d.env }

// Device returns the GPU the dispatcher manages.
func (d *Dispatcher) Device() *gpu.Device { return d.dev }

// Collector returns the per-request metrics collector.
func (d *Dispatcher) Collector() *metrics.Collector { return d.collector }

// Stats returns a snapshot of dispatcher counters.
func (d *Dispatcher) Stats() Stats { return d.stats }

// RegisterModel adds a compiled model to the library of launchable jobs
// (§5.1). The model must have been profiled (for SRPT estimates).
func (d *Dispatcher) RegisterModel(ins *compiler.Instrumented) error {
	if ins.Profile == nil {
		return fmt.Errorf("core: model %q registered without a profile", ins.Model.Name)
	}
	if _, dup := d.models[ins.Model.Name]; dup {
		return fmt.Errorf("core: model %q already registered", ins.Model.Name)
	}
	for _, k := range ins.Model.Kernels {
		if !k.FitsSM(d.dev.Config().SM) {
			return fmt.Errorf("core: model %q kernel %q can never fit an SM of %s",
				ins.Model.Name, k.Name, d.dev.Config().Name)
		}
	}
	if d.vramMgr != nil {
		if err := d.vramMgr.Register(ins.Model.Name, int64(ins.Model.WeightBytes)); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	d.models[ins.Model.Name] = ins
	return nil
}

// VRAM returns the residency manager, or nil when device memory is
// unconstrained.
func (d *Dispatcher) VRAM() *vram.Manager { return d.vramMgr }

// PCIe returns the shared DMA link, or nil in the legacy analytic
// configuration.
func (d *Dispatcher) PCIe() *cudart.PCIeLink { return d.pcie }

// ColdLoadDuration returns the modeled host→device time to page the given
// weight bytes onto this device: the shared DMA link's transfer duration
// when device memory is constrained, the analytic memcpy estimate (with any
// injected brownout factor) otherwise. The cluster autoscaler uses it to
// price replica cold-starts even on unconstrained-memory fleets.
func (d *Dispatcher) ColdLoadDuration(bytes int64) sim.Time {
	if bytes <= 0 {
		return 0
	}
	if d.pcie != nil {
		return d.pcie.Duration(int(bytes))
	}
	return d.cfg.MemcpyLatency + sim.Time(float64(bytes)/(d.cfg.PCIeBytesPerNs*d.pcieFactor))
}

// ModelResident reports whether the named model's weights are in device
// memory. Always true when memory is unconstrained, and for models the
// residency manager does not track (adaptor jobs).
func (d *Dispatcher) ModelResident(name string) bool {
	if d.vramMgr == nil || !d.vramMgr.Registered(name) {
		return true
	}
	return d.vramMgr.Resident(name)
}

// tolerant reports whether the dispatcher runs with relaxed fail-stop
// assertions (fault injection active).
func (d *Dispatcher) tolerant() bool {
	return d.cfg.FaultTolerant || d.cfg.KernelTimeout > 0
}

// FailNextLoad arms one injected failure for the named model's next
// completing weight load (fault injection). The dispatcher reacts with
// bounded exponential-backoff retries; see loadDone.
func (d *Dispatcher) FailNextLoad(model string) { d.failNextLoad[model]++ }

// SetPCIeFactor scales the effective PCIe bandwidth (fault injection's
// brownout): both the shared DMA link (when device memory is constrained)
// and the analytic memcpy path honour it. Factor 1 restores health.
func (d *Dispatcher) SetPCIeFactor(f float64) {
	if f <= 0 {
		panic(fmt.Sprintf("core: PCIe factor %f", f))
	}
	d.pcieFactor = f
	if d.pcie != nil {
		d.pcie.SetBandwidthFactor(f)
	}
}

// InjectVRAMPressure carves the given bytes out of the device-memory budget
// (fault injection: a co-tenant allocation spike), evicting LRU unpinned
// models as needed. Returns the bytes actually taken (less when most of the
// budget is pinned); a no-op returning zero when memory is unconstrained.
func (d *Dispatcher) InjectVRAMPressure(bytes int64) int64 {
	if d.vramMgr == nil || bytes <= 0 {
		return 0
	}
	blockBytes := d.vramMgr.CapacityBytes() / int64(d.vramMgr.TotalBlocks())
	blocks := int((bytes + blockBytes - 1) / blockBytes)
	got := d.vramMgr.ReservePressure(blocks, d.env.Now())
	d.pressureHeld += got
	return int64(got) * blockBytes
}

// ReleaseVRAMPressure returns all injected pressure to the budget and
// retries loads that were parked on memory starvation.
func (d *Dispatcher) ReleaseVRAMPressure() {
	if d.vramMgr == nil || d.pressureHeld == 0 {
		return
	}
	d.vramMgr.ReleasePressure(d.pressureHeld, d.env.Now())
	d.pressureHeld = 0
	d.retryPendingLoads()
	d.wakeNow()
}

// Model returns a registered model.
func (d *Dispatcher) Model(name string) (*compiler.Instrumented, bool) {
	ins, ok := d.models[name]
	return ins, ok
}

// Connect allocates a client's shared-memory region (request ring plus
// completion hooks) and returns the connection handle.
func (d *Dispatcher) Connect() *ClientConn {
	cap := d.cfg.RingCapacity
	if cap == 0 {
		cap = 1024
	}
	c := &ClientConn{
		ID:   len(d.clients),
		ring: channel.NewSPSC[Request](cap),
		d:    d,
	}
	d.clients = append(d.clients, c)
	return c
}

// Start launches the dispatcher loop on its dedicated core.
func (d *Dispatcher) Start() {
	d.env.Spawn("paella-dispatcher", d.loop)
}

// Stop makes the loop exit at its next wakeup (test hygiene).
func (d *Dispatcher) Stop() {
	d.stopped = true
	d.wakeNow()
}

func (d *Dispatcher) wakeNow() {
	if !d.awake {
		d.wake.Broadcast()
	}
}

// charge burns dispatcher-core time and accounts it.
func (d *Dispatcher) charge(p *sim.Proc, cost sim.Time) {
	if cost <= 0 {
		return
	}
	d.stats.BusyNs += cost
	p.Sleep(cost)
}

// traceCounters samples the dispatcher's load counters (live jobs,
// in-flight kernels, policy ready-queue length) into the trace recorder
// and the telemetry meter. Change-deduplication in the recorder and
// window aggregation in the meter keep repeated calls cheap; with both
// disabled the call is a single branch.
func (d *Dispatcher) traceCounters() {
	if d.rec == nil && d.mt == nil {
		return
	}
	now := d.env.Now()
	live := float64(d.stats.Admitted - d.stats.Completed - d.stats.Failed)
	if d.rec != nil {
		d.rec.Sample(d.liveC, "value", now, live)
		d.rec.Sample(d.inflightC, "value", now, float64(len(d.inflight)))
		if d.cfg.Policy != nil {
			d.rec.Sample(d.readyC, "value", now, float64(d.cfg.Policy.Len()))
		}
	}
	if d.mt != nil {
		d.mt.Set(d.mtLive, now, live)
		d.mt.Set(d.mtInflight, now, float64(len(d.inflight)))
		if d.cfg.Policy != nil {
			d.mt.Set(d.mtReady, now, float64(d.cfg.Policy.Len()))
		}
	}
}

// loop is the dispatcher's single-core main loop: poll client rings
// round-robin, fold in GPU notifications, then dispatch while the gating
// condition holds. Every action charges its CPU cost via Sleep, so the
// dispatcher saturates realistically (Figure 9).
func (d *Dispatcher) loop(p *sim.Proc) {
	d.awake = true
	for !d.stopped {
		progressed := false
		// 1. Client→Paella channel: round-robin ring polling (§5.1).
		for _, c := range d.clients {
			for {
				req, ok := c.ring.Pop()
				if !ok {
					break
				}
				d.charge(p, d.cfg.AdmitCost)
				d.admit(p, req)
				progressed = true
			}
		}
		// 2. Paella↔GPU channel: drain instrumented notifications (§5.2).
		if d.notifQ != nil {
			for {
				n := d.notifQ.Poll(d.nbuf)
				if n == 0 {
					break
				}
				d.charge(p, d.cfg.PollCost+sim.Time(n)*d.cfg.PerNotifCost)
				for i := 0; i < n; i++ {
					d.applyNotif(d.nbuf[i])
				}
				progressed = true
			}
		}
		// 3. Software-defined dispatch (§6): release the policy's best
		// fitting job, scanning past unplaceable candidates for work
		// conservation.
		if d.cfg.Mode == ModeGated {
			for {
				e := d.cfg.Policy.PickFit(d.fitsFn, d.cfg.DispatchScan)
				if e == nil {
					break
				}
				d.charge(p, d.cfg.SchedDelay+d.cfg.DispatchCost)
				j := e.Payload.(*Job)
				if !j.inPolicy {
					// Charging the dispatch cost yields the loop, and a
					// callback in that window (client disconnect, cancel)
					// may have failed the job and pulled it from the
					// policy. Skip it; its terminal path is already set.
					progressed = true
					continue
				}
				if d.cfg.MaxBatch > 1 && j.wl == nil && d.tryBatch(j) {
					// Dispatched as a batched launch, or held open for
					// partners; either way the head was consumed.
					progressed = true
					continue
				}
				d.dispatchKernel(j)
				progressed = true
			}
		}
		if !progressed {
			d.awake = false
			d.stats.LoopWakeups++
			p.WaitCond(d.wake)
			d.awake = true
		}
	}
}
