package core

import (
	"testing"

	"paella/internal/compiler"
	"paella/internal/gpu"
	"paella/internal/model"
	"paella/internal/sched"
	"paella/internal/sim"
)

// testSetup builds a dispatcher on a T4-like device with zero launch
// overhead for crisp assertions.
func testSetup(t *testing.T, cfg Config, models ...*model.Model) (*sim.Env, *Dispatcher) {
	t.Helper()
	env := sim.NewEnv()
	devCfg := gpu.TeslaT4()
	devCfg.LaunchOverhead = 0
	d := NewWithDevice(env, devCfg, cfg)
	for _, m := range models {
		ins := compiler.MustCompile(m, compiler.DefaultConfig(), devCfg, 2)
		if err := d.RegisterModel(ins); err != nil {
			t.Fatal(err)
		}
	}
	d.Start()
	return env, d
}

func gatedCfg() Config {
	return DefaultConfig(sched.NewPaella(100))
}

// submit pushes a request and returns a pointer that will hold delivery
// time once the result arrives.
func submit(env *sim.Env, conn *ClientConn, id uint64, mdl string, at sim.Time) *sim.Time {
	delivered := new(sim.Time)
	*delivered = -1
	prev := conn.OnComplete
	conn.OnComplete = func(reqID uint64) {
		if reqID == id {
			*delivered = env.Now()
		} else if prev != nil {
			prev(reqID)
		}
	}
	env.At(at, func() {
		ok := conn.Submit(Request{ID: id, Model: mdl, Client: conn.ID, Submit: env.Now()})
		if !ok {
			panic("ring full")
		}
	})
	return delivered
}

func TestGatedSingleJobCompletes(t *testing.T) {
	env, d := testSetup(t, gatedCfg(), model.TinyNet())
	conn := d.Connect()
	var almost, done sim.Time = -1, -1
	conn.OnAlmostFinished = func(uint64) { almost = env.Now() }
	conn.OnComplete = func(uint64) { done = env.Now() }
	env.At(0, func() {
		conn.Submit(Request{ID: 1, Model: "tinynet", Client: 0, Submit: 0})
	})
	env.Run()
	if done < 0 {
		t.Fatal("job never completed")
	}
	if almost < 0 || almost > done {
		t.Fatalf("almost-finished at %v, done at %v", almost, done)
	}
	st := d.Stats()
	if st.Admitted != 1 || st.Completed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// TinyNet has 3 kernels; each emits ≥2 notifications.
	if st.KernelsSent != 3 {
		t.Fatalf("KernelsSent = %d", st.KernelsSent)
	}
	if st.NotifsHandled < 6 {
		t.Fatalf("NotifsHandled = %d", st.NotifsHandled)
	}
	recs := d.Collector().Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	r := recs[0]
	if !(r.Submit <= r.Admit && r.Admit <= r.FirstDispatch && r.FirstDispatch <= r.ExecDone && r.ExecDone <= r.Delivered) {
		t.Fatalf("timeline out of order: %+v", r)
	}
	// Latency should be dominated by model execution (~100µs of kernels +
	// input copy), with only µs-scale overheads.
	jct := r.JCT()
	if jct < 100*sim.Microsecond || jct > 400*sim.Microsecond {
		t.Fatalf("JCT = %v, want ~100-400µs", jct)
	}
}

func TestGatedManyJobsAllComplete(t *testing.T) {
	env, d := testSetup(t, gatedCfg(), model.TinyNet())
	conn := d.Connect()
	done := 0
	conn.OnComplete = func(uint64) { done++ }
	for i := 0; i < 50; i++ {
		id := uint64(i + 1)
		at := sim.Time(i) * 20 * sim.Microsecond
		env.At(at, func() {
			if !conn.Submit(Request{ID: id, Model: "tinynet", Client: 0, Submit: env.Now()}) {
				t.Error("ring full")
			}
		})
	}
	env.Run()
	if done != 50 {
		t.Fatalf("completed %d of 50", done)
	}
	if !d.mirror.Idle() {
		t.Fatal("mirror not idle after drain")
	}
	if len(d.inflight) != 0 {
		t.Fatalf("%d kernels still inflight", len(d.inflight))
	}
}

func TestModesAllComplete(t *testing.T) {
	for _, mode := range []Mode{ModeGated, ModeKernelByKernel, ModeJobByJob, ModeSingleStream} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			cfg := gatedCfg()
			cfg.Mode = mode
			if mode != ModeGated {
				cfg.Policy = nil
			}
			env, d := testSetup(t, cfg, model.TinyNet())
			conn := d.Connect()
			done := 0
			conn.OnComplete = func(uint64) { done++ }
			for i := 0; i < 10; i++ {
				id := uint64(i + 1)
				env.At(sim.Time(i)*50*sim.Microsecond, func() {
					conn.Submit(Request{ID: id, Model: "tinynet", Client: 0, Submit: env.Now()})
				})
			}
			env.Run()
			if done != 10 {
				t.Fatalf("%s: completed %d of 10", mode, done)
			}
		})
	}
}

// TestSingleStreamSerializes: in ModeSingleStream two jobs submitted
// together must not overlap on the GPU, while ModeGated overlaps them.
func TestSingleStreamSerializesGatedOverlaps(t *testing.T) {
	run := func(mode Mode) sim.Time {
		cfg := gatedCfg()
		cfg.Mode = mode
		if mode != ModeGated {
			cfg.Policy = nil
		}
		env, d := testSetup(t, cfg, model.Fig2Job())
		conn := d.Connect()
		var last sim.Time
		done := 0
		conn.OnComplete = func(uint64) { done++; last = env.Now() }
		for i := 0; i < 4; i++ {
			id := uint64(i + 1)
			env.At(0, func() {
				conn.Submit(Request{ID: id, Model: "fig2job", Client: 0, Submit: 0})
			})
		}
		env.Run()
		if done != 4 {
			t.Fatalf("%v: completed %d of 4", mode, done)
		}
		return last
	}
	serial := run(ModeSingleStream)
	overlapped := run(ModeGated)
	// Four 8-kernel jobs of ~300µs kernels: serialized ≈ 4×8×300µs ≈
	// 9.6ms; overlapped ≈ 8×300µs ≈ 2.4ms (plus copies and overheads).
	if serial < 3*overlapped/2 {
		t.Fatalf("single stream (%v) not clearly slower than gated (%v)", serial, overlapped)
	}
}

// TestGatedSRPTPrefersShortJob: under ModeGated with SRPT, a short job
// arriving at a busy device overtakes queued long work.
func TestGatedSRPTPrefersShortJob(t *testing.T) {
	short, long := model.LongShort()
	cfg := DefaultConfig(sched.NewSRPT())
	env, d := testSetup(t, cfg, short, long)
	conn := d.Connect()
	finished := map[uint64]sim.Time{}
	conn.OnComplete = func(id uint64) { finished[id] = env.Now() }
	// Saturate with long jobs, then submit one short job.
	for i := 0; i < 6; i++ {
		id := uint64(i + 1)
		env.At(0, func() {
			conn.Submit(Request{ID: id, Model: "longjob", Client: 0, Submit: 0})
		})
	}
	env.At(100*sim.Microsecond, func() {
		conn.Submit(Request{ID: 100, Model: "shortjob", Client: 0, Submit: env.Now()})
	})
	env.Run()
	if len(finished) != 7 {
		t.Fatalf("finished %d of 7", len(finished))
	}
	shortDone := finished[100]
	longFirst := finished[1]
	for id, at := range finished {
		if id != 100 && at < longFirst {
			longFirst = at
		}
	}
	if shortDone > longFirst {
		t.Fatalf("short job (%v) did not beat first long job (%v) under SRPT", shortDone, longFirst)
	}
}

// TestGatedKeepsQueuesShallow: with occupancy gating the device hardware
// queues never hold more than the overshoot budget worth of blocks.
func TestGatedKeepsQueuesShallow(t *testing.T) {
	cfg := gatedCfg()
	cfg.OvershootBlocks = 8
	env, d := testSetup(t, cfg, model.Fig2Job())
	conn := d.Connect()
	done := 0
	conn.OnComplete = func(uint64) { done++ }
	for i := 0; i < 40; i++ {
		id := uint64(i + 1)
		env.At(0, func() {
			conn.Submit(Request{ID: id, Model: "fig2job", Client: 0, Submit: 0})
		})
	}
	maxQueued := 0
	for env.Step() {
		if q := d.dev.TotalQueued(); q > maxQueued {
			maxQueued = q
		}
	}
	if done != 40 {
		t.Fatalf("completed %d of 40", done)
	}
	// fig2job kernels are 1 block each; queued launches are bounded by the
	// device capacity prediction plus B (8). The whole device fits 640
	// blocks of this shape, so the bound is generous; the key property is
	// that we never see all 320 kernels queued at once.
	if maxQueued > 330 {
		t.Fatalf("hardware queues held %d launches — gating ineffective", maxQueued)
	}
	if maxQueued == 0 {
		t.Fatal("nothing ever queued?")
	}
}

func TestRegisterModelValidation(t *testing.T) {
	env := sim.NewEnv()
	d := NewWithDevice(env, gpu.TeslaT4(), gatedCfg())
	ins := compiler.MustInstrument(model.TinyNet(), compiler.DefaultConfig())
	if err := d.RegisterModel(ins); err == nil {
		t.Fatal("unprofiled model registered")
	}
	full := compiler.MustCompile(model.TinyNet(), compiler.DefaultConfig(), gpu.TeslaT4(), 1)
	if err := d.RegisterModel(full); err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterModel(full); err == nil {
		t.Fatal("duplicate model registered")
	}
	if _, ok := d.Model("tinynet"); !ok {
		t.Fatal("Model lookup failed")
	}
}

func TestMirrorAccounting(t *testing.T) {
	m := newMirror(gpu.Config{
		NumSMs: 2,
		SM:     gpu.SMResources{MaxBlocks: 4, MaxThreads: 1024, MaxRegisters: 65536, MaxSharedMem: 48 << 10},
	}, 4)
	k := &gpu.KernelSpec{Name: "k", Blocks: 4, ThreadsPerBlock: 256, RegsPerThread: 8, BlockDuration: 1}
	if !m.CanAccept(k) {
		t.Fatal("empty mirror rejected kernel")
	}
	// Capacity: 8 block slots, 2048 threads. Each kernel: 4 blocks, 1024
	// threads. Two fit within capacity; with 8 blocks reserved
	// (unconfirmed), the overshoot budget of 4 is exhausted, so a third is
	// rejected until placements confirm.
	m.Reserve(k)
	m.Reserve(k)
	if m.CanAccept(k) {
		t.Fatal("accepted beyond capacity with overshoot exhausted by reservations")
	}
	// Placement notifications convert reserved to resident; the hardware
	// queue is now empty (rsv=0 < B), so one more kernel may be queued
	// beyond full utilization — but only one.
	m.Place(k, 4)
	m.Place(k, 4)
	if !m.CanAccept(k) {
		t.Fatal("overshoot budget not honoured after placements confirmed")
	}
	m.Reserve(k)
	if m.CanAccept(k) {
		t.Fatal("accepted beyond capacity + overshoot")
	}
	m.Place(k, 4)
	m.Complete(k, 4)
	m.Complete(k, 4)
	m.Complete(k, 4)
	if !m.Idle() {
		t.Fatal("mirror not idle after full cycle")
	}
}

func TestMirrorNegativePanics(t *testing.T) {
	m := newMirror(gpu.TeslaT4(), 4)
	k := &gpu.KernelSpec{Name: "k", Blocks: 1, ThreadsPerBlock: 32, RegsPerThread: 1, BlockDuration: 1}
	defer func() {
		if recover() == nil {
			t.Error("negative residency did not panic")
		}
	}()
	m.Complete(k, 1)
}

func TestUnknownModelPanics(t *testing.T) {
	env, d := testSetup(t, gatedCfg(), model.TinyNet())
	conn := d.Connect()
	env.At(0, func() {
		conn.Submit(Request{ID: 1, Model: "bogus", Client: 0, Submit: 0})
	})
	defer func() {
		if recover() == nil {
			t.Error("unknown model did not panic")
		}
	}()
	env.Run()
}

func TestStopEndsLoop(t *testing.T) {
	env, d := testSetup(t, gatedCfg(), model.TinyNet())
	conn := d.Connect()
	done := false
	conn.OnComplete = func(uint64) { done = true }
	env.At(0, func() {
		conn.Submit(Request{ID: 1, Model: "tinynet", Client: 0, Submit: 0})
	})
	env.Run()
	if !done {
		t.Fatal("job did not finish")
	}
	d.Stop()
	env.Run()
	// After Stop, new submissions are ignored by the exited loop; the ring
	// fills but nothing crashes.
	conn.Submit(Request{ID: 2, Model: "tinynet", Client: 0, Submit: env.Now()})
	env.Run()
}

func TestSchedDelaySlowsDispatcher(t *testing.T) {
	run := func(delay sim.Time) sim.Time {
		cfg := gatedCfg()
		cfg.SchedDelay = delay
		env, d := testSetup(t, cfg, model.TinyNet())
		conn := d.Connect()
		var last sim.Time
		conn.OnComplete = func(uint64) { last = env.Now() }
		for i := 0; i < 20; i++ {
			id := uint64(i + 1)
			env.At(0, func() {
				conn.Submit(Request{ID: id, Model: "tinynet", Client: 0, Submit: 0})
			})
		}
		env.Run()
		return last
	}
	fast := run(0)
	slow := run(500 * sim.Microsecond)
	if slow <= fast {
		t.Fatalf("injected scheduling delay had no effect: %v vs %v", fast, slow)
	}
}

func TestRegisterModelRejectsOversizeKernels(t *testing.T) {
	env := sim.NewEnv()
	cfg := gpu.TeslaT4()
	d := NewWithDevice(env, cfg, gatedCfg())
	huge := &model.Model{
		Name: "huge",
		Kernels: []*gpu.KernelSpec{{
			Name: "k", Blocks: 1, ThreadsPerBlock: cfg.SM.MaxThreads + 1,
			RegsPerThread: 1, BlockDuration: 1,
		}},
		Seq:          []int{0},
		PinnedOutput: true,
	}
	ins := compiler.MustInstrument(huge, compiler.Config{})
	ins.Profile = &compiler.Profile{}
	// Attach a minimal profile via the public pipeline on a big device.
	big := cfg
	big.SM.MaxThreads = 4096
	full := compiler.MustCompile(huge, compiler.Config{}, big, 1)
	if err := d.RegisterModel(full); err == nil {
		t.Fatal("model with un-placeable kernel registered")
	}
}
