package vram

import (
	"errors"
	"testing"

	"paella/internal/sim"
)

const MiB = 1 << 20

func mkManager(t *testing.T, capMiB int64) *Manager {
	t.Helper()
	m, err := NewManager(Config{CapacityBytes: capMiB * MiB})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRegisterAndStates(t *testing.T) {
	m := mkManager(t, 64)
	if err := m.Register("a", 10*MiB); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("a", 10*MiB); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := m.Register("huge", 128*MiB); err == nil {
		t.Fatal("over-capacity model accepted")
	}
	if got := m.State("a"); got != Cold {
		t.Fatalf("fresh model state = %v, want cold", got)
	}
	if err := m.BeginLoad("a", 0); err != nil {
		t.Fatal(err)
	}
	if got := m.State("a"); got != Loading {
		t.Fatalf("state after BeginLoad = %v", got)
	}
	m.FinishLoad("a", 5)
	if !m.Resident("a") {
		t.Fatal("model not resident after FinishLoad")
	}
	m.CheckInvariants()
}

func TestZeroWeightModelAlwaysResident(t *testing.T) {
	m := mkManager(t, 4)
	if err := m.Register("tiny", 0); err != nil {
		t.Fatal(err)
	}
	if !m.Resident("tiny") {
		t.Fatal("zero-weight model should be born resident")
	}
	if m.UsedBlocks() != 0 {
		t.Fatalf("zero-weight model holds %d blocks", m.UsedBlocks())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	m := mkManager(t, 64) // 32 blocks of 2 MiB
	for _, name := range []string{"a", "b", "c"} {
		if err := m.Register(name, 20*MiB); err != nil {
			t.Fatal(err)
		}
	}
	load := func(name string, at sim.Time) {
		if err := m.BeginLoad(name, at); err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
		m.FinishLoad(name, at)
	}
	load("a", 10)
	load("b", 20)
	load("c", 30) // 60 MiB of 64 used — no eviction yet
	m.Touch("a", 40)
	// d forces an eviction; b is now the LRU victim (a was touched at 40).
	if err := m.Register("d", 20*MiB); err != nil {
		t.Fatal(err)
	}
	var evicted []string
	m.OnEvict = func(name string) { evicted = append(evicted, name) }
	load("d", 50)
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted %v, want [b]", evicted)
	}
	if m.State("b") != Cold {
		t.Fatalf("victim state = %v", m.State("b"))
	}
	m.CheckInvariants()
}

func TestPinProtectsFromEviction(t *testing.T) {
	m := mkManager(t, 40) // 20 blocks
	for _, name := range []string{"a", "b"} {
		if err := m.Register(name, 18*MiB); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.BeginLoad("a", 0); err != nil {
		t.Fatal(err)
	}
	m.FinishLoad("a", 0)
	m.Pin("a", 1)
	// b needs 18 MiB; only 22 MiB free minus a's 18 → free 22 MiB... the
	// device holds 40 MiB total, a uses 18, so 22 free: b fits directly.
	if err := m.BeginLoad("b", 2); err != nil {
		t.Fatal(err)
	}
	m.FinishLoad("b", 2)
	m.Pin("b", 3)
	if err := m.Evict("a"); err == nil {
		t.Fatal("evicted a pinned model")
	}
	m.Unpin("a", 4)
	if err := m.Evict("a"); err != nil {
		t.Fatalf("evict of unpinned model: %v", err)
	}
	m.CheckInvariants()
}

func TestBeginLoadNoMemory(t *testing.T) {
	m := mkManager(t, 32)
	if err := m.Register("a", 30*MiB); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("b", 30*MiB); err != nil {
		t.Fatal(err)
	}
	if err := m.BeginLoad("a", 0); err != nil {
		t.Fatal(err)
	}
	m.FinishLoad("a", 0)
	m.Pin("a", 0)
	err := m.BeginLoad("b", 1)
	if !errors.Is(err, ErrNoMemory) {
		t.Fatalf("BeginLoad with everything pinned: %v", err)
	}
	// The failed load must not have evicted or leaked anything.
	if m.State("a") != Resident || m.State("b") != Cold {
		t.Fatalf("states after failed load: a=%v b=%v", m.State("a"), m.State("b"))
	}
	m.Unpin("a", 2)
	if err := m.BeginLoad("b", 3); err != nil {
		t.Fatalf("retry after unpin: %v", err)
	}
	m.CheckInvariants()
}

func TestHitRatioAccounting(t *testing.T) {
	m := mkManager(t, 64)
	if err := m.Register("a", 8*MiB); err != nil {
		t.Fatal(err)
	}
	m.Pin("a", 0) // cold pin
	if err := m.BeginLoad("a", 0); err != nil {
		t.Fatal(err)
	}
	m.FinishLoad("a", 1)
	m.Pin("a", 2) // warm hit
	m.Pin("a", 3) // warm hit
	s := m.Stats()
	if s.Pins != 3 || s.WarmHits != 2 || s.ColdPins != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if got := s.HitRatio(); got < 0.66 || got > 0.67 {
		t.Fatalf("hit ratio = %f", got)
	}
	if s.Loads != 1 || s.BytesLoaded != 8*MiB {
		t.Fatalf("load stats = %+v", s)
	}
}

func TestBlockRounding(t *testing.T) {
	m, err := NewManager(Config{CapacityBytes: 10 * MiB, BlockBytes: 4 * MiB})
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalBlocks() != 2 {
		t.Fatalf("total blocks = %d", m.TotalBlocks())
	}
	// 5 MiB rounds up to 2 blocks (8 MiB).
	if err := m.Register("a", 5*MiB); err != nil {
		t.Fatal(err)
	}
	if err := m.BeginLoad("a", 0); err != nil {
		t.Fatal(err)
	}
	if m.UsedBlocks() != 2 {
		t.Fatalf("used blocks = %d, want 2 (rounded up)", m.UsedBlocks())
	}
}
