package vram

import (
	"testing"
	"testing/quick"

	"paella/internal/sim"
)

// TestAllocatorProperty drives the manager with a random operation
// sequence (mirroring internal/gpu/property_test.go) and checks the
// allocator invariants after every step:
//
//   - allocation never exceeds capacity,
//   - blocks are never double-freed (UsedBlocks always equals the sum of
//     blocks held by loading/resident models — CheckInvariants),
//   - eviction only ever removes unpinned resident models.
func TestAllocatorProperty(t *testing.T) {
	f := func(capRaw uint8, sizesRaw []uint8, opsRaw []uint8) bool {
		capBlocks := int(capRaw)%32 + 4
		m, err := NewManager(Config{
			CapacityBytes: int64(capBlocks) * MiB,
			BlockBytes:    MiB,
		})
		if err != nil {
			return false
		}
		if len(sizesRaw) == 0 {
			sizesRaw = []uint8{3}
		}
		if len(sizesRaw) > 12 {
			sizesRaw = sizesRaw[:12]
		}
		// Register models sized 0..capacity blocks; oversized ones must be
		// rejected without corrupting state.
		names := make([]string, 0, len(sizesRaw))
		pins := map[string]int{}
		for i, raw := range sizesRaw {
			name := string(rune('a' + i))
			bytes := int64(raw%40) * MiB / 2 // 0..19.5 MiB in half-MiB steps
			err := m.Register(name, bytes)
			needBlocks := int((bytes + MiB - 1) / MiB)
			if needBlocks > capBlocks {
				if err == nil {
					return false // oversized model accepted
				}
				continue
			}
			if err != nil {
				return false
			}
			names = append(names, name)
			pins[name] = 0
		}
		if len(names) == 0 {
			return true
		}
		m.OnEvict = func(name string) {
			if pins[name] != 0 {
				t.Fatalf("evicted pinned model %q (%d pins)", name, pins[name])
			}
		}
		now := sim.Time(0)
		for _, op := range opsRaw {
			now++
			name := names[int(op>>3)%len(names)]
			switch op % 8 {
			case 0, 1: // pin
				m.Pin(name, now)
				pins[name]++
			case 2: // unpin
				if pins[name] > 0 {
					m.Unpin(name, now)
					pins[name]--
				}
			case 3, 4, 5: // load (begin, and usually finish)
				if m.State(name) == Cold {
					if err := m.BeginLoad(name, now); err != nil {
						if err != ErrNoMemory {
							return false
						}
						break
					}
					if op%8 != 5 {
						m.FinishLoad(name, now)
					}
				} else if m.State(name) == Loading {
					m.FinishLoad(name, now)
				}
			case 6: // touch
				m.Touch(name, now)
			case 7: // explicit eviction attempt (may legitimately fail)
				_ = m.Evict(name)
			}
			m.CheckInvariants()
			if m.UsedBlocks() > m.TotalBlocks() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
