package vram

import (
	"errors"
	"testing"

	"paella/internal/sim"
)

// kvManager returns a 10-block manager with an 8-block pinned resident
// model — the LLM engine's shape: weights pinned for the engine's lifetime,
// the remainder available as KV pages.
func kvManager(t *testing.T) *Manager {
	t.Helper()
	m := MustNewManager(Config{CapacityBytes: 10 * DefaultBlockBytes})
	if err := m.Register("weights", 8*DefaultBlockBytes); err != nil {
		t.Fatal(err)
	}
	m.Pin("weights", 0)
	if err := m.BeginLoad("weights", 0); err != nil {
		t.Fatal(err)
	}
	m.FinishLoad("weights", sim.Microsecond)
	m.CheckInvariants()
	return m
}

// TestReserveKVFromFullyPinnedDevice is the regression test for allocating
// from a fully-pinned device: KV pages pin their blocks, eviction must skip
// both the pinned weights and the KV pages, and exhaustion must surface the
// typed ErrNoMemory immediately — no eviction churn, no loop.
func TestReserveKVFromFullyPinnedDevice(t *testing.T) {
	m := kvManager(t)

	// Fill the remaining 2 blocks with KV pages: the device is now
	// entirely pinned (8 pinned weight blocks + 2 KV pages).
	if err := m.ReserveKV(2, 2*sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	m.CheckInvariants()
	if m.KVBlocks() != 2 || m.UsedBlocks() != 10 {
		t.Fatalf("kv=%d used=%d, want 2/10", m.KVBlocks(), m.UsedBlocks())
	}

	// One more KV page must fail typed, without evicting anything.
	err := m.ReserveKV(1, 3*sim.Microsecond)
	if !errors.Is(err, ErrNoMemory) {
		t.Fatalf("ReserveKV on full device: err = %v, want ErrNoMemory", err)
	}
	// A weight load must fail the same way: the pinned weights and the KV
	// pages are both ineligible victims.
	if err := m.Register("other", 1*DefaultBlockBytes); err != nil {
		t.Fatal(err)
	}
	if err := m.BeginLoad("other", 4*sim.Microsecond); !errors.Is(err, ErrNoMemory) {
		t.Fatalf("BeginLoad on full device: err = %v, want ErrNoMemory", err)
	}
	if ev := m.Stats().Evictions; ev != 0 {
		t.Fatalf("%d evictions on a fully-pinned device, want 0", ev)
	}
	m.CheckInvariants()

	// Releasing a page unblocks both paths.
	m.ReleaseKV(1, 5*sim.Microsecond)
	if err := m.BeginLoad("other", 6*sim.Microsecond); err != nil {
		t.Fatalf("BeginLoad after KV release: %v", err)
	}
	m.FinishLoad("other", 7*sim.Microsecond)
	m.CheckInvariants()
	if m.UsedBlocks() != 10 || m.KVBlocks() != 1 {
		t.Fatalf("kv=%d used=%d after reload, want 1/10", m.KVBlocks(), m.UsedBlocks())
	}
	if got := m.Stats().KVPeakBlocks; got != 2 {
		t.Fatalf("KVPeakBlocks = %d, want 2", got)
	}
}

// TestReserveKVEvictsUnpinned: an unpinned resident model is a legitimate
// victim for KV growth, exactly as for a weight load.
func TestReserveKVEvictsUnpinned(t *testing.T) {
	m := MustNewManager(Config{CapacityBytes: 4 * DefaultBlockBytes})
	if err := m.Register("cold-model", 3*DefaultBlockBytes); err != nil {
		t.Fatal(err)
	}
	if err := m.BeginLoad("cold-model", 0); err != nil {
		t.Fatal(err)
	}
	m.FinishLoad("cold-model", sim.Microsecond)
	if err := m.ReserveKV(3, 2*sim.Microsecond); err != nil {
		t.Fatalf("ReserveKV with an evictable resident: %v", err)
	}
	if m.Stats().Evictions != 1 || m.State("cold-model") != Cold {
		t.Fatalf("unpinned model not evicted for KV growth (evictions=%d, state=%v)",
			m.Stats().Evictions, m.State("cold-model"))
	}
	m.CheckInvariants()
}

func TestReleaseKVOverReleasePanics(t *testing.T) {
	m := MustNewManager(Config{CapacityBytes: 4 * DefaultBlockBytes})
	if err := m.ReserveKV(1, 0); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	m.ReleaseKV(2, sim.Microsecond)
}
