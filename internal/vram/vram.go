// Package vram models device-memory residency for model weights: the
// regime real serving fleets live in once the deployed model zoo outgrows
// GPU memory. The paper's evaluation (§7) keeps every model resident; this
// subsystem removes that assumption so experiments can exercise cold-start
// weight transfers competing with inference tensor traffic for PCIe.
//
// The Manager is a pure state machine on virtual time — it owns no clocks
// and issues no transfers. The dispatcher (internal/core) drives it:
//
//	Pin        job admitted for the model (eviction protection)
//	BeginLoad  cold → loading; allocates blocks, evicting LRU victims
//	FinishLoad loading → resident (the H2D weight copy finished)
//	Unpin      job finished; the model becomes evictable when unpinned
//
// Weights are read-only, so eviction needs no writeback: a victim passes
// through the transient Evicting state (observable via OnEvict) and its
// blocks free immediately. Allocation is block-granular (BlockBytes,
// default 2 MiB — the CUDA driver's large-page unit), so fragmentation
// rounds every model up to whole blocks.
package vram

import (
	"fmt"
	"sort"

	"paella/internal/sim"
	"paella/internal/telemetry"
	"paella/internal/trace"
)

// State is one residency state of a model's weights.
type State int

const (
	// Cold: the weights are not in device memory and no transfer is in
	// flight. A request for a cold model triggers a load.
	Cold State = iota
	// Loading: an H2D weight copy is in flight; blocks are allocated.
	Loading
	// Resident: the weights are in device memory and kernels may run.
	Resident
	// Evicting: the weights are being torn down (transient — weights are
	// read-only, so there is no writeback and the state is observable only
	// through the OnEvict hook; it exists so a future dirty-state manager
	// can stretch it over a D2H copy).
	Evicting
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Cold:
		return "cold"
	case Loading:
		return "loading"
	case Resident:
		return "resident"
	case Evicting:
		return "evicting"
	default:
		return "unknown"
	}
}

// DefaultBlockBytes is the allocator granularity when Config.BlockBytes is
// zero: 2 MiB, the CUDA driver's large-page allocation unit.
const DefaultBlockBytes = 2 << 20

// Config parameterizes a Manager.
type Config struct {
	// CapacityBytes is the device-memory budget available for model
	// weights. Zero is invalid at New (callers default it from
	// gpu.Config.VRAMBytes).
	CapacityBytes int64
	// BlockBytes is the allocation granularity (default 2 MiB).
	BlockBytes int64
}

// Stats counts manager activity over its lifetime.
type Stats struct {
	// Pins is the number of Pin calls (one per admitted request).
	Pins uint64
	// WarmHits counts pins that found the model already resident.
	WarmHits uint64
	// ColdPins counts pins that found the model cold or still loading.
	ColdPins uint64
	// Loads counts weight loads started (BeginLoad successes).
	Loads uint64
	// Evictions counts models evicted to make room.
	Evictions uint64
	// LoadAborts counts loads abandoned mid-transfer (AbortLoad: a failed
	// H2D weight copy under fault injection).
	LoadAborts uint64
	// BytesLoaded totals weight bytes transferred host→device.
	BytesLoaded int64
	// BytesEvicted totals weight bytes dropped by eviction.
	BytesEvicted int64
	// PeakActivationBytes is the high-water mark of the activation gauge
	// (per-member scratch of batched launches; see ReserveActivations).
	PeakActivationBytes int64
	// KVPeakBlocks is the high-water mark of the paged KV-cache allocation
	// (ReserveKV; internal/llm's per-token pages).
	KVPeakBlocks int
}

// HitRatio returns WarmHits / Pins (1 when nothing was ever pinned).
func (s Stats) HitRatio() float64 {
	if s.Pins == 0 {
		return 1
	}
	return float64(s.WarmHits) / float64(s.Pins)
}

// ErrNoMemory is returned by BeginLoad when the weights cannot be placed
// even after evicting every unpinned resident model. The caller should
// retry once an Unpin frees eviction candidates.
var ErrNoMemory = fmt.Errorf("vram: insufficient evictable device memory")

type entry struct {
	name   string
	bytes  int64
	blocks int
	state  State
	// pinned counts live requests referencing the model; eviction only
	// considers entries with pinned == 0.
	pinned   int
	lastUsed sim.Time
	// seq breaks lastUsed ties deterministically (registration order).
	seq int
}

// Manager tracks weight residency for one GPU. All methods must be called
// from the simulation event loop; the Manager is not goroutine-safe.
type Manager struct {
	cfg         Config
	totalBlocks int
	usedBlocks  int
	// pressureBlocks is memory carved out by ReservePressure (fault
	// injection: a co-tenant allocation spike); counted inside usedBlocks.
	pressureBlocks int
	// kvBlocks is memory held by the paged KV-cache (ReserveKV); counted
	// inside usedBlocks. KV pages are pinned by construction — eviction
	// never considers them, so exhaustion surfaces as ErrNoMemory and the
	// caller (internal/llm) preempts a sequence to reclaim its pages.
	kvBlocks int
	// activationBytes is the in-flight batched-launch scratch gauge
	// (ReserveActivations); accounting only, outside the block budget.
	activationBytes int64
	entries         map[string]*entry

	// OnEvict, if set, observes each victim while it is in the Evicting
	// state (metrics hooks, tests).
	OnEvict func(name string)

	stats Stats

	// rec is the structured tracing recorder attached via AttachTrace (nil
	// = disabled). The Manager owns no clock, so lastNow shadows the most
	// recent virtual time passed to any mutator — eviction happens inside
	// BeginLoad and is stamped with it.
	rec     *trace.Recorder
	evTrack trace.TrackID
	usedC   trace.CounterID
	lastNow sim.Time

	// mt is the optional windowed telemetry meter attached via AttachMeter
	// (nil = disabled): used-bytes and KV-page gauges sampled wherever the
	// trace counter is.
	mt     *telemetry.Meter
	mtUsed telemetry.MetricID
	mtKV   telemetry.MetricID
}

// AttachTrace wires the manager's residency events (load begin/done,
// evictions) and the bytes-resident counter into the recorder, under the
// given process (normally the owning dispatcher's). A nil recorder is a
// no-op.
func (m *Manager) AttachTrace(rec *trace.Recorder, proc trace.ProcID) {
	if rec == nil {
		return
	}
	m.rec = rec
	m.evTrack = rec.Thread(proc, "vram")
	m.usedC = rec.Counter(proc, "vram used bytes")
}

// AttachMeter wires the used-bytes and KV-page gauges into the windowed
// telemetry meter. A nil meter is a no-op.
func (m *Manager) AttachMeter(mt *telemetry.Meter) {
	if mt == nil {
		return
	}
	m.mt = mt
	m.mtUsed = mt.Gauge("vram/used_bytes")
	m.mtKV = mt.Gauge("vram/kv_pages")
}

// traceUsed samples the bytes held by loading/resident models (and the KV
// pool level) into the recorder and the meter; nil-safe on both.
func (m *Manager) traceUsed() {
	if m.rec != nil {
		m.rec.Sample(m.usedC, "value", m.lastNow, float64(int64(m.usedBlocks)*m.cfg.BlockBytes))
	}
	if m.mt != nil {
		m.mt.Set(m.mtUsed, m.lastNow, float64(int64(m.usedBlocks)*m.cfg.BlockBytes))
		m.mt.Set(m.mtKV, m.lastNow, float64(m.kvBlocks))
	}
}

// NewManager builds a manager with the given capacity budget.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.CapacityBytes <= 0 {
		return nil, fmt.Errorf("vram: capacity %d bytes", cfg.CapacityBytes)
	}
	if cfg.BlockBytes <= 0 {
		cfg.BlockBytes = DefaultBlockBytes
	}
	total := int(cfg.CapacityBytes / cfg.BlockBytes)
	if total <= 0 {
		return nil, fmt.Errorf("vram: capacity %d smaller than one %d-byte block",
			cfg.CapacityBytes, cfg.BlockBytes)
	}
	return &Manager{
		cfg:         cfg,
		totalBlocks: total,
		entries:     make(map[string]*entry),
	}, nil
}

// MustNewManager is NewManager for known-good configs; it panics on error.
func MustNewManager(cfg Config) *Manager {
	m, err := NewManager(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Register declares a model's weight footprint. Models with zero weight
// bytes occupy no blocks and are permanently resident (the pre-vram
// behaviour). Registration fails if the weights alone exceed capacity.
func (m *Manager) Register(name string, weightBytes int64) error {
	if _, dup := m.entries[name]; dup {
		return fmt.Errorf("vram: model %q already registered", name)
	}
	if weightBytes < 0 {
		return fmt.Errorf("vram: model %q weight bytes %d", name, weightBytes)
	}
	blocks := int((weightBytes + m.cfg.BlockBytes - 1) / m.cfg.BlockBytes)
	if blocks > m.totalBlocks {
		return fmt.Errorf("vram: model %q needs %d blocks, device has %d",
			name, blocks, m.totalBlocks)
	}
	e := &entry{name: name, bytes: weightBytes, blocks: blocks, seq: len(m.entries)}
	if blocks == 0 {
		e.state = Resident
	}
	m.entries[name] = e
	return nil
}

// Registered reports whether the model is known to the manager.
func (m *Manager) Registered(name string) bool {
	_, ok := m.entries[name]
	return ok
}

// State returns the model's residency state.
func (m *Manager) State(name string) State { return m.get(name).state }

// Resident reports whether the model's weights are usable right now.
func (m *Manager) Resident(name string) bool { return m.get(name).state == Resident }

// Pinned returns the model's pin count.
func (m *Manager) Pinned(name string) int { return m.get(name).pinned }

// Pin marks one live request against the model, protecting it from
// eviction for the request's lifetime, and classifies the access as a warm
// hit or a cold pin.
func (m *Manager) Pin(name string, now sim.Time) {
	e := m.get(name)
	m.lastNow = now
	e.pinned++
	e.lastUsed = now
	m.stats.Pins++
	if e.state == Resident {
		m.stats.WarmHits++
	} else {
		m.stats.ColdPins++
	}
}

// Unpin releases one Pin. An unpinned resident model becomes an eviction
// candidate, LRU by last use.
func (m *Manager) Unpin(name string, now sim.Time) {
	e := m.get(name)
	m.lastNow = now
	if e.pinned <= 0 {
		panic(fmt.Sprintf("vram: unpin of unpinned model %q", name))
	}
	e.pinned--
	e.lastUsed = now
}

// Touch refreshes the model's LRU timestamp without pinning.
func (m *Manager) Touch(name string, now sim.Time) {
	e := m.get(name)
	m.lastNow = now
	if now > e.lastUsed {
		e.lastUsed = now
	}
}

// BeginLoad starts a cold model's weight load: blocks are allocated (LRU
// unpinned resident models are evicted as needed) and the model enters
// Loading. The caller models the H2D transfer and calls FinishLoad when it
// completes. ErrNoMemory means every remaining byte is pinned or loading;
// the caller should retry after an Unpin.
func (m *Manager) BeginLoad(name string, now sim.Time) error {
	e := m.get(name)
	m.lastNow = now
	if e.state != Cold {
		panic(fmt.Sprintf("vram: BeginLoad of %s model %q", e.state, name))
	}
	if err := m.ensureFree(e.blocks); err != nil {
		return err
	}
	m.usedBlocks += e.blocks
	e.state = Loading
	e.lastUsed = now
	m.stats.Loads++
	m.stats.BytesLoaded += e.bytes
	if m.rec != nil {
		m.rec.InstantArgs(m.evTrack, name, "vram-load-begin", now, trace.Int("bytes", e.bytes))
	}
	m.traceUsed()
	return nil
}

// AbortLoad abandons an in-flight load (the H2D weight copy failed):
// loading → cold, blocks freed. The caller decides whether to retry; the
// manager only unwinds the allocation.
func (m *Manager) AbortLoad(name string, now sim.Time) {
	e := m.get(name)
	m.lastNow = now
	if e.state != Loading {
		panic(fmt.Sprintf("vram: AbortLoad of %s model %q", e.state, name))
	}
	e.state = Cold
	m.usedBlocks -= e.blocks
	m.stats.LoadAborts++
	// The failed transfer still moved no usable bytes; keep BytesLoaded as
	// the attempted total (it counts H2D traffic, and the wire time was
	// genuinely spent) but record the abort.
	if m.rec != nil {
		m.rec.InstantArgs(m.evTrack, name, "vram-load-abort", now, trace.Int("bytes", e.bytes))
	}
	m.traceUsed()
}

// ReservePressure carves up to `blocks` blocks out of the budget without
// binding them to any model — fault injection's co-tenant allocation spike.
// LRU unpinned residents are evicted to make room; if less than the full
// request is reclaimable the spike takes what it can. Returns the blocks
// actually reserved (add to a later ReleasePressure).
func (m *Manager) ReservePressure(blocks int, now sim.Time) int {
	if blocks <= 0 {
		return 0
	}
	m.lastNow = now
	if err := m.ensureFree(blocks); err != nil {
		// Partial pressure: take whatever is currently free.
		blocks = m.totalBlocks - m.usedBlocks
		if blocks <= 0 {
			return 0
		}
	}
	m.usedBlocks += blocks
	m.pressureBlocks += blocks
	if m.rec != nil {
		m.rec.InstantArgs(m.evTrack, "pressure", "vram-pressure", now,
			trace.Int("bytes", int64(blocks)*m.cfg.BlockBytes))
	}
	m.traceUsed()
	return blocks
}

// ReleasePressure returns previously reserved pressure blocks to the
// budget. Releasing more than is held panics (an injector bookkeeping bug).
func (m *Manager) ReleasePressure(blocks int, now sim.Time) {
	if blocks <= 0 {
		return
	}
	m.lastNow = now
	if blocks > m.pressureBlocks {
		panic(fmt.Sprintf("vram: releasing %d pressure blocks, holding %d", blocks, m.pressureBlocks))
	}
	m.pressureBlocks -= blocks
	m.usedBlocks -= blocks
	if m.rec != nil {
		m.rec.Instant(m.evTrack, "pressure-released", "vram-pressure", now)
	}
	m.traceUsed()
}

// PressureBlocks returns the blocks currently held by injected pressure.
func (m *Manager) PressureBlocks() int { return m.pressureBlocks }

// ReserveKV allocates blocks for paged KV-cache entries (internal/llm's
// vLLM-style token pages). LRU unpinned resident models are evicted to make
// room, exactly as for a weight load; the reservation is all-or-nothing —
// ErrNoMemory means the caller must free pages (retire or preempt a
// sequence) before retrying. KV pages are pinned by construction: they are
// never eviction candidates, so a fully-KV device fails fast instead of
// thrashing the evictor.
func (m *Manager) ReserveKV(blocks int, now sim.Time) error {
	if blocks < 0 {
		panic(fmt.Sprintf("vram: reserving %d KV blocks", blocks))
	}
	if blocks == 0 {
		return nil
	}
	m.lastNow = now
	if err := m.ensureFree(blocks); err != nil {
		return err
	}
	m.usedBlocks += blocks
	m.kvBlocks += blocks
	if m.kvBlocks > m.stats.KVPeakBlocks {
		m.stats.KVPeakBlocks = m.kvBlocks
	}
	if m.rec != nil {
		m.rec.InstantArgs(m.evTrack, "kv", "vram-kv-reserve", now,
			trace.Int("bytes", int64(blocks)*m.cfg.BlockBytes))
	}
	m.traceUsed()
	return nil
}

// ReleaseKV returns previously reserved KV blocks to the budget. Releasing
// more than is held panics (a paging bookkeeping bug in the caller).
func (m *Manager) ReleaseKV(blocks int, now sim.Time) {
	if blocks < 0 {
		panic(fmt.Sprintf("vram: releasing %d KV blocks", blocks))
	}
	if blocks == 0 {
		return
	}
	m.lastNow = now
	if blocks > m.kvBlocks {
		panic(fmt.Sprintf("vram: releasing %d KV blocks, holding %d", blocks, m.kvBlocks))
	}
	m.kvBlocks -= blocks
	m.usedBlocks -= blocks
	if m.rec != nil {
		m.rec.InstantArgs(m.evTrack, "kv", "vram-kv-release", now,
			trace.Int("bytes", int64(blocks)*m.cfg.BlockBytes))
	}
	m.traceUsed()
}

// KVBlocks returns the blocks currently held by the paged KV-cache.
func (m *Manager) KVBlocks() int { return m.kvBlocks }

// FinishLoad completes a load: loading → resident.
func (m *Manager) FinishLoad(name string, now sim.Time) {
	e := m.get(name)
	m.lastNow = now
	if e.state != Loading {
		panic(fmt.Sprintf("vram: FinishLoad of %s model %q", e.state, name))
	}
	e.state = Resident
	e.lastUsed = now
	if m.rec != nil {
		m.rec.Instant(m.evTrack, name, "vram-load-done", now)
	}
}

// Evict drops an unpinned resident model's weights, freeing its blocks.
// Exposed for tests and tooling; BeginLoad evicts automatically.
func (m *Manager) Evict(name string) error {
	e := m.get(name)
	if e.state != Resident {
		return fmt.Errorf("vram: evicting %s model %q", e.state, name)
	}
	if e.pinned > 0 {
		return fmt.Errorf("vram: evicting pinned model %q (%d pins)", name, e.pinned)
	}
	if e.blocks == 0 {
		return fmt.Errorf("vram: model %q holds no blocks", name)
	}
	m.evict(e)
	return nil
}

// ensureFree evicts LRU unpinned resident models until need blocks are
// free, or fails without evicting anything if that is impossible.
func (m *Manager) ensureFree(need int) error {
	free := m.totalBlocks - m.usedBlocks
	if free >= need {
		return nil
	}
	// Candidates: resident, unpinned, holding blocks — oldest first.
	// (Deterministic order: map iteration is randomized, so sort.)
	var victims []*entry
	evictable := 0
	for _, e := range m.entries {
		if e.state == Resident && e.pinned == 0 && e.blocks > 0 {
			victims = append(victims, e)
			evictable += e.blocks
		}
	}
	if free+evictable < need {
		return ErrNoMemory
	}
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].lastUsed != victims[j].lastUsed {
			return victims[i].lastUsed < victims[j].lastUsed
		}
		return victims[i].seq < victims[j].seq
	})
	for _, v := range victims {
		if free >= need {
			break
		}
		m.evict(v)
		free += v.blocks
	}
	return nil
}

// evict transitions one victim resident → evicting → cold and frees its
// blocks. Weights are read-only: no writeback transfer is modelled.
func (m *Manager) evict(e *entry) {
	if e.pinned > 0 {
		panic(fmt.Sprintf("vram: evicting pinned model %q", e.name))
	}
	e.state = Evicting
	if m.OnEvict != nil {
		m.OnEvict(e.name)
	}
	e.state = Cold
	m.usedBlocks -= e.blocks
	m.stats.Evictions++
	m.stats.BytesEvicted += e.bytes
	if m.usedBlocks < 0 {
		panic("vram: block accounting went negative")
	}
	if m.rec != nil {
		m.rec.InstantArgs(m.evTrack, e.name, "vram-evict", m.lastNow, trace.Int("bytes", e.bytes))
	}
	m.traceUsed()
}

// CapacityBytes returns the configured budget.
func (m *Manager) CapacityBytes() int64 { return m.cfg.CapacityBytes }

// TotalBlocks returns the device's block count.
func (m *Manager) TotalBlocks() int { return m.totalBlocks }

// UsedBlocks returns the blocks held by loading/resident models.
func (m *Manager) UsedBlocks() int { return m.usedBlocks }

// FreeBytes returns the unallocated budget.
func (m *Manager) FreeBytes() int64 {
	return int64(m.totalBlocks-m.usedBlocks) * m.cfg.BlockBytes
}

// Stats returns a snapshot of lifetime counters.
func (m *Manager) Stats() Stats { return m.stats }

// ReserveActivations accounts device scratch for in-flight batched
// launches: members of a batch share one weight allocation (the refcounted
// Pin) but each carries its own input/output activations. The gauge is
// pure accounting — activations live in the runtime's pre-sized scratch
// arena, not the paged weight budget — so it never triggers eviction, but
// it makes the per-member footprint of batching observable (Stats records
// the high-water mark).
func (m *Manager) ReserveActivations(bytes int64) {
	if bytes <= 0 {
		return
	}
	m.activationBytes += bytes
	if m.activationBytes > m.stats.PeakActivationBytes {
		m.stats.PeakActivationBytes = m.activationBytes
	}
}

// ReleaseActivations returns scratch reserved by ReserveActivations.
func (m *Manager) ReleaseActivations(bytes int64) {
	if bytes <= 0 {
		return
	}
	m.activationBytes -= bytes
	if m.activationBytes < 0 {
		panic("vram: activation gauge went negative")
	}
}

// ActivationBytes returns the current activation gauge.
func (m *Manager) ActivationBytes() int64 { return m.activationBytes }

// ResidentModels returns the names of resident models, sorted (tests,
// experiment reports).
func (m *Manager) ResidentModels() []string {
	var out []string
	for name, e := range m.entries {
		if e.state == Resident {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// CheckInvariants panics if the allocator's accounting is inconsistent:
// the sum of blocks held by loading/resident models must equal UsedBlocks,
// and usage must never exceed capacity. Tests call it between steps.
func (m *Manager) CheckInvariants() {
	sum := 0
	for name, e := range m.entries {
		switch e.state {
		case Loading, Resident:
			sum += e.blocks
		case Cold:
		case Evicting:
			panic(fmt.Sprintf("vram: model %q stuck in transient Evicting state", name))
		}
		if e.pinned < 0 {
			panic(fmt.Sprintf("vram: model %q pin count %d", name, e.pinned))
		}
	}
	if sum+m.pressureBlocks+m.kvBlocks != m.usedBlocks {
		panic(fmt.Sprintf("vram: used blocks %d but models hold %d, pressure %d, kv %d",
			m.usedBlocks, sum, m.pressureBlocks, m.kvBlocks))
	}
	if m.kvBlocks < 0 {
		panic(fmt.Sprintf("vram: kv block count %d", m.kvBlocks))
	}
	if m.usedBlocks > m.totalBlocks {
		panic(fmt.Sprintf("vram: used %d of %d blocks", m.usedBlocks, m.totalBlocks))
	}
}

func (m *Manager) get(name string) *entry {
	e, ok := m.entries[name]
	if !ok {
		panic(fmt.Sprintf("vram: unknown model %q", name))
	}
	return e
}
