// Package compiler reproduces Paella's TVM compiler pass (§4.1): a
// content-independent transformation that instruments every kernel of a
// model to export block placement/completion notifications, extracts the
// static resource metadata the dispatcher needs (grid size, block size,
// shared memory, register count), and profiles the model to learn the
// per-kernel execution statistics that drive SRPT scheduling (§6).
//
// In the paper the pass rewrites CUDA device code (Figure 6); here it
// rewrites kernel descriptors: instrumented kernels carry the measured
// wall-clock overhead of the notification writes, calibrated against the
// paper's Figure 15 microbenchmarks (and re-measured in this repository by
// the real benchmarks in internal/channel).
package compiler

import (
	"fmt"

	"paella/internal/gpu"
	"paella/internal/model"
	"paella/internal/sim"
)

// Config sets the instrumentation cost model.
type Config struct {
	// AggGroup is the notification aggregation group size (§5.2); the
	// paper uses 16. Zero or one disables aggregation (one record per
	// block).
	AggGroup int
	// BaseOverhead is the fixed wall-clock cost instrumentation adds to a
	// kernel execution (the two designated-thread writes and fences).
	BaseOverhead sim.Time
	// PerRecordOverhead is added per notifQ record emitted (enqueue
	// contention on the shared tail counter).
	PerRecordOverhead sim.Time
	// CondBase and CondPerBlock model the cost of the aggregation
	// conditional (Figure 15 shows it dominates the instrumentation
	// overhead): a fixed component plus a per-block component.
	CondBase     sim.Time
	CondPerBlock sim.Time

	// BatchAlphaMin and BatchAlphaMax bound the per-kernel batch-scaling
	// coefficient α the profiler learns (see Profile.BatchScale). α is the
	// marginal per-block cost of one extra batched sample relative to the
	// first: an n-way batched launch of a kernel runs its widened grid with
	// per-block duration scaled by (1+(n−1)α)/n. Kernels that saturate the
	// device solo (occupancy ≈ 1) batch worst (α → max: extra samples just
	// serialize into more waves); kernels that leave most of the device
	// idle batch best (α → min: extra blocks ride free capacity). Zero
	// values select the calibrated defaults.
	BatchAlphaMin float64
	BatchAlphaMax float64
}

// DefaultConfig returns constants calibrated so that the instrumented
// empty-kernel overheads match the paper's Figure 15: ~5.5µs for 16 blocks
// and ~6.6µs for 160 blocks with aggregation, ~2.2µs for 160 blocks
// without.
func DefaultConfig() Config {
	return Config{
		AggGroup:          16,
		BaseOverhead:      1200 * sim.Nanosecond,
		PerRecordOverhead: 3 * sim.Nanosecond,
		CondBase:          3000 * sim.Nanosecond,
		CondPerBlock:      6 * sim.Nanosecond,
	}
}

// Default batch-scaling coefficient bounds (Config.BatchAlphaMin/Max).
// Calibrated so a fully occupancy-bound kernel keeps ~95% of its serial
// per-sample cost under batching while a tiny kernel amortizes down to
// ~40%, matching the sub-linear batch curves serving systems measure.
const (
	DefaultBatchAlphaMin = 0.40
	DefaultBatchAlphaMax = 0.95
)

// batchAlphaRange returns the configured α bounds, defaulted when unset.
func (c Config) batchAlphaRange() (lo, hi float64) {
	lo, hi = c.BatchAlphaMin, c.BatchAlphaMax
	if lo == 0 && hi == 0 {
		lo, hi = DefaultBatchAlphaMin, DefaultBatchAlphaMax
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// NoAggConfig returns DefaultConfig without notification aggregation (the
// Figure 15 ablation).
func NoAggConfig() Config {
	c := DefaultConfig()
	c.AggGroup = 0
	c.CondBase = 0
	c.CondPerBlock = 0
	return c
}

// Records returns the number of notifQ records one execution of a kernel
// with the given grid size emits (placements + completions).
func (c Config) Records(blocks int) int {
	g := c.AggGroup
	if g <= 1 {
		return 2 * blocks
	}
	return 2 * ((blocks + g - 1) / g)
}

// KernelOverhead returns the wall-clock execution-time overhead
// instrumentation adds to one kernel execution with the given grid size.
func (c Config) KernelOverhead(blocks int) sim.Time {
	o := c.BaseOverhead + sim.Time(c.Records(blocks))*c.PerRecordOverhead
	if c.AggGroup > 1 {
		o += c.CondBase + sim.Time(blocks)*c.CondPerBlock
	}
	return o
}

// Instrumented is a compiled, instrumented, profiled model: the unit users
// submit to the Paella service (the "compiled shared library plus adaptor"
// of §5.1).
type Instrumented struct {
	// Model is the instrumented kernel graph (kernels carry notification
	// overhead in their durations).
	Model *model.Model
	// Original is the uninstrumented input model.
	Original *model.Model
	// Profile holds learned per-kernel execution statistics.
	Profile *Profile
	// Cfg is the instrumentation configuration used.
	Cfg Config
}

// Instrument applies the compiler pass to a model. The transformation is
// uniform across kernels and requires no knowledge of their content,
// matching the paper's claim that any TVM model works unmodified.
func Instrument(m *model.Model, cfg Config) (*Instrumented, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: %w", err)
	}
	clone := &model.Model{
		Name:         m.Name,
		InputBytes:   m.InputBytes,
		OutputBytes:  m.OutputBytes,
		WeightBytes:  m.WeightBytes,
		Kernels:      make([]*gpu.KernelSpec, len(m.Kernels)),
		Seq:          append([]int(nil), m.Seq...),
		PinnedOutput: m.PinnedOutput,
	}
	for i, k := range m.Kernels {
		ik := *k
		ik.BlockDuration += cfg.KernelOverhead(k.Blocks)
		clone.Kernels[i] = &ik
	}
	return &Instrumented{Model: clone, Original: m, Cfg: cfg}, nil
}

// MustInstrument is Instrument for known-good models; it panics on error.
func MustInstrument(m *model.Model, cfg Config) *Instrumented {
	ins, err := Instrument(m, cfg)
	if err != nil {
		panic(err)
	}
	return ins
}

// Metadata is the per-kernel static resource table the pass exports for
// the dispatcher (Table 1's inputs).
type Metadata struct {
	Kernel     string
	Blocks     int
	Threads    int
	Registers  int // per block: threads × regs-per-thread
	SharedMem  int
	Executions int
}

// ExtractMetadata returns the resource table for a model.
func ExtractMetadata(m *model.Model) []Metadata {
	counts := m.Counts()
	out := make([]Metadata, len(m.Kernels))
	for i, k := range m.Kernels {
		out[i] = Metadata{
			Kernel:     k.Name,
			Blocks:     k.Blocks,
			Threads:    k.ThreadsPerBlock,
			Registers:  k.ThreadsPerBlock * k.RegsPerThread,
			SharedMem:  k.SharedMemPerBlock,
			Executions: counts[i],
		}
	}
	return out
}
