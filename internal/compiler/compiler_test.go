package compiler

import (
	"testing"

	"paella/internal/gpu"
	"paella/internal/model"
	"paella/internal/sim"
)

func TestKernelOverheadMatchesFig15(t *testing.T) {
	agg := DefaultConfig()
	noagg := NoAggConfig()
	// Paper Figure 15 (90th percentile): aggregated instrumentation adds
	// ~5.5µs at 16 blocks and ~6.6µs at 160; without aggregation ~2.2µs at
	// 160 blocks.
	cases := []struct {
		cfg      Config
		blocks   int
		min, max sim.Time
	}{
		{agg, 16, 4 * sim.Microsecond, 7 * sim.Microsecond},
		{agg, 160, 5 * sim.Microsecond, 8 * sim.Microsecond},
		{noagg, 160, 1 * sim.Microsecond, 3 * sim.Microsecond},
		{noagg, 16, 500 * sim.Nanosecond, 3 * sim.Microsecond},
	}
	for _, c := range cases {
		got := c.cfg.KernelOverhead(c.blocks)
		if got < c.min || got > c.max {
			t.Errorf("overhead(agg=%d, blocks=%d) = %v, want in [%v, %v]",
				c.cfg.AggGroup, c.blocks, got, c.min, c.max)
		}
	}
	// Aggregation must reduce record count by ~16×.
	if agg.Records(160) != 20 || noagg.Records(160) != 320 {
		t.Errorf("Records: agg=%d noagg=%d", agg.Records(160), noagg.Records(160))
	}
}

func TestInstrumentClonesAndPreserves(t *testing.T) {
	m := model.Generate(model.Table2()[0])
	ins, err := Instrument(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ins.Model == m || &ins.Model.Kernels == &m.Kernels {
		t.Fatal("instrumentation did not clone")
	}
	for i, k := range ins.Model.Kernels {
		orig := m.Kernels[i]
		if k.BlockDuration <= orig.BlockDuration {
			t.Fatalf("kernel %d duration not increased", i)
		}
		if k.Blocks != orig.Blocks || k.ThreadsPerBlock != orig.ThreadsPerBlock {
			t.Fatalf("kernel %d config changed", i)
		}
		// The original must be untouched.
		want := orig.BlockDuration + DefaultConfig().KernelOverhead(orig.Blocks)
		if k.BlockDuration != want {
			t.Fatalf("kernel %d overhead wrong: %v want %v", i, k.BlockDuration, want)
		}
	}
	if len(ins.Model.Seq) != len(m.Seq) {
		t.Fatal("sequence length changed")
	}
}

func TestInstrumentRejectsInvalid(t *testing.T) {
	bad := &model.Model{Name: "bad"}
	if _, err := Instrument(bad, DefaultConfig()); err == nil {
		t.Fatal("invalid model instrumented")
	}
}

func TestExtractMetadata(t *testing.T) {
	m := model.TinyNet()
	md := ExtractMetadata(m)
	if len(md) != m.NumUnique() {
		t.Fatalf("metadata rows = %d, want %d", len(md), m.NumUnique())
	}
	for i, row := range md {
		k := m.Kernels[i]
		if row.Registers != k.ThreadsPerBlock*k.RegsPerThread {
			t.Errorf("row %d: registers = %d", i, row.Registers)
		}
		if row.Executions != 1 {
			t.Errorf("row %d: executions = %d", i, row.Executions)
		}
	}
}

func TestProfileModel(t *testing.T) {
	ins := MustInstrument(model.TinyNet(), DefaultConfig())
	cfg := gpu.TeslaT4()
	cfg.LaunchOverhead = 0 // exact timing for assertions
	p, err := ProfileModel(ins, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Every kernel observed; means equal the instrumented block durations
	// (each kernel fits in one wave on a T4).
	for _, k := range ins.Model.Kernels {
		st := p.Stat(k.Name)
		if st == nil {
			t.Fatalf("kernel %s not profiled", k.Name)
		}
		if st.MeanTime != k.BlockDuration {
			t.Errorf("kernel %s mean = %v, want %v", k.Name, st.MeanTime, k.BlockDuration)
		}
		if st.Count != 1 {
			t.Errorf("kernel %s count = %v", k.Name, st.Count)
		}
	}
	if p.TotalTime() != ins.Model.KernelTime() {
		t.Errorf("TotalTime = %v, want %v", p.TotalTime(), ins.Model.KernelTime())
	}
}

func TestRemainingAfterMonotone(t *testing.T) {
	ins := MustCompile(model.Generate(model.Table2()[1]), DefaultConfig(), gpu.TeslaT4(), 1)
	p := ins.Profile
	prev := p.RemainingAfter(0)
	if prev == 0 {
		t.Fatal("fresh job has zero remaining time")
	}
	for j := 1; j <= ins.Model.NumExecutions(); j++ {
		cur := p.RemainingAfter(j)
		if cur > prev {
			t.Fatalf("remaining increased at %d: %v > %v", j, cur, prev)
		}
		prev = cur
	}
	if p.RemainingAfter(ins.Model.NumExecutions()) != 0 {
		t.Fatal("remaining after completion is nonzero")
	}
	if p.RemainingAfter(99999) != 0 || p.RemainingAfter(-5) != p.RemainingAfter(0) {
		t.Fatal("out-of-range RemainingAfter mishandled")
	}
}

// TestSuffixMatchesFormula checks that the O(1) suffix-table estimate
// agrees with the paper's Σ max(0, C̄ᵢ−cᵢ)·T̄ᵢ formula at every prefix of
// the execution sequence... for the aggregate (both formulations count each
// pending execution once at its kernel's mean time).
func TestSuffixMatchesFormula(t *testing.T) {
	ins := MustCompile(model.Generate(model.Table2()[2]), DefaultConfig(), gpu.TeslaT4(), 1)
	p := ins.Profile
	m := ins.Model
	executed := map[string]int{}
	for j := 0; j <= m.NumExecutions(); j++ {
		bySuffix := p.RemainingAfter(j)
		byFormula := p.RemainingByFormula(executed)
		diff := bySuffix - byFormula
		if diff < 0 {
			diff = -diff
		}
		// Integer division in per-sample means can differ by at most 1ns
		// per kernel.
		if diff > sim.Time(m.NumExecutions()) {
			t.Fatalf("at %d: suffix=%v formula=%v", j, bySuffix, byFormula)
		}
		if j < m.NumExecutions() {
			executed[m.Kernels[m.Seq[j]].Name]++
		}
	}
}

func TestObserveRefinesMean(t *testing.T) {
	p := &Profile{ModelName: "x", stats: map[string]*KernelStat{}}
	p.Observe("k", 100)
	p.Observe("k", 200)
	if st := p.Stat("k"); st.MeanTime != 150 {
		t.Fatalf("mean = %v, want 150", st.MeanTime)
	}
	if p.Stat("missing") != nil {
		t.Fatal("missing kernel returned a stat")
	}
}

func TestProfileRunsValidation(t *testing.T) {
	ins := MustInstrument(model.TinyNet(), DefaultConfig())
	if _, err := ProfileModel(ins, gpu.TeslaT4(), 0); err == nil {
		t.Fatal("zero profiling runs accepted")
	}
}

func TestCompilePipeline(t *testing.T) {
	ins, err := Compile(model.Fig2Job(), DefaultConfig(), gpu.GTX1660Super(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if ins.Profile == nil {
		t.Fatal("Compile did not attach a profile")
	}
	if ins.Profile.TotalTime() <= 0 {
		t.Fatal("profiled total time not positive")
	}
}
