package compiler

import (
	"fmt"

	"paella/internal/gpu"
	"paella/internal/model"
	"paella/internal/sim"
)

// KernelStat holds the learned execution statistics of one unique kernel,
// identified (as in the paper) by its location in the compiled library —
// here, its name.
type KernelStat struct {
	Name string
	// Count is the average number of executions per job (C̄ᵢ).
	Count float64
	// MeanTime is the average wall-clock execution time (T̄ᵢ).
	MeanTime sim.Time
	// BatchAlpha is the kernel's batch-scaling coefficient: the marginal
	// per-block cost of one extra batched sample relative to the first
	// (see Profile.BatchScale). Learned during profiling from the kernel's
	// measured solo occupancy; zero means unprofiled (no batching benefit
	// assumed).
	BatchAlpha float64

	samples int
	total   sim.Time
}

// Profile aggregates per-kernel statistics for one model, plus the derived
// suffix table the dispatcher uses for O(1) remaining-time estimates.
type Profile struct {
	ModelName string
	stats     map[string]*KernelStat
	// remainingAfter[j] is the estimated time to finish a job that has
	// completed j kernel executions: Σ_{i≥j} T̄(Seq[i]).
	remainingAfter []sim.Time
	// dirty counts observations since the last suffix-table rebuild.
	dirty int
}

// Observe folds one measured kernel execution into the profile (the
// paper's online refinement).
func (p *Profile) Observe(kernel string, dur sim.Time) {
	st, ok := p.stats[kernel]
	if !ok {
		st = &KernelStat{Name: kernel}
		p.stats[kernel] = st
	}
	st.samples++
	st.total += dur
	st.MeanTime = st.total / sim.Time(st.samples)
	p.dirty++
}

// RefreshEvery rebuilds the remaining-time suffix table once `every`
// observations have accumulated since the last rebuild, keeping the online
// refinement's amortized cost O(1) per observation. It reports whether a
// rebuild happened.
func (p *Profile) RefreshEvery(m *model.Model, every int) bool {
	if every <= 0 || p.dirty < every {
		return false
	}
	p.dirty = 0
	p.rebuild(m)
	return true
}

// Stat returns the statistics of the named kernel, or nil.
func (p *Profile) Stat(kernel string) *KernelStat { return p.stats[kernel] }

// MeanTime returns the named kernel's learned mean execution time (zero
// when the kernel is unknown).
func (p *Profile) MeanTime(kernel string) sim.Time {
	if st := p.stats[kernel]; st != nil {
		return st.MeanTime
	}
	return 0
}

// TotalTime returns the estimated execution time of a fresh job.
func (p *Profile) TotalTime() sim.Time {
	if len(p.remainingAfter) == 0 {
		return 0
	}
	return p.remainingAfter[0]
}

// RemainingAfter returns the estimated remaining execution time of a job
// that has completed executed kernel launches. Arguments beyond the end of
// the sequence return zero.
func (p *Profile) RemainingAfter(executed int) sim.Time {
	if executed < 0 {
		executed = 0
	}
	if executed >= len(p.remainingAfter) {
		return 0
	}
	return p.remainingAfter[executed]
}

// RemainingByFormula evaluates the paper's §6 estimate directly:
// Σᵢ max(0, C̄ᵢ − cᵢ)·T̄ᵢ given per-kernel executed counts. It is used by
// tests to validate the suffix table and by schedulers that cannot assume
// deterministic sequences.
func (p *Profile) RemainingByFormula(executedCounts map[string]int) sim.Time {
	var total sim.Time
	for name, st := range p.stats {
		rem := st.Count - float64(executedCounts[name])
		if rem > 0 {
			total += sim.Time(rem * float64(st.MeanTime))
		}
	}
	return total
}

// BatchAlpha returns the named kernel's learned batch-scaling coefficient
// (1 — no batching benefit — when the kernel is unknown or unprofiled).
func (p *Profile) BatchAlpha(kernel string) float64 {
	if st := p.stats[kernel]; st != nil && st.BatchAlpha > 0 {
		return st.BatchAlpha
	}
	return 1
}

// BatchScale returns the per-block duration multiplier for an n-way
// batched launch of the named kernel: s(n) = (1+(n−1)α)/n, so the widened
// grid's total block-time is B·d·(1+(n−1)α) — the first sample pays full
// cost, each extra sample pays the marginal fraction α. α is per-kernel
// (learned by ProfileModel from measured solo occupancy), not one global
// constant: a kernel already saturating the device gains little from
// batching while an occupancy-starved one gains nearly 1/n.
func (p *Profile) BatchScale(kernel string, n int) float64 {
	if n <= 1 {
		return 1
	}
	a := p.BatchAlpha(kernel)
	return (1 + float64(n-1)*a) / float64(n)
}

// rebuild recomputes the suffix table from the model sequence and current
// means.
func (p *Profile) rebuild(m *model.Model) {
	p.dirty = 0
	p.remainingAfter = make([]sim.Time, len(m.Seq)+1)
	for j := len(m.Seq) - 1; j >= 0; j-- {
		k := m.Kernels[m.Seq[j]]
		mean := sim.Time(0)
		if st := p.stats[k.Name]; st != nil {
			mean = st.MeanTime
		}
		p.remainingAfter[j] = p.remainingAfter[j+1] + mean
	}
}

// ProfileModel runs the paper's profiling phase: it executes the model
// `runs` times back-to-back on an idle simulated device, measuring each
// kernel execution's wall time, and returns the resulting profile. The
// profiling device uses the given configuration so occupancy waves are
// reflected in the means.
func ProfileModel(ins *Instrumented, devCfg gpu.Config, runs int) (*Profile, error) {
	if runs <= 0 {
		return nil, fmt.Errorf("compiler: profiling needs at least one run")
	}
	m := ins.Model
	p := &Profile{ModelName: m.Name, stats: make(map[string]*KernelStat)}
	env := sim.NewEnv()
	dev := gpu.NewDevice(env, devCfg, nil)
	env.Spawn("profiler", func(proc *sim.Proc) {
		for r := 0; r < runs; r++ {
			for _, ki := range m.Seq {
				spec := m.Kernels[ki]
				start := env.Now()
				done := sim.NewCompletion(env)
				dev.Submit(0, &gpu.Launch{Spec: spec, OnComplete: done.Fire})
				proc.Wait(done)
				p.Observe(spec.Name, env.Now()-start)
			}
		}
	})
	env.Run()
	// Per-job execution counts are exact for deterministic sequences.
	counts := m.Counts()
	alphaLo, alphaHi := ins.Cfg.batchAlphaRange()
	for i, k := range m.Kernels {
		if st := p.stats[k.Name]; st != nil {
			st.Count = float64(counts[i])
			// Batch-scaling coefficient from the kernel's solo device
			// utilization on the profiling device: the fraction of the
			// occupancy limit one launch already consumes. A saturating
			// kernel (util 1) serializes extra batched samples into more
			// waves (α → max); a small kernel's extra blocks ride idle SMs
			// (α → min).
			util := 1.0
			if maxRes := k.MaxResident(devCfg); maxRes > 0 {
				util = float64(k.Blocks) / float64(maxRes)
				if util > 1 {
					util = 1
				}
			}
			st.BatchAlpha = alphaLo + (alphaHi-alphaLo)*util
		}
	}
	p.rebuild(m)
	ins.Profile = p
	return p, nil
}

// Compile is the full pipeline users invoke when submitting a model to the
// service: instrument, then profile on the target device configuration.
func Compile(m *model.Model, cfg Config, devCfg gpu.Config, profileRuns int) (*Instrumented, error) {
	ins, err := Instrument(m, cfg)
	if err != nil {
		return nil, err
	}
	if _, err := ProfileModel(ins, devCfg, profileRuns); err != nil {
		return nil, err
	}
	return ins, nil
}

// MustCompile is Compile for known-good inputs; it panics on error.
func MustCompile(m *model.Model, cfg Config, devCfg gpu.Config, profileRuns int) *Instrumented {
	ins, err := Compile(m, cfg, devCfg, profileRuns)
	if err != nil {
		panic(err)
	}
	return ins
}
