package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// --- Env checkpoint/restore ---

// TestEnvCheckpointRestore: restoring a checkpoint rewinds the clock and the
// pending-event set, and a re-run fires the same events in the same order as
// the original run past the checkpoint.
func TestEnvCheckpointRestore(t *testing.T) {
	run := func(rewind bool) []string {
		e := NewEnv()
		var log []string
		for k := 0; k < 10; k++ {
			k := k
			e.At(Time(k)*Microsecond, func() {
				log = append(log, fmt.Sprintf("%d/e%d", int64(e.Now()), k))
				if k%3 == 0 {
					e.DoAfter(500, func() {
						log = append(log, fmt.Sprintf("%d/f%d", int64(e.Now()), k))
					})
				}
			})
		}
		e.RunUntil(4 * Microsecond)
		ck := e.Checkpoint()
		mark := len(log)
		if rewind {
			e.RunUntil(7 * Microsecond) // speculate ahead...
			log = log[:mark]            // ...discard the attempt's output...
			e.Restore(ck)               // ...and rewind the engine
		}
		e.Run()
		return log
	}
	straight := run(false)
	rewound := run(true)
	if len(straight) == 0 {
		t.Fatal("empty log")
	}
	if fmt.Sprint(straight) != fmt.Sprint(rewound) {
		t.Fatalf("replay diverged:\n straight: %v\n rewound:  %v", straight, rewound)
	}
}

// TestEnvRestoreStaleHandles: timer handles minted before a restore go
// inert — Cancel is a no-op against the replayed schedule.
func TestEnvRestoreStaleHandles(t *testing.T) {
	e := NewEnv()
	fired := 0
	tm := e.At(5*Microsecond, func() { fired++ })
	ck := e.Checkpoint()
	e.Restore(ck)
	e.Cancel(tm) // stale: must not cancel the restored copy of the event
	if tm.Stopped() {
		t.Fatal("stale handle claims Stopped")
	}
	e.Run()
	if fired != 1 {
		t.Fatalf("restored event fired %d times, want 1", fired)
	}
}

// TestEnvCheckpointPreservesSeq: FIFO order among same-instant events
// survives a checkpoint/restore cycle (seqs are preserved, not re-issued).
func TestEnvCheckpointPreservesSeq(t *testing.T) {
	e := NewEnv()
	var order []int
	for k := 0; k < 8; k++ {
		k := k
		e.At(Microsecond, func() { order = append(order, k) })
	}
	e.Restore(e.Checkpoint())
	e.Run()
	for k, got := range order {
		if got != k {
			t.Fatalf("FIFO order broken after restore: %v", order)
		}
	}
}

// --- speculative actor harness ---

// specActor is a checkpointable shard occupant: a self-perpetuating tick
// chain plus a log, all of it rewindable. Used to prove rollback-replay
// exactness.
type specActor struct {
	env    *Env
	period Time
	limit  int
	ticks  int
	count  int
	log    []string
}

type specActorSnap struct {
	ticks, count int
	log          []string
}

func (a *specActor) SaveCheckpoint() any {
	return &specActorSnap{ticks: a.ticks, count: a.count, log: append([]string(nil), a.log...)}
}

func (a *specActor) RestoreCheckpoint(s any) {
	sn := s.(*specActorSnap)
	a.ticks, a.count = sn.ticks, sn.count
	a.log = append(a.log[:0], sn.log...)
}

func (a *specActor) start() { a.env.DoAfter(a.period, a.tick) }

func (a *specActor) tick() {
	a.ticks++
	a.count++
	a.log = append(a.log, fmt.Sprintf("%d/tick%d/c%d", int64(a.env.Now()), a.ticks, a.count))
	if a.ticks < a.limit {
		a.env.DoAfter(a.period, a.tick)
	}
}

// runInjectWorkload drives a single specActor shard with control-timeline
// injections at awkward (mid-window) times and returns the actor transcript.
func runInjectWorkload(speculative, parallel bool) []string {
	w := NewWorld()
	w.SetWindow(10 * Microsecond)
	w.SetParallel(parallel)
	defer w.Close()
	s := w.AddShard()
	a := &specActor{env: s, period: 3 * Microsecond, limit: 64}
	a.start()
	if speculative {
		w.SetSpeculative(true)
		w.SetSpeculationCeiling(160 * Microsecond)
		w.RegisterCheckpoint(0, a)
	}
	for k := 0; k < 9; k++ {
		k := k
		at := Time(k)*23*Microsecond + 500 // lands mid-window on purpose
		w.Ctrl().At(at, func() {
			w.Inject(0, func() {
				a.count += 100
				a.log = append(a.log, fmt.Sprintf("%d/inject%d/c%d", int64(a.env.Now()), k, a.count))
			})
		})
	}
	w.Run()
	return append([]string(nil), a.log...)
}

// TestSpecInjectExactness: for a checkpoint-registered shard, speculative
// execution with rollback-replay produces the *exact* transcript of the
// conservative engine — injections interleave with shard events at their
// true timestamps, not at window barriers.
func TestSpecInjectExactness(t *testing.T) {
	conservative := runInjectWorkload(false, false)
	if len(conservative) == 0 {
		t.Fatal("empty transcript")
	}
	for _, par := range []bool{false, true} {
		spec := runInjectWorkload(true, par)
		if fmt.Sprint(spec) != fmt.Sprint(conservative) {
			t.Fatalf("parallel=%v: speculative transcript diverged from conservative:\n cons: %v\n spec: %v",
				par, conservative, spec)
		}
	}
}

// TestSpecRollbackCounters: the injection workload must actually exercise
// the rollback machinery, not coast through on lucky window alignment.
func TestSpecRollbackCounters(t *testing.T) {
	w := NewWorld()
	w.SetWindow(10 * Microsecond)
	defer w.Close()
	s := w.AddShard()
	a := &specActor{env: s, period: 3 * Microsecond, limit: 64}
	a.start()
	w.SetSpeculative(true)
	w.RegisterCheckpoint(0, a)
	injections := 0
	for k := 0; k < 9; k++ {
		w.Ctrl().At(Time(k)*23*Microsecond+500, func() {
			w.Inject(0, func() { a.count++ })
			injections++
		})
	}
	w.Run()
	st := w.SpecStats()
	if st.Windows == 0 {
		t.Fatal("no speculative windows recorded")
	}
	if st.Rollbacks == 0 {
		t.Fatal("workload never rolled back — injections missed the executed window")
	}
	if st.Replayed != uint64(injections) {
		t.Fatalf("replayed %d of %d injections", st.Replayed, injections)
	}
	if st.Deferred != 0 {
		t.Fatalf("registered shard took %d deferred injections", st.Deferred)
	}
}

// TestSpecAdaptiveWindowWidens: with no cross-timeline traffic the adaptive
// window must widen toward the ceiling, cutting barrier count well below the
// conservative engine's.
func TestSpecAdaptiveWindowWidens(t *testing.T) {
	w := NewWorld()
	w.SetWindow(Microsecond)
	w.SetSpeculative(true)
	w.SetSpeculationCeiling(64 * Microsecond)
	defer w.Close()
	s := w.AddShard()
	a := &specActor{env: s, period: Microsecond, limit: 512}
	a.start()
	w.Run()
	st := w.SpecStats()
	if st.Widened == 0 {
		t.Fatalf("quiet workload never widened the window: %+v", st)
	}
	if st.Windows >= 512 {
		t.Fatalf("window count %d not reduced below one-per-event", st.Windows)
	}
	if a.ticks != 512 {
		t.Fatalf("actor ran %d of 512 ticks", a.ticks)
	}
}

// TestSpecSerialParallelIdentical: the determinism wall extended to
// speculation — a speculative parallel run is bit-identical to a
// speculative serial run on the mixed post/injection workload, across
// seeds. (Speculative and conservative runs are *different* simulations for
// post-carrying workloads — posts defer to the barrier — but each mode is
// internally deterministic.)
func TestSpecSerialParallelIdentical(t *testing.T) {
	const shards = 4
	run := func(seed int64, parallel bool) []string {
		rng := rand.New(rand.NewSource(seed))
		w := NewWorld()
		w.SetWindow(Time(1+rng.Intn(40)) * Microsecond)
		w.SetSpeculative(true)
		w.SetParallel(parallel)
		defer w.Close()
		log := newWorldLog(shards)
		for i := 0; i < shards; i++ {
			i := i
			s := w.AddShard()
			n := 20 + rng.Intn(30)
			for k := 0; k < n; k++ {
				k := k
				at := Time(rng.Intn(2000)) * 100
				s.At(at, func() {
					log.addShard(i, s.Now(), fmt.Sprintf("e%d", k))
					if k%3 == 0 {
						w.Post(i, func() {
							log.addCtrl(w.Ctrl().Now(), fmt.Sprintf("p%d-%d", i, k))
						})
					}
				})
			}
		}
		for k := 0; k < 25; k++ {
			k := k
			at := Time(rng.Intn(2000)) * 100
			w.Ctrl().At(at, func() {
				log.addCtrl(w.Ctrl().Now(), fmt.Sprintf("c%d", k))
				j := k % shards
				tgt := w.Shard(j)
				w.Inject(j, func() { // unregistered shard: deferred injection
					tgt.DoAfter(Microsecond, func() {
						log.addShard(j, tgt.Now(), fmt.Sprintf("cc%d", k))
					})
				})
			})
		}
		w.Run()
		return log.lines()
	}
	for seed := int64(1); seed <= 6; seed++ {
		serial := run(seed, false)
		par := run(seed, true)
		if len(serial) == 0 {
			t.Fatalf("seed %d: empty log", seed)
		}
		if len(serial) != len(par) {
			t.Fatalf("seed %d: length divergence %d vs %d", seed, len(serial), len(par))
		}
		for i := range serial {
			if serial[i] != par[i] {
				t.Fatalf("seed %d: divergence at %d: %q vs %q", seed, i, serial[i], par[i])
			}
		}
	}
}

// TestSpecPostStormIdentity: random post storms against a rollback-enabled
// shard — rollbacks discard and regenerate speculative posts, and the
// serial/parallel transcripts must still match bit-for-bit across seeds.
func TestSpecPostStormIdentity(t *testing.T) {
	run := func(seed int64, parallel bool) []string {
		rng := rand.New(rand.NewSource(seed))
		w := NewWorld()
		w.SetWindow(5 * Microsecond)
		w.SetSpeculative(true)
		w.SetParallel(parallel)
		defer w.Close()
		s := w.AddShard()
		a := &specActor{env: s, period: Time(1+rng.Intn(3)) * Microsecond, limit: 40}
		a.start()
		w.RegisterCheckpoint(0, a)
		// A second, unregistered shard posting its own storm.
		s2 := w.AddShard()
		log := newWorldLog(2)
		for k := 0; k < 30; k++ {
			k := k
			at := Time(rng.Intn(150)) * Microsecond
			s2.At(at, func() {
				log.addShard(1, s2.Now(), fmt.Sprintf("n%d", k))
				w.Post(1, func() {
					log.addCtrl(w.Ctrl().Now(), fmt.Sprintf("p%d", k))
				})
			})
		}
		for k := 0; k < 12; k++ {
			k := k
			at := Time(rng.Intn(150)) * Microsecond
			w.Ctrl().At(at, func() {
				w.Inject(0, func() {
					a.count += 1000
					a.log = append(a.log, fmt.Sprintf("%d/i%d", int64(a.env.Now()), k))
				})
			})
		}
		w.Run()
		return append(log.lines(), a.log...)
	}
	for seed := int64(1); seed <= 5; seed++ {
		serial := run(seed, false)
		par := run(seed, true)
		if fmt.Sprint(serial) != fmt.Sprint(par) {
			t.Fatalf("seed %d: serial/parallel divergence\n serial: %v\n parall: %v", seed, serial, par)
		}
	}
}

// --- arena invariants (testing/quick) ---

// TestArenaInvariantsQuick drives the timer arena with random
// alloc/free/freeCancelled sequences and checks the structural invariants:
// live records never sit on the free list, the free list's length matches
// the nfree counter, every free-list index is in range and distinct, and
// live() conserves (allocated - freed).
func TestArenaInvariantsQuick(t *testing.T) {
	check := func(ops []byte) bool {
		var a arena
		a.freeHead = -1
		live := make(map[int32]bool)
		for _, op := range ops {
			switch {
			case op%3 == 0 || len(live) == 0: // alloc
				i := a.alloc()
				if live[i] {
					t.Logf("alloc returned live record %d", i)
					return false
				}
				if a.recs[i].gen&1 != 0 {
					t.Logf("alloc returned odd generation %d", a.recs[i].gen)
					return false
				}
				live[i] = true
			default: // free one live record, fired or cancelled
				var victim int32 = -1
				for i := range live {
					if victim < 0 || i < victim {
						victim = i
					}
				}
				if op%3 == 1 {
					a.free(victim)
				} else {
					a.freeCancelled(victim)
				}
				delete(live, victim)
			}
		}
		// Walk the free list: every entry distinct, in range, not live.
		seen := make(map[int32]bool)
		n := 0
		for i := a.freeHead; i >= 0; i = a.recs[i].link {
			if int(i) >= len(a.recs) || seen[i] || live[i] {
				t.Logf("free list corrupt at %d (seen=%v live=%v)", i, seen[i], live[i])
				return false
			}
			seen[i] = true
			n++
		}
		if n != a.nfree {
			t.Logf("free list length %d != nfree %d", n, a.nfree)
			return false
		}
		if a.live() != len(live) {
			t.Logf("live() = %d, model says %d", a.live(), len(live))
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
