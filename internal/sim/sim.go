// Package sim provides a deterministic discrete-event simulation engine.
//
// All of the Paella reproduction's macro experiments run on virtual time:
// the GPU device model, the CUDA runtime emulation, the dispatcher, and the
// clients are all actors scheduled on a single Env. Events fire in strict
// (time, insertion-order) order, so a run with a given seed is exactly
// reproducible.
//
// Two actor styles are supported:
//
//   - Callback actors register plain functions with After/At. The GPU block
//     scheduler and the Paella dispatcher are written this way.
//   - Process actors (see Proc) are goroutines that block on virtual-time
//     primitives (Sleep, Completion.Wait, Cond.Wait). Only one process (or
//     event callback) is ever runnable at a time; control is handed off
//     synchronously, which keeps the simulation deterministic. Client jobs
//     and CUDA-style adaptor code use processes, mirroring the stackful
//     Boost coroutines used by the paper's dispatcher (§4.2).
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point on (or a span of) the virtual timeline, in nanoseconds.
type Time int64

// Convenient durations for expressing virtual time spans.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String formats t with an adaptive unit, e.g. "1.500ms".
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns t as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Timer is a scheduled event. It may be cancelled with Cancel before it
// fires; firing and cancellation are both idempotent.
type Timer struct {
	at      Time
	seq     uint64
	index   int // heap index, -1 once popped
	fn      func()
	stopped bool
}

// At reports the virtual time at which the timer is (or was) due.
func (t *Timer) At() Time { return t.at }

// Stopped reports whether the timer was cancelled before firing.
func (t *Timer) Stopped() bool { return t.stopped }

// Env is a discrete-event simulation environment. The zero value is not
// usable; construct with NewEnv.
type Env struct {
	now     Time
	events  eventHeap
	seq     uint64
	steps   uint64
	running bool
	// procPanic carries a panic out of a process goroutine so that it
	// surfaces on the main (test) goroutine instead of being lost.
	procPanic any
	hasPanic  bool
	// recorder is an optional tracing recorder attached to the run. It is
	// stored as any so that sim stays import-free of higher layers;
	// internal/trace.FromEnv performs the typed retrieval. A nil recorder
	// means tracing is disabled and must cost nothing.
	recorder any
}

// SetRecorder attaches an optional tracing recorder (see internal/trace) to
// the environment. Components read it once at construction; attaching after
// actors have been built has no effect on them.
func (e *Env) SetRecorder(r any) { e.recorder = r }

// Recorder returns the attached tracing recorder, or nil.
func (e *Env) Recorder() any { return e.recorder }

// NewEnv returns an environment with the clock at zero and no pending events.
func NewEnv() *Env {
	return &Env{}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Steps returns the number of events executed so far (useful for detecting
// runaway simulations in tests).
func (e *Env) Steps() uint64 { return e.steps }

// Pending returns the number of scheduled, uncancelled events.
func (e *Env) Pending() int { return len(e.events) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality. Scheduling exactly at Now is
// allowed and runs after the current event completes.
func (e *Env) At(t Time, fn func()) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	tm := &Timer{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, tm)
	return tm
}

// After schedules fn to run d nanoseconds of virtual time from now.
// Negative d panics.
func (e *Env) After(d Time, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel stops a pending timer. Cancelling an already-fired or
// already-cancelled timer is a no-op.
func (e *Env) Cancel(t *Timer) {
	if t == nil || t.stopped || t.index < 0 {
		t.markStopped()
		return
	}
	t.stopped = true
	heap.Remove(&e.events, t.index)
}

func (t *Timer) markStopped() {
	if t != nil {
		t.stopped = true
	}
}

// Step executes the single earliest pending event, advancing the clock to
// its due time. It returns false if no events are pending.
func (e *Env) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	tm := heap.Pop(&e.events).(*Timer)
	e.now = tm.at
	e.steps++
	tm.fn()
	if e.hasPanic {
		p := e.procPanic
		e.procPanic, e.hasPanic = nil, false
		panic(p)
	}
	return true
}

// Run executes events until none remain.
func (e *Env) Run() {
	for e.Step() {
	}
}

// RunUntil executes all events due at or before t, then advances the clock
// to exactly t (even if the last event fired earlier).
func (e *Env) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor executes events for a span of d virtual nanoseconds from now.
func (e *Env) RunFor(d Time) { e.RunUntil(e.now + d) }

// eventHeap is a min-heap ordered by (at, seq) so that events scheduled for
// the same instant fire in insertion order.
type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}
