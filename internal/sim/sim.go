// Package sim provides a deterministic discrete-event simulation engine.
//
// All of the Paella reproduction's macro experiments run on virtual time:
// the GPU device model, the CUDA runtime emulation, the dispatcher, and the
// clients are all actors scheduled on a single Env. Events fire in strict
// (time, insertion-order) order, so a run with a given seed is exactly
// reproducible.
//
// Two actor styles are supported:
//
//   - Callback actors register plain functions with After/At. The GPU block
//     scheduler and the Paella dispatcher are written this way.
//   - Process actors (see Proc) are goroutines that block on virtual-time
//     primitives (Sleep, Completion.Wait, Cond.Wait). Only one process (or
//     event callback) is ever runnable at a time; control is handed off
//     synchronously, which keeps the simulation deterministic. Client jobs
//     and CUDA-style adaptor code use processes, mirroring the stackful
//     Boost coroutines used by the paper's dispatcher (§4.2).
//
// For multi-GPU cluster simulations, World composes several Envs — one
// shard per replica plus a control shard — and executes replica windows
// concurrently under a conservative synchronization protocol while keeping
// results bit-identical to a serial run (see world.go).
package sim

import (
	"fmt"
)

// Time is a point on (or a span of) the virtual timeline, in nanoseconds.
type Time int64

// Convenient durations for expressing virtual time spans.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String formats t with an adaptive unit, e.g. "1.500ms".
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns t as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Timer is a scheduled event. It may be cancelled with Cancel before it
// fires; firing and cancellation are both idempotent.
type Timer struct {
	at  Time
	seq uint64
	// bkt/index locate a queued timer: bkt is its run bucket and index its
	// slot there (see heap.go); bkt == nil with index -2 means the
	// immediate FIFO; bkt == nil with index -1 means not queued.
	bkt     *bucket
	index   int
	fn      func()
	stopped bool
	// pooled marks a timer created through the handle-free Do/DoAfter
	// path: no caller holds a reference, so the Env recycles it after it
	// fires to keep the per-event allocation rate near zero.
	pooled bool
}

// At reports the virtual time at which the timer is (or was) due.
func (t *Timer) At() Time { return t.at }

// Stopped reports whether the timer was cancelled before firing.
func (t *Timer) Stopped() bool { return t.stopped }

// Env is a discrete-event simulation environment. The zero value is not
// usable; construct with NewEnv.
type Env struct {
	now     Time
	events  eventQueue
	seq     uint64
	steps   uint64
	running bool
	// imm is a circular FIFO of events due exactly at the current clock —
	// the zero-delay handoffs (process wakeups, completion fires, mutex
	// transfers) that dominate a DES run. Because every entry was scheduled
	// while the clock already stood at its due time, entries are in seq
	// order, and any heap event sharing that timestamp was scheduled
	// earlier (smaller seq); comparing the FIFO front against the heap top
	// by (at, seq) therefore reproduces the exact global event order while
	// keeping the common case O(1) instead of O(log n). The FIFO always
	// drains before the clock can advance, so entries never go stale.
	imm      []*Timer
	immFirst int
	immLen   int
	// immDead counts cancelled-but-unpopped FIFO entries (removed lazily).
	immDead int
	// free is the recycled-timer pool fed by pooled (Do/DoAfter) events.
	free []*Timer
	// procPanic carries a panic out of a process goroutine so that it
	// surfaces on the main (test) goroutine instead of being lost.
	procPanic any
	hasPanic  bool
	// recorder is an optional tracing recorder attached to the run. It is
	// stored as any so that sim stays import-free of higher layers;
	// internal/trace.FromEnv performs the typed retrieval. A nil recorder
	// means tracing is disabled and must cost nothing.
	recorder any
	// meter is the recorder's windowed-telemetry sibling: an optional
	// telemetry.Meter (internal/telemetry.FromEnv retrieves it typed).
	// Nil means telemetry is disabled and must cost nothing.
	meter any
}

// SetRecorder attaches an optional tracing recorder (see internal/trace) to
// the environment. Components read it once at construction; attaching after
// actors have been built has no effect on them.
func (e *Env) SetRecorder(r any) { e.recorder = r }

// Recorder returns the attached tracing recorder, or nil.
func (e *Env) Recorder() any { return e.recorder }

// SetMeter attaches an optional windowed-telemetry meter (see
// internal/telemetry). Like the recorder, components read it once at
// construction.
func (e *Env) SetMeter(m any) { e.meter = m }

// Meter returns the attached telemetry meter, or nil.
func (e *Env) Meter() any { return e.meter }

// NewEnv returns an environment with the clock at zero and no pending events.
func NewEnv() *Env {
	return &Env{}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Steps returns the number of events executed so far (useful for detecting
// runaway simulations in tests).
func (e *Env) Steps() uint64 { return e.steps }

// Pending returns the number of scheduled, uncancelled events.
func (e *Env) Pending() int { return e.events.len() + e.immLen - e.immDead }

// NextEventTime returns the due time of the earliest pending event, and
// whether one exists. The World engine uses it to size conservative
// execution windows.
func (e *Env) NextEventTime() (Time, bool) {
	if f := e.immFront(); f != nil {
		// FIFO entries are due at the current clock, which is ≤ any heap
		// event's due time.
		return f.at, true
	}
	if e.events.len() == 0 {
		return 0, false
	}
	at, _ := e.events.minKey()
	return at, true
}

// immFront returns the earliest live immediate-FIFO entry, discarding
// cancelled entries on the way (lazy removal), or nil when the FIFO is
// empty.
func (e *Env) immFront() *Timer {
	for e.immLen > 0 {
		tm := e.imm[e.immFirst]
		if !tm.stopped {
			return tm
		}
		e.popImm()
		e.immDead--
	}
	return nil
}

// pushImm appends an event due exactly now to the immediate FIFO.
func (e *Env) pushImm(tm *Timer) {
	if e.immLen == len(e.imm) {
		e.growImm()
	}
	tm.index = -2
	e.imm[(e.immFirst+e.immLen)&(len(e.imm)-1)] = tm
	e.immLen++
}

// popImm removes the FIFO front (which callers have already inspected).
func (e *Env) popImm() *Timer {
	tm := e.imm[e.immFirst]
	e.imm[e.immFirst] = nil
	e.immFirst = (e.immFirst + 1) & (len(e.imm) - 1)
	e.immLen--
	tm.index = -1
	return tm
}

// growImm doubles the FIFO ring (minimum 16 slots, power of two),
// relocating live entries to the front.
func (e *Env) growImm() {
	next := make([]*Timer, max(16, 2*len(e.imm)))
	for i := 0; i < e.immLen; i++ {
		next[i] = e.imm[(e.immFirst+i)&(len(e.imm)-1)]
	}
	e.imm, e.immFirst = next, 0
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality. Scheduling exactly at Now is
// allowed and runs after the current event completes.
func (e *Env) At(t Time, fn func()) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	tm := &Timer{at: t, seq: e.seq, fn: fn}
	e.seq++
	if t == e.now {
		e.pushImm(tm)
	} else {
		e.events.push(tm)
	}
	return tm
}

// After schedules fn to run d nanoseconds of virtual time from now.
// Negative d panics.
func (e *Env) After(d Time, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Do schedules fn at absolute time t without returning a cancellation
// handle. Because no caller can hold (or Cancel) the timer, the Env
// recycles it after it fires — the hot-path scheduling primitive for
// events that are never cancelled (process wakeups, device kicks,
// notification posts). Semantically identical to At.
func (e *Env) Do(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	var tm *Timer
	if n := len(e.free); n > 0 {
		tm = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		tm.at, tm.fn, tm.stopped = t, fn, false
	} else {
		tm = &Timer{at: t, fn: fn, pooled: true}
	}
	tm.seq = e.seq
	e.seq++
	if t == e.now {
		e.pushImm(tm)
	} else {
		e.events.push(tm)
	}
}

// DoAfter schedules fn after a delay without a cancellation handle; see Do.
func (e *Env) DoAfter(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.Do(e.now+d, fn)
}

// Cancel stops a pending timer. Cancelling an already-fired or
// already-cancelled timer is a no-op.
func (e *Env) Cancel(t *Timer) {
	if t == nil || t.stopped {
		t.markStopped()
		return
	}
	if t.index == -2 {
		// Parked in the immediate FIFO: mark dead, removed lazily when it
		// reaches the front.
		t.stopped = true
		e.immDead++
		return
	}
	t.stopped = true
	if t.bkt != nil {
		e.events.cancel(t)
	}
}

func (t *Timer) markStopped() {
	if t != nil {
		t.stopped = true
	}
}

// Step executes the single earliest pending event, advancing the clock to
// its due time. It returns false if no events are pending.
func (e *Env) Step() bool {
	var tm *Timer
	if f := e.immFront(); f != nil {
		// The FIFO front is due now; it loses only to a queued event at the
		// same timestamp scheduled earlier (smaller seq).
		fromQueue := false
		if e.events.len() > 0 {
			if at, seq := e.events.minKey(); at == f.at && seq < f.seq {
				fromQueue = true
			}
		}
		if fromQueue {
			tm = e.events.pop()
		} else {
			tm = e.popImm()
		}
	} else {
		if e.events.len() == 0 {
			return false
		}
		tm = e.events.pop()
	}
	e.now = tm.at
	e.steps++
	fn := tm.fn
	if tm.pooled {
		tm.fn = nil
		e.free = append(e.free, tm)
	}
	fn()
	if e.hasPanic {
		p := e.procPanic
		e.procPanic, e.hasPanic = nil, false
		panic(p)
	}
	return true
}

// Run executes events until none remain.
func (e *Env) Run() {
	for e.Step() {
	}
}

// RunUntil executes all events due at or before t, then advances the clock
// to exactly t (even if the last event fired earlier).
func (e *Env) RunUntil(t Time) {
	for {
		at, ok := e.NextEventTime()
		if !ok || at > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor executes events for a span of d virtual nanoseconds from now.
func (e *Env) RunFor(d Time) { e.RunUntil(e.now + d) }
