// Package sim provides a deterministic discrete-event simulation engine.
//
// All of the Paella reproduction's macro experiments run on virtual time:
// the GPU device model, the CUDA runtime emulation, the dispatcher, and the
// clients are all actors scheduled on a single Env. Events fire in strict
// (time, insertion-order) order, so a run with a given seed is exactly
// reproducible.
//
// Two actor styles are supported:
//
//   - Callback actors register plain functions with After/At. The GPU block
//     scheduler and the Paella dispatcher are written this way.
//   - Process actors (see Proc) are goroutines that block on virtual-time
//     primitives (Sleep, Completion.Wait, Cond.Wait). Only one process (or
//     event callback) is ever runnable at a time; control is handed off
//     synchronously, which keeps the simulation deterministic. Client jobs
//     and CUDA-style adaptor code use processes, mirroring the stackful
//     Boost coroutines used by the paper's dispatcher (§4.2).
//
// Event storage is a flat struct-of-arrays arena (see arena.go): records
// are addressed by index, recycled through an index-linked free list, and
// guarded by generation counters, so the steady-state event loop performs
// zero heap allocations per event.
//
// For multi-GPU cluster simulations, World composes several Envs — one
// shard per replica plus a control shard — and executes replica windows
// concurrently under a conservative synchronization protocol while keeping
// results bit-identical to a serial run (see world.go).
package sim

import (
	"fmt"
)

// Time is a point on (or a span of) the virtual timeline, in nanoseconds.
type Time int64

// Convenient durations for expressing virtual time spans.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String formats t with an adaptive unit, e.g. "1.500ms".
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns t as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Timer is a cancellation handle for a scheduled event, returned by At and
// After. It is a small value (no allocation): it names an arena record by
// index plus the generation observed at creation, so a handle held past the
// record's recycling degrades gracefully — Cancel becomes a no-op and
// Stopped keeps answering for the timer the handle originally named. The
// zero Timer is valid and inert.
type Timer struct {
	env *Env
	idx int32
	gen uint32
	at  Time
}

// At reports the virtual time at which the timer is (or was) due.
func (t Timer) At() Time { return t.at }

// Stopped reports whether the timer was cancelled before firing.
func (t Timer) Stopped() bool {
	if t.env == nil {
		return false
	}
	// Parity protocol (see arena.go): cancellation leaves the record at
	// exactly generation+1; firing or reuse moves it anywhere else.
	return t.env.arena.recs[t.idx].gen == t.gen+1
}

// Env is a discrete-event simulation environment. The zero value is not
// usable; construct with NewEnv.
type Env struct {
	now    Time
	arena  arena
	events eventQueue
	seq    uint64
	steps  uint64
	// imm is a circular FIFO of events due exactly at the current clock —
	// the zero-delay handoffs (process wakeups, completion fires, mutex
	// transfers) that dominate a DES run. Because every entry was scheduled
	// while the clock already stood at its due time, entries are in seq
	// order, and any heap event sharing that timestamp was scheduled
	// earlier (smaller seq); comparing the FIFO front against the heap top
	// by (at, seq) therefore reproduces the exact global event order while
	// keeping the common case O(1) instead of O(log n). The FIFO always
	// drains before the clock can advance, so entries never go stale.
	imm      []int32
	immFirst int
	immLen   int
	// immDead counts cancelled-but-unpopped FIFO entries (removed lazily).
	immDead int
	// mut counts queue mutations (schedule, fire, cancel); nextMut/nextAt/
	// nextOK memoize NextEventTime against it. The World engine probes every
	// shard's next event at least twice per window, and most shards are
	// untouched between probes — the memo turns those probes into a counter
	// compare.
	mut     uint64
	nextMut uint64
	nextAt  Time
	nextOK  bool
	// procPanic carries a panic out of a process goroutine so that it
	// surfaces on the main (test) goroutine instead of being lost.
	procPanic any
	hasPanic  bool
	// recorder is an optional tracing recorder attached to the run. It is
	// stored as any so that sim stays import-free of higher layers;
	// internal/trace.FromEnv performs the typed retrieval. A nil recorder
	// means tracing is disabled and must cost nothing.
	recorder any
	// meter is the recorder's windowed-telemetry sibling: an optional
	// telemetry.Meter (internal/telemetry.FromEnv retrieves it typed).
	// Nil means telemetry is disabled and must cost nothing.
	meter any
}

// SetRecorder attaches an optional tracing recorder (see internal/trace) to
// the environment. Components read it once at construction; attaching after
// actors have been built has no effect on them.
func (e *Env) SetRecorder(r any) { e.recorder = r }

// Recorder returns the attached tracing recorder, or nil.
func (e *Env) Recorder() any { return e.recorder }

// SetMeter attaches an optional windowed-telemetry meter (see
// internal/telemetry). Like the recorder, components read it once at
// construction.
func (e *Env) SetMeter(m any) { e.meter = m }

// Meter returns the attached telemetry meter, or nil.
func (e *Env) Meter() any { return e.meter }

// NewEnv returns an environment with the clock at zero and no pending events.
func NewEnv() *Env {
	e := &Env{mut: 1}
	e.arena.freeHead = -1
	e.events.a = &e.arena
	e.events.lastB = -1
	return e
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Steps returns the number of events executed so far (useful for detecting
// runaway simulations in tests).
func (e *Env) Steps() uint64 { return e.steps }

// Pending returns the number of scheduled, uncancelled events.
func (e *Env) Pending() int { return e.events.len() + e.immLen - e.immDead }

// NextEventTime returns the due time of the earliest pending event, and
// whether one exists. The World engine uses it to size conservative
// execution windows.
func (e *Env) NextEventTime() (Time, bool) {
	if e.nextMut == e.mut {
		return e.nextAt, e.nextOK
	}
	e.nextMut = e.mut
	if f := e.immFront(); f >= 0 {
		// FIFO entries are due at the current clock, which is ≤ any heap
		// event's due time.
		e.nextAt, e.nextOK = e.arena.recs[f].at, true
	} else if e.events.len() == 0 {
		e.nextAt, e.nextOK = 0, false
	} else {
		at, _ := e.events.minKey()
		e.nextAt, e.nextOK = at, true
	}
	return e.nextAt, e.nextOK
}

// immFront returns the arena index of the earliest live immediate-FIFO
// entry, discarding cancelled entries on the way (lazy removal), or -1 when
// the FIFO is empty.
func (e *Env) immFront() int32 {
	for e.immLen > 0 {
		i := e.imm[e.immFirst]
		if e.arena.recs[i].gen&1 == 0 {
			return i
		}
		e.popImm()
		e.arena.freeMarked(i)
		e.immDead--
	}
	return -1
}

// pushImm appends an event due exactly now to the immediate FIFO.
func (e *Env) pushImm(i int32) {
	if e.immLen == len(e.imm) {
		e.growImm()
	}
	e.arena.recs[i].bkt = bktImm
	e.imm[(e.immFirst+e.immLen)&(len(e.imm)-1)] = i
	e.immLen++
}

// popImm removes the FIFO front (which callers have already inspected).
func (e *Env) popImm() int32 {
	i := e.imm[e.immFirst]
	e.immFirst = (e.immFirst + 1) & (len(e.imm) - 1)
	e.immLen--
	e.arena.recs[i].bkt = bktNone
	return i
}

// growImm doubles the FIFO ring (minimum 16 slots, power of two),
// relocating live entries to the front.
func (e *Env) growImm() {
	next := make([]int32, max(16, 2*len(e.imm)))
	for i := 0; i < e.immLen; i++ {
		next[i] = e.imm[(e.immFirst+i)&(len(e.imm)-1)]
	}
	e.imm, e.immFirst = next, 0
}

// schedule allocates and enqueues a record; exactly one of fn or cb is set.
func (e *Env) schedule(t Time, fn func(), cb EventFn, ctx any, arg uint64) int32 {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	i := e.arena.alloc()
	r := &e.arena.recs[i]
	r.at, r.seq = t, e.seq
	r.fn, r.cb, r.ctx, r.arg = fn, cb, ctx, arg
	e.seq++
	e.mut++
	if t == e.now {
		e.pushImm(i)
	} else {
		e.events.push(i, t, r.seq)
	}
	return i
}

// At schedules fn to run at absolute virtual time t and returns a
// cancellation handle. Scheduling in the past panics: it would silently
// reorder causality. Scheduling exactly at Now is allowed and runs after
// the current event completes.
func (e *Env) At(t Time, fn func()) Timer {
	i := e.schedule(t, fn, nil, nil, 0)
	return Timer{env: e, idx: i, gen: e.arena.recs[i].gen, at: t}
}

// After schedules fn to run d nanoseconds of virtual time from now.
// Negative d panics.
func (e *Env) After(d Time, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Do schedules fn at absolute time t without returning a cancellation
// handle — the hot-path scheduling primitive for events that are never
// cancelled (process wakeups, device kicks, notification posts).
// Semantically identical to At.
func (e *Env) Do(t Time, fn func()) {
	e.schedule(t, fn, nil, nil, 0)
}

// DoAfter schedules fn after a delay without a cancellation handle; see Do.
func (e *Env) DoAfter(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.schedule(e.now+d, fn, nil, nil, 0)
}

// DoCall schedules the typed callback cb(ctx, arg) at absolute time t. The
// two words are stored inline in the timer record, so — unlike a capturing
// closure passed to Do — the call site allocates nothing. Use a top-level
// function or a method value that is free of per-call state.
func (e *Env) DoCall(t Time, cb EventFn, ctx any, arg uint64) {
	e.schedule(t, nil, cb, ctx, arg)
}

// DoCallAfter schedules the typed callback after a delay; see DoCall.
func (e *Env) DoCallAfter(d Time, cb EventFn, ctx any, arg uint64) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.schedule(e.now+d, nil, cb, ctx, arg)
}

// Cancel stops a pending timer. Cancelling an already-fired,
// already-cancelled, or zero Timer is a no-op.
func (e *Env) Cancel(t Timer) {
	env := t.env
	if env == nil {
		return
	}
	r := &env.arena.recs[t.idx]
	if r.gen != t.gen {
		return // fired, cancelled, or recycled since the handle was issued
	}
	switch r.bkt {
	case bktImm:
		// Parked in the immediate FIFO: flip odd (stopped), removed lazily
		// when it reaches the front.
		env.arena.cancelMark(t.idx)
		env.immDead++
		env.mut++
	case bktNone:
		// Live but unqueued can only be the record currently firing; the
		// parity check above already rejected everything else.
	default:
		env.events.cancel(t.idx)
		env.arena.freeCancelled(t.idx)
		env.mut++
	}
}

// Step executes the single earliest pending event, advancing the clock to
// its due time. It returns false if no events are pending.
func (e *Env) Step() bool {
	var i int32
	if f := e.immFront(); f >= 0 {
		// The FIFO front is due now; it loses only to a queued event at the
		// same timestamp scheduled earlier (smaller seq).
		fromQueue := false
		if e.events.len() > 0 {
			fr := &e.arena.recs[f]
			if at, seq := e.events.minKey(); at == fr.at && seq < fr.seq {
				fromQueue = true
			}
		}
		if fromQueue {
			i = e.events.pop()
		} else {
			i = e.popImm()
		}
	} else {
		if e.events.len() == 0 {
			return false
		}
		i = e.events.pop()
	}
	r := &e.arena.recs[i]
	e.now = r.at
	e.steps++
	e.mut++
	fn, cb, ctx, arg := r.fn, r.cb, r.ctx, r.arg
	e.arena.free(i)
	if cb != nil {
		cb(ctx, arg)
	} else {
		fn()
	}
	if e.hasPanic {
		p := e.procPanic
		e.procPanic, e.hasPanic = nil, false
		panic(p)
	}
	return true
}

// Run executes events until none remain.
func (e *Env) Run() {
	for e.Step() {
	}
}

// RunUntil executes all events due at or before t, then advances the clock
// to exactly t (even if the last event fired earlier).
func (e *Env) RunUntil(t Time) {
	for {
		at, ok := e.NextEventTime()
		if !ok || at > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor executes events for a span of d virtual nanoseconds from now.
func (e *Env) RunFor(d Time) { e.RunUntil(e.now + d) }
