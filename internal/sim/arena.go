package sim

// The timer arena is the struct-of-arrays backing store for every scheduled
// event. Instead of one heap-allocated Timer object per scheduling call,
// records live in a single flat []timerRec slice owned by the Env and are
// addressed by int32 index; the free list is index-linked through the
// records themselves (timerRec.link), so steady-state scheduling touches no
// allocator at all — At, After, Do, DoAfter, DoCall and DoCallAfter are all
// allocation-free once the arena has grown to the run's high-water mark.
//
// Records recycle the moment they fire (or are cancelled), protected by a
// generation counter: a Timer handle captures (index, generation) at
// creation, and every recycle bumps the record's generation, so operations
// through a stale handle — Cancel after firing, Stopped on a long-dead
// timer — degrade to safe no-ops instead of corrupting an unrelated reused
// record.
//
// Generation parity encodes *how* the record last died, so Stopped keeps
// working after the record is recycled: live records always carry an even
// generation; firing advances the generation by 2 (stays even), while
// cancellation advances it by 1 (odd). A handle holding generation g can
// therefore distinguish "cancelled" (record generation == g+1) from "fired
// or reused" (anything else) without the record keeping any per-handle
// state. Reusing a cancelled record normalizes the generation back to even
// in alloc, which also guarantees the new handle's generation exceeds every
// stale one.

// EventFn is the typed zero-allocation event callback: a top-level function
// or method value applied to a context pointer and one immediate argument.
// Scheduling an EventFn with DoCall/DoCallAfter stores both words inline in
// the timer record, so hot paths that would otherwise allocate a capturing
// closure per event schedule with zero allocations.
type EventFn func(ctx any, arg uint64)

// timerRec is one arena slot. at/seq order execution; exactly one of fn or
// cb is set; bkt/slot locate a queued record (bkt ≥ 0: bucket index in the
// event queue, bktImm: immediate FIFO, bktNone: not queued).
type timerRec struct {
	at   Time
	seq  uint64
	fn   func()
	cb   EventFn
	ctx  any
	arg  uint64
	gen  uint32
	bkt  int32
	slot int32
	link int32 // next free record while on the free list
}

const (
	bktNone int32 = -1 // not queued (free or mid-fire)
	bktImm  int32 = -2 // parked in the immediate FIFO
)

// arena is the flat record store plus its index-linked free list.
type arena struct {
	recs     []timerRec
	freeHead int32 // -1 when empty
	nfree    int
}

// alloc returns a live record index with fn/cb/ctx cleared, bkt = bktNone,
// and an even generation strictly greater than any stale handle's.
func (a *arena) alloc() int32 {
	if a.freeHead >= 0 {
		i := a.freeHead
		r := &a.recs[i]
		a.freeHead = r.link
		a.nfree--
		r.link = -1
		if r.gen&1 == 1 {
			r.gen++ // last death was a cancel: normalize to even
		}
		return i
	}
	a.recs = append(a.recs, timerRec{bkt: bktNone, link: -1})
	return int32(len(a.recs) - 1)
}

// free recycles a record that fired: generation += 2 keeps it even, so
// stale handles read "fired" (not Stopped), and clears the callback words
// for the GC.
func (a *arena) free(i int32) {
	r := &a.recs[i]
	r.gen += 2
	a.push(i)
}

// freeCancelled recycles a record that was cancelled while queued in the
// bucket heap: generation += 1 flips it odd so surviving handles report
// Stopped.
func (a *arena) freeCancelled(i int32) {
	r := &a.recs[i]
	r.gen++
	a.push(i)
}

// cancelMark flips a record odd without freeing it — used for records
// parked in the immediate FIFO, which are unlinked lazily (freeMarked) when
// they reach the FIFO front.
func (a *arena) cancelMark(i int32) { a.recs[i].gen++ }

// freeMarked completes the lazy free of a cancelMark'd record.
func (a *arena) freeMarked(i int32) { a.push(i) }

func (a *arena) push(i int32) {
	r := &a.recs[i]
	r.fn = nil
	r.cb = nil
	r.ctx = nil
	r.bkt = bktNone
	r.slot = 0
	r.link = a.freeHead
	a.freeHead = i
	a.nfree++
}

// live reports how many records are allocated and not on the free list.
func (a *arena) live() int { return len(a.recs) - a.nfree }
