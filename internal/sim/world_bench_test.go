package sim

import (
	"fmt"
	"testing"
)

// benchNop is the no-op typed callback delivered by the flushPosts
// benchmarks; the work under measurement is the merge, not the callbacks.
var benchNop EventFn = func(any, uint64) {}

// benchmarkFlushPosts measures the k-way outbox merge at a given shard
// count: every shard contributes a time-sorted outbox and flushPosts must
// interleave them into the canonical total order on the control heap. The
// indexed merge heap makes this O(total·log k); the historical
// implementation rescanned every outbox per message, O(total·k), which at
// 64+ shards dominated the barrier cost.
func benchmarkFlushPosts(b *testing.B, shards, postsPer int) {
	w := NewWorld()
	defer w.Close()
	for i := 0; i < shards; i++ {
		w.AddShard()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		b.StopTimer()
		// Refill the outboxes: shard-local timestamps nondecreasing, offset
		// per shard so the merge actually interleaves, and based at the
		// control clock so the drained control Env can be reused (its arena
		// stays at the high-water mark — the steady-state merge is
		// allocation-free).
		base := w.ctrl.Now()
		for i := range w.posts {
			for j := 0; j < postsPer; j++ {
				w.posts[i] = append(w.posts[i], wpost{at: base + Time(j*shards+i), cb: benchNop})
			}
		}
		b.StartTimer()
		w.flushPosts()
		b.StopTimer()
		w.ctrl.Run() // drain the no-op deliveries, recycling the arena
		b.StartTimer()
	}
}

func BenchmarkFlushPosts(b *testing.B) {
	for _, shards := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchmarkFlushPosts(b, shards, 16)
		})
	}
}
