package sim

import "fmt"

// Proc is a simulation process: a goroutine that advances only when the
// event loop hands it control and that parks itself whenever it blocks on a
// virtual-time primitive. At most one process (or event callback) runs at a
// time, so simulations remain deterministic even though processes are real
// goroutines under the hood.
//
// Processes model the paper's stackful coroutines: a Paella job adaptor is
// written as straight-line code calling blocking "CUDA" operations, and each
// blocking call yields control back to the dispatcher's event loop (§4.2,
// Fig. 7).
type Proc struct {
	env    *Env
	name   string
	resume chan struct{}
	parked chan struct{}
	done   bool
	// dispatchFn is the preallocated wakeup closure. Sleep/Wait/WaitCond
	// run once per simulated operation on hot paths; reusing one closure
	// (and the pooled Do scheduling path) keeps wakeups allocation-free.
	dispatchFn func()
}

// Spawn starts fn as a new simulation process. The process begins running
// at the current virtual time, after the currently-executing event returns.
// The name appears in panic messages only.
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		env:    e,
		name:   name,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
	}
	p.dispatchFn = p.dispatch
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				p.env.procPanic = fmt.Sprintf("sim: process %q panicked: %v", p.name, r)
				p.env.hasPanic = true
			}
			p.done = true
			p.parked <- struct{}{}
		}()
		fn(p)
	}()
	e.DoAfter(0, p.dispatchFn)
	return p
}

// Done reports whether the process function has returned.
func (p *Proc) Done() bool { return p.done }

// Name returns the process's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// dispatch transfers control to the process goroutine and blocks until the
// process parks again (or finishes). It must only be called from the event
// loop (i.e., from within an event callback).
func (p *Proc) dispatch() {
	if p.done {
		return
	}
	p.resume <- struct{}{}
	<-p.parked
}

// park suspends the process goroutine and returns control to the event
// loop. The process must have arranged (before calling park) for some future
// event to call dispatch, or it will never run again.
func (p *Proc) park() {
	p.parked <- struct{}{}
	<-p.resume
}

// Sleep suspends the process for d virtual nanoseconds.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	p.env.DoAfter(d, p.dispatchFn)
	p.park()
}

// Yield suspends the process and reschedules it at the current virtual time,
// letting other events due now run first.
func (p *Proc) Yield() { p.Sleep(0) }

// Completion is a one-shot event that processes and callbacks can wait on.
// It is the simulation analogue of a job-completion flag: Fire is idempotent
// and waiters registered after firing are released immediately.
type Completion struct {
	env   *Env
	fired bool
	fns   []func()
}

// NewCompletion returns an unfired completion bound to e.
func NewCompletion(e *Env) *Completion {
	return &Completion{env: e}
}

// Fired reports whether Fire has been called.
func (c *Completion) Fired() bool { return c.fired }

// Fire releases all current and future waiters. Subsequent calls are no-ops.
func (c *Completion) Fire() {
	if c.fired {
		return
	}
	c.fired = true
	fns := c.fns
	c.fns = nil
	for _, fn := range fns {
		c.env.DoAfter(0, fn)
	}
}

// OnFire registers a callback to run (as a fresh event) when the completion
// fires; if it has already fired the callback is scheduled immediately.
func (c *Completion) OnFire(fn func()) {
	if c.fired {
		c.env.DoAfter(0, fn)
		return
	}
	c.fns = append(c.fns, fn)
}

// Wait blocks the process until the completion fires.
func (p *Proc) Wait(c *Completion) {
	if c.fired {
		return
	}
	c.fns = append(c.fns, p.dispatchFn)
	p.park()
}

// Cond is a repeatable broadcast condition: Broadcast wakes every process
// and callback currently waiting, and subsequent waiters block until the
// next Broadcast. Unlike sync.Cond there is no lock — the simulation is
// single-threaded by construction.
type Cond struct {
	env *Env
	fns []func()
	// spare is the previous waiter slice, kept for reuse. Broadcast
	// ping-pongs fns and spare so the wait→broadcast→re-wait cycle that
	// dominates dispatcher hot loops stops reallocating a waiter slice per
	// round: DoAfter copies each func value into its timer record before
	// Broadcast returns, so the old backing array is immediately reusable.
	spare []func()
}

// NewCond returns a condition bound to e.
func NewCond(e *Env) *Cond { return &Cond{env: e} }

// Waiters returns the number of registered waiters.
func (c *Cond) Waiters() int { return len(c.fns) }

// Broadcast wakes all current waiters (as fresh events at the current time).
func (c *Cond) Broadcast() {
	fns := c.fns
	c.fns = c.spare[:0]
	for i, fn := range fns {
		c.env.DoAfter(0, fn)
		fns[i] = nil
	}
	c.spare = fns[:0]
}

// OnNext registers fn to run on the next Broadcast.
func (c *Cond) OnNext(fn func()) { c.fns = append(c.fns, fn) }

// WaitCond blocks the process until the next Broadcast on c.
func (p *Proc) WaitCond(c *Cond) {
	c.fns = append(c.fns, p.dispatchFn)
	p.park()
}
