package sim

import "testing"

func TestMutexSerializesFIFO(t *testing.T) {
	env := NewEnv()
	m := NewMutex(env)
	var order []string
	worker := func(name string, startAt, hold Time) {
		env.At(startAt, func() {
			env.Spawn(name, func(p *Proc) {
				m.Lock(p)
				order = append(order, name+"+")
				p.Sleep(hold)
				order = append(order, name+"-")
				m.Unlock()
			})
		})
	}
	worker("a", 0, 100)
	worker("b", 10, 100) // arrives while a holds
	worker("c", 20, 100) // arrives while a holds, after b
	env.Run()
	want := []string{"a+", "a-", "b+", "b-", "c+", "c-"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (FIFO violated)", order, want)
		}
	}
	if m.Held() {
		t.Fatal("mutex still held after all workers")
	}
}

func TestMutexUncontended(t *testing.T) {
	env := NewEnv()
	m := NewMutex(env)
	var at Time = -1
	env.Spawn("solo", func(p *Proc) {
		m.Lock(p)
		at = env.Now()
		m.Unlock()
	})
	env.Run()
	if at != 0 {
		t.Fatalf("uncontended lock delayed to %v", at)
	}
}

func TestMutexWaiters(t *testing.T) {
	env := NewEnv()
	m := NewMutex(env)
	env.Spawn("holder", func(p *Proc) {
		m.Lock(p)
		p.Sleep(100)
		if m.Waiters() != 2 {
			t.Errorf("Waiters = %d, want 2", m.Waiters())
		}
		m.Unlock()
	})
	for i := 0; i < 2; i++ {
		env.Spawn("waiter", func(p *Proc) {
			p.Sleep(1)
			m.Lock(p)
			m.Unlock()
		})
	}
	env.Run()
}

func TestMutexUnlockUnheldPanics(t *testing.T) {
	env := NewEnv()
	m := NewMutex(env)
	defer func() {
		if recover() == nil {
			t.Error("unlock of unheld mutex did not panic")
		}
	}()
	m.Unlock()
}

func TestYield(t *testing.T) {
	env := NewEnv()
	var order []int
	env.Spawn("a", func(p *Proc) {
		order = append(order, 1)
		p.Yield()
		order = append(order, 3)
	})
	env.Spawn("b", func(p *Proc) {
		order = append(order, 2)
	})
	env.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
}

func TestRunFor(t *testing.T) {
	env := NewEnv()
	fired := 0
	env.After(10, func() { fired++ })
	env.After(30, func() { fired++ })
	env.RunFor(20)
	if fired != 1 || env.Now() != 20 {
		t.Fatalf("fired=%d now=%v", fired, env.Now())
	}
	env.RunFor(20)
	if fired != 2 || env.Now() != 40 {
		t.Fatalf("fired=%d now=%v", fired, env.Now())
	}
}

func TestNegativeSleepPanics(t *testing.T) {
	env := NewEnv()
	env.Spawn("bad", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("negative sleep did not panic")
			}
		}()
		p.Sleep(-1)
	})
	env.Run()
}

func TestNegativeAfterPanics(t *testing.T) {
	env := NewEnv()
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	env.After(-5, func() {})
}
