package sim

import "sort"

// This file implements the World's speculative execution mode: shards run
// ahead of the conservative horizon into a checkpointed speculation region
// and roll back — optimistic synchronization in the Time Warp tradition —
// when a control-timeline event lands inside the window they already
// executed.
//
// Mode contract. Conservative mode (the default) clamps every window to the
// next control event, so control events always run with the shards parked
// at exactly the control clock: cross-timeline effects are exact, and the
// engine pays a barrier per control event. Speculative mode removes that
// clamp: the horizon is now + Δcur for an adaptive Δcur ∈ [Window,
// SpeculationCeiling] that doubles after every quiet window (no
// cross-timeline traffic) and collapses back to Window on contact. The
// reduced barrier count is the throughput win; the price is that
// cross-timeline effects inside a window are either replayed exactly via
// checkpoint rollback (shards registered with RegisterCheckpoint) or
// deferred to the window barrier (everything else). Like the Δ knob itself,
// speculation therefore selects a *different, equally valid* simulation —
// but serial and parallel execution of a speculative run remain
// bit-identical, because every speculation decision (what rolled back, what
// was deferred, in what order) is taken single-threaded by the coordinator
// with all shards parked.
//
// Rollback exactness. A rolled-back shard restores model state (via its
// Checkpointable) and its pending-event set to the window start, replays
// deterministically to each injection's timestamp, applies the injection,
// and re-runs to the horizon. The replay executes the same records with the
// same (time, seq) keys, so the interleaving with injected work is exactly
// what a conservative run would have produced. Posts the shard emitted
// during the discarded attempt are discarded with it and re-collected from
// the replay.

// Checkpointable is model state that can be snapshotted and restored for
// speculative rollback. SaveCheckpoint returns an opaque deep copy;
// RestoreCheckpoint reinstates it. A shard registered with
// World.RegisterCheckpoint must keep all its mutable simulation state
// reachable from its Checkpointable, and must use callback actors only:
// goroutine-based Procs blocked mid-wait cannot be rewound.
type Checkpointable interface {
	SaveCheckpoint() any
	RestoreCheckpoint(any)
}

// EnvCheckpoint is a snapshot of an Env's clock, counters, and pending
// events, taken by Env.Checkpoint and reinstated by Env.Restore.
type EnvCheckpoint struct {
	now   Time
	seq   uint64
	steps uint64
	recs  []timerRec // pending records in ascending seq order
}

// Checkpoint snapshots the environment: clock, sequence and step counters,
// and every pending (uncancelled) event. Callback words are copied by
// value; the snapshot does not deep-copy what ctx values point at — model
// state is the Checkpointable's business.
func (e *Env) Checkpoint() *EnvCheckpoint {
	ck := &EnvCheckpoint{now: e.now, seq: e.seq, steps: e.steps}
	for i := range e.arena.recs {
		r := &e.arena.recs[i]
		if r.bkt == bktNone || r.gen&1 == 1 {
			continue // free, mid-fire, or cancelled-pending-removal
		}
		ck.recs = append(ck.recs, timerRec{at: r.at, seq: r.seq, fn: r.fn, cb: r.cb, ctx: r.ctx, arg: r.arg})
	}
	sort.Slice(ck.recs, func(a, b int) bool { return ck.recs[a].seq < ck.recs[b].seq })
	return ck
}

// Restore rewinds the environment to a checkpoint: the clock, counters, and
// pending-event set return to their snapshotted values. Timer handles
// issued between the checkpoint and the restore — and handles for events
// that were pending at the checkpoint — become inert (Cancel no-ops,
// Stopped reports false): the arena is recycled underneath them, never
// shrunk, so stale handles stay in range and fail their generation check.
func (e *Env) Restore(ck *EnvCheckpoint) {
	// Retire every queued record through the cancellation path (generation
	// goes odd), then reset the queue containers wholesale.
	for i := range e.arena.recs {
		r := &e.arena.recs[i]
		if r.bkt == bktNone || r.gen&1 == 1 {
			if r.bkt != bktNone {
				// Cancel-marked immediate entry: detach and retire.
				r.bkt = bktNone
				e.arena.freeMarked(int32(i))
			}
			continue
		}
		r.bkt = bktNone
		e.arena.freeCancelled(int32(i))
	}
	e.events.reset()
	e.immFirst, e.immLen, e.immDead = 0, 0, 0
	e.now, e.steps = ck.now, ck.steps
	for k := range ck.recs {
		r := &ck.recs[k]
		e.seq = r.seq // schedule() stamps the record with e.seq
		e.schedule(r.at, r.fn, r.cb, r.ctx, r.arg)
	}
	e.seq = ck.seq
	e.mut++
}

// reset empties the queue, dropping every bucket and heap entry. The arena
// records themselves are the caller's to reconcile.
func (q *eventQueue) reset() {
	q.h = q.h[:0]
	for i := range q.buckets {
		q.buckets[i] = bucket{}
	}
	q.buckets = q.buckets[:0]
	q.bfree = q.bfree[:0]
	q.lastB = -1
	q.size = 0
}

// SpecStats counts speculative-mode activity.
type SpecStats struct {
	// Windows is the number of speculative windows executed.
	Windows uint64
	// Widened counts quiet windows that doubled the adaptive Δ.
	Widened uint64
	// Rollbacks counts shard rewinds (one per rolled-back shard-window).
	Rollbacks uint64
	// Replayed counts injections applied exactly via rollback-replay.
	Replayed uint64
	// Deferred counts injections applied at the window barrier because the
	// target shard has no checkpoint support.
	Deferred uint64
}

// injection is one control→shard crossing discovered during a speculative
// window, recorded for rollback-replay in control execution order.
type injection struct {
	at Time
	fn func()
}

// SetSpeculative switches the World between the conservative window
// protocol (default) and speculative execution. Toggle only between runs.
func (w *World) SetSpeculative(on bool) {
	w.speculative = on
	if on && w.specMax == 0 {
		w.specMax = 16 * w.window
	}
	w.curWindow = 0 // re-derive on next run
}

// Speculative reports whether speculative execution is on.
func (w *World) Speculative() bool { return w.speculative }

// SetSpeculationCeiling bounds the adaptive window. It must be at least the
// base window.
func (w *World) SetSpeculationCeiling(d Time) {
	if d < w.window {
		panic("sim: speculation ceiling below base window")
	}
	w.specMax = d
}

// SpecStats returns speculative-mode counters.
func (w *World) SpecStats() SpecStats { return w.specStats }

// RegisterCheckpoint gives shard i rollback support: control events that
// inject into the shard mid-window (World.Inject) rewind model state via c
// and the shard Env via Checkpoint/Restore, then replay exactly. Shards
// without a registration fall back to barrier-deferred injection.
//
// Once a shard is registered, every control→shard crossing into it MUST go
// through Inject: an event scheduled directly onto the shard's Env from a
// control handler would be erased — not replayed — if a later injection in
// the same window forces a rollback.
func (w *World) RegisterCheckpoint(i int, c Checkpointable) {
	if w.ckpt == nil {
		w.ckpt = make([]Checkpointable, len(w.shards))
	}
	w.ckpt[i] = c
}

// Inject runs fn against shard i's state from a control event. It is the
// canonical ctrl→shard crossing:
//
//   - Conservative mode: fn runs immediately — the shard is parked at the
//     barrier, which the window clamp pinned to the control clock, so the
//     crossing is exact.
//   - Speculative mode, shard registered via RegisterCheckpoint: the
//     injection is recorded; after the control window the shard rolls back
//     to its checkpoint, replays to the control timestamp, applies fn, and
//     re-runs — exact again, at the cost of the rollback.
//   - Speculative mode, unregistered shard: fn runs at the window barrier
//     with the shard parked at the horizon — deferred by at most the
//     current adaptive window, mirroring the Δ distortion of Post.
//
// fn may mutate shard state directly and schedule onto the shard's Env; it
// must not touch other shards.
func (w *World) Inject(i int, fn func()) {
	if !w.speculative {
		fn()
		return
	}
	if i < len(w.ckpt) && w.ckpt[i] != nil && w.inj != nil {
		w.inj[i] = append(w.inj[i], injection{at: w.ctrl.now, fn: fn})
		return
	}
	w.specStats.Deferred++
	w.deferredThisWindow++
	fn()
}

// saveCheckpoints snapshots every registered shard at the window start.
func (w *World) saveCheckpoints() {
	if w.ckpt == nil {
		return
	}
	if w.saved == nil {
		w.saved = make([]*EnvCheckpoint, len(w.shards))
		w.savedState = make([]any, len(w.shards))
		w.inj = make([][]injection, len(w.shards))
	}
	for i, c := range w.ckpt {
		if c == nil {
			continue
		}
		w.saved[i] = w.shards[i].Checkpoint()
		w.savedState[i] = c.SaveCheckpoint()
	}
}

// settleInjections resolves the window's recorded injections by rollback
// and exact replay. It reports whether any injection occurred (rollback or
// deferred) this window.
func (w *World) settleInjections(h Time) bool {
	touched := w.deferredThisWindow > 0
	w.deferredThisWindow = 0
	if w.inj == nil {
		return touched
	}
	for i := range w.inj {
		if len(w.inj[i]) == 0 {
			continue
		}
		touched = true
		s := w.shards[i]
		w.specStats.Rollbacks++
		// Discard the speculative attempt: posts it emitted are garbage.
		w.posts[i] = w.posts[i][:0]
		s.Restore(w.saved[i])
		w.ckpt[i].RestoreCheckpoint(w.savedState[i])
		for _, in := range w.inj[i] {
			s.RunUntil(in.at)
			in.fn()
			w.specStats.Replayed++
		}
		s.RunUntil(h)
		w.inj[i] = w.inj[i][:0]
	}
	return touched
}

// flushPostsAt merges the shard outboxes like flushPosts but delivers every
// message at barrier time h — the control clock has already passed the
// emission timestamps. Merge order is still the canonical (timestamp,
// shard, emission-order), preserved at h by the control Env's FIFO
// sequencing. It reports whether anything was delivered.
func (w *World) flushPostsAt(h Time) bool {
	if w.merge == nil || len(w.merge) < len(w.posts) {
		w.merge = make([]int, len(w.posts))
	}
	hp := w.mheap[:0]
	for i := range w.posts {
		if len(w.posts[i]) > 0 {
			w.merge[i] = 0
			hp = append(hp, mergeEnt{at: w.posts[i][0].at, shard: int32(i)})
		}
	}
	if len(hp) == 0 {
		w.mheap = hp
		return false
	}
	for i := len(hp)/2 - 1; i >= 0; i-- {
		mergeSiftDown(hp, i)
	}
	for len(hp) > 0 {
		i := int(hp[0].shard)
		p := w.posts[i][w.merge[i]]
		w.posts[i][w.merge[i]] = wpost{}
		w.merge[i]++
		if p.cb != nil {
			w.ctrl.DoCall(h, p.cb, p.ctx, p.arg)
		} else {
			w.ctrl.Do(h, p.fn)
		}
		if w.merge[i] < len(w.posts[i]) {
			hp[0].at = w.posts[i][w.merge[i]].at
		} else {
			hp[0] = hp[len(hp)-1]
			hp = hp[:len(hp)-1]
		}
		if len(hp) > 1 {
			mergeSiftDown(hp, 0)
		}
	}
	for i := range w.posts {
		w.posts[i] = w.posts[i][:0]
	}
	w.mheap = hp[:0]
	return true
}

// runSpec is the speculative main loop shared by Run and RunUntil.
func (w *World) runSpec(limit Time, bounded bool) {
	if w.curWindow < w.window {
		w.curWindow = w.window
	}
	if w.specMax < w.window {
		w.specMax = 16 * w.window
	}
	w.flushPosts() // leftovers from a previous conservative run
	for {
		t, ok := w.nextTime()
		if !ok || (bounded && t > limit) {
			break
		}
		h := t + w.curWindow
		if bounded && h > limit {
			h = limit
		}
		w.specStats.Windows++
		w.saveCheckpoints()
		w.runShards(h)
		w.ctrl.RunUntil(h)
		touched := w.settleInjections(h)
		posted := w.flushPostsAt(h)
		if touched || posted {
			w.curWindow = w.window
		} else if w.curWindow < w.specMax {
			w.curWindow *= 2
			if w.curWindow > w.specMax {
				w.curWindow = w.specMax
			}
			w.specStats.Widened++
		}
	}
	if bounded {
		for _, s := range w.shards {
			if s.now < limit {
				s.now = limit
			}
		}
		w.ctrl.RunUntil(limit)
	}
}
