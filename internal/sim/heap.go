package sim

// The event queue is a two-level structure exploiting the dominant
// scheduling pattern of this simulator: events are pushed in *runs* that
// share a due time (a GPU wave schedules one completion per SM, all at
// now+BlockDuration; a notification batch lands at now+NotifDelay). In the
// cluster benchmark ~70% of heap pushes carry the same timestamp as the
// push immediately before them.
//
// Instead of one heap node per timer, same-timestamp runs are stored as
// FIFO *buckets* and the 4-ary min-heap orders buckets by the key
// (at, front-seq) of their earliest live timer. Appending to the open
// bucket is O(1) and touches no heap node at all — the bucket's front (and
// therefore its key) is unchanged. Popping advances the bucket's cursor
// and re-sinks only if the bucket survives. The result is a heap whose
// size — and sift depth — is the number of pending *runs*, not pending
// timers.
//
// Correctness: each bucket holds timers in strictly increasing seq order
// (seq is the Env's global monotone counter, and buckets are append-only),
// so popping the minimum (at, front-seq) bucket key is a k-way merge of
// sorted runs — it yields the exact global (at, seq) total order that the
// flat heap produced. Several buckets may share an `at` (a run ended and a
// later run reused the timestamp); the front-seq tiebreak merges them
// correctly. Determinism and golden traces are therefore unaffected:
// only the constant factor changes.
//
// Storage: buckets hold arena indices (int32), not pointers, and the
// buckets themselves live in a flat slice addressed by index, so the whole
// queue is pointer-free — the GC never traces it, and no queue operation
// allocates once the slices reach the run's high-water mark.
//
// Cancellation: a record remembers its bucket and slot. Cancelling a
// bucket's front is eager (the cursor advances and the bucket's heap key is
// fixed up) so that the heap key always describes a *live* front;
// cancelling a mid-bucket record writes a tombstone (-1) that the pop path
// skips when the cursor gets there.

// bucket is a FIFO run of timer records sharing one due time.
type bucket struct {
	at    Time
	tms   []int32 // arena indices; -1 is a cancelled-record tombstone
	first int32   // cursor: tms[first] is the bucket's earliest live record
	hidx  int32   // slot in eventQueue.h, -1 while on the freelist
}

// bktEntry is one heap slot: the bucket's ordering key (at, seq of its
// current front) inlined next to the bucket index, so sift comparisons
// read contiguous array memory instead of chasing pointers.
type bktEntry struct {
	at  Time
	seq uint64
	bi  int32
}

// eventQueue is the bucketed 4-ary min-heap described above.
type eventQueue struct {
	a       *arena
	h       []bktEntry
	buckets []bucket
	bfree   []int32 // recycled bucket indices (slices keep their capacity)
	lastB   int32   // bucket of the most recent push (the open run), -1 none
	size    int     // live records resident in the queue
}

// len reports the number of live (uncancelled) records in the queue.
func (q *eventQueue) len() int { return q.size }

// minKey returns the (at, seq) of the earliest pending record. Only valid
// when len() > 0; the front of the minimum bucket is always live.
func (q *eventQueue) minKey() (Time, uint64) { return q.h[0].at, q.h[0].seq }

// push inserts record i with key (at, seq). Caller contract (upheld by
// Env): seq is strictly greater than every seq previously pushed, and the
// record is live.
func (q *eventQueue) push(i int32, at Time, seq uint64) {
	q.size++
	// Fast path: the open run is resident and shares the due time — append.
	// Any resident bucket with a matching `at` works (appended seqs are
	// globally increasing, keeping the bucket sorted), so a stale lastB
	// whose index was recycled into a new same-timestamp bucket is still
	// correct.
	if bi := q.lastB; bi >= 0 {
		if b := &q.buckets[bi]; b.hidx >= 0 && b.at == at {
			r := &q.a.recs[i]
			r.bkt, r.slot = bi, int32(len(b.tms))
			b.tms = append(b.tms, i)
			return
		}
	}
	var bi int32
	if n := len(q.bfree); n > 0 {
		bi = q.bfree[n-1]
		q.bfree = q.bfree[:n-1]
	} else {
		q.buckets = append(q.buckets, bucket{})
		bi = int32(len(q.buckets) - 1)
	}
	b := &q.buckets[bi]
	b.at, b.first = at, 0
	b.tms = append(b.tms, i)
	r := &q.a.recs[i]
	r.bkt, r.slot = bi, 0
	q.lastB = bi
	b.hidx = int32(len(q.h))
	q.h = append(q.h, bktEntry{at: at, seq: seq, bi: bi})
	q.siftUp(int(b.hidx))
}

// pop removes and returns the earliest pending record's arena index. The
// record's queue linkage is cleared; the caller owns the record.
func (q *eventQueue) pop() int32 {
	bi := q.h[0].bi
	b := &q.buckets[bi]
	i := b.tms[b.first]
	b.first++
	q.a.recs[i].bkt = bktNone
	q.size--
	q.advance(bi, 0)
	return i
}

// cancel unlinks a bucket-resident record. The caller handles the record's
// generation and free-list bookkeeping.
func (q *eventQueue) cancel(i int32) {
	r := &q.a.recs[i]
	bi, pos := r.bkt, r.slot
	r.bkt = bktNone
	q.size--
	b := &q.buckets[bi]
	if pos != b.first {
		// Mid-bucket: leave a tombstone; advance skips it when the cursor
		// arrives.
		b.tms[pos] = -1
		return
	}
	b.first++
	q.advance(bi, int(b.hidx))
}

// advance skips tombstones at b's cursor, then either retires the drained
// bucket from heap slot hi or refreshes the slot's front-seq key and
// re-sinks it (the key only ever increases).
func (q *eventQueue) advance(bi int32, hi int) {
	b := &q.buckets[bi]
	for int(b.first) < len(b.tms) && b.tms[b.first] < 0 {
		b.first++
	}
	if int(b.first) == len(b.tms) {
		q.removeAt(hi)
		q.release(bi)
		return
	}
	q.h[hi].seq = q.a.recs[b.tms[b.first]].seq
	q.siftDown(hi)
}

// removeAt deletes heap slot i, restoring the heap property.
func (q *eventQueue) removeAt(i int) {
	n := len(q.h) - 1
	q.buckets[q.h[i].bi].hidx = -1
	if i != n {
		q.h[i] = q.h[n]
		q.buckets[q.h[i].bi].hidx = int32(i)
	}
	q.h[n] = bktEntry{bi: -1}
	q.h = q.h[:n]
	if i < n {
		if !q.siftDown(i) {
			q.siftUp(i)
		}
	}
}

// release returns a drained bucket to the freelist.
func (q *eventQueue) release(bi int32) {
	if q.lastB == bi {
		q.lastB = -1
	}
	b := &q.buckets[bi]
	b.tms = b.tms[:0]
	b.first = 0
	q.bfree = append(q.bfree, bi)
}

// less orders heap slots by due time, then front insertion sequence.
func (q *eventQueue) less(i, j int) bool {
	if q.h[i].at != q.h[j].at {
		return q.h[i].at < q.h[j].at
	}
	return q.h[i].seq < q.h[j].seq
}

func (q *eventQueue) swap(i, j int) {
	q.h[i], q.h[j] = q.h[j], q.h[i]
	q.buckets[q.h[i].bi].hidx = int32(i)
	q.buckets[q.h[j].bi].hidx = int32(j)
}

func (q *eventQueue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) >> 2
		if !q.less(i, parent) {
			return
		}
		q.swap(i, parent)
		i = parent
	}
}

// siftDown restores the heap below slot i; it reports whether anything
// moved (removeAt uses that to decide whether to sift up instead).
func (q *eventQueue) siftDown(i int) bool {
	n := len(q.h)
	moved := false
	for {
		first := i<<2 + 1
		if first >= n {
			return moved
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q.less(c, best) {
				best = c
			}
		}
		if !q.less(best, i) {
			return moved
		}
		q.swap(i, best)
		i = best
		moved = true
	}
}
