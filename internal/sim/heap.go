package sim

// The event queue is a two-level structure exploiting the dominant
// scheduling pattern of this simulator: events are pushed in *runs* that
// share a due time (a GPU wave schedules one completion per SM, all at
// now+BlockDuration; a notification batch lands at now+NotifDelay). In the
// cluster benchmark ~70% of heap pushes carry the same timestamp as the
// push immediately before them.
//
// Instead of one heap node per timer, same-timestamp runs are stored as
// FIFO *buckets* and the 4-ary min-heap orders buckets by the key
// (at, front-seq) of their earliest live timer. Appending to the open
// bucket is O(1) and touches no heap node at all — the bucket's front (and
// therefore its key) is unchanged. Popping advances the bucket's cursor
// and re-sinks only if the bucket survives. The result is a heap whose
// size — and sift depth — is the number of pending *runs*, not pending
// timers.
//
// Correctness: each bucket holds timers in strictly increasing seq order
// (seq is the Env's global monotone counter, and buckets are append-only),
// so popping the minimum (at, front-seq) bucket key is a k-way merge of
// sorted runs — it yields the exact global (at, seq) total order that the
// flat heap produced. Several buckets may share an `at` (a run ended and a
// later run reused the timestamp); the front-seq tiebreak merges them
// correctly. Determinism and golden traces are therefore unaffected:
// only the constant factor changes.
//
// Cancellation: a timer records its bucket and slot. Cancelling a bucket's
// front is eager (the cursor advances and the bucket's heap key is fixed
// up) so that the heap key always describes a *live* front; cancelling a
// mid-bucket timer just marks it and the pop path skips it when the cursor
// gets there.

// bucket is a FIFO run of timers sharing one due time.
type bucket struct {
	at    Time
	tms   []*Timer
	first int // cursor: tms[first] is the bucket's earliest live timer
	hidx  int // slot in eventQueue.h, -1 while on the freelist
}

// bktEntry is one heap slot: the bucket's ordering key (at, seq of its
// current front) inlined next to the bucket pointer, so sift comparisons
// read contiguous array memory instead of chasing pointers.
type bktEntry struct {
	at  Time
	seq uint64
	b   *bucket
}

// eventQueue is the bucketed 4-ary min-heap described above.
type eventQueue struct {
	h     []bktEntry
	lastB *bucket   // bucket of the most recent push (the open run)
	free  []*bucket // recycled buckets (slices keep their capacity)
	size  int       // live timers resident in the queue
}

// len reports the number of live (uncancelled) timers in the queue.
func (q *eventQueue) len() int { return q.size }

// minKey returns the (at, seq) of the earliest pending timer. Only valid
// when len() > 0; the front of the minimum bucket is always live.
func (q *eventQueue) minKey() (Time, uint64) { return q.h[0].at, q.h[0].seq }

// push inserts t. Caller contract (upheld by Env): t.seq is strictly
// greater than every seq previously pushed, and t is not stopped.
func (q *eventQueue) push(t *Timer) {
	q.size++
	// Fast path: the open run is resident and shares t's due time — append.
	// Any resident bucket with a matching `at` works (appended seqs are
	// globally increasing, keeping the bucket sorted), so a stale lastB
	// that was recycled into a new same-timestamp bucket is still correct.
	if b := q.lastB; b != nil && b.hidx >= 0 && b.at == t.at {
		t.bkt, t.index = b, len(b.tms)
		b.tms = append(b.tms, t)
		return
	}
	var b *bucket
	if n := len(q.free); n > 0 {
		b = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
	} else {
		b = &bucket{}
	}
	b.at, b.first = t.at, 0
	t.bkt, t.index = b, 0
	b.tms = append(b.tms, t)
	q.lastB = b
	b.hidx = len(q.h)
	q.h = append(q.h, bktEntry{at: t.at, seq: t.seq, b: b})
	q.siftUp(b.hidx)
}

// pop removes and returns the earliest pending timer.
func (q *eventQueue) pop() *Timer {
	b := q.h[0].b
	t := b.tms[b.first]
	b.tms[b.first] = nil
	b.first++
	t.bkt, t.index = nil, -1
	q.size--
	q.advance(b, 0)
	return t
}

// cancel unlinks a bucket-resident timer (t.bkt != nil). The caller has
// already marked it stopped.
func (q *eventQueue) cancel(t *Timer) {
	b := t.bkt
	pos := t.index
	t.bkt, t.index = nil, -1
	q.size--
	if pos != b.first {
		// Mid-bucket: leave the (stopped) pointer in place; advance skips
		// it when the cursor arrives.
		return
	}
	b.tms[b.first] = nil
	b.first++
	q.advance(b, b.hidx)
}

// advance skips cancelled timers at b's cursor, then either retires the
// drained bucket from heap slot i or refreshes the slot's front-seq key
// and re-sinks it (the key only ever increases).
func (q *eventQueue) advance(b *bucket, i int) {
	// Skip cancelled timers (cancel already removed them from the size
	// count and cleared their linkage).
	for b.first < len(b.tms) && b.tms[b.first].stopped {
		b.tms[b.first] = nil
		b.first++
	}
	if b.first == len(b.tms) {
		q.removeAt(i)
		q.release(b)
		return
	}
	q.h[i].seq = b.tms[b.first].seq
	q.siftDown(i)
}

// removeAt deletes heap slot i, restoring the heap property.
func (q *eventQueue) removeAt(i int) {
	n := len(q.h) - 1
	q.h[i].b.hidx = -1
	if i != n {
		q.h[i] = q.h[n]
		q.h[i].b.hidx = i
	}
	q.h[n] = bktEntry{}
	q.h = q.h[:n]
	if i < n {
		if !q.siftDown(i) {
			q.siftUp(i)
		}
	}
}

// release returns a drained bucket to the freelist.
func (q *eventQueue) release(b *bucket) {
	if q.lastB == b {
		q.lastB = nil
	}
	b.tms = b.tms[:0]
	b.first = 0
	q.free = append(q.free, b)
}

// less orders heap slots by due time, then front insertion sequence.
func (q *eventQueue) less(i, j int) bool {
	if q.h[i].at != q.h[j].at {
		return q.h[i].at < q.h[j].at
	}
	return q.h[i].seq < q.h[j].seq
}

func (q *eventQueue) swap(i, j int) {
	q.h[i], q.h[j] = q.h[j], q.h[i]
	q.h[i].b.hidx = i
	q.h[j].b.hidx = j
}

func (q *eventQueue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) >> 2
		if !q.less(i, parent) {
			return
		}
		q.swap(i, parent)
		i = parent
	}
}

// siftDown restores the heap below slot i; it reports whether anything
// moved (removeAt uses that to decide whether to sift up instead).
func (q *eventQueue) siftDown(i int) bool {
	n := len(q.h)
	moved := false
	for {
		first := i<<2 + 1
		if first >= n {
			return moved
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q.less(c, best) {
				best = c
			}
		}
		if !q.less(best, i) {
			return moved
		}
		q.swap(i, best)
		i = best
		moved = true
	}
}
