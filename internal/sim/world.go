package sim

// World executes a multi-replica simulation as one control Env plus N shard
// Envs under a conservative time-window protocol (Chandy–Misra style
// lookahead). Each shard holds a fully isolated replica — in the Paella
// cluster, a dispatcher with its private GPU, cudart/PCIe link, and VRAM
// state (§4, Figure 5) — and replicas only interact through the control
// shard: routing decisions, failover, and terminal-event delivery.
//
// The execution loop repeats:
//
//  1. t  = earliest pending event across every shard and the control Env.
//  2. H  = min(t+Δ, next control event, run limit) — the window horizon.
//     Clamping to the next control event means control events (request
//     arrivals, crash injections) never execute late; only the Δ-bounded
//     batching below is approximate.
//  3. Every shard runs its own events up to and including H — concurrently
//     on per-shard goroutines when parallel mode is on — then advances its
//     clock to exactly H. Shards share no state, so any interleaving of
//     this step commutes.
//  4. Cross-shard messages emitted during the window (World.Post) are
//     merged into the control heap in canonical (timestamp, shard,
//     emission-order) order.
//  5. The control Env runs its events up to H. Control events execute as
//     serialization points: all shards are parked at exactly H, so a
//     control event may read or write any replica's state directly.
//
// Determinism argument: within a window each shard's event order is fixed
// by its own (time, seq) heap; shards touch only their own state, so steps
// 3's goroutine interleaving cannot change any outcome. Every cross-shard
// effect funnels through step 4's canonical merge or through control
// events, both of which are ordered identically whether step 3 ran on one
// goroutine or N. Hence a serial World run and a parallel World run are
// bit-identical — same metrics, same trace bytes — for every seed.
//
// The window Δ is a fidelity/overhead knob, not a correctness knob: a
// posted message carries its emission timestamp and executes on the
// control timeline at that timestamp, but by then the shard clocks have
// advanced to H, so follow-on work it schedules into a replica lands up to
// Δ late. Δ=0 removes the distortion at the cost of a barrier per distinct
// event time. Results are bit-identical across serial/parallel for any Δ;
// different Δ values are different (equally valid) simulations.
type World struct {
	ctrl     *Env
	shards   []*Env
	window   Time
	parallel bool

	// posts[i] is shard i's outbox. During a window only the goroutine
	// running shard i appends to it; the coordinator drains it at the
	// barrier. Within one shard, timestamps are nondecreasing (the shard
	// clock is monotone), which flushPosts relies on for its k-way merge.
	posts [][]wpost

	runners []*shardRunner // persistent per-shard goroutines (parallel mode)
	active  []bool         // scratch: shards dispatched this window
	merge   []int          // scratch: per-shard merge cursors
	mheap   []mergeEnt     // scratch: k-way merge heap over shard outboxes

	// Speculative execution mode (spec.go).
	speculative        bool
	specMax            Time             // adaptive window ceiling
	curWindow          Time             // current adaptive window Δcur
	ckpt               []Checkpointable // per-shard rollback support, nil entries = deferred injection
	saved              []*EnvCheckpoint // per-window shard Env snapshots
	savedState         []any            // per-window Checkpointable snapshots
	inj                [][]injection    // per-shard injections recorded during the control window
	specStats          SpecStats
	deferredThisWindow int
}

// wpost is one cross-shard message: either a closure (fn) or a typed
// callback (cb/ctx/arg, the allocation-free form posted by PostCall).
type wpost struct {
	at  Time
	fn  func()
	cb  EventFn
	ctx any
	arg uint64
}

// mergeEnt is one shard's head-of-outbox key in the flushPosts merge heap.
type mergeEnt struct {
	at    Time
	shard int32
}

type shardRunner struct {
	cmd  chan Time // window horizon to run to
	done chan any  // recovered panic, or nil
}

// DefaultWindow is the default conservative window Δ. It is comfortably
// above the dispatcher's per-job costs (admit ≈1.5µs, dispatch ≈2µs) so a
// window amortizes many events, yet small against the millisecond-scale
// inference latencies the experiments measure.
const DefaultWindow Time = 50 * Microsecond

// NewWorld returns a world with a control Env, no shards, the default
// window, and parallel execution off.
func NewWorld() *World {
	return &World{ctrl: NewEnv(), window: DefaultWindow}
}

// Ctrl returns the control Env. Request generators, fault injectors, and
// anything else that spans replicas must schedule here.
func (w *World) Ctrl() *Env { return w.ctrl }

// AddShard creates and returns a new shard Env. All shards must be added
// before the first Run/RunUntil call.
func (w *World) AddShard() *Env {
	e := NewEnv()
	w.shards = append(w.shards, e)
	w.posts = append(w.posts, nil)
	return e
}

// Shard returns shard i's Env.
func (w *World) Shard(i int) *Env { return w.shards[i] }

// NumShards returns the number of shards.
func (w *World) NumShards() int { return len(w.shards) }

// Window returns the conservative window Δ.
func (w *World) Window() Time { return w.window }

// SetWindow sets the conservative window Δ. Must not be negative.
func (w *World) SetWindow(d Time) {
	if d < 0 {
		panic("sim: negative world window")
	}
	w.window = d
}

// Parallel reports whether shard windows run on per-shard goroutines.
func (w *World) Parallel() bool { return w.parallel }

// SetParallel switches shard-window execution between inline (serial) and
// per-shard goroutines. Results are bit-identical either way.
func (w *World) SetParallel(on bool) { w.parallel = on }

// Post enqueues fn to run on the control timeline at the emitting shard's
// current time. It is the only legal way for code executing on a shard to
// affect the control shard or another replica: the callback runs at the
// next barrier, with every shard parked, in canonical (timestamp, shard,
// emission-order) order.
func (w *World) Post(shard int, fn func()) {
	w.posts[shard] = append(w.posts[shard], wpost{at: w.shards[shard].now, fn: fn})
}

// PostCall is the allocation-free form of Post: cb runs on the control
// timeline as cb(ctx, arg) at the emitting shard's current time. Hot
// cross-shard paths (per-request completions) use it to avoid minting a
// closure per message.
func (w *World) PostCall(shard int, cb EventFn, ctx any, arg uint64) {
	w.posts[shard] = append(w.posts[shard], wpost{at: w.shards[shard].now, cb: cb, ctx: ctx, arg: arg})
}

// Run executes events until no shard and the control Env have any left.
func (w *World) Run() {
	if w.speculative {
		w.runSpec(0, false)
		return
	}
	w.flushPosts()
	for {
		t, ok := w.nextTime()
		if !ok {
			return
		}
		h := t + w.window
		if ct, o := w.ctrl.NextEventTime(); o && ct < h {
			h = ct
		}
		w.stepWindow(h)
	}
}

// RunUntil executes all events due at or before limit, then advances every
// clock to exactly limit.
func (w *World) RunUntil(limit Time) {
	if w.speculative {
		w.runSpec(limit, true)
		return
	}
	w.flushPosts()
	for {
		t, ok := w.nextTime()
		if !ok || t > limit {
			break
		}
		h := t + w.window
		if ct, o := w.ctrl.NextEventTime(); o && ct < h {
			h = ct
		}
		if h > limit {
			h = limit
		}
		w.stepWindow(h)
	}
	for _, s := range w.shards {
		if s.now < limit {
			s.now = limit
		}
	}
	w.ctrl.RunUntil(limit)
}

// Close stops the per-shard runner goroutines (if parallel mode started
// them). The world must not be run again after Close.
func (w *World) Close() {
	for _, r := range w.runners {
		close(r.cmd)
	}
	w.runners = nil
}

// stepWindow runs one window to horizon h: shards, then the post merge,
// then the control events — the serialization point.
func (w *World) stepWindow(h Time) {
	w.runShards(h)
	w.flushPosts()
	w.ctrl.RunUntil(h)
}

// nextTime returns the earliest pending event time across all heaps.
func (w *World) nextTime() (Time, bool) {
	best, ok := w.ctrl.NextEventTime()
	for _, s := range w.shards {
		if t, o := s.NextEventTime(); o && (!ok || t < best) {
			best, ok = t, true
		}
	}
	return best, ok
}

// runShards executes every shard's events up to and including h and
// advances all shard clocks to exactly h.
func (w *World) runShards(h Time) {
	if !w.parallel || len(w.shards) < 2 {
		for _, s := range w.shards {
			s.RunUntil(h)
		}
		return
	}
	w.startRunners()
	if w.active == nil {
		w.active = make([]bool, len(w.shards))
	}
	for i, s := range w.shards {
		if t, o := s.NextEventTime(); o && t <= h {
			w.active[i] = true
			w.runners[i].cmd <- h
		} else {
			w.active[i] = false
			if s.now < h {
				s.now = h
			}
		}
	}
	// Collect in shard order so a panic surfaces deterministically (lowest
	// shard first) and every dispatched runner is drained before panicking.
	var firstPanic any
	for i := range w.shards {
		if !w.active[i] {
			continue
		}
		if p := <-w.runners[i].done; p != nil && firstPanic == nil {
			firstPanic = p
		}
	}
	if firstPanic != nil {
		panic(firstPanic)
	}
}

func (w *World) startRunners() {
	if len(w.runners) == len(w.shards) {
		return
	}
	w.Close()
	w.runners = make([]*shardRunner, len(w.shards))
	for i, s := range w.shards {
		r := &shardRunner{cmd: make(chan Time), done: make(chan any)}
		w.runners[i] = r
		go func(e *Env) {
			for h := range r.cmd {
				r.done <- runShardWindow(e, h)
			}
		}(s)
	}
}

// runShardWindow runs one shard window, converting a panic (including a
// process panic re-raised by Step) into a value for deterministic
// propagation by the coordinator.
func runShardWindow(e *Env, h Time) (p any) {
	defer func() { p = recover() }()
	e.RunUntil(h)
	return nil
}

// flushPosts drains every shard outbox into the control heap. Outboxes are
// individually time-sorted, so a k-way merge by (timestamp, shard index)
// — with emission order preserved within a shard — yields the canonical
// total order regardless of how the window was executed. The merge runs on
// an index heap over the shard cursors: O(total·log k) instead of the
// historical O(total·k) rescan of every outbox per message, which matters
// once shard counts reach the dozens.
func (w *World) flushPosts() {
	if w.merge == nil || len(w.merge) < len(w.posts) {
		w.merge = make([]int, len(w.posts))
	}
	h := w.mheap[:0]
	for i := range w.posts {
		if len(w.posts[i]) > 0 {
			w.merge[i] = 0
			h = append(h, mergeEnt{at: w.posts[i][0].at, shard: int32(i)})
		}
	}
	if len(h) == 0 {
		w.mheap = h
		return
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		mergeSiftDown(h, i)
	}
	for len(h) > 0 {
		i := int(h[0].shard)
		p := w.posts[i][w.merge[i]]
		w.posts[i][w.merge[i]] = wpost{}
		w.merge[i]++
		if p.cb != nil {
			w.ctrl.DoCall(p.at, p.cb, p.ctx, p.arg)
		} else {
			w.ctrl.Do(p.at, p.fn)
		}
		if w.merge[i] < len(w.posts[i]) {
			// Same shard continues: its next post's (nondecreasing)
			// timestamp re-keys the root.
			h[0].at = w.posts[i][w.merge[i]].at
		} else {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		if len(h) > 1 {
			mergeSiftDown(h, 0)
		}
	}
	for i := range w.posts {
		w.posts[i] = w.posts[i][:0]
	}
	w.mheap = h[:0]
}

// mergeSiftDown restores the min-heap order of flushPosts' cursor heap at
// index i. Ties on timestamp break toward the lower shard index — the
// canonical (timestamp, shard, emission-order) total order.
func mergeSiftDown(h []mergeEnt, i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && mergeLess(h[r], h[l]) {
			m = r
		}
		if !mergeLess(h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

func mergeLess(a, b mergeEnt) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.shard < b.shard
}
