package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// worldLog records event executions per timeline. Shard events may run on
// per-shard goroutines, so each shard appends only to its own slice (and
// control events only to ctrl); lines() concatenates them into one
// comparable transcript afterward.
type worldLog struct {
	ctrl  []string
	shard [][]string
}

func newWorldLog(shards int) *worldLog {
	return &worldLog{shard: make([][]string, shards)}
}

func (l *worldLog) addCtrl(t Time, label string) {
	l.ctrl = append(l.ctrl, fmt.Sprintf("%d/ctrl/%s", int64(t), label))
}

func (l *worldLog) addShard(i int, t Time, label string) {
	l.shard[i] = append(l.shard[i], fmt.Sprintf("%d/s%d/%s", int64(t), i, label))
}

func (l *worldLog) lines() []string {
	out := append([]string{}, l.ctrl...)
	for _, s := range l.shard {
		out = append(out, s...)
	}
	return out
}

// buildPingPong wires a synthetic cross-shard workload: every shard runs a
// periodic local event train, posts a message to the control timeline on
// each tick, and the control handler schedules follow-up work into the
// next shard round-robin. Exercises shard-local execution, posts, and
// control-to-shard scheduling together.
func buildPingPong(w *World, shards, ticks int, log *worldLog) {
	for i := 0; i < shards; i++ {
		i := i
		s := w.AddShard()
		for k := 0; k < ticks; k++ {
			k := k
			s.At(Time(k)*3*Microsecond+Time(i)*100, func() {
				log.addShard(i, s.Now(), fmt.Sprintf("tick%d", k))
				w.Post(i, func() {
					log.addCtrl(w.Ctrl().Now(), fmt.Sprintf("post-s%d-t%d", i, k))
					j := (i + 1) % shards
					next := w.Shard(j)
					next.DoAfter(Microsecond, func() {
						log.addShard(j, next.Now(), fmt.Sprintf("relay-s%d-t%d", i, k))
					})
				})
			})
		}
	}
	// Control events interleaved with the shard ticks.
	for k := 0; k < ticks; k++ {
		k := k
		w.Ctrl().At(Time(k)*5*Microsecond+500, func() {
			log.addCtrl(w.Ctrl().Now(), fmt.Sprintf("ctrl%d", k))
		})
	}
}

func runPingPong(shards, ticks int, window Time, parallel bool) []string {
	w := NewWorld()
	w.SetWindow(window)
	w.SetParallel(parallel)
	defer w.Close()
	log := newWorldLog(shards)
	buildPingPong(w, shards, ticks, log)
	w.Run()
	return log.lines()
}

// TestWorldSerialParallelIdentical: the tentpole determinism property — a
// parallel World run produces the exact event transcript of a serial run,
// across shard counts and window sizes (including Δ=0).
func TestWorldSerialParallelIdentical(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 8} {
		for _, window := range []Time{0, Microsecond, 50 * Microsecond} {
			serial := runPingPong(shards, 40, window, false)
			par := runPingPong(shards, 40, window, true)
			if len(serial) == 0 {
				t.Fatalf("shards=%d window=%v: empty log", shards, window)
			}
			if len(serial) != len(par) {
				t.Fatalf("shards=%d window=%v: serial %d events, parallel %d",
					shards, window, len(serial), len(par))
			}
			for i := range serial {
				if serial[i] != par[i] {
					t.Fatalf("shards=%d window=%v: divergence at event %d:\n serial: %s\n parall: %s",
						shards, window, i, serial[i], par[i])
				}
			}
		}
	}
}

// TestWorldWindowInvariance: different windows are different simulations,
// but shard-local events (which never cross shards) must be
// window-independent — the window only affects cross-shard scheduling.
func TestWorldWindowInvariance(t *testing.T) {
	run := func(window Time) []string {
		w := NewWorld()
		w.SetWindow(window)
		defer w.Close()
		log := newWorldLog(4)
		for i := 0; i < 4; i++ {
			i := i
			s := w.AddShard()
			for k := 0; k < 30; k++ {
				k := k
				s.At(Time(k*17+i)*Microsecond, func() {
					log.addShard(i, s.Now(), fmt.Sprintf("tick%d", k))
				})
			}
		}
		w.Run()
		return log.lines()
	}
	a := run(0)
	b := run(200 * Microsecond)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("tick count differs across windows: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tick %d differs across windows: %s vs %s", i, a[i], b[i])
		}
	}
}

// TestWorldCtrlNeverLate: a control event executes with every shard clock
// at exactly its timestamp — the horizon clamps to the next control event,
// so arrivals and fault injections are never distorted by the window.
func TestWorldCtrlNeverLate(t *testing.T) {
	w := NewWorld()
	w.SetWindow(Second) // absurdly large window: the clamp must still win
	defer w.Close()
	s0 := w.AddShard()
	s1 := w.AddShard()
	// Dense shard-local traffic so windows would love to run far ahead.
	for k := 0; k < 1000; k++ {
		s0.At(Time(k)*Microsecond, func() {})
	}
	checked := 0
	for _, at := range []Time{3 * Microsecond, 500*Microsecond + 1, 999 * Microsecond} {
		at := at
		w.Ctrl().At(at, func() {
			if s0.Now() != at || s1.Now() != at {
				t.Errorf("ctrl event at %v ran with shard clocks %v/%v", at, s0.Now(), s1.Now())
			}
			checked++
		})
	}
	w.Run()
	if checked != 3 {
		t.Fatalf("ran %d control events, want 3", checked)
	}
}

// TestWorldPostOrdering: posts merge into the control timeline in
// (timestamp, shard, emission-order) order, and each post executes at its
// emission timestamp on the control clock.
func TestWorldPostOrdering(t *testing.T) {
	w := NewWorld()
	w.SetWindow(100 * Microsecond)
	defer w.Close()
	var got []string
	for i := 0; i < 3; i++ {
		i := i
		s := w.AddShard()
		// Shard 2 emits at an earlier timestamp than shards 0/1; within a
		// shard, two posts at the same instant must keep emission order.
		at := 10 * Microsecond
		if i == 2 {
			at = 5 * Microsecond
		}
		s.At(at, func() {
			w.Post(i, func() {
				got = append(got, fmt.Sprintf("s%d-a@%v", i, w.Ctrl().Now()))
			})
			w.Post(i, func() {
				got = append(got, fmt.Sprintf("s%d-b@%v", i, w.Ctrl().Now()))
			})
		})
	}
	w.Run()
	want := []string{
		"s2-a@5.000µs", "s2-b@5.000µs",
		"s0-a@10.000µs", "s0-b@10.000µs",
		"s1-a@10.000µs", "s1-b@10.000µs",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d posts, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post %d = %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}
}

// TestWorldRunUntil: clocks advance to exactly the limit, later events stay
// pending, and a second RunUntil picks them up.
func TestWorldRunUntil(t *testing.T) {
	w := NewWorld()
	defer w.Close()
	s := w.AddShard()
	var fired []Time
	for _, at := range []Time{Millisecond, 2 * Millisecond, 3 * Millisecond} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	w.RunUntil(2 * Millisecond)
	if len(fired) != 2 {
		t.Fatalf("fired %d events by 2ms, want 2", len(fired))
	}
	if s.Now() != 2*Millisecond || w.Ctrl().Now() != 2*Millisecond {
		t.Fatalf("clocks = %v/%v, want 2ms", s.Now(), w.Ctrl().Now())
	}
	w.RunUntil(10 * Millisecond)
	if len(fired) != 3 {
		t.Fatalf("fired %d events total, want 3", len(fired))
	}
	if s.Now() != 10*Millisecond {
		t.Fatalf("shard clock = %v, want 10ms", s.Now())
	}
}

// TestWorldShardPanicDeterministic: a panic inside a shard window surfaces
// on the caller, and when several shards panic in the same parallel window
// the lowest-indexed shard's panic wins — deterministically.
func TestWorldShardPanicDeterministic(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		w := NewWorld()
		w.SetParallel(parallel)
		for i := 0; i < 4; i++ {
			i := i
			s := w.AddShard()
			s.At(Microsecond, func() {
				if i >= 1 { // shards 1..3 all panic in the same window
					panic(fmt.Sprintf("shard %d boom", i))
				}
			})
		}
		got := func() (r any) {
			defer func() { r = recover() }()
			defer w.Close()
			w.Run()
			return nil
		}()
		if got == nil {
			t.Fatalf("parallel=%v: shard panic did not propagate", parallel)
		}
		if s, ok := got.(string); !ok || s != "shard 1 boom" {
			t.Fatalf("parallel=%v: propagated %v, want first shard's panic", parallel, got)
		}
	}
}

// TestWorldProcsOnShards: Proc coroutines work on shard Envs, including
// when windows execute on per-shard goroutines.
func TestWorldProcsOnShards(t *testing.T) {
	w := NewWorld()
	w.SetParallel(true)
	defer w.Close()
	counts := make([]int, 4)
	for i := 0; i < 4; i++ {
		i := i
		s := w.AddShard()
		s.Spawn("worker", func(p *Proc) {
			for k := 0; k < 50; k++ {
				p.Sleep(7 * Microsecond)
				counts[i]++
			}
		})
	}
	w.Run()
	for i, n := range counts {
		if n != 50 {
			t.Fatalf("shard %d proc completed %d iterations, want 50", i, n)
		}
	}
}

// TestWorldNegativeWindowPanics guards the Δ precondition.
func TestWorldNegativeWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative window accepted")
		}
	}()
	NewWorld().SetWindow(-1)
}

// TestWorldAccessors covers the trivial surface.
func TestWorldAccessors(t *testing.T) {
	w := NewWorld()
	defer w.Close()
	if w.Window() != DefaultWindow {
		t.Fatalf("default window = %v", w.Window())
	}
	s := w.AddShard()
	if w.NumShards() != 1 || w.Shard(0) != s {
		t.Fatal("shard bookkeeping broken")
	}
	if w.Parallel() {
		t.Fatal("parallel on by default")
	}
	w.SetParallel(true)
	if !w.Parallel() {
		t.Fatal("SetParallel(true) ignored")
	}
	if w.Ctrl() == nil {
		t.Fatal("nil control env")
	}
}

// TestWorldRandomizedIdentity: a randomized workload (seeded) with mixed
// shard-local chains, posts, and control arrivals stays serial/parallel
// identical across several seeds — the engine-level slice of the cluster
// identity matrix.
func TestWorldRandomizedIdentity(t *testing.T) {
	const shards = 4
	run := func(seed int64, parallel bool) []string {
		rng := rand.New(rand.NewSource(seed))
		w := NewWorld()
		w.SetWindow(Time(rng.Intn(40)) * Microsecond)
		w.SetParallel(parallel)
		defer w.Close()
		log := newWorldLog(shards)
		for i := 0; i < shards; i++ {
			i := i
			s := w.AddShard()
			n := 20 + rng.Intn(30)
			for k := 0; k < n; k++ {
				k := k
				at := Time(rng.Intn(2000)) * 100
				s.At(at, func() {
					log.addShard(i, s.Now(), fmt.Sprintf("e%d", k))
					if k%3 == 0 {
						w.Post(i, func() {
							log.addCtrl(w.Ctrl().Now(), fmt.Sprintf("p%d-%d", i, k))
						})
					}
					if k%5 == 0 {
						s.DoAfter(Time(50+k), func() {
							log.addShard(i, s.Now(), fmt.Sprintf("f%d", k))
						})
					}
				})
			}
		}
		for k := 0; k < 25; k++ {
			k := k
			at := Time(rng.Intn(2000)) * 100
			w.Ctrl().At(at, func() {
				log.addCtrl(w.Ctrl().Now(), fmt.Sprintf("c%d", k))
				j := k % shards
				tgt := w.Shard(j)
				tgt.DoAfter(Microsecond, func() {
					log.addShard(j, tgt.Now(), fmt.Sprintf("cc%d", k))
				})
			})
		}
		w.Run()
		return log.lines()
	}
	for seed := int64(1); seed <= 6; seed++ {
		serial := run(seed, false)
		par := run(seed, true)
		if len(serial) == 0 {
			t.Fatalf("seed %d: empty log", seed)
		}
		if len(serial) != len(par) {
			t.Fatalf("seed %d: length divergence %d vs %d", seed, len(serial), len(par))
		}
		for i := range serial {
			if serial[i] != par[i] {
				t.Fatalf("seed %d: divergence at %d: %q vs %q", seed, i, serial[i], par[i])
			}
		}
	}
}
