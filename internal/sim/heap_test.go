package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// qrig wires an eventQueue to its backing arena the way NewEnv does,
// letting the queue be exercised in isolation.
type qrig struct {
	a arena
	q eventQueue
}

func newQrig() *qrig {
	r := &qrig{}
	r.a.freeHead = -1
	r.q.a = &r.a
	r.q.lastB = -1
	return r
}

// qitem mirrors one pushed record in the model's own storage, so model
// entries stay readable even after a cancelled record is recycled.
type qitem struct {
	idx int32
	at  Time
	seq uint64
}

func (r *qrig) push(at Time, seq uint64) qitem {
	i := r.a.alloc()
	rec := &r.a.recs[i]
	rec.at, rec.seq = at, seq
	r.q.push(i, at, seq)
	return qitem{idx: i, at: at, seq: seq}
}

// queuePushPattern drives an eventQueue the way an Env does — strictly
// increasing seq, with bursts of repeated timestamps to exercise the
// open-run append path as well as fresh buckets.
func queuePushPattern(rng *rand.Rand, r *qrig, seq *uint64, n int) []qitem {
	var out []qitem
	at := Time(rng.Intn(50))
	for i := 0; i < n; i++ {
		if rng.Intn(3) == 0 { // start a new run two-thirds of the time not
			at = Time(rng.Intn(50))
		}
		out = append(out, r.push(at, *seq))
		*seq++
	}
	return out
}

// TestQueuePopOrderMatchesSort: the bucketed queue pops timers in exact
// (at, seq) order for randomized inputs — the total order every simulation
// outcome rests on.
func TestQueuePopOrderMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		r := newQrig()
		seq := uint64(0)
		ref := queuePushPattern(rng, r, &seq, 1+rng.Intn(200))
		sort.Slice(ref, func(a, b int) bool {
			if ref[a].at != ref[b].at {
				return ref[a].at < ref[b].at
			}
			return ref[a].seq < ref[b].seq
		})
		for i, want := range ref {
			got := r.q.pop()
			if got != want.idx {
				rec := &r.a.recs[got]
				t.Fatalf("trial %d: pop %d = (at=%d seq=%d), want (at=%d seq=%d)",
					trial, i, rec.at, rec.seq, want.at, want.seq)
			}
			if r.a.recs[got].bkt != bktNone {
				t.Fatalf("popped record retains queue linkage (bkt=%d)", r.a.recs[got].bkt)
			}
		}
		if r.q.len() != 0 {
			t.Fatalf("queue not drained: %d left", r.q.len())
		}
	}
}

// TestQueueAgainstModel cross-checks the bucketed queue against a sorted
// reference under a randomized push/pop/cancel workload — including
// cancels of bucket fronts (eager) and mid-bucket records (lazy
// tombstones). Cancelled records are recycled immediately, so the workload
// also exercises arena index reuse under live traffic.
func TestQueueAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := newQrig()
	seq := uint64(0)
	var live []qitem
	popMin := func() qitem {
		best := -1
		for i, x := range live {
			if best < 0 || x.at < live[best].at || (x.at == live[best].at && x.seq < live[best].seq) {
				best = i
			}
		}
		x := live[best]
		live = append(live[:best], live[best+1:]...)
		return x
	}
	for op := 0; op < 5000; op++ {
		switch r2 := rng.Intn(10); {
		case r2 < 5: // push a small same-timestamp run
			live = append(live, queuePushPattern(rng, r, &seq, 1+rng.Intn(4))...)
		case r2 < 8: // pop min
			if r.q.len() == 0 {
				continue
			}
			want := popMin()
			got := r.q.pop()
			if got != want.idx {
				rec := &r.a.recs[got]
				t.Fatalf("op %d: pop (at=%d seq=%d), want (at=%d seq=%d)",
					op, rec.at, rec.seq, want.at, want.seq)
			}
		default: // cancel arbitrary
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			victim := live[i]
			live = append(live[:i], live[i+1:]...)
			r.q.cancel(victim.idx)
			r.a.freeCancelled(victim.idx)
		}
		if r.q.len() != len(live) {
			t.Fatalf("op %d: queue len %d, model %d", op, r.q.len(), len(live))
		}
	}
	for r.q.len() > 0 {
		want := popMin()
		got := r.q.pop()
		if got != want.idx {
			rec := &r.a.recs[got]
			t.Fatalf("drain: pop (at=%d seq=%d), want (at=%d seq=%d)",
				rec.at, rec.seq, want.at, want.seq)
		}
	}
	if len(live) != 0 {
		t.Fatalf("model not drained: %d left", len(live))
	}
}

// TestQueueInvariants: after every operation, each heap slot's inline key
// matches its bucket's live front, bucket back-links name their slots,
// bucket seqs are strictly increasing, and the size counter equals the
// number of live resident records — the invariants Cancel and Step rest on.
func TestQueueInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := newQrig()
	seq := uint64(0)
	var live []qitem
	check := func(op int) {
		total := 0
		for i, ent := range r.q.h {
			b := &r.q.buckets[ent.bi]
			if b.hidx != int32(i) {
				t.Fatalf("op %d: slot %d holds bucket with hidx %d", op, i, b.hidx)
			}
			if int(b.first) >= len(b.tms) {
				t.Fatalf("op %d: slot %d holds drained bucket", op, i)
			}
			front := b.tms[b.first]
			if front < 0 {
				t.Fatalf("op %d: slot %d front is a tombstone", op, i)
			}
			fr := &r.a.recs[front]
			if ent.at != b.at || ent.at != fr.at || ent.seq != fr.seq {
				t.Fatalf("op %d: slot %d key (%d,%d) diverges from front (%d,%d)",
					op, i, ent.at, ent.seq, fr.at, fr.seq)
			}
			prev := uint64(0)
			seenLive := false
			for j := int(b.first); j < len(b.tms); j++ {
				ti := b.tms[j]
				if ti < 0 {
					continue // cancelled: tombstone
				}
				rec := &r.a.recs[ti]
				if rec.at != b.at {
					t.Fatalf("op %d: bucket at=%d holds record at=%d", op, b.at, rec.at)
				}
				if seenLive && rec.seq <= prev {
					t.Fatalf("op %d: bucket seqs not increasing", op)
				}
				prev, seenLive = rec.seq, true
				total++
				if rec.bkt != ent.bi || rec.slot != int32(j) {
					t.Fatalf("op %d: record linkage wrong (bkt=%d want %d, slot=%d want %d)",
						op, rec.bkt, ent.bi, rec.slot, j)
				}
			}
		}
		if total != r.q.size {
			t.Fatalf("op %d: size %d, counted %d live", op, r.q.size, total)
		}
	}
	for op := 0; op < 2000; op++ {
		switch {
		case rng.Intn(3) > 0 || r.q.len() == 0:
			live = append(live, queuePushPattern(rng, r, &seq, 1+rng.Intn(4))...)
		case rng.Intn(2) == 0:
			got := r.q.pop()
			for i, x := range live {
				if x.idx == got {
					live = append(live[:i], live[i+1:]...)
					break
				}
			}
		default:
			i := rng.Intn(len(live))
			victim := live[i]
			live = append(live[:i], live[i+1:]...)
			r.q.cancel(victim.idx)
			r.a.freeCancelled(victim.idx)
		}
		check(op)
	}
}

// TestArenaRecycles: fired records return to the index-linked free list and
// are reused, so the arena's footprint is the run's high-water mark of
// concurrently pending events — not the total event count.
func TestArenaRecycles(t *testing.T) {
	e := NewEnv()
	ran := 0
	for i := 0; i < 100; i++ {
		e.DoAfter(Time(i), func() { ran++ })
	}
	e.Run()
	if ran != 100 {
		t.Fatalf("ran %d events, want 100", ran)
	}
	if e.arena.nfree == 0 {
		t.Fatal("freelist empty after events fired")
	}
	highWater := len(e.arena.recs)
	// Steady-state: one event in flight at a time reuses one record.
	for i := 0; i < 50; i++ {
		e.DoAfter(1, func() { ran++ })
		e.Run()
	}
	if len(e.arena.recs) != highWater {
		t.Fatalf("arena grew in steady state: %d -> %d", highWater, len(e.arena.recs))
	}
	// Handle-returning timers recycle too; the generation protects the
	// stale handle.
	tm := e.After(1, func() {})
	e.Run()
	if tm.Stopped() {
		t.Fatal("fired timer reports stopped")
	}
	e.Cancel(tm) // no-op: the record already fired
	if tm.Stopped() {
		t.Fatal("cancel-after-fire reports stopped")
	}
	if e.arena.live() != 0 {
		t.Fatalf("%d records leaked", e.arena.live())
	}
}

// TestDoSchedulingAllocFree: in steady state the schedule+fire cycle
// performs no per-event allocations (the closure passed in is the caller's
// concern; here it is preallocated, as on the Proc wakeup path).
func TestDoSchedulingAllocFree(t *testing.T) {
	e := NewEnv()
	fn := func() {}
	// Warm the arena.
	e.DoAfter(0, fn)
	e.Run()
	avg := testing.AllocsPerRun(1000, func() {
		e.DoAfter(1, fn)
		e.Step()
	})
	if avg != 0 {
		t.Fatalf("schedule+fire allocates %.1f per event, want 0", avg)
	}
}

// TestDoCallAllocFree: the typed-callback path stays allocation-free even
// when the context is freshly boxed per call site — the arena record holds
// the interface words inline.
func TestDoCallAllocFree(t *testing.T) {
	e := NewEnv()
	type target struct{ hits uint64 }
	tgt := &target{}
	cb := func(ctx any, arg uint64) { ctx.(*target).hits += arg }
	e.DoCallAfter(0, cb, tgt, 1)
	e.Run()
	avg := testing.AllocsPerRun(1000, func() {
		e.DoCallAfter(1, cb, tgt, 2)
		e.Step()
	})
	if avg != 0 {
		t.Fatalf("DoCall schedule+fire allocates %.1f per event, want 0", avg)
	}
	if tgt.hits == 0 {
		t.Fatal("typed callback never ran")
	}
}

// TestProcSleepAllocFree: a process sleep cycle reuses the preallocated
// dispatch closure and an arena record — zero allocations per wakeup.
func TestProcSleepAllocFree(t *testing.T) {
	e := NewEnv()
	stop := false
	e.Spawn("sleeper", func(p *Proc) {
		for !stop {
			p.Sleep(Microsecond)
		}
	})
	e.RunFor(10 * Microsecond) // warm up
	avg := testing.AllocsPerRun(500, func() {
		e.RunFor(Microsecond)
	})
	stop = true
	e.RunFor(Microsecond)
	if avg > 0 {
		t.Fatalf("proc sleep cycle allocates %.2f per wakeup, want 0", avg)
	}
}

// TestNextEventTime covers the World engine's window-sizing peek.
func TestNextEventTime(t *testing.T) {
	e := NewEnv()
	if _, ok := e.NextEventTime(); ok {
		t.Fatal("empty env reports a next event")
	}
	e.At(5, func() {})
	e.At(3, func() {})
	if at, ok := e.NextEventTime(); !ok || at != 3 {
		t.Fatalf("NextEventTime = %v,%v, want 3,true", at, ok)
	}
	e.Run()
	if _, ok := e.NextEventTime(); ok {
		t.Fatal("drained env reports a next event")
	}
}

// TestDoPastPanics: the hot path enforces the same no-past-scheduling
// contract as At.
func TestDoPastPanics(t *testing.T) {
	e := NewEnv()
	e.At(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("Do in the past accepted")
		}
	}()
	e.Do(5, func() {})
}

// TestDoAfterNegativePanics mirrors After's contract on the pooled path.
func TestDoAfterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative DoAfter accepted")
		}
	}()
	NewEnv().DoAfter(-1, func() {})
}

// BenchmarkEnvEventChurn measures the engine's core push/pop cycle with a
// standing population of pending timers — the DES hot loop.
func BenchmarkEnvEventChurn(b *testing.B) {
	e := NewEnv()
	fn := func() {}
	for i := 0; i < 1024; i++ {
		e.DoAfter(Time(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.DoAfter(1024, fn)
		e.Step()
	}
}

// BenchmarkEnvDoCallChurn is the typed-callback twin of EnvEventChurn —
// the path cluster hot loops use after the closure-interning work.
func BenchmarkEnvDoCallChurn(b *testing.B) {
	e := NewEnv()
	type target struct{ hits uint64 }
	tgt := &target{}
	cb := func(ctx any, arg uint64) { ctx.(*target).hits++ }
	for i := 0; i < 1024; i++ {
		e.DoCallAfter(Time(i), cb, tgt, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.DoCallAfter(1024, cb, tgt, 0)
		e.Step()
	}
}
