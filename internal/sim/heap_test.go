package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// queuePushPattern drives an eventQueue the way an Env does — strictly
// increasing seq, with bursts of repeated timestamps to exercise the
// open-run append path as well as fresh buckets.
func queuePushPattern(rng *rand.Rand, q *eventQueue, seq *uint64, n int) []*Timer {
	var out []*Timer
	at := Time(rng.Intn(50))
	for i := 0; i < n; i++ {
		if rng.Intn(3) == 0 { // start a new run two-thirds of the time not
			at = Time(rng.Intn(50))
		}
		tm := &Timer{at: at, seq: *seq}
		*seq++
		q.push(tm)
		out = append(out, tm)
	}
	return out
}

// TestQueuePopOrderMatchesSort: the bucketed queue pops timers in exact
// (at, seq) order for randomized inputs — the total order every simulation
// outcome rests on.
func TestQueuePopOrderMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var q eventQueue
		seq := uint64(0)
		ref := queuePushPattern(rng, &q, &seq, 1+rng.Intn(200))
		sort.Slice(ref, func(a, b int) bool {
			if ref[a].at != ref[b].at {
				return ref[a].at < ref[b].at
			}
			return ref[a].seq < ref[b].seq
		})
		for i, want := range ref {
			got := q.pop()
			if got != want {
				t.Fatalf("trial %d: pop %d = (at=%d seq=%d), want (at=%d seq=%d)",
					trial, i, got.at, got.seq, want.at, want.seq)
			}
			if got.index != -1 || got.bkt != nil {
				t.Fatalf("popped timer retains queue linkage (index=%d)", got.index)
			}
		}
		if q.len() != 0 {
			t.Fatalf("queue not drained: %d left", q.len())
		}
	}
}

// TestQueueAgainstModel cross-checks the bucketed queue against a sorted
// reference under a randomized push/pop/cancel workload — including
// cancels of bucket fronts (eager) and mid-bucket timers (lazy).
func TestQueueAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var q eventQueue
	seq := uint64(0)
	var live []*Timer
	popMin := func() *Timer {
		best := -1
		for i, x := range live {
			if best < 0 || x.at < live[best].at || (x.at == live[best].at && x.seq < live[best].seq) {
				best = i
			}
		}
		x := live[best]
		live = append(live[:best], live[best+1:]...)
		return x
	}
	for op := 0; op < 5000; op++ {
		switch r := rng.Intn(10); {
		case r < 5: // push a small same-timestamp run
			live = append(live, queuePushPattern(rng, &q, &seq, 1+rng.Intn(4))...)
		case r < 8: // pop min
			if q.len() == 0 {
				continue
			}
			want := popMin()
			got := q.pop()
			if got != want {
				t.Fatalf("op %d: pop (at=%d seq=%d), want (at=%d seq=%d)",
					op, got.at, got.seq, want.at, want.seq)
			}
		default: // cancel arbitrary
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			victim := live[i]
			live = append(live[:i], live[i+1:]...)
			victim.stopped = true
			q.cancel(victim)
		}
		if q.len() != len(live) {
			t.Fatalf("op %d: queue len %d, model %d", op, q.len(), len(live))
		}
	}
	for q.len() > 0 {
		want := popMin()
		got := q.pop()
		if got != want {
			t.Fatalf("drain: pop (at=%d seq=%d), want (at=%d seq=%d)",
				got.at, got.seq, want.at, want.seq)
		}
	}
	if len(live) != 0 {
		t.Fatalf("model not drained: %d left", len(live))
	}
}

// TestQueueInvariants: after every operation, each heap slot's inline key
// matches its bucket's live front, bucket back-pointers name their slots,
// bucket seqs are strictly increasing, and the size counter equals the
// number of live resident timers — the invariants Cancel and Step rest on.
func TestQueueInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var q eventQueue
	seq := uint64(0)
	var live []*Timer
	check := func(op int) {
		total := 0
		for i, ent := range q.h {
			b := ent.b
			if b.hidx != i {
				t.Fatalf("op %d: slot %d holds bucket with hidx %d", op, i, b.hidx)
			}
			if b.first >= len(b.tms) {
				t.Fatalf("op %d: slot %d holds drained bucket", op, i)
			}
			front := b.tms[b.first]
			if front.stopped {
				t.Fatalf("op %d: slot %d front is cancelled", op, i)
			}
			if ent.at != b.at || ent.at != front.at || ent.seq != front.seq {
				t.Fatalf("op %d: slot %d key (%d,%d) diverges from front (%d,%d)",
					op, i, ent.at, ent.seq, front.at, front.seq)
			}
			prev := uint64(0)
			for j := b.first; j < len(b.tms); j++ {
				tm := b.tms[j]
				if tm.at != b.at {
					t.Fatalf("op %d: bucket at=%d holds timer at=%d", op, b.at, tm.at)
				}
				if j > b.first && tm.seq <= prev {
					t.Fatalf("op %d: bucket seqs not increasing", op)
				}
				prev = tm.seq
				if !tm.stopped {
					total++
					if tm.bkt != b || tm.index != j {
						t.Fatalf("op %d: timer linkage wrong (bkt ok=%v index=%d want %d)",
							op, tm.bkt == b, tm.index, j)
					}
				}
			}
		}
		if total != q.size {
			t.Fatalf("op %d: size %d, counted %d live", op, q.size, total)
		}
	}
	for op := 0; op < 2000; op++ {
		switch {
		case rng.Intn(3) > 0 || q.len() == 0:
			live = append(live, queuePushPattern(rng, &q, &seq, 1+rng.Intn(4))...)
		case rng.Intn(2) == 0:
			got := q.pop()
			for i, x := range live {
				if x == got {
					live = append(live[:i], live[i+1:]...)
					break
				}
			}
		default:
			i := rng.Intn(len(live))
			victim := live[i]
			live = append(live[:i], live[i+1:]...)
			victim.stopped = true
			q.cancel(victim)
		}
		check(op)
	}
}

// TestDoPoolingRecycles: Do/DoAfter timers return to the freelist after
// firing and are reused; handle-returning At/After timers never enter the
// pool (a held *Timer must stay valid for Cancel after firing).
func TestDoPoolingRecycles(t *testing.T) {
	e := NewEnv()
	ran := 0
	for i := 0; i < 100; i++ {
		e.DoAfter(Time(i), func() { ran++ })
	}
	e.Run()
	if ran != 100 {
		t.Fatalf("ran %d pooled events, want 100", ran)
	}
	if len(e.free) == 0 {
		t.Fatal("freelist empty after pooled events fired")
	}
	highWater := len(e.free)
	// Steady-state: one pooled event in flight at a time reuses one timer.
	e.DoAfter(1, func() { ran++ })
	e.Run()
	if len(e.free) != highWater {
		t.Fatalf("freelist grew in steady state: %d -> %d", highWater, len(e.free))
	}
	// Handle path must not feed the pool.
	tm := e.After(1, func() {})
	e.Run()
	for _, f := range e.free {
		if f == tm {
			t.Fatal("cancellable timer entered the pool")
		}
	}
	if tm.Stopped() {
		t.Fatal("fired timer reports stopped")
	}
}

// TestDoSchedulingAllocFree: in steady state the pooled path performs no
// per-event allocations (the closure passed in is the caller's concern;
// here it is preallocated, as on the Proc wakeup path).
func TestDoSchedulingAllocFree(t *testing.T) {
	e := NewEnv()
	fn := func() {}
	// Warm the pool.
	e.DoAfter(0, fn)
	e.Run()
	avg := testing.AllocsPerRun(1000, func() {
		e.DoAfter(1, fn)
		e.Step()
	})
	if avg != 0 {
		t.Fatalf("pooled schedule+fire allocates %.1f per event, want 0", avg)
	}
}

// TestProcSleepAllocFree: a process sleep cycle reuses the preallocated
// dispatch closure and a pooled timer — zero allocations per wakeup.
func TestProcSleepAllocFree(t *testing.T) {
	e := NewEnv()
	stop := false
	e.Spawn("sleeper", func(p *Proc) {
		for !stop {
			p.Sleep(Microsecond)
		}
	})
	e.RunFor(10 * Microsecond) // warm up
	avg := testing.AllocsPerRun(500, func() {
		e.RunFor(Microsecond)
	})
	stop = true
	e.RunFor(Microsecond)
	if avg > 0 {
		t.Fatalf("proc sleep cycle allocates %.2f per wakeup, want 0", avg)
	}
}

// TestNextEventTime covers the World engine's window-sizing peek.
func TestNextEventTime(t *testing.T) {
	e := NewEnv()
	if _, ok := e.NextEventTime(); ok {
		t.Fatal("empty env reports a next event")
	}
	e.At(5, func() {})
	e.At(3, func() {})
	if at, ok := e.NextEventTime(); !ok || at != 3 {
		t.Fatalf("NextEventTime = %v,%v, want 3,true", at, ok)
	}
	e.Run()
	if _, ok := e.NextEventTime(); ok {
		t.Fatal("drained env reports a next event")
	}
}

// TestDoPastPanics: the pooled path enforces the same no-past-scheduling
// contract as At.
func TestDoPastPanics(t *testing.T) {
	e := NewEnv()
	e.At(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("Do in the past accepted")
		}
	}()
	e.Do(5, func() {})
}

// TestDoAfterNegativePanics mirrors After's contract on the pooled path.
func TestDoAfterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative DoAfter accepted")
		}
	}()
	NewEnv().DoAfter(-1, func() {})
}

// BenchmarkEnvEventChurn measures the engine's core push/pop cycle with a
// standing population of pending timers — the DES hot loop.
func BenchmarkEnvEventChurn(b *testing.B) {
	e := NewEnv()
	fn := func() {}
	for i := 0; i < 1024; i++ {
		e.DoAfter(Time(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.DoAfter(1024, fn)
		e.Step()
	}
}
