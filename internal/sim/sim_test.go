package sim

import (
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	e := NewEnv()
	var got []int
	e.After(30, func() { got = append(got, 3) })
	e.After(10, func() { got = append(got, 1) })
	e.After(20, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEnv()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant events out of insertion order: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEnv()
	var fired []Time
	e.After(10, func() {
		fired = append(fired, e.Now())
		e.After(5, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("fired = %v, want [10 15]", fired)
	}
}

func TestCancel(t *testing.T) {
	e := NewEnv()
	ran := false
	tm := e.After(10, func() { ran = true })
	e.Cancel(tm)
	e.Run()
	if ran {
		t.Fatal("cancelled timer fired")
	}
	if !tm.Stopped() {
		t.Fatal("Stopped() = false after Cancel")
	}
	// Cancelling twice is a no-op.
	e.Cancel(tm)
}

func TestCancelAfterFire(t *testing.T) {
	e := NewEnv()
	tm := e.After(1, func() {})
	e.Run()
	e.Cancel(tm) // must not panic or corrupt the heap
	e.After(2, func() {})
	e.Run()
	if e.Now() != 3 {
		t.Fatalf("Now = %v, want 3", e.Now())
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := NewEnv()
	var got []int
	var timers []Timer
	for i := 0; i < 20; i++ {
		i := i
		timers = append(timers, e.After(Time(i), func() { got = append(got, i) }))
	}
	// Cancel every third timer.
	for i := 0; i < 20; i += 3 {
		e.Cancel(timers[i])
	}
	e.Run()
	for _, v := range got {
		if v%3 == 0 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
	if len(got) != 20-7 {
		t.Fatalf("got %d events, want 13", len(got))
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEnv()
	var fired []Time
	for _, d := range []Time{10, 20, 30, 40} {
		d := d
		e.After(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(25) fired %v", fired)
	}
	if e.Now() != 25 {
		t.Fatalf("Now = %v, want 25", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("fired = %v, want all 4", fired)
	}
	if e.Now() != 100 {
		t.Fatalf("Now = %v, want 100", e.Now())
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	e := NewEnv()
	e.After(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestProcSleep(t *testing.T) {
	e := NewEnv()
	var marks []Time
	e.Spawn("sleeper", func(p *Proc) {
		marks = append(marks, e.Now())
		p.Sleep(100)
		marks = append(marks, e.Now())
		p.Sleep(50)
		marks = append(marks, e.Now())
	})
	e.Run()
	want := []Time{0, 100, 150}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("marks = %v, want %v", marks, want)
		}
	}
}

func TestProcInterleaving(t *testing.T) {
	e := NewEnv()
	var order []string
	e.Spawn("a", func(p *Proc) {
		order = append(order, "a0")
		p.Sleep(10)
		order = append(order, "a10")
		p.Sleep(20)
		order = append(order, "a30")
	})
	e.Spawn("b", func(p *Proc) {
		order = append(order, "b0")
		p.Sleep(15)
		order = append(order, "b15")
	})
	e.Run()
	want := []string{"a0", "b0", "a10", "b15", "a30"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestProcDone(t *testing.T) {
	e := NewEnv()
	p := e.Spawn("p", func(p *Proc) { p.Sleep(5) })
	if p.Done() {
		t.Fatal("Done before running")
	}
	e.Run()
	if !p.Done() {
		t.Fatal("not Done after Run")
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := NewEnv()
	e.Spawn("boom", func(p *Proc) {
		p.Sleep(1)
		panic("kaboom")
	})
	defer func() {
		if recover() == nil {
			t.Error("process panic did not propagate to Run")
		}
	}()
	e.Run()
}

func TestCompletion(t *testing.T) {
	e := NewEnv()
	c := NewCompletion(e)
	var wokeAt Time = -1
	e.Spawn("waiter", func(p *Proc) {
		p.Wait(c)
		wokeAt = e.Now()
	})
	e.After(42, c.Fire)
	e.Run()
	if wokeAt != 42 {
		t.Fatalf("woke at %v, want 42", wokeAt)
	}
	if !c.Fired() {
		t.Fatal("Fired() = false")
	}
	// Waiting on an already-fired completion returns immediately.
	var after Time = -1
	e.Spawn("late", func(p *Proc) {
		p.Wait(c)
		after = e.Now()
	})
	e.Run()
	if after != 42 {
		t.Fatalf("late waiter woke at %v, want 42", after)
	}
}

func TestCompletionFireIdempotent(t *testing.T) {
	e := NewEnv()
	c := NewCompletion(e)
	n := 0
	c.OnFire(func() { n++ })
	c.Fire()
	c.Fire()
	e.Run()
	if n != 1 {
		t.Fatalf("callback ran %d times, want 1", n)
	}
}

func TestCondBroadcast(t *testing.T) {
	e := NewEnv()
	c := NewCond(e)
	woken := 0
	for i := 0; i < 3; i++ {
		e.Spawn("w", func(p *Proc) {
			p.WaitCond(c)
			woken++
		})
	}
	e.After(10, c.Broadcast)
	e.Run()
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
	// New waiters block until the next broadcast, not the previous one.
	stale := false
	e.Spawn("late", func(p *Proc) {
		p.WaitCond(c)
		stale = true
	})
	e.Run()
	if stale {
		t.Fatal("waiter woken by a past broadcast")
	}
	c.Broadcast()
	e.Run()
	if !stale {
		t.Fatal("waiter not woken by new broadcast")
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500µs"},
		{2500 * Microsecond, "2.500ms"},
		{3 * Second, "3.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the clock ends at the max delay.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEnv()
		var fired []Time
		var max Time
		for _, d := range delays {
			d := Time(d)
			if d > max {
				max = d
			}
			e.After(d, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(delays) == 0 || e.Now() == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Steps counts exactly the events that fire.
func TestStepsCountProperty(t *testing.T) {
	f := func(n uint8) bool {
		e := NewEnv()
		for i := 0; i < int(n); i++ {
			e.After(Time(i), func() {})
		}
		e.Run()
		return e.Steps() == uint64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
