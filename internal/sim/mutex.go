package sim

// Mutex serializes simulation processes, modelling a host-side lock such
// as the CUDA driver's per-context submission lock. FIFO fairness: waiters
// acquire in arrival order.
type Mutex struct {
	env     *Env
	held    bool
	waiters []func()
	// first is the dequeue cursor; popping moves it instead of reslicing so
	// the waiter array's capacity is retained (no per-handoff allocation).
	first int
}

// NewMutex returns an unlocked mutex bound to e.
func NewMutex(e *Env) *Mutex { return &Mutex{env: e} }

// Held reports whether the mutex is currently held.
func (m *Mutex) Held() bool { return m.held }

// Waiters returns the number of processes queued on the mutex.
func (m *Mutex) Waiters() int { return len(m.waiters) - m.first }

// Lock blocks the process until it holds the mutex.
func (m *Mutex) Lock(p *Proc) {
	if !m.held {
		m.held = true
		return
	}
	m.waiters = append(m.waiters, p.dispatchFn)
	p.park()
}

// Unlock releases the mutex, handing it to the oldest waiter (if any) at
// the current virtual time. Unlocking an unheld mutex panics.
func (m *Mutex) Unlock() {
	if !m.held {
		panic("sim: unlock of unheld mutex")
	}
	if m.first == len(m.waiters) {
		m.held = false
		m.waiters, m.first = m.waiters[:0], 0
		return
	}
	next := m.waiters[m.first]
	m.waiters[m.first] = nil
	m.first++
	if m.first == len(m.waiters) {
		m.waiters, m.first = m.waiters[:0], 0
	}
	// Ownership transfers directly; the waiter resumes as a fresh event.
	m.env.DoAfter(0, next)
}
