package gateway

import (
	"hash/fnv"
	"strconv"

	"paella/internal/sim"
)

func init() {
	Register("round-robin", NewRoundRobin)
	Register("least-loaded", NewLeastLoaded)
	Register("model-affinity", func() Policy { return NewModelAffinity(0) })
	Register("residency-aware", func() Policy { return NewResidencyAware(nil) })
	Register("predicted-latency", NewPredictedLatency)
	Register("affinity", func() Policy { return NewAffinity(0) })
}

// roundRobin cycles through replicas regardless of load.
type roundRobin struct{ next int }

// NewRoundRobin returns a load-oblivious rotating policy.
func NewRoundRobin() Policy { return &roundRobin{} }

// Name implements Policy.
func (b *roundRobin) Name() string { return "round-robin" }

// Pick implements Policy.
func (b *roundRobin) Pick(_ Request, replicas []Replica) int {
	i := b.next % len(replicas)
	b.next++
	return i
}

// leastLoaded picks the replica with the fewest in-flight requests per
// unit of capacity.
type leastLoaded struct{}

// NewLeastLoaded returns a capacity-normalized least-outstanding policy.
func NewLeastLoaded() Policy { return leastLoaded{} }

// Name implements Policy.
func (leastLoaded) Name() string { return "least-loaded" }

// Pick implements Policy.
func (leastLoaded) Pick(_ Request, replicas []Replica) int {
	best, bestLoad := 0, -1.0
	for _, r := range replicas {
		load := r.Load()
		if bestLoad < 0 || load < bestLoad {
			best, bestLoad = r.Index, load
		}
	}
	return best
}

// modelAffinity hashes each model onto a home replica (maximizing
// warm-model locality, as real clusters do to avoid reloading weights),
// spilling to the least-loaded replica when the home is overloaded beyond
// the spill factor.
type modelAffinity struct {
	spill float64
}

// NewModelAffinity returns a hash-affinity policy that spills when the
// home replica carries more than spillFactor× the fleet-average load.
// spillFactor ≤ 0 selects the default factor 2.
func NewModelAffinity(spillFactor float64) Policy {
	if spillFactor <= 0 {
		spillFactor = 2
	}
	return &modelAffinity{spill: spillFactor}
}

// Name implements Policy.
func (b *modelAffinity) Name() string { return "model-affinity" }

// Pick implements Policy.
func (b *modelAffinity) Pick(req Request, replicas []Replica) int {
	h := fnv.New32a()
	h.Write([]byte(req.Model))
	home := int(h.Sum32()) % len(replicas)
	if home < 0 {
		home += len(replicas)
	}
	// Compare capacity-normalized loads: on a heterogeneous fleet a big
	// GPU legitimately carries more raw in-flight requests than a small
	// one, and raw counts would make the affinity policy spill off (or
	// stick to) the wrong replicas.
	total := 0.0
	for _, r := range replicas {
		total += r.Load()
	}
	avg := total / float64(len(replicas))
	if avg > 0 && replicas[home].Load() > b.spill*avg {
		return leastLoaded{}.Pick(req, replicas)
	}
	return home
}

// residencyAware routes to a replica that already holds the model's
// weights — first preferring resident copies, then in-flight loads (the
// weights are already on the wire; joining them avoids a duplicate
// multi-hundred-MB transfer) — falling back to the wrapped policy when no
// replica has the model. Within each preference tier ties break by
// capacity-normalized load, so a hot model still spreads across its warm
// replicas.
type residencyAware struct {
	fallback Policy
}

// NewResidencyAware returns the residency-aware policy; a nil fallback
// defaults to least-loaded.
func NewResidencyAware(fallback Policy) Policy {
	if fallback == nil {
		fallback = NewLeastLoaded()
	}
	return &residencyAware{fallback: fallback}
}

// Name implements Policy.
func (b *residencyAware) Name() string { return "residency-aware" }

// Pick implements Policy.
func (b *residencyAware) Pick(req Request, replicas []Replica) int {
	if g := pickLeastLoadedWhere(replicas, func(r Replica) bool { return r.Warm }); g >= 0 {
		return g
	}
	if g := pickLeastLoadedWhere(replicas, func(r Replica) bool { return r.Loading }); g >= 0 {
		return g
	}
	return b.fallback.Pick(req, replicas)
}

// pickLeastLoadedWhere returns the least-loaded replica satisfying ok, or
// -1 when none does.
func pickLeastLoadedWhere(replicas []Replica, ok func(Replica) bool) int {
	best, bestLoad := -1, 0.0
	for _, r := range replicas {
		if !ok(r) {
			continue
		}
		load := r.Load()
		if best < 0 || load < bestLoad {
			best, bestLoad = r.Index, load
		}
	}
	return best
}

// predictedLatency routes each request to the replica with the minimum
// predicted completion time: queued profiled work + this request's
// profiled cost on that device + the weight-load penalty it would pay
// there. Unlike least-loaded it distinguishes a queue of heavy jobs from
// a queue of light ones, a fast GPU from a slow one, and a warm replica
// from one that must first page weights over PCIe — the three effects that
// dominate tail latency under skewed many-model traffic.
type predictedLatency struct{}

// NewPredictedLatency returns the minimum-predicted-completion policy.
func NewPredictedLatency() Policy { return predictedLatency{} }

// Name implements Policy.
func (predictedLatency) Name() string { return "predicted-latency" }

// Pick implements Policy.
func (predictedLatency) Pick(_ Request, replicas []Replica) int {
	best, bestPred := 0, sim.Time(-1)
	for _, r := range replicas {
		pred := r.Predicted()
		if bestPred < 0 || pred < bestPred {
			best, bestPred = r.Index, pred
		}
	}
	return best
}

// affinity keeps same-session and same-model traffic on the replicas that
// already hold its state, spilling on predicted latency rather than raw
// load:
//
//  1. A request with a session sticks to the session's home replica while
//     that replica is alive (LLM conversations reuse KV state).
//  2. Otherwise warm replicas win (least queued work among them), then
//     loading ones.
//  3. Otherwise the model's rendezvous-hash home seeds the choice —
//     stable under replica crashes, unlike modulo hashing, so a fleet
//     change only re-homes the models that lived on the lost replica.
//
// The chosen candidate is abandoned for the minimum-predicted replica
// when its own predicted latency exceeds spill× the fleet's best —
// affinity should save weight loads, not queue requests behind a hot
// spot.
type affinity struct {
	spill    float64
	sessions map[uint64]int // session → home replica ID (stable)
}

// NewAffinity returns the session/model affinity policy. spillFactor ≤ 0
// selects the default factor 2.
func NewAffinity(spillFactor float64) Policy {
	if spillFactor <= 0 {
		spillFactor = 2
	}
	return &affinity{spill: spillFactor, sessions: make(map[uint64]int)}
}

// Name implements Policy.
func (b *affinity) Name() string { return "affinity" }

// Pick implements Policy.
func (b *affinity) Pick(req Request, replicas []Replica) int {
	pick := -1
	if req.Session != 0 {
		if home, ok := b.sessions[req.Session]; ok {
			pick = indexOfID(replicas, home)
		}
	}
	if pick < 0 {
		if g := minQueueWhere(replicas, func(r Replica) bool { return r.Warm }); g >= 0 {
			pick = g
		} else if g := minQueueWhere(replicas, func(r Replica) bool { return r.Loading }); g >= 0 {
			pick = g
		} else {
			pick = rendezvousHome(req.Model, replicas)
		}
	}
	// Spill on predicted latency: a sticky home that has fallen spill×
	// behind the fleet's best replica forfeits its affinity win. (The
	// comparison is against the minimum, not the mean — on a small fleet
	// the overloaded home itself drags the mean up and would mask its own
	// hot spot.)
	best := predictedLatency{}.Pick(req, replicas)
	if bp := replicas[best].Predicted(); bp > 0 &&
		replicas[pick].Predicted() > sim.Time(b.spill*float64(bp)) {
		pick = best
	}
	if req.Session != 0 {
		b.sessions[req.Session] = replicas[pick].ID
	}
	return pick
}

// indexOfID returns the position of the replica with the given stable ID,
// or -1 when it is not in the view (crashed).
func indexOfID(replicas []Replica, id int) int {
	for _, r := range replicas {
		if r.ID == id {
			return r.Index
		}
	}
	return -1
}

// minQueueWhere returns the replica with the least queued predicted work
// among those satisfying ok, or -1 when none does.
func minQueueWhere(replicas []Replica, ok func(Replica) bool) int {
	best, bestQ := -1, sim.Time(0)
	for _, r := range replicas {
		if !ok(r) {
			continue
		}
		if best < 0 || r.QueueNs < bestQ {
			best, bestQ = r.Index, r.QueueNs
		}
	}
	return best
}

// rendezvousHome returns the model's highest-random-weight replica: each
// replica scores fnv32(model ":" ID) and the maximum wins, so losing one
// replica re-homes only that replica's models.
func rendezvousHome(model string, replicas []Replica) int {
	best, bestScore := 0, uint32(0)
	for i, r := range replicas {
		h := fnv.New32a()
		h.Write([]byte(model))
		h.Write([]byte{':'})
		h.Write([]byte(strconv.Itoa(r.ID)))
		s := h.Sum32()
		if i == 0 || s > bestScore {
			best, bestScore = r.Index, s
		}
	}
	return best
}
