// Package gateway is the software-defined routing layer in front of the
// cluster: the same move the paper makes one level down — §4 pulls kernel
// scheduling out of the hardware queues into a software dispatcher, and
// this package pulls request routing out of ad-hoc balancer heuristics
// into composable, observable policies. The paper's §8 notes that
// cluster-level scheduling composes with Paella through hierarchical
// scheduling; the gateway is that layer made explicit, with three ideas
// stacked on a common policy interface:
//
//   - Predicted-latency routing: each replica advertises its queued work,
//     the request's profiled service cost on that replica (heterogeneous
//     GPUs profile separately), and the weight-load penalty it would pay
//     if the model is cold — the same profiled kernel statistics §5.2's
//     dispatcher schedules with. The policy routes to the replica with the
//     minimum predicted completion time instead of the minimum queue
//     length.
//   - Affinity routing: same-model (and same-session) traffic sticks to
//     replicas whose device memory already holds the weights (or KV
//     state), spilling only when the home replica's predicted latency
//     falls too far behind the fleet.
//   - Admission control: per-tenant token buckets shed excess traffic at
//     the front door with a typed error, bounding the damage a
//     misbehaving tenant can do to everyone else's tail latency.
//
// Policies are registered in a multi-router registry by name, so drivers
// (paella-sim -gateway), experiments, and tests select them uniformly.
// Every policy is deterministic: identical inputs pick identical
// replicas, which keeps the cluster's serial ≡ parallel bit-identity
// intact.
package gateway

import (
	"fmt"
	"sort"

	"paella/internal/sim"
)

// Replica is the policy's read-only view of one live replica. Index is the
// replica's position in the slice handed to Pick (and the value Pick
// returns); ID is the replica's stable physical identity, which survives
// crashes of other replicas — affinity state must key on ID, never Index.
type Replica struct {
	// Index is this view's position in the Pick slice.
	Index int
	// ID is the stable physical replica index.
	ID int
	// InFlight is the number of routed-but-unfinished requests.
	InFlight int
	// Capacity is the replica's thread-slot count (heterogeneous fleets
	// expose their relative width here).
	Capacity int
	// Warm reports whether the request's model weights are resident in the
	// replica's device memory; Loading, whether they are being paged in.
	// Both false on a cold replica (and Warm is true when the replica runs
	// without a VRAM budget — everything is implicitly warm).
	Warm    bool
	Loading bool
	// QueueNs is the predicted unfinished work already routed to the
	// replica, in nanoseconds of that replica's own profiled service time.
	QueueNs sim.Time
	// CostNs is the predicted service time of the request being routed on
	// this replica (profiled per device, so a slow GPU advertises a larger
	// cost for the same model).
	CostNs sim.Time
	// LoadPenaltyNs is the predicted weight-load time the request would
	// pay if routed here while the model is cold (zero when Warm).
	LoadPenaltyNs sim.Time
}

// Load returns the replica's capacity-normalized in-flight load, the
// measure the classic balancers rank by.
func (r Replica) Load() float64 {
	cap := float64(r.Capacity)
	if cap <= 0 {
		cap = 1
	}
	return float64(r.InFlight) / cap
}

// Predicted returns the replica's predicted completion latency for the
// request being routed: queued work, plus this request's own service
// cost, plus the cold-start penalty (halved when the weights are already
// on the wire — joining an in-flight load pays only its remaining half,
// in expectation).
func (r Replica) Predicted() sim.Time {
	p := r.QueueNs + r.CostNs
	switch {
	case r.Warm:
	case r.Loading:
		p += r.LoadPenaltyNs / 2
	default:
		p += r.LoadPenaltyNs
	}
	return p
}

// Request is the routing-relevant slice of one inference request.
type Request struct {
	// Model is the target model name.
	Model string
	// Tenant attributes the request for QoS and admission control (empty =
	// untenanted).
	Tenant string
	// Session groups requests that share server-side state (an LLM
	// conversation whose KV could be reused); zero means stateless.
	Session uint64
}

// Policy routes a request to one replica. Pick returns the chosen
// replica's Index (its position in the slice); the slice is never empty.
// Implementations must be deterministic functions of their inputs and
// accumulated state — the cluster calls Pick from a single timeline, and
// the serial/parallel identity matrix holds policies to bit-identical
// decisions.
type Policy interface {
	// Name returns the registry name.
	Name() string
	// Pick selects the target replica for the request.
	Pick(req Request, replicas []Replica) int
}

// registry is the multi-router table: policies register a factory under
// their name at init time, and drivers construct fresh instances by name
// (policies carry per-instance state — rotation cursors, session homes —
// so instances are never shared between clusters).
var registry = map[string]func() Policy{}

// Register adds a policy factory under its name. It panics on duplicates —
// registration happens at init time, where a collision is a programming
// error.
func Register(name string, mk func() Policy) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("gateway: duplicate policy %q", name))
	}
	registry[name] = mk
}

// New constructs a fresh instance of the named policy.
func New(name string) (Policy, error) {
	mk, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("gateway: unknown policy %q (have %v)", name, Names())
	}
	return mk(), nil
}

// Names returns the registered policy names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
