package gateway

import (
	"testing"

	"paella/internal/sim"
)

func TestAdmissionBypassesUntenanted(t *testing.T) {
	a := NewAdmission(AdmissionConfig{Default: TenantLimit{RatePerSec: 1, Burst: 1}})
	for i := 0; i < 100; i++ {
		if err := a.Admit("", sim.Time(i)); err != nil {
			t.Fatal("untenanted request shed")
		}
	}
	if got := a.TotalShed(); got != 0 {
		t.Fatalf("TotalShed = %d, want 0", got)
	}
}

func TestAdmissionBurstThenShed(t *testing.T) {
	a := NewAdmission(AdmissionConfig{Default: TenantLimit{RatePerSec: 100, Burst: 5}})
	shed := 0
	// 10 back-to-back requests at t=0: the 5-deep bucket admits 5.
	for i := 0; i < 10; i++ {
		if err := a.Admit("t0", 0); err != nil {
			if err != ErrTenantShed {
				t.Fatalf("unexpected error %v", err)
			}
			shed++
		}
	}
	if shed != 5 {
		t.Fatalf("shed %d of 10, want 5", shed)
	}
	// 100 req/s refills one token per 10ms.
	if err := a.Admit("t0", 10*sim.Millisecond); err != nil {
		t.Fatal("refilled token refused")
	}
	if err := a.Admit("t0", 10*sim.Millisecond); err == nil {
		t.Fatal("second request on one refilled token admitted")
	}
}

func TestAdmissionSustainedRate(t *testing.T) {
	a := NewAdmission(AdmissionConfig{Default: TenantLimit{RatePerSec: 1000}})
	admitted := 0
	// Offer 2000 req/s for one virtual second: every 0.5ms.
	for i := 0; i < 2000; i++ {
		if a.Admit("t", sim.Time(i)*500*sim.Microsecond) == nil {
			admitted++
		}
	}
	// Sustained throughput must track the configured rate (burst gives a
	// little slack at the start).
	if admitted < 950 || admitted > 1150 {
		t.Fatalf("admitted %d of 2000 at 2× rate, want ≈1000", admitted)
	}
}

func TestAdmissionPerTenantOverride(t *testing.T) {
	a := NewAdmission(AdmissionConfig{
		Default:   TenantLimit{RatePerSec: 1, Burst: 1},
		PerTenant: map[string]TenantLimit{"vip": {RatePerSec: 0}},
	})
	// A zero-rate explicit override means unlimited.
	for i := 0; i < 50; i++ {
		if err := a.Admit("vip", 0); err != nil {
			t.Fatal("vip tenant shed")
		}
	}
	if err := a.Admit("other", 0); err != nil {
		t.Fatal("first request of a default tenant shed")
	}
	if err := a.Admit("other", 0); err == nil {
		t.Fatal("default burst 1 admitted a second instantaneous request")
	}
}

func TestAdmissionStatsSorted(t *testing.T) {
	a := NewAdmission(AdmissionConfig{Default: TenantLimit{RatePerSec: 1, Burst: 1}})
	a.Admit("zeta", 0)
	a.Admit("alpha", 0)
	a.Admit("alpha", 0) // shed
	st := a.Stats()
	if len(st) != 2 || st[0].Tenant != "alpha" || st[1].Tenant != "zeta" {
		t.Fatalf("stats = %+v, want sorted [alpha zeta]", st)
	}
	if st[0].Admitted != 1 || st[0].Shed != 1 {
		t.Fatalf("alpha stats = %+v, want 1 admitted 1 shed", st[0])
	}
}

func TestAdmissionNilSafe(t *testing.T) {
	var a *Admission
	if err := a.Admit("t", 0); err != nil {
		t.Fatal("nil admission shed")
	}
	if a.Stats() != nil || a.TotalShed() != 0 {
		t.Fatal("nil admission reported stats")
	}
}

func TestAdmissionDefaultBurst(t *testing.T) {
	// Burst 0 defaults to rate/10 (min 1): at 50 req/s that is 5 tokens.
	a := NewAdmission(AdmissionConfig{Default: TenantLimit{RatePerSec: 50}})
	admitted := 0
	for i := 0; i < 10; i++ {
		if a.Admit("t", 0) == nil {
			admitted++
		}
	}
	if admitted != 5 {
		t.Fatalf("admitted %d instantaneous requests, want burst 5", admitted)
	}
}
