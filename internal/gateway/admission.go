package gateway

import (
	"errors"
	"sort"

	"paella/internal/sim"
)

// ErrTenantShed is the typed failure a request receives when its tenant's
// token bucket is empty: the gateway refuses the request at the front
// door, before it consumes any replica resources. It rides the same
// error plumbing as internal/core's typed failures — delivered through
// the connection's OnFailed callback and recorded as a failed JobRecord —
// so the fault layer's conservation invariant (every request ends in
// exactly one completion or one typed error) extends through the gateway.
var ErrTenantShed = errors.New("gateway: tenant admission shed (rate limit)")

// TenantLimit configures one tenant's token bucket.
type TenantLimit struct {
	// RatePerSec is the sustained admission rate (tokens per second).
	RatePerSec float64
	// Burst is the bucket depth: how far a tenant may briefly exceed its
	// sustained rate. Zero selects max(1, RatePerSec/10) — a tenth of a
	// second of slack.
	Burst float64
}

func (l TenantLimit) withDefaults() TenantLimit {
	if l.Burst <= 0 {
		l.Burst = l.RatePerSec / 10
		if l.Burst < 1 {
			l.Burst = 1
		}
	}
	return l
}

// AdmissionConfig configures the gateway's per-tenant admission control.
type AdmissionConfig struct {
	// Default applies to every tenant without an explicit limit. A zero
	// RatePerSec default means unknown tenants are unlimited.
	Default TenantLimit
	// PerTenant overrides the default for specific tenants.
	PerTenant map[string]TenantLimit
}

// tokenBucket is one tenant's admission state: a classic token bucket on
// virtual time, refilled lazily at Take.
type tokenBucket struct {
	limit  TenantLimit
	tokens float64
	last   sim.Time
}

func (b *tokenBucket) take(now sim.Time) bool {
	if b.limit.RatePerSec <= 0 {
		return true
	}
	if now > b.last {
		b.tokens += float64(now-b.last) / float64(sim.Second) * b.limit.RatePerSec
		if b.tokens > b.limit.Burst {
			b.tokens = b.limit.Burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Admission is the gateway's per-tenant token-bucket admission controller.
// It is pure virtual-time state — lazily refilled buckets keyed by tenant
// name — so admission decisions are deterministic functions of the
// request sequence, preserving the cluster's bit-identity guarantees.
type Admission struct {
	cfg     AdmissionConfig
	buckets map[string]*tokenBucket
	// admitted and shed count per-tenant outcomes (Stats exposes them in
	// sorted order for deterministic reporting).
	admitted map[string]int
	shed     map[string]int
}

// NewAdmission returns an admission controller for the configuration.
func NewAdmission(cfg AdmissionConfig) *Admission {
	return &Admission{
		cfg:      cfg,
		buckets:  make(map[string]*tokenBucket),
		admitted: make(map[string]int),
		shed:     make(map[string]int),
	}
}

// Admit charges one request against the tenant's bucket at virtual time
// now. It returns nil when the request may proceed and ErrTenantShed when
// the tenant is over its rate. Untenanted requests (empty tenant) bypass
// admission entirely — rate management is a property of tenancy.
func (a *Admission) Admit(tenant string, now sim.Time) error {
	if a == nil || tenant == "" {
		return nil
	}
	b, ok := a.buckets[tenant]
	if !ok {
		limit, explicit := a.cfg.PerTenant[tenant]
		if !explicit {
			limit = a.cfg.Default
		}
		if limit.RatePerSec > 0 {
			limit = limit.withDefaults()
		}
		b = &tokenBucket{limit: limit, tokens: limit.Burst, last: now}
		a.buckets[tenant] = b
	}
	if !b.take(now) {
		a.shed[tenant]++
		return ErrTenantShed
	}
	a.admitted[tenant]++
	return nil
}

// TenantStats is one tenant's admission outcome counts.
type TenantStats struct {
	// Tenant is the tenant name.
	Tenant string
	// Admitted and Shed count requests that passed and were refused.
	Admitted int
	Shed     int
}

// Stats returns per-tenant admission counts, sorted by tenant name.
func (a *Admission) Stats() []TenantStats {
	if a == nil {
		return nil
	}
	names := make([]string, 0, len(a.admitted)+len(a.shed))
	seen := make(map[string]bool)
	for t := range a.admitted {
		if !seen[t] {
			seen[t], names = true, append(names, t)
		}
	}
	for t := range a.shed {
		if !seen[t] {
			seen[t], names = true, append(names, t)
		}
	}
	sort.Strings(names)
	out := make([]TenantStats, len(names))
	for i, t := range names {
		out[i] = TenantStats{Tenant: t, Admitted: a.admitted[t], Shed: a.shed[t]}
	}
	return out
}

// TotalShed returns the number of requests shed across all tenants.
func (a *Admission) TotalShed() int {
	if a == nil {
		return 0
	}
	n := 0
	for _, s := range a.shed {
		n += s
	}
	return n
}
