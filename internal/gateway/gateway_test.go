package gateway

import (
	"testing"

	"paella/internal/sim"
)

func reps(n int) []Replica {
	out := make([]Replica, n)
	for i := range out {
		out[i] = Replica{Index: i, ID: i, Capacity: 1000}
	}
	return out
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{
		"round-robin", "least-loaded", "model-affinity",
		"residency-aware", "predicted-latency", "affinity",
	} {
		p, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := New("no-such-policy"); err == nil {
		t.Fatal("New of unknown policy succeeded")
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
	// Instances must not share state: two round-robins rotate
	// independently.
	a, _ := New("round-robin")
	b, _ := New("round-robin")
	rs := reps(3)
	a.Pick(Request{}, rs)
	if got := b.Pick(Request{}, rs); got != 0 {
		t.Fatalf("fresh round-robin picked %d, want 0", got)
	}
}

func TestRoundRobinCycles(t *testing.T) {
	p := NewRoundRobin()
	rs := reps(3)
	want := []int{0, 1, 2, 0, 1}
	for i, w := range want {
		if got := p.Pick(Request{}, rs); got != w {
			t.Fatalf("pick %d = %d, want %d", i, got, w)
		}
	}
}

func TestLeastLoadedNormalizesByCapacity(t *testing.T) {
	rs := reps(2)
	rs[0].InFlight, rs[0].Capacity = 4, 4000 // load 0.001
	rs[1].InFlight, rs[1].Capacity = 2, 1000 // load 0.002
	if got := NewLeastLoaded().Pick(Request{}, rs); got != 0 {
		t.Fatalf("pick = %d, want the big replica with lower normalized load", got)
	}
}

func TestResidencyAwarePrefersWarmThenLoading(t *testing.T) {
	p := NewResidencyAware(nil)
	rs := reps(3)
	rs[2].Warm = true
	if got := p.Pick(Request{Model: "m"}, rs); got != 2 {
		t.Fatalf("warm pick = %d, want 2", got)
	}
	rs[2].Warm = false
	rs[1].Loading = true
	if got := p.Pick(Request{Model: "m"}, rs); got != 1 {
		t.Fatalf("loading pick = %d, want 1", got)
	}
	rs[1].Loading = false
	rs[0].InFlight = 5
	if got := p.Pick(Request{Model: "m"}, rs); got == 0 {
		t.Fatal("fallback picked the loaded replica")
	}
}

func TestPredictedLatencyWeighsQueueCostAndPenalty(t *testing.T) {
	p := NewPredictedLatency()
	rs := reps(3)
	// Replica 0: short queue but cold — pays the load penalty.
	rs[0].QueueNs, rs[0].CostNs, rs[0].LoadPenaltyNs = 1*sim.Millisecond, 1*sim.Millisecond, 10*sim.Millisecond
	// Replica 1: longer queue, warm.
	rs[1].QueueNs, rs[1].CostNs, rs[1].Warm = 3*sim.Millisecond, 1*sim.Millisecond, true
	// Replica 2: loading — pays half the penalty.
	rs[2].QueueNs, rs[2].CostNs, rs[2].LoadPenaltyNs = 1*sim.Millisecond, 1*sim.Millisecond, 10*sim.Millisecond
	rs[2].Loading = true
	if got := p.Pick(Request{}, rs); got != 1 {
		t.Fatalf("pick = %d, want the warm replica despite its longer queue", got)
	}
	// Make the warm queue long enough that joining the in-flight load wins.
	rs[1].QueueNs = 20 * sim.Millisecond
	if got := p.Pick(Request{}, rs); got != 2 {
		t.Fatalf("pick = %d, want the loading replica", got)
	}
}

func TestPredictedLatencyTieBreaksLowestIndex(t *testing.T) {
	p := NewPredictedLatency()
	rs := reps(4)
	for i := range rs {
		rs[i].QueueNs, rs[i].CostNs, rs[i].Warm = sim.Millisecond, sim.Millisecond, true
	}
	if got := p.Pick(Request{}, rs); got != 0 {
		t.Fatalf("tie pick = %d, want 0", got)
	}
}

func TestAffinitySessionSticksAndSurvivesRenumbering(t *testing.T) {
	p := NewAffinity(0)
	rs := reps(3)
	for i := range rs {
		rs[i].Warm = true
	}
	req := Request{Model: "m", Session: 7}
	first := p.Pick(req, rs)
	if got := p.Pick(req, rs); got != first {
		t.Fatalf("session re-pick = %d, want sticky %d", got, first)
	}
	// Crash a different replica: positions renumber, but the session must
	// follow the stable ID.
	var survivors []Replica
	pos := 0
	for _, r := range rs {
		if r.ID == first {
			r.Index = pos
			survivors = append(survivors, r)
			pos++
		} else if len(survivors) == pos { // drop exactly one other replica
			continue
		} else {
			r.Index = pos
			survivors = append(survivors, r)
			pos++
		}
	}
	got := p.Pick(req, survivors)
	if survivors[got].ID != first {
		t.Fatalf("after renumbering, session landed on ID %d, want %d", survivors[got].ID, first)
	}
}

func TestAffinitySpillsOnPredictedLatency(t *testing.T) {
	p := NewAffinity(2)
	rs := reps(2)
	rs[0].Warm = true
	rs[0].QueueNs, rs[0].CostNs = 100*sim.Millisecond, sim.Millisecond
	rs[1].QueueNs, rs[1].CostNs, rs[1].LoadPenaltyNs = 0, sim.Millisecond, 2*sim.Millisecond
	// The warm home is 100ms behind a 3ms cold alternative: spill.
	if got := p.Pick(Request{Model: "m"}, rs); got != 1 {
		t.Fatalf("pick = %d, want spill to the idle cold replica", got)
	}
}

func TestAffinityRendezvousStableUnderCrash(t *testing.T) {
	// Removing one replica must not re-home models that lived elsewhere.
	full := reps(4)
	p := NewAffinity(0)
	homes := map[string]int{}
	models := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for _, m := range models {
		homes[m] = full[p.Pick(Request{Model: m}, full)].ID
	}
	// Drop replica 2; survivors renumber.
	var survivors []Replica
	for _, r := range full {
		if r.ID == 2 {
			continue
		}
		r.Index = len(survivors)
		survivors = append(survivors, r)
	}
	q := NewAffinity(0)
	for _, m := range models {
		got := survivors[q.Pick(Request{Model: m}, survivors)].ID
		if homes[m] != 2 && got != homes[m] {
			t.Fatalf("model %s re-homed %d → %d after an unrelated crash", m, homes[m], got)
		}
	}
}

func TestReplicaPredicted(t *testing.T) {
	r := Replica{QueueNs: 10, CostNs: 5, LoadPenaltyNs: 8}
	if got := r.Predicted(); got != 23 {
		t.Fatalf("cold Predicted = %d, want 23", got)
	}
	r.Loading = true
	if got := r.Predicted(); got != 19 {
		t.Fatalf("loading Predicted = %d, want 19", got)
	}
	r.Loading, r.Warm = false, true
	if got := r.Predicted(); got != 15 {
		t.Fatalf("warm Predicted = %d, want 15", got)
	}
}
