package sched

import (
	"testing"

	"paella/internal/sim"
)

func fitsOver(threshold sim.Time) func(*JobEntry) bool {
	return func(j *JobEntry) bool { return j.Remaining >= threshold }
}

func TestTreePickFitSkipsNonFitting(t *testing.T) {
	p := NewSRPT()
	a := job(1, 0, 0, 10, 10)
	b := job(2, 0, 0, 20, 20)
	c := job(3, 0, 0, 30, 30)
	for _, j := range []*JobEntry{a, b, c} {
		p.Add(j)
	}
	// Only jobs with remaining ≥ 25 "fit": SRPT order is a,b,c so PickFit
	// must skip a and b and return c.
	if got := p.PickFit(fitsOver(25), 16); got != c {
		t.Fatalf("PickFit = %v, want c", got)
	}
	// Nothing fits.
	if got := p.PickFit(fitsOver(100), 16); got != nil {
		t.Fatalf("PickFit = %v, want nil", got)
	}
	// Scan budget respected: with maxScan 1 only 'a' is examined.
	if got := p.PickFit(fitsOver(25), 1); got != nil {
		t.Fatalf("PickFit with scan budget 1 = %v, want nil", got)
	}
}

func TestRRPickFit(t *testing.T) {
	p := NewRR()
	a := job(1, 0, 1, 10, 10) // client 0
	b := job(2, 1, 1, 20, 20) // client 1
	p.Add(a)
	p.Add(b)
	// Client 0 is first in the ring, but only b fits.
	if got := p.PickFit(fitsOver(15), 16); got != b {
		t.Fatalf("RR PickFit = %v, want b", got)
	}
	if got := p.PickFit(fitsOver(100), 16); got != nil {
		t.Fatalf("RR PickFit = %v, want nil", got)
	}
	if got := p.PickFit(fitsOver(15), 1); got != nil {
		t.Fatalf("RR PickFit scan=1 = %v, want nil", got)
	}
	if NewRR().PickFit(fitsOver(0), 16) != nil {
		t.Fatal("empty RR PickFit not nil")
	}
}

func TestPaellaPickFitDeficitPath(t *testing.T) {
	p := NewPaella(1)
	p.JobAdmitted(0)
	p.JobAdmitted(1)
	short := job(1, 0, 0, 10, 10)
	long := job(2, 1, 5, 1000, 1000)
	p.Add(short)
	p.Add(long)
	// Starve client 1 until over threshold.
	for i := 0; i < 10; i++ {
		p.Dispatched(short)
	}
	if p.EffectiveDeficit(1) <= 1 {
		t.Fatal("client 1 not over threshold")
	}
	// The override path must respect the fits predicate: if the starved
	// client's job doesn't fit, fall through to SRPT order.
	got := p.PickFit(func(j *JobEntry) bool { return j != long }, 16)
	if got != short {
		t.Fatalf("PickFit = %v, want fallback to short", got)
	}
	// When it fits, the starved client's job wins despite SRPT order.
	got = p.PickFit(func(*JobEntry) bool { return true }, 16)
	if got != long {
		t.Fatalf("PickFit = %v, want starved client's job", got)
	}
	if p.PickFit(func(*JobEntry) bool { return false }, 16) != nil {
		t.Fatal("PickFit with nothing fitting not nil")
	}
	if NewPaella(1).PickFit(func(*JobEntry) bool { return true }, 16) != nil {
		t.Fatal("empty Paella PickFit not nil")
	}
}

// TestPickFitConsistentWithPick: when everything fits, PickFit must agree
// with Pick for every policy.
func TestPickFitConsistentWithPick(t *testing.T) {
	mk := func() []*JobEntry {
		return []*JobEntry{
			job(1, 0, 5, 100, 60),
			job(2, 1, 3, 50, 50),
			job(3, 0, 8, 200, 10),
			job(4, 2, 1, 70, 70),
		}
	}
	policies := []func() Policy{NewFIFO, NewSJF, NewSRPT, NewRR,
		func() Policy { return NewPaella(1e9) }}
	for _, mkPol := range policies {
		p := mkPol()
		for _, j := range mk() {
			if pp, ok := p.(*PaellaPolicy); ok {
				pp.JobAdmitted(j.Client)
			}
			p.Add(j)
		}
		all := func(*JobEntry) bool { return true }
		if p.Pick() != p.PickFit(all, 16) {
			t.Errorf("%s: Pick and PickFit(all) disagree", p.Name())
		}
	}
}
