package sched

import "paella/internal/rbtree"

// PaellaPolicy is the paper's default scheduler (§6): SRPT for latency,
// bounded by per-client deficit counters for fairness.
//
// Conceptually, when a kernel of client c is dispatched, c's deficit
// decreases by (1 − 1/n) while every other active client's deficit
// increases by 1/n (n = number of clients with unfinished jobs). That is an
// O(n) update; the implementation uses the paper's O(1) shift trick:
// dispatching stores deficit[c] −= 1 and adds 1/n to a global boost, so a
// client's effective deficit is stored + boost and relative order among
// stored values is preserved. A periodic O(n) renormalization bounds the
// magnitudes (the paper's "reset on double underflow").
//
// Pick: if the maximum effective deficit exceeds the fairness threshold and
// that client has a runnable job, its oldest job runs; otherwise the SRPT
// minimum runs. Lower thresholds trigger the fairness override sooner
// (Figure 13); as the threshold approaches zero the policy degenerates
// toward oldest-first service.
type PaellaPolicy struct {
	threshold float64
	boost     float64

	srpt    *rbtree.Tree[*JobEntry]
	deficit *rbtree.Tree[*paellaClient] // ordered by stored deficit
	clients map[int]*paellaClient
	// nextSeq numbers clients in first-seen order for the deficit-tree
	// tiebreak. It is per-policy state: a package-level counter would
	// couple independent policy instances (replica dispatchers) and race
	// when replicas run on separate goroutines under the parallel engine.
	nextSeq uint64
}

type paellaClient struct {
	id     int
	stored float64
	// active counts unfinished jobs (admitted, not yet completed).
	active int
	// jobs holds this client's runnable jobs, FIFO by arrival.
	jobs *rbtree.Tree[*JobEntry]
	node *rbtree.Node[*paellaClient]
	seq  uint64 // tiebreak for deterministic ordering
}

// NewPaella returns the default Paella policy with the given fairness
// threshold, measured in kernel dispatches of imbalance. Higher thresholds
// favour SRPT latency; lower thresholds favour fairness.
func NewPaella(threshold float64) *PaellaPolicy {
	p := &PaellaPolicy{
		threshold: threshold,
		srpt: rbtree.New(func(a, b *JobEntry) bool {
			if a.Remaining != b.Remaining {
				return a.Remaining < b.Remaining
			}
			less, ok := warmFirst(a, b)
			return ok && less
		}),
		clients: make(map[int]*paellaClient),
	}
	p.deficit = rbtree.New(func(a, b *paellaClient) bool {
		if a.stored != b.stored {
			return a.stored < b.stored
		}
		return a.seq < b.seq
	})
	return p
}

// Name implements Policy.
func (p *PaellaPolicy) Name() string { return "Paella" }

// Threshold returns the configured fairness threshold.
func (p *PaellaPolicy) Threshold() float64 { return p.threshold }

// Len implements Policy.
func (p *PaellaPolicy) Len() int { return p.srpt.Len() }

func (p *PaellaPolicy) client(id int) *paellaClient {
	c, ok := p.clients[id]
	if !ok {
		p.nextSeq++
		c = &paellaClient{
			id:   id,
			jobs: rbtree.New(func(a, b *JobEntry) bool { return a.Arrival < b.Arrival }),
			seq:  p.nextSeq,
			// A new client starts level with the field: stored 0 means
			// effective deficit equals the global boost, the same as a
			// client that has been waiting without service.
			stored: 0,
		}
		p.clients[id] = c
	}
	return c
}

// JobAdmitted implements Policy: the client gains an unfinished job and
// (re)joins the deficit index.
func (p *PaellaPolicy) JobAdmitted(client int) {
	c := p.client(client)
	c.active++
	if c.node == nil {
		c.node = p.deficit.Insert(c)
	}
}

// JobFinished implements Policy: when a client's last job completes it
// leaves the deficit index (and forfeits accumulated deficit — an idle
// client must not hoard priority).
func (p *PaellaPolicy) JobFinished(client int) {
	c := p.clients[client]
	if c == nil || c.active == 0 {
		panic("sched: JobFinished without matching JobAdmitted")
	}
	c.active--
	if c.active == 0 {
		if c.node != nil {
			p.deficit.Delete(c.node)
			c.node = nil
		}
		delete(p.clients, client)
	}
}

// Add implements Policy. A job's detached node handles are reused across
// Remove/Add cycles (one per kernel dispatch), so the steady-state path
// does not allocate.
func (p *PaellaPolicy) Add(j *JobEntry) {
	if j.primary.Attached() || j.secondary.Attached() {
		panic("sched: job added twice to Paella")
	}
	j.primary = insertEntry(p.srpt, j, j.primary)
	j.secondary = insertEntry(p.client(j.Client).jobs, j, j.secondary)
}

// Remove implements Policy. The node handles stay on the JobEntry,
// detached, for reuse by the next Add.
func (p *PaellaPolicy) Remove(j *JobEntry) {
	if !j.primary.Attached() {
		panic("sched: removing job not in Paella")
	}
	p.srpt.Delete(j.primary)
	c := p.clients[j.Client]
	c.jobs.Delete(j.secondary)
}

// Pick implements Policy: fairness override first, SRPT otherwise.
func (p *PaellaPolicy) Pick() *JobEntry {
	if p.srpt.Len() == 0 {
		return nil
	}
	// Scan clients from highest effective deficit down until one with a
	// runnable job is found or the threshold is no longer exceeded.
	for n := p.deficit.Max(); n != nil; n = n.Prev() {
		c := n.Item
		if c.stored+p.boost <= p.threshold {
			break
		}
		if c.jobs.Len() > 0 {
			return c.jobs.Min().Item
		}
	}
	return p.srpt.Min().Item
}

// PickFit implements Policy: the fairness override considers only the
// most-starved client's oldest fitting job; otherwise jobs are scanned in
// SRPT order.
func (p *PaellaPolicy) PickFit(fits func(*JobEntry) bool, maxScan int) *JobEntry {
	if p.srpt.Len() == 0 {
		return nil
	}
	scanned := 0
	for n := p.deficit.Max(); n != nil && scanned < maxScan; n = n.Prev() {
		c := n.Item
		if c.stored+p.boost <= p.threshold {
			break
		}
		for jn := c.jobs.Min(); jn != nil && scanned < maxScan; jn = jn.Next() {
			if fits(jn.Item) {
				return jn.Item
			}
			scanned++
		}
	}
	for n := p.srpt.Min(); n != nil && scanned < maxScan; n = n.Next() {
		if fits(n.Item) {
			return n.Item
		}
		scanned++
	}
	return nil
}

// Dispatched implements Policy: the deficit bookkeeping of §6.
func (p *PaellaPolicy) Dispatched(j *JobEntry) {
	c := p.clients[j.Client]
	if c == nil {
		panic("sched: Dispatched for unknown client")
	}
	n := len(p.clients)
	if n == 0 {
		return
	}
	// stored -= 1, everyone += 1/n  ⇔  c loses (1 − 1/n), others gain 1/n.
	// The node handle is reused across the delete/reinsert (InsertNode), so
	// the per-dispatch hot path does not allocate.
	reposition := c.node != nil
	if reposition {
		p.deficit.Delete(c.node)
	}
	c.stored--
	if reposition {
		p.deficit.InsertNode(c.node)
	}
	p.boost += 1 / float64(n)

	// Renormalize before floating-point magnitudes degrade (the paper's
	// O(n) reset).
	if p.boost > 1e9 {
		for _, cc := range p.clients {
			cc.stored += p.boost
		}
		// Stored-order is unchanged by a uniform shift; the tree remains
		// valid.
		p.boost = 0
	}
}

// EffectiveDeficit returns client's current effective deficit (testing and
// introspection).
func (p *PaellaPolicy) EffectiveDeficit(client int) float64 {
	c := p.clients[client]
	if c == nil {
		return 0
	}
	return c.stored + p.boost
}

// ActiveClients returns the number of clients with unfinished jobs.
func (p *PaellaPolicy) ActiveClients() int { return len(p.clients) }
