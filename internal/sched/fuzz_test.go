package sched

import (
	"testing"

	"paella/internal/sim"
)

// FuzzSchedPolicy drives the Paella policy through arbitrary
// admit/add/pick/dispatch/finish sequences against a shadow model and
// checks the invariants the dispatcher's correctness rests on:
//
//   - Pick never returns a job that was removed (or was never added).
//   - Pick is read-only: two consecutive calls return the same job.
//   - Len always equals the shadow's count of runnable jobs.
//   - The fairness override fires exactly per §6: if any client above the
//     deficit threshold has a runnable job, the pick is the oldest job of
//     the *highest-deficit* such client; otherwise the pick carries the
//     minimum Remaining among all runnable jobs (pure SRPT).
//
// The op stream is one byte per action; parameter bytes follow. Invalid
// action sequences cannot be expressed: the harness only calls the policy
// in dispatcher-legal orders, which is exactly the API contract (the
// policy is entitled to panic on anything else).
func FuzzSchedPolicy(f *testing.F) {
	f.Add(uint8(0), []byte{0, 1, 0, 9, 2, 3, 3, 1})
	f.Add(uint8(1), []byte{0, 0, 0, 1, 0, 2, 3, 3, 3, 3, 2, 1, 4})
	f.Add(uint8(200), []byte("\x00\x07\x00\x07\x03\x03\x02\x01\x00\x01\x03\x04"))
	f.Fuzz(func(t *testing.T, thresholdRaw uint8, ops []byte) {
		// Small thresholds make the fairness override reachable within a
		// short op stream.
		threshold := float64(thresholdRaw) / 64
		p := NewPaella(threshold)

		live := map[uint64]*JobEntry{} // runnable jobs (Added, not Removed)
		active := map[int]int{}        // client -> unfinished job count
		seqOf := map[int]uint64{}      // client -> first-seen order (mirrors the policy's tiebreak)
		var shadowSeq uint64
		var nextID uint64
		var clock sim.Time // strictly increasing arrival stamp

		finish := func(j *JobEntry) {
			p.JobFinished(j.Client)
			active[j.Client]--
			if active[j.Client] == 0 {
				// The policy forgets idle clients; a returning client gets a
				// fresh seq, so the shadow must too.
				delete(active, j.Client)
				delete(seqOf, j.Client)
			}
		}
		checkPick := func(j *JobEntry) {
			if j == nil {
				if len(live) != 0 {
					t.Fatalf("Pick returned nil with %d runnable jobs", len(live))
				}
				return
			}
			if live[j.ID] != j {
				t.Fatalf("Pick returned job %d which is not runnable", j.ID)
			}
			// Locate the highest-deficit client above threshold that has a
			// runnable job; equal deficits break toward the later-seen
			// client, mirroring the policy's (stored, seq) ordering.
			var starved *JobEntry
			starvedDef, starvedSeq := threshold, uint64(0)
			for c := range active {
				d := p.EffectiveDeficit(c)
				if d <= threshold {
					continue
				}
				if starved != nil && (d < starvedDef || (d == starvedDef && seqOf[c] < starvedSeq)) {
					continue
				}
				var oldest *JobEntry
				for _, x := range live {
					if x.Client == c && (oldest == nil || x.Arrival < oldest.Arrival) {
						oldest = x
					}
				}
				if oldest != nil {
					starved, starvedDef, starvedSeq = oldest, d, seqOf[c]
				}
			}
			if starved != nil {
				if j != starved {
					t.Fatalf("fairness override violated: picked job %d (client %d, deficit %v), want job %d (client %d, deficit %v, threshold %v)",
						j.ID, j.Client, p.EffectiveDeficit(j.Client), starved.ID, starved.Client, starvedDef, threshold)
				}
				return
			}
			for _, x := range live {
				if x.Remaining < j.Remaining {
					t.Fatalf("SRPT violated: picked Remaining %v, job %d has %v", j.Remaining, x.ID, x.Remaining)
				}
			}
		}

		i := 0
		next := func() byte {
			if i >= len(ops) {
				return 0
			}
			b := ops[i]
			i++
			return b
		}
		for i < len(ops) {
			switch next() % 5 {
			case 0: // admit a new job
				client := int(next() % 4)
				rem := sim.Time(next()%16) + 1
				nextID++
				clock++
				j := &JobEntry{
					ID: nextID, Client: client, Arrival: clock,
					Total: rem, Remaining: rem,
				}
				if active[client] == 0 {
					shadowSeq++
					seqOf[client] = shadowSeq
				}
				p.JobAdmitted(client)
				active[client]++
				p.Add(j)
				live[j.ID] = j
			case 1: // a runnable job leaves without dispatch (e.g. client gone)
				j := lowestID(live)
				if j == nil {
					continue
				}
				p.Remove(j)
				delete(live, j.ID)
				finish(j)
			case 2: // pick (read-only)
				j := p.Pick()
				checkPick(j)
				if p.Pick() != j {
					t.Fatal("Pick is not idempotent")
				}
			case 3: // full dispatch cycle: pick, remove, account, maybe re-add
				j := p.Pick()
				checkPick(j)
				if j == nil {
					continue
				}
				p.Remove(j)
				delete(live, j.ID)
				p.Dispatched(j)
				if j.Remaining > 1 {
					j.Remaining--
					p.Add(j)
					live[j.ID] = j
				} else {
					finish(j)
				}
			case 4: // PickFit with a predicate admitting every other job id
				fits := func(x *JobEntry) bool { return x.ID%2 == 0 }
				j := p.PickFit(fits, 64)
				if j != nil {
					if live[j.ID] != j {
						t.Fatalf("PickFit returned job %d which is not runnable", j.ID)
					}
					if !fits(j) {
						t.Fatalf("PickFit returned job %d which does not fit", j.ID)
					}
				}
			}
			if p.Len() != len(live) {
				t.Fatalf("Len %d, shadow has %d", p.Len(), len(live))
			}
		}
	})
}

func lowestID(live map[uint64]*JobEntry) *JobEntry {
	var out *JobEntry
	for _, j := range live {
		if out == nil || j.ID < out.ID {
			out = j
		}
	}
	return out
}
