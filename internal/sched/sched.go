// Package sched implements the kernel-granularity scheduling policies of
// §6 of the paper. The Paella dispatcher consults a Policy each time the
// GPU has room for more work: the policy picks the job whose next kernel
// should be dispatched. Dispatching removes the job from the policy's
// indexes; the dispatcher re-adds it (with an updated remaining-time
// estimate) once the job's next kernel becomes ready.
//
// Available policies:
//
//   - FIFO: oldest job first (what the hardware effectively provides).
//   - SJF: shortest total estimated execution time first.
//   - SRPT: shortest *remaining* estimated time first.
//   - RR: round-robin across clients, FIFO within a client.
//   - Paella (default): SRPT bounded by per-client deficit counters — if
//     any client's deficit exceeds a configurable fairness threshold, the
//     oldest job of the most-starved client runs instead (§6's mix of SRPT
//     and deficit-based priority scheduling, after Shreedhar & Varghese's
//     deficit round-robin).
package sched

import (
	"paella/internal/rbtree"
	"paella/internal/sim"
)

// JobEntry is the scheduler's view of one inference job.
type JobEntry struct {
	// ID is the dispatcher-assigned request id.
	ID uint64
	// Client identifies the submitting client (the fairness principal).
	Client int
	// Arrival is when the request reached the dispatcher.
	Arrival sim.Time
	// Total is the profiled execution-time estimate of the whole job
	// (fixed at admission; used by SJF).
	Total sim.Time
	// Remaining is the current remaining-time estimate (updated by the
	// dispatcher before every re-Add; used by SRPT and Paella).
	Remaining sim.Time
	// Deadline is the absolute completion deadline, if any (zero = none).
	// Used by the EDF policy; hardware schedulers have no equivalent
	// (§2.1's "ignorance of application metrics").
	Deadline sim.Time
	// Warm reports whether the job's model weights are resident in device
	// memory (internal/vram). Policies use it as a tiebreak: on equal
	// primary keys a warm job dispatches first, since a cold one waits
	// behind a weight load regardless. Always false when the residency
	// subsystem is disabled, making the tiebreak inert.
	Warm bool
	// Payload lets the dispatcher attach its job state to the entry.
	Payload any

	// policy-internal index handles
	primary   *rbtree.Node[*JobEntry]
	secondary *rbtree.Node[*JobEntry]
}

// Policy picks which runnable job's next kernel to dispatch.
type Policy interface {
	// Name returns the policy's short name (matching Table 3 labels).
	Name() string
	// Add makes a job visible to the picker. A job must not be added
	// twice without an intervening Remove.
	Add(j *JobEntry)
	// Remove hides a job from the picker (its next kernel was dispatched,
	// or it finished while queued).
	Remove(j *JobEntry)
	// Pick returns the job to run next, or nil. It does not mutate state.
	Pick() *JobEntry
	// PickFit returns the best job (in policy order) whose next kernel
	// currently fits the device, per the fits predicate, scanning at most
	// maxScan candidates. It returns nil if none of the scanned candidates
	// fit. Work conservation: without this, one unplaceable large kernel
	// at the head of the policy order would idle the GPU — the same
	// head-of-line pathology Paella exists to avoid, recreated in
	// software.
	PickFit(fits func(*JobEntry) bool, maxScan int) *JobEntry
	// Dispatched informs the policy that one kernel of j was dispatched
	// (fairness accounting).
	Dispatched(j *JobEntry)
	// JobAdmitted and JobFinished bracket a job's lifetime in the system
	// (admission to final completion), independent of Add/Remove cycles.
	JobAdmitted(client int)
	JobFinished(client int)
	// Len returns the number of currently runnable jobs.
	Len() int
}

// BatchRemaining returns the SRPT remaining-work key of a batched
// dispatch: the maximum over the members' remaining estimates. A batched
// kernel launch finishes when its slowest member's work does, so the batch
// inherits the pessimistic member's position in the SRPT order — batching
// must never let a long job tunnel ahead of shorter ones by hiding inside
// a batch of short jobs (§6's SRPT semantics applied at batch
// granularity).
func BatchRemaining(members []*JobEntry) sim.Time {
	var max sim.Time
	for _, e := range members {
		if e.Remaining > max {
			max = e.Remaining
		}
	}
	return max
}

// BatchDispatched charges one batched kernel dispatch to every member's
// client: each member consumed device capacity, so each member's client
// pays the §6 deficit bookkeeping — a client cannot launder service past
// the fairness threshold by riding other clients' batches.
func BatchDispatched(p Policy, members []*JobEntry) {
	for _, e := range members {
		p.Dispatched(e)
	}
}

// nopLifecycle provides no-op lifecycle hooks for policies that do not
// track clients.
type nopLifecycle struct{}

func (nopLifecycle) Dispatched(*JobEntry) {}
func (nopLifecycle) JobAdmitted(int)      {}
func (nopLifecycle) JobFinished(int)      {}

// treePolicy is a single-rbtree policy parameterized by its ordering key.
type treePolicy struct {
	nopLifecycle
	name string
	tree *rbtree.Tree[*JobEntry]
}

func newTreePolicy(name string, less func(a, b *JobEntry) bool) *treePolicy {
	return &treePolicy{name: name, tree: rbtree.New(less)}
}

func (p *treePolicy) Name() string { return p.name }
func (p *treePolicy) Len() int     { return p.tree.Len() }

func (p *treePolicy) Add(j *JobEntry) {
	if j.primary.Attached() {
		panic("sched: job added twice to " + p.name)
	}
	j.primary = insertEntry(p.tree, j, j.primary)
}

func (p *treePolicy) Remove(j *JobEntry) {
	if !j.primary.Attached() {
		panic("sched: removing job not in " + p.name)
	}
	p.tree.Delete(j.primary)
}

// insertEntry inserts j, reusing a detached node handle from a previous
// Remove when one exists — jobs re-enter their policy once per kernel
// dispatch, and handle reuse keeps that hot path allocation-free.
func insertEntry(t *rbtree.Tree[*JobEntry], j *JobEntry, h *rbtree.Node[*JobEntry]) *rbtree.Node[*JobEntry] {
	if h == nil {
		return t.Insert(j)
	}
	t.InsertNode(h)
	return h
}

func (p *treePolicy) Pick() *JobEntry {
	n := p.tree.Min()
	if n == nil {
		return nil
	}
	return n.Item
}

func (p *treePolicy) PickFit(fits func(*JobEntry) bool, maxScan int) *JobEntry {
	scanned := 0
	for n := p.tree.Min(); n != nil && scanned < maxScan; n = n.Next() {
		if fits(n.Item) {
			return n.Item
		}
		scanned++
	}
	return nil
}

// warmFirst breaks a primary-key tie in favour of the job whose weights
// are device-resident. Returning (false, false) when both sides agree
// preserves the pre-residency insertion order, so policies behave exactly
// as before whenever the vram subsystem is off.
func warmFirst(a, b *JobEntry) (less, decided bool) {
	if a.Warm != b.Warm {
		return a.Warm, true
	}
	return false, false
}

// NewFIFO returns first-in-first-out scheduling (oldest arrival first).
func NewFIFO() Policy {
	return newTreePolicy("FIFO", func(a, b *JobEntry) bool {
		if a.Arrival != b.Arrival {
			return a.Arrival < b.Arrival
		}
		less, ok := warmFirst(a, b)
		return ok && less
	})
}

// NewSJF returns shortest-job-first scheduling by total profiled time.
func NewSJF() Policy {
	return newTreePolicy("SJF", func(a, b *JobEntry) bool {
		if a.Total != b.Total {
			return a.Total < b.Total
		}
		less, ok := warmFirst(a, b)
		return ok && less
	})
}

// NewSRPT returns shortest-remaining-processing-time scheduling.
func NewSRPT() Policy {
	return newTreePolicy("SRPT", func(a, b *JobEntry) bool {
		if a.Remaining != b.Remaining {
			return a.Remaining < b.Remaining
		}
		less, ok := warmFirst(a, b)
		return ok && less
	})
}

// NewEDF returns earliest-deadline-first scheduling. Jobs without a
// deadline (zero) sort after all deadlined jobs, FIFO among themselves.
func NewEDF() Policy {
	return newTreePolicy("EDF", func(a, b *JobEntry) bool {
		da, db := a.Deadline, b.Deadline
		if da == 0 {
			da = 1<<63 - 1
		}
		if db == 0 {
			db = 1<<63 - 1
		}
		if da != db {
			return da < db
		}
		if less, ok := warmFirst(a, b); ok {
			return less
		}
		return a.Arrival < b.Arrival
	})
}
