package sched

import (
	"fmt"
	"testing"

	"paella/internal/sim"
)

// benchEntries builds n runnable entries spread over eight clients with
// varied remaining-time keys (the shape the dispatcher feeds the policy
// under load).
func benchEntries(n int) []*JobEntry {
	entries := make([]*JobEntry, n)
	for i := range entries {
		entries[i] = &JobEntry{
			ID:        uint64(i + 1),
			Client:    i % 8,
			Arrival:   sim.Time(i) * sim.Microsecond,
			Total:     sim.Time(1+i%17) * sim.Millisecond,
			Remaining: sim.Time(1+(i*7)%23) * sim.Millisecond,
		}
	}
	return entries
}

func benchPolicies() []struct {
	name string
	mk   func() Policy
} {
	return []struct {
		name string
		mk   func() Policy
	}{
		{"Paella", func() Policy { return NewPaella(10000) }},
		{"SRPT", func() Policy { return NewSRPT() }},
		{"FIFO", func() Policy { return NewFIFO() }},
		{"RR", func() Policy { return NewRR() }},
	}
}

// BenchmarkPick measures the picker's steady-state cost on a populated
// policy (no mutation: Pick is read-only).
func BenchmarkPick(b *testing.B) {
	for _, pc := range benchPolicies() {
		for _, n := range []int{16, 256} {
			b.Run(fmt.Sprintf("%s/n=%d", pc.name, n), func(b *testing.B) {
				p := pc.mk()
				for _, e := range benchEntries(n) {
					p.JobAdmitted(e.Client)
					p.Add(e)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if p.Pick() == nil {
						b.Fatal("empty pick")
					}
				}
			})
		}
	}
}

// BenchmarkPickFit measures the dispatch gate's hot path: PickFit with a
// predicate that rejects the first few candidates (forcing a scan), using a
// preallocated closure exactly as the dispatcher does. The benchmark's
// allocation report is the regression guard: the per-dispatch path must not
// allocate.
func BenchmarkPickFit(b *testing.B) {
	for _, pc := range benchPolicies() {
		for _, n := range []int{16, 256} {
			b.Run(fmt.Sprintf("%s/n=%d", pc.name, n), func(b *testing.B) {
				p := pc.mk()
				for _, e := range benchEntries(n) {
					p.JobAdmitted(e.Client)
					p.Add(e)
				}
				fits := func(e *JobEntry) bool { return e.ID%4 == 0 }
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p.PickFit(fits, 16)
				}
			})
		}
	}
}

// BenchmarkDispatched measures the fairness bookkeeping charged on every
// kernel release (the deficit update in the Paella policy).
func BenchmarkDispatched(b *testing.B) {
	for _, pc := range benchPolicies() {
		b.Run(pc.name, func(b *testing.B) {
			p := pc.mk()
			entries := benchEntries(64)
			for _, e := range entries {
				p.JobAdmitted(e.Client)
				p.Add(e)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Dispatched(entries[i%len(entries)])
			}
		})
	}
}
