package sched

import "paella/internal/rbtree"

// rrPolicy serves clients in round-robin order, FIFO within each client.
// Between consecutive picks of the same client's jobs, every other client
// with runnable work is served once — the classic fair-share baseline the
// paper evaluates as Paella-RR.
type rrPolicy struct {
	nopLifecycle
	clients map[int]*rrClient
	// ring is the service order; clients are appended when they become
	// runnable and rotate to the back after being picked.
	ring []*rrClient
}

type rrClient struct {
	id     int
	jobs   *rbtree.Tree[*JobEntry] // FIFO by arrival
	inRing bool
}

// NewRR returns round-robin-across-clients scheduling.
func NewRR() Policy {
	return &rrPolicy{clients: make(map[int]*rrClient)}
}

func (p *rrPolicy) Name() string { return "RR" }

func (p *rrPolicy) Len() int {
	n := 0
	for _, c := range p.clients {
		n += c.jobs.Len()
	}
	return n
}

func (p *rrPolicy) client(id int) *rrClient {
	c, ok := p.clients[id]
	if !ok {
		c = &rrClient{
			id:   id,
			jobs: rbtree.New(func(a, b *JobEntry) bool { return a.Arrival < b.Arrival }),
		}
		p.clients[id] = c
	}
	return c
}

func (p *rrPolicy) Add(j *JobEntry) {
	if j.primary.Attached() {
		panic("sched: job added twice to RR")
	}
	c := p.client(j.Client)
	j.primary = insertEntry(c.jobs, j, j.primary)
	if !c.inRing {
		c.inRing = true
		p.ring = append(p.ring, c)
	}
}

func (p *rrPolicy) Remove(j *JobEntry) {
	if !j.primary.Attached() {
		panic("sched: removing job not in RR")
	}
	c := p.clients[j.Client]
	c.jobs.Delete(j.primary)
	if c.jobs.Len() == 0 {
		p.dropFromRing(c)
	}
}

func (p *rrPolicy) dropFromRing(c *rrClient) {
	for i, rc := range p.ring {
		if rc == c {
			p.ring = append(p.ring[:i], p.ring[i+1:]...)
			break
		}
	}
	c.inRing = false
}

func (p *rrPolicy) Pick() *JobEntry {
	if len(p.ring) == 0 {
		return nil
	}
	return p.ring[0].jobs.Min().Item
}

func (p *rrPolicy) PickFit(fits func(*JobEntry) bool, maxScan int) *JobEntry {
	scanned := 0
	// Scan clients in ring order, and each client's jobs in FIFO order.
	for _, c := range p.ring {
		for n := c.jobs.Min(); n != nil; n = n.Next() {
			if scanned >= maxScan {
				return nil
			}
			if fits(n.Item) {
				return n.Item
			}
			scanned++
		}
	}
	return nil
}

// Dispatched rotates the served client to the back of the ring.
func (p *rrPolicy) Dispatched(j *JobEntry) {
	if len(p.ring) > 0 && p.ring[0].id == j.Client {
		c := p.ring[0]
		copy(p.ring, p.ring[1:])
		p.ring[len(p.ring)-1] = c
	}
}
