package sched

import (
	"math"
	"math/rand"
	"testing"

	"paella/internal/sim"
)

func job(id uint64, client int, arrival, total, remaining sim.Time) *JobEntry {
	return &JobEntry{ID: id, Client: client, Arrival: arrival, Total: total, Remaining: remaining}
}

func TestFIFOPicksOldest(t *testing.T) {
	p := NewFIFO()
	a := job(1, 0, 30, 10, 10)
	b := job(2, 0, 10, 99, 99)
	c := job(3, 0, 20, 1, 1)
	for _, j := range []*JobEntry{a, b, c} {
		p.Add(j)
	}
	if got := p.Pick(); got != b {
		t.Fatalf("Pick = job %d, want 2", got.ID)
	}
	p.Remove(b)
	if got := p.Pick(); got != c {
		t.Fatalf("Pick = job %d, want 3", got.ID)
	}
	if p.Len() != 2 {
		t.Fatalf("Len = %d", p.Len())
	}
}

func TestSJFPicksShortestTotal(t *testing.T) {
	p := NewSJF()
	long := job(1, 0, 0, 100, 100)
	short := job(2, 0, 50, 10, 10)
	p.Add(long)
	p.Add(short)
	if got := p.Pick(); got != short {
		t.Fatalf("Pick = job %d, want short", got.ID)
	}
}

func TestSRPTPicksShortestRemaining(t *testing.T) {
	p := NewSRPT()
	// A long job that is nearly finished beats a short fresh job.
	nearlyDone := job(1, 0, 0, 100, 5)
	fresh := job(2, 0, 0, 10, 10)
	p.Add(nearlyDone)
	p.Add(fresh)
	if got := p.Pick(); got != nearlyDone {
		t.Fatalf("Pick = job %d, want nearly-done", got.ID)
	}
}

func TestDoubleAddPanics(t *testing.T) {
	for _, p := range []Policy{NewFIFO(), NewSJF(), NewSRPT(), NewRR(), NewPaella(100)} {
		j := job(1, 0, 0, 10, 10)
		if pp, ok := p.(*PaellaPolicy); ok {
			pp.JobAdmitted(0)
		}
		p.Add(j)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: double Add did not panic", p.Name())
				}
			}()
			p.Add(j)
		}()
	}
}

func TestRemoveNotPresentPanics(t *testing.T) {
	for _, p := range []Policy{NewFIFO(), NewRR(), NewPaella(100)} {
		j := job(1, 0, 0, 10, 10)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Remove of absent job did not panic", p.Name())
				}
			}()
			p.Remove(j)
		}()
	}
}

func TestRRCyclesClients(t *testing.T) {
	p := NewRR()
	// Client 0 has three jobs, client 1 has one, client 2 has two.
	jobs := []*JobEntry{
		job(1, 0, 1, 10, 10), job(2, 0, 2, 10, 10), job(3, 0, 3, 10, 10),
		job(4, 1, 1, 10, 10),
		job(5, 2, 1, 10, 10), job(6, 2, 2, 10, 10),
	}
	for _, j := range jobs {
		p.Add(j)
	}
	var order []uint64
	for p.Len() > 0 {
		j := p.Pick()
		order = append(order, j.ID)
		p.Dispatched(j)
		p.Remove(j)
	}
	want := []uint64{1, 4, 5, 2, 6, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("RR order = %v, want %v", order, want)
		}
	}
}

func TestRREmptyPick(t *testing.T) {
	p := NewRR()
	if p.Pick() != nil {
		t.Fatal("Pick on empty RR returned a job")
	}
	j := job(1, 0, 0, 10, 10)
	p.Add(j)
	p.Remove(j)
	if p.Pick() != nil || p.Len() != 0 {
		t.Fatal("RR not empty after add/remove")
	}
}

func TestPaellaSRPTWhenUnderThreshold(t *testing.T) {
	p := NewPaella(1000)
	p.JobAdmitted(0)
	p.JobAdmitted(1)
	a := job(1, 0, 0, 100, 100)
	b := job(2, 1, 0, 10, 10)
	p.Add(a)
	p.Add(b)
	if got := p.Pick(); got != b {
		t.Fatalf("Pick = job %d, want SRPT minimum", got.ID)
	}
}

// TestPaellaFairnessOverride starves a client and checks that the deficit
// mechanism eventually forces its oldest job to run.
func TestPaellaFairnessOverride(t *testing.T) {
	const threshold = 5.0
	p := NewPaella(threshold)
	p.JobAdmitted(0) // short-job client, repeatedly served
	p.JobAdmitted(1) // long-job client, starved by SRPT
	long := job(999, 1, 0, 1e9, 1e9)
	p.Add(long)
	picked := -1
	for i := 0; i < 100; i++ {
		short := job(uint64(i), 0, sim.Time(i), 10, 10)
		p.Add(short)
		got := p.Pick()
		p.Dispatched(got)
		p.Remove(got)
		if got == long {
			picked = i
			break
		}
	}
	if picked < 0 {
		t.Fatal("starved client never served")
	}
	// Client 1 gains 1/2 deficit per dispatch of client 0; it crosses
	// threshold 5 after ~10 dispatches.
	if picked < 8 || picked > 14 {
		t.Fatalf("fairness override at dispatch %d, want ≈10", picked)
	}
}

func TestPaellaThresholdControlsOverridePoint(t *testing.T) {
	overrideAt := func(threshold float64) int {
		p := NewPaella(threshold)
		p.JobAdmitted(0)
		p.JobAdmitted(1)
		long := job(999, 1, 0, 1e9, 1e9)
		p.Add(long)
		for i := 0; i < 10000; i++ {
			short := job(uint64(i), 0, sim.Time(i), 10, 10)
			p.Add(short)
			got := p.Pick()
			p.Dispatched(got)
			p.Remove(got)
			if got == long {
				return i
			}
		}
		return math.MaxInt32
	}
	lo, mid, hi := overrideAt(1), overrideAt(10), overrideAt(100)
	if !(lo < mid && mid < hi) {
		t.Fatalf("override points not ordered: %d, %d, %d", lo, mid, hi)
	}
}

func TestPaellaClientLifecycle(t *testing.T) {
	p := NewPaella(10)
	p.JobAdmitted(7)
	p.JobAdmitted(7)
	if p.ActiveClients() != 1 {
		t.Fatalf("ActiveClients = %d", p.ActiveClients())
	}
	p.JobFinished(7)
	if p.ActiveClients() != 1 {
		t.Fatal("client dropped while jobs remain")
	}
	p.JobFinished(7)
	if p.ActiveClients() != 0 {
		t.Fatal("client not dropped after last job")
	}
	defer func() {
		if recover() == nil {
			t.Error("unmatched JobFinished did not panic")
		}
	}()
	p.JobFinished(7)
}

// naiveDeficit mirrors the paper's conceptual O(n) update for the
// equivalence test.
type naiveDeficit struct {
	deficit map[int]float64
}

func (n *naiveDeficit) dispatched(client int, active []int) {
	share := 1 / float64(len(active))
	for _, c := range active {
		if c == client {
			n.deficit[c] -= 1 - share
		} else {
			n.deficit[c] += share
		}
	}
}

// TestDeficitShiftEquivalence drives the O(1) shifted implementation and
// the naive O(n) update with the same random dispatch sequence and checks
// the effective deficits agree.
func TestDeficitShiftEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const clients = 5
	p := NewPaella(1e18) // never override; we only test accounting
	naive := &naiveDeficit{deficit: map[int]float64{}}
	active := make([]int, clients)
	jobs := make([]*JobEntry, clients)
	for c := 0; c < clients; c++ {
		active[c] = c
		p.JobAdmitted(c)
		jobs[c] = job(uint64(c), c, 0, 10, 10)
		p.Add(jobs[c])
	}
	for step := 0; step < 10000; step++ {
		c := rng.Intn(clients)
		p.Dispatched(jobs[c])
		naive.dispatched(c, active)
	}
	for c := 0; c < clients; c++ {
		got := p.EffectiveDeficit(c)
		want := naive.deficit[c]
		if math.Abs(got-want) > 1e-6*math.Max(1, math.Abs(want)) {
			t.Fatalf("client %d: effective deficit %f, want %f", c, got, want)
		}
	}
}

func TestPaellaRenormalization(t *testing.T) {
	p := NewPaella(1e18)
	p.JobAdmitted(0)
	p.JobAdmitted(1)
	j0 := job(0, 0, 0, 10, 10)
	p.Add(j0)
	// Force the boost over the renormalization limit.
	for i := 0; i < 100; i++ {
		p.Dispatched(j0)
	}
	gapBefore := p.EffectiveDeficit(1) - p.EffectiveDeficit(0)
	// Push the boost over the renormalization limit; the next dispatch
	// triggers the O(n) reset. A uniform shift applied during the reset
	// must not change relative deficits (beyond the dispatch's own effect
	// of widening the gap by exactly 1).
	p.boost = 2e9
	p.Dispatched(j0)
	if p.boost != 0 {
		t.Fatalf("boost not reset: %f", p.boost)
	}
	gapAfter := p.EffectiveDeficit(1) - p.EffectiveDeficit(0)
	if math.Abs(gapAfter-gapBefore-1) > 1e-6 {
		t.Fatalf("renormalization changed relative deficits: gap %f → %f", gapBefore, gapAfter)
	}
}

func TestPaellaPickSkipsJoblessDeficitClients(t *testing.T) {
	p := NewPaella(0.1)
	p.JobAdmitted(0)
	p.JobAdmitted(1)
	// Client 1 accrues deficit but has no runnable job right now.
	j := job(1, 0, 0, 10, 10)
	p.Add(j)
	for i := 0; i < 10; i++ {
		p.Dispatched(j)
	}
	if p.EffectiveDeficit(1) <= 0.1 {
		t.Fatal("client 1 should be over threshold")
	}
	if got := p.Pick(); got != j {
		t.Fatal("Pick must fall back past deficit clients without runnable jobs")
	}
}

func TestPolicyNames(t *testing.T) {
	names := map[string]Policy{
		"FIFO":   NewFIFO(),
		"SJF":    NewSJF(),
		"SRPT":   NewSRPT(),
		"RR":     NewRR(),
		"Paella": NewPaella(10),
	}
	for want, p := range names {
		if p.Name() != want {
			t.Errorf("Name = %q, want %q", p.Name(), want)
		}
	}
}

func BenchmarkPaellaPickDispatch(b *testing.B) {
	p := NewPaella(100)
	const jobs = 1024
	entries := make([]*JobEntry, jobs)
	for i := 0; i < jobs; i++ {
		client := i % 16
		p.JobAdmitted(client)
		entries[i] = job(uint64(i), client, sim.Time(i), sim.Time(i%100), sim.Time(i%100))
		p.Add(entries[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := p.Pick()
		p.Dispatched(j)
		p.Remove(j)
		j.Remaining = sim.Time((int(j.Remaining) + 17) % 1000)
		p.Add(j)
	}
}
