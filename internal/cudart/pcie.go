package cudart

import (
	"fmt"

	"paella/internal/sim"
	"paella/internal/telemetry"
	"paella/internal/trace"
)

// PCIeLink arbitrates a device's DMA copy engines: one engine per transfer
// direction (real NVIDIA parts expose separate H2D and D2H copy engines on
// one PCIe link), each strictly FIFO at the link's sustained bandwidth.
//
// The analytic memcpy model elsewhere in this package gives every transfer
// the full link to itself — adequate while the only PCIe traffic is a
// job's own input/output tensors. Once cold-start weight loads enter the
// picture (internal/vram), transfers contend: a multi-hundred-megabyte
// weight copy occupies the H2D engine for milliseconds, and the input
// tensors queued behind it wait. Routing all transfers of one device
// through a shared PCIeLink models exactly that — there is no separate
// free-bandwidth path for weight traffic.
type PCIeLink struct {
	env *sim.Env
	// latency is the fixed DMA setup cost per transfer.
	latency sim.Time
	// bytesPerNs is the sustained link bandwidth.
	bytesPerNs float64
	// factor scales the effective bandwidth (1 = healthy). Fault injection
	// lowers it during a brownout window — a PCIe AER link retrain or a
	// Gen-speed downshift; transfers enqueued during the window take
	// proportionally longer.
	factor float64
	// busyUntil tracks when each direction's engine frees up.
	busyUntil [3]sim.Time

	stats LinkStats

	// rec is the structured tracing recorder (nil = disabled); each DMA
	// engine gets its own timeline track, and backlog carries the
	// per-direction queue-depth-in-time series.
	rec       *trace.Recorder
	engTracks [3]trace.TrackID
	backlog   trace.CounterID

	// mt is the optional windowed telemetry meter (nil = disabled); the
	// per-direction backlog gauges are sampled wherever the trace counter
	// is, plus a transfer-bytes histogram.
	mt        *telemetry.Meter
	mtBacklog [3]telemetry.MetricID
	mtBytes   telemetry.MetricID
}

// engSeries names the per-direction backlog series, indexed by MemcpyKind.
var engSeries = [3]string{"h2d", "d2h", "d2d"}

// LinkStats counts link activity.
type LinkStats struct {
	Transfers uint64
	Bytes     int64
	// QueuedNs integrates the time transfers spent waiting for their
	// engine (contention; zero on an idle link).
	QueuedNs sim.Time
	// BusyNs integrates engine occupancy across directions.
	BusyNs sim.Time
}

// NewPCIeLink builds a link on the simulation environment with the given
// per-transfer setup latency and sustained bandwidth (bytes per
// nanosecond; ≈12 for PCIe 3 x16).
func NewPCIeLink(env *sim.Env, latency sim.Time, bytesPerNs float64) *PCIeLink {
	if bytesPerNs <= 0 {
		panic(fmt.Sprintf("cudart: PCIe bandwidth %f bytes/ns", bytesPerNs))
	}
	l := &PCIeLink{env: env, latency: latency, bytesPerNs: bytesPerNs, factor: 1}
	if rec := trace.FromEnv(env); rec != nil {
		l.rec = rec
		proc := rec.Process("PCIe")
		l.engTracks[HostToDevice] = rec.Thread(proc, "H2D")
		l.engTracks[DeviceToHost] = rec.Thread(proc, "D2H")
		l.engTracks[DeviceToDevice] = rec.Thread(proc, "D2D")
		l.backlog = rec.Counter(proc, "engine backlog ns")
	}
	if mt := telemetry.FromEnv(env); mt != nil {
		l.mt = mt
		for i, s := range engSeries {
			l.mtBacklog[i] = mt.Gauge("pcie/backlog_ns/" + s)
		}
		l.mtBytes = mt.Histogram("pcie/transfer_bytes")
	}
	return l
}

// Duration returns the uncontended wire time of one transfer at the link's
// current effective bandwidth.
func (l *PCIeLink) Duration(bytes int) sim.Time {
	return l.latency + sim.Time(float64(bytes)/(l.bytesPerNs*l.factor))
}

// SetBandwidthFactor scales the link's effective bandwidth (fault
// injection: 1 = healthy, 0.25 = a Gen-speed downshift to a quarter of the
// sustained rate). Transfers already enqueued keep their computed finish
// times; the factor applies to subsequent enqueues. Panics on non-positive
// factors.
func (l *PCIeLink) SetBandwidthFactor(f float64) {
	if f <= 0 {
		panic(fmt.Sprintf("cudart: PCIe bandwidth factor %f", f))
	}
	l.factor = f
	if l.rec != nil {
		l.rec.InstantArgs(l.engTracks[HostToDevice], "bandwidth-factor", "fault",
			l.env.Now(), trace.Int("permille", int64(f*1000)))
	}
}

// BandwidthFactor returns the current effective-bandwidth scale.
func (l *PCIeLink) BandwidthFactor() float64 { return l.factor }

// Transfer enqueues a DMA of the given size and direction; done fires when
// it completes. Transfers of one direction serialize FIFO behind each
// other (a weight prefetch and an input-tensor copy share the H2D engine);
// opposite directions proceed concurrently, as on real hardware.
func (l *PCIeLink) Transfer(kind MemcpyKind, bytes int, done func()) {
	if bytes < 0 {
		panic("cudart: negative transfer size")
	}
	engine := int(kind)
	if engine < 0 || engine >= len(l.busyUntil) {
		panic(fmt.Sprintf("cudart: transfer direction %d", kind))
	}
	now := l.env.Now()
	start := now
	if l.busyUntil[engine] > start {
		start = l.busyUntil[engine]
	}
	dur := l.Duration(bytes)
	l.busyUntil[engine] = start + dur
	l.stats.Transfers++
	l.stats.Bytes += int64(bytes)
	l.stats.QueuedNs += start - now
	l.stats.BusyNs += dur
	if l.rec != nil {
		// The wire-occupancy interval on the engine's track (transfers of
		// one direction never overlap — the engine is FIFO), plus the
		// engine's backlog at enqueue time.
		l.rec.SpanArgs(l.engTracks[engine], "dma", "pcie", start, start+dur,
			trace.Str("dir", kind.String()), trace.Int("bytes", int64(bytes)),
			trace.Dur("queued_ns", start-now))
		l.rec.Sample(l.backlog, engSeries[engine], now, float64(l.busyUntil[engine]-now))
	}
	if l.mt != nil {
		l.mt.Set(l.mtBacklog[engine], now, float64(l.busyUntil[engine]-now))
		l.mt.Observe(l.mtBytes, now, float64(bytes))
	}
	l.env.At(start+dur, done)
}

// BusyUntil returns when the given direction's engine frees up (≤ now when
// idle) — scheduling heuristics may use it to predict load completion.
func (l *PCIeLink) BusyUntil(kind MemcpyKind) sim.Time { return l.busyUntil[int(kind)] }

// Stats returns a snapshot of link counters.
func (l *PCIeLink) Stats() LinkStats { return l.stats }
