package cudart

import (
	"testing"

	"paella/internal/sim"
)

// TestPCIeLinkSerializesOneDirection: two same-direction transfers issued
// at the same instant complete back to back, not in parallel.
func TestPCIeLinkSerializesOneDirection(t *testing.T) {
	env := sim.NewEnv()
	l := NewPCIeLink(env, 10*sim.Microsecond, 12.0)
	bytes := 12_000_000 // 1ms of wire time at 12 B/ns
	var t1, t2 sim.Time
	l.Transfer(HostToDevice, bytes, func() { t1 = env.Now() })
	l.Transfer(HostToDevice, bytes, func() { t2 = env.Now() })
	env.Run()
	per := l.Duration(bytes)
	if t1 != per {
		t.Fatalf("first transfer done at %v, want %v", t1, per)
	}
	if t2 != 2*per {
		t.Fatalf("second transfer done at %v, want %v (serialized)", t2, 2*per)
	}
	if q := l.Stats().QueuedNs; q != per {
		t.Fatalf("queued time %v, want %v", q, per)
	}
}

// TestPCIeLinkDirectionsConcurrent: H2D and D2H use separate copy engines
// and do not contend.
func TestPCIeLinkDirectionsConcurrent(t *testing.T) {
	env := sim.NewEnv()
	l := NewPCIeLink(env, 10*sim.Microsecond, 12.0)
	bytes := 12_000_000
	var up, down sim.Time
	l.Transfer(HostToDevice, bytes, func() { up = env.Now() })
	l.Transfer(DeviceToHost, bytes, func() { down = env.Now() })
	env.Run()
	per := l.Duration(bytes)
	if up != per || down != per {
		t.Fatalf("h2d done %v, d2h done %v, want both %v", up, down, per)
	}
}

// TestPCIeLinkWeightLoadDelaysTensor: a large weight-style transfer ahead
// of a small tensor copy delays the tensor by the weight's full wire time —
// the cold-start interference the vram subsystem exists to model.
func TestPCIeLinkWeightLoadDelaysTensor(t *testing.T) {
	env := sim.NewEnv()
	l := NewPCIeLink(env, 10*sim.Microsecond, 12.0)
	weights := 96 << 20 // ≈8.4ms on the wire
	tensor := 602112    // a 224×224×3 float32 image
	var tensorDone sim.Time
	l.Transfer(HostToDevice, weights, func() {})
	l.Transfer(HostToDevice, tensor, func() { tensorDone = env.Now() })
	env.Run()
	want := l.Duration(weights) + l.Duration(tensor)
	if tensorDone != want {
		t.Fatalf("tensor done at %v, want %v (queued behind weights)", tensorDone, want)
	}
	alone := l.Duration(tensor)
	if tensorDone < 10*alone {
		t.Fatalf("tensor copy saw no meaningful interference: %v vs %v alone", tensorDone, alone)
	}
}

// TestPCIeLinkIdleGap: a transfer issued after the engine went idle starts
// immediately (busyUntil in the past is not a queue).
func TestPCIeLinkIdleGap(t *testing.T) {
	env := sim.NewEnv()
	l := NewPCIeLink(env, 0, 1.0)
	var second sim.Time
	l.Transfer(HostToDevice, 100, func() {})
	env.At(1000, func() {
		l.Transfer(HostToDevice, 100, func() { second = env.Now() })
	})
	env.Run()
	if second != 1100 {
		t.Fatalf("second transfer done at %v, want 1100", second)
	}
	if q := l.Stats().QueuedNs; q != 0 {
		t.Fatalf("queued time %v on an idle link", q)
	}
}
