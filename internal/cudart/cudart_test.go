package cudart

import (
	"testing"

	"paella/internal/gpu"
	"paella/internal/sim"
)

// zeroCost returns a config with all host costs zeroed so ordering tests
// have exact timing.
func zeroCost() Config {
	return Config{PCIeBytesPerNs: 10}
}

func newCtx(env *sim.Env, sms, queues int, cfg Config) (*Context, *gpu.Device) {
	dcfg := gpu.Config{
		Name: "t", Microarch: gpu.Kepler, NumSMs: sms,
		SM:          gpu.SMResources{MaxBlocks: 4, MaxThreads: 1024, MaxRegisters: 65536, MaxSharedMem: 48 << 10},
		NumHWQueues: queues,
	}
	dev := gpu.NewDevice(env, dcfg, nil)
	return NewContext(env, dev, cfg), dev
}

func kern(name string, blocks int, dur sim.Time) *gpu.KernelSpec {
	return &gpu.KernelSpec{Name: name, Blocks: blocks, ThreadsPerBlock: 256, RegsPerThread: 8, BlockDuration: dur}
}

func TestStreamSerializesKernels(t *testing.T) {
	env := sim.NewEnv()
	ctx, _ := newCtx(env, 4, 4, zeroCost())
	s := ctx.StreamCreate()
	var doneAt sim.Time
	env.Spawn("job", func(p *sim.Proc) {
		// Three kernels on one stream must run back to back even though the
		// device has room for all of them at once.
		s.LaunchKernel(p, kern("a", 1, 10*sim.Microsecond), LaunchOpts{})
		s.LaunchKernel(p, kern("b", 1, 10*sim.Microsecond), LaunchOpts{})
		s.LaunchKernel(p, kern("c", 1, 10*sim.Microsecond), LaunchOpts{})
		s.Synchronize(p)
		doneAt = env.Now()
	})
	env.Run()
	if doneAt != 30*sim.Microsecond {
		t.Fatalf("stream drained at %v, want 30µs", doneAt)
	}
}

func TestIndependentStreamsOverlap(t *testing.T) {
	env := sim.NewEnv()
	ctx, _ := newCtx(env, 4, 4, zeroCost())
	s1, s2 := ctx.StreamCreate(), ctx.StreamCreate()
	var doneAt sim.Time
	env.Spawn("job", func(p *sim.Proc) {
		s1.LaunchKernel(p, kern("a", 1, 10*sim.Microsecond), LaunchOpts{})
		s2.LaunchKernel(p, kern("b", 1, 10*sim.Microsecond), LaunchOpts{})
		ctx.DeviceSynchronize(p)
		doneAt = env.Now()
	})
	env.Run()
	if doneAt != 10*sim.Microsecond {
		t.Fatalf("device drained at %v, want 10µs (overlap)", doneAt)
	}
}

func TestDefaultStreamSerializesAll(t *testing.T) {
	env := sim.NewEnv()
	ctx, _ := newCtx(env, 4, 4, zeroCost())
	s1 := ctx.StreamCreate()
	def := ctx.DefaultStream()
	var doneAt sim.Time
	env.Spawn("job", func(p *sim.Proc) {
		s1.LaunchKernel(p, kern("a", 1, 10*sim.Microsecond), LaunchOpts{})
		// Legacy semantics: this default-stream kernel must wait for "a",
		// and "b" issued afterwards on s1 must wait for it.
		def.LaunchKernel(p, kern("d", 1, 10*sim.Microsecond), LaunchOpts{})
		s1.LaunchKernel(p, kern("b", 1, 10*sim.Microsecond), LaunchOpts{})
		ctx.DeviceSynchronize(p)
		doneAt = env.Now()
	})
	env.Run()
	if doneAt != 30*sim.Microsecond {
		t.Fatalf("device drained at %v, want 30µs (full serialization)", doneAt)
	}
}

func TestMemcpyOrdersWithKernels(t *testing.T) {
	env := sim.NewEnv()
	cfg := zeroCost()
	cfg.MemcpyLatency = 5 * sim.Microsecond
	cfg.PCIeBytesPerNs = 10 // 10 bytes/ns
	ctx, _ := newCtx(env, 4, 4, cfg)
	s := ctx.StreamCreate()
	var doneAt sim.Time
	env.Spawn("job", func(p *sim.Proc) {
		s.MemcpyAsync(p, HostToDevice, 1000) // 5µs + 100ns
		s.LaunchKernel(p, kern("k", 1, 10*sim.Microsecond), LaunchOpts{})
		s.MemcpyAsync(p, DeviceToHost, 1000)
		s.Synchronize(p)
		doneAt = env.Now()
	})
	env.Run()
	want := 2*(5*sim.Microsecond+100) + 10*sim.Microsecond
	if doneAt != want {
		t.Fatalf("drained at %v, want %v", doneAt, want)
	}
}

func TestEventRecordFiresInOrder(t *testing.T) {
	env := sim.NewEnv()
	ctx, _ := newCtx(env, 4, 4, zeroCost())
	s := ctx.StreamCreate()
	var ev *Event
	var sawAt sim.Time = -1
	env.Spawn("job", func(p *sim.Proc) {
		s.LaunchKernel(p, kern("a", 1, 10*sim.Microsecond), LaunchOpts{})
		ev = s.EventRecord()
		s.LaunchKernel(p, kern("b", 1, 10*sim.Microsecond), LaunchOpts{})
	})
	env.Spawn("watch", func(p *sim.Proc) {
		p.Sleep(1) // let the job issue
		p.Wait(evComp(ev))
		sawAt = env.Now()
	})
	env.Run()
	if sawAt != 10*sim.Microsecond {
		t.Fatalf("event fired at %v, want 10µs", sawAt)
	}
}

// evComp gives tests access to the event's completion.
func evComp(e *Event) *sim.Completion { return e.comp }

func TestAddCallbackSerializedCost(t *testing.T) {
	env := sim.NewEnv()
	cfg := zeroCost()
	cfg.CallbackCost = 35 * sim.Microsecond
	ctx, _ := newCtx(env, 4, 4, cfg)
	s1, s2 := ctx.StreamCreate(), ctx.StreamCreate()
	var t1, t2 sim.Time
	env.Spawn("job", func(p *sim.Proc) {
		s1.LaunchKernel(p, kern("a", 1, 10*sim.Microsecond), LaunchOpts{})
		s1.AddCallback(func() { t1 = env.Now() })
		s2.LaunchKernel(p, kern("b", 1, 10*sim.Microsecond), LaunchOpts{})
		s2.AddCallback(func() { t2 = env.Now() })
		ctx.DeviceSynchronize(p)
	})
	env.Run()
	// Both kernels finish at 10µs; the two callbacks serialize on one
	// executor: 45µs and 80µs.
	if t1 != 45*sim.Microsecond {
		t.Fatalf("first callback at %v, want 45µs", t1)
	}
	if t2 != 80*sim.Microsecond {
		t.Fatalf("second callback at %v, want 80µs", t2)
	}
	if ctx.Stats().Callbacks != 2 {
		t.Fatalf("Callbacks = %d", ctx.Stats().Callbacks)
	}
}

func TestLaunchCallCostChargesIssuer(t *testing.T) {
	env := sim.NewEnv()
	cfg := zeroCost()
	cfg.LaunchCallCost = 6 * sim.Microsecond
	ctx, _ := newCtx(env, 4, 4, cfg)
	s := ctx.StreamCreate()
	var issuedAt sim.Time
	env.Spawn("job", func(p *sim.Proc) {
		s.LaunchKernel(p, kern("a", 1, sim.Microsecond), LaunchOpts{})
		s.LaunchKernel(p, kern("b", 1, sim.Microsecond), LaunchOpts{})
		issuedAt = env.Now()
	})
	env.Run()
	if issuedAt != 12*sim.Microsecond {
		t.Fatalf("issue completed at %v, want 12µs", issuedAt)
	}
}

// TestSharedQueueFalseDependency reproduces §5.2's pathology: two
// independent streams forced onto the same hardware queue serialize even
// though the device has free SMs.
func TestSharedQueueFalseDependency(t *testing.T) {
	run := func(queues int) sim.Time {
		env := sim.NewEnv()
		ctx, _ := newCtx(env, 4, queues, zeroCost())
		// Two chains of dependent kernels on separate streams.
		s1, s2 := ctx.StreamCreate(), ctx.StreamCreate()
		var doneAt sim.Time
		env.Spawn("job", func(p *sim.Proc) {
			for i := 0; i < 3; i++ {
				s1.LaunchKernel(p, kern("a", 1, 10*sim.Microsecond), LaunchOpts{})
			}
			for i := 0; i < 3; i++ {
				s2.LaunchKernel(p, kern("b", 1, 10*sim.Microsecond), LaunchOpts{})
			}
			ctx.DeviceSynchronize(p)
			doneAt = env.Now()
		})
		env.Run()
		return doneAt
	}
	// With one hardware queue, stream 2's first kernel sits behind stream
	// 1's dependent chain: it can only start once a3 has been *placed* at
	// t=20µs (a placed kernel leaves the queue), so the b chain finishes at
	// 50µs instead of 30µs. With two queues the chains fully overlap
	// (30µs). Stream ids are 1 and 2; with 2 queues they map to different
	// queues.
	if d := run(1); d != 50*sim.Microsecond {
		t.Fatalf("1 queue: drained at %v, want 50µs", d)
	}
	if d := run(2); d != 30*sim.Microsecond {
		t.Fatalf("2 queues: drained at %v, want 30µs", d)
	}
}

type recordingHook struct {
	kernels []string
	copies  int
	pending []func()
}

func (h *recordingHook) HookKernel(streamID int, spec *gpu.KernelSpec, complete func()) {
	h.kernels = append(h.kernels, spec.Name)
	h.pending = append(h.pending, complete)
}

func (h *recordingHook) HookMemcpy(streamID int, kind MemcpyKind, bytes int, complete func()) {
	h.copies++
	h.pending = append(h.pending, complete)
}

func TestHookInterceptsEverything(t *testing.T) {
	env := sim.NewEnv()
	ctx, dev := newCtx(env, 4, 4, zeroCost())
	h := &recordingHook{}
	ctx.SetHook(h)
	s := ctx.StreamCreate()
	synced := false
	env.Spawn("job", func(p *sim.Proc) {
		s.MemcpyAsync(p, HostToDevice, 100)
		s.LaunchKernel(p, kern("a", 1, sim.Microsecond), LaunchOpts{})
		s.LaunchKernel(p, kern("b", 1, sim.Microsecond), LaunchOpts{})
		s.MemcpyAsync(p, DeviceToHost, 100)
		ctx.DeviceSynchronize(p)
		synced = true
	})
	env.RunUntil(sim.Millisecond)
	if len(h.kernels) != 2 || h.copies != 2 {
		t.Fatalf("hook saw %v kernels, %d copies", h.kernels, h.copies)
	}
	if dev.Stats().KernelsSubmitted != 0 {
		t.Fatal("hooked kernels leaked to the hardware queues")
	}
	if synced {
		t.Fatal("DeviceSynchronize returned before hook completed ops")
	}
	// Complete the ops in issue order, as the dispatcher would.
	for _, fn := range h.pending {
		fn()
	}
	env.Run()
	if !synced {
		t.Fatal("DeviceSynchronize never returned")
	}
}

func TestSetHookWithInflightPanics(t *testing.T) {
	env := sim.NewEnv()
	ctx, _ := newCtx(env, 4, 4, zeroCost())
	s := ctx.StreamCreate()
	env.Spawn("job", func(p *sim.Proc) {
		s.LaunchKernel(p, kern("a", 1, 100*sim.Microsecond), LaunchOpts{})
	})
	env.RunUntil(10 * sim.Microsecond)
	defer func() {
		if recover() == nil {
			t.Error("SetHook with in-flight ops did not panic")
		}
	}()
	ctx.SetHook(&recordingHook{})
}

func TestKernelIDsUnique(t *testing.T) {
	env := sim.NewEnv()
	ctx, _ := newCtx(env, 4, 4, zeroCost())
	seen := map[uint32]bool{}
	for i := 0; i < 100; i++ {
		id := ctx.NextKernelID()
		if id == 0 || seen[id] {
			t.Fatalf("duplicate or zero kernel id %d", id)
		}
		seen[id] = true
	}
}

func TestMemcpyKindString(t *testing.T) {
	if HostToDevice.String() != "cudaMemcpyHostToDevice" ||
		DeviceToHost.String() != "cudaMemcpyDeviceToHost" ||
		DeviceToDevice.String() != "cudaMemcpyDeviceToDevice" {
		t.Error("unexpected MemcpyKind strings")
	}
}

func TestDeviceSynchronizeIdleReturnsImmediately(t *testing.T) {
	env := sim.NewEnv()
	cfg := zeroCost()
	cfg.SyncCallCost = 8 * sim.Microsecond
	ctx, _ := newCtx(env, 4, 4, cfg)
	var at sim.Time = -1
	env.Spawn("job", func(p *sim.Proc) {
		ctx.DeviceSynchronize(p)
		at = env.Now()
	})
	env.Run()
	if at != 8*sim.Microsecond {
		t.Fatalf("sync returned at %v, want just the call cost 8µs", at)
	}
}

func TestEventOnEmptyStreamFiresImmediately(t *testing.T) {
	env := sim.NewEnv()
	ctx, _ := newCtx(env, 2, 2, zeroCost())
	s := ctx.StreamCreate()
	ev := s.EventRecord()
	env.Run()
	if !ev.Done() {
		t.Fatal("event on empty stream never fired")
	}
	if env.Now() != 0 {
		t.Fatalf("event fired at %v, want 0", env.Now())
	}
}

func TestCallbackOnEmptyStream(t *testing.T) {
	env := sim.NewEnv()
	cfg := zeroCost()
	cfg.CallbackCost = 10 * sim.Microsecond
	ctx, _ := newCtx(env, 2, 2, cfg)
	s := ctx.StreamCreate()
	var at sim.Time = -1
	s.AddCallback(func() { at = env.Now() })
	env.Run()
	if at != 10*sim.Microsecond {
		t.Fatalf("callback at %v, want 10µs (executor cost only)", at)
	}
}

func TestStreamSynchronizeWhileEmpty(t *testing.T) {
	env := sim.NewEnv()
	cfg := zeroCost()
	cfg.SyncCallCost = 5 * sim.Microsecond
	ctx, _ := newCtx(env, 2, 2, cfg)
	s := ctx.StreamCreate()
	var at sim.Time = -1
	env.Spawn("sync", func(p *sim.Proc) {
		s.Synchronize(p)
		at = env.Now()
	})
	env.Run()
	if at != 5*sim.Microsecond {
		t.Fatalf("sync returned at %v, want just the call cost", at)
	}
}

func TestConcurrentSynchronizers(t *testing.T) {
	env := sim.NewEnv()
	ctx, _ := newCtx(env, 4, 4, zeroCost())
	s := ctx.StreamCreate()
	woke := 0
	env.Spawn("issuer", func(p *sim.Proc) {
		s.LaunchKernel(p, kern("k", 1, 50*sim.Microsecond), LaunchOpts{})
	})
	for i := 0; i < 3; i++ {
		env.Spawn("waiter", func(p *sim.Proc) {
			p.Sleep(1)
			s.Synchronize(p)
			if env.Now() < 50*sim.Microsecond {
				t.Errorf("waiter woke at %v before kernel end", env.Now())
			}
			woke++
		})
	}
	env.Run()
	if woke != 3 {
		t.Fatalf("woke %d of 3 synchronizers", woke)
	}
}

func TestPendingCounts(t *testing.T) {
	env := sim.NewEnv()
	ctx, _ := newCtx(env, 4, 4, zeroCost())
	s := ctx.StreamCreate()
	env.Spawn("issuer", func(p *sim.Proc) {
		s.LaunchKernel(p, kern("a", 1, 10*sim.Microsecond), LaunchOpts{})
		s.LaunchKernel(p, kern("b", 1, 10*sim.Microsecond), LaunchOpts{})
		if s.Pending() != 2 {
			t.Errorf("Pending = %d, want 2", s.Pending())
		}
	})
	env.Run()
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after drain", s.Pending())
	}
	st := ctx.Stats()
	if st.KernelLaunches != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStreamLookupPanics(t *testing.T) {
	env := sim.NewEnv()
	ctx, _ := newCtx(env, 2, 2, zeroCost())
	if got := ctx.Stream(0); got != ctx.DefaultStream() {
		t.Fatal("Stream(0) is not the default stream")
	}
	defer func() {
		if recover() == nil {
			t.Error("Stream(99) did not panic")
		}
	}()
	ctx.Stream(99)
}
