package cudart

import (
	"fmt"

	"paella/internal/gpu"
	"paella/internal/sim"
	"paella/internal/trace"
)

type opKind int

const (
	opKernel opKind = iota
	opMemcpy
	opCallback
	opEvent
)

// op is one operation issued to a stream. Ops within a stream execute
// strictly in order; an op additionally waits for its cross-stream deps
// (legacy default-stream serialization).
type op struct {
	kind    opKind
	stream  *Stream
	deps    []*op
	done    bool
	started bool

	// kernel
	launch *gpu.Launch
	// memcpy
	bytes     int
	direction MemcpyKind
	// callback
	fn func()
	// event
	event *Event
}

func (o *op) depsDone() bool {
	for _, d := range o.deps {
		if !d.done {
			return false
		}
	}
	return true
}

// ready implements the CUDA ordering rule: an op may run only when it is
// the oldest incomplete op of its stream and its cross-stream dependencies
// are satisfied.
func (o *op) ready() bool {
	p := o.stream.pending
	return len(p) > 0 && p[0] == o && o.depsDone()
}

// finish marks the op complete and advances the stream.
func (o *op) finish() {
	if o.done {
		panic("cudart: op finished twice")
	}
	s := o.stream
	if len(s.pending) == 0 || s.pending[0] != o {
		panic(fmt.Sprintf("cudart: op on stream %d completed out of order", s.id))
	}
	o.done = true
	copy(s.pending, s.pending[1:])
	s.pending[len(s.pending)-1] = nil
	s.pending = s.pending[:len(s.pending)-1]
	s.ctx.opFinished()
	if len(s.pending) == 0 {
		waiters := s.drainWaiters
		s.drainWaiters = nil
		for _, fn := range waiters {
			s.ctx.env.After(0, fn)
		}
	}
	s.advance()
	// Freed dependencies may unblock kernels of other streams sitting in
	// hardware queues.
	s.ctx.dev.Kick()
	for _, other := range s.ctx.streams {
		if other != s {
			other.advance()
		}
	}
}

// Event is a CUDA event: recorded into a stream, it fires when all prior
// work in that stream has completed.
type Event struct {
	comp *sim.Completion
}

// Done reports whether the event has fired.
func (e *Event) Done() bool { return e.comp.Fired() }

// OnFire registers fn to run when the event fires (immediately if it
// already has).
func (e *Event) OnFire(fn func()) { e.comp.OnFire(fn) }

// Completion exposes the underlying one-shot for process waits.
func (e *Event) Completion() *sim.Completion { return e.comp }

// Stream is a CUDA stream: a FIFO sequence of device operations. Stream 0
// is the legacy default stream and serializes against all other streams of
// its context.
type Stream struct {
	ctx          *Context
	id           int
	pending      []*op
	drainWaiters []func()
}

func newStream(c *Context, id int) *Stream {
	return &Stream{ctx: c, id: id}
}

// ID returns the stream identifier (0 for the default stream).
func (s *Stream) ID() int { return s.id }

// Pending returns the number of incomplete operations on the stream.
func (s *Stream) Pending() int { return len(s.pending) }

// hwQueue maps the stream onto a hardware queue, modelling the driver's
// stream→queue assignment (streams beyond the queue count share queues,
// which reintroduces false dependencies — §5.2).
func (s *Stream) hwQueue() int { return s.id % s.ctx.dev.NumQueues() }

// legacyDeps computes cross-stream dependencies for legacy default-stream
// semantics: default-stream ops wait for everything outstanding; other ops
// wait for any outstanding default-stream work.
func (s *Stream) legacyDeps() []*op {
	var deps []*op
	if s.id == 0 {
		for _, other := range s.ctx.streams {
			if other.id == 0 {
				continue
			}
			deps = append(deps, other.pending...)
		}
		return deps
	}
	def := s.ctx.streams[0]
	if n := len(def.pending); n > 0 {
		deps = append(deps, def.pending[n-1])
	}
	return deps
}

func (s *Stream) push(o *op) {
	o.deps = s.legacyDeps()
	s.pending = append(s.pending, o)
	s.ctx.outstanding++
}

// LaunchOpts carries the optional identity fields of a kernel launch.
type LaunchOpts struct {
	// Instrumented marks the kernel as carrying Paella's notification
	// instrumentation.
	Instrumented bool
	// KernelID is the dispatcher-assigned unique id; zero lets the context
	// mint one.
	KernelID uint32
	// JobTag labels the owning job in device traces.
	JobTag string
}

// LaunchKernel issues a kernel on the stream from process p, charging the
// host-side launch-call cost. In direct mode the launch enters a hardware
// queue immediately (in issue order, ready or not); in hooked mode it is
// handed to the interception layer.
func (s *Stream) LaunchKernel(p *sim.Proc, spec *gpu.KernelSpec, opts LaunchOpts) {
	if p != nil && s.ctx.cfg.LaunchCallCost > 0 {
		p.Sleep(s.ctx.cfg.LaunchCallCost)
	}
	s.LaunchKernelAsync(spec, opts)
}

// LaunchKernelAsync issues a kernel without charging host cost (used by the
// Paella dispatcher, whose dispatch cost is modelled separately).
func (s *Stream) LaunchKernelAsync(spec *gpu.KernelSpec, opts LaunchOpts) {
	s.ctx.stats.KernelLaunches++
	o := &op{kind: opKernel, stream: s}
	if s.ctx.hook != nil {
		s.push(o)
		s.ctx.hook.HookKernel(s.id, spec, o.finish)
		return
	}
	id := opts.KernelID
	if id == 0 {
		id = s.ctx.NextKernelID()
	}
	l := &gpu.Launch{
		Spec:         spec,
		KernelID:     id,
		JobTag:       opts.JobTag,
		Instrumented: opts.Instrumented,
	}
	l.Ready = o.ready
	l.OnComplete = o.finish
	if rec := s.ctx.rec; rec != nil {
		// Issue→completion span on the virtual stream's track: the host's
		// view of the kernel, including hardware-queue wait.
		issued := s.ctx.env.Now()
		tr := s.ctx.streamTrack(s.id)
		l.OnComplete = func() {
			rec.SpanArgs(tr, spec.Name, "stream-kernel", issued, s.ctx.env.Now(),
				trace.Str("job", opts.JobTag), trace.Int("kernel_id", int64(id)))
			o.finish()
		}
	}
	o.launch = l
	s.push(o)
	s.ctx.dev.Submit(s.hwQueue(), l)
}

// MemcpyAsync issues an asynchronous transfer of the given size on the
// stream from process p, charging the issue cost.
func (s *Stream) MemcpyAsync(p *sim.Proc, kind MemcpyKind, bytes int) {
	if p != nil && s.ctx.cfg.MemcpyIssueCost > 0 {
		p.Sleep(s.ctx.cfg.MemcpyIssueCost)
	}
	s.ctx.stats.Memcpys++
	o := &op{kind: opMemcpy, stream: s, bytes: bytes, direction: kind}
	if s.ctx.hook != nil {
		// The hook owns the transfer; mark it started so advance() never
		// schedules a duplicate completion.
		o.started = true
		s.push(o)
		s.ctx.hook.HookMemcpy(s.id, kind, bytes, o.finish)
		return
	}
	s.push(o)
	s.advance()
}

// AddCallback registers fn to run (on the runtime's serialized callback
// executor) once all previously issued work on the stream completes. The
// stream blocks until the callback returns, matching cudaStreamAddCallback.
func (s *Stream) AddCallback(fn func()) {
	o := &op{kind: opCallback, stream: s, fn: fn}
	s.push(o)
	s.advance()
}

// EventRecord records an event that fires when all prior work on the
// stream completes.
func (s *Stream) EventRecord() *Event {
	e := &Event{comp: sim.NewCompletion(s.ctx.env)}
	o := &op{kind: opEvent, stream: s, event: e}
	s.push(o)
	s.advance()
	return e
}

// Synchronize blocks process p until all work issued on the stream has
// completed, charging the sync-call host cost.
func (s *Stream) Synchronize(p *sim.Proc) {
	s.ctx.stats.Syncs++
	p.Sleep(s.ctx.cfg.SyncCallCost)
	for len(s.pending) > 0 {
		done := sim.NewCompletion(s.ctx.env)
		s.drainWaiters = append(s.drainWaiters, done.Fire)
		p.Wait(done)
	}
}

// advance starts whatever work at the head of the stream is ready to run.
// Kernel ops progress on the device's own schedule; memcpy ops start their
// transfer; events and callbacks complete inline.
func (s *Stream) advance() {
	for len(s.pending) > 0 {
		o := s.pending[0]
		if !o.depsDone() {
			return
		}
		switch o.kind {
		case opKernel:
			// The device owns kernel progress (it polls o.ready); nothing
			// to do locally.
			return
		case opMemcpy:
			if !o.started {
				o.started = true
				dur := s.ctx.memcpyDuration(o.bytes)
				if rec := s.ctx.rec; rec != nil {
					now := s.ctx.env.Now()
					rec.SpanArgs(s.ctx.streamTrack(s.id), "memcpy", "stream-memcpy",
						now, now+dur,
						trace.Str("dir", o.direction.String()), trace.Int("bytes", int64(o.bytes)))
				}
				s.ctx.env.After(dur, o.finish)
			}
			return
		case opCallback:
			if !o.started {
				o.started = true
				s.ctx.runCallback(func() {
					o.fn()
					o.finish()
				})
			}
			return
		case opEvent:
			o.event.comp.Fire()
			o.finish()
			// finish re-enters advance; avoid double-advancing.
			return
		}
	}
}
