// Package cudart emulates the host-side CUDA runtime: contexts, streams
// (including legacy default-stream serialization), asynchronous kernel
// launches and memory copies, events, stream callbacks, and host
// synchronization.
//
// It supports two execution modes, mirroring §4.2 of the paper:
//
//   - Direct mode (baselines): every kernel launch is pushed into a device
//     hardware queue at issue time, in issue order, carrying a readiness
//     closure that encodes its stream dependencies — exactly the behaviour
//     that produces head-of-line blocking when dependent kernels sit at
//     queue heads (§2.1).
//   - Hooked mode (Paella): a LaunchHook intercepts every kernel and memcpy
//     the instant the job issues it; nothing reaches the hardware queues
//     until the Paella dispatcher releases it. Job code is identical in
//     both modes, reproducing the paper's transparent wrapper property.
//
// Host-side costs are modelled explicitly: each kernel-launch API call
// burns LaunchCallCost of the issuing process's time, stream callbacks are
// serialized on a single callback executor with per-callback overhead, and
// synchronization calls carry a fixed host cost. These constants drive the
// Figure 4 and Figure 10 reproductions.
package cudart

import (
	"fmt"
	"strconv"

	"paella/internal/gpu"
	"paella/internal/sim"
	"paella/internal/trace"
)

// MemcpyKind distinguishes transfer directions.
type MemcpyKind int

const (
	// HostToDevice transfers input tensors to GPU memory.
	HostToDevice MemcpyKind = iota
	// DeviceToHost transfers outputs back.
	DeviceToHost
	// DeviceToDevice copies within GPU memory.
	DeviceToDevice
)

// String returns the CUDA-style name of the kind.
func (k MemcpyKind) String() string {
	switch k {
	case HostToDevice:
		return "cudaMemcpyHostToDevice"
	case DeviceToHost:
		return "cudaMemcpyDeviceToHost"
	case DeviceToDevice:
		return "cudaMemcpyDeviceToDevice"
	default:
		return "cudaMemcpyUnknown"
	}
}

// Config sets the host-side cost model of the runtime.
type Config struct {
	// LaunchCallCost is the host CPU time one kernel-launch API call burns
	// in the issuing process (~5-8µs on real systems).
	LaunchCallCost sim.Time
	// MemcpyIssueCost is the host CPU time to issue an async copy.
	MemcpyIssueCost sim.Time
	// MemcpyLatency is the fixed DMA setup latency per transfer.
	MemcpyLatency sim.Time
	// PCIeBytesPerNs is the sustained transfer bandwidth (≈12 for a PCIe 3
	// x16 link delivering 12 GB/s).
	PCIeBytesPerNs float64
	// SyncCallCost is the host cost of one cudaStreamSynchronize or
	// cudaDeviceSynchronize call (syscall + spin overhead).
	SyncCallCost sim.Time
	// CallbackCost is the serialized cost of dispatching one
	// cudaStreamAddCallback callback on the runtime's callback thread —
	// notoriously expensive on real systems.
	CallbackCost sim.Time
}

// DefaultConfig returns constants calibrated to the measurements the paper
// reports for its Xeon Silver 4114 + Tesla T4 testbed.
func DefaultConfig() Config {
	return Config{
		LaunchCallCost:  6 * sim.Microsecond,
		MemcpyIssueCost: 4 * sim.Microsecond,
		MemcpyLatency:   10 * sim.Microsecond,
		PCIeBytesPerNs:  12.0,
		SyncCallCost:    8 * sim.Microsecond,
		CallbackCost:    35 * sim.Microsecond,
	}
}

// LaunchHook intercepts stream operations before they reach the hardware
// (the Paella wrapper layer of §4.2). Implementations must eventually call
// complete() exactly once per intercepted operation.
type LaunchHook interface {
	// HookKernel intercepts a kernel launch on the given virtual stream.
	HookKernel(streamID int, spec *gpu.KernelSpec, complete func())
	// HookMemcpy intercepts an async memory copy on the given virtual
	// stream.
	HookMemcpy(streamID int, kind MemcpyKind, bytes int, complete func())
}

// Context is the per-process CUDA context. All methods must run on the
// simulation event loop; blocking calls additionally require the calling
// Proc.
type Context struct {
	env *sim.Env
	dev *gpu.Device
	cfg Config

	hook LaunchHook

	streams      []*Stream
	nextKernelID uint32
	outstanding  int      // incomplete ops across all streams
	idle         []func() // deviceSynchronize waiters
	cbQueue      []func() // serialized callback executor queue
	cbRunning    bool
	stats        ContextStats

	// rec is the structured tracing recorder (nil = disabled); stream
	// tracks are registered lazily as streams first emit.
	rec          *trace.Recorder
	traceProc    trace.ProcID
	streamTracks []trace.TrackID
}

// ContextStats counts runtime activity.
type ContextStats struct {
	KernelLaunches uint64
	Memcpys        uint64
	Callbacks      uint64
	Syncs          uint64
}

// NewContext creates a context for the device. The default stream (id 0)
// exists from the start.
func NewContext(env *sim.Env, dev *gpu.Device, cfg Config) *Context {
	c := &Context{env: env, dev: dev, cfg: cfg}
	if rec := trace.FromEnv(env); rec != nil {
		c.rec = rec
		c.traceProc = rec.Process("cudart")
	}
	c.streams = append(c.streams, newStream(c, 0))
	return c
}

// streamTrack returns (registering lazily) the timeline track of stream
// id. Callers guard on c.rec != nil.
func (c *Context) streamTrack(id int) trace.TrackID {
	for len(c.streamTracks) <= id {
		c.streamTracks = append(c.streamTracks,
			c.rec.Thread(c.traceProc, "stream "+strconv.Itoa(len(c.streamTracks))))
	}
	return c.streamTracks[id]
}

// SetHook installs (or clears, with nil) the interception layer. Installing
// a hook after operations have been issued is not supported.
func (c *Context) SetHook(h LaunchHook) {
	if c.outstanding != 0 {
		panic("cudart: SetHook with operations in flight")
	}
	c.hook = h
}

// Env returns the simulation environment.
func (c *Context) Env() *sim.Env { return c.env }

// Device returns the underlying device.
func (c *Context) Device() *gpu.Device { return c.dev }

// Stats returns a snapshot of runtime counters.
func (c *Context) Stats() ContextStats { return c.stats }

// DefaultStream returns stream 0, which serializes against all other
// streams per legacy CUDA semantics.
func (c *Context) DefaultStream() *Stream { return c.streams[0] }

// StreamCreate returns a new independent stream. In hooked mode this is the
// paper's overridden cudaStreamCreate: the id is virtual and will be bound
// to a real hardware queue only at dispatch time (§5.2).
func (c *Context) StreamCreate() *Stream {
	s := newStream(c, len(c.streams))
	c.streams = append(c.streams, s)
	return s
}

// Stream returns the stream with the given id.
func (c *Context) Stream(id int) *Stream {
	if id < 0 || id >= len(c.streams) {
		panic(fmt.Sprintf("cudart: no stream %d", id))
	}
	return c.streams[id]
}

// NextKernelID mints the unique kernel id included in notifQ records.
func (c *Context) NextKernelID() uint32 {
	c.nextKernelID++
	return c.nextKernelID
}

// opFinished updates context-level accounting when any op completes.
func (c *Context) opFinished() {
	c.outstanding--
	if c.outstanding < 0 {
		panic("cudart: outstanding op count went negative")
	}
	if c.outstanding == 0 {
		waiters := c.idle
		c.idle = nil
		for _, fn := range waiters {
			c.env.After(0, fn)
		}
	}
}

// runCallback enqueues fn on the serialized callback executor, charging
// CallbackCost per callback (the cudaStreamAddCallback cost model).
func (c *Context) runCallback(fn func()) {
	c.stats.Callbacks++
	c.cbQueue = append(c.cbQueue, fn)
	if c.cbRunning {
		return
	}
	c.cbRunning = true
	c.drainCallbacks()
}

func (c *Context) drainCallbacks() {
	if len(c.cbQueue) == 0 {
		c.cbRunning = false
		return
	}
	fn := c.cbQueue[0]
	c.cbQueue = c.cbQueue[1:]
	c.env.After(c.cfg.CallbackCost, func() {
		fn()
		c.drainCallbacks()
	})
}

// DeviceSynchronize blocks the calling process until every operation issued
// on this context has completed, charging the sync-call host cost.
func (c *Context) DeviceSynchronize(p *sim.Proc) {
	c.stats.Syncs++
	p.Sleep(c.cfg.SyncCallCost)
	for c.outstanding > 0 {
		done := sim.NewCompletion(c.env)
		c.idle = append(c.idle, done.Fire)
		p.Wait(done)
	}
}

// memcpyDuration models one DMA transfer.
func (c *Context) memcpyDuration(bytes int) sim.Time {
	d := c.cfg.MemcpyLatency
	if c.cfg.PCIeBytesPerNs > 0 {
		d += sim.Time(float64(bytes) / c.cfg.PCIeBytesPerNs)
	}
	return d
}
