package experiments

import (
	"fmt"
	"io"

	"paella/internal/compiler"
	"paella/internal/model"
	"paella/internal/serving"
	"paella/internal/sim"
)

func init() {
	register(Experiment{
		Name:  "fig3",
		Title: "Figure 3: serving-platform overhead of a Triton request, batch 1 and 64",
		Run:   runFig3,
	})
	register(Experiment{
		Name:  "table2",
		Title: "Table 2: evaluation model zoo",
		Run:   runTable2,
	})
}

func defaultCompiler() compiler.Config { return compiler.DefaultConfig() }

// runFig3 computes, per Figure 3 model, the fraction of end-to-end Triton
// latency attributable to the serving platform (everything except CUDA
// kernel executions and memory copies). Batched requests submit the whole
// batch at once, so serialization scales with batch size while execution
// amortizes (GPU batching efficiency ~0.75 per the paper's models).
func runFig3(w io.Writer, _ Detail) error {
	costs := serving.TritonCosts()
	const batchEff = 0.75
	fmt.Fprintln(w, "Figure 3 — Triton communication/framework overhead (% of exec time):")
	fmt.Fprintf(w, "  %-14s %12s %12s %12s\n", "model", "exec(batch1)", "batch 1", "batch 64")
	// Per-kernel launch gaps count as overhead under the paper's
	// definition (end-to-end minus kernel execution and copies): models
	// with thousands of launches (GPT2) are dominated by this term.
	const launchGap = 6 * sim.Microsecond
	overheadPct := func(e model.ZooEntry, batch int) float64 {
		in := e.InputBytes * batch
		out := e.OutputBytes * batch
		exec := float64(e.ExecTime)
		launches := float64(e.Executions)
		if batch > 1 {
			exec *= float64(batch) * batchEff
		}
		over := float64(in)*costs.SerializePerByte*2 +
			float64(out)*costs.SerializePerByte*2 +
			2*float64(costs.RPCFixed) + float64(costs.ServerProc) +
			launches*float64(launchGap)
		return over / exec * 100
	}
	for _, e := range model.Fig3Entries() {
		fmt.Fprintf(w, "  %-14s %12v %11.1f%% %11.1f%%\n",
			e.Name, e.ExecTime, overheadPct(e, 1), overheadPct(e, 64))
	}
	fmt.Fprintln(w, "\nExpected shape (paper): overhead reaches up to ~66% of execution for")
	fmt.Fprintln(w, "single requests of small models (e.g. MobileNetV2) and remains")
	fmt.Fprintln(w, "significant — sometimes higher — at batch 64 where serialization of")
	fmt.Fprintln(w, "the batched input dominates (e.g. YoloV5's large tensors).")
	return nil
}

func runTable2(w io.Writer, _ Detail) error {
	fmt.Fprintln(w, "Table 2 — model zoo (paper exec time vs generated kernel graphs):")
	fmt.Fprintf(w, "  %-14s %12s %12s %8s %8s %8s\n",
		"model", "paper exec", "zoo exec", "launches", "unique", "blocks")
	for _, e := range model.Table2() {
		m := model.Generate(e)
		fmt.Fprintf(w, "  %-14s %12v %12v %8d %8d %8d\n",
			e.Name, e.ExecTime, m.KernelTime(), m.NumExecutions(), m.NumUnique(), m.TotalBlocks())
	}
	fmt.Fprintf(w, "\n  (paper model sizes, for reference: ResNet-18 75MB, MobileNetV2 14MB,\n")
	fmt.Fprintf(w, "   ResNet-34 144MB, SqueezeNet1.1 5.2MB, ResNet-50 124MB, DenseNet 41MB,\n")
	fmt.Fprintf(w, "   GoogleNet 28MB, InceptionV3 93MB — weights are not modelled.)\n")
	return nil
}

// fig3Check is used by tests: overhead percentage for one entry/batch.
func fig3Check(name string, batch int) (float64, error) {
	for _, e := range model.Fig3Entries() {
		if e.Name == name {
			costs := serving.TritonCosts()
			in := e.InputBytes * batch
			out := e.OutputBytes * batch
			exec := float64(e.ExecTime)
			if batch > 1 {
				exec *= float64(batch) * 0.75
			}
			over := float64(in)*costs.SerializePerByte*2 +
				float64(out)*costs.SerializePerByte*2 +
				2*float64(costs.RPCFixed) + float64(costs.ServerProc) +
				float64(e.Executions)*float64(6*sim.Microsecond)
			return over / exec * 100, nil
		}
	}
	return 0, fmt.Errorf("experiments: no fig3 model %q", name)
}
