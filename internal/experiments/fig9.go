package experiments

import (
	"fmt"
	"io"

	"paella/internal/core"
	"paella/internal/model"
	"paella/internal/serving"
	"paella/internal/sim"
	"paella/internal/workload"
)

func init() {
	register(Experiment{
		Name:  "fig9",
		Title: "Figure 9: throughput vs injected per-decision scheduling delay (MNIST-scale model)",
		Run:   runFig9,
	})
}

// runFig9 stresses the late-binding dispatcher: because Paella holds
// kernels until the last moment, any extra per-decision latency directly
// throttles dispatch. The paper injects synthetic delay into the default
// scheduler and measures sustainable throughput on an MNIST-scale model.
func runFig9(w io.Writer, d Detail) error {
	delays := []sim.Time{
		100 * sim.Nanosecond,
		sim.Microsecond,
		3 * sim.Microsecond,
		10 * sim.Microsecond,
		30 * sim.Microsecond,
		100 * sim.Microsecond,
		300 * sim.Microsecond,
		sim.Millisecond,
	}
	jobs := 4000
	if d == Quick {
		delays = []sim.Time{sim.Microsecond, 30 * sim.Microsecond, 300 * sim.Microsecond}
		jobs = 600
	}
	opts := serving.DefaultOptions()
	opts.Models = []*model.Model{model.TinyNet()}
	opts.ProfileRuns = 1

	fmt.Fprintln(w, "Figure 9 — sustainable throughput vs injected scheduling delay:")
	fmt.Fprintf(w, "  %14s %18s %14s\n", "added delay", "throughput (req/s)", "core busy")
	for _, delay := range delays {
		delay := delay
		sys := serving.NewPaellaTweaked("Paella", func(c *core.Config) {
			c.SchedDelay = delay
		})
		// Offer far more load than any configuration can absorb so the
		// measured rate is the dispatcher's capacity.
		trace := workload.MustGenerate(workload.Spec{
			Mix: workload.Uniform("tinynet"), Sigma: 1,
			RatePerSec: 200000, Jobs: jobs, Clients: 8, Seed: 5,
		})
		runOpts := opts
		runOpts.MaxSimTime = trace[len(trace)-1].At + 30*sim.Second
		col := serving.MustRunTrace(sys, trace, runOpts)
		disp := sys.(interface{ Dispatcher() *core.Dispatcher }).Dispatcher()
		// Utilization over the active window (first submit → last delivery),
		// not the post-drain idle tail.
		recs := col.Records()
		span := sim.Time(0)
		if len(recs) > 0 {
			first, last := recs[0].Submit, recs[0].Delivered
			for _, r := range recs {
				if r.Submit < first {
					first = r.Submit
				}
				if r.Delivered > last {
					last = r.Delivered
				}
			}
			span = last - first
		}
		busy := 0.0
		if span > 0 {
			busy = float64(disp.Stats().BusyNs) / float64(span)
		}
		fmt.Fprintf(w, "  %14v %18.0f %13.1f%%\n", delay, col.Throughput(), busy*100)
	}
	fmt.Fprintln(w, "\nThe dispatcher saturates its single core at every point (the paper's")
	fmt.Fprintln(w, "late-binding argument); throughput is purely 1/(per-job dispatch cost).")
	fmt.Fprintln(w, "Expected shape (paper): throughput holds flat for sub-µs to few-µs")
	fmt.Fprintln(w, "delays, then falls roughly as 1/delay once the injected cost dominates")
	fmt.Fprintln(w, "the per-kernel dispatch path.")
	return nil
}
