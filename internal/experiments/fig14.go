package experiments

import (
	"fmt"
	"io"

	"paella/internal/client"
	"paella/internal/compiler"
	"paella/internal/core"
	"paella/internal/gpu"
	"paella/internal/model"
	"paella/internal/sched"
	"paella/internal/sim"
)

func init() {
	register(Experiment{
		Name:  "fig14",
		Title: "Figure 14: client CPU utilization under socket, polling and hybrid protocols",
		Run:   runFig14,
	})
}

// runFig14 drives a closed-loop client submitting a small synthetic model
// as fast as responses return (the paper's ~6,700 req/s stress) and
// reports CPU utilization and mean latency per wakeup protocol.
func runFig14(w io.Writer, d Detail) error {
	requests := 20000
	if d == Quick {
		requests = 2000
	}
	type result struct {
		rate float64
		mean sim.Time
		util float64
	}
	run := func(proto client.Protocol) result {
		env := sim.NewEnv()
		devCfg := gpu.TeslaT4()
		disp := core.NewWithDevice(env, devCfg, core.DefaultConfig(sched.NewPaella(10000)))
		ins := compiler.MustCompile(model.TinyNet(), compiler.DefaultConfig(), devCfg, 2)
		if err := disp.RegisterModel(ins); err != nil {
			panic(err)
		}
		disp.Start()
		c := client.New(env, disp, client.DefaultConfig(proto))
		var total sim.Time
		env.Spawn("client", func(p *sim.Proc) {
			for i := 0; i < requests; i++ {
				start := env.Now()
				c.Predict(p, "tinynet")
				c.ReadResult(p)
				total += env.Now() - start
			}
		})
		env.Run()
		return result{
			rate: float64(requests) / env.Now().Seconds(),
			mean: total / sim.Time(requests),
			util: c.CPU().Utilization(),
		}
	}
	fmt.Fprintln(w, "Figure 14 — client CPU utilization (closed loop, TinyNet):")
	fmt.Fprintf(w, "  %-22s %12s %12s %10s\n", "protocol", "req/s", "mean lat", "CPU util")
	labels := map[client.Protocol]string{
		client.ProtocolSocket:  "Baseline (Unix socket)",
		client.ProtocolPolling: "Polling",
		client.ProtocolHybrid:  "Paella (hybrid)",
	}
	var socketLat, hybridLat sim.Time
	for _, proto := range []client.Protocol{client.ProtocolSocket, client.ProtocolPolling, client.ProtocolHybrid} {
		r := run(proto)
		fmt.Fprintf(w, "  %-22s %12.0f %12v %9.1f%%\n", labels[proto], r.rate, r.mean, r.util*100)
		switch proto {
		case client.ProtocolSocket:
			socketLat = r.mean
		case client.ProtocolHybrid:
			hybridLat = r.mean
		}
	}
	fmt.Fprintf(w, "\n  socket-vs-hybrid latency penalty: %.1f%%\n",
		(float64(socketLat)/float64(hybridLat)-1)*100)
	fmt.Fprintln(w, "\nExpected shape (paper): polling pins a core (~100%); the socket")
	fmt.Fprintln(w, "baseline uses the least CPU but is ~10% slower; the hybrid scheme")
	fmt.Fprintln(w, "matches polling latency at ~23% utilization (the exact figure tracks")
	fmt.Fprintln(w, "the fraction of the job spent in its final operator).")
	return nil
}
