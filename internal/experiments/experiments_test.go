package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestAllExperimentsRunQuick executes every registered experiment in Quick
// mode: the full end-to-end integration test of the repository.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped with -short")
	}
	exps := All()
	if len(exps) < 13 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	for _, e := range exps {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, Quick); err != nil {
				t.Fatalf("%s: %v", e.Name, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.Name)
			}
		})
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("fig11"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown experiment resolved")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig2", "fig3", "fig4", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15", "table2", "table3",
		"ablation-b", "ablation-queues", "ablation-agg",
		"ablation-batching", "ablation-edf", "ablation-cluster", "ablation-biggpu",
		"llm", "autoscale",
	}
	have := map[string]bool{}
	for _, e := range All() {
		have[e.Name] = true
	}
	for _, name := range want {
		if !have[name] {
			t.Errorf("experiment %q not registered", name)
		}
	}
}

// TestFig3Calibration checks the Figure 3 cost model lands in the paper's
// reported ranges: MobileNetV2 batch-1 overhead is a large fraction of its
// execution, and GPT2's thousands of launches dominate.
func TestFig3Calibration(t *testing.T) {
	mb, err := fig3Check("mobilenetv2", 1)
	if err != nil {
		t.Fatal(err)
	}
	if mb < 40 || mb > 110 {
		t.Errorf("mobilenetv2 batch-1 overhead = %.1f%%, want 40-110%%", mb)
	}
	gpt, err := fig3Check("gpt2", 1)
	if err != nil {
		t.Fatal(err)
	}
	if gpt < 100 {
		t.Errorf("gpt2 batch-1 overhead = %.1f%%, want >100%% (launch-dominated)", gpt)
	}
	big, err := fig3Check("resnet50", 1)
	if err != nil {
		t.Fatal(err)
	}
	if big > mb {
		t.Errorf("resnet50 overhead (%.1f%%) should be below mobilenetv2 (%.1f%%)", big, mb)
	}
	if _, err := fig3Check("bogus", 1); err == nil {
		t.Error("unknown fig3 model resolved")
	}
}

// TestFig4Shapes validates the Figure 4 orderings on a small instance.
func TestFig4Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	const streams, kernels = 4, 100
	cb := fig4Callbacks(streams, kernels)
	sync := fig4StreamSync(streams, kernels)
	pa := fig4Paella(streams, kernels)
	if !(cb > sync && sync > pa) {
		t.Fatalf("ordering violated: callbacks=%v sync=%v paella=%v", cb, sync, pa)
	}
	// Callbacks and sync serialize: doubling streams ≈ doubles time.
	cb2 := fig4Callbacks(2*streams, kernels)
	if float64(cb2) < 1.7*float64(cb) {
		t.Fatalf("callback cost not ~linear in streams: %v vs %v", cb, cb2)
	}
}

// TestFig1Deterministic ensures the timeline renderer output is stable.
func TestFig1Deterministic(t *testing.T) {
	var a, b strings.Builder
	if err := runFig1(&a, Quick); err != nil {
		t.Fatal(err)
	}
	if err := runFig1(&b, Quick); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("fig1 output not deterministic")
	}
}

var _ io.Writer = (*bytes.Buffer)(nil)
