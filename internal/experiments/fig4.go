package experiments

import (
	"fmt"
	"io"

	"paella/internal/compiler"
	"paella/internal/core"
	"paella/internal/cudart"
	"paella/internal/gpu"
	"paella/internal/model"
	"paella/internal/sched"
	"paella/internal/sim"
)

func init() {
	register(Experiment{
		Name:  "fig4",
		Title: "Figure 4: time to execute 1000 empty kernels/stream under different synchronization methods",
		Run:   runFig4,
	})
}

// fig4Device is large enough that empty kernels never contend for SMs:
// host-side synchronization is the only bottleneck, as in the paper.
func fig4Device() gpu.Config {
	cfg := gpu.TeslaT4()
	cfg.LaunchOverhead = 2 * sim.Microsecond
	return cfg
}

// fig4RTCosts reflects the paper's measured host costs for this stress:
// stream callbacks are notoriously expensive (serialized ~90µs each), and
// per-kernel cudaStreamSynchronize costs tens of µs of syscall + wake
// latency.
func fig4RTCosts() cudart.Config {
	return cudart.Config{
		LaunchCallCost: 6 * sim.Microsecond,
		SyncCallCost:   45 * sim.Microsecond,
		CallbackCost:   90 * sim.Microsecond,
		PCIeBytesPerNs: 12,
	}
}

func emptyKernel() *gpu.KernelSpec {
	return &gpu.KernelSpec{
		Name:            "empty",
		Blocks:          1,
		ThreadsPerBlock: 32,
		RegsPerThread:   4,
		BlockDuration:   sim.Microsecond,
	}
}

// fig4Callbacks: one submitter per stream issues kernel+callback pairs;
// completion is detected via cudaStreamAddCallback, all callbacks
// serialized on the runtime's single callback thread.
func fig4Callbacks(streams, kernels int) sim.Time {
	env := sim.NewEnv()
	dev := gpu.NewDevice(env, fig4Device(), nil)
	ctx := cudart.NewContext(env, dev, fig4RTCosts())
	remaining := streams * kernels
	for s := 0; s < streams; s++ {
		stream := ctx.StreamCreate()
		env.Spawn("submitter", func(p *sim.Proc) {
			for k := 0; k < kernels; k++ {
				stream.LaunchKernel(p, emptyKernel(), cudart.LaunchOpts{})
				stream.AddCallback(func() { remaining-- })
			}
		})
	}
	env.Run()
	if remaining != 0 {
		panic("fig4: callbacks lost")
	}
	return env.Now()
}

// fig4StreamSync: one thread per stream alternates launch and
// cudaStreamSynchronize. Host launch/sync calls serialize through the
// driver, modelled by a shared token process.
func fig4StreamSync(streams, kernels int) sim.Time {
	env := sim.NewEnv()
	dev := gpu.NewDevice(env, fig4Device(), nil)
	ctx := cudart.NewContext(env, dev, fig4RTCosts())
	// The driver lock serializes host-side CUDA calls across threads: each
	// launch+sync pair occupies the driver for its call costs, which is
	// what makes total time grow with the stream count in the paper.
	driver := sim.NewMutex(env)
	for s := 0; s < streams; s++ {
		stream := ctx.StreamCreate()
		env.Spawn("syncer", func(p *sim.Proc) {
			for k := 0; k < kernels; k++ {
				driver.Lock(p)
				stream.LaunchKernel(p, emptyKernel(), cudart.LaunchOpts{})
				stream.Synchronize(p)
				driver.Unlock()
			}
		})
	}
	env.Run()
	return env.Now()
}

// fig4Paella: the dispatcher learns completions from the instrumented
// notification channel; each "stream" is one 1000-kernel job.
func fig4Paella(streams, kernels int) sim.Time {
	env := sim.NewEnv()
	devCfg := fig4Device()
	d := core.NewWithDevice(env, devCfg, core.DefaultConfig(sched.NewFIFO()))
	k := emptyKernel()
	m := &model.Model{
		Name:         "empty1000",
		Kernels:      []*gpu.KernelSpec{k},
		Seq:          make([]int, kernels),
		PinnedOutput: true,
	}
	ins := compiler.MustCompile(m, compiler.DefaultConfig(), devCfg, 1)
	if err := d.RegisterModel(ins); err != nil {
		panic(err)
	}
	d.Start()
	done := 0
	for s := 0; s < streams; s++ {
		conn := d.Connect()
		conn.OnComplete = func(uint64) { done++ }
		id := uint64(s + 1)
		cn := conn
		env.At(0, func() {
			cn.Submit(core.Request{ID: id, Model: "empty1000", Client: cn.ID, Submit: 0})
		})
	}
	env.Run()
	if done != streams {
		panic("fig4: jobs lost")
	}
	return env.Now()
}

func runFig4(w io.Writer, d Detail) error {
	streamCounts := []int{1, 2, 4, 8, 12, 16, 20}
	kernels := 1000
	if d == Quick {
		streamCounts = []int{1, 4, 8}
		kernels = 200
	}
	fmt.Fprintf(w, "Figure 4 — total time to run %d empty kernels per stream:\n", kernels)
	fmt.Fprintf(w, "  %8s %22s %22s %22s\n", "streams", "cudaStreamAddCallback", "cudaStreamSynchronize", "Paella dispatcher")
	for _, s := range streamCounts {
		cb := fig4Callbacks(s, kernels)
		sync := fig4StreamSync(s, kernels)
		pa := fig4Paella(s, kernels)
		fmt.Fprintf(w, "  %8d %22v %22v %22v\n", s, cb, sync, pa)
	}
	fmt.Fprintln(w, "\nExpected shape (paper): all three grow with stream count; callbacks")
	fmt.Fprintln(w, "are the most expensive (serialized callback thread), stream sync is")
	fmt.Fprintln(w, "intermediate, and Paella's notification-based dispatcher is several")
	fmt.Fprintln(w, "times cheaper than either.")
	return nil
}
