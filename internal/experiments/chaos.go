package experiments

import (
	"fmt"
	"io"

	"paella/internal/cluster"
	"paella/internal/compiler"
	"paella/internal/core"
	"paella/internal/fault"
	"paella/internal/gpu"
	"paella/internal/model"
	"paella/internal/sched"
	"paella/internal/serving"
	"paella/internal/sim"
	"paella/internal/workload"
)

func init() {
	register(Experiment{
		Name:  "chaos",
		Title: "Extension: fault injection — goodput/p99 degradation and zero-loss recovery under faults",
		Run:   runChaos,
	})
}

// chaosDeadline is the goodput SLO: a request that completes within this
// JCT counts as good.
const chaosDeadline = 25 * sim.Millisecond

// runChaos sweeps fault intensity against goodput and tail latency.
//
// Part A runs one T4 under fault.Synthesize plans of increasing intensity
// (SM retirements, a PCIe brownout window, percent-level notification
// drop/duplication) with the dispatcher's recovery machinery armed. The
// claim under test is graceful degradation: goodput falls and p99 rises
// with intensity, but conservation holds — every submitted request ends in
// exactly one completion or one typed error, never silence.
//
// Part B crashes one replica of a 2×T4 cluster mid-run: requests pending
// on the dead replica fail over to the survivor, and the accounting at the
// cluster connection (completions + typed failures = submissions) shows
// none were lost.
func runChaos(w io.Writer, d Detail) error {
	intensities := []float64{0, 0.25, 0.5, 1.0}
	jobs := 1200
	if d == Quick {
		intensities = []float64{0, 0.5}
		jobs = 300
	}
	const seed = 42

	fmt.Fprintln(w, "Extension — deterministic fault injection (internal/fault)")
	fmt.Fprintf(w, "\nPart A: fault-intensity sweep, one T4, 300 req/s, seed %d:\n", seed)
	fmt.Fprintf(w, "  %9s %6s %6s %6s %6s %14s %12s %8s %8s %8s\n",
		"intensity", "n", "ok", "fail", "lost", "goodput(req/s)", "p99(ok)", "timeout", "redisp", "stale")
	models := model.Table2Models()[:4]
	names := make([]string, len(models))
	for i, m := range models {
		names[i] = m.Name
	}
	trace := workload.MustGenerate(workload.Spec{
		Mix: workload.Uniform(names...), Sigma: 1.5,
		RatePerSec: 300, Jobs: jobs, Clients: 4, Seed: seed,
	})
	horizon := trace[len(trace)-1].At
	for _, intensity := range intensities {
		sys, err := serving.NewSystem("Paella")
		if err != nil {
			return err
		}
		opts := serving.DefaultOptions()
		opts.Models = models
		opts.Faults = fault.Synthesize(seed, intensity, horizon, opts.DevCfg.NumSMs)
		opts.MaxSimTime = horizon + 30*sim.Second
		col, err := serving.RunTrace(sys, trace, opts)
		if err != nil {
			return err
		}
		okCol := col.Succeeded()
		lost := len(trace) - col.Len()
		var st core.Stats
		if ds, okd := sys.(interface{ Dispatcher() *core.Dispatcher }); okd {
			st = ds.Dispatcher().Stats()
		}
		fmt.Fprintf(w, "  %9.2f %6d %6d %6d %6d %14.1f %12v %8d %8d %8d\n",
			intensity, col.Len(), okCol.Len(), col.Failures(), lost,
			okCol.Goodput(chaosDeadline), okCol.P99(),
			st.KernelTimeouts, st.KernelRetries, st.StaleNotifs)
		if lost != 0 {
			return fmt.Errorf("chaos: %d jobs lost at intensity %.2f — conservation violated", lost, intensity)
		}
	}

	fmt.Fprintln(w, "\nPart B: replica crash on a 2×T4 cluster, failover to the survivor:")
	env := sim.NewEnv()
	c, err := cluster.New(env,
		[]gpu.Config{gpu.TeslaT4(), gpu.TeslaT4()},
		func() sched.Policy { return sched.NewPaella(10000) },
		cluster.NewLeastLoaded())
	if err != nil {
		return err
	}
	for _, m := range models {
		if err := c.RegisterModel(m, compiler.DefaultConfig(), 1); err != nil {
			return err
		}
	}
	conn := c.Connect()
	completed, failed := 0, 0
	conn.OnComplete = func(uint64) { completed++ }
	conn.OnFailed = func(uint64, error) { failed++ }
	ctrace := workload.MustGenerate(workload.Spec{
		Mix: workload.Uniform(names...), Sigma: 1.5,
		RatePerSec: 400, Jobs: jobs, Clients: 1, Seed: seed,
	})
	submitted := 0
	for i, r := range ctrace {
		id, mdl, at := uint64(i+1), r.Model, r.At
		env.At(at, func() {
			if conn.Submit(core.Request{ID: id, Model: mdl, Submit: env.Now()}) >= 0 {
				submitted++
			}
		})
	}
	crashAt := ctrace[len(ctrace)-1].At / 2
	env.At(crashAt, func() { c.Crash(0) })
	env.RunUntil(ctrace[len(ctrace)-1].At + 30*sim.Second)
	fmt.Fprintf(w, "  crash at %v: %d submitted, %d completed, %d typed failures, %d live replicas\n",
		crashAt, submitted, completed, failed, c.LiveReplicas())
	if completed+failed != submitted {
		return fmt.Errorf("chaos: cluster lost %d jobs after crash", submitted-completed-failed)
	}

	fmt.Fprintln(w, "\nExpected: Part A — goodput falls and p99(ok) rises monotonically-ish")
	fmt.Fprintln(w, "with intensity (retired SMs shrink capacity, the brownout stretches")
	fmt.Fprintln(w, "copies, lost notifications cost watchdog round trips), but the lost")
	fmt.Fprintln(w, "column stays zero: the watchdog re-dispatches or fails jobs with")
	fmt.Fprintln(w, "typed errors instead of hanging. Part B — the survivor absorbs the")
	fmt.Fprintln(w, "crashed replica's pending work; completions plus typed failures")
	fmt.Fprintln(w, "account for every submission.")
	return nil
}
