package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"paella/internal/autoscale"
	"paella/internal/cluster"
	"paella/internal/compiler"
	"paella/internal/core"
	"paella/internal/gpu"
	"paella/internal/model"
	"paella/internal/sched"
	"paella/internal/sim"
	"paella/internal/telemetry"
	"paella/internal/vram"
	"paella/internal/workload"
)

func init() {
	register(Experiment{
		Name:  "autoscale",
		Title: "Extension (§9): fleet autoscaling under diurnal traffic — SLO-vs-cost frontier",
		Run:   runAutoscale,
	})
}

// AutoscaleTrajEnv names the environment variable that, when set, makes the
// autoscale experiment append its headline cell (best adaptive policy vs
// static peak provisioning on the diurnal trace) as one NDJSON line to the
// named file — the bench trajectory successive revisions extend
// (BENCH_trajectory.ndjson at the repo root).
const AutoscaleTrajEnv = "PAELLA_AUTOSCALE_TRAJ"

// autoscaleTrajCell is one NDJSON line of the bench trajectory.
type autoscaleTrajCell struct {
	Schema       string  `json:"schema"` // "paella-autoscale-traj/v1"
	Detail       string  `json:"detail"` // "quick" | "full"
	Policy       string  `json:"policy"` // best adaptive policy
	PeakCostDay  float64 `json:"peak_cost_day"`
	BestCostDay  float64 `json:"best_cost_day"`
	SavingsPct   float64 `json:"savings_pct"`
	PeakAttain   float64 `json:"peak_attain"`
	BestAttain   float64 `json:"best_attain"`
	ColdStarts   int     `json:"cold_starts"`
	Mix          string  `json:"mix"`
	MixCostPerHr float64 `json:"mix_cost_per_hr"`
	MixAttain    float64 `json:"mix_attain"`
	MixCostDay   float64 `json:"mix_cost_day"`
}

// autoscaleSLO is the deadline the frontier's attainment column scores
// against.
const autoscaleSLO = 5 * sim.Millisecond

// scaleModel synthesizes the experiment's weighted serving models (same
// palette as the autoscale test wall: sub-millisecond inference, megabyte
// weights so cold starts page real bytes).
func scaleModel(name string, execUs, weightMiB int) *model.Model {
	return model.Generate(model.ZooEntry{
		Name:        name,
		ExecTime:    sim.Time(execUs) * sim.Microsecond,
		Executions:  6,
		Unique:      3,
		InputBytes:  4096,
		OutputBytes: 4096,
		WeightBytes: weightMiB << 20,
	})
}

func autoscaleModels() []*model.Model {
	return []*model.Model{
		scaleModel("autonet-a", 400, 8),
		scaleModel("autonet-b", 300, 6),
	}
}

// fleetRun is one frontier point: a policy (or fleet mix) run under the
// trace, with its cost, attainment, and scaling activity.
type fleetRun struct {
	label      string
	costDay    float64 // dollars, extrapolated to 24h of the trace's shape
	repSeconds float64
	meanActive float64
	attainment float64
	p50, p99   sim.Time
	counts     autoscale.Counts
	stats      autoscale.Stats
}

// runAutoscaledFleet executes one trace under one scaling policy on the
// given fleet and returns the frontier point.
func runAutoscaledFleet(label string, devs []gpu.Config, prices []float64,
	pc autoscale.PolicyConfig, spec workload.TrafficSpec, minR, initial int) (fleetRun, error) {
	w := sim.NewWorld()
	w.SetParallel(true)
	defer w.Close()
	c, err := cluster.NewWorldWithConfig(w, devs, func(int, gpu.Config) core.Config {
		cfg := core.DefaultConfig(sched.NewPaella(10000))
		cfg.VRAM = &vram.Config{CapacityBytes: 32 << 20}
		return cfg
	}, cluster.NewLeastLoaded(), func(int, *sim.Env) {})
	if err != nil {
		return fleetRun{}, err
	}
	for _, m := range autoscaleModels() {
		if err := c.RegisterModel(m, compiler.DefaultConfig(), 1); err != nil {
			return fleetRun{}, err
		}
	}
	pol, err := autoscale.NewFromConfig(pc)
	if err != nil {
		return fleetRun{}, err
	}
	s, err := autoscale.NewScaler(w.Ctrl(), c, autoscale.Config{
		Min: minR, Max: len(devs), Initial: initial,
		Interval: 5 * sim.Millisecond,
		Policy:   pol,
		SLO: telemetry.SLOConfig{
			Name: "jct@5ms", Deadline: autoscaleSLO, Target: 0.9,
			Short: sim.Millisecond, Long: 10 * sim.Millisecond,
		},
		DollarsPerHour: prices,
	})
	if err != nil {
		return fleetRun{}, err
	}
	front := autoscale.NewFront(s)
	reqs, err := workload.GenerateTraffic(spec)
	if err != nil {
		return fleetRun{}, err
	}
	last := sim.Time(0)
	for i, r := range reqs {
		req := core.Request{ID: uint64(i + 1), Model: r.Model, Client: r.Client, Tenant: r.Tenant, Submit: r.At}
		last = r.At
		w.Ctrl().At(r.At, func() { front.Submit(req) })
	}
	s.Start()
	w.RunUntil(last + 2*sim.Second)

	if !front.Counts().Conserved() || front.Outstanding() != 0 {
		return fleetRun{}, fmt.Errorf("autoscale: %s leaked requests: %+v (%d outstanding)",
			label, front.Counts(), front.Outstanding())
	}
	// Bill through quiescence — drain tails are paid for — but normalize
	// the daily extrapolation by the offered trace's duration.
	bill := s.QuiesceTime(spec.Duration)
	col := c.Collector().Succeeded()
	run := fleetRun{
		label:      label,
		repSeconds: s.ReplicaSeconds(bill),
		costDay:    s.Cost(bill) * (24 * 3600 / spec.Duration.Seconds()),
		meanActive: s.MeanActive(bill),
		attainment: s.Attainment(),
		p50:        col.P50(),
		p99:        col.P99(),
		counts:     front.Counts(),
		stats:      s.ScaleStats(),
	}
	return run, nil
}

// calibrateReplicaRate measures one GPU type's sustainable throughput for
// the experiment's model mix with a short saturating open-loop run — the
// per-offer rate the fleet-mix optimizer consumes.
func calibrateReplicaRate(dev gpu.Config, jobs int) (float64, error) {
	env := sim.NewEnv()
	c, err := cluster.NewWithConfig(env, []gpu.Config{dev}, func(int, gpu.Config) core.Config {
		cfg := core.DefaultConfig(sched.NewPaella(10000))
		cfg.VRAM = &vram.Config{CapacityBytes: 32 << 20}
		return cfg
	}, cluster.NewLeastLoaded())
	if err != nil {
		return 0, err
	}
	for _, m := range autoscaleModels() {
		if err := c.RegisterModel(m, compiler.DefaultConfig(), 1); err != nil {
			return 0, err
		}
	}
	conn := c.Connect()
	spec := workload.TrafficSpec{
		Shape:          workload.ShapeConstant,
		Mix:            workload.Uniform("autonet-a", "autonet-b"),
		Sigma:          1.0,
		BaseRatePerSec: 50000, // far past saturation for every offer
		Jobs:           jobs,
		Clients:        10000,
		Seed:           7,
	}
	reqs, err := workload.GenerateTraffic(spec)
	if err != nil {
		return 0, err
	}
	last := sim.Time(0)
	for i, r := range reqs {
		req := core.Request{ID: uint64(i + 1), Model: r.Model, Client: r.Client, Submit: r.At}
		last = r.At
		env.At(r.At, func() { conn.Submit(req) })
	}
	env.RunUntil(last + 4*sim.Second)
	return c.Collector().Succeeded().Throughput(), nil
}

// runAutoscale sweeps scaling policies over a compressed diurnal trace on a
// homogeneous T4 fleet (the SLO-vs-cost frontier), then calibrates a
// heterogeneous offer book (T4/P100/GTX1660) and runs the optimizer's
// cheapest mix under the same trace. The verdict the experiment enforces:
// at least one adaptive policy must dominate static peak provisioning —
// cheaper, with attainment within two points.
func runAutoscale(out io.Writer, d Detail) error {
	fleet, jobsCal := 4, 250
	spec := workload.TrafficSpec{
		Shape:          workload.ShapeDiurnal,
		Mix:            workload.Uniform("autonet-a", "autonet-b"),
		Sigma:          1.0,
		BaseRatePerSec: 20000,
		Amplitude:      0.8,
		Period:         100 * sim.Millisecond,
		Duration:       300 * sim.Millisecond,
		Clients:        2_000_000,
		Seed:           11,
	}
	detail := "quick"
	if d == Full {
		detail = "full"
		fleet, jobsCal = 6, 800
		spec.BaseRatePerSec = 28000
		spec.Period = 300 * sim.Millisecond
		spec.Duration = 900 * sim.Millisecond
	}
	devs := make([]gpu.Config, fleet)
	prices := make([]float64, fleet)
	for i := range devs {
		devs[i] = gpu.TeslaT4()
		prices[i] = 0.53
	}
	fmt.Fprintf(out, "Extension — fleet autoscaling, diurnal %v period over %v, base %.0f req/s ±%.0f%%, %d clients:\n",
		spec.Period, spec.Duration, spec.BaseRatePerSec, spec.Amplitude*100, spec.Clients)
	fmt.Fprintf(out, "Fleet: up to %d×T4 at $0.53/hr; SLO: JCT ≤ %v; cost extrapolated to 24h of this shape.\n\n", fleet, autoscaleSLO)

	policies := []struct {
		label    string
		adaptive bool
		pc       autoscale.PolicyConfig
		min, ini int
	}{
		{"static-min", false, autoscale.PolicyConfig{Name: "static", Fixed: 1}, 1, 1},
		{"static-peak", false, autoscale.PolicyConfig{Name: "static", Fixed: fleet}, fleet, fleet},
		{"queue-depth", true, autoscale.PolicyConfig{Name: "queue-depth"}, 1, 3},
		{"step", true, autoscale.PolicyConfig{Name: "step"}, 1, 3},
		{"slo-burn", true, autoscale.PolicyConfig{Name: "slo-burn"}, 1, 3},
		{"predictive", true, autoscale.PolicyConfig{Name: "predictive"}, 1, 3},
	}
	fmt.Fprintf(out, "  %-12s %10s %10s %8s %10s %10s %6s %5s %5s %6s\n",
		"policy", "$/day", "mean-repl", "attain", "p50", "p99", "cold", "up", "down", "done")
	runs := make([]fleetRun, 0, len(policies))
	for _, p := range policies {
		run, err := runAutoscaledFleet(p.label, devs, prices, p.pc, spec, p.min, p.ini)
		if err != nil {
			return err
		}
		runs = append(runs, run)
		fmt.Fprintf(out, "  %-12s %10.2f %10.2f %7.1f%% %10v %10v %6d %5d %5d %6d\n",
			run.label, run.costDay, run.meanActive, run.attainment*100, run.p50, run.p99,
			run.stats.ColdStarts, run.stats.ScaleUps, run.stats.ScaleDowns, run.counts.Completed)
	}

	// The frontier verdict: an adaptive policy dominates static-peak when it
	// spends less and attains within two points.
	peak := runs[1]
	best := fleetRun{}
	for i, p := range policies {
		r := runs[i]
		if !p.adaptive {
			continue
		}
		if r.costDay < peak.costDay && r.attainment >= peak.attainment-0.02 {
			if best.label == "" || r.costDay < best.costDay {
				best = r
			}
		}
	}
	if best.label == "" {
		return fmt.Errorf("autoscale: no adaptive policy dominates static-peak ($%.2f/day at %.1f%%)",
			peak.costDay, peak.attainment*100)
	}
	savings := (1 - best.costDay/peak.costDay) * 100
	fmt.Fprintf(out, "\nFrontier: %s dominates static-peak — $%.2f/day vs $%.2f/day (%.0f%% cheaper) at %.1f%% vs %.1f%% attainment.\n",
		best.label, best.costDay, peak.costDay, savings, best.attainment*100, peak.attainment*100)
	fmt.Fprintf(out, "static-min is the other frontier end: cheapest fleet, attainment collapses in the peak (%.1f%%).\n",
		runs[0].attainment*100)

	// Heterogeneous fleets: calibrate each GPU type's sustainable rate for
	// this model mix, then let the optimizer pick the cheapest mix covering
	// the diurnal peak.
	fmt.Fprintf(out, "\nHeterogeneous offer book (calibrated on a saturating %d-job run):\n", jobsCal)
	offerSpecs := []struct {
		name  string
		dev   gpu.Config
		price float64
		max   int
	}{
		{"t4", gpu.TeslaT4(), 0.53, fleet},
		{"p100", gpu.TeslaP100(), 1.46, fleet},
		{"gtx1660", gpu.GTX1660Super(), 0.25, fleet + 2},
	}
	offers := make([]autoscale.Offer, 0, len(offerSpecs))
	fmt.Fprintf(out, "  %-8s %8s %12s %14s\n", "offer", "$/hr", "rate(req/s)", "$/(kreq/s)/hr")
	for _, o := range offerSpecs {
		rate, err := calibrateReplicaRate(o.dev, jobsCal)
		if err != nil {
			return err
		}
		offers = append(offers, autoscale.Offer{
			Name: o.name, Dev: o.dev, DollarsPerHour: o.price, RatePerSec: rate, Max: o.max,
		})
		fmt.Fprintf(out, "  %-8s %8.2f %12.0f %14.3f\n", o.name, o.price, rate, o.price/rate*1000)
	}
	peakRate := spec.BaseRatePerSec * (1 + spec.Amplitude)
	mix, err := autoscale.OptimizeMix(offers, peakRate, 1.15)
	if err != nil {
		return err
	}
	mixStr := ""
	for i, n := range mix.Counts {
		if n == 0 {
			continue
		}
		if mixStr != "" {
			mixStr += ","
		}
		mixStr += fmt.Sprintf("%s:%d", offers[i].Name, n)
	}
	fmt.Fprintf(out, "  optimizer, peak %.0f req/s ×1.15 headroom → {%s}: %.0f req/s at $%.2f/hr\n",
		peakRate, mixStr, mix.RatePerSec, mix.CostPerHour)

	mixDevs, mixPrices, _ := mix.Devices(offers)
	ini := 3
	if ini > len(mixDevs) {
		ini = len(mixDevs)
	}
	mixRun, err := runAutoscaledFleet("mix/"+best.label, mixDevs, mixPrices,
		autoscale.PolicyConfig{Name: "queue-depth"}, spec, 1, ini)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  autoscaled {%s} under the same trace: $%.2f/day at %.1f%% attainment (all-T4 %s: $%.2f/day at %.1f%%).\n",
		mixStr, mixRun.costDay, mixRun.attainment*100, best.label, best.costDay, best.attainment*100)

	cell := autoscaleTrajCell{
		Schema: "paella-autoscale-traj/v1", Detail: detail,
		Policy:      best.label,
		PeakCostDay: peak.costDay, BestCostDay: best.costDay, SavingsPct: savings,
		PeakAttain: peak.attainment, BestAttain: best.attainment,
		ColdStarts: best.stats.ColdStarts,
		Mix:        mixStr, MixCostPerHr: mix.CostPerHour,
		MixAttain: mixRun.attainment, MixCostDay: mixRun.costDay,
	}
	if path := os.Getenv(AutoscaleTrajEnv); path != "" {
		f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		if err := enc.Encode(&cell); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nappended headline cell to %s\n", path)
	}
	return nil
}
