package experiments

import (
	"fmt"
	"io"

	"paella/internal/cluster"
	"paella/internal/compiler"
	"paella/internal/core"
	"paella/internal/gpu"
	"paella/internal/model"
	"paella/internal/sched"
	"paella/internal/serving"
	"paella/internal/sim"
	"paella/internal/vram"
	"paella/internal/workload"
)

func init() {
	register(Experiment{
		Name:  "vram",
		Title: "Extension: device-memory residency — cold-start paging and eviction-aware routing",
		Run:   runVRAM,
	})
}

// vramBudget is the per-GPU weight budget used by both parts: small enough
// that realistic zoos overflow it (a T4 has 16 GiB, but most of it goes to
// activations, KV caches and CUDA context — the weight partition is the
// scarce slice this models).
const vramBudget = 256 << 20

// runVRAM exercises the residency subsystem end to end.
//
// Part A grows a synthetic model zoo past the weight budget on one GPU:
// once the working set no longer fits, requests start paying cold-start
// weight loads over the shared PCIe link, the warm-hit ratio falls, and
// tail JCT degrades — the many-models serving problem.
//
// Part B keeps an over-budget zoo on a 2-GPU cluster and compares
// residency-oblivious least-loaded routing against the residency-aware
// balancer: steering requests to the GPU that already holds the weights
// converts cold starts into warm hits, the win of cluster-level locality.
func runVRAM(w io.Writer, d Detail) error {
	zooSizes := []int{2, 4, 8, 16, 24}
	jobsA, jobsB := 1500, 1200
	if d == Quick {
		zooSizes = []int{2, 12}
		jobsA, jobsB = 250, 250
	}

	fmt.Fprintf(w, "Extension — device-memory residency (%d MiB weight budget per GPU)\n", vramBudget>>20)
	fmt.Fprintln(w, "\nPart A: zoo-size sweep, one T4, zipf(1.1) popularity, 250 req/s:")
	fmt.Fprintf(w, "  %6s %9s %6s %6s %10s %11s %12s %12s\n",
		"models", "weights", "n", "cold", "hit-ratio", "mean-load", "p50", "p99")
	for _, n := range zooSizes {
		zoo := model.SyntheticZoo(n)
		names := make([]string, len(zoo))
		var totalWeights int64
		for i, m := range zoo {
			names[i] = m.Name
			totalWeights += int64(m.WeightBytes)
		}
		trace := workload.MustGenerate(workload.Spec{
			Mix: workload.ZipfMix(names, 1.1), Sigma: 1.5,
			RatePerSec: 250, Jobs: jobsA, Clients: 4, Seed: 42,
		})
		sys, err := serving.NewSystem("Paella")
		if err != nil {
			return err
		}
		opts := serving.DefaultOptions()
		opts.Models = zoo
		opts.VRAM = &vram.Config{CapacityBytes: vramBudget}
		opts.MaxSimTime = trace[len(trace)-1].At + 8*sim.Second
		col, err := serving.RunTrace(sys, trace, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %6d %8dM %6d %6d %9.1f%% %11v %12v %12v\n",
			n, totalWeights>>20, col.Len(), col.ColdStarts(),
			100*col.WarmHitRatio(), col.MeanLoadNs(), col.P50(), col.P99())
	}

	const nB = 12
	fmt.Fprintf(w, "\nPart B: 2×T4 cluster, %d-model zoo (over budget), 400 req/s:\n", nB)
	fmt.Fprintf(w, "  %-18s %12s %12s %12s %6s %6s\n",
		"balancer", "tput(req/s)", "p50", "p99", "cold", "loads")
	balancers := []func() cluster.Balancer{
		cluster.NewLeastLoaded,
		func() cluster.Balancer { return cluster.NewResidencyAware(nil) },
	}
	zoo := model.SyntheticZoo(nB)
	names := make([]string, len(zoo))
	for i, m := range zoo {
		names[i] = m.Name
	}
	trace := workload.MustGenerate(workload.Spec{
		Mix: workload.ZipfMix(names, 1.1), Sigma: 1.5,
		RatePerSec: 400, Jobs: jobsB, Clients: 1, Seed: 42,
	})
	for _, mk := range balancers {
		b := mk()
		env := sim.NewEnv()
		c, err := cluster.NewWithConfig(env,
			[]gpu.Config{gpu.TeslaT4(), gpu.TeslaT4()},
			func(int, gpu.Config) core.Config {
				cfg := core.DefaultConfig(sched.NewPaella(10000))
				cfg.VRAM = &vram.Config{CapacityBytes: vramBudget}
				return cfg
			}, b)
		if err != nil {
			return err
		}
		for _, m := range zoo {
			if err := c.RegisterModel(m, compiler.DefaultConfig(), 1); err != nil {
				return err
			}
		}
		conn := c.Connect()
		for i, r := range trace {
			id, mdl := uint64(i+1), r.Model
			at := r.At
			env.At(at, func() {
				conn.Submit(core.Request{ID: id, Model: mdl, Submit: env.Now()})
			})
		}
		env.RunUntil(trace[len(trace)-1].At + 8*sim.Second)
		col := c.Collector()
		var loads uint64
		for i := 0; i < c.Size(); i++ {
			loads += c.Dispatcher(i).VRAM().Stats().Loads
		}
		fmt.Fprintf(w, "  %-18s %12.1f %12v %12v %6d %6d\n",
			b.Name(), col.Throughput(), col.P50(), col.P99(),
			col.ColdStarts(), loads)
	}
	fmt.Fprintln(w, "\nExpected: Part A — once total weights exceed the budget the hit")
	fmt.Fprintln(w, "ratio falls and weight loads inflate tail JCT (loads share PCIe with")
	fmt.Fprintln(w, "tensor traffic; there is no free bandwidth for paging). Part B —")
	fmt.Fprintln(w, "residency-aware routing pins each model to the GPU already holding")
	fmt.Fprintln(w, "its weights, cutting cold starts and reload traffic versus")
	fmt.Fprintln(w, "residency-oblivious least-loaded routing.")
	return nil
}
