package experiments

import (
	"fmt"
	"io"

	"paella/internal/gpu"
	"paella/internal/model"
	"paella/internal/serving"
	"paella/internal/workload"
)

func init() {
	register(Experiment{
		Name:  "fig2",
		Title: "Figure 2: HoL blocking — job-by-job submission vs Paella dispatching (GTX 1660 SUPER)",
		Run:   runFig2,
	})
}

// runFig2 reproduces §2.1's motivating experiment: the synthetic workload
// (8 kernels/job, 128-thread 9-register single-block kernels, ~300µs each)
// on a GTX 1660 SUPER allows 176 concurrent kernels, but job-by-job
// submission fills the 32 hardware queues with dependent kernels and
// strands the device at ~18% occupancy. Paella's informed dispatcher
// interleaves the independent kernels.
func runFig2(w io.Writer, d Detail) error {
	rates := []float64{2000, 5000, 8000, 12000, 16000, 20000, 26000, 32000}
	jobs := 4000
	if d == Quick {
		rates = []float64{2000, 8000, 16000}
		jobs = 800
	}
	opts := serving.Options{
		DevCfg:      gpu.GTX1660Super(),
		Models:      []*model.Model{model.Fig2Job()},
		CompilerCfg: defaultCompiler(),
		ProfileRuns: 1,
	}
	mix := workload.Uniform("fig2job")

	fmt.Fprintln(w, "Figure 2 — p99 JCT vs goodput, synthetic HoL workload:")
	// "Job-by-job submission": every kernel of a job enters the hardware
	// queues at arrival (per-job streams). "Paella dispatching": identical
	// except the dispatcher times each kernel's release (FIFO policy, so
	// only the dispatch mechanism differs).
	for _, system := range []string{"CUDA-MS", "Paella-FIFO"} {
		pts, err := sweep(system, mix, 1.5, rates, jobs, 8, opts, 77)
		if err != nil {
			return err
		}
		label := "Job-by-job submission"
		if system == "Paella-FIFO" {
			label = "Paella dispatching"
		}
		printSweep(w, label, pts)
	}
	fmt.Fprintln(w, "\nExpected shape (paper): job-by-job submission saturates at roughly")
	fmt.Fprintln(w, "18% of device concurrency (32 of 176 kernels) while Paella sustains")
	fmt.Fprintln(w, "≈2.2× higher goodput at comparable tail latency.")
	return nil
}
