package experiments

import (
	"fmt"
	"io"

	"paella/internal/compiler"
	"paella/internal/core"
	"paella/internal/gpu"
	"paella/internal/model"
	"paella/internal/serving"
	"paella/internal/workload"
)

func init() {
	register(Experiment{
		Name:  "ablation-b",
		Title: "Ablation: overshoot budget B (§6 full-utilization rule)",
		Run:   runAblationB,
	})
	register(Experiment{
		Name:  "ablation-queues",
		Title: "Ablation: hardware queue count (HoL blocking sensitivity)",
		Run:   runAblationQueues,
	})
	register(Experiment{
		Name:  "ablation-agg",
		Title: "Ablation: notification aggregation group size (§5.2)",
		Run:   runAblationAgg,
	})
	register(Experiment{
		Name:  "table3",
		Title: "Table 3: compared systems and variants",
		Run:   runTable3,
	})
}

// runAblationB sweeps the B overshoot budget: too small starves the GPU
// during the notification round trip; too large re-creates hardware
// queueing and erodes scheduling control.
func runAblationB(w io.Writer, d Detail) error {
	bs := []int{0, 8, 32, 96, 256, 1024}
	jobs := 600
	if d == Quick {
		bs = []int{0, 96}
		jobs = 150
	}
	opts := serving.DefaultOptions()
	opts.ProfileRuns = 1
	mix := workload.Uniform(model.Names()...)
	fmt.Fprintln(w, "Ablation — overshoot budget B at 400 req/s (σ=1.5):")
	fmt.Fprintf(w, "  %8s %14s %12s %12s\n", "B", "tput (req/s)", "p50", "p99")
	for _, b := range bs {
		b := b
		sys := serving.NewPaellaTweaked("Paella", func(c *core.Config) { c.OvershootBlocks = b })
		trace := workload.MustGenerate(workload.Spec{
			Mix: mix, Sigma: 1.5, RatePerSec: 400, Jobs: jobs, Clients: 8, Seed: 33,
		})
		runOpts := opts
		runOpts.MaxSimTime = trace[len(trace)-1].At + 8e9
		col := serving.MustRunTrace(sys, trace, runOpts)
		fmt.Fprintf(w, "  %8d %14.1f %12v %12v\n", b, col.Throughput(), col.P50(), col.P99())
	}
	fmt.Fprintln(w, "\nExpected: small B under-utilizes (lower throughput / higher p99);")
	fmt.Fprintln(w, "large B converges toward the kbk ablation's hardware-queue behaviour.")
	return nil
}

// runAblationQueues sweeps the device's hardware queue count under the
// job-by-job baseline, quantifying how much HoL blocking queue scarcity
// causes (Figure 1's microarchitecture story, at scale).
func runAblationQueues(w io.Writer, d Detail) error {
	queueCounts := []int{1, 2, 8, 32, 128}
	jobs := 1500
	if d == Quick {
		queueCounts = []int{1, 32}
		jobs = 400
	}
	fmt.Fprintln(w, "Ablation — hardware queues vs job-by-job goodput (Fig. 2 workload):")
	fmt.Fprintf(w, "  %8s %14s %12s\n", "queues", "tput (req/s)", "p99")
	for _, q := range queueCounts {
		devCfg := gpu.GTX1660Super()
		devCfg.NumHWQueues = q
		opts := serving.Options{
			DevCfg:      devCfg,
			Models:      []*model.Model{model.Fig2Job()},
			CompilerCfg: compiler.DefaultConfig(),
			ProfileRuns: 1,
		}
		trace := workload.MustGenerate(workload.Spec{
			Mix: workload.Uniform("fig2job"), Sigma: 1.5,
			RatePerSec: 20000, Jobs: jobs, Clients: 8, Seed: 44,
		})
		opts.MaxSimTime = trace[len(trace)-1].At + 4e9
		col := serving.MustRunTrace(serving.MustNewSystem("CUDA-MS"), trace, opts)
		fmt.Fprintf(w, "  %8d %14.1f %12v\n", q, col.Throughput(), col.P99())
	}
	fmt.Fprintln(w, "\nExpected: goodput rises with queue count (less sharing → less HoL")
	fmt.Fprintln(w, "blocking) but plateaus below Paella's informed dispatch (Fig. 2).")
	return nil
}

// runAblationAgg sweeps the notification aggregation group: smaller groups
// flood the dispatcher with records, larger groups delay occupancy
// feedback.
func runAblationAgg(w io.Writer, d Detail) error {
	groups := []int{1, 4, 16, 64}
	jobs := 400
	if d == Quick {
		groups = []int{1, 16}
		jobs = 100
	}
	mix := workload.Uniform(model.Names()...)
	fmt.Fprintln(w, "Ablation — notification aggregation group size at 300 req/s:")
	fmt.Fprintf(w, "  %8s %14s %12s %16s\n", "group", "tput (req/s)", "p99", "notifs handled")
	for _, g := range groups {
		g := g
		opts := serving.DefaultOptions()
		opts.ProfileRuns = 1
		opts.DevCfg.AggGroup = g
		opts.CompilerCfg.AggGroup = g
		sys := serving.NewPaellaTweaked("Paella", func(c *core.Config) {})
		trace := workload.MustGenerate(workload.Spec{
			Mix: mix, Sigma: 1.5, RatePerSec: 300, Jobs: jobs, Clients: 8, Seed: 55,
		})
		opts.MaxSimTime = trace[len(trace)-1].At + 8e9
		col := serving.MustRunTrace(sys, trace, opts)
		disp := sys.(interface{ Dispatcher() *core.Dispatcher }).Dispatcher()
		fmt.Fprintf(w, "  %8d %14.1f %12v %16d\n",
			g, col.Throughput(), col.P99(), disp.Stats().NotifsHandled)
	}
	fmt.Fprintln(w, "\nExpected: ×16 aggregation cuts dispatcher records an order of")
	fmt.Fprintln(w, "magnitude with negligible latency cost (the paper's §5.2 trade).")
	return nil
}

func runTable3(w io.Writer, _ Detail) error {
	fmt.Fprintln(w, "Table 3 — compared systems and variants:")
	fmt.Fprintf(w, "  %-16s %-14s %-10s %-12s\n", "system", "interface", "dispatch", "scheduler")
	for _, row := range serving.Table3() {
		fmt.Fprintf(w, "  %-16s %-14s %-10s %-12s\n", row.Name, row.Interface, row.Dispatch, row.Scheduler)
	}
	return nil
}
