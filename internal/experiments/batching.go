package experiments

import (
	"fmt"
	"io"

	"paella/internal/model"
	"paella/internal/serving"
	"paella/internal/sim"
	"paella/internal/telemetry"
	"paella/internal/workload"
)

func init() {
	register(Experiment{
		Name:  "ablation-batching",
		Title: "Extension (§8): dynamic batching vs critical-path latency",
		Run:   runAblationBatching,
	})
}

// runAblationBatching quantifies the §2.2/§8 argument: dynamic batching
// amortizes per-request overheads — raising a saturated frontend's
// throughput — but its window wait and batched execution are poison for
// critical-path latency, which is why Paella does not batch.
func runAblationBatching(w io.Writer, d Detail) error {
	jobs := 600
	if d == Quick {
		jobs = 150
	}
	opts := serving.DefaultOptions()
	opts.Models = []*model.Model{model.Generate(model.Table2()[1])} // mobilenetv2
	opts.ProfileRuns = 1

	configs := []struct {
		label  string
		mk     func() serving.System
		window sim.Time
	}{
		{"Triton (no batching)", func() serving.System { return serving.NewTriton() }, 0},
		{"Triton batch≤8 w=1ms", func() serving.System { return serving.NewTritonBatching(sim.Millisecond, 8) }, sim.Millisecond},
		{"Triton batch≤32 w=5ms", func() serving.System { return serving.NewTritonBatching(5*sim.Millisecond, 32) }, 5 * sim.Millisecond},
		{"Paella", func() serving.System { return serving.MustNewSystem("Paella") }, 0},
	}

	fmt.Fprintln(w, "Extension — dynamic batching trade-off (MobileNetV2):")
	rates := []float64{100, 400, 1200}
	var anatomyRows []telemetry.SystemAnatomy
	for ri, rate := range rates {
		fmt.Fprintf(w, "\noffered %.0f req/s:\n", rate)
		fmt.Fprintf(w, "  %-24s %14s %12s %12s\n", "system", "tput (req/s)", "p50", "p99")
		trace := workload.MustGenerate(workload.Spec{
			Mix: workload.Uniform("mobilenetv2"), Sigma: 1.5,
			RatePerSec: rate, Jobs: jobs, Clients: 8, Seed: 66,
		})
		runOpts := opts
		runOpts.MaxSimTime = trace[len(trace)-1].At + 8*sim.Second
		for _, c := range configs {
			col := serving.MustRunTrace(c.mk(), trace, runOpts)
			fmt.Fprintf(w, "  %-24s %14.1f %12v %12v\n",
				c.label, col.Throughput(), col.P50(), col.P99())
			if ri == len(rates)-1 {
				anatomyRows = append(anatomyRows, telemetry.SystemAnatomy{System: c.label, Collector: col})
			}
		}
	}

	// Where the latency goes at saturation: the anatomy attributes the
	// batching configurations' extra p99 to batch-hold (window wait) and
	// sched-wait, against Paella's exec-dominated profile.
	fmt.Fprintf(w, "\nLatency anatomy at %.0f req/s (phase means / p99s):\n", rates[len(rates)-1])
	if err := telemetry.WriteAnatomyTable(w, anatomyRows); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nExpected: batching rescues Triton's throughput at saturation but")
	fmt.Fprintln(w, "adds window-wait latency at low load; Paella reaches higher")
	fmt.Fprintln(w, "throughput without batching at all (§8).")
	return nil
}
