// Package experiments regenerates every table and figure of the paper's
// evaluation (§2 and §7). Each experiment is a named runner that prints the
// same rows/series the paper reports, plus the paper's published values
// where applicable so the shapes can be compared directly (absolute numbers
// differ: the substrate is a simulator, not the authors' testbed).
//
// Run them via cmd/paella-bench, the root-level benchmarks in
// bench_test.go, or directly:
//
//	exp, _ := experiments.ByName("fig11")
//	exp.Run(os.Stdout, experiments.Quick)
package experiments

import (
	"fmt"
	"io"
	"sort"

	"paella/internal/metrics"
	"paella/internal/serving"
	"paella/internal/sim"
	"paella/internal/workload"
)

// Detail selects how much work an experiment does.
type Detail int

const (
	// Quick runs a reduced sweep (for tests and -short benchmarks).
	Quick Detail = iota
	// Full runs the paper-scale sweep.
	Full
)

// Experiment is one reproducible table/figure runner.
type Experiment struct {
	// Name is the registry key, e.g. "fig11".
	Name string
	// Title describes what the paper artifact shows.
	Title string
	// Run executes the experiment and writes its report.
	Run func(w io.Writer, d Detail) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every registered experiment in a stable order.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName looks up an experiment.
func ByName(name string) (Experiment, error) {
	for _, e := range registry {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (try: %v)", name, names())
}

func names() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.Name)
	}
	return out
}

// LoadPoint is one point of a throughput/latency sweep.
type LoadPoint struct {
	OfferedRate float64
	Throughput  float64
	P99         sim.Time
	P50         sim.Time
	Mean        sim.Time
	Completed   int
	// PerModel maps model name → p99 for panel plots.
	PerModelP99 map[string]sim.Time
}

// sweep runs one system across offered rates and returns the points.
func sweep(system string, mix workload.Mix, sigma float64, rates []float64,
	jobs, clients int, opts serving.Options, seed int64) ([]LoadPoint, error) {
	points := make([]LoadPoint, 0, len(rates))
	for _, rate := range rates {
		trace, err := workload.Generate(workload.Spec{
			Mix: mix, Sigma: sigma, RatePerSec: rate,
			Jobs: jobs, Clients: clients, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		runOpts := opts
		// Give saturated systems a bounded drain window: the arrival span
		// plus a grace period proportional to total offered work.
		runOpts.MaxSimTime = trace[len(trace)-1].At + 8*sim.Second
		sys, err := serving.NewSystem(system)
		if err != nil {
			return nil, err
		}
		col, err := serving.RunTrace(sys, trace, runOpts)
		if err != nil {
			return nil, err
		}
		pt := LoadPoint{
			OfferedRate: rate,
			Throughput:  col.Throughput(),
			P99:         col.P99(),
			P50:         col.P50(),
			Mean:        col.MeanJCT(),
			Completed:   col.Len(),
			PerModelP99: map[string]sim.Time{},
		}
		for _, m := range mix.Models {
			sub := col.FilterModel(m)
			if sub.Len() > 0 {
				pt.PerModelP99[m] = sub.P99()
			}
		}
		points = append(points, pt)
	}
	return points, nil
}

// printSweep renders one system's sweep as a table block.
func printSweep(w io.Writer, system string, pts []LoadPoint) {
	fmt.Fprintf(w, "  %s:\n", system)
	fmt.Fprintf(w, "    %10s %12s %12s %12s %6s\n", "offered", "tput(req/s)", "p99", "mean", "n")
	for _, p := range pts {
		fmt.Fprintf(w, "    %10.0f %12.1f %12v %12v %6d\n",
			p.OfferedRate, p.Throughput, p.P99, p.Mean, p.Completed)
	}
}

// meanOf is a tiny helper for per-record aggregates.
func meanOf(records []metrics.JobRecord, f func(metrics.JobRecord) sim.Time) sim.Time {
	if len(records) == 0 {
		return 0
	}
	var total sim.Time
	for _, r := range records {
		total += f(r)
	}
	return total / sim.Time(len(records))
}
