package experiments

import (
	"fmt"
	"io"

	"paella/internal/model"
	"paella/internal/sched"
	"paella/internal/serving"
	"paella/internal/sim"
	"paella/internal/workload"
)

func init() {
	register(Experiment{
		Name:  "fig13",
		Title: "Figure 13: mean latency of short vs long jobs across the fairness threshold",
		Run:   runFig13,
	})
}

// runFig13 reproduces the fairness sweep: two clients, one submitting
// short jobs and one submitting long jobs with 5× the kernels, under
// sustained overload so scheduling order dominates latency. Lower
// thresholds trigger the deficit override earlier, trading short-job
// latency for long-job latency; as the threshold approaches zero the
// system approaches oldest-first (Paella-SS-like) service.
func runFig13(w io.Writer, d Detail) error {
	thresholds := []float64{500, 400, 300, 200, 100, 50, 0}
	burst := 600 // jobs per type, submitted over a short window
	if d == Quick {
		thresholds = []float64{500, 100, 0}
		burst = 150
	}
	shortM, longM := model.LongShort()
	opts := serving.DefaultOptions()
	opts.Models = []*model.Model{shortM, longM}
	opts.ProfileRuns = 1

	// Client 0 submits shorts, client 1 submits longs, interleaved over a
	// 100ms window — far faster than the device can drain, so both types
	// contend for the whole run.
	var trace []workload.Request
	window := 100 * sim.Millisecond
	for i := 0; i < burst; i++ {
		at := sim.Time(i) * window / sim.Time(burst)
		trace = append(trace, workload.Request{At: at, Model: shortM.Name, Client: 0})
		if i%5 == 0 { // long jobs have 5× kernels; submit 1/5 as many
			trace = append(trace, workload.Request{At: at + 1, Model: longM.Name, Client: 1})
		}
	}

	fmt.Fprintln(w, "Figure 13 — mean JCT vs fairness threshold (less fair → more fair):")
	fmt.Fprintf(w, "  %10s %16s %16s\n", "threshold", "short (8 kern)", "long (40 kern)")
	for _, thr := range thresholds {
		thr := thr
		sys := serving.NewPaellaWithPolicy("Paella-thr", func() sched.Policy {
			return sched.NewPaella(thr)
		})
		col := serving.MustRunTrace(sys, trace, opts)
		shorts := col.FilterModel(shortM.Name)
		longs := col.FilterModel(longM.Name)
		fmt.Fprintf(w, "  %10.0f %16v %16v\n", thr, shorts.MeanJCT(), longs.MeanJCT())
	}
	fmt.Fprintln(w, "\nExpected shape (paper): decreasing the threshold raises short-job")
	fmt.Fprintln(w, "mean latency and lowers long-job mean latency, converging as the")
	fmt.Fprintln(w, "threshold approaches zero.")
	return nil
}
