package experiments

import (
	"fmt"
	"io"

	"paella/internal/model"
	"paella/internal/serving"
	"paella/internal/sim"
	"paella/internal/workload"
)

func init() {
	register(Experiment{
		Name:  "fig10",
		Title: "Figure 10: per-request overhead breakdown for a single MobileNetV2 request",
		Run:   runFig10,
	})
}

// clientSendRecv is the client-side staging cost (write input tensor /
// read output) common to the shared-memory systems.
const clientSendRecv = 2 * sim.Microsecond

// runFig10 sends one isolated MobileNetV2 request through each system and
// decomposes the non-execution latency into the paper's four components.
func runFig10(w io.Writer, _ Detail) error {
	systems := []string{
		"Triton", "Clockwork", "Paella",
		"Paella-MS-kbk", "Paella-MS-jbj", "Paella-SS",
		"Paella-SJF", "Paella-RR",
	}
	opts := serving.DefaultOptions()
	opts.Models = []*model.Model{model.Generate(model.Table2()[1])} // mobilenetv2
	opts.ProfileRuns = 2
	trace := []workload.Request{{At: sim.Millisecond, Model: "mobilenetv2", Client: 0}}

	fmt.Fprintln(w, "Figure 10 — single-request overhead breakdown (µs; execution excluded):")
	fmt.Fprintf(w, "  %-14s %10s %12s %8s %12s %8s\n",
		"system", "framework", "queue/sched", "comm", "client s/r", "total")
	for _, name := range systems {
		col := serving.MustRunTrace(serving.MustNewSystem(name), trace, opts)
		if col.Len() != 1 {
			return fmt.Errorf("fig10: %s delivered %d records", name, col.Len())
		}
		r := col.Records()[0]
		comm := r.CommNs()
		if comm < 0 {
			comm = 0
		}
		total := r.FrameworkNs + r.SchedNs + comm + clientSendRecv
		fmt.Fprintf(w, "  %-14s %10.1f %12.1f %8.1f %12.1f %8.1f\n",
			name,
			r.FrameworkNs.Micros(), r.SchedNs.Micros(), comm.Micros(),
			clientSendRecv.Micros(), total.Micros())
	}
	fmt.Fprintln(w, "\nExpected shape (paper): Triton's gRPC communication dominates its")
	fmt.Fprintln(w, "~hundreds-of-µs overhead; Clockwork's controller/worker split costs")
	fmt.Fprintln(w, "even more framework time; all Paella variants stay within tens of µs,")
	fmt.Fprintln(w, "with scheduling overhead comparable to their FIFO ablations.")
	return nil
}
