package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"paella/internal/compiler"
	"paella/internal/core"
	"paella/internal/gpu"
	"paella/internal/metrics"
	"paella/internal/model"
	"paella/internal/sched"
	"paella/internal/sim"
)

func init() {
	register(Experiment{
		Name:  "ablation-edf",
		Title: "Extension (§2.1/§6): deadline-aware scheduling (EDF) vs deadline-blind policies",
		Run:   runAblationEDF,
	})
}

// runAblationEDF demonstrates a capability the paper's §2.1 calls out as
// impossible with hardware queues: honouring per-request deadlines. Each
// request carries a deadline of a few multiples of its model's execution
// time; goodput counts only requests that met theirs.
func runAblationEDF(w io.Writer, d Detail) error {
	jobs := 600
	if d == Quick {
		jobs = 150
	}
	policies := []struct {
		label string
		mk    func() sched.Policy
	}{
		{"EDF", sched.NewEDF},
		{"SRPT", sched.NewSRPT},
		{"FIFO", sched.NewFIFO},
	}
	devCfg := gpu.TeslaT4()
	models := []*model.Model{
		model.Generate(model.Table2()[0]), // resnet18
		model.Generate(model.Table2()[4]), // resnet50
	}

	fmt.Fprintln(w, "Extension — deadline goodput under a tight-deadline mix under slight overload:")
	fmt.Fprintf(w, "  %-8s %16s %16s %14s\n", "policy", "deadlines met", "goodput(req/s)", "p99 lateness")
	for _, pol := range policies {
		env := sim.NewEnv()
		cfg := core.DefaultConfig(pol.mk())
		disp := core.NewWithDevice(env, devCfg, cfg)
		for _, m := range models {
			ins := compiler.MustCompile(m, compiler.DefaultConfig(), devCfg, 1)
			if err := disp.RegisterModel(ins); err != nil {
				return err
			}
		}
		disp.Start()
		conn := disp.Connect()
		// Deterministic request stream: alternate models; deadlines are
		// tight multiples of each model's serial time; arrival rate slightly
		// above drain capacity so the policy must triage.
		rng := rand.New(rand.NewSource(9))
		deadlines := map[uint64]sim.Time{}
		var t sim.Time
		for i := 0; i < jobs; i++ {
			id := uint64(i + 1)
			m := models[i%2]
			t += sim.Time(rng.Intn(1200)) * sim.Microsecond
			slack := m.KernelTime() * sim.Time(2+rng.Intn(3)) // 2-4× exec
			at := t
			dl := at + slack
			deadlines[id] = dl
			mdl := m.Name
			env.At(at, func() {
				conn.Submit(core.Request{
					ID: id, Model: mdl, Client: 0, Submit: env.Now(), Deadline: dl,
				})
			})
		}
		env.Run()
		recs := disp.Collector().Records()
		met := 0
		var lateness []sim.Time
		for _, r := range recs {
			dl := deadlines[r.ID]
			if r.Delivered <= dl {
				met++
			} else {
				lateness = append(lateness, r.Delivered-dl)
			}
		}
		span := recs[len(recs)-1].Delivered - recs[0].Submit
		fmt.Fprintf(w, "  %-8s %11d/%4d %16.1f %14v\n",
			pol.label, met, len(recs),
			float64(met)/span.Seconds(), metrics.Percentile(lateness, 99))
	}
	fmt.Fprintln(w, "\nExpected: EDF meets the most deadlines; SRPT is close (short jobs")
	fmt.Fprintln(w, "have short deadlines here); FIFO misses many. No submission order")
	fmt.Fprintln(w, "can express this through the hardware queues (§2.1).")
	return nil
}
