package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"paella/internal/compiler"
	"paella/internal/metrics"
	"paella/internal/sim"
)

func init() {
	register(Experiment{
		Name:  "fig15",
		Title: "Figure 15: kernel instrumentation overhead CDFs (16 vs 160 blocks, aggregation on/off)",
		Run:   runFig15,
	})
}

// runFig15 measures the host-observed execution time of an instrumented
// empty kernel (launch → synchronization return) across variants. The
// deterministic cost model (calibrated in internal/compiler) provides the
// medians; launch/sync jitter is drawn from a seeded lognormal, matching
// the dispersion of the paper's CDFs. The real, wall-clock cost of the
// notification enqueue itself is measured by the testing.B benchmarks in
// internal/channel (BenchmarkNotifQueuePush and friends).
func runFig15(w io.Writer, d Detail) error {
	samples := 5000
	if d == Quick {
		samples = 500
	}
	base := 6 * sim.Microsecond // empty-kernel launch + sync floor
	variants := []struct {
		label  string
		blocks int
		cfg    *compiler.Config // nil = uninstrumented no-op
	}{
		{"No-op (16 blks)", 16, nil},
		{"No-op (160 blks)", 160, nil},
		{"Paella no agg (16 blks)", 16, cfgPtr(compiler.NoAggConfig())},
		{"Paella no agg (160 blks)", 160, cfgPtr(compiler.NoAggConfig())},
		{"Paella (16 blks)", 16, cfgPtr(compiler.DefaultConfig())},
		{"Paella (160 blks)", 160, cfgPtr(compiler.DefaultConfig())},
	}
	fmt.Fprintln(w, "Figure 15 — instrumented empty-kernel execution time (host-observed):")
	fmt.Fprintf(w, "  %-26s %10s %10s %10s %12s\n", "variant", "p50", "p90", "p99", "overhead@p90")
	rng := rand.New(rand.NewSource(15))
	var noopP90 [2]sim.Time
	for i, v := range variants {
		var over sim.Time
		if v.cfg != nil {
			over = v.cfg.KernelOverhead(v.blocks)
		}
		ds := make([]sim.Time, samples)
		for s := range ds {
			jitter := math.Exp(rng.NormFloat64() * 0.25) // launch/sync noise
			ds[s] = sim.Time(float64(base+over) * jitter)
		}
		sort.Slice(ds, func(a, b int) bool { return ds[a] < ds[b] })
		p50 := metrics.Percentile(ds, 50)
		p90 := metrics.Percentile(ds, 90)
		p99 := metrics.Percentile(ds, 99)
		if v.cfg == nil {
			noopP90[i%2] = p90
		}
		delta := p90 - noopP90[i%2]
		fmt.Fprintf(w, "  %-26s %10v %10v %10v %12v\n", v.label, p50, p90, p99, delta)
	}
	fmt.Fprintln(w, "\nExpected shape (paper, 90th percentile): notifications alone add")
	fmt.Fprintln(w, "~2.2µs at 160 blocks; the aggregation conditional adds more (16 blks:")
	fmt.Fprintln(w, "~5.5µs, 160 blks: ~6.6µs) but cuts dispatcher-side records 16×,")
	fmt.Fprintln(w, "which Figure 4 shows is the better trade.")
	fmt.Fprintf(w, "\nNotification records per kernel: agg=%d/%d, no-agg=%d/%d (16/160 blocks)\n",
		compiler.DefaultConfig().Records(16), compiler.DefaultConfig().Records(160),
		compiler.NoAggConfig().Records(16), compiler.NoAggConfig().Records(160))
	return nil
}

func cfgPtr(c compiler.Config) *compiler.Config { return &c }
