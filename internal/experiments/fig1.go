package experiments

import (
	"fmt"
	"io"

	"paella/internal/compiler"
	"paella/internal/core"
	"paella/internal/cudart"
	"paella/internal/gpu"
	"paella/internal/model"
	"paella/internal/sched"
	"paella/internal/sim"
)

func init() {
	register(Experiment{
		Name:  "fig1",
		Title: "Figure 1: GPU scheduling under different submission methods (2 SMs, 4 jobs × 3 SM-wide kernels)",
		Run:   runFig1,
	})
}

// fig1Model builds the didactic job: 3 kernels, each one block occupying an
// entire SM for 10µs.
func fig1Model(name string) *model.Model {
	k := &gpu.KernelSpec{
		Name:            name + "_k",
		Blocks:          1,
		ThreadsPerBlock: 1024,
		RegsPerThread:   16,
		BlockDuration:   10 * sim.Microsecond,
	}
	return &model.Model{
		Name:         name,
		Kernels:      []*gpu.KernelSpec{k},
		Seq:          []int{0, 0, 0},
		PinnedOutput: true,
	}
}

// fig1Direct runs the four jobs through the plain CUDA runtime on the
// given microarchitecture, one stream per job (or one shared stream).
func fig1Direct(arch gpu.Microarch, queues int, sharedStream bool) (*gpu.Trace, sim.Time, sim.Time) {
	env := sim.NewEnv()
	cfg := gpu.TwoSM(arch, queues)
	dev := gpu.NewDevice(env, cfg, nil)
	tr := gpu.NewTrace()
	dev.SetTrace(tr)
	ctx := cudart.NewContext(env, dev, cudart.Config{})
	var meanJCT sim.Time
	jobs := []string{"A", "B", "C", "D"}
	shared := ctx.StreamCreate()
	for _, name := range jobs {
		name := name
		m := fig1Model(name)
		stream := shared
		if !sharedStream {
			stream = ctx.StreamCreate()
		}
		env.Spawn(name, func(p *sim.Proc) {
			for _, ki := range m.Seq {
				stream.LaunchKernel(p, m.Kernels[ki], cudart.LaunchOpts{JobTag: name})
			}
			ev := stream.EventRecord()
			p.Wait(ev.Completion())
			meanJCT += env.Now()
		})
	}
	env.Run()
	return tr, tr.Makespan(), meanJCT / sim.Time(len(jobs))
}

// fig1Paella runs the same jobs through the gated dispatcher (the "Ideal"
// row: software-defined scheduling interleaves jobs perfectly).
func fig1Paella() (*gpu.Trace, sim.Time, sim.Time) {
	env := sim.NewEnv()
	devCfg := gpu.TwoSM(gpu.Kepler, 32)
	cfg := core.DefaultConfig(sched.NewSRPT())
	// Zero the cost model so the timeline is directly comparable to the
	// idealized hardware rows, and disable the overshoot budget: with
	// instant notifications the dispatcher can hold everything that does
	// not immediately fit, retaining full control of execution order.
	cfg.AdmitCost, cfg.DispatchCost, cfg.ShmLatency = 0, 0, 0
	cfg.OvershootBlocks = 0
	devCfg.NotifDelay = 0
	d := core.NewWithDevice(env, devCfg, cfg)
	tr := gpu.NewTrace()
	d.Device().SetTrace(tr)
	var meanJCT sim.Time
	done := 0
	for i, name := range []string{"A", "B", "C", "D"} {
		ins := compiler.MustCompile(fig1Model(name), compiler.Config{}, devCfg, 1)
		if err := d.RegisterModel(ins); err != nil {
			panic(err)
		}
		conn := d.Connect()
		conn.OnComplete = func(uint64) { meanJCT += env.Now(); done++ }
		id := uint64(i + 1)
		nm := name
		cn := conn
		env.At(0, func() {
			cn.Submit(core.Request{ID: id, Model: nm, Client: cn.ID, Submit: 0})
		})
	}
	d.Start()
	env.Run()
	return tr, tr.Makespan(), meanJCT / 4
}

func runFig1(w io.Writer, _ Detail) error {
	type row struct {
		label string
		tr    *gpu.Trace
		span  sim.Time
		jct   sim.Time
	}
	var rows []row
	tr, span, jct := fig1Direct(gpu.Fermi, 32, false)
	rows = append(rows, row{"Streams (Fermi and earlier): 1 hw queue", tr, span, jct})
	tr, span, jct = fig1Direct(gpu.Kepler, 32, false)
	rows = append(rows, row{"Streams (Kepler and later) / MPS (Volta+)", tr, span, jct})
	tr, span, jct = fig1Direct(gpu.Kepler, 32, true)
	rows = append(rows, row{"Baseline (single shared stream)", tr, span, jct})
	tr, span, jct = fig1Paella()
	rows = append(rows, row{"Ideal (Paella software-defined dispatch)", tr, span, jct})

	fmt.Fprintln(w, "Figure 1 — kernel timelines (one column = 10µs, letter = job):")
	for _, r := range rows {
		fmt.Fprintf(w, "\n%s  [makespan %v, mean JCT %v]\n", r.label, r.span, r.jct)
		fmt.Fprint(w, r.tr.Render(2, 10*sim.Microsecond))
	}
	fmt.Fprintln(w, "\nExpected shape (paper): no hardware submission method achieves the")
	fmt.Fprintln(w, "ideal schedule; Fermi serializes almost fully, Kepler/MPS overlap")
	fmt.Fprintln(w, "adjacent jobs, and only software-defined dispatch reaches the ideal")
	fmt.Fprintln(w, "6-slot makespan with jobs finishing at staggered completion times.")
	return nil
}
