package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"

	"paella/internal/cluster"
	"paella/internal/gpu"
	"paella/internal/llm"
	"paella/internal/metrics"
	"paella/internal/serving"
	"paella/internal/sim"
	"paella/internal/telemetry"
	"paella/internal/workload"
)

func init() {
	register(Experiment{
		Name:  "llm",
		Title: "Extension (§10): generative serving — continuous batching and prefill/decode disaggregation",
		Run:   runLLM,
	})
}

// LLMTrajEnv names the environment variable that, when set, makes the llm
// experiment append its headline cell (continuous vs static TTFT-goodput at
// the saturating load, plus the P/D disaggregation tradeoff) as one NDJSON
// line to the named file.
const LLMTrajEnv = "PAELLA_LLM_TRAJ"

// llmTrajCell is one NDJSON line of the bench trajectory.
type llmTrajCell struct {
	Schema           string  `json:"schema"` // "paella-llm-traj/v1"
	Detail           string  `json:"detail"` // "quick" | "full"
	Rate             float64 `json:"rate"`   // saturating offered load (req/s)
	SLOMs            float64 `json:"slo_ms"`
	StaticGoodput    float64 `json:"static_goodput"`
	ContGoodput      float64 `json:"cont_goodput"`
	GoodputSpeedup   float64 `json:"goodput_speedup"`
	StaticTTFTp99Ms  float64 `json:"static_ttft_p99_ms"`
	ContTTFTp99Ms    float64 `json:"cont_ttft_p99_ms"`
	ColocTPOTp99Ms   float64 `json:"coloc_tpot_p99_ms"`
	DisaggTPOTp99Ms  float64 `json:"disagg_tpot_p99_ms"`
	DisaggTTFTp99Ms  float64 `json:"disagg_ttft_p99_ms"`
	ColocTTFTp99Ms   float64 `json:"coloc_ttft_p99_ms"`
	KVTransferMeanMs float64 `json:"kv_transfer_mean_ms"`
}

// llmSLO is the time-to-first-token deadline the goodput columns score
// against: the interactive budget the paper's SLO discussion targets.
const llmSLO = 200 * sim.Millisecond

// runLLM has two parts.
//
// Part A (continuous vs launch-time batching): sweep offered load over the
// generative workload and score TTFT goodput at the 200ms SLO. At low load
// the two match — the batch rarely has more than one member. At saturating
// load static batching makes latecomers wait for the formed batch to drain
// every member's full output, so TTFT (and goodput) collapses while
// continuous batching admits them at the next iteration boundary.
//
// Part B (colocated vs disaggregated prefill/decode): at a moderate load,
// compare two colocated engines against a 1-prefill/1-decode split. The
// split isolates decode from prefill interference (lower TPOT tail) but
// pays the KV-cache handoff over the interconnect on every request (higher
// TTFT).
func runLLM(out io.Writer, d Detail) error {
	jobs, clients := 600, 8
	rates := []float64{100, 400, 1200}
	pdJobs := 400
	detail := "full"
	if d == Quick {
		jobs, pdJobs = 120, 100
		rates = []float64{100, 1200}
		detail = "quick"
	}
	toks := workload.DefaultTokenSpec(7)
	toks.MaxOutput = 64 // bound per-request decode work so sweeps stay fast

	mkOpts := func() serving.Options {
		opts := serving.DefaultOptions()
		opts.Models = nil // generative systems compile their own spec
		opts.LLM = &serving.LLMOptions{Tokens: toks}
		return opts
	}

	fmt.Fprintf(out, "Extension — generative serving, prompt~LN(%.0f) output~LN(%.0f)≤%d tok, TTFT SLO %v:\n",
		toks.PromptMean, toks.OutputMean, toks.MaxOutput, llmSLO)

	// Part A: continuous vs launch-time batching.
	goodputs := map[string][]float64{}
	ttftP99s := map[string][]sim.Time{}
	var anatomyRows []telemetry.SystemAnatomy
	for _, system := range []string{"Paella-LLM-static", "Paella-LLM"} {
		fmt.Fprintf(out, "\n  %s:\n", system)
		fmt.Fprintf(out, "    %10s %12s %12s %12s %16s\n", "offered", "ttft-p50", "ttft-p99", "tpot-p99", "goodput(req/s)")
		for ri, rate := range rates {
			trace := workload.MustGenerate(workload.Spec{
				Mix: workload.Uniform("llm"), Sigma: 2, RatePerSec: rate,
				Jobs: jobs, Clients: clients, Seed: 7,
			})
			opts := mkOpts()
			opts.MaxSimTime = trace[len(trace)-1].At + 30*sim.Second
			col := serving.MustRunTrace(serving.MustNewSystem(system), trace, opts)
			ttfts, tpots := col.TTFTs(), col.TPOTs()
			goodput := col.TTFTGoodput(llmSLO)
			fmt.Fprintf(out, "    %10.0f %12v %12v %12v %16.1f\n",
				rate, metrics.Percentile(ttfts, 50), metrics.Percentile(ttfts, 99),
				metrics.Percentile(tpots, 99), goodput)
			goodputs[system] = append(goodputs[system], goodput)
			ttftP99s[system] = append(ttftP99s[system], metrics.Percentile(ttfts, 99))
			if ri == len(rates)-1 {
				anatomyRows = append(anatomyRows, telemetry.SystemAnatomy{System: system, Collector: col})
			}
		}
	}

	last := len(rates) - 1
	cell := llmTrajCell{
		Schema: "paella-llm-traj/v1", Detail: detail,
		Rate: rates[last], SLOMs: llmSLO.Millis(),
		StaticGoodput:   goodputs["Paella-LLM-static"][last],
		ContGoodput:     goodputs["Paella-LLM"][last],
		StaticTTFTp99Ms: ttftP99s["Paella-LLM-static"][last].Millis(),
		ContTTFTp99Ms:   ttftP99s["Paella-LLM"][last].Millis(),
	}
	if cell.StaticGoodput > 0 {
		cell.GoodputSpeedup = cell.ContGoodput / cell.StaticGoodput
	}
	fmt.Fprintf(out, "\nSaturating load (%.0f req/s): continuous vs static = %.2fx TTFT-goodput (SLO %v);\n",
		cell.Rate, cell.GoodputSpeedup, llmSLO)
	fmt.Fprintf(out, "static TTFT p99 %v vs continuous %v — latecomers wait for formed batches to drain.\n",
		ttftP99s["Paella-LLM-static"][last], ttftP99s["Paella-LLM"][last])

	// Latency anatomy at the saturating load: the phase table names where
	// the TTFT win comes from — static batching's gap concentrates in
	// batch-hold (the group-drain wait), not in prefill or decode.
	fmt.Fprintf(out, "\nLatency anatomy at %.0f req/s (phase means / p99s):\n", rates[last])
	if err := telemetry.WriteAnatomyTable(out, anatomyRows); err != nil {
		return err
	}
	sHold := telemetry.MeanAnatomy(anatomyRows[0].Collector)[telemetry.PhaseBatchHold]
	cHold := telemetry.MeanAnatomy(anatomyRows[1].Collector)[telemetry.PhaseBatchHold]
	fmt.Fprintf(out, "  batch-hold carries the gap: %v static vs %v continuous.\n", sHold, cHold)

	// Part B: colocated vs disaggregated prefill/decode at moderate load.
	fmt.Fprintf(out, "\n  Prefill/decode placement (2 engines, %d reqs):\n", pdJobs)
	fmt.Fprintf(out, "    %-22s %12s %12s %12s %14s\n", "deployment", "ttft-p99", "tpot-p50", "tpot-p99", "kv-moved(MiB)")
	type pdResult struct {
		ttftP99, tpotP50, tpotP99, kvMean sim.Time
	}
	runPD := func(split bool) (pdResult, error) {
		env := sim.NewEnv()
		cfg := cluster.PDConfig{
			LLM: llm.Config{
				Spec:       llm.DefaultSpec(),
				DevCfg:     gpu.TeslaT4(),
				MaxBatch:   8,
				Continuous: true,
			},
			Prefills: 2,
		}
		if split {
			cfg.Prefills, cfg.Decodes = 1, 1
		}
		pd, err := cluster.NewPD(env, cfg)
		if err != nil {
			return pdResult{}, err
		}
		sampler, err := workload.NewTokenSampler(toks)
		if err != nil {
			return pdResult{}, err
		}
		rng := rand.New(rand.NewSource(7))
		at := sim.Time(0)
		for i := 0; i < pdJobs; i++ {
			at += sim.Time(rng.Intn(4000)+1000) * sim.Microsecond / 2
			tk := sampler.Next()
			req := llm.Request{
				ID: uint64(i + 1), Client: i % clients, Submit: at,
				Prompt: tk.Prompt, Output: tk.Output,
			}
			env.At(at, func() { pd.Submit(req) })
		}
		env.RunUntil(at + 30*sim.Second)
		col := pd.Collector()
		ttfts, tpots := col.TTFTs(), col.TPOTs()
		res := pdResult{
			ttftP99: metrics.Percentile(ttfts, 99),
			tpotP50: metrics.Percentile(tpots, 50),
			tpotP99: metrics.Percentile(tpots, 99),
			kvMean:  meanOf(col.Records(), func(r metrics.JobRecord) sim.Time { return sim.Time(r.KVTransferNs) }),
		}
		_, kvBytes := pd.Transfers()
		name := "colocated ×2"
		if split {
			name = "disaggregated 1P:1D"
		}
		fmt.Fprintf(out, "    %-22s %12v %12v %12v %14.1f\n",
			name, res.ttftP99, res.tpotP50, res.tpotP99, float64(kvBytes)/(1<<20))
		return res, nil
	}
	coloc, err := runPD(false)
	if err != nil {
		return err
	}
	disagg, err := runPD(true)
	if err != nil {
		return err
	}
	cell.ColocTPOTp99Ms = coloc.tpotP99.Millis()
	cell.DisaggTPOTp99Ms = disagg.tpotP99.Millis()
	cell.ColocTTFTp99Ms = coloc.ttftP99.Millis()
	cell.DisaggTTFTp99Ms = disagg.ttftP99.Millis()
	cell.KVTransferMeanMs = disagg.kvMean.Millis()
	fmt.Fprintf(out, "\nDisaggregation trades the per-request KV handoff (mean %v) for a decode pool\n", disagg.kvMean)
	fmt.Fprintf(out, "that prefill bursts cannot stall: TPOT p99 %v vs %v colocated.\n",
		disagg.tpotP99, coloc.tpotP99)

	if path := os.Getenv(LLMTrajEnv); path != "" {
		f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		if err := enc.Encode(&cell); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nappended headline cell to %s\n", path)
	}
	return nil
}
