package experiments

import (
	"fmt"
	"io"

	"paella/internal/cluster"
	"paella/internal/compiler"
	"paella/internal/core"
	"paella/internal/gpu"
	"paella/internal/model"
	"paella/internal/sched"
	"paella/internal/sim"
	"paella/internal/workload"
)

func init() {
	register(Experiment{
		Name:  "ablation-cluster",
		Title: "Extension (§8): cluster-level balancing over multiple Paella GPUs",
		Run:   runAblationCluster,
	})
}

// runAblationCluster stacks cluster-level routing on top of per-GPU Paella
// scheduling (the hierarchical composition §8 points at): two T4s behind
// round-robin, least-loaded, and model-affinity balancers, under a bursty
// mixed workload.
func runAblationCluster(w io.Writer, d Detail) error {
	jobs := 600
	if d == Quick {
		jobs = 150
	}
	balancers := []func() cluster.Balancer{
		cluster.NewRoundRobin,
		cluster.NewLeastLoaded,
		func() cluster.Balancer { return cluster.NewModelAffinity(2) },
	}
	names := model.Names()
	trace := workload.MustGenerate(workload.Spec{
		Mix: workload.Uniform(names...), Sigma: 2,
		RatePerSec: 800, Jobs: jobs, Clients: 1, Seed: 13,
	})

	fmt.Fprintln(w, "Extension — 2×T4 cluster at 800 req/s (σ=2, Table 2 mix):")
	fmt.Fprintf(w, "  %-16s %14s %12s %12s\n", "balancer", "tput (req/s)", "p50", "p99")
	for _, mk := range balancers {
		env := sim.NewEnv()
		b := mk()
		c, err := cluster.New(env,
			[]gpu.Config{gpu.TeslaT4(), gpu.TeslaT4()},
			func() sched.Policy { return sched.NewPaella(10000) }, b)
		if err != nil {
			return err
		}
		for _, name := range names {
			m := model.Generate(entryFor(name))
			if err := c.RegisterModel(m, compiler.DefaultConfig(), 1); err != nil {
				return err
			}
		}
		conn := c.Connect()
		for i, r := range trace {
			id, mdl := uint64(i+1), r.Model
			at := r.At
			env.At(at, func() {
				conn.Submit(core.Request{ID: id, Model: mdl, Submit: env.Now()})
			})
		}
		env.RunUntil(trace[len(trace)-1].At + 8*sim.Second)
		col := c.Collector()
		fmt.Fprintf(w, "  %-16s %14.1f %12v %12v\n",
			b.Name(), col.Throughput(), col.P50(), col.P99())
	}
	fmt.Fprintln(w, "\nExpected: least-loaded beats round-robin at the tail under bursty")
	fmt.Fprintln(w, "arrivals; affinity trades some balance for model locality. Cluster")
	fmt.Fprintln(w, "routing composes with per-GPU software-defined scheduling (§8).")
	return nil
}

func entryFor(name string) model.ZooEntry {
	for _, e := range model.Table2() {
		if e.Name == name {
			return e
		}
	}
	panic("experiments: unknown zoo entry " + name)
}
