package experiments

import (
	"testing"

	"paella/internal/cluster"
	"paella/internal/compiler"
	"paella/internal/core"
	"paella/internal/gpu"
	"paella/internal/sched"
	"paella/internal/sim"
)

// BenchmarkEngineHotLoop drives b.N events through a warmed-up cluster —
// the end-to-end hot loop of the scale benchmark, one Env.Step per op. With
// -benchmem this is the allocation-free-hot-loop acceptance check: after
// warm-up (pools and arenas at their high-water marks) the loop must report
// 0 allocs/op. The only remaining allocations are per-job admission
// records, amortized over the thousands of events each job generates, so
// the per-event figure truncates to zero.
func BenchmarkEngineHotLoop(b *testing.B) {
	// Size the trace so the measured phase cannot drain the event queue:
	// one job yields ~3k engine events.
	jobs := b.N/2000 + 400
	models, reqs := scaleWorkload(1, jobs)
	env := sim.NewEnv()
	c, err := cluster.New(env, []gpu.Config{gpu.TeslaT4()},
		func() sched.Policy { return sched.NewPaella(10000) }, cluster.NewLeastLoaded())
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range models {
		if err := c.RegisterModel(m, compiler.DefaultConfig(), 1); err != nil {
			b.Fatal(err)
		}
	}
	conn := c.Connect()
	for i, r := range reqs {
		id, mdl := uint64(i+1), r.Model
		env.At(r.At, func() {
			conn.Submit(core.Request{ID: id, Model: mdl, Submit: env.Now()})
		})
	}
	env.RunUntil(reqs[len(reqs)/4].At) // warm-up: pools reach steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !env.Step() {
			b.Fatalf("event queue drained after %d of %d steps; trace undersized", i, b.N)
		}
	}
}
