package experiments

import (
	"fmt"
	"io"

	"paella/internal/model"
	"paella/internal/serving"
	"paella/internal/sim"
	"paella/internal/workload"
)

func init() {
	register(Experiment{
		Name:  "fig11",
		Title: "Figure 11: p99 latency vs throughput, uniform 8-model mix, σ ∈ {2, 1.5}",
		Run:   runFig11,
	})
	register(Experiment{
		Name:  "fig12",
		Title: "Figure 12: p99 latency vs throughput, short (ResNet-18) vs long (InceptionV3) mix",
		Run:   runFig12,
	})
}

func runFig11(w io.Writer, d Detail) error {
	rates := []float64{50, 100, 200, 300, 400, 500}
	jobs := 400
	systems := serving.Fig11Systems()
	sigmas := []float64{2, 1.5}
	if d == Quick {
		rates = []float64{100, 300}
		jobs = 150
		systems = []string{"CUDA-SS", "CUDA-MS", "Triton", "Paella"}
		sigmas = []float64{2}
	}
	opts := serving.DefaultOptions()
	opts.ProfileRuns = 1
	mix := workload.Uniform(model.Names()...)

	fmt.Fprintln(w, "Figure 11 — p99 JCT vs average throughput (uniform Table 2 mix):")
	for _, sigma := range sigmas {
		fmt.Fprintf(w, "\nσ = %.1f\n", sigma)
		for _, system := range systems {
			pts, err := sweep(system, mix, sigma, rates, jobs, 8, opts, 101)
			if err != nil {
				return err
			}
			printSweep(w, system, pts)
			// Per-model p99 panels at the highest mutually-sustained rate.
			last := pts[len(pts)-1]
			fmt.Fprintf(w, "      per-model p99 at %0.f req/s offered:", last.OfferedRate)
			for _, name := range mix.Models {
				if v, ok := last.PerModelP99[name]; ok {
					fmt.Fprintf(w, " %s=%v", name, v)
				}
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w, "\nExpected shape (paper): Paella (and its mem-channel ablations)")
	fmt.Fprintln(w, "sustain 1–3 orders of magnitude more load than Triton and CUDA-SS at")
	fmt.Fprintln(w, "lower latency floors; SRPT-based variants hold the lowest p99 for the")
	fmt.Fprintln(w, "small models; RR trades small-model latency for long-model fairness.")
	return nil
}

func runFig12(w io.Writer, d Detail) error {
	rates := []float64{100, 200, 300, 400, 600, 800}
	jobs := 500
	systems := serving.Fig12Systems()
	sigmas := []float64{2, 1.5}
	if d == Quick {
		rates = []float64{200, 600}
		jobs = 150
		systems = []string{"CUDA-MS", "MPS", "Paella"}
		sigmas = []float64{2}
	}
	opts := serving.DefaultOptions()
	short, long := "resnet18", "inceptionv3"
	opts.Models = []*model.Model{
		model.Generate(model.Table2()[0]), // resnet18
		model.Generate(model.Table2()[7]), // inceptionv3
	}
	opts.ProfileRuns = 1
	// "The ratio of smaller to larger jobs is inversely proportional to
	// their size."
	weights := workload.InverseSizeWeights([]sim.Time{
		sim.Time(1.58 * float64(sim.Millisecond)),
		sim.Time(31.2 * float64(sim.Millisecond)),
	})
	mix := workload.Weighted([]string{short, long}, weights)

	fmt.Fprintln(w, "Figure 12 — short (ResNet-18) vs long (InceptionV3) jobs:")
	for _, sigma := range sigmas {
		fmt.Fprintf(w, "\nσ = %.1f\n", sigma)
		for _, system := range systems {
			pts, err := sweep(system, mix, sigma, rates, jobs, 7, opts, 202)
			if err != nil {
				return err
			}
			printSweep(w, system, pts)
			last := pts[len(pts)-1]
			fmt.Fprintf(w, "      at %0.f req/s offered: ResNet-18 p99=%v, InceptionV3 p99=%v\n",
				last.OfferedRate, last.PerModelP99[short], last.PerModelP99[long])
		}
	}
	fmt.Fprintln(w, "\nExpected shape (paper): short jobs benefit up to ~3× at the tail")
	fmt.Fprintln(w, "under Paella's SRPT-like policy compared to CUDA-MS/MPS, while")
	fmt.Fprintln(w, "long-job latency stays comparable; RR flips the trade-off.")
	return nil
}
