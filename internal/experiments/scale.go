package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"paella/internal/cluster"
	"paella/internal/compiler"
	"paella/internal/core"
	"paella/internal/gpu"
	"paella/internal/model"
	"paella/internal/sched"
	"paella/internal/sim"
	"paella/internal/workload"
)

func init() {
	register(Experiment{
		Name:  "scale",
		Title: "Extension (§8): engine scaling — shared-Env vs World serial vs World parallel",
		Run:   runScale,
	})
}

// ScaleOutEnv names the environment variable that, when set, makes the
// scale experiment write its machine-readable report (the BENCH_scale.json
// format) to the named file in addition to the table.
const ScaleOutEnv = "PAELLA_SCALE_OUT"

// Seed-baseline environment variables: the wall clock of the repository's
// seed commit running the identical 8-replica workload cannot be measured
// from inside this binary, so the regeneration procedure (EXPERIMENTS.md)
// measures it in a git worktree and passes it in. All three must be set
// for the JSON to include the baseline and a speedup figure.
const (
	ScaleSeedCommitEnv = "PAELLA_SCALE_SEED_COMMIT"
	ScaleSeedWallEnv   = "PAELLA_SCALE_SEED_WALL"  // seconds, e.g. "336.4"
	ScaleSeedStepsEnv  = "PAELLA_SCALE_SEED_STEPS" // event count of that run
)

// ScaleEngineResult is one engine's timing on one cell of the sweep.
type ScaleEngineResult struct {
	Engine    string  `json:"engine"` // "legacy" | "world-serial" | "world-parallel"
	WallSec   float64 `json:"wall_sec"`
	Steps     uint64  `json:"steps"`
	EventsPS  float64 `json:"events_per_sec"`
	Completed int     `json:"completed"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MeanMs    float64 `json:"mean_ms"`
}

// ScaleCell is one replica-count point of the sweep.
type ScaleCell struct {
	Replicas int                 `json:"replicas"`
	Jobs     int                 `json:"jobs"`
	Engines  []ScaleEngineResult `json:"engines"`
	// Identical reports whether World serial and World parallel produced
	// byte-for-byte identical job metrics — the determinism contract.
	Identical bool `json:"identical"`
}

// ScaleSeedBaseline records the seed commit's wall clock on the largest
// cell, measured out-of-process (see EXPERIMENTS.md for the procedure).
type ScaleSeedBaseline struct {
	Commit  string  `json:"commit"`
	WallSec float64 `json:"wall_sec"`
	Steps   uint64  `json:"steps"`
	Method  string  `json:"method"`
}

// ScaleReport is the BENCH_scale.json document.
type ScaleReport struct {
	Schema   string `json:"schema"`
	Detail   string `json:"detail"` // "quick" | "full"
	GOOS     string `json:"goos"`
	GOARCH   string `json:"goarch"`
	NumCPU   int    `json:"num_cpu"`
	Go       string `json:"go"`
	Workload string `json:"workload"`
	Cells    []ScaleCell
	// SeedBaseline and SpeedupVsSeed compare the largest cell's legacy
	// engine against the seed commit's engine on the same workload.
	SeedBaseline  *ScaleSeedBaseline `json:"seed_baseline,omitempty"`
	SpeedupVsSeed float64            `json:"speedup_vs_seed,omitempty"`
}

// scaleWorkload builds the sweep's workload for one replica count: a
// zipf(1.1) mix over an 8-model synthetic zoo, offered load scaled with
// the cluster size. Seed and shape match the seed-baseline driver
// (cmd/scalebench) so wall clocks are comparable.
func scaleWorkload(replicas, jobs int) ([]*model.Model, []workload.Request) {
	models := model.SyntheticZoo(8)
	names := make([]string, len(models))
	for i, m := range models {
		names[i] = m.Name
	}
	reqs := workload.MustGenerate(workload.Spec{
		Mix: workload.ZipfMix(names, 1.1), Sigma: 2,
		RatePerSec: 800 * float64(replicas), Jobs: jobs, Clients: 8, Seed: 42,
	})
	return models, reqs
}

// runScaleEngine executes one (cell, engine) combination and returns its
// result. World engines put each replica on its own shard; the legacy
// engine multiplexes all replicas on one Env, as the pre-World code did.
func runScaleEngine(engine string, replicas, jobs int) (ScaleEngineResult, error) {
	models, reqs := scaleWorkload(replicas, jobs)
	devs := make([]gpu.Config, replicas)
	for i := range devs {
		devs[i] = gpu.TeslaT4()
	}
	mkPolicy := func() sched.Policy { return sched.NewPaella(10000) }

	var env *sim.Env // scheduling surface for arrivals
	var w *sim.World // nil for the legacy engine
	var c *cluster.Cluster
	var err error
	switch engine {
	case "legacy":
		env = sim.NewEnv()
		c, err = cluster.New(env, devs, mkPolicy, cluster.NewLeastLoaded())
	case "world-serial", "world-parallel", "world-spec":
		w = sim.NewWorld()
		w.SetParallel(engine == "world-parallel")
		// The speculative engine runs shards past the conservative horizon
		// under the adaptive window; cross-timeline traffic defers to the
		// barrier, so it is a different (equally valid) simulation than the
		// conservative pair and is excluded from their identity check.
		w.SetSpeculative(engine == "world-spec")
		defer w.Close()
		env = w.Ctrl()
		c, err = cluster.NewWorld(w, devs, mkPolicy, cluster.NewLeastLoaded())
	default:
		return ScaleEngineResult{}, fmt.Errorf("scale: unknown engine %q", engine)
	}
	if err != nil {
		return ScaleEngineResult{}, err
	}
	for _, m := range models {
		if err := c.RegisterModel(m, compiler.DefaultConfig(), 1); err != nil {
			return ScaleEngineResult{}, err
		}
	}
	conn := c.Connect()
	for i, r := range reqs {
		id, mdl := uint64(i+1), r.Model
		env.At(r.At, func() {
			conn.Submit(core.Request{ID: id, Model: mdl, Submit: env.Now()})
		})
	}
	limit := reqs[len(reqs)-1].At + 8*sim.Second
	start := time.Now()
	if w != nil {
		w.RunUntil(limit)
	} else {
		env.RunUntil(limit)
	}
	wall := time.Since(start)

	steps := env.Steps()
	if w != nil {
		for i := 0; i < w.NumShards(); i++ {
			steps += w.Shard(i).Steps()
		}
	}
	col := c.Collector()
	return ScaleEngineResult{
		Engine:    engine,
		WallSec:   wall.Seconds(),
		Steps:     steps,
		EventsPS:  float64(steps) / wall.Seconds(),
		Completed: col.Len(),
		P50Ms:     col.P50().Millis(),
		P99Ms:     col.P99().Millis(),
		MeanMs:    col.MeanJCT().Millis(),
	}, nil
}

// MeasureScaleCell times the legacy engine on one (replicas, jobs) cell —
// the probe cmd/benchguard uses for its advisory timing gate.
func MeasureScaleCell(replicas, jobs int) (ScaleEngineResult, error) {
	return runScaleEngine("legacy", replicas, jobs)
}

// MeasureAllocsPerEvent measures steady-state heap allocations per engine
// event on the scale workload: the first half of the trace warms every pool
// and arena to its high-water mark, then the second half is measured with
// runtime.MemStats. The result is fractional — per-job admission still
// allocates a few records, amortized over thousands of events per job — and
// cmd/benchguard fails if it reaches 0.5 (i.e. would round to ≥1 alloc per
// event on a `go test -benchmem` report).
func MeasureAllocsPerEvent(replicas, jobs int) (float64, error) {
	models, reqs := scaleWorkload(replicas, jobs)
	devs := make([]gpu.Config, replicas)
	for i := range devs {
		devs[i] = gpu.TeslaT4()
	}
	env := sim.NewEnv()
	c, err := cluster.New(env, devs, func() sched.Policy { return sched.NewPaella(10000) }, cluster.NewLeastLoaded())
	if err != nil {
		return 0, err
	}
	for _, m := range models {
		if err := c.RegisterModel(m, compiler.DefaultConfig(), 1); err != nil {
			return 0, err
		}
	}
	conn := c.Connect()
	for i, r := range reqs {
		id, mdl := uint64(i+1), r.Model
		env.At(r.At, func() {
			conn.Submit(core.Request{ID: id, Model: mdl, Submit: env.Now()})
		})
	}
	env.RunUntil(reqs[len(reqs)/2].At)
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	s0 := env.Steps()
	env.RunUntil(reqs[len(reqs)-1].At + 8*sim.Second)
	runtime.ReadMemStats(&m1)
	steps := env.Steps() - s0
	if steps == 0 {
		return 0, fmt.Errorf("scale: allocs probe measured no events")
	}
	return float64(m1.Mallocs-m0.Mallocs) / float64(steps), nil
}

// runScale sweeps replica counts and, per cell, times the three engines on
// the identical workload. World serial and parallel must agree exactly on
// every job metric (the bit-identity contract the property tests enforce
// at trace granularity); a mismatch fails the experiment.
func runScale(out io.Writer, d Detail) error {
	replicaSweep := []int{1, 2, 4, 8}
	jobsPer := 25000
	detail := "full"
	if d == Quick {
		replicaSweep = []int{1, 2}
		jobsPer = 200
		detail = "quick"
	}
	fmt.Fprintln(out, "Extension — engine scaling, zipf(1.1) synthetic zoo, least-loaded balancer:")
	fmt.Fprintf(out, "  %-8s %-8s %-15s %10s %12s %8s %10s\n",
		"replicas", "jobs", "engine", "wall", "events/s", "n", "p99")

	report := ScaleReport{
		Schema: "paella-scale-bench/v1", Detail: detail,
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(), Go: runtime.Version(),
		Workload: "zipf(1.1) over SyntheticZoo(8), sigma=2, 800 req/s per replica, 8 clients, seed 42",
	}
	for _, replicas := range replicaSweep {
		jobs := jobsPer * replicas
		cell := ScaleCell{Replicas: replicas, Jobs: jobs}
		for _, engine := range []string{"legacy", "world-serial", "world-parallel", "world-spec"} {
			res, err := runScaleEngine(engine, replicas, jobs)
			if err != nil {
				return err
			}
			cell.Engines = append(cell.Engines, res)
			fmt.Fprintf(out, "  %-8d %-8d %-15s %10.3fs %12.0f %8d %9.2fms\n",
				replicas, jobs, engine, res.WallSec, res.EventsPS, res.Completed, res.P99Ms)
		}
		ser, par := cell.Engines[1], cell.Engines[2]
		cell.Identical = ser.Completed == par.Completed && ser.P50Ms == par.P50Ms &&
			ser.P99Ms == par.P99Ms && ser.MeanMs == par.MeanMs && ser.Steps == par.Steps
		if !cell.Identical {
			return fmt.Errorf("scale: world serial and parallel diverged at %d replicas: %+v vs %+v",
				replicas, ser, par)
		}
		report.Cells = append(report.Cells, cell)
	}
	fmt.Fprintln(out, "\nWorld serial and parallel runs are metric-identical at every point")
	fmt.Fprintln(out, "(the conservative-window determinism contract). Events/s measures the")
	fmt.Fprintln(out, "engine, not the modeled GPUs: virtual throughput is identical across")
	fmt.Fprintln(out, "engines by construction.")

	if commit := os.Getenv(ScaleSeedCommitEnv); commit != "" {
		var wall float64
		var steps uint64
		fmt.Sscanf(os.Getenv(ScaleSeedWallEnv), "%f", &wall)
		fmt.Sscanf(os.Getenv(ScaleSeedStepsEnv), "%d", &steps)
		if wall > 0 {
			report.SeedBaseline = &ScaleSeedBaseline{
				Commit: commit, WallSec: wall, Steps: steps,
				Method: "cmd/scalebench built in a worktree at the seed commit; see EXPERIMENTS.md",
			}
			last := report.Cells[len(report.Cells)-1]
			report.SpeedupVsSeed = wall / last.Engines[0].WallSec
			fmt.Fprintf(out, "\nSeed baseline (%s): %.2fs → %.2fx speedup on the largest cell.\n",
				commit, wall, report.SpeedupVsSeed)
		}
	}
	if path := os.Getenv(ScaleOutEnv); path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&report); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote %s\n", path)
	}
	return nil
}
