package experiments

import (
	"fmt"
	"io"

	"paella/internal/gpu"
	"paella/internal/model"
	"paella/internal/serving"
	"paella/internal/sim"
	"paella/internal/workload"
)

func init() {
	register(Experiment{
		Name:  "ablation-biggpu",
		Title: "Extension (§8): scaling to larger GPUs — multiplexing headroom grows with SM count",
		Run:   runAblationBigGPU,
	})
}

// runAblationBigGPU runs the short-vs-long mix on a T4 and an A100-class
// device at loads proportional to their capacity. The paper argues (§8)
// that bigger GPUs create more kernel-level concurrency to multiplex, so
// software scheduling matters more, not less.
func runAblationBigGPU(w io.Writer, d Detail) error {
	jobs := 500
	if d == Quick {
		jobs = 150
	}
	devices := []struct {
		cfg  gpu.Config
		rate float64 // offered load scaled to device capacity
	}{
		{gpu.TeslaT4(), 800},
		{gpu.A100Like(), 4000}, // ~5.3× the thread slots
	}
	short, long := "resnet18", "inceptionv3"
	mix := workload.Weighted([]string{short, long},
		workload.InverseSizeWeights([]sim.Time{
			sim.Time(1.58 * float64(sim.Millisecond)),
			sim.Time(31.2 * float64(sim.Millisecond)),
		}))

	fmt.Fprintln(w, "Extension — Paella vs CUDA-MS across GPU generations (short/long mix):")
	fmt.Fprintf(w, "  %-12s %-10s %14s %14s %14s\n", "device", "system", "tput (req/s)", "r18 p99", "i3 p99")
	for _, dev := range devices {
		opts := serving.DefaultOptions()
		opts.DevCfg = dev.cfg
		opts.Models = []*model.Model{
			model.Generate(model.Table2()[0]),
			model.Generate(model.Table2()[7]),
		}
		opts.ProfileRuns = 1
		trace := workload.MustGenerate(workload.Spec{
			Mix: mix, Sigma: 2, RatePerSec: dev.rate, Jobs: jobs, Clients: 7, Seed: 21,
		})
		opts.MaxSimTime = trace[len(trace)-1].At + 8*sim.Second
		for _, sys := range []string{"CUDA-MS", "Paella"} {
			col := serving.MustRunTrace(serving.MustNewSystem(sys), trace, opts)
			fmt.Fprintf(w, "  %-12s %-10s %14.1f %14v %14v\n",
				dev.cfg.Name, sys, col.Throughput(),
				col.FilterModel(short).P99(), col.FilterModel(long).P99())
		}
	}
	fmt.Fprintln(w, "\nExpected (§8): on the larger device more jobs are multiplexed at")
	fmt.Fprintln(w, "once, so the short-job tail gap between informed software dispatch")
	fmt.Fprintln(w, "and hardware queueing persists or widens — scheduling demand grows")
	fmt.Fprintln(w, "with concurrency.")
	return nil
}
