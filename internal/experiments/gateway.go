package experiments

import (
	"fmt"
	"io"

	"paella/internal/cluster"
	"paella/internal/compiler"
	"paella/internal/core"
	"paella/internal/gateway"
	"paella/internal/gpu"
	"paella/internal/llm"
	"paella/internal/metrics"
	"paella/internal/model"
	"paella/internal/sched"
	"paella/internal/sim"
	"paella/internal/vram"
	"paella/internal/workload"
)

func init() {
	register(Experiment{
		Name:  "gateway",
		Title: "Extension (§8): gateway routing policies, tenant QoS, and admission control",
		Run:   runGateway,
	})
}

// gatewayZoo is a small many-model zoo with spread-out service times and
// weight footprints: heavy enough that residency churn and per-device speed
// differences matter, small enough to keep the sweep fast.
func gatewayZoo(n int) []*model.Model {
	out := make([]*model.Model, n)
	for i := range out {
		out[i] = model.Generate(model.ZooEntry{
			Name:        fmt.Sprintf("gw-%02d", i),
			ExecTime:    sim.Time(200+150*i) * sim.Microsecond,
			Executions:  6,
			Unique:      3,
			InputBytes:  16 << 10,
			OutputBytes: 4 << 10,
			WeightBytes: (28 + 14*i) << 20,
		})
	}
	return out
}

// runGatewayCluster runs one routing policy over a heterogeneous fleet
// under a device-memory budget and returns the merged collector.
func runGatewayCluster(mk func() cluster.Balancer, trace []workload.Request,
	zoo []*model.Model, admit *gateway.Admission) (*metrics.Collector, error) {
	env := sim.NewEnv()
	// A fast and two slow replicas: queue depth alone misprices them, which
	// is exactly the gap between least-loaded and predicted-latency.
	devs := []gpu.Config{gpu.TeslaP100(), gpu.TeslaT4(), gpu.GTX1660Super()}
	c, err := cluster.NewWithConfig(env, devs, func(int, gpu.Config) core.Config {
		cfg := core.DefaultConfig(sched.NewPaella(10000))
		cfg.VRAM = &vram.Config{CapacityBytes: 128 << 20}
		return cfg
	}, mk())
	if err != nil {
		return nil, err
	}
	for _, m := range zoo {
		if err := c.RegisterModel(m, compiler.DefaultConfig(), 1); err != nil {
			return nil, err
		}
	}
	c.SetAdmission(admit)
	conn := c.Connect()
	for i, r := range trace {
		id, req := uint64(i+1), r
		env.At(r.At, func() {
			conn.Submit(core.Request{ID: id, Model: req.Model, Client: req.Client,
				Tenant: req.Tenant, Submit: env.Now()})
		})
	}
	env.RunUntil(trace[len(trace)-1].At + 8*sim.Second)
	return c.Collector(), nil
}

// runGateway demonstrates the gateway layer in three parts: routing-policy
// head-to-head on a heterogeneous fleet, per-tenant admission control
// against a misbehaving tenant, and gateway policies on the generative
// (LLM) front.
func runGateway(w io.Writer, d Detail) error {
	jobs, llmJobs := 1600, 2000
	if d == Quick {
		jobs, llmJobs = 500, 800
	}
	zoo := gatewayZoo(8)
	names := make([]string, len(zoo))
	for i, m := range zoo {
		names[i] = m.Name
	}

	// Part 1 — routing policies at saturating load. Zipf popularity keeps a
	// hot set warm and a long tail paging; the heterogeneous fleet makes a
	// raw in-flight count a poor proxy for completion time.
	trace := workload.MustGenerate(workload.Spec{
		Mix: workload.ZipfMix(names, 1.1), Sigma: 2,
		RatePerSec: 900, Jobs: jobs, Clients: 8, Seed: 7,
	})
	fmt.Fprintln(w, "Part 1 — P100+T4+GTX1660S fleet, 128 MiB VRAM each, 900 req/s (zipf 1.1):")
	fmt.Fprintf(w, "  %-18s %14s %12s %12s %8s\n", "policy", "tput (req/s)", "p50", "p99", "cold")
	policies := []func() cluster.Balancer{
		cluster.NewLeastLoaded,
		func() cluster.Balancer { return cluster.NewResidencyAware(nil) },
		gateway.NewPredictedLatency,
		func() cluster.Balancer { return gateway.NewAffinity(0) },
	}
	var p99 = map[string]sim.Time{}
	for _, mk := range policies {
		name := mk().Name()
		col, err := runGatewayCluster(mk, trace, zoo, nil)
		if err != nil {
			return err
		}
		p99[name] = col.P99()
		fmt.Fprintf(w, "  %-18s %14.1f %12v %12v %8d\n",
			name, col.Throughput(), col.P50(), col.P99(), col.ColdStarts())
	}
	if p99["predicted-latency"] >= p99["least-loaded"] {
		fmt.Fprintln(w, "  NOTE: predicted-latency did not beat least-loaded on p99 in this run")
	}

	// Part 2 — admission control against a misbehaving tenant. tenant-flood
	// offers far more than its share; without admission its backlog queues
	// everyone, with admission the flood is shed at the front door and the
	// well-behaved tenants' tails recover.
	tenanted := make([]workload.Request, len(trace))
	copy(tenanted, trace)
	for i := range tenanted {
		switch {
		case i%2 == 0:
			tenanted[i].Tenant = "tenant-flood" // half the offered load
		case i%4 == 1:
			tenanted[i].Tenant = "tenant-a"
		default:
			tenanted[i].Tenant = "tenant-b"
		}
	}
	fmt.Fprintln(w, "\nPart 2 — same fleet, predicted-latency routing, tenant-flood at 2× its share:")
	fmt.Fprintf(w, "  %-14s %-14s %12s %12s %10s\n", "admission", "tenant", "p99", "mean", "shed")
	for _, admitOn := range []bool{false, true} {
		var admit *gateway.Admission
		label := "off"
		if admitOn {
			// Cap every tenant at ~1/3 of the offered 900 req/s: the flood
			// tenant (450 req/s offered) is clipped hard, the others fit.
			admit = gateway.NewAdmission(gateway.AdmissionConfig{
				Default: gateway.TenantLimit{RatePerSec: 300},
			})
			label = "300 req/s"
		}
		col, err := runGatewayCluster(gateway.NewPredictedLatency, tenanted, zoo, admit)
		if err != nil {
			return err
		}
		for _, tn := range col.Tenants() {
			sub := col.FilterTenant(tn).Succeeded()
			shed := 0
			if admit != nil {
				for _, st := range admit.Stats() {
					if st.Tenant == tn {
						shed = st.Shed
					}
				}
			}
			fmt.Fprintf(w, "  %-14s %-14s %12v %12v %10d\n",
				label, tn, sub.P99(), sub.MeanJCT(), shed)
		}
	}

	// Part 3 — gateway policies on the generative front: a disaggregated
	// 2P:2D deployment over an NVLink-class interconnect where one prefill
	// replica is degraded (3× slower block time — a throttled or failing
	// card). A raw in-flight count treats both prefill lanes as equals and
	// keeps feeding the slow one; the gateway prices each replica with its
	// own profiled kernel means, scaled to the request's actual prompt
	// length, so long prompts route around the degraded lane and the TTFT
	// tail tightens.
	fmt.Fprintln(w, "\nPart 3 — LLM 2P:2D, one degraded prefill replica, 340 req/s:")
	fmt.Fprintf(w, "  %-22s %18s %12s %12s\n", "policy", "goodput@30ms (r/s)", "ttft p99", "jct p99")
	llmTrace := workload.MustGenerate(workload.Spec{
		Mix: workload.Uniform("llm"), Sigma: 2,
		RatePerSec: 340, Jobs: llmJobs, Clients: 12, Seed: 11,
	})
	for _, polName := range []string{"least-loaded (legacy)", "predicted-latency", "affinity"} {
		healthy := llm.Config{Spec: llm.DefaultSpec(), DevCfg: gpu.TeslaT4(), Continuous: true}
		degraded := healthy
		degraded.Spec.PrefillBlockTime *= 3
		pdCfg := cluster.PDConfig{
			LLM:      healthy,
			Prefills: 2, Decodes: 2,
			Engines: []llm.Config{healthy, degraded, healthy, healthy},
			// KV handoffs ride an NVLink-class link so the interconnect is
			// not the bottleneck the routing policy can't touch.
			LinkBytesPerNs: 64,
		}
		if polName != "least-loaded (legacy)" {
			name := polName
			pdCfg.MakePolicy = func() gateway.Policy {
				pol, perr := gateway.New(name)
				if perr != nil {
					panic(perr)
				}
				return pol
			}
		}
		env := sim.NewEnv()
		pd, err := cluster.NewPD(env, pdCfg)
		if err != nil {
			return err
		}
		// Heavy-tailed prompts: most conversations are short, a few carry
		// document-sized contexts that magnify a mispriced lane.
		toks := workload.DefaultTokenSpec(11)
		toks.PromptMean, toks.PromptSigma, toks.MaxPrompt = 800, 1.2, 8192
		sampler, err := workload.NewTokenSampler(toks)
		if err != nil {
			return err
		}
		for i, r := range llmTrace {
			tk := sampler.Next()
			req := llm.Request{
				ID: uint64(i + 1), Client: r.Client, Submit: r.At,
				Prompt: tk.Prompt, Output: tk.Output,
				Session: uint64(r.Client) + 1,
			}
			env.At(r.At, func() { pd.Submit(req) })
		}
		env.RunUntil(llmTrace[len(llmTrace)-1].At + 30*sim.Second)
		col := pd.Collector()
		ttfts := col.TTFTs()
		fmt.Fprintf(w, "  %-22s %18.1f %12v %12v\n",
			polName, col.TTFTGoodput(30*sim.Millisecond),
			metrics.Percentile(ttfts, 99), col.P99())
	}

	fmt.Fprintln(w, "\nExpected: predicted-latency beats least-loaded at the p99 because it")
	fmt.Fprintln(w, "prices heterogeneous device speed, queued work, and cold-start paging")
	fmt.Fprintln(w, "instead of counting in-flight requests; affinity adds model/session")
	fmt.Fprintln(w, "stickiness with a predicted-latency spill. Admission control clips the")
	fmt.Fprintln(w, "flooding tenant at the front door, restoring the others' tails (§8).")
	return nil
}
