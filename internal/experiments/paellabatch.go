package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"paella/internal/core"
	"paella/internal/model"
	"paella/internal/serving"
	"paella/internal/sim"
	"paella/internal/telemetry"
	"paella/internal/workload"
)

func init() {
	register(Experiment{
		Name:  "batching",
		Title: "Extension (§8): SLO-aware dynamic batching in the Paella dispatcher",
		Run:   runPaellaBatching,
	})
}

// BatchTrajEnv names the environment variable that, when set, makes the
// batching experiment append its headline cell (the saturating-load
// Paella-batch vs Paella comparison) as one NDJSON line to the named file —
// the bench trajectory successive revisions extend (BENCH_trajectory.ndjson
// at the repo root).
const BatchTrajEnv = "PAELLA_BATCH_TRAJ"

// batchTrajCell is one NDJSON line of the bench trajectory.
type batchTrajCell struct {
	Schema         string  `json:"schema"` // "paella-batch-traj/v1"
	Detail         string  `json:"detail"` // "quick" | "full"
	Rate           float64 `json:"rate"`   // saturating offered load (req/s)
	SLOMs          float64 `json:"slo_ms"`
	PaellaTput     float64 `json:"paella_tput"`
	BatchTput      float64 `json:"batch_tput"`
	TputSpeedup    float64 `json:"tput_speedup"`
	PaellaGoodput  float64 `json:"paella_goodput"`
	BatchGoodput   float64 `json:"batch_goodput"`
	GoodputSpeedup float64 `json:"goodput_speedup"`
	MeanBatch      float64 `json:"mean_batch"`
}

// batchSLO is the completion deadline the goodput columns score against —
// loose enough that an unloaded system always meets it, tight enough that a
// saturated unbatched queue blows through it.
const batchSLO = 100 * sim.Millisecond

// runPaellaBatching sweeps offered load over a zipf many-models workload
// and compares unbatched Paella, Paella with dispatcher batching
// (serving.NewPaellaBatching), and the Triton batching baseline. The
// interesting cells are the extremes: at low load batching must disengage
// (identical latency), at saturating load the widened launches must buy
// goodput.
func runPaellaBatching(out io.Writer, d Detail) error {
	jobs, zoo := 3000, 12
	rates := []float64{200, 1000, 2000, 4000, 8000}
	detail := "full"
	if d == Quick {
		jobs, zoo = 250, 8
		rates = []float64{300, 2400}
		detail = "quick"
	}
	models := model.SyntheticZoo(zoo)
	names := make([]string, len(models))
	for i, m := range models {
		names[i] = m.Name
	}
	mix := workload.ZipfMix(names, 1.1)

	opts := serving.DefaultOptions()
	opts.Models = models
	opts.ProfileRuns = 1

	systems := []string{"Paella", "Paella-batch", "Triton-batch"}
	fmt.Fprintf(out, "Extension — dispatcher batching, zipf(1.1) over SyntheticZoo(%d), SLO %v:\n", zoo, batchSLO)

	// results[system][rateIdx]
	goodputs := map[string][]float64{}
	tputs := map[string][]float64{}
	var meanBatch float64
	var anatomyRows []telemetry.SystemAnatomy
	for _, system := range systems {
		fmt.Fprintf(out, "\n  %s:\n", system)
		fmt.Fprintf(out, "    %10s %12s %14s %12s %12s\n", "offered", "tput(req/s)", "goodput(req/s)", "p50", "p99")
		for _, rate := range rates {
			trace := workload.MustGenerate(workload.Spec{
				Mix: mix, Sigma: 2, RatePerSec: rate,
				Jobs: jobs, Clients: 8, Seed: 5,
			})
			runOpts := opts
			runOpts.MaxSimTime = trace[len(trace)-1].At + 8*sim.Second
			sys := serving.MustNewSystem(system)
			col := serving.MustRunTrace(sys, trace, runOpts)
			fmt.Fprintf(out, "    %10.0f %12.1f %14.1f %12v %12v\n",
				rate, col.Throughput(), col.Goodput(batchSLO), col.P50(), col.P99())
			tputs[system] = append(tputs[system], col.Throughput())
			goodputs[system] = append(goodputs[system], col.Goodput(batchSLO))
			if rate == rates[len(rates)-1] {
				anatomyRows = append(anatomyRows, telemetry.SystemAnatomy{System: system, Collector: col})
			}
			if system == "Paella-batch" && rate == rates[len(rates)-1] {
				meanBatch = col.MeanBatchSize()
				if ds, ok := sys.(interface{ Dispatcher() *core.Dispatcher }); ok {
					st := ds.Dispatcher().Stats()
					fmt.Fprintf(out, "    batches=%d batched-jobs=%d holds=%d mean-size=%.2f\n",
						st.Batches, st.BatchedJobs, st.BatchHolds, meanBatch)
				}
			}
		}
	}

	last := len(rates) - 1
	cell := batchTrajCell{
		Schema: "paella-batch-traj/v1", Detail: detail,
		Rate: rates[last], SLOMs: batchSLO.Millis(),
		PaellaTput: tputs["Paella"][last], BatchTput: tputs["Paella-batch"][last],
		PaellaGoodput: goodputs["Paella"][last], BatchGoodput: goodputs["Paella-batch"][last],
		MeanBatch: meanBatch,
	}
	if cell.PaellaTput > 0 {
		cell.TputSpeedup = cell.BatchTput / cell.PaellaTput
	}
	if cell.PaellaGoodput > 0 {
		cell.GoodputSpeedup = cell.BatchGoodput / cell.PaellaGoodput
	}
	fmt.Fprintf(out, "\nSaturating load (%.0f req/s): Paella-batch vs Paella = %.2fx throughput, %.2fx goodput(SLO %v).\n",
		cell.Rate, cell.TputSpeedup, cell.GoodputSpeedup, batchSLO)
	fmt.Fprintln(out, "At low load the adaptive window disengages (no holds), so unbatched")
	fmt.Fprintln(out, "and batched latency match; Triton-batch pays its window on every request.")

	// Latency anatomy at the saturating load: batching converts sched-wait
	// (the saturated ready queue) into a bounded batch-hold plus wider —
	// slightly longer — exec, which is where the goodput comes from.
	fmt.Fprintf(out, "\nLatency anatomy at %.0f req/s (phase means / p99s):\n", rates[last])
	if err := telemetry.WriteAnatomyTable(out, anatomyRows); err != nil {
		return err
	}

	if path := os.Getenv(BatchTrajEnv); path != "" {
		f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		if err := enc.Encode(&cell); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nappended headline cell to %s\n", path)
	}
	return nil
}
