package client

import (
	"testing"

	"paella/internal/compiler"
	"paella/internal/core"
	"paella/internal/gpu"
	"paella/internal/model"
	"paella/internal/sched"
	"paella/internal/sim"
)

func setup(t *testing.T, proto Protocol) (*sim.Env, *core.Dispatcher, *Client) {
	t.Helper()
	env := sim.NewEnv()
	devCfg := gpu.TeslaT4()
	devCfg.LaunchOverhead = 0
	d := core.NewWithDevice(env, devCfg, core.DefaultConfig(sched.NewPaella(100)))
	ins := compiler.MustCompile(model.TinyNet(), compiler.DefaultConfig(), devCfg, 2)
	if err := d.RegisterModel(ins); err != nil {
		t.Fatal(err)
	}
	d.Start()
	return env, d, New(env, d, DefaultConfig(proto))
}

func TestPredictReadRoundTrip(t *testing.T) {
	env, _, c := setup(t, ProtocolHybrid)
	var got uint64
	env.Spawn("client", func(p *sim.Proc) {
		id := c.Predict(p, "tinynet")
		got = c.ReadResult(p)
		if got != id {
			t.Errorf("ReadResult = %d, want %d", got, id)
		}
	})
	env.Run()
	if got == 0 {
		t.Fatal("no result delivered")
	}
	if c.Outstanding() != 0 {
		t.Fatalf("Outstanding = %d", c.Outstanding())
	}
}

func TestReadBeforeCompletionAndAfter(t *testing.T) {
	env, _, c := setup(t, ProtocolHybrid)
	order := []uint64{}
	env.Spawn("client", func(p *sim.Proc) {
		a := c.Predict(p, "tinynet")
		b := c.Predict(p, "tinynet")
		// Wait for both completions with one pre-completion read and one
		// post-completion read.
		order = append(order, c.ReadResult(p))
		p.Sleep(10 * sim.Millisecond) // both certainly done now
		order = append(order, c.ReadResult(p))
		if (order[0] != a && order[0] != b) || order[0] == order[1] {
			t.Errorf("results %v for requests %d,%d", order, a, b)
		}
	})
	env.Run()
	if len(order) != 2 {
		t.Fatal("reads did not complete")
	}
}

func TestTryReadResult(t *testing.T) {
	env, _, c := setup(t, ProtocolHybrid)
	env.Spawn("client", func(p *sim.Proc) {
		if _, ok := c.TryReadResult(); ok {
			t.Error("TryReadResult succeeded with nothing outstanding")
		}
		c.Predict(p, "tinynet")
		if _, ok := c.TryReadResult(); ok {
			t.Error("TryReadResult succeeded immediately after submit")
		}
		p.Sleep(10 * sim.Millisecond)
		if id, ok := c.TryReadResult(); !ok || id != 1 {
			t.Errorf("TryReadResult = %d,%v after completion", id, ok)
		}
	})
	env.Run()
}

// TestProtocolsLatencyAndCPU reproduces Figure 14's qualitative result:
// polling and hybrid have comparable latency (socket is slower), while CPU
// utilization orders polling > hybrid > socket.
func TestProtocolsLatencyAndCPU(t *testing.T) {
	type res struct {
		jct  sim.Time
		util float64
	}
	run := func(proto Protocol) res {
		env, _, c := setup(t, proto)
		const n = 50
		var total sim.Time
		env.Spawn("client", func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				start := env.Now()
				c.Predict(p, "tinynet")
				c.ReadResult(p)
				total += env.Now() - start
			}
		})
		env.Run()
		return res{jct: total / n, util: c.CPU().Utilization()}
	}
	hybrid := run(ProtocolHybrid)
	polling := run(ProtocolPolling)
	socket := run(ProtocolSocket)

	if socket.jct <= polling.jct {
		t.Errorf("socket latency (%v) should exceed polling (%v)", socket.jct, polling.jct)
	}
	// Hybrid must not sacrifice appreciable latency vs polling (<2%).
	if float64(hybrid.jct) > float64(polling.jct)*1.02 {
		t.Errorf("hybrid latency %v too far above polling %v", hybrid.jct, polling.jct)
	}
	if !(polling.util > hybrid.util && hybrid.util > socket.util) {
		t.Errorf("CPU ordering wrong: polling=%.3f hybrid=%.3f socket=%.3f",
			polling.util, hybrid.util, socket.util)
	}
	// In this closed loop the client is always waiting on its one request,
	// so polling sits near 100%.
	if polling.util < 0.9 {
		t.Errorf("polling utilization = %.3f, want ≈1", polling.util)
	}
	if hybrid.util > 0.6 {
		t.Errorf("hybrid utilization = %.3f, want well under polling", hybrid.util)
	}
}

func TestProtocolString(t *testing.T) {
	if ProtocolHybrid.String() != "hybrid" || ProtocolPolling.String() != "polling" || ProtocolSocket.String() != "socket" {
		t.Error("unexpected protocol names")
	}
}

func TestMultipleClients(t *testing.T) {
	env := sim.NewEnv()
	devCfg := gpu.TeslaT4()
	devCfg.LaunchOverhead = 0
	d := core.NewWithDevice(env, devCfg, core.DefaultConfig(sched.NewPaella(100)))
	ins := compiler.MustCompile(model.TinyNet(), compiler.DefaultConfig(), devCfg, 2)
	if err := d.RegisterModel(ins); err != nil {
		t.Fatal(err)
	}
	d.Start()
	done := 0
	for i := 0; i < 4; i++ {
		c := New(env, d, DefaultConfig(ProtocolHybrid))
		env.Spawn("client", func(p *sim.Proc) {
			for r := 0; r < 5; r++ {
				c.Predict(p, "tinynet")
				c.ReadResult(p)
				done++
			}
		})
	}
	env.Run()
	if done != 20 {
		t.Fatalf("completed %d of 20", done)
	}
}

func TestClientCancel(t *testing.T) {
	env, d, c := setup(t, ProtocolHybrid)
	_ = d
	var jct sim.Time
	env.Spawn("client", func(p *sim.Proc) {
		id := c.Predict(p, "tinynet")
		c.Cancel(id)
		got := c.ReadResult(p)
		if got != id {
			t.Errorf("ReadResult = %d, want %d", got, id)
		}
		jct = env.Now()
	})
	env.Run()
	if jct == 0 {
		t.Fatal("cancelled request never delivered a completion")
	}
}
