// Package client implements the Paella client library (§5.1, §5.3): the
// predict/readResult API over the shared-memory rings, with three result
// wakeup protocols for the Figure 14 comparison:
//
//   - ProtocolHybrid (Paella's default): block on the almost-finished
//     interrupt, then poll for the completion — near-polling latency at a
//     fraction of the CPU.
//   - ProtocolPolling: spin from submission until the result arrives —
//     lowest latency, 100% CPU.
//   - ProtocolSocket: block until the completion is pushed over a Unix
//     socket — no polling CPU, but an extra kernel round trip of latency.
//
// The client runs on virtual time; its busy/idle accounting feeds the CPU
// utilization results.
package client

import (
	"fmt"

	"paella/internal/core"
	"paella/internal/metrics"
	"paella/internal/sim"
)

// Protocol selects the result-wakeup mechanism.
type Protocol int

const (
	// ProtocolHybrid is the interrupt-then-poll scheme of §5.3.
	ProtocolHybrid Protocol = iota
	// ProtocolPolling spins continuously for results.
	ProtocolPolling
	// ProtocolSocket blocks on a socket push for every result.
	ProtocolSocket
)

// String returns the protocol name.
func (p Protocol) String() string {
	switch p {
	case ProtocolHybrid:
		return "hybrid"
	case ProtocolPolling:
		return "polling"
	case ProtocolSocket:
		return "socket"
	default:
		return "unknown"
	}
}

// Config sets client-side costs.
type Config struct {
	Protocol Protocol
	// SendCost is client CPU to stage the input tensor in shared memory
	// and write the request descriptor.
	SendCost sim.Time
	// RecvCost is client CPU to read the output tensor.
	RecvCost sim.Time
	// SocketLatency is the extra kernel/syscall latency of a socket
	// delivery (ProtocolSocket only).
	SocketLatency sim.Time
}

// DefaultConfig returns µs-scale client costs.
func DefaultConfig(p Protocol) Config {
	return Config{
		Protocol:      p,
		SendCost:      1 * sim.Microsecond,
		RecvCost:      1 * sim.Microsecond,
		SocketLatency: 12 * sim.Microsecond,
	}
}

// Client is one inference client bound to a dispatcher connection.
type Client struct {
	env  *sim.Env
	conn *core.ClientConn
	cfg  Config

	nextID    uint64
	completed []uint64 // ready results, FIFO
	bells     int      // almost-finished signals not yet consumed
	almost    *sim.Cond
	complete  *sim.Cond

	busy      sim.Time
	startedAt sim.Time
	outstand  int
}

// New attaches a client to a dispatcher and installs the channel hooks.
func New(env *sim.Env, d *core.Dispatcher, cfg Config) *Client {
	c := &Client{
		env:       env,
		conn:      d.Connect(),
		cfg:       cfg,
		almost:    sim.NewCond(env),
		complete:  sim.NewCond(env),
		startedAt: env.Now(),
	}
	c.conn.OnAlmostFinished = func(uint64) {
		c.bells++
		c.almost.Broadcast()
	}
	c.conn.OnComplete = func(id uint64) {
		c.completed = append(c.completed, id)
		c.complete.Broadcast()
	}
	return c
}

// Conn returns the underlying dispatcher connection.
func (c *Client) Conn() *core.ClientConn { return c.conn }

// Outstanding returns the number of submitted-but-unread requests.
func (c *Client) Outstanding() int { return c.outstand }

// Predict submits an inference request for the named model and returns its
// request id (the paella.predict call of §5.1). The input/output buffer is
// zero-copy shared memory, so the only client cost is staging the tensor.
// If the ring is full the client backs off and retries.
func (c *Client) Predict(p *sim.Proc, modelName string) uint64 {
	c.busy += c.cfg.SendCost
	p.Sleep(c.cfg.SendCost)
	c.nextID++
	id := c.nextID
	req := core.Request{ID: id, Model: modelName, Client: c.conn.ID, Submit: c.env.Now()}
	for !c.conn.Submit(req) {
		p.Sleep(10 * sim.Microsecond) // ring full: back off
	}
	c.outstand++
	return id
}

// Cancel aborts an outstanding request (§2.1's job-level preemption,
// possible only with software-defined scheduling). The request still
// produces a completion — marked cancelled in the server's records — so
// ReadResult accounting stays balanced.
func (c *Client) Cancel(id uint64) { c.conn.Cancel(id) }

// TryReadResult performs a non-blocking read (the NONBLOCK flag): it
// returns the first available completion, or ok=false (EAGAIN).
func (c *Client) TryReadResult() (id uint64, ok bool) {
	if len(c.completed) == 0 {
		return 0, false
	}
	return c.popResult(), true
}

func (c *Client) popResult() uint64 {
	id := c.completed[0]
	c.completed = c.completed[1:]
	c.outstand--
	c.busy += c.cfg.RecvCost
	return id
}

// ReadResult blocks until a completion is available and returns its
// request id, using the configured wakeup protocol.
func (c *Client) ReadResult(p *sim.Proc) uint64 {
	switch c.cfg.Protocol {
	case ProtocolHybrid:
		for len(c.completed) == 0 {
			// Interrupt phase: sleep (no CPU) until an almost-finished
			// bell, consuming one pending bell if it already rang.
			if c.bells == 0 {
				p.WaitCond(c.almost)
				continue // re-check: the broadcast recorded a bell
			}
			c.bells--
			// Poll phase: burn CPU until the completion lands.
			t0 := c.env.Now()
			for len(c.completed) == 0 {
				p.WaitCond(c.complete)
			}
			c.busy += c.env.Now() - t0
		}
		return c.popResult()
	case ProtocolPolling:
		t0 := c.env.Now()
		for len(c.completed) == 0 {
			p.WaitCond(c.complete)
		}
		c.busy += c.env.Now() - t0
		return c.popResult()
	case ProtocolSocket:
		for len(c.completed) == 0 {
			p.WaitCond(c.complete)
		}
		// The completion crosses a socket: extra latency, no busy CPU.
		p.Sleep(c.cfg.SocketLatency)
		return c.popResult()
	default:
		panic(fmt.Sprintf("client: unknown protocol %d", c.cfg.Protocol))
	}
}

// CPU returns the client's busy/span accounting since creation.
func (c *Client) CPU() metrics.CPUStats {
	return metrics.CPUStats{BusyNs: c.busy, Span: c.env.Now() - c.startedAt}
}
