// Package metrics collects per-request latency records and computes the
// aggregate statistics the paper reports: percentile job completion times,
// throughput/goodput, per-stage overhead breakdowns (Figure 10), CDFs
// (Figure 15), and client CPU utilization (Figure 14).
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"paella/internal/sim"
)

// JobRecord captures the full timeline of one inference request.
type JobRecord struct {
	ID     uint64
	Model  string
	Client int
	// Tenant identifies the workload owner for multi-tenant QoS accounting
	// (gateway admission control, per-tenant latency slices). Empty for
	// untenanted traffic.
	Tenant string

	// Submit is when the client called predict.
	Submit sim.Time
	// Admit is when the serving system accepted the request.
	Admit sim.Time
	// FirstDispatch is when the first GPU operation was released.
	FirstDispatch sim.Time
	// ExecDone is when the last GPU operation finished.
	ExecDone sim.Time
	// Delivered is when the client observed the result.
	Delivered sim.Time

	// SchedNs accumulates dispatcher queuing/scheduling time charged to
	// this request (admission queueing + per-kernel scheduling decisions).
	SchedNs sim.Time
	// FrameworkNs accumulates serving-framework processing (serialization,
	// batching, RPC handling) charged to this request.
	FrameworkNs sim.Time
	// ColdStart marks a request that arrived while its model's weights were
	// not resident in device memory (internal/vram) and had to wait for a
	// H2D weight load.
	ColdStart bool
	// LoadNs is the time this request spent blocked on weight loading —
	// from admission until its model became resident. Zero for warm hits.
	LoadNs sim.Time
	// BatchSize is the widest batched kernel launch this request rode
	// (core dynamic batching); zero for a request that was never batched,
	// so the field is inert — and its JSON omitted — when batching is off.
	BatchSize int
	// BatchWaitNs accumulates time the request spent held by the
	// dispatcher's batch-formation window (the latency cost of batching,
	// attributed per member).
	BatchWaitNs sim.Time
	// HoLNs accumulates head-of-line dispatch gap: time a kernel was ready
	// (admitted to the scheduling policy) but not yet released to the GPU,
	// after the request's first dispatch. This is exactly the delay Paella's
	// software-defined scheduling exists to eliminate — hardware-queue
	// systems hide it inside ExecDone-FirstDispatch.
	HoLNs sim.Time
	// StallNs accumulates KV-pressure stall time in generative serving: the
	// wait from a paging preemption until the recompute prefill was
	// launched. The recompute pass itself is charged to PrefillNs.
	StallNs sim.Time
	// PrefillNs accumulates generative prefill execution time (initial pass
	// plus any preemption recomputes). Zero for non-generative jobs.
	PrefillNs sim.Time
	// FirstToken is when the request's first output token completed — the
	// end of the TTFT window (internal/llm's generative serving; zero for
	// non-generative jobs and for requests that never produced a token).
	FirstToken sim.Time
	// PromptTokens and OutputTokens are the generative job's lengths: the
	// prefill input and the tokens actually produced. Zero for
	// non-generative jobs, so the fields (and their JSON) are inert.
	PromptTokens int
	OutputTokens int
	// Preemptions counts how many times the request's KV pages were evicted
	// under memory pressure and its prefill recomputed.
	Preemptions int
	// KVTransferNs accumulates time spent moving the request's KV-cache
	// between prefill and decode replicas (P/D disaggregation).
	KVTransferNs sim.Time
	// Cancelled marks a request aborted by the client before completion.
	Cancelled bool
	// Failed marks a request that terminated with a typed error instead of
	// a result (admission shed, kernel timeout after retries, weight-load
	// failure, client disconnect, replica crash). Failed records still count
	// toward conservation — every admitted request produces exactly one
	// record — but are excluded from success-side statistics via Succeeded.
	Failed bool
	// FailureReason is the typed error's stable string (empty on success).
	FailureReason string
}

// JCT returns the end-to-end job completion time.
func (r *JobRecord) JCT() sim.Time { return r.Delivered - r.Submit }

// TTFT returns the time-to-first-token: submit to first output token. Zero
// when the request never produced a token (non-generative jobs, failures
// before the first decode iteration).
func (r *JobRecord) TTFT() sim.Time {
	if r.FirstToken == 0 {
		return 0
	}
	return r.FirstToken - r.Submit
}

// TPOT returns the mean time-per-output-token over the decode phase: the
// span from the first to the last token divided by the intervals between
// them. Zero for requests with fewer than two output tokens (which
// includes every non-generative record). Clamped at zero: a record that
// failed between its first token and its last has no meaningful decode
// span, not a negative one.
func (r *JobRecord) TPOT() sim.Time {
	if r.OutputTokens < 2 || r.FirstToken == 0 {
		return 0
	}
	t := (r.ExecDone - r.FirstToken) / sim.Time(r.OutputTokens-1)
	if t < 0 {
		return 0
	}
	return t
}

// CommNs returns the pure communication latency: submit→admit plus
// completion→delivery, net of framework processing. Clamped at zero — a
// system whose framework time covers the whole channel crossing (e.g. RPC
// serialization measured end to end) has no residual communication cost,
// not a negative one. Failed records that never reached execution carry
// ExecDone stamped at failure time, so the completion→delivery term stays
// the delivery crossing rather than swallowing the whole queue wait.
func (r *JobRecord) CommNs() sim.Time {
	c := (r.Admit - r.Submit) + (r.Delivered - r.ExecDone) - r.FrameworkNs
	if c < 0 {
		return 0
	}
	return c
}

// Collector accumulates job records for one run.
type Collector struct {
	records []JobRecord
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Add appends one completed job.
func (c *Collector) Add(r JobRecord) { c.records = append(c.records, r) }

// Len returns the number of completed jobs.
func (c *Collector) Len() int { return len(c.records) }

// Records returns the raw records (not a copy; callers must not mutate).
func (c *Collector) Records() []JobRecord { return c.records }

// JCTs returns all job completion times.
func (c *Collector) JCTs() []sim.Time {
	out := make([]sim.Time, len(c.records))
	for i := range c.records {
		out[i] = c.records[i].JCT()
	}
	return out
}

// FilterModel returns a collector restricted to one model.
func (c *Collector) FilterModel(name string) *Collector {
	out := NewCollector()
	for _, r := range c.records {
		if r.Model == name {
			out.Add(r)
		}
	}
	return out
}

// FilterTenant returns a collector restricted to one tenant.
func (c *Collector) FilterTenant(tenant string) *Collector {
	out := NewCollector()
	for _, r := range c.records {
		if r.Tenant == tenant {
			out.Add(r)
		}
	}
	return out
}

// Tenants returns the distinct tenant names present, sorted; untenanted
// records (empty tenant) are excluded.
func (c *Collector) Tenants() []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range c.records {
		if r.Tenant != "" && !seen[r.Tenant] {
			seen[r.Tenant] = true
			out = append(out, r.Tenant)
		}
	}
	sort.Strings(out)
	return out
}

// Failures returns how many records terminated with a typed error.
func (c *Collector) Failures() int {
	n := 0
	for _, r := range c.records {
		if r.Failed {
			n++
		}
	}
	return n
}

// FailuresByReason returns failure counts keyed by FailureReason.
func (c *Collector) FailuresByReason() map[string]int {
	out := map[string]int{}
	for _, r := range c.records {
		if r.Failed {
			out[r.FailureReason]++
		}
	}
	return out
}

// Succeeded returns a collector restricted to successful (non-failed,
// non-cancelled) records — the population goodput and latency percentiles
// are computed over under fault injection.
func (c *Collector) Succeeded() *Collector {
	out := NewCollector()
	for _, r := range c.records {
		if !r.Failed && !r.Cancelled {
			out.Add(r)
		}
	}
	return out
}

// ColdStarts returns how many completed jobs waited on a weight load.
func (c *Collector) ColdStarts() int {
	n := 0
	for _, r := range c.records {
		if r.ColdStart {
			n++
		}
	}
	return n
}

// WarmHitRatio returns the fraction of completed jobs whose model was
// already resident at admission (1.0 when no job ever cold-started).
func (c *Collector) WarmHitRatio() float64 {
	if len(c.records) == 0 {
		return 0
	}
	return 1 - float64(c.ColdStarts())/float64(len(c.records))
}

// MeanLoadNs returns the mean weight-load wait across all completed jobs
// (cold and warm) — the average cold-start contribution to JCT.
func (c *Collector) MeanLoadNs() sim.Time {
	if len(c.records) == 0 {
		return 0
	}
	var total sim.Time
	for _, r := range c.records {
		total += r.LoadNs
	}
	return total / sim.Time(len(c.records))
}

// BatchSizeHistogram returns how many records rode each widest-batch
// size (key 0 = never batched). Empty map for an empty collector.
func (c *Collector) BatchSizeHistogram() map[int]int {
	out := map[int]int{}
	for _, r := range c.records {
		out[r.BatchSize]++
	}
	return out
}

// MeanBatchSize returns the mean widest-batch size over batched records
// (BatchSize > 0); zero when nothing was ever batched.
func (c *Collector) MeanBatchSize() float64 {
	total, n := 0, 0
	for _, r := range c.records {
		if r.BatchSize > 0 {
			total += r.BatchSize
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n)
}

// Throughput returns completed jobs per second of virtual time over the
// span from the first submit to the last delivery.
func (c *Collector) Throughput() float64 {
	if len(c.records) == 0 {
		return 0
	}
	first, last := c.records[0].Submit, c.records[0].Delivered
	for _, r := range c.records {
		if r.Submit < first {
			first = r.Submit
		}
		if r.Delivered > last {
			last = r.Delivered
		}
	}
	span := (last - first).Seconds()
	if span <= 0 {
		return 0
	}
	return float64(len(c.records)) / span
}

// Goodput returns jobs per second whose JCT met the given deadline.
func (c *Collector) Goodput(deadline sim.Time) float64 {
	if len(c.records) == 0 {
		return 0
	}
	met := 0
	first, last := c.records[0].Submit, c.records[0].Delivered
	for _, r := range c.records {
		if r.JCT() <= deadline {
			met++
		}
		if r.Submit < first {
			first = r.Submit
		}
		if r.Delivered > last {
			last = r.Delivered
		}
	}
	span := (last - first).Seconds()
	if span <= 0 {
		return 0
	}
	return float64(met) / span
}

// TTFTs returns the time-to-first-token of every record that produced at
// least one token (generative jobs only).
func (c *Collector) TTFTs() []sim.Time {
	var out []sim.Time
	for i := range c.records {
		if t := c.records[i].TTFT(); t > 0 {
			out = append(out, t)
		}
	}
	return out
}

// TPOTs returns the mean time-per-output-token of every record with at
// least two output tokens.
func (c *Collector) TPOTs() []sim.Time {
	var out []sim.Time
	for i := range c.records {
		if t := c.records[i].TPOT(); t > 0 {
			out = append(out, t)
		}
	}
	return out
}

// TTFTGoodput returns requests per second whose first token arrived within
// the deadline — the interactive-serving SLO metric: a request whose later
// tokens stream slowly still feels responsive if the first one was fast.
// The span is the same submit→deliver window Throughput uses.
func (c *Collector) TTFTGoodput(deadline sim.Time) float64 {
	if len(c.records) == 0 {
		return 0
	}
	met := 0
	first, last := c.records[0].Submit, c.records[0].Delivered
	for i := range c.records {
		r := &c.records[i]
		if t := r.TTFT(); t > 0 && t <= deadline && !r.Failed {
			met++
		}
		if r.Submit < first {
			first = r.Submit
		}
		if r.Delivered > last {
			last = r.Delivered
		}
	}
	span := (last - first).Seconds()
	if span <= 0 {
		return 0
	}
	return float64(met) / span
}

// TokensPerSec returns the aggregate output-token rate over the run's
// submit→deliver span (generative serving's throughput unit).
func (c *Collector) TokensPerSec() float64 {
	if len(c.records) == 0 {
		return 0
	}
	tokens := 0
	first, last := c.records[0].Submit, c.records[0].Delivered
	for i := range c.records {
		r := &c.records[i]
		tokens += r.OutputTokens
		if r.Submit < first {
			first = r.Submit
		}
		if r.Delivered > last {
			last = r.Delivered
		}
	}
	span := (last - first).Seconds()
	if span <= 0 {
		return 0
	}
	return float64(tokens) / span
}

// Preemptions totals KV-pressure preemptions across all records.
func (c *Collector) Preemptions() int {
	n := 0
	for i := range c.records {
		n += c.records[i].Preemptions
	}
	return n
}

// Percentile returns the p-th percentile (0 < p ≤ 100) of ds using
// nearest-rank (rank = ⌈p/100·n⌉); zero for empty input. The rank is
// computed in integer arithmetic — p is taken at millesimal precision
// (0.001 of a percentile point), which keeps the ceiling exact where a
// float epsilon hack misclassifies boundary cases.
func Percentile(ds []sim.Time, p float64) sim.Time {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]sim.Time(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	n := int64(len(sorted))
	pm := int64(math.Round(p * 1000)) // millesimal percentile points
	rank := (pm*n + 99999) / 100000   // ⌈pm·n/100000⌉
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// Mean returns the arithmetic mean of ds (zero for empty input).
func Mean(ds []sim.Time) sim.Time {
	if len(ds) == 0 {
		return 0
	}
	var total sim.Time
	for _, d := range ds {
		total += d
	}
	return total / sim.Time(len(ds))
}

// P99 returns the 99th-percentile JCT.
func (c *Collector) P99() sim.Time { return Percentile(c.JCTs(), 99) }

// P50 returns the median JCT.
func (c *Collector) P50() sim.Time { return Percentile(c.JCTs(), 50) }

// MeanJCT returns the mean JCT.
func (c *Collector) MeanJCT() sim.Time { return Mean(c.JCTs()) }

// jsonRec is the on-disk form of one JobRecord: the stable interchange
// schema shared by WriteJSON and ReadJSON (paella-sim -json output,
// re-ingested by paella-trace report).
type jsonRec struct {
	ID            uint64 `json:"id"`
	Model         string `json:"model"`
	Client        int    `json:"client"`
	Tenant        string `json:"tenant,omitempty"`
	SubmitNs      int64  `json:"submit_ns"`
	AdmitNs       int64  `json:"admit_ns"`
	FirstDispatch int64  `json:"first_dispatch_ns"`
	ExecDoneNs    int64  `json:"exec_done_ns"`
	DeliveredNs   int64  `json:"delivered_ns"`
	JCTNs         int64  `json:"jct_ns"`
	ColdStart     bool   `json:"cold_start,omitempty"`
	LoadNs        int64  `json:"load_ns,omitempty"`
	BatchSize     int    `json:"batch,omitempty"`
	BatchWaitNs   int64  `json:"batch_wait_ns,omitempty"`
	HoLNs         int64  `json:"hol_ns,omitempty"`
	StallNs       int64  `json:"stall_ns,omitempty"`
	PrefillNs     int64  `json:"prefill_ns,omitempty"`
	FrameworkNs   int64  `json:"framework_ns,omitempty"`
	SchedNs       int64  `json:"sched_ns,omitempty"`
	FirstTokenNs  int64  `json:"first_token_ns,omitempty"`
	PromptTokens  int    `json:"prompt_tokens,omitempty"`
	OutputTokens  int    `json:"output_tokens,omitempty"`
	Preemptions   int    `json:"preemptions,omitempty"`
	KVTransferNs  int64  `json:"kv_transfer_ns,omitempty"`
	Failed        bool   `json:"failed,omitempty"`
	FailureReason string `json:"failure_reason,omitempty"`
}

// WriteJSON emits all records as a JSON array (ns timestamps), for
// external analysis tooling.
func (c *Collector) WriteJSON(w io.Writer) error {
	out := make([]jsonRec, len(c.records))
	for i, r := range c.records {
		out[i] = jsonRec{
			ID: r.ID, Model: r.Model, Client: r.Client, Tenant: r.Tenant,
			SubmitNs: int64(r.Submit), AdmitNs: int64(r.Admit),
			FirstDispatch: int64(r.FirstDispatch), ExecDoneNs: int64(r.ExecDone),
			DeliveredNs: int64(r.Delivered), JCTNs: int64(r.JCT()),
			ColdStart: r.ColdStart, LoadNs: int64(r.LoadNs),
			BatchSize: r.BatchSize, BatchWaitNs: int64(r.BatchWaitNs),
			HoLNs: int64(r.HoLNs), StallNs: int64(r.StallNs),
			PrefillNs:   int64(r.PrefillNs),
			FrameworkNs: int64(r.FrameworkNs), SchedNs: int64(r.SchedNs),
			FirstTokenNs: int64(r.FirstToken), PromptTokens: r.PromptTokens,
			OutputTokens: r.OutputTokens, Preemptions: r.Preemptions,
			KVTransferNs: int64(r.KVTransferNs),
			Failed:       r.Failed, FailureReason: r.FailureReason,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON parses a record array previously written by WriteJSON back
// into a Collector, preserving record order. The derived jct_ns field is
// ignored on input (JCT is always recomputed from the stamps).
func ReadJSON(r io.Reader) (*Collector, error) {
	var in []jsonRec
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, err
	}
	c := NewCollector()
	for _, jr := range in {
		c.Add(JobRecord{
			ID: jr.ID, Model: jr.Model, Client: jr.Client, Tenant: jr.Tenant,
			Submit: sim.Time(jr.SubmitNs), Admit: sim.Time(jr.AdmitNs),
			FirstDispatch: sim.Time(jr.FirstDispatch), ExecDone: sim.Time(jr.ExecDoneNs),
			Delivered: sim.Time(jr.DeliveredNs),
			ColdStart: jr.ColdStart, LoadNs: sim.Time(jr.LoadNs),
			BatchSize: jr.BatchSize, BatchWaitNs: sim.Time(jr.BatchWaitNs),
			HoLNs: sim.Time(jr.HoLNs), StallNs: sim.Time(jr.StallNs),
			PrefillNs:   sim.Time(jr.PrefillNs),
			FrameworkNs: sim.Time(jr.FrameworkNs), SchedNs: sim.Time(jr.SchedNs),
			FirstToken: sim.Time(jr.FirstTokenNs), PromptTokens: jr.PromptTokens,
			OutputTokens: jr.OutputTokens, Preemptions: jr.Preemptions,
			KVTransferNs: sim.Time(jr.KVTransferNs),
			Failed:       jr.Failed, FailureReason: jr.FailureReason,
		})
	}
	return c, nil
}

// Breakdown is the Figure 10 per-request overhead decomposition (GPU
// execution time excluded).
type Breakdown struct {
	Framework  sim.Time
	Scheduling sim.Time
	Comm       sim.Time
	ClientSide sim.Time
}

// Total returns the summed overhead.
func (b Breakdown) Total() sim.Time {
	return b.Framework + b.Scheduling + b.Comm + b.ClientSide
}

// Breakdown returns the record's Figure 10 overhead decomposition.
// ClientSide is left zero — it is a property of the client library, not
// the record, and callers (e.g. the fig10 experiment) add their own
// constant.
func (r *JobRecord) Breakdown() Breakdown {
	return Breakdown{
		Framework:  r.FrameworkNs,
		Scheduling: r.SchedNs,
		Comm:       r.CommNs(),
	}
}

// BreakdownMeans returns the per-component mean Breakdown across all
// records (zero value for an empty collector).
func (c *Collector) BreakdownMeans() Breakdown {
	if len(c.records) == 0 {
		return Breakdown{}
	}
	var sum Breakdown
	for i := range c.records {
		b := c.records[i].Breakdown()
		sum.Framework += b.Framework
		sum.Scheduling += b.Scheduling
		sum.Comm += b.Comm
	}
	n := sim.Time(len(c.records))
	return Breakdown{
		Framework:  sum.Framework / n,
		Scheduling: sum.Scheduling / n,
		Comm:       sum.Comm / n,
	}
}

// BreakdownP99 returns the per-component nearest-rank 99th percentile —
// each component's own tail, not the components of any single record.
func (c *Collector) BreakdownP99() Breakdown {
	return c.BreakdownPercentile(99)
}

// BreakdownPercentile generalizes BreakdownP99 to any percentile, reusing
// the integer nearest-rank Percentile for exact boundary behaviour.
func (c *Collector) BreakdownPercentile(p float64) Breakdown {
	if len(c.records) == 0 {
		return Breakdown{}
	}
	fw := make([]sim.Time, len(c.records))
	sc := make([]sim.Time, len(c.records))
	cm := make([]sim.Time, len(c.records))
	for i := range c.records {
		b := c.records[i].Breakdown()
		fw[i], sc[i], cm[i] = b.Framework, b.Scheduling, b.Comm
	}
	return Breakdown{
		Framework:  Percentile(fw, p),
		Scheduling: Percentile(sc, p),
		Comm:       Percentile(cm, p),
	}
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value sim.Time
	Frac  float64
}

// CDF returns the empirical CDF of ds at each distinct value.
func CDF(ds []sim.Time) []CDFPoint {
	if len(ds) == 0 {
		return nil
	}
	sorted := append([]sim.Time(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var out []CDFPoint
	n := float64(len(sorted))
	for i, v := range sorted {
		if i+1 < len(sorted) && sorted[i+1] == v {
			continue
		}
		out = append(out, CDFPoint{Value: v, Frac: float64(i+1) / n})
	}
	return out
}

// FormatThroughputLatency renders a (throughput, p99) table row, the unit
// of Figures 2, 11 and 12.
func FormatThroughputLatency(system string, tput float64, p99 sim.Time) string {
	return fmt.Sprintf("%-16s %10.1f req/s   p99=%v", system, tput, p99)
}

// CPUStats tracks a client's busy/idle accounting for Figure 14.
type CPUStats struct {
	BusyNs sim.Time
	Span   sim.Time
}

// Utilization returns busy time over span, in [0,1].
func (s CPUStats) Utilization() float64 {
	if s.Span <= 0 {
		return 0
	}
	u := float64(s.BusyNs) / float64(s.Span)
	if u > 1 {
		u = 1
	}
	return u
}
