package metrics

import (
	"bytes"
	"encoding/json"
	"testing"
	"testing/quick"

	"paella/internal/sim"
)

func rec(submit, delivered sim.Time) JobRecord {
	return JobRecord{Submit: submit, Admit: submit, ExecDone: delivered, Delivered: delivered}
}

func TestPercentile(t *testing.T) {
	ds := make([]sim.Time, 100)
	for i := range ds {
		ds[i] = sim.Time(i + 1) // 1..100
	}
	cases := []struct {
		p    float64
		want sim.Time
	}{
		{50, 50}, {99, 99}, {100, 100}, {1, 1},
	}
	for _, c := range cases {
		if got := Percentile(ds, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 99) != 0 {
		t.Error("empty percentile not zero")
	}
}

func TestPercentileBoundaries(t *testing.T) {
	cases := []struct {
		n    int
		p    float64
		want sim.Time // with input 1..n, nearest-rank = ⌈p/100·n⌉
	}{
		{1, 1, 1}, {1, 50, 1}, {1, 99, 1}, {1, 100, 1},
		{2, 50, 1}, {2, 50.001, 2}, {2, 99, 2},
		{10, 50, 5}, {10, 90, 9}, {10, 91, 10}, {10, 100, 10},
		{100, 1, 1}, {100, 99, 99}, {100, 99.5, 100},
		{1000, 99.9, 999}, {1000, 99.91, 1000},
	}
	for _, c := range cases {
		ds := make([]sim.Time, c.n)
		for i := range ds {
			ds[i] = sim.Time(i + 1)
		}
		if got := Percentile(ds, c.p); got != c.want {
			t.Errorf("Percentile(n=%d, p=%v) = %v, want %v", c.n, c.p, got, c.want)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	ds := []sim.Time{5, 1, 3}
	Percentile(ds, 50)
	if ds[0] != 5 || ds[1] != 1 || ds[2] != 3 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentileProperty(t *testing.T) {
	f := func(raw []uint16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		ds := make([]sim.Time, len(raw))
		for i, v := range raw {
			ds[i] = sim.Time(v)
		}
		p := float64(pRaw%100) + 1
		got := Percentile(ds, p)
		// Result must be an element of the input.
		found := false
		le := 0
		for _, d := range ds {
			if d == got {
				found = true
			}
			if d <= got {
				le++
			}
		}
		// At least p% of values are ≤ the percentile.
		return found && float64(le)/float64(len(ds))*100 >= p-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestThroughput(t *testing.T) {
	c := NewCollector()
	// 10 jobs delivered over 1 second.
	for i := 0; i < 10; i++ {
		c.Add(rec(sim.Time(i)*100*sim.Millisecond, sim.Time(i+1)*100*sim.Millisecond))
	}
	got := c.Throughput()
	if got < 9.9 || got > 10.1 {
		t.Fatalf("Throughput = %f, want ≈10", got)
	}
	if NewCollector().Throughput() != 0 {
		t.Error("empty throughput not zero")
	}
}

func TestGoodput(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 10; i++ {
		var jct sim.Time = 10 * sim.Millisecond
		if i%2 == 0 {
			jct = 200 * sim.Millisecond
		}
		c.Add(rec(sim.Time(i)*100*sim.Millisecond, sim.Time(i)*100*sim.Millisecond+jct))
	}
	all := c.Throughput()
	good := c.Goodput(50 * sim.Millisecond)
	if good >= all || good <= 0 {
		t.Fatalf("Goodput = %f, Throughput = %f", good, all)
	}
}

func TestFilterModel(t *testing.T) {
	c := NewCollector()
	c.Add(JobRecord{Model: "a", Submit: 0, Delivered: 10})
	c.Add(JobRecord{Model: "b", Submit: 0, Delivered: 20})
	c.Add(JobRecord{Model: "a", Submit: 0, Delivered: 30})
	if got := c.FilterModel("a").Len(); got != 2 {
		t.Fatalf("FilterModel(a) = %d records", got)
	}
}

func TestJCTAndComm(t *testing.T) {
	r := JobRecord{
		Submit: 100, Admit: 110, ExecDone: 200, Delivered: 215, FrameworkNs: 5,
	}
	if r.JCT() != 115 {
		t.Fatalf("JCT = %v", r.JCT())
	}
	if r.CommNs() != 20 {
		t.Fatalf("CommNs = %v", r.CommNs())
	}
}

func TestCommNsClampsAtZero(t *testing.T) {
	// Framework time exceeding the channel crossings (an RPC stack whose
	// measured processing covers serialization end to end) must not yield a
	// negative communication latency.
	r := JobRecord{
		Submit: 100, Admit: 110, ExecDone: 200, Delivered: 215, FrameworkNs: 50,
	}
	if got := r.CommNs(); got != 0 {
		t.Fatalf("CommNs = %v, want 0", got)
	}
}

func TestThroughputZeroSpan(t *testing.T) {
	// All jobs submitted and delivered at the same instant: no span to
	// divide by, so throughput reports zero instead of +Inf.
	c := NewCollector()
	c.Add(rec(5, 5))
	c.Add(rec(5, 5))
	if got := c.Throughput(); got != 0 {
		t.Fatalf("zero-span Throughput = %f, want 0", got)
	}
	if got := c.Goodput(sim.Second); got != 0 {
		t.Fatalf("zero-span Goodput = %f, want 0", got)
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]sim.Time{1, 2, 2, 4})
	if len(pts) != 3 {
		t.Fatalf("CDF points = %d, want 3 distinct", len(pts))
	}
	last := pts[len(pts)-1]
	if last.Value != 4 || last.Frac != 1 {
		t.Fatalf("last CDF point = %+v", last)
	}
	// Duplicate value 2 should carry cumulative fraction 0.75.
	if pts[1].Value != 2 || pts[1].Frac != 0.75 {
		t.Fatalf("mid CDF point = %+v", pts[1])
	}
	if CDF(nil) != nil {
		t.Error("empty CDF not nil")
	}
}

func TestMean(t *testing.T) {
	if Mean([]sim.Time{10, 20, 30}) != 20 {
		t.Fatal("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty Mean not zero")
	}
}

func TestCPUStats(t *testing.T) {
	s := CPUStats{BusyNs: 250, Span: 1000}
	if s.Utilization() != 0.25 {
		t.Fatalf("Utilization = %f", s.Utilization())
	}
	if (CPUStats{BusyNs: 2000, Span: 1000}).Utilization() != 1 {
		t.Fatal("utilization not clamped")
	}
	if (CPUStats{}).Utilization() != 0 {
		t.Fatal("zero-span utilization not zero")
	}
}

func TestBreakdownTotal(t *testing.T) {
	b := Breakdown{Framework: 1, Scheduling: 2, Comm: 3, ClientSide: 4}
	if b.Total() != 10 {
		t.Fatalf("Total = %v", b.Total())
	}
}

func TestWriteJSON(t *testing.T) {
	c := NewCollector()
	c.Add(JobRecord{ID: 1, Model: "m", Submit: 10, Admit: 20, FirstDispatch: 30, ExecDone: 40, Delivered: 50})
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0]["model"] != "m" || out[0]["jct_ns"].(float64) != 40 {
		t.Fatalf("json = %v", out)
	}
}
