package metrics

import (
	"testing"

	"paella/internal/sim"
)

// llmRecord builds a generative record with the given millisecond timeline.
func llmRecord(id uint64, submitMs, firstTokMs, doneMs int64, outTokens int) JobRecord {
	return JobRecord{
		ID: id, Model: "llm", Client: 0,
		Submit:       sim.Time(submitMs) * sim.Millisecond,
		Admit:        sim.Time(submitMs) * sim.Millisecond,
		FirstToken:   sim.Time(firstTokMs) * sim.Millisecond,
		ExecDone:     sim.Time(doneMs) * sim.Millisecond,
		Delivered:    sim.Time(doneMs) * sim.Millisecond,
		OutputTokens: outTokens,
	}
}

func TestTTFTAndTPOT(t *testing.T) {
	r := llmRecord(1, 10, 30, 130, 11)
	if got := r.TTFT(); got != 20*sim.Millisecond {
		t.Fatalf("TTFT = %v, want 20ms", got)
	}
	// 10 inter-token intervals over 100ms → 10ms each.
	if got := r.TPOT(); got != 10*sim.Millisecond {
		t.Fatalf("TPOT = %v, want 10ms", got)
	}
	// Degenerate cases: no first token, single-token output.
	none := llmRecord(2, 10, 0, 130, 5)
	if none.TTFT() != 0 || none.TPOT() != 0 {
		t.Fatal("record without a first token must report zero TTFT/TPOT")
	}
	single := llmRecord(3, 10, 30, 30, 1)
	if single.TPOT() != 0 {
		t.Fatal("single-token record must report zero TPOT")
	}
}

// TestTTFTPercentileBoundaries pins the exact nearest-rank behaviour on the
// TTFT population: rank = ⌈p/100·n⌉ computed in integer arithmetic, so
// boundary percentiles land on exact elements with no float drift.
func TestTTFTPercentileBoundaries(t *testing.T) {
	c := NewCollector()
	// TTFTs 10, 20, 30, 40 ms (submit 0, first token at the TTFT).
	for i := int64(1); i <= 4; i++ {
		c.Add(llmRecord(uint64(i), 0, 10*i, 200, 8))
	}
	ds := c.TTFTs()
	if len(ds) != 4 {
		t.Fatalf("TTFTs len = %d, want 4", len(ds))
	}
	cases := []struct {
		p    float64
		want sim.Time
	}{
		{25, 10 * sim.Millisecond},     // ⌈25·4/100⌉ = 1 → first element
		{25.001, 20 * sim.Millisecond}, // one millesimal past the boundary
		{50, 20 * sim.Millisecond},
		{75, 30 * sim.Millisecond},
		{75.001, 40 * sim.Millisecond},
		{99, 40 * sim.Millisecond},
		{100, 40 * sim.Millisecond},
	}
	for _, tc := range cases {
		if got := Percentile(ds, tc.p); got != tc.want {
			t.Errorf("Percentile(TTFTs, %v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestTPOTPercentileBoundaries(t *testing.T) {
	c := NewCollector()
	// TPOTs: 5, 10, 15 ms (first token at 10ms, 11 tokens → 10 intervals).
	c.Add(llmRecord(1, 0, 10, 10+50, 11))
	c.Add(llmRecord(2, 0, 10, 10+100, 11))
	c.Add(llmRecord(3, 0, 10, 10+150, 11))
	ds := c.TPOTs()
	if len(ds) != 3 {
		t.Fatalf("TPOTs len = %d, want 3", len(ds))
	}
	// n=3: ⌈33.333·3/100⌉ = 1, ⌈33.334·3/100⌉ = 2 (millesimal precision).
	if got := Percentile(ds, 33.333); got != 5*sim.Millisecond {
		t.Errorf("p33.333 = %v, want 5ms", got)
	}
	if got := Percentile(ds, 33.334); got != 10*sim.Millisecond {
		t.Errorf("p33.334 = %v, want 10ms", got)
	}
	if got := Percentile(ds, 66.667); got != 15*sim.Millisecond {
		t.Errorf("p66.667 = %v, want 15ms", got)
	}
}

func TestTTFTGoodputAndTokenRate(t *testing.T) {
	c := NewCollector()
	// Span: submit 0 → delivered 1000ms = 1s.
	c.Add(llmRecord(1, 0, 50, 1000, 10))  // TTFT 50ms: meets a 100ms SLO
	c.Add(llmRecord(2, 0, 200, 900, 20))  // TTFT 200ms: misses
	c.Add(llmRecord(3, 0, 100, 800, 30))  // TTFT 100ms: meets exactly
	failed := llmRecord(4, 0, 10, 700, 5) // fast first token, then failed
	failed.Failed = true
	c.Add(failed)
	if got := c.TTFTGoodput(100 * sim.Millisecond); got != 2 {
		t.Fatalf("TTFTGoodput = %v req/s, want 2", got)
	}
	if got := c.TokensPerSec(); got != 65 {
		t.Fatalf("TokensPerSec = %v, want 65", got)
	}
	if got := NewCollector().TTFTGoodput(sim.Second); got != 0 {
		t.Fatalf("empty TTFTGoodput = %v, want 0", got)
	}
}

func TestPreemptionsTotal(t *testing.T) {
	c := NewCollector()
	a := llmRecord(1, 0, 10, 100, 5)
	a.Preemptions = 2
	b := llmRecord(2, 0, 10, 100, 5)
	b.Preemptions = 1
	c.Add(a)
	c.Add(b)
	if got := c.Preemptions(); got != 3 {
		t.Fatalf("Preemptions = %d, want 3", got)
	}
}
