package metrics

import (
	"testing"

	"paella/internal/sim"
)

func TestBreakdownMeansExact(t *testing.T) {
	c := NewCollector()
	// Three records with distinct per-component values; means must use
	// integer division per component, matching Mean's semantics.
	for i, v := range []sim.Time{10, 20, 40} {
		c.Add(JobRecord{
			ID: uint64(i), Submit: 0, Admit: v, ExecDone: 100, Delivered: 100,
			FrameworkNs: v * 2, SchedNs: v * 3,
		})
	}
	got := c.BreakdownMeans()
	// Framework: (20+40+80)/3 = 46 (integer). Scheduling: (30+60+120)/3 =
	// 70. Comm: Admit−Submit − FrameworkNs clamps at 0 for every record.
	if got.Framework != 46 {
		t.Errorf("mean framework = %v, want 46", got.Framework)
	}
	if got.Scheduling != 70 {
		t.Errorf("mean scheduling = %v, want 70", got.Scheduling)
	}
	if got.Comm != 0 {
		t.Errorf("mean comm = %v, want 0", got.Comm)
	}
	if got.ClientSide != 0 {
		t.Errorf("ClientSide = %v; collectors know nothing about the client library", got.ClientSide)
	}
}

func TestBreakdownPercentileBoundaries(t *testing.T) {
	c := NewCollector()
	// FrameworkNs 1..100: the nearest-rank boundaries must agree exactly
	// with Percentile over the same values.
	for i := 1; i <= 100; i++ {
		c.Add(JobRecord{ID: uint64(i), FrameworkNs: sim.Time(i)})
	}
	cases := []struct {
		p    float64
		want sim.Time
	}{
		{50, 50}, {99, 99}, {100, 100}, {1, 1},
	}
	for _, tc := range cases {
		if got := c.BreakdownPercentile(tc.p).Framework; got != tc.want {
			t.Errorf("BreakdownPercentile(%v).Framework = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := c.BreakdownP99(); got.Framework != 99 {
		t.Errorf("BreakdownP99().Framework = %v, want 99", got.Framework)
	}
	// Components rank independently: a record heavy in one component and
	// light in another contributes its own tail to each.
	c2 := NewCollector()
	c2.Add(JobRecord{FrameworkNs: 100, SchedNs: 1})
	c2.Add(JobRecord{FrameworkNs: 1, SchedNs: 100})
	p99 := c2.BreakdownP99()
	if p99.Framework != 100 || p99.Scheduling != 100 {
		t.Errorf("independent tails = %+v, want 100/100", p99)
	}
}

func TestBreakdownEmptyCollector(t *testing.T) {
	c := NewCollector()
	if got := c.BreakdownMeans(); got != (Breakdown{}) {
		t.Errorf("empty means = %+v", got)
	}
	if got := c.BreakdownP99(); got != (Breakdown{}) {
		t.Errorf("empty p99 = %+v", got)
	}
}

// TestTTFTTPOTFailedRecords pins the satellite-2 semantics: failed and
// non-generative records produce well-defined (never negative) derived
// metrics.
func TestTTFTTPOTFailedRecords(t *testing.T) {
	// Non-generative: no token, so TTFT and TPOT are zero.
	plain := JobRecord{Submit: 0, Admit: 10, ExecDone: 100, Delivered: 110}
	if plain.TTFT() != 0 || plain.TPOT() != 0 {
		t.Errorf("non-generative TTFT/TPOT = %v/%v, want 0/0", plain.TTFT(), plain.TPOT())
	}

	// Failed before the first token: TTFT stays zero, TPOT stays zero.
	early := JobRecord{Submit: 0, Admit: 10, ExecDone: 50, Delivered: 50, Failed: true, PromptTokens: 8}
	if early.TTFT() != 0 || early.TPOT() != 0 {
		t.Errorf("pre-token failure TTFT/TPOT = %v/%v, want 0/0", early.TTFT(), early.TPOT())
	}

	// Failed mid-decode with ExecDone stamped at failure time before
	// FirstToken would be nonsensical; the llm engine stamps ExecDone at
	// the failure instant, which is ≥ FirstToken for any record that
	// produced a token. But a corrupt record must still clamp, not go
	// negative.
	corrupt := JobRecord{
		Submit: 0, FirstToken: 100, ExecDone: 50, Delivered: 50,
		OutputTokens: 4, Failed: true,
	}
	if got := corrupt.TPOT(); got != 0 {
		t.Errorf("corrupt TPOT = %v, want clamped 0", got)
	}

	// One token only: no inter-token interval to average.
	single := JobRecord{Submit: 0, FirstToken: 40, ExecDone: 40, Delivered: 45, OutputTokens: 1}
	if got := single.TPOT(); got != 0 {
		t.Errorf("single-token TPOT = %v, want 0", got)
	}

	// A healthy generative record for contrast.
	ok := JobRecord{Submit: 0, FirstToken: 40, ExecDone: 100, Delivered: 110, OutputTokens: 4}
	if got := ok.TTFT(); got != 40 {
		t.Errorf("TTFT = %v, want 40", got)
	}
	if got := ok.TPOT(); got != 20 { // (100-40)/(4-1)
		t.Errorf("TPOT = %v, want 20", got)
	}
}

// TestCommNsFailedRecord: a failure record with ExecDone stamped at the
// failure instant keeps CommNs to the real channel crossings instead of
// swallowing the whole queue wait.
func TestCommNsFailedRecord(t *testing.T) {
	r := JobRecord{
		Submit: 0, Admit: 10, ExecDone: 500, Delivered: 510,
		Failed: true, FailureReason: "kv exhausted",
	}
	if got := r.CommNs(); got != 20 {
		t.Errorf("failed-record CommNs = %v, want 20 (10 in + 10 out)", got)
	}
	// If ExecDone had been left zero the old bug would report 520 here.
	stale := JobRecord{Submit: 0, Admit: 10, Delivered: 510, Failed: true}
	if got := stale.CommNs(); got != 520 {
		t.Errorf("sanity: unstamped ExecDone inflates CommNs to %v", got)
	}
}
