package model

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"

	"paella/internal/gpu"
	"paella/internal/sim"
)

// ZooEntry describes one model to synthesize: the observable properties
// from Table 2 (and the Figure 3 models) plus structural knobs.
type ZooEntry struct {
	Name string
	// ExecTime is the target end-to-end TVM execution time (Table 2).
	ExecTime sim.Time
	// Executions is the number of kernel launches per inference
	// (approximating the paper's computation-graph node counts).
	Executions int
	// Unique is the number of distinct compiled kernels.
	Unique int
	// InputBytes/OutputBytes size the I/O tensors.
	InputBytes  int
	OutputBytes int
	// WeightBytes is the fp32 parameter footprint in device memory
	// (internal/vram residency accounting; zero = negligible).
	WeightBytes int
}

const imgInput = 224 * 224 * 3 * 4 // float32 ImageNet tensor
const clsOutput = 1000 * 4         // float32 logits

// Table2 lists the paper's evaluation models (Table 2) with their measured
// TVM execution times. Kernel counts approximate the published graph sizes
// for each architecture.
func Table2() []ZooEntry {
	return []ZooEntry{
		{"resnet18", sim.Time(1.58 * float64(sim.Millisecond)), 48, 24, imgInput, clsOutput, 45 << 20},
		{"mobilenetv2", sim.Time(1.67 * float64(sim.Millisecond)), 66, 33, imgInput, clsOutput, 14 << 20},
		{"resnet34", sim.Time(2.55 * float64(sim.Millisecond)), 84, 30, imgInput, clsOutput, 84 << 20},
		{"squeezenet1.1", sim.Time(4.79 * float64(sim.Millisecond)), 50, 25, imgInput, clsOutput, 5 << 20},
		{"resnet50", sim.Time(5.76 * float64(sim.Millisecond)), 107, 38, imgInput, clsOutput, 98 << 20},
		{"densenet", sim.Time(6.08 * float64(sim.Millisecond)), 200, 40, imgInput, clsOutput, 31 << 20},
		{"googlenet", sim.Time(7.86 * float64(sim.Millisecond)), 130, 44, imgInput, clsOutput, 27 << 20},
		{"inceptionv3", sim.Time(31.2 * float64(sim.Millisecond)), 220, 52, 299 * 299 * 3 * 4, clsOutput, 91 << 20},
	}
}

// Fig3Entries lists the models of the paper's Figure 3 (Triton overhead
// breakdown), which partially overlap Table 2.
func Fig3Entries() []ZooEntry {
	return []ZooEntry{
		{"densenet121", sim.Time(6.08 * float64(sim.Millisecond)), 200, 40, imgInput, clsOutput, 31 << 20},
		{"googlenet", sim.Time(7.86 * float64(sim.Millisecond)), 130, 44, imgInput, clsOutput, 27 << 20},
		{"gpt2", sim.Time(9.5 * float64(sim.Millisecond)), 2499, 60, 64 * 4, 64 * 768 * 4, 475 << 20},
		{"mobilenetv2", sim.Time(1.67 * float64(sim.Millisecond)), 66, 33, imgInput, clsOutput, 14 << 20},
		{"resnet50", sim.Time(5.76 * float64(sim.Millisecond)), 107, 38, imgInput, clsOutput, 98 << 20},
		{"vgg16", sim.Time(7.1 * float64(sim.Millisecond)), 38, 19, imgInput, clsOutput, 528 << 20},
		{"yolov5", sim.Time(12.3 * float64(sim.Millisecond)), 310, 48, 640 * 640 * 3 * 4, 25200 * 85 * 4, 28 << 20},
	}
}

// Generate synthesizes a model from a zoo entry. The same entry always
// yields the same model (seeded by name). Kernel durations follow a
// lognormal profile — a few heavy convolutions dominate, with a long tail
// of cheap elementwise kernels — scaled so that the sum over the execution
// sequence equals the entry's target execution time.
func Generate(e ZooEntry) *Model {
	if e.Unique <= 0 || e.Executions < e.Unique {
		panic(fmt.Sprintf("model: bad zoo entry %+v", e))
	}
	rng := rand.New(rand.NewSource(seedFor(e.Name)))

	// Draw raw duration weights for unique kernels.
	weights := make([]float64, e.Unique)
	var wsum float64
	for i := range weights {
		weights[i] = math.Exp(rng.NormFloat64() * 1.0)
	}
	// Build the execution sequence: every unique kernel appears at least
	// once; remaining slots reuse kernels biased toward the cheap ones
	// (elementwise ops repeat more often than big convolutions).
	seq := make([]int, 0, e.Executions)
	for i := 0; i < e.Unique; i++ {
		seq = append(seq, i)
	}
	for len(seq) < e.Executions {
		seq = append(seq, rng.Intn(e.Unique))
	}
	rng.Shuffle(len(seq), func(i, j int) { seq[i], seq[j] = seq[j], seq[i] })

	// Scale weights so the sequence's total duration hits the target.
	for _, i := range seq {
		wsum += weights[i]
	}
	target := float64(e.ExecTime)
	kernels := make([]*gpu.KernelSpec, e.Unique)
	// Shapes are chosen so that a typical kernel occupies a substantial
	// fraction of a T4-class device (roughly 10-40% of its thread slots)
	// in a single occupancy wave — matching how TVM-compiled CNN operators
	// behave, and making GPU capacity (not arrival rate) the binding
	// constraint at the load levels of Figures 11/12.
	threadChoices := []int{128, 256}
	for i := range kernels {
		dur := sim.Time(weights[i] / wsum * target)
		if dur < sim.Microsecond {
			dur = sim.Microsecond
		}
		kernels[i] = &gpu.KernelSpec{
			Name:              fmt.Sprintf("%s_k%02d", e.Name, i),
			Blocks:            16 << rng.Intn(3), // 16, 32 or 64 blocks
			ThreadsPerBlock:   threadChoices[rng.Intn(len(threadChoices))],
			RegsPerThread:     16 + rng.Intn(16),
			SharedMemPerBlock: []int{0, 0, 2 << 10, 8 << 10}[rng.Intn(4)],
			BlockDuration:     dur,
		}
	}
	m := &Model{
		Name:        e.Name,
		InputBytes:  e.InputBytes,
		OutputBytes: e.OutputBytes,
		WeightBytes: e.WeightBytes,
		Kernels:     kernels,
		Seq:         seq,
	}
	if err := m.Validate(); err != nil {
		panic("model: generated invalid model: " + err.Error())
	}
	return m
}

// Table2Models generates the full Table 2 zoo, sorted by execution time.
func Table2Models() []*Model {
	entries := Table2()
	out := make([]*Model, len(entries))
	for i, e := range entries {
		out[i] = Generate(e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].KernelTime() < out[j].KernelTime() })
	return out
}

// SyntheticZoo generates n distinct models for many-model experiments
// (model zoos larger than the paper's eight). Entries cycle through a small
// palette of execution times, kernel counts and weight footprints so a zoo
// mixes small/cheap and large/expensive models; generation is seeded by
// name, so the same n always yields byte-identical models.
func SyntheticZoo(n int) []*Model {
	execChoices := []sim.Time{
		sim.Time(1.5 * float64(sim.Millisecond)),
		sim.Time(2.5 * float64(sim.Millisecond)),
		sim.Time(4.0 * float64(sim.Millisecond)),
		sim.Time(6.0 * float64(sim.Millisecond)),
		sim.Time(8.0 * float64(sim.Millisecond)),
	}
	execsChoices := []int{48, 66, 84, 107, 130}
	uniqueChoices := []int{24, 33, 30, 38, 44}
	weightChoices := []int{24 << 20, 36 << 20, 48 << 20, 64 << 20, 96 << 20}
	out := make([]*Model, n)
	for i := 0; i < n; i++ {
		out[i] = Generate(ZooEntry{
			Name:        fmt.Sprintf("zoo-%02d", i),
			ExecTime:    execChoices[i%len(execChoices)],
			Executions:  execsChoices[i%len(execsChoices)],
			Unique:      uniqueChoices[i%len(uniqueChoices)],
			InputBytes:  imgInput,
			OutputBytes: clsOutput,
			WeightBytes: weightChoices[(i*3+i/5)%len(weightChoices)],
		})
	}
	return out
}

// ByName generates the named zoo model (Table 2 or Figure 3 set).
func ByName(name string) (*Model, error) {
	for _, e := range append(Table2(), Fig3Entries()...) {
		if e.Name == name {
			return Generate(e), nil
		}
	}
	return nil, fmt.Errorf("model: unknown model %q", name)
}

// Names returns the Table 2 model names in declaration order.
func Names() []string {
	entries := Table2()
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name
	}
	return names
}

// Fig2Job returns the synthetic job of the paper's Figure 2 HoL-blocking
// experiment: 8 kernels, each a single block of 128 threads and 9
// registers, executing for ~300µs.
func Fig2Job() *Model {
	k := &gpu.KernelSpec{
		Name:            "fig2_kernel",
		Blocks:          1,
		ThreadsPerBlock: 128,
		RegsPerThread:   9,
		BlockDuration:   300 * sim.Microsecond,
	}
	return &Model{
		Name:         "fig2job",
		InputBytes:   4096,
		OutputBytes:  4096,
		Kernels:      []*gpu.KernelSpec{k},
		Seq:          []int{0, 0, 0, 0, 0, 0, 0, 0},
		PinnedOutput: true,
	}
}

// TinyNet returns an MNIST-scale model roughly 1000× smaller than the
// smallest Table 2 model, used for the paper's scheduling-delay stress test
// (Figure 9) and the client-CPU experiment (Figure 14).
func TinyNet() *Model {
	mk := func(i int, dur sim.Time) *gpu.KernelSpec {
		return &gpu.KernelSpec{
			Name:            fmt.Sprintf("tinynet_k%d", i),
			Blocks:          2,
			ThreadsPerBlock: 128,
			RegsPerThread:   16,
			BlockDuration:   dur,
		}
	}
	return &Model{
		Name:        "tinynet",
		InputBytes:  28 * 28 * 4,
		OutputBytes: 10 * 4,
		Kernels: []*gpu.KernelSpec{
			mk(0, 30*sim.Microsecond),
			mk(1, 40*sim.Microsecond),
			mk(2, 30*sim.Microsecond),
		},
		Seq:          []int{0, 1, 2},
		PinnedOutput: true,
	}
}

// EmptyKernelModel returns a one-kernel model with the given grid size and
// near-zero duration, used for the instrumentation-overhead study
// (Figure 15) and the synchronization-method study (Figure 4).
func EmptyKernelModel(blocks int) *Model {
	k := &gpu.KernelSpec{
		Name:            fmt.Sprintf("empty_%dblk", blocks),
		Blocks:          blocks,
		ThreadsPerBlock: 32,
		RegsPerThread:   4,
		BlockDuration:   sim.Microsecond,
	}
	return &Model{
		Name:         k.Name,
		InputBytes:   64,
		OutputBytes:  64,
		Kernels:      []*gpu.KernelSpec{k},
		Seq:          []int{0},
		PinnedOutput: true,
	}
}

// LongShort returns the Figure 13 pair: two job types where the long one
// has 5× as many kernels as the short one.
func LongShort() (short, long *Model) {
	mk := func(name string, n int) *Model {
		k := &gpu.KernelSpec{
			Name:            name + "_k",
			Blocks:          16, // ~10% of a T4's thread slots per kernel
			ThreadsPerBlock: 256,
			RegsPerThread:   32,
			BlockDuration:   200 * sim.Microsecond,
		}
		seq := make([]int, n)
		return &Model{
			Name:         name,
			InputBytes:   16 << 10,
			OutputBytes:  4 << 10,
			Kernels:      []*gpu.KernelSpec{k},
			Seq:          seq,
			PinnedOutput: true,
		}
	}
	return mk("shortjob", 8), mk("longjob", 40)
}

func seedFor(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64() & math.MaxInt64)
}
