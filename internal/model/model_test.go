package model

import (
	"testing"

	"paella/internal/gpu"
	"paella/internal/sim"
)

func TestTable2ModelsGenerate(t *testing.T) {
	entries := Table2()
	if len(entries) != 8 {
		t.Fatalf("Table2 has %d entries, want 8", len(entries))
	}
	for _, e := range entries {
		m := Generate(e)
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if m.NumExecutions() != e.Executions {
			t.Errorf("%s: executions = %d, want %d", e.Name, m.NumExecutions(), e.Executions)
		}
		if m.NumUnique() != e.Unique {
			t.Errorf("%s: unique = %d, want %d", e.Name, m.NumUnique(), e.Unique)
		}
		// Kernel time should land within 5% of the Table 2 target (the
		// 1µs floor can push tiny kernels up slightly).
		got := float64(m.KernelTime())
		want := float64(e.ExecTime)
		if got < want*0.95 || got > want*1.05 {
			t.Errorf("%s: kernel time %v, want ≈%v", e.Name, m.KernelTime(), e.ExecTime)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	e := Table2()[0]
	a, b := Generate(e), Generate(e)
	if a.NumExecutions() != b.NumExecutions() || a.NumUnique() != b.NumUnique() {
		t.Fatal("shape differs between generations")
	}
	for i := range a.Seq {
		if a.Seq[i] != b.Seq[i] {
			t.Fatal("sequence differs between generations")
		}
	}
	for i := range a.Kernels {
		if *a.Kernels[i] != *b.Kernels[i] {
			t.Fatalf("kernel %d differs between generations", i)
		}
	}
}

func TestModelsDistinct(t *testing.T) {
	ms := Table2Models()
	seen := map[string]bool{}
	for _, m := range ms {
		if seen[m.Name] {
			t.Fatalf("duplicate model %s", m.Name)
		}
		seen[m.Name] = true
	}
	// Sorted by kernel time.
	for i := 1; i < len(ms); i++ {
		if ms[i].KernelTime() < ms[i-1].KernelTime() {
			t.Fatal("Table2Models not sorted by kernel time")
		}
	}
}

func TestByName(t *testing.T) {
	m, err := ByName("resnet18")
	if err != nil || m.Name != "resnet18" {
		t.Fatalf("ByName(resnet18) = %v, %v", m, err)
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Fatal("ByName(nonexistent) did not error")
	}
	if _, err := ByName("gpt2"); err != nil {
		t.Fatalf("ByName(gpt2) = %v", err)
	}
}

func TestCounts(t *testing.T) {
	m := &Model{
		Name:    "x",
		Kernels: []*gpu.KernelSpec{{Name: "a", Blocks: 1, ThreadsPerBlock: 1, BlockDuration: 1}, {Name: "b", Blocks: 1, ThreadsPerBlock: 1, BlockDuration: 1}},
		Seq:     []int{0, 1, 0, 0},
	}
	c := m.Counts()
	if c[0] != 3 || c[1] != 1 {
		t.Fatalf("Counts = %v", c)
	}
	if m.TotalBlocks() != 4 {
		t.Fatalf("TotalBlocks = %d", m.TotalBlocks())
	}
}

func TestFig2Job(t *testing.T) {
	m := Fig2Job()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumExecutions() != 8 {
		t.Fatalf("executions = %d, want 8", m.NumExecutions())
	}
	k := m.Kernels[0]
	if k.ThreadsPerBlock != 128 || k.RegsPerThread != 9 || k.BlockDuration != 300*sim.Microsecond {
		t.Fatalf("kernel = %+v", k)
	}
	// On the GTX 1660 SUPER, 176 of these blocks fit concurrently (§2.1).
	if got := k.MaxResident(gpu.GTX1660Super()); got != 176 {
		t.Fatalf("MaxResident = %d, want 176", got)
	}
}

func TestTinyNetIsTiny(t *testing.T) {
	tiny := TinyNet()
	smallest := Generate(Table2()[0])
	if tiny.KernelTime()*10 > smallest.KernelTime() {
		t.Fatalf("TinyNet (%v) not much smaller than resnet18 (%v)",
			tiny.KernelTime(), smallest.KernelTime())
	}
}

func TestSerialExecTimeAccountsWaves(t *testing.T) {
	cfg := gpu.Config{
		NumSMs:      1,
		SM:          gpu.SMResources{MaxBlocks: 2, MaxThreads: 1024, MaxRegisters: 65536, MaxSharedMem: 64 << 10},
		NumHWQueues: 1,
	}
	m := &Model{
		Name: "waves",
		Kernels: []*gpu.KernelSpec{
			{Name: "k", Blocks: 5, ThreadsPerBlock: 32, RegsPerThread: 1, BlockDuration: 10 * sim.Microsecond},
		},
		Seq: []int{0},
	}
	// 5 blocks, 2 resident → 3 waves → 30µs.
	if got := m.SerialExecTime(cfg); got != 30*sim.Microsecond {
		t.Fatalf("SerialExecTime = %v, want 30µs", got)
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	bad := []*Model{
		{Name: "", Seq: []int{0}, Kernels: []*gpu.KernelSpec{{Name: "k", Blocks: 1, ThreadsPerBlock: 1}}},
		{Name: "noseq", Kernels: []*gpu.KernelSpec{{Name: "k", Blocks: 1, ThreadsPerBlock: 1}}},
		{Name: "badidx", Seq: []int{5}, Kernels: []*gpu.KernelSpec{{Name: "k", Blocks: 1, ThreadsPerBlock: 1}}},
		{Name: "badkern", Seq: []int{0}, Kernels: []*gpu.KernelSpec{{Name: "k", Blocks: 0, ThreadsPerBlock: 1}}},
	}
	for _, m := range bad {
		if m.Validate() == nil {
			t.Errorf("model %q validated", m.Name)
		}
	}
}

func TestLongShort(t *testing.T) {
	short, long := LongShort()
	if long.NumExecutions() != 5*short.NumExecutions() {
		t.Fatalf("long/short kernel ratio = %d/%d, want 5×",
			long.NumExecutions(), short.NumExecutions())
	}
}

func TestEmptyKernelModel(t *testing.T) {
	for _, blocks := range []int{16, 160} {
		m := EmptyKernelModel(blocks)
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		if m.TotalBlocks() != blocks {
			t.Fatalf("TotalBlocks = %d, want %d", m.TotalBlocks(), blocks)
		}
	}
}

func TestZooKernelsFitEvalGPUs(t *testing.T) {
	for _, cfg := range []gpu.Config{gpu.TeslaT4(), gpu.GTX1660Super(), gpu.TeslaP100()} {
		for _, m := range Table2Models() {
			for _, k := range m.Kernels {
				if !k.FitsSM(cfg.SM) {
					t.Errorf("%s kernel %s does not fit %s", m.Name, k.Name, cfg.Name)
				}
			}
		}
	}
}
