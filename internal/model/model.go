// Package model represents compiled inference models as the Paella
// dispatcher sees them: an ordered sequence of CUDA kernel executions
// (drawn from a smaller set of unique compiled kernels, since TVM graphs
// reuse operators) bracketed by host↔device tensor copies.
//
// The zoo in zoo.go synthesizes kernel graphs whose end-to-end execution
// times match Table 2 of the paper, with realistic kernel counts and
// per-kernel execution configurations. Generation is seeded by model name,
// so every run of every experiment sees byte-identical models.
package model

import (
	"fmt"

	"paella/internal/gpu"
	"paella/internal/sim"
)

// Model is one deployable inference model.
type Model struct {
	Name string
	// InputBytes and OutputBytes size the tensors copied across PCIe (and,
	// under Triton, serialized through RPC).
	InputBytes  int
	OutputBytes int
	// WeightBytes is the device-memory footprint of the model's weights
	// (fp32 parameters). internal/vram uses it for residency accounting;
	// zero means "negligible" and the model is treated as always resident.
	WeightBytes int
	// Kernels is the set of unique compiled kernels in the shared library.
	Kernels []*gpu.KernelSpec
	// Seq is the execution order: indices into Kernels. TVM's graph
	// executor runs the sequence serially on one stream.
	Seq []int
	// PinnedOutput indicates the output is written to pinned host memory
	// directly by the final kernel, eliding the trailing D2H copy (§4.2's
	// almost-finished annotation then precedes the last kernel launch).
	PinnedOutput bool
}

// Validate reports structural problems.
func (m *Model) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("model without a name")
	}
	if len(m.Seq) == 0 {
		return fmt.Errorf("model %q has no kernel executions", m.Name)
	}
	for _, i := range m.Seq {
		if i < 0 || i >= len(m.Kernels) {
			return fmt.Errorf("model %q: sequence index %d out of range", m.Name, i)
		}
	}
	for _, k := range m.Kernels {
		if err := k.Validate(); err != nil {
			return fmt.Errorf("model %q: %w", m.Name, err)
		}
	}
	return nil
}

// NumExecutions returns the number of kernel launches one inference issues.
func (m *Model) NumExecutions() int { return len(m.Seq) }

// NumUnique returns the number of unique kernels.
func (m *Model) NumUnique() int { return len(m.Kernels) }

// KernelTime returns the sum of per-execution block durations: the model's
// compute time assuming every kernel's blocks run fully concurrently.
func (m *Model) KernelTime() sim.Time {
	var t sim.Time
	for _, i := range m.Seq {
		t += m.Kernels[i].BlockDuration
	}
	return t
}

// SerialExecTime returns the model's uncontended execution time on a
// device: per-kernel wall time accounts for occupancy waves when a kernel
// has more blocks than can be resident at once.
func (m *Model) SerialExecTime(cfg gpu.Config) sim.Time {
	var t sim.Time
	for _, i := range m.Seq {
		k := m.Kernels[i]
		per := k.MaxResident(cfg)
		if per <= 0 {
			return 0
		}
		waves := (k.Blocks + per - 1) / per
		t += sim.Time(waves) * k.BlockDuration
	}
	return t
}

// Counts returns how many times each unique kernel appears in Seq —
// the C_i of the paper's remaining-time formula (§6).
func (m *Model) Counts() []int {
	counts := make([]int, len(m.Kernels))
	for _, i := range m.Seq {
		counts[i]++
	}
	return counts
}

// ActivationBytes returns the per-request activation footprint: the
// device scratch one batched sample occupies beyond the (shared) weights —
// its input and output tensors. Batched launches share one weight
// allocation but carry one activation set per member, which is what the
// vram manager's activation gauge accounts under dynamic batching.
func (m *Model) ActivationBytes() int64 {
	return int64(m.InputBytes) + int64(m.OutputBytes)
}

// TotalBlocks returns the total number of thread blocks one inference
// places on the device.
func (m *Model) TotalBlocks() int {
	n := 0
	for _, i := range m.Seq {
		n += m.Kernels[i].Blocks
	}
	return n
}
