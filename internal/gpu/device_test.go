package gpu

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"paella/internal/channel"
	"paella/internal/sim"
)

// testDevice returns a small device with no launch overhead so timing
// assertions are exact.
func testDevice(env *sim.Env, sms, queues int) *Device {
	cfg := Config{
		Name:      "test",
		Microarch: Kepler,
		NumSMs:    sms,
		SM: SMResources{
			MaxBlocks:    4,
			MaxThreads:   1024,
			MaxRegisters: 65536,
			MaxSharedMem: 48 << 10,
		},
		NumHWQueues: queues,
		AggGroup:    16,
	}
	return NewDevice(env, cfg, nil)
}

func simpleKernel(name string, blocks int, dur sim.Time) *KernelSpec {
	return &KernelSpec{
		Name:            name,
		Blocks:          blocks,
		ThreadsPerBlock: 256,
		RegsPerThread:   16,
		BlockDuration:   dur,
	}
}

func TestSingleKernelLifecycle(t *testing.T) {
	env := sim.NewEnv()
	d := testDevice(env, 1, 1)
	done := false
	l := &Launch{Spec: simpleKernel("k", 2, 100*sim.Microsecond), OnComplete: func() { done = true }}
	d.Submit(0, l)
	env.Run()
	if !done {
		t.Fatal("OnComplete not called")
	}
	if l.State() != LaunchDone {
		t.Fatalf("state = %v", l.State())
	}
	// Two blocks of 256 threads fit the single SM simultaneously, so the
	// kernel completes after exactly one block duration.
	if l.CompletedAt() != 100*sim.Microsecond {
		t.Fatalf("CompletedAt = %v", l.CompletedAt())
	}
	st := d.Stats()
	if st.BlocksPlaced != 2 || st.BlocksCompleted != 2 || st.KernelsCompleted != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOccupancySerializesWaves(t *testing.T) {
	env := sim.NewEnv()
	d := testDevice(env, 1, 1) // 1 SM × 1024 threads → 4 blocks of 256 max
	l := &Launch{Spec: simpleKernel("k", 8, 50*sim.Microsecond)}
	d.Submit(0, l)
	env.Run()
	// 8 blocks at 4-per-SM capacity: two waves of 50µs.
	if got := l.CompletedAt(); got != 100*sim.Microsecond {
		t.Fatalf("CompletedAt = %v, want 100µs", got)
	}
}

func TestMaxResidentPerSM(t *testing.T) {
	r := SMResources{MaxBlocks: 16, MaxThreads: 1024, MaxRegisters: 65536, MaxSharedMem: 64 << 10}
	cases := []struct {
		k    KernelSpec
		want int
	}{
		// Thread-limited: 1024/128 = 8.
		{KernelSpec{Blocks: 1, ThreadsPerBlock: 128, RegsPerThread: 9}, 8},
		// Register-limited: 65536/(256*64) = 4.
		{KernelSpec{Blocks: 1, ThreadsPerBlock: 256, RegsPerThread: 64}, 4},
		// Shared-memory-limited: 64K/(32K) = 2.
		{KernelSpec{Blocks: 1, ThreadsPerBlock: 32, RegsPerThread: 1, SharedMemPerBlock: 32 << 10}, 2},
		// Block-slot-limited: 16.
		{KernelSpec{Blocks: 1, ThreadsPerBlock: 32, RegsPerThread: 1}, 16},
		// Does not fit at all.
		{KernelSpec{Blocks: 1, ThreadsPerBlock: 2048, RegsPerThread: 1}, 0},
	}
	for i, c := range cases {
		if got := c.k.MaxResidentPerSM(r); got != c.want {
			t.Errorf("case %d: MaxResidentPerSM = %d, want %d", i, got, c.want)
		}
	}
}

func TestFIFOWithinQueue(t *testing.T) {
	env := sim.NewEnv()
	d := testDevice(env, 1, 1)
	var order []string
	mk := func(name string) *Launch {
		return &Launch{
			Spec:       simpleKernel(name, 4, 10*sim.Microsecond), // fills the SM
			OnComplete: func() { order = append(order, name) },
		}
	}
	d.Submit(0, mk("a"))
	d.Submit(0, mk("b"))
	d.Submit(0, mk("c"))
	env.Run()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("completion order = %v", order)
	}
}

// TestHoLBlocking reproduces the core §2.1 pathology: a not-ready head
// launch stalls its queue even though an independent, ready kernel is
// queued right behind it.
func TestHoLBlocking(t *testing.T) {
	env := sim.NewEnv()
	d := testDevice(env, 2, 1) // one hardware queue
	ready := false
	var blockedDone, freeDone sim.Time
	blocked := &Launch{
		Spec:       simpleKernel("blocked", 1, 10*sim.Microsecond),
		Ready:      func() bool { return ready },
		OnComplete: func() { blockedDone = env.Now() },
	}
	free := &Launch{
		Spec:       simpleKernel("free", 1, 10*sim.Microsecond),
		OnComplete: func() { freeDone = env.Now() },
	}
	d.Submit(0, blocked)
	d.Submit(0, free)
	// Release the head's dependency at t=100µs.
	env.After(100*sim.Microsecond, func() { ready = true; d.Kick() })
	env.Run()
	if blockedDone != 110*sim.Microsecond {
		t.Fatalf("blocked kernel done at %v, want 110µs", blockedDone)
	}
	// HoL blocking: "free" had no dependencies and idle SMs existed, but it
	// had to wait for the head to clear.
	if freeDone < blockedDone {
		t.Fatalf("free kernel overtook queue head: free=%v blocked=%v", freeDone, blockedDone)
	}
	if d.Stats().HoLBlockedKernels == 0 {
		t.Fatal("HoL blocking not counted")
	}
}

// TestMultiQueueIndependence shows the Kepler+ fix: with the same two
// kernels in separate hardware queues, the independent kernel proceeds
// immediately.
func TestMultiQueueIndependence(t *testing.T) {
	env := sim.NewEnv()
	d := testDevice(env, 2, 2)
	ready := false
	var freeDone sim.Time
	blocked := &Launch{
		Spec:  simpleKernel("blocked", 1, 10*sim.Microsecond),
		Ready: func() bool { return ready },
	}
	free := &Launch{
		Spec:       simpleKernel("free", 1, 10*sim.Microsecond),
		OnComplete: func() { freeDone = env.Now() },
	}
	d.Submit(0, blocked)
	d.Submit(1, free)
	env.After(100*sim.Microsecond, func() { ready = true; d.Kick() })
	env.Run()
	if freeDone != 10*sim.Microsecond {
		t.Fatalf("free kernel done at %v, want 10µs", freeDone)
	}
}

func TestFermiCollapsesQueues(t *testing.T) {
	cfg := TwoSM(Fermi, 32)
	if cfg.EffectiveQueues() != 1 {
		t.Fatalf("Fermi EffectiveQueues = %d, want 1", cfg.EffectiveQueues())
	}
	env := sim.NewEnv()
	d := NewDevice(env, cfg, nil)
	if d.NumQueues() != 1 {
		t.Fatalf("NumQueues = %d, want 1", d.NumQueues())
	}
}

func TestOnAllPlacedFiresBeforeComplete(t *testing.T) {
	env := sim.NewEnv()
	d := testDevice(env, 1, 1)
	var placedAt, doneAt sim.Time = -1, -1
	l := &Launch{
		Spec:        simpleKernel("k", 8, 20*sim.Microsecond), // two waves
		OnAllPlaced: func() { placedAt = env.Now() },
		OnComplete:  func() { doneAt = env.Now() },
	}
	d.Submit(0, l)
	env.Run()
	// Second wave places when the first completes at 20µs.
	if placedAt != 20*sim.Microsecond {
		t.Fatalf("OnAllPlaced at %v, want 20µs", placedAt)
	}
	if doneAt != 40*sim.Microsecond {
		t.Fatalf("OnComplete at %v, want 40µs", doneAt)
	}
}

func TestNotificationsDeliveredWithDelayAndAggregation(t *testing.T) {
	env := sim.NewEnv()
	nq := channel.NewNotifQueue(1 << 12)
	cfg := Config{
		Name: "notif-test", Microarch: Kepler, NumSMs: 1,
		SM:          SMResources{MaxBlocks: 64, MaxThreads: 65536, MaxRegisters: 1 << 24, MaxSharedMem: 1 << 20},
		NumHWQueues: 1,
		NotifDelay:  2 * sim.Microsecond,
		AggGroup:    16,
	}
	d := NewDevice(env, cfg, nq)
	wakeups := 0
	d.OnNotifPosted(func() { wakeups++ })
	l := &Launch{
		Spec:         &KernelSpec{Name: "k", Blocks: 40, ThreadsPerBlock: 32, RegsPerThread: 1, BlockDuration: 10 * sim.Microsecond},
		KernelID:     77,
		Instrumented: true,
	}
	d.Submit(0, l)

	buf := make([]channel.Notification, 64)
	// Just before the notification delay elapses nothing is visible.
	env.RunUntil(2*sim.Microsecond - 1)
	if n := nq.Poll(buf); n != 0 {
		t.Fatalf("notifications visible before delay: %d", n)
	}
	env.RunUntil(2 * sim.Microsecond)
	n := nq.Poll(buf)
	// 40 blocks aggregated ×16 → 3 placement records (16+16+8).
	if n != 3 {
		t.Fatalf("placement records = %d, want 3", n)
	}
	total := 0
	for i := 0; i < n; i++ {
		if buf[i].Type() != channel.Placement || buf[i].KernelID() != 77 {
			t.Fatalf("bad record %v", buf[i])
		}
		total += int(buf[i].GroupCount())
	}
	if total != 40 {
		t.Fatalf("placement group sum = %d, want 40", total)
	}
	if wakeups == 0 {
		t.Fatal("OnNotifPosted never fired")
	}
	env.Run()
	n = nq.Poll(buf)
	total = 0
	for i := 0; i < n; i++ {
		if buf[i].Type() != channel.Completion {
			t.Fatalf("expected completion, got %v", buf[i])
		}
		total += int(buf[i].GroupCount())
	}
	if total != 40 {
		t.Fatalf("completion group sum = %d, want 40", total)
	}
}

func TestNoAggregationOneRecordPerBlock(t *testing.T) {
	env := sim.NewEnv()
	nq := channel.NewNotifQueue(1 << 12)
	cfg := testDevice(env, 1, 1).cfg
	cfg.AggGroup = 0 // disable aggregation
	d := NewDevice(env, cfg, nq)
	l := &Launch{Spec: simpleKernel("k", 4, sim.Microsecond), Instrumented: true, KernelID: 1}
	d.Submit(0, l)
	env.Run()
	buf := make([]channel.Notification, 64)
	n := nq.Poll(buf)
	if n != 8 { // 4 placements + 4 completions
		t.Fatalf("records = %d, want 8", n)
	}
}

func TestLaunchOverheadDelaysEnqueue(t *testing.T) {
	env := sim.NewEnv()
	cfg := testDevice(env, 1, 1).cfg
	cfg.LaunchOverhead = 5 * sim.Microsecond
	d := NewDevice(env, cfg, nil)
	l := &Launch{Spec: simpleKernel("k", 1, 10*sim.Microsecond)}
	d.Submit(0, l)
	env.Run()
	if got := l.CompletedAt(); got != 15*sim.Microsecond {
		t.Fatalf("CompletedAt = %v, want 15µs", got)
	}
}

func TestUtilization(t *testing.T) {
	env := sim.NewEnv()
	d := testDevice(env, 1, 1) // 1024 threads
	// One block of 256 threads for 100µs → 25% busy over [0,100µs].
	l := &Launch{Spec: simpleKernel("k", 1, 100*sim.Microsecond)}
	d.Submit(0, l)
	env.Run()
	if u := d.Utilization(); u < 0.249 || u > 0.251 {
		t.Fatalf("Utilization = %f, want 0.25", u)
	}
}

func TestResubmitPanics(t *testing.T) {
	env := sim.NewEnv()
	d := testDevice(env, 1, 1)
	l := &Launch{Spec: simpleKernel("k", 1, sim.Microsecond)}
	d.Submit(0, l)
	env.Run()
	defer func() {
		if recover() == nil {
			t.Error("resubmit did not panic")
		}
	}()
	d.Submit(0, l)
}

func TestImpossibleKernelPanics(t *testing.T) {
	env := sim.NewEnv()
	d := testDevice(env, 1, 1)
	defer func() {
		if recover() == nil {
			t.Error("oversize kernel did not panic")
		}
	}()
	d.Submit(0, &Launch{Spec: &KernelSpec{Name: "huge", Blocks: 1, ThreadsPerBlock: 4096, BlockDuration: 1}})
}

func TestKernelSpecValidate(t *testing.T) {
	bad := []KernelSpec{
		{Name: "zero-blocks", Blocks: 0, ThreadsPerBlock: 1},
		{Name: "zero-threads", Blocks: 1, ThreadsPerBlock: 0},
		{Name: "neg-regs", Blocks: 1, ThreadsPerBlock: 1, RegsPerThread: -1},
		{Name: "neg-dur", Blocks: 1, ThreadsPerBlock: 1, BlockDuration: -1},
	}
	for _, k := range bad {
		if k.Validate() == nil {
			t.Errorf("kernel %q validated", k.Name)
		}
	}
	good := KernelSpec{Name: "ok", Blocks: 2, ThreadsPerBlock: 128, RegsPerThread: 8, BlockDuration: 10}
	if err := good.Validate(); err != nil {
		t.Errorf("good kernel rejected: %v", err)
	}
}

func TestTraceRecordsSegments(t *testing.T) {
	env := sim.NewEnv()
	d := testDevice(env, 2, 2)
	tr := NewTrace()
	d.SetTrace(tr)
	d.Submit(0, &Launch{Spec: simpleKernel("a", 2, 10*sim.Microsecond), JobTag: "A"})
	d.Submit(1, &Launch{Spec: simpleKernel("b", 2, 10*sim.Microsecond), JobTag: "B"})
	env.Run()
	if tr.Len() == 0 {
		t.Fatal("no trace segments")
	}
	spans := tr.JobSpans()
	if len(spans) != 2 {
		t.Fatalf("JobSpans = %v", spans)
	}
	if tr.Makespan() != 10*sim.Microsecond {
		t.Fatalf("Makespan = %v", tr.Makespan())
	}
	if out := tr.Render(2, sim.Microsecond); out == "" {
		t.Fatal("empty render")
	}
}

// TestRandomLoadInvariants churns the device with random kernels and checks
// resource invariants plus conservation (every submitted block is placed
// and completed exactly once).
func TestRandomLoadInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		env := sim.NewEnv()
		d := testDevice(env, 1+rng.Intn(4), 1+rng.Intn(4))
		completed := 0
		n := 1 + rng.Intn(30)
		totalBlocks := 0
		for i := 0; i < n; i++ {
			blocks := 1 + rng.Intn(10)
			totalBlocks += blocks
			l := &Launch{
				Spec: &KernelSpec{
					Name:            "r",
					Blocks:          blocks,
					ThreadsPerBlock: 32 * (1 + rng.Intn(8)),
					RegsPerThread:   1 + rng.Intn(32),
					BlockDuration:   sim.Time(1+rng.Intn(100)) * sim.Microsecond,
				},
				OnComplete: func() { completed++ },
			}
			q := rng.Intn(d.NumQueues())
			at := sim.Time(rng.Intn(500)) * sim.Microsecond
			env.At(at, func() { d.Submit(q, l) })
		}
		for env.Step() {
			d.CheckInvariants()
		}
		if completed != n {
			t.Fatalf("trial %d: %d of %d kernels completed", trial, completed, n)
		}
		st := d.Stats()
		if st.BlocksPlaced != uint64(totalBlocks) || st.BlocksCompleted != uint64(totalBlocks) {
			t.Fatalf("trial %d: block conservation violated: %+v (want %d)", trial, st, totalBlocks)
		}
		if d.ResidentBlocks() != 0 || d.FreeThreads() != d.cfg.NumSMs*d.cfg.SM.MaxThreads {
			t.Fatalf("trial %d: resources not fully returned", trial)
		}
	}
}

func TestPresetConfigs(t *testing.T) {
	for _, c := range []Config{GTX1660Super(), TeslaT4(), TeslaP100()} {
		if c.NumSMs <= 0 || c.EffectiveQueues() <= 0 || c.SM.MaxThreads <= 0 {
			t.Errorf("preset %q malformed: %+v", c.Name, c)
		}
	}
	// The paper's Figure 2 concurrency bound: 128-thread, 9-register blocks
	// on the GTX 1660 SUPER allow 8 per SM × 22 SMs = 176 concurrent.
	k := KernelSpec{Name: "fig2", Blocks: 8, ThreadsPerBlock: 128, RegsPerThread: 9}
	if got := k.MaxResident(GTX1660Super()); got != 176 {
		t.Errorf("Fig2 concurrency = %d, want 176", got)
	}
}

func TestTraceWriteJSON(t *testing.T) {
	env := sim.NewEnv()
	d := testDevice(env, 2, 2)
	tr := NewTrace()
	d.SetTrace(tr)
	d.Submit(0, &Launch{Spec: simpleKernel("a", 2, 10*sim.Microsecond), JobTag: "A"})
	env.Run()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 || out[0]["job"] != "A" {
		t.Fatalf("json = %v", out)
	}
}
