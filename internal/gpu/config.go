// Package gpu models an NVIDIA-style GPU at the granularity the Paella
// paper reasons about (§2.1): an array of streaming multiprocessors (SMs)
// with static per-SM resource limits (Table 1), a limited set of strictly
// FIFO hardware queues that only ever consider the earliest-launched kernel
// at their head, and a greedy black-box block scheduler that places thread
// blocks onto SMs whenever the head kernels' resource demands fit.
//
// The model runs on virtual time (internal/sim) and reproduces the
// architectural behaviours Paella exploits — head-of-line blocking between
// streams that share a hardware queue, occupancy-gated concurrency, and the
// differences between microarchitecture generations (Figure 1) — without
// requiring physical hardware.
package gpu

import "paella/internal/sim"

// Microarch selects the stream→hardware-queue mapping behaviour of a GPU
// generation (§2.1, Figure 1).
type Microarch int

const (
	// Fermi-era devices expose a single hardware queue: kernels from all
	// streams serialize into it in issue order.
	Fermi Microarch = iota
	// Kepler (and later) devices expose multiple hardware queues (HyperQ);
	// each stream maps onto one of them.
	Kepler
	// VoltaMPS behaves like Kepler but additionally admits kernels from
	// multiple processes into the same queue set without context switches.
	VoltaMPS
)

// String returns the microarchitecture name.
func (m Microarch) String() string {
	switch m {
	case Fermi:
		return "Fermi"
	case Kepler:
		return "Kepler"
	case VoltaMPS:
		return "Volta+MPS"
	default:
		return "unknown"
	}
}

// SMResources are the per-SM physical limits of Table 1. A thread block
// occupies one block slot, ThreadsPerBlock thread slots,
// ThreadsPerBlock×RegsPerThread registers, and SharedMemPerBlock bytes of
// shared memory for its entire residence.
type SMResources struct {
	MaxBlocks    int
	MaxThreads   int
	MaxRegisters int
	MaxSharedMem int
}

// Config describes a device instance.
type Config struct {
	Name      string
	Microarch Microarch
	NumSMs    int
	SM        SMResources
	// NumHWQueues is the number of hardware queues (32 for HyperQ parts;
	// forced to 1 for Fermi).
	NumHWQueues int
	// NotifDelay is the device→host latency of an instrumented kernel's
	// notifQ write becoming visible to the dispatcher (pinned-memory
	// round trip, ~1µs on PCIe 3).
	NotifDelay sim.Time
	// LaunchOverhead is the fixed cost the hardware/runtime path adds to
	// each kernel launch before its blocks are considered for placement.
	LaunchOverhead sim.Time
	// AggGroup is the block-group size for notification aggregation (§5.2);
	// the paper uses 16. Zero disables aggregation (one notification per
	// block).
	AggGroup int
	// VRAMBytes is the device-memory capacity available for model weights
	// (internal/vram). Zero means unconstrained — every model is treated
	// as permanently resident, the behaviour of runs that predate the
	// residency subsystem.
	VRAMBytes int64
}

// GTX1660Super returns the configuration of the GeForce GTX 1660 SUPER used
// for the paper's Figure 2 experiment: 22 SMs, 1024 threads/SM, 32 hardware
// queues.
func GTX1660Super() Config {
	return Config{
		Name:      "GTX 1660 SUPER",
		Microarch: Kepler,
		NumSMs:    22,
		SM: SMResources{
			MaxBlocks:    16,
			MaxThreads:   1024,
			MaxRegisters: 65536,
			MaxSharedMem: 64 << 10,
		},
		NumHWQueues:    32,
		NotifDelay:     1200 * sim.Nanosecond,
		LaunchOverhead: 4 * sim.Microsecond,
		AggGroup:       16,
		VRAMBytes:      6 << 30,
	}
}

// TeslaT4 returns the configuration of the Tesla T4 used for the paper's
// main evaluation (§7): 40 SMs, 1024 threads/SM.
func TeslaT4() Config {
	return Config{
		Name:      "Tesla T4",
		Microarch: VoltaMPS,
		NumSMs:    40,
		SM: SMResources{
			MaxBlocks:    16,
			MaxThreads:   1024,
			MaxRegisters: 65536,
			MaxSharedMem: 64 << 10,
		},
		NumHWQueues:    32,
		NotifDelay:     1200 * sim.Nanosecond,
		LaunchOverhead: 4 * sim.Microsecond,
		AggGroup:       16,
		VRAMBytes:      16 << 30,
	}
}

// TeslaP100 returns the configuration of the Tesla P100 the paper also
// validated on (trends identical to the T4).
func TeslaP100() Config {
	return Config{
		Name:      "Tesla P100",
		Microarch: Kepler,
		NumSMs:    56,
		SM: SMResources{
			MaxBlocks:    32,
			MaxThreads:   2048,
			MaxRegisters: 65536,
			MaxSharedMem: 64 << 10,
		},
		NumHWQueues:    32,
		NotifDelay:     1300 * sim.Nanosecond,
		LaunchOverhead: 4 * sim.Microsecond,
		AggGroup:       16,
		VRAMBytes:      16 << 30,
	}
}

// A100Like returns an Ampere-class datacenter part (108 SMs, 2048
// threads/SM), used for the paper's §8 "scaling to larger GPUs"
// discussion: more SMs mean more concurrent kernels to multiplex, and
// therefore more scheduling for the dispatcher to do.
func A100Like() Config {
	return Config{
		Name:      "A100-class",
		Microarch: VoltaMPS,
		NumSMs:    108,
		SM: SMResources{
			MaxBlocks:    32,
			MaxThreads:   2048,
			MaxRegisters: 65536,
			MaxSharedMem: 164 << 10,
		},
		NumHWQueues:    32,
		NotifDelay:     1200 * sim.Nanosecond,
		LaunchOverhead: 4 * sim.Microsecond,
		AggGroup:       16,
		VRAMBytes:      40 << 30,
	}
}

// TwoSM returns the didactic two-SM device of Figure 1, where every kernel
// occupies an entire SM.
func TwoSM(arch Microarch, queues int) Config {
	return Config{
		Name:      "didactic-2SM",
		Microarch: arch,
		NumSMs:    2,
		SM: SMResources{
			MaxBlocks:    1,
			MaxThreads:   1024,
			MaxRegisters: 65536,
			MaxSharedMem: 48 << 10,
		},
		NumHWQueues: queues,
		NotifDelay:  1 * sim.Microsecond,
		AggGroup:    16,
	}
}

// EffectiveQueues returns the number of hardware queues after applying the
// microarchitecture rule (Fermi collapses everything to one queue).
func (c Config) EffectiveQueues() int {
	if c.Microarch == Fermi {
		return 1
	}
	if c.NumHWQueues < 1 {
		return 1
	}
	return c.NumHWQueues
}
