package gpu

import (
	"fmt"

	"paella/internal/sim"
)

// KernelSpec is the static execution configuration of a CUDA kernel — the
// ≪Dg, Db, Ns≫ triple plus the post-compilation register count (§4.1). All
// four are knowable before launch, which is what lets the Paella dispatcher
// predict placement without consulting the hardware.
type KernelSpec struct {
	Name string
	// Blocks is the grid size Dg: the number of thread blocks.
	Blocks int
	// ThreadsPerBlock is the block size Db.
	ThreadsPerBlock int
	// RegsPerThread is the compiled register demand per thread.
	RegsPerThread int
	// SharedMemPerBlock is Ns, the dynamic shared memory per block in bytes.
	SharedMemPerBlock int
	// BlockDuration is how long one block occupies its SM once placed.
	BlockDuration sim.Time
}

// Validate reports a descriptive error for nonsensical configurations.
func (k *KernelSpec) Validate() error {
	switch {
	case k.Blocks <= 0:
		return fmt.Errorf("kernel %q: grid size %d", k.Name, k.Blocks)
	case k.ThreadsPerBlock <= 0:
		return fmt.Errorf("kernel %q: block size %d", k.Name, k.ThreadsPerBlock)
	case k.RegsPerThread < 0 || k.SharedMemPerBlock < 0:
		return fmt.Errorf("kernel %q: negative resource demand", k.Name)
	case k.BlockDuration < 0:
		return fmt.Errorf("kernel %q: negative duration", k.Name)
	}
	return nil
}

// BlockCost returns the per-SM resource vector one block consumes, in the
// order (blocks, threads, registers, shared memory) of Table 1.
func (k *KernelSpec) BlockCost() (blocks, threads, regs, shmem int) {
	return 1, k.ThreadsPerBlock, k.ThreadsPerBlock * k.RegsPerThread, k.SharedMemPerBlock
}

// FitsSM reports whether a single block can ever be placed on an SM with
// the given limits.
func (k *KernelSpec) FitsSM(r SMResources) bool {
	_, th, rg, sh := k.BlockCost()
	return th <= r.MaxThreads && rg <= r.MaxRegisters && sh <= r.MaxSharedMem && r.MaxBlocks >= 1
}

// MaxResidentPerSM returns the occupancy limit: how many blocks of this
// kernel can be resident on one SM simultaneously.
func (k *KernelSpec) MaxResidentPerSM(r SMResources) int {
	if !k.FitsSM(r) {
		return 0
	}
	_, th, rg, sh := k.BlockCost()
	n := r.MaxBlocks
	if th > 0 {
		n = min(n, r.MaxThreads/th)
	}
	if rg > 0 {
		n = min(n, r.MaxRegisters/rg)
	}
	if sh > 0 {
		n = min(n, r.MaxSharedMem/sh)
	}
	return n
}

// MaxResident returns the device-wide occupancy limit for this kernel.
func (k *KernelSpec) MaxResident(c Config) int {
	return k.MaxResidentPerSM(c.SM) * c.NumSMs
}

// Batched returns a widened clone of the spec for an n-way batched launch:
// the grid grows to n×Blocks (one sub-grid per batched sample) while the
// per-block resource vector is unchanged, so placement and occupancy
// accounting (FitsSM, MaxResident, the dispatcher's Table 1 mirror) hold
// exactly as for n separate launches. BlockDuration is scaled by
// perBlockScale — the profiled sub-linear batch curve — which is where the
// batching win lives: total block-time B·n·d·s(n) < n·B·d when s(n) < 1.
// n ≤ 1 returns the receiver unchanged.
func (k *KernelSpec) Batched(n int, perBlockScale float64) *KernelSpec {
	if n <= 1 {
		return k
	}
	c := *k
	c.Name = fmt.Sprintf("%s#b%d", k.Name, n)
	c.Blocks = k.Blocks * n
	c.BlockDuration = sim.Time(float64(k.BlockDuration) * perBlockScale)
	return &c
}

// LaunchState tracks one submitted kernel instance through placement and
// completion.
type LaunchState int

const (
	// LaunchQueued: in a hardware queue, not yet (fully) placed.
	LaunchQueued LaunchState = iota
	// LaunchPlacing: at the head of its queue with some blocks placed.
	LaunchPlacing
	// LaunchRunning: all blocks placed; the launch has left the queue.
	LaunchRunning
	// LaunchDone: all blocks completed.
	LaunchDone
)

// String returns the state name.
func (s LaunchState) String() string {
	switch s {
	case LaunchQueued:
		return "queued"
	case LaunchPlacing:
		return "placing"
	case LaunchRunning:
		return "running"
	case LaunchDone:
		return "done"
	default:
		return "invalid"
	}
}

// Launch is one kernel instance submitted to the device. The host (the
// CUDA runtime emulation or the Paella dispatcher) fills in the identity
// and callback fields; the device manages the progress fields.
type Launch struct {
	Spec *KernelSpec
	// KernelID is the dispatcher-assigned unique id carried by notifQ
	// records (§4.1). It distinguishes executions of the same kernel.
	KernelID uint32
	// JobTag labels the owning job in execution traces.
	JobTag string
	// Ready reports whether the launch's stream dependencies are satisfied.
	// A queue whose head launch is not ready stalls — this is the
	// head-of-line blocking of §2.1. The device re-examines readiness on
	// every scheduling pass. A nil Ready means always ready.
	Ready func() bool
	// Instrumented enables notifQ placement/completion records for this
	// launch (set by the compiler pass for Paella-managed kernels).
	Instrumented bool
	// OnAllPlaced, if non-nil, runs when the last block is placed (the
	// launch leaves its hardware queue).
	OnAllPlaced func()
	// OnComplete, if non-nil, runs when the last block finishes.
	OnComplete func()

	state    LaunchState
	toPlace  int
	toFinish int
	// dev backlinks to the owning device from Submit on, letting the
	// launch-overhead expiry run as a typed event instead of a per-launch
	// closure.
	dev *Device
	// Kernel-wide notification counters (Figure 6's startCount/endCount)
	// and how many blocks have been reported to the notifQ so far.
	placedCount       int
	placedNotified    int
	completedCount    int
	completedNotified int
	queuedAt          sim.Time
	placedAt          sim.Time // time the final block was placed
	completedAt       sim.Time
}

// State returns the launch's current lifecycle state.
func (l *Launch) State() LaunchState { return l.state }

// BlocksUnplaced returns the number of blocks not yet placed on an SM.
func (l *Launch) BlocksUnplaced() int { return l.toPlace }

// BlocksOutstanding returns the number of blocks placed but not finished.
// toPlace counts down as blocks are placed and toFinish counts down as they
// finish, so the resident population is their difference.
func (l *Launch) BlocksOutstanding() int { return l.toFinish - l.toPlace }

// QueuedAt returns when the launch entered its hardware queue.
func (l *Launch) QueuedAt() sim.Time { return l.queuedAt }

// PlacedAt returns when the launch's last block was placed (valid once the
// state is LaunchRunning or later).
func (l *Launch) PlacedAt() sim.Time { return l.placedAt }

// CompletedAt returns when the launch's last block completed (valid once
// the state is LaunchDone).
func (l *Launch) CompletedAt() sim.Time { return l.completedAt }

// Recycle prepares a finished launch for reuse, clearing identity,
// callback, and progress state. It reports false — leaving the launch
// untouched — unless the launch is LaunchDone: a launch whose fate is
// uncertain (e.g. reconciled by a watchdog while the device may still hold
// it) must be left to the garbage collector instead of being reused.
func (l *Launch) Recycle() bool {
	if l.state != LaunchDone {
		return false
	}
	*l = Launch{}
	return true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
