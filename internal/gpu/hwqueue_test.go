package gpu

import "testing"

// TestHWQueueRingFIFO: the circular ring preserves strict FIFO order
// through interleaved pushes and pops, including across wrap-around and
// growth.
func TestHWQueueRingFIFO(t *testing.T) {
	var q hwQueue
	mk := func(i int) *Launch { return &Launch{KernelID: uint32(i)} }
	next := 0 // next id to push
	want := 0 // next id expected at head
	push := func(n int) {
		for i := 0; i < n; i++ {
			q.push(mk(next))
			next++
		}
	}
	pop := func(n int) {
		for i := 0; i < n; i++ {
			h := q.head()
			if h == nil {
				t.Fatalf("empty queue, want head %d", want)
			}
			if int(h.KernelID) != want {
				t.Fatalf("head = %d, want %d", h.KernelID, want)
			}
			q.popHead()
			want++
		}
	}
	push(100)
	pop(60)  // leaves the head deep in the ring
	push(50) // wraps around the backing array
	pop(90)
	if q.depth() != 0 {
		t.Fatalf("depth = %d, want 0", q.depth())
	}
	if q.head() != nil {
		t.Fatal("head of empty queue not nil")
	}
	push(3)
	pop(3)
}

// TestHWQueueRingReusesBacking: in steady state the ring reuses its
// backing array instead of growing with total throughput — after cycling
// far more launches than the peak depth, capacity is bounded by (a
// power-of-two rounding of) that peak depth, and popped slots are nilled
// so launches are not retained.
func TestHWQueueRingReusesBacking(t *testing.T) {
	var q hwQueue
	const peak = 10
	const cycles = 10000
	for i := 0; i < peak; i++ {
		q.push(&Launch{KernelID: uint32(i)})
	}
	for i := 0; i < cycles; i++ {
		q.popHead()
		q.push(&Launch{KernelID: uint32(peak + i)})
	}
	if len(q.buf) > 4*peak {
		t.Fatalf("ring grew with throughput: cap = %d for peak depth %d", len(q.buf), peak)
	}
	for q.depth() > 0 {
		q.popHead()
	}
	for i, l := range q.buf {
		if l != nil {
			t.Fatalf("drained ring retains launch at slot %d", i)
		}
	}
}

// shiftQueue is the previous dequeue implementation: every pop copies the
// entire remaining tail forward. Kept as the benchmark baseline.
type shiftQueue struct {
	launches []*Launch
}

func (q *shiftQueue) push(l *Launch) { q.launches = append(q.launches, l) }
func (q *shiftQueue) popHead() {
	copy(q.launches, q.launches[1:])
	q.launches[len(q.launches)-1] = nil
	q.launches = q.launches[:len(q.launches)-1]
}

// BenchmarkHWQueuePop drains a deep queue with the head-indexed ring:
// O(1) amortized per pop.
func BenchmarkHWQueuePop(b *testing.B) {
	const depth = 4096
	l := &Launch{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		var q hwQueue
		for j := 0; j < depth; j++ {
			q.push(l)
		}
		b.StartTimer()
		for j := 0; j < depth; j++ {
			q.popHead()
		}
	}
}

// BenchmarkHWQueuePopShift drains the same queue with the old tail-copy
// dequeue: O(depth) per pop, O(depth²) per drain.
func BenchmarkHWQueuePopShift(b *testing.B) {
	const depth = 4096
	l := &Launch{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		var q shiftQueue
		for j := 0; j < depth; j++ {
			q.push(l)
		}
		b.StartTimer()
		for j := 0; j < depth; j++ {
			q.popHead()
		}
	}
}
