package gpu

import (
	"fmt"
	"strconv"

	"paella/internal/channel"
	"paella/internal/sim"
	"paella/internal/telemetry"
	"paella/internal/trace"
)

// smState tracks the resources currently in use on one SM.
type smState struct {
	blocks  int
	threads int
	regs    int
	shmem   int
	// offline marks a retired SM (fault injection: ECC page retirement, a
	// hung partition). An offline SM accepts no new thread blocks; blocks
	// already resident drain normally, mirroring how the driver retires an
	// SM only after its work completes.
	offline bool
}

// hwQueue is one strictly-FIFO hardware queue. Only the head launch is ever
// considered for block placement; a head whose dependencies are unsatisfied
// stalls the entire queue (§2.1).
//
// The queue is a true circular ring over a power-of-two backing array:
// push and pop are O(1) with no tail copies and no compaction passes, and
// in steady state (pops keeping up with pushes) the backing array is
// reused indefinitely — zero allocations after the ring reaches the
// queue's high-water depth. Compare BenchmarkHWQueuePop with the old
// tail-shifting dequeue in BenchmarkHWQueuePopShift.
type hwQueue struct {
	buf   []*Launch // power-of-two length ring
	first int       // index of the head launch
	count int
}

func (q *hwQueue) depth() int { return q.count }

func (q *hwQueue) head() *Launch {
	if q.count == 0 {
		return nil
	}
	return q.buf[q.first]
}

func (q *hwQueue) push(l *Launch) {
	if q.count == len(q.buf) {
		q.grow()
	}
	q.buf[(q.first+q.count)&(len(q.buf)-1)] = l
	q.count++
}

func (q *hwQueue) popHead() {
	q.buf[q.first] = nil // release for GC
	q.first = (q.first + 1) & (len(q.buf) - 1)
	q.count--
}

func (q *hwQueue) grow() {
	n := len(q.buf) * 2
	if n == 0 {
		n = 16
	}
	nb := make([]*Launch, n)
	for i := 0; i < q.count; i++ {
		nb[i] = q.buf[(q.first+i)&(len(q.buf)-1)]
	}
	q.buf, q.first = nb, 0
}

// Stats aggregates device-lifetime counters.
type Stats struct {
	KernelsSubmitted uint64
	KernelsCompleted uint64
	BlocksPlaced     uint64
	BlocksCompleted  uint64
	// ThreadBusyNs integrates (threads in use)×time; divide by
	// (MaxThreads×NumSMs×elapsed) for utilization.
	ThreadBusyNs float64
	// StallNs integrates time during which at least one queue head was
	// ready but unplaceable OR a queue head was not ready while another
	// launch behind it was (head-of-line blocking indicator).
	HoLBlockedKernels uint64
	// SMsRetired / SMsRestored count topology changes from fault injection.
	SMsRetired  uint64
	SMsRestored uint64
	// NotifsDropped / NotifsDuplicated count notification records mutated
	// by an installed channel fault (internal/fault's lossy-notifQ model).
	NotifsDropped    uint64
	NotifsDuplicated uint64
}

// Device is a simulated GPU. All methods must be called from the simulation
// event loop (callbacks or processes of the same Env).
type Device struct {
	env    *sim.Env
	cfg    Config
	sms    []smState
	queues []hwQueue
	notifQ *channel.NotifQueue
	trace  *Trace

	scheduled    bool // a scheduling pass is pending
	rrCursor     int  // round-robin start queue for fairness
	smCursor     int  // round-robin start SM for placement spreading
	stats        Stats
	lastUtilAt   sim.Time
	threadsInUse int

	// rec is the structured tracing recorder picked up from the Env at
	// construction (nil when tracing is disabled; every emission site is
	// guarded so the nil path costs nothing). smTracks/qTracks are the
	// per-SM and per-hardware-queue timeline tracks; smCounters carries the
	// occupancy series of each SM, qDepth the depth series of each queue.
	rec        *trace.Recorder
	smTracks   []trace.TrackID
	qTracks    []trace.TrackID
	smCounters []trace.CounterID
	qDepth     trace.CounterID
	qSeries    []string
	// mt is the optional windowed telemetry meter (nil = disabled):
	// device-wide occupancy and hardware-queue backlog gauges sampled at
	// the same sites as the trace counters.
	mt        *telemetry.Meter
	mtThreads telemetry.MetricID
	mtBlocks  telemetry.MetricID
	mtQDepth  telemetry.MetricID
	// onNotifPosted, if set, runs (once per batch) after notifications are
	// posted to notifQ — the dispatcher uses it as its wakeup hook instead
	// of continuous polling, with the poll interval modelled separately.
	onNotifPosted func()
	// notifFault, if set, decides per record whether the notifQ write is
	// dropped, kept, or duplicated (fault injection; see channel.NotifFault).
	notifFault channel.NotifFault
	// onTopology, if set, runs after an SM is retired or restored with the
	// new online-SM count — the dispatcher rescales its occupancy mirror to
	// the surviving capacity.
	onTopology func(online int)
	offlineSMs int

	// kickFn is the device's single scheduling-pass closure, preallocated so
	// every kick schedules without allocating.
	kickFn func()
	// perSM is placeBlocks' per-wave scratch, reused across calls.
	perSM []smPlacement
	// doneFree and postFree recycle the block-completion and
	// notification-delivery event objects. Each carries a closure
	// preallocated at construction, so the per-block hot path — the bulk of
	// all simulation events — schedules with zero allocations in steady
	// state (see the alloc-free tests in device_test.go).
	doneFree []*blockDone
	postFree []*notifPost
}

// blockDone is a pooled block-completion event: one per (SM, wave).
type blockDone struct {
	d      *Device
	l      *Launch
	smi, n int
	fire   func()
}

func (d *Device) newBlockDone() *blockDone {
	if n := len(d.doneFree); n > 0 {
		bd := d.doneFree[n-1]
		d.doneFree[n-1] = nil
		d.doneFree = d.doneFree[:n-1]
		return bd
	}
	bd := &blockDone{d: d}
	bd.fire = func() {
		l, smi, n := bd.l, bd.smi, bd.n
		bd.l = nil
		bd.d.doneFree = append(bd.d.doneFree, bd)
		bd.d.completeBlocks(l, smi, n)
	}
	return bd
}

// notifPost is a pooled notification-delivery event: one batch of notifQ
// records crossing the channel after NotifDelay.
type notifPost struct {
	d       *Device
	records []channel.Notification
	fire    func()
}

func (d *Device) newNotifPost() *notifPost {
	if n := len(d.postFree); n > 0 {
		p := d.postFree[n-1]
		d.postFree[n-1] = nil
		d.postFree = d.postFree[:n-1]
		return p
	}
	p := &notifPost{d: d}
	p.fire = func() {
		for _, r := range p.records {
			p.d.notifQ.Push(r)
		}
		p.records = p.records[:0]
		p.d.postFree = append(p.d.postFree, p)
		if p.d.onNotifPosted != nil {
			p.d.onNotifPosted()
		}
	}
	return p
}

// NewDevice builds a device on the given simulation environment. The
// notifQ may be nil when no instrumented kernels will run (pure-baseline
// experiments).
func NewDevice(env *sim.Env, cfg Config, notifQ *channel.NotifQueue) *Device {
	nq := cfg.EffectiveQueues()
	d := &Device{
		env:    env,
		cfg:    cfg,
		sms:    make([]smState, cfg.NumSMs),
		queues: make([]hwQueue, nq),
		notifQ: notifQ,
	}
	d.kickFn = func() {
		d.scheduled = false
		d.schedulePass()
	}
	if rec := trace.FromEnv(env); rec != nil {
		d.rec = rec
		proc := rec.Process("GPU " + cfg.Name)
		d.smTracks = make([]trace.TrackID, cfg.NumSMs)
		d.smCounters = make([]trace.CounterID, cfg.NumSMs)
		for i := range d.smTracks {
			d.smTracks[i] = rec.Thread(proc, "SM "+strconv.Itoa(i))
			d.smCounters[i] = rec.Counter(proc, "sm"+strconv.Itoa(i)+" occupancy")
		}
		d.qTracks = make([]trace.TrackID, nq)
		d.qSeries = make([]string, nq)
		for i := range d.qTracks {
			d.qTracks[i] = rec.Thread(proc, "HWQ "+strconv.Itoa(i))
			d.qSeries[i] = "q" + strconv.Itoa(i)
		}
		d.qDepth = rec.Counter(proc, "hwq depth")
	}
	if mt := telemetry.FromEnv(env); mt != nil {
		d.mt = mt
		d.mtThreads = mt.Gauge("gpu/active_threads")
		d.mtBlocks = mt.Gauge("gpu/active_blocks")
		d.mtQDepth = mt.Gauge("gpu/hwq_depth")
	}
	return d
}

// traceSM samples SM i's occupancy counters (blocks/threads/regs/smem)
// into the recorder and the device-wide occupancy gauges into the meter;
// nil-safe on both.
func (d *Device) traceSM(i int) {
	now := d.env.Now()
	if d.rec != nil {
		sm := &d.sms[i]
		c := d.smCounters[i]
		d.rec.Sample(c, "blocks", now, float64(sm.blocks))
		d.rec.Sample(c, "threads", now, float64(sm.threads))
		d.rec.Sample(c, "regs", now, float64(sm.regs))
		d.rec.Sample(c, "smem", now, float64(sm.shmem))
	}
	if d.mt != nil {
		blocks := 0
		for j := range d.sms {
			blocks += d.sms[j].blocks
		}
		d.mt.Set(d.mtThreads, now, float64(d.threadsInUse))
		d.mt.Set(d.mtBlocks, now, float64(blocks))
	}
}

// traceQueueDepth samples hardware queue q's depth into the recorder and
// the aggregate backlog gauge into the meter; nil-safe on both.
func (d *Device) traceQueueDepth(q int) {
	now := d.env.Now()
	if d.rec != nil {
		d.rec.Sample(d.qDepth, d.qSeries[q], now, float64(d.queues[q].depth()))
	}
	if d.mt != nil {
		depth := 0
		for i := range d.queues {
			depth += d.queues[i].depth()
		}
		d.mt.Set(d.mtQDepth, now, float64(depth))
	}
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Env returns the simulation environment the device runs on.
func (d *Device) Env() *sim.Env { return d.env }

// NumQueues returns the effective hardware queue count.
func (d *Device) NumQueues() int { return len(d.queues) }

// SetTrace attaches an execution trace recorder (may be nil to disable).
func (d *Device) SetTrace(t *Trace) { d.trace = t }

// OnNotifPosted registers a callback invoked after instrumented
// notifications land in the notifQ (the dispatcher's wakeup).
func (d *Device) OnNotifPosted(fn func()) { d.onNotifPosted = fn }

// SetNotifFault installs (or, with nil, removes) a per-record notification
// fault: the hook is consulted once per notifQ record in emission order and
// its verdict decides how many copies are published. Deterministic hooks
// keep the simulation reproducible.
func (d *Device) SetNotifFault(fn channel.NotifFault) { d.notifFault = fn }

// OnTopologyChange registers a callback invoked with the online-SM count
// after every RetireSM/RestoreSM — the dispatcher's cue to shrink or regrow
// its occupancy mirror.
func (d *Device) OnTopologyChange(fn func(online int)) { d.onTopology = fn }

// OnlineSMs returns the number of SMs currently accepting new blocks.
func (d *Device) OnlineSMs() int { return d.cfg.NumSMs - d.offlineSMs }

// RetireSM takes SM i out of service: it accepts no further thread blocks,
// while blocks already resident drain normally (ECC retirement semantics —
// the driver quarantines the SM, it does not kill running work). Reports
// false if the SM was already offline.
func (d *Device) RetireSM(i int) bool {
	if i < 0 || i >= len(d.sms) || d.sms[i].offline {
		return false
	}
	d.sms[i].offline = true
	d.offlineSMs++
	d.stats.SMsRetired++
	if d.rec != nil {
		d.rec.InstantArgs(d.smTracks[i], "sm-retired", "fault", d.env.Now(),
			trace.Int("resident_blocks", int64(d.sms[i].blocks)))
	}
	if d.onTopology != nil {
		d.onTopology(d.OnlineSMs())
	}
	return true
}

// RestoreSM returns a retired SM to service and kicks the block scheduler
// (queued work may now fit). Reports false if the SM was not offline.
func (d *Device) RestoreSM(i int) bool {
	if i < 0 || i >= len(d.sms) || !d.sms[i].offline {
		return false
	}
	d.sms[i].offline = false
	d.offlineSMs--
	d.stats.SMsRestored++
	if d.rec != nil {
		d.rec.Instant(d.smTracks[i], "sm-restored", "fault", d.env.Now())
	}
	if d.onTopology != nil {
		d.onTopology(d.OnlineSMs())
	}
	d.kick()
	return true
}

// Stats returns a snapshot of device counters with utilization integrated
// up to the current instant.
func (d *Device) Stats() Stats {
	d.accrueUtil()
	return d.stats
}

// Utilization returns the average fraction of thread slots occupied over
// [0, now].
func (d *Device) Utilization() float64 {
	d.accrueUtil()
	elapsed := float64(d.env.Now())
	if elapsed == 0 {
		return 0
	}
	return d.stats.ThreadBusyNs / (elapsed * float64(d.cfg.SM.MaxThreads*d.cfg.NumSMs))
}

// QueueDepth returns the number of launches waiting in (or placing from)
// hardware queue q.
func (d *Device) QueueDepth(q int) int { return d.queues[q].depth() }

// TotalQueued returns the number of launches across all hardware queues.
func (d *Device) TotalQueued() int {
	n := 0
	for i := range d.queues {
		n += d.queues[i].depth()
	}
	return n
}

// FreeThreads returns the number of unoccupied thread slots device-wide.
func (d *Device) FreeThreads() int {
	free := 0
	for i := range d.sms {
		free += d.cfg.SM.MaxThreads - d.sms[i].threads
	}
	return free
}

// ResidentBlocks returns the number of thread blocks currently resident.
func (d *Device) ResidentBlocks() int {
	n := 0
	for i := range d.sms {
		n += d.sms[i].blocks
	}
	return n
}

// Submit enqueues a launch onto hardware queue q. The launch must not have
// been submitted before. Submission models the driver-side launch cost
// (Config.LaunchOverhead) before the kernel becomes visible to the queue.
func (d *Device) Submit(q int, l *Launch) {
	if q < 0 || q >= len(d.queues) {
		panic(fmt.Sprintf("gpu: submit to queue %d of %d", q, len(d.queues)))
	}
	if l.state != LaunchQueued || l.toFinish != 0 {
		panic("gpu: launch resubmitted")
	}
	if err := l.Spec.Validate(); err != nil {
		panic("gpu: " + err.Error())
	}
	if !l.Spec.FitsSM(d.cfg.SM) {
		panic(fmt.Sprintf("gpu: kernel %q can never fit an SM", l.Spec.Name))
	}
	l.toPlace = l.Spec.Blocks
	l.toFinish = l.Spec.Blocks
	d.stats.KernelsSubmitted++
	enqueue := func() {
		l.queuedAt = d.env.Now()
		d.queues[q].push(l)
		d.traceQueueDepth(q)
		d.kick()
	}
	if d.cfg.LaunchOverhead > 0 {
		d.env.DoAfter(d.cfg.LaunchOverhead, enqueue)
	} else {
		enqueue()
	}
}

// Kick requests a scheduling pass (e.g., after a launch's dependencies
// become satisfied). Multiple kicks coalesce into one pass per instant.
func (d *Device) Kick() { d.kick() }

func (d *Device) kick() {
	if d.scheduled {
		return
	}
	d.scheduled = true
	d.env.DoAfter(0, d.kickFn)
}

// schedulePass is the block scheduler: it repeatedly scans the hardware
// queues round-robin, placing blocks from ready head launches onto SMs
// until nothing more fits. Per §2.1 it never looks past a queue's head.
func (d *Device) schedulePass() {
	for {
		progressed := false
		nq := len(d.queues)
		for i := 0; i < nq; i++ {
			qi := (d.rrCursor + i) % nq
			q := &d.queues[qi]
			head := q.head()
			if head == nil {
				continue
			}
			if head.Ready != nil && !head.Ready() {
				// Queue stalls on an unready head. If anything is queued
				// behind it, that is head-of-line blocking.
				if q.depth() > 1 {
					d.stats.HoLBlockedKernels++
					if d.rec != nil {
						d.rec.InstantArgs(d.qTracks[qi], "hol-blocked", "sched", d.env.Now(),
							trace.Str("head", head.Spec.Name), trace.Int("behind", int64(q.depth()-1)))
					}
				}
				continue
			}
			placed := d.placeBlocks(head)
			if placed > 0 {
				progressed = true
			}
			if head.toPlace == 0 {
				// Fully placed: the launch leaves the queue, exposing the
				// next kernel (if any) to the scheduler.
				head.state = LaunchRunning
				head.placedAt = d.env.Now()
				q.popHead()
				if d.rec != nil {
					// The launch's residence in the hardware queue, from
					// enqueue to full placement.
					d.rec.SpanArgs(d.qTracks[qi], head.Spec.Name, "hwqueue",
						head.queuedAt, d.env.Now(),
						trace.Str("job", head.JobTag), trace.Int("kernel_id", int64(head.KernelID)))
				}
				d.traceQueueDepth(qi)
				if head.OnAllPlaced != nil {
					d.env.DoAfter(0, head.OnAllPlaced)
				}
				progressed = true
			}
		}
		d.rrCursor = (d.rrCursor + 1) % nq
		if !progressed {
			return
		}
	}
}

// placeBlocks places as many blocks of l as currently fit, spreading them
// across SMs round-robin. It returns the number placed and schedules their
// completions and notifications.
// smPlacement counts the blocks placed on one SM during a wave, in
// first-placement order. A slice (not a map) so that the completion and
// notification events below are scheduled in a deterministic order —
// map iteration would randomize same-instant event ordering run to run,
// which both perturbs the simulation subtly and makes trace output
// irreproducible.
type smPlacement struct {
	sm, n int
}

func (d *Device) placeBlocks(l *Launch) int {
	_, th, rg, sh := l.Spec.BlockCost()
	totalPlaced := 0
	nsm := len(d.sms)
	// perSM counts blocks placed per SM in this wave so completions and
	// notifications can be chunked per SM (device-owned scratch, reused
	// across waves).
	perSM := d.perSM[:0]
	for l.toPlace > 0 {
		placedThisRound := false
		for i := 0; i < nsm && l.toPlace > 0; i++ {
			smi := (d.smCursor + i) % nsm
			sm := &d.sms[smi]
			if sm.offline {
				continue
			}
			if sm.blocks+1 > d.cfg.SM.MaxBlocks ||
				sm.threads+th > d.cfg.SM.MaxThreads ||
				sm.regs+rg > d.cfg.SM.MaxRegisters ||
				sm.shmem+sh > d.cfg.SM.MaxSharedMem {
				continue
			}
			d.accrueUtil()
			sm.blocks++
			sm.threads += th
			sm.regs += rg
			sm.shmem += sh
			d.threadsInUse += th
			l.toPlace--
			l.state = LaunchPlacing
			d.stats.BlocksPlaced++
			pi := -1
			for k := range perSM {
				if perSM[k].sm == smi {
					pi = k
					break
				}
			}
			if pi < 0 {
				perSM = append(perSM, smPlacement{sm: smi})
				pi = len(perSM) - 1
			}
			perSM[pi].n++
			totalPlaced++
			placedThisRound = true
		}
		if !placedThisRound {
			break
		}
	}
	d.smCursor = (d.smCursor + 1) % nsm
	d.perSM = perSM
	if totalPlaced == 0 {
		return 0
	}
	now := d.env.Now()
	for _, pl := range perSM {
		smi, n := pl.sm, pl.n
		if d.trace != nil {
			d.trace.add(segment{SM: smi, Kernel: l.Spec.Name, Job: l.JobTag, KernelID: l.KernelID, Blocks: n, Start: now, End: now + l.Spec.BlockDuration})
		}
		if d.rec != nil {
			d.rec.SpanArgs(d.smTracks[smi], l.Spec.Name, "kernel",
				now, now+l.Spec.BlockDuration,
				trace.Str("job", l.JobTag), trace.Int("kernel_id", int64(l.KernelID)),
				trace.Int("blocks", int64(n)))
		}
		d.traceSM(smi)
		d.emitNotifs(l, channel.Placement, uint8(smi), n)
		bd := d.newBlockDone()
		bd.l, bd.smi, bd.n = l, smi, n
		d.env.DoAfter(l.Spec.BlockDuration, bd.fire)
	}
	return totalPlaced
}

// completeBlocks returns the resources of n blocks of l on SM smi and
// advances the launch's completion accounting.
func (d *Device) completeBlocks(l *Launch, smi, n int) {
	_, th, rg, sh := l.Spec.BlockCost()
	d.accrueUtil()
	sm := &d.sms[smi]
	sm.blocks -= n
	sm.threads -= n * th
	sm.regs -= n * rg
	sm.shmem -= n * sh
	d.threadsInUse -= n * th
	if sm.blocks < 0 || sm.threads < 0 || sm.regs < 0 || sm.shmem < 0 {
		panic("gpu: SM resource accounting went negative")
	}
	d.traceSM(smi)
	l.toFinish -= n
	d.stats.BlocksCompleted += uint64(n)
	d.emitNotifs(l, channel.Completion, uint8(smi), n)
	if l.toFinish == 0 {
		l.state = LaunchDone
		l.completedAt = d.env.Now()
		d.stats.KernelsCompleted++
		if l.OnComplete != nil {
			d.env.DoAfter(0, l.OnComplete)
		}
	}
	// Freed resources may unblock queue heads.
	d.kick()
}

// emitNotifs advances the launch's kernel-wide notification counters by n
// blocks on SM sm and posts aggregated notifQ records (§5.2, Figure 6):
// the instrumented kernel's designated threads maintain one atomic counter
// per direction, and a record is written every AggGroup-th block plus once
// at the final block. Between crossings, up to AggGroup−1 blocks are
// placed/finished but not yet visible to the dispatcher — the accepted
// cost of aggregation.
func (d *Device) emitNotifs(l *Launch, t channel.NotifType, sm uint8, n int) {
	if !l.Instrumented || d.notifQ == nil {
		return
	}
	group := d.cfg.AggGroup
	if group <= 0 {
		group = 1
	}
	total := l.Spec.Blocks
	count, notified := &l.placedCount, &l.placedNotified
	if t == channel.Completion {
		count, notified = &l.completedCount, &l.completedNotified
	}
	*count += n
	newNotified := (*count / group) * group
	if *count == total {
		newNotified = total
	}
	delta := newNotified - *notified
	if delta <= 0 {
		return
	}
	*notified = newNotified
	p := d.newNotifPost()
	for delta > 0 {
		g := min(delta, group)
		rec := channel.Pack(t, sm, uint16(g), l.KernelID)
		copies := channel.NotifKeep
		if d.notifFault != nil {
			copies = d.notifFault(rec)
		}
		switch {
		case copies <= channel.NotifDrop:
			d.stats.NotifsDropped++
		case copies >= channel.NotifDup:
			d.stats.NotifsDuplicated++
			p.records = append(p.records, rec, rec)
		default:
			p.records = append(p.records, rec)
		}
		delta -= g
	}
	if len(p.records) == 0 {
		p.d.postFree = append(p.d.postFree, p)
		return
	}
	d.env.DoAfter(d.cfg.NotifDelay, p.fire)
}

// accrueUtil integrates thread occupancy up to now.
func (d *Device) accrueUtil() {
	now := d.env.Now()
	if now > d.lastUtilAt {
		d.stats.ThreadBusyNs += float64(d.threadsInUse) * float64(now-d.lastUtilAt)
		d.lastUtilAt = now
	}
}

// CheckInvariants panics if any SM's accounting is out of bounds; tests
// call it between steps.
func (d *Device) CheckInvariants() {
	for i := range d.sms {
		sm := &d.sms[i]
		if sm.blocks < 0 || sm.blocks > d.cfg.SM.MaxBlocks ||
			sm.threads < 0 || sm.threads > d.cfg.SM.MaxThreads ||
			sm.regs < 0 || sm.regs > d.cfg.SM.MaxRegisters ||
			sm.shmem < 0 || sm.shmem > d.cfg.SM.MaxSharedMem {
			panic(fmt.Sprintf("gpu: SM %d out of bounds: %+v", i, *sm))
		}
	}
}
