package gpu

import (
	"fmt"
	"math/bits"
	"strconv"

	"paella/internal/channel"
	"paella/internal/sim"
	"paella/internal/telemetry"
	"paella/internal/trace"
)

// smState tracks the resources currently in use on one SM.
type smState struct {
	blocks  int
	threads int
	regs    int
	shmem   int
	// offline marks a retired SM (fault injection: ECC page retirement, a
	// hung partition). An offline SM accepts no new thread blocks; blocks
	// already resident drain normally, mirroring how the driver retires an
	// SM only after its work completes.
	offline bool
}

// hwQueue is one strictly-FIFO hardware queue. Only the head launch is ever
// considered for block placement; a head whose dependencies are unsatisfied
// stalls the entire queue (§2.1).
//
// The queue is a true circular ring over a power-of-two backing array:
// push and pop are O(1) with no tail copies and no compaction passes, and
// in steady state (pops keeping up with pushes) the backing array is
// reused indefinitely — zero allocations after the ring reaches the
// queue's high-water depth. Compare BenchmarkHWQueuePop with the old
// tail-shifting dequeue in BenchmarkHWQueuePopShift.
type hwQueue struct {
	buf   []*Launch // power-of-two length ring
	first int       // index of the head launch
	count int
}

func (q *hwQueue) depth() int { return q.count }

func (q *hwQueue) head() *Launch {
	if q.count == 0 {
		return nil
	}
	return q.buf[q.first]
}

func (q *hwQueue) push(l *Launch) {
	if q.count == len(q.buf) {
		q.grow()
	}
	q.buf[(q.first+q.count)&(len(q.buf)-1)] = l
	q.count++
}

func (q *hwQueue) popHead() {
	q.buf[q.first] = nil // release for GC
	q.first = (q.first + 1) & (len(q.buf) - 1)
	q.count--
}

func (q *hwQueue) grow() {
	n := len(q.buf) * 2
	if n == 0 {
		n = 16
	}
	nb := make([]*Launch, n)
	for i := 0; i < q.count; i++ {
		nb[i] = q.buf[(q.first+i)&(len(q.buf)-1)]
	}
	q.buf, q.first = nb, 0
}

// Stats aggregates device-lifetime counters.
type Stats struct {
	KernelsSubmitted uint64
	KernelsCompleted uint64
	BlocksPlaced     uint64
	BlocksCompleted  uint64
	// ThreadBusyNs integrates (threads in use)×time; divide by
	// (MaxThreads×NumSMs×elapsed) for utilization.
	ThreadBusyNs float64
	// StallNs integrates time during which at least one queue head was
	// ready but unplaceable OR a queue head was not ready while another
	// launch behind it was (head-of-line blocking indicator).
	HoLBlockedKernels uint64
	// SMsRetired / SMsRestored count topology changes from fault injection.
	SMsRetired  uint64
	SMsRestored uint64
	// NotifsDropped / NotifsDuplicated count notification records mutated
	// by an installed channel fault (internal/fault's lossy-notifQ model).
	NotifsDropped    uint64
	NotifsDuplicated uint64
}

// Device is a simulated GPU. All methods must be called from the simulation
// event loop (callbacks or processes of the same Env).
type Device struct {
	env    *sim.Env
	cfg    Config
	sms    []smState
	queues []hwQueue
	notifQ *channel.NotifQueue
	trace  *Trace

	scheduled    bool // a scheduling pass is pending
	rrCursor     int  // round-robin start queue for fairness
	smCursor     int  // round-robin start SM for placement spreading
	queued       int  // launches resident across all hardware queues
	occ          uint64 // bitmask of non-empty queues (used when nq ≤ 64)
	stats        Stats
	lastUtilAt   sim.Time
	threadsInUse int
	// freeBlocks/freeThreads aggregate spare capacity across online SMs.
	// Either being too small to host one block proves a wave places
	// nothing, letting placeBlocks skip its per-SM scan (the dominant
	// cost when the device is saturated, which is exactly when the block
	// scheduler runs most often).
	freeBlocks  int
	freeThreads int

	// rec is the structured tracing recorder picked up from the Env at
	// construction (nil when tracing is disabled; every emission site is
	// guarded so the nil path costs nothing). smTracks/qTracks are the
	// per-SM and per-hardware-queue timeline tracks; smCounters carries the
	// occupancy series of each SM, qDepth the depth series of each queue.
	rec        *trace.Recorder
	smTracks   []trace.TrackID
	qTracks    []trace.TrackID
	smCounters []trace.CounterID
	qDepth     trace.CounterID
	qSeries    []string
	// mt is the optional windowed telemetry meter (nil = disabled):
	// device-wide occupancy and hardware-queue backlog gauges sampled at
	// the same sites as the trace counters.
	mt        *telemetry.Meter
	mtThreads telemetry.MetricID
	mtBlocks  telemetry.MetricID
	mtQDepth  telemetry.MetricID
	// onNotifPosted, if set, runs (once per batch) after notifications are
	// posted to notifQ — the dispatcher uses it as its wakeup hook instead
	// of continuous polling, with the poll interval modelled separately.
	onNotifPosted func()
	// notifFault, if set, decides per record whether the notifQ write is
	// dropped, kept, or duplicated (fault injection; see channel.NotifFault).
	notifFault channel.NotifFault
	// onTopology, if set, runs after an SM is retired or restored with the
	// new online-SM count — the dispatcher rescales its occupancy mirror to
	// the surviving capacity.
	onTopology func(online int)
	offlineSMs int

	// kickFn is the device's single scheduling-pass closure, preallocated so
	// every kick schedules without allocating.
	kickFn func()
	// perSM is placeBlocks' per-wave scratch, reused across calls;
	// capScratch holds the eligible-SM capacity snapshot for the wave.
	perSM      []smPlacement
	capScratch []smCap
	// doneFree and postFree recycle the block-completion and
	// notification-delivery event objects. Each carries a closure
	// preallocated at construction, so the per-block hot path — the bulk of
	// all simulation events — schedules with zero allocations in steady
	// state (see the alloc-free tests in device_test.go).
	doneFree []*blockDone
	postFree []*notifPost
}

// blockDone is a pooled block-completion event: one per (SM, wave).
type blockDone struct {
	d      *Device
	l      *Launch
	smi, n int
	fire   func()
}

func (d *Device) newBlockDone() *blockDone {
	if n := len(d.doneFree); n > 0 {
		bd := d.doneFree[n-1]
		d.doneFree[n-1] = nil
		d.doneFree = d.doneFree[:n-1]
		return bd
	}
	bd := &blockDone{d: d}
	bd.fire = func() {
		l, smi, n := bd.l, bd.smi, bd.n
		bd.l = nil
		bd.d.doneFree = append(bd.d.doneFree, bd)
		bd.d.completeBlocks(l, smi, n)
	}
	return bd
}

// notifPost is a pooled notification-delivery event: one batch of notifQ
// records crossing the channel after NotifDelay.
type notifPost struct {
	d       *Device
	records []channel.Notification
	fire    func()
}

func (d *Device) newNotifPost() *notifPost {
	if n := len(d.postFree); n > 0 {
		p := d.postFree[n-1]
		d.postFree[n-1] = nil
		d.postFree = d.postFree[:n-1]
		return p
	}
	p := &notifPost{d: d}
	p.fire = func() {
		for _, r := range p.records {
			p.d.notifQ.Push(r)
		}
		p.records = p.records[:0]
		p.d.postFree = append(p.d.postFree, p)
		if p.d.onNotifPosted != nil {
			p.d.onNotifPosted()
		}
	}
	return p
}

// NewDevice builds a device on the given simulation environment. The
// notifQ may be nil when no instrumented kernels will run (pure-baseline
// experiments).
func NewDevice(env *sim.Env, cfg Config, notifQ *channel.NotifQueue) *Device {
	nq := cfg.EffectiveQueues()
	d := &Device{
		env:    env,
		cfg:    cfg,
		sms:    make([]smState, cfg.NumSMs),
		queues: make([]hwQueue, nq),
		notifQ: notifQ,
	}
	d.freeBlocks = cfg.NumSMs * cfg.SM.MaxBlocks
	d.freeThreads = cfg.NumSMs * cfg.SM.MaxThreads
	d.kickFn = func() {
		d.scheduled = false
		d.schedulePass()
	}
	if rec := trace.FromEnv(env); rec != nil {
		d.rec = rec
		proc := rec.Process("GPU " + cfg.Name)
		d.smTracks = make([]trace.TrackID, cfg.NumSMs)
		d.smCounters = make([]trace.CounterID, cfg.NumSMs)
		for i := range d.smTracks {
			d.smTracks[i] = rec.Thread(proc, "SM "+strconv.Itoa(i))
			d.smCounters[i] = rec.Counter(proc, "sm"+strconv.Itoa(i)+" occupancy")
		}
		d.qTracks = make([]trace.TrackID, nq)
		d.qSeries = make([]string, nq)
		for i := range d.qTracks {
			d.qTracks[i] = rec.Thread(proc, "HWQ "+strconv.Itoa(i))
			d.qSeries[i] = "q" + strconv.Itoa(i)
		}
		d.qDepth = rec.Counter(proc, "hwq depth")
	}
	if mt := telemetry.FromEnv(env); mt != nil {
		d.mt = mt
		d.mtThreads = mt.Gauge("gpu/active_threads")
		d.mtBlocks = mt.Gauge("gpu/active_blocks")
		d.mtQDepth = mt.Gauge("gpu/hwq_depth")
	}
	return d
}

// traceSM samples SM i's occupancy counters (blocks/threads/regs/smem)
// into the recorder and the device-wide occupancy gauges into the meter;
// nil-safe on both.
func (d *Device) traceSM(i int) {
	now := d.env.Now()
	if d.rec != nil {
		sm := &d.sms[i]
		c := d.smCounters[i]
		d.rec.Sample(c, "blocks", now, float64(sm.blocks))
		d.rec.Sample(c, "threads", now, float64(sm.threads))
		d.rec.Sample(c, "regs", now, float64(sm.regs))
		d.rec.Sample(c, "smem", now, float64(sm.shmem))
	}
	if d.mt != nil {
		blocks := 0
		for j := range d.sms {
			blocks += d.sms[j].blocks
		}
		d.mt.Set(d.mtThreads, now, float64(d.threadsInUse))
		d.mt.Set(d.mtBlocks, now, float64(blocks))
	}
}

// traceQueueDepth samples hardware queue q's depth into the recorder and
// the aggregate backlog gauge into the meter; nil-safe on both.
func (d *Device) traceQueueDepth(q int) {
	now := d.env.Now()
	if d.rec != nil {
		d.rec.Sample(d.qDepth, d.qSeries[q], now, float64(d.queues[q].depth()))
	}
	if d.mt != nil {
		depth := 0
		for i := range d.queues {
			depth += d.queues[i].depth()
		}
		d.mt.Set(d.mtQDepth, now, float64(depth))
	}
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Env returns the simulation environment the device runs on.
func (d *Device) Env() *sim.Env { return d.env }

// NumQueues returns the effective hardware queue count.
func (d *Device) NumQueues() int { return len(d.queues) }

// SetTrace attaches an execution trace recorder (may be nil to disable).
func (d *Device) SetTrace(t *Trace) { d.trace = t }

// OnNotifPosted registers a callback invoked after instrumented
// notifications land in the notifQ (the dispatcher's wakeup).
func (d *Device) OnNotifPosted(fn func()) { d.onNotifPosted = fn }

// SetNotifFault installs (or, with nil, removes) a per-record notification
// fault: the hook is consulted once per notifQ record in emission order and
// its verdict decides how many copies are published. Deterministic hooks
// keep the simulation reproducible.
func (d *Device) SetNotifFault(fn channel.NotifFault) { d.notifFault = fn }

// OnTopologyChange registers a callback invoked with the online-SM count
// after every RetireSM/RestoreSM — the dispatcher's cue to shrink or regrow
// its occupancy mirror.
func (d *Device) OnTopologyChange(fn func(online int)) { d.onTopology = fn }

// OnlineSMs returns the number of SMs currently accepting new blocks.
func (d *Device) OnlineSMs() int { return d.cfg.NumSMs - d.offlineSMs }

// RetireSM takes SM i out of service: it accepts no further thread blocks,
// while blocks already resident drain normally (ECC retirement semantics —
// the driver quarantines the SM, it does not kill running work). Reports
// false if the SM was already offline.
func (d *Device) RetireSM(i int) bool {
	if i < 0 || i >= len(d.sms) || d.sms[i].offline {
		return false
	}
	d.sms[i].offline = true
	d.offlineSMs++
	d.freeBlocks -= d.cfg.SM.MaxBlocks - d.sms[i].blocks
	d.freeThreads -= d.cfg.SM.MaxThreads - d.sms[i].threads
	d.stats.SMsRetired++
	if d.rec != nil {
		d.rec.InstantArgs(d.smTracks[i], "sm-retired", "fault", d.env.Now(),
			trace.Int("resident_blocks", int64(d.sms[i].blocks)))
	}
	if d.onTopology != nil {
		d.onTopology(d.OnlineSMs())
	}
	return true
}

// RestoreSM returns a retired SM to service and kicks the block scheduler
// (queued work may now fit). Reports false if the SM was not offline.
func (d *Device) RestoreSM(i int) bool {
	if i < 0 || i >= len(d.sms) || !d.sms[i].offline {
		return false
	}
	d.sms[i].offline = false
	d.offlineSMs--
	d.freeBlocks += d.cfg.SM.MaxBlocks - d.sms[i].blocks
	d.freeThreads += d.cfg.SM.MaxThreads - d.sms[i].threads
	d.stats.SMsRestored++
	if d.rec != nil {
		d.rec.Instant(d.smTracks[i], "sm-restored", "fault", d.env.Now())
	}
	if d.onTopology != nil {
		d.onTopology(d.OnlineSMs())
	}
	d.kick()
	return true
}

// Stats returns a snapshot of device counters with utilization integrated
// up to the current instant.
func (d *Device) Stats() Stats {
	d.accrueUtil()
	return d.stats
}

// Utilization returns the average fraction of thread slots occupied over
// [0, now].
func (d *Device) Utilization() float64 {
	d.accrueUtil()
	elapsed := float64(d.env.Now())
	if elapsed == 0 {
		return 0
	}
	return d.stats.ThreadBusyNs / (elapsed * float64(d.cfg.SM.MaxThreads*d.cfg.NumSMs))
}

// QueueDepth returns the number of launches waiting in (or placing from)
// hardware queue q.
func (d *Device) QueueDepth(q int) int { return d.queues[q].depth() }

// TotalQueued returns the number of launches across all hardware queues.
func (d *Device) TotalQueued() int { return d.queued }

// FreeThreads returns the number of unoccupied thread slots device-wide.
func (d *Device) FreeThreads() int {
	free := 0
	for i := range d.sms {
		free += d.cfg.SM.MaxThreads - d.sms[i].threads
	}
	return free
}

// ResidentBlocks returns the number of thread blocks currently resident.
func (d *Device) ResidentBlocks() int {
	n := 0
	for i := range d.sms {
		n += d.sms[i].blocks
	}
	return n
}

// Submit enqueues a launch onto hardware queue q. The launch must not have
// been submitted before. Submission models the driver-side launch cost
// (Config.LaunchOverhead) before the kernel becomes visible to the queue.
func (d *Device) Submit(q int, l *Launch) {
	if q < 0 || q >= len(d.queues) {
		panic(fmt.Sprintf("gpu: submit to queue %d of %d", q, len(d.queues)))
	}
	if l.state != LaunchQueued || l.toFinish != 0 {
		panic("gpu: launch resubmitted")
	}
	if err := l.Spec.Validate(); err != nil {
		panic("gpu: " + err.Error())
	}
	if !l.Spec.FitsSM(d.cfg.SM) {
		panic(fmt.Sprintf("gpu: kernel %q can never fit an SM", l.Spec.Name))
	}
	l.toPlace = l.Spec.Blocks
	l.toFinish = l.Spec.Blocks
	l.dev = d
	d.stats.KernelsSubmitted++
	if d.cfg.LaunchOverhead > 0 {
		d.env.DoCallAfter(d.cfg.LaunchOverhead, launchEnqueue, l, uint64(q))
	} else {
		d.enqueueLaunch(l, q)
	}
}

// launchEnqueue is the launch-overhead expiry event: ctx is the Launch and
// arg its hardware queue. A package-level EventFn, so Submit schedules the
// driver-side delay without allocating a per-launch closure.
var launchEnqueue sim.EventFn = func(ctx any, arg uint64) {
	l := ctx.(*Launch)
	l.dev.enqueueLaunch(l, int(arg))
}

func (d *Device) enqueueLaunch(l *Launch, q int) {
	l.queuedAt = d.env.Now()
	d.queues[q].push(l)
	d.queued++
	d.occ |= 1 << uint(q)
	d.traceQueueDepth(q)
	d.kick()
}

// Kick requests a scheduling pass (e.g., after a launch's dependencies
// become satisfied). Multiple kicks coalesce into one pass per instant.
func (d *Device) Kick() { d.kick() }

func (d *Device) kick() {
	if d.scheduled {
		return
	}
	d.scheduled = true
	d.env.DoAfter(0, d.kickFn)
}

// schedulePass is the block scheduler: it repeatedly scans the hardware
// queues round-robin, placing blocks from ready head launches onto SMs
// until nothing more fits. Per §2.1 it never looks past a queue's head.
// When the queue count fits a word, the scan walks the occupancy bitmask
// instead of all nq slots — empty queues contribute nothing to a scan, so
// skipping them (in the same cursor-rotated order) is behavior-identical.
func (d *Device) schedulePass() {
	nq := len(d.queues)
	for {
		// Empty-device fast path: a scan over nq queues with every head nil
		// makes no progress and only advances the fairness cursor — do
		// exactly that (identical cursor evolution, no scan). Most kicks
		// after a completion wave land here.
		if d.queued == 0 {
			d.rrCursor = (d.rrCursor + 1) % nq
			return
		}
		progressed := false
		if nq <= 64 {
			// Queues can only empty mid-pass (popHead), never fill — a
			// stale set bit is re-checked harmlessly by scanQueue.
			mask := uint64(1)<<uint(d.rrCursor) - 1
			w := d.occ
			for seg := w &^ mask; seg != 0; seg &= seg - 1 {
				if d.scanQueue(bits.TrailingZeros64(seg)) {
					progressed = true
				}
			}
			for seg := w & mask; seg != 0; seg &= seg - 1 {
				if d.scanQueue(bits.TrailingZeros64(seg)) {
					progressed = true
				}
			}
		} else {
			for i := 0; i < nq; i++ {
				if d.scanQueue((d.rrCursor + i) % nq) {
					progressed = true
				}
			}
		}
		d.rrCursor = (d.rrCursor + 1) % nq
		if !progressed {
			return
		}
	}
}

// scanQueue examines one hardware queue's head launch, placing blocks when
// it is ready, and reports whether the pass made progress on this queue.
func (d *Device) scanQueue(qi int) bool {
	q := &d.queues[qi]
	head := q.head()
	if head == nil {
		return false
	}
	if head.Ready != nil && !head.Ready() {
		// Queue stalls on an unready head. If anything is queued
		// behind it, that is head-of-line blocking.
		if q.depth() > 1 {
			d.stats.HoLBlockedKernels++
			if d.rec != nil {
				d.rec.InstantArgs(d.qTracks[qi], "hol-blocked", "sched", d.env.Now(),
					trace.Str("head", head.Spec.Name), trace.Int("behind", int64(q.depth()-1)))
			}
		}
		return false
	}
	progressed := d.placeBlocks(head) > 0
	if head.toPlace == 0 {
		// Fully placed: the launch leaves the queue, exposing the
		// next kernel (if any) to the scheduler.
		head.state = LaunchRunning
		head.placedAt = d.env.Now()
		q.popHead()
		d.queued--
		if q.count == 0 {
			d.occ &^= 1 << uint(qi)
		}
		if d.rec != nil {
			// The launch's residence in the hardware queue, from
			// enqueue to full placement.
			d.rec.SpanArgs(d.qTracks[qi], head.Spec.Name, "hwqueue",
				head.queuedAt, d.env.Now(),
				trace.Str("job", head.JobTag), trace.Int("kernel_id", int64(head.KernelID)))
		}
		d.traceQueueDepth(qi)
		if head.OnAllPlaced != nil {
			d.env.DoAfter(0, head.OnAllPlaced)
		}
		progressed = true
	}
	return progressed
}

// placeBlocks places as many blocks of l as currently fit, spreading them
// across SMs round-robin. It returns the number placed and schedules their
// completions and notifications.
// smPlacement counts the blocks placed on one SM during a wave, in
// first-placement order. A slice (not a map) so that the completion and
// notification events below are scheduled in a deterministic order —
// map iteration would randomize same-instant event ordering run to run,
// which both perturbs the simulation subtly and makes trace output
// irreproducible.
type smPlacement struct {
	sm, n int
}

// smCap snapshots one eligible SM's remaining block capacity during a wave.
type smCap struct {
	sm, cap, got int
}

func (d *Device) placeBlocks(l *Launch) int {
	_, th, rg, sh := l.Spec.BlockCost()
	nsm := len(d.sms)
	// Saturation fast path: per-SM free capacity never exceeds the
	// device-wide aggregate, so an aggregate too small for one block
	// proves the scan below would come up empty. The empty wave's one
	// side effect — the placement cursor advancing a step — is kept.
	if d.freeBlocks == 0 || (th > 0 && d.freeThreads < th) {
		d.smCursor = (d.smCursor + 1) % nsm
		return 0
	}
	// Snapshot each SM's capacity for this kernel's block shape, in cursor
	// order. Capacities are fixed for the whole wave (placement on one SM
	// never consumes another's resources), which admits a closed-form
	// round-robin fill instead of the historical one-block-per-SM-per-round
	// loop. The outcome is bit-identical: the old loop gave one block per
	// round to every SM still below its cap, stopping mid-round in cursor
	// order when the kernel ran out of blocks — exactly the water-filling
	// levels computed below.
	// The scan divides only when a resource limit actually binds below the
	// running block cap (a multiply-compare detects that first), and skips
	// block-saturated SMs before touching the other three limits.
	maxB, maxT, maxR, maxS := d.cfg.SM.MaxBlocks, d.cfg.SM.MaxThreads, d.cfg.SM.MaxRegisters, d.cfg.SM.MaxSharedMem
	caps := d.capScratch[:0]
	minRem := 0
	smi := d.smCursor
	for i := 0; i < nsm; i++ {
		idx := smi
		smi++
		if smi == nsm {
			smi = 0
		}
		sm := &d.sms[idx]
		if sm.offline {
			continue
		}
		c := maxB - sm.blocks
		if c <= 0 {
			continue
		}
		if th > 0 {
			if rem := maxT - sm.threads; rem < c*th {
				c = rem / th
			}
		}
		if rg > 0 {
			if rem := maxR - sm.regs; rem < c*rg {
				c = rem / rg
			}
		}
		if sh > 0 {
			if rem := maxS - sm.shmem; rem < c*sh {
				c = rem / sh
			}
		}
		if c > 0 {
			if len(caps) == 0 || c < minRem {
				minRem = c
			}
			caps = append(caps, smCap{sm: idx, cap: c})
		}
	}
	d.capScratch = caps

	// Water-fill: give every still-eligible SM the same number of blocks
	// per level, peeling off SMs as they reach capacity; a final partial
	// round hands one block each to the leading unsaturated SMs in cursor
	// order. The level count is bounded by the number of distinct capacity
	// values, so this is O(levels × SMs) instead of O(blocks × SMs). The
	// first level's k/minRem come from the snapshot scan above; later
	// levels (rare: only when some SM saturates mid-fill) rescan.
	remaining := l.toPlace
	k := len(caps)
	for remaining > 0 {
		if k == 0 {
			break
		}
		if remaining < k {
			for j := range caps {
				if remaining == 0 {
					break
				}
				if caps[j].cap-caps[j].got > 0 {
					caps[j].got++
					remaining--
				}
			}
			break
		}
		give := remaining / k
		if give > minRem {
			give = minRem
		}
		for j := range caps {
			if caps[j].cap-caps[j].got > 0 {
				caps[j].got += give
			}
		}
		remaining -= give * k
		k = 0
		for j := range caps {
			if r := caps[j].cap - caps[j].got; r > 0 {
				if k == 0 || r < minRem {
					minRem = r
				}
				k++
			}
		}
	}

	totalPlaced := l.toPlace - remaining
	// perSM lists the wave's placements in first-placement (cursor) order —
	// identical to the order the per-block loop discovered SMs — so the
	// completion/notification emission below stays deterministic.
	perSM := d.perSM[:0]
	if totalPlaced > 0 {
		d.accrueUtil()
		for _, e := range caps {
			if e.got == 0 {
				continue
			}
			sm := &d.sms[e.sm]
			sm.blocks += e.got
			sm.threads += e.got * th
			sm.regs += e.got * rg
			sm.shmem += e.got * sh
			d.threadsInUse += e.got * th
			d.freeBlocks -= e.got
			d.freeThreads -= e.got * th
			perSM = append(perSM, smPlacement{sm: e.sm, n: e.got})
		}
		d.stats.BlocksPlaced += uint64(totalPlaced)
		l.toPlace = remaining
		l.state = LaunchPlacing
	}
	d.smCursor = (d.smCursor + 1) % nsm
	d.perSM = perSM
	if totalPlaced == 0 {
		return 0
	}
	now := d.env.Now()
	for _, pl := range perSM {
		smi, n := pl.sm, pl.n
		if d.trace != nil {
			d.trace.add(segment{SM: smi, Kernel: l.Spec.Name, Job: l.JobTag, KernelID: l.KernelID, Blocks: n, Start: now, End: now + l.Spec.BlockDuration})
		}
		if d.rec != nil {
			d.rec.SpanArgs(d.smTracks[smi], l.Spec.Name, "kernel",
				now, now+l.Spec.BlockDuration,
				trace.Str("job", l.JobTag), trace.Int("kernel_id", int64(l.KernelID)),
				trace.Int("blocks", int64(n)))
		}
		d.traceSM(smi)
		d.emitNotifs(l, channel.Placement, uint8(smi), n)
		bd := d.newBlockDone()
		bd.l, bd.smi, bd.n = l, smi, n
		d.env.DoAfter(l.Spec.BlockDuration, bd.fire)
	}
	return totalPlaced
}

// completeBlocks returns the resources of n blocks of l on SM smi and
// advances the launch's completion accounting.
func (d *Device) completeBlocks(l *Launch, smi, n int) {
	_, th, rg, sh := l.Spec.BlockCost()
	d.accrueUtil()
	sm := &d.sms[smi]
	sm.blocks -= n
	sm.threads -= n * th
	sm.regs -= n * rg
	sm.shmem -= n * sh
	d.threadsInUse -= n * th
	if !sm.offline {
		// A retired SM's draining blocks free no usable capacity; its
		// residual share was already deducted wholesale at retirement.
		d.freeBlocks += n
		d.freeThreads += n * th
	}
	if sm.blocks < 0 || sm.threads < 0 || sm.regs < 0 || sm.shmem < 0 {
		panic("gpu: SM resource accounting went negative")
	}
	d.traceSM(smi)
	l.toFinish -= n
	d.stats.BlocksCompleted += uint64(n)
	d.emitNotifs(l, channel.Completion, uint8(smi), n)
	if l.toFinish == 0 {
		l.state = LaunchDone
		l.completedAt = d.env.Now()
		d.stats.KernelsCompleted++
		if l.OnComplete != nil {
			d.env.DoAfter(0, l.OnComplete)
		}
	}
	// Freed resources may unblock queue heads.
	d.kick()
}

// emitNotifs advances the launch's kernel-wide notification counters by n
// blocks on SM sm and posts aggregated notifQ records (§5.2, Figure 6):
// the instrumented kernel's designated threads maintain one atomic counter
// per direction, and a record is written every AggGroup-th block plus once
// at the final block. Between crossings, up to AggGroup−1 blocks are
// placed/finished but not yet visible to the dispatcher — the accepted
// cost of aggregation.
func (d *Device) emitNotifs(l *Launch, t channel.NotifType, sm uint8, n int) {
	if !l.Instrumented || d.notifQ == nil {
		return
	}
	group := d.cfg.AggGroup
	if group <= 0 {
		group = 1
	}
	total := l.Spec.Blocks
	count, notified := &l.placedCount, &l.placedNotified
	if t == channel.Completion {
		count, notified = &l.completedCount, &l.completedNotified
	}
	*count += n
	newNotified := (*count / group) * group
	if *count == total {
		newNotified = total
	}
	delta := newNotified - *notified
	if delta <= 0 {
		return
	}
	*notified = newNotified
	p := d.newNotifPost()
	for delta > 0 {
		g := min(delta, group)
		rec := channel.Pack(t, sm, uint16(g), l.KernelID)
		copies := channel.NotifKeep
		if d.notifFault != nil {
			copies = d.notifFault(rec)
		}
		switch {
		case copies <= channel.NotifDrop:
			d.stats.NotifsDropped++
		case copies >= channel.NotifDup:
			d.stats.NotifsDuplicated++
			p.records = append(p.records, rec, rec)
		default:
			p.records = append(p.records, rec)
		}
		delta -= g
	}
	if len(p.records) == 0 {
		p.d.postFree = append(p.d.postFree, p)
		return
	}
	d.env.DoAfter(d.cfg.NotifDelay, p.fire)
}

// accrueUtil integrates thread occupancy up to now.
func (d *Device) accrueUtil() {
	now := d.env.Now()
	if now > d.lastUtilAt {
		d.stats.ThreadBusyNs += float64(d.threadsInUse) * float64(now-d.lastUtilAt)
		d.lastUtilAt = now
	}
}

// CheckInvariants panics if any SM's accounting is out of bounds; tests
// call it between steps.
func (d *Device) CheckInvariants() {
	for i := range d.sms {
		sm := &d.sms[i]
		if sm.blocks < 0 || sm.blocks > d.cfg.SM.MaxBlocks ||
			sm.threads < 0 || sm.threads > d.cfg.SM.MaxThreads ||
			sm.regs < 0 || sm.regs > d.cfg.SM.MaxRegisters ||
			sm.shmem < 0 || sm.shmem > d.cfg.SM.MaxSharedMem {
			panic(fmt.Sprintf("gpu: SM %d out of bounds: %+v", i, *sm))
		}
	}
}
