package gpu

import (
	"testing"

	"paella/internal/sim"
)

func TestSplitMIG(t *testing.T) {
	parts, err := SplitMIG(TeslaT4(), []int{20, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("parts = %d", len(parts))
	}
	if parts[0].NumSMs != 20 || parts[1].NumSMs != 10 {
		t.Fatalf("SM split wrong: %+v", parts)
	}
	// Queues split proportionally: 32×20/40=16, 32×10/40=8.
	if parts[0].EffectiveQueues() != 16 || parts[1].EffectiveQueues() != 8 {
		t.Fatalf("queue split wrong: %d, %d", parts[0].EffectiveQueues(), parts[1].EffectiveQueues())
	}
	// Per-SM limits unchanged.
	if parts[0].SM != TeslaT4().SM {
		t.Fatal("per-SM limits changed by split")
	}
}

func TestSplitMIGValidation(t *testing.T) {
	if _, err := SplitMIG(TeslaT4(), nil); err == nil {
		t.Error("empty split accepted")
	}
	if _, err := SplitMIG(TeslaT4(), []int{0, 40}); err == nil {
		t.Error("zero-SM partition accepted")
	}
	if _, err := SplitMIG(TeslaT4(), []int{30, 30}); err == nil {
		t.Error("oversubscribed split accepted")
	}
}

// TestMIGIsolation: saturating one partition must not affect latency on
// the other — MIG's core guarantee, trivially delivered by fully separate
// simulated devices.
func TestMIGIsolation(t *testing.T) {
	base := TeslaT4()
	base.LaunchOverhead = 0 // exact timing for the isolation assertion
	parts := MustSplitMIG(base, []int{20, 20})
	env := sim.NewEnv()
	busy := NewDevice(env, parts[0], nil)
	quiet := NewDevice(env, parts[1], nil)

	kern := &KernelSpec{Name: "k", Blocks: 80, ThreadsPerBlock: 512, RegsPerThread: 16, BlockDuration: 100 * sim.Microsecond}
	// Saturate partition 0 with ten big kernels.
	for i := 0; i < 10; i++ {
		busy.Submit(i%busy.NumQueues(), &Launch{Spec: kern})
	}
	// A single small kernel on partition 1 must complete in exactly one
	// block duration.
	var doneAt sim.Time
	small := &KernelSpec{Name: "s", Blocks: 1, ThreadsPerBlock: 128, RegsPerThread: 8, BlockDuration: 50 * sim.Microsecond}
	quiet.Submit(0, &Launch{Spec: small, OnComplete: func() { doneAt = env.Now() }})
	env.Run()
	if doneAt != 50*sim.Microsecond {
		t.Fatalf("quiet partition kernel finished at %v, want 50µs (isolation violated)", doneAt)
	}
}
