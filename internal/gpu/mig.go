package gpu

import "fmt"

// SplitMIG slices a device configuration into static Multi-Instance GPU
// partitions (§8 of the paper: "for known, static partitions, Paella's
// techniques apply directly"). Each fraction is expressed in SMs; the
// hardware queues are divided proportionally (at least one per partition).
// Each returned Config describes an isolated virtual GPU: in the
// simulation, separate Devices built from these configs share nothing,
// matching MIG's strong isolation guarantees.
func SplitMIG(cfg Config, smsPerPart []int) ([]Config, error) {
	if len(smsPerPart) == 0 {
		return nil, fmt.Errorf("gpu: SplitMIG with no partitions")
	}
	total := 0
	for i, n := range smsPerPart {
		if n <= 0 {
			return nil, fmt.Errorf("gpu: partition %d has %d SMs", i, n)
		}
		total += n
	}
	if total > cfg.NumSMs {
		return nil, fmt.Errorf("gpu: partitions need %d SMs, device has %d", total, cfg.NumSMs)
	}
	out := make([]Config, len(smsPerPart))
	for i, n := range smsPerPart {
		part := cfg
		part.Name = fmt.Sprintf("%s/MIG-%d (%dsm)", cfg.Name, i, n)
		part.NumSMs = n
		queues := cfg.EffectiveQueues() * n / cfg.NumSMs
		if queues < 1 {
			queues = 1
		}
		part.NumHWQueues = queues
		out[i] = part
	}
	return out, nil
}

// MustSplitMIG is SplitMIG for known-good arguments; it panics on error.
func MustSplitMIG(cfg Config, smsPerPart []int) []Config {
	out, err := SplitMIG(cfg, smsPerPart)
	if err != nil {
		panic(err)
	}
	return out
}
