package gpu

import (
	"testing"
	"testing/quick"

	"paella/internal/channel"
	"paella/internal/sim"
)

// TestFIFOOrderProperty: within a single hardware queue, always-ready
// kernels of identical shape complete in submission order.
func TestFIFOOrderProperty(t *testing.T) {
	f := func(durRaw []uint8) bool {
		if len(durRaw) == 0 || len(durRaw) > 20 {
			return true
		}
		env := sim.NewEnv()
		d := testDevice(env, 1, 1)
		var order []int
		for i := range durRaw {
			i := i
			// Identical shapes that fill the SM, so execution serializes.
			d.Submit(0, &Launch{
				Spec: &KernelSpec{
					Name: "k", Blocks: 4, ThreadsPerBlock: 256, RegsPerThread: 8,
					BlockDuration: sim.Time(durRaw[i]%50+1) * sim.Microsecond,
				},
				OnComplete: func() { order = append(order, i) },
			})
		}
		env.Run()
		for i := range order {
			if order[i] != i {
				return false
			}
		}
		return len(order) == len(durRaw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestNotificationConservationProperty: for any grid size and aggregation
// group, the notifQ records of one instrumented kernel sum to exactly
// Blocks placements and Blocks completions.
func TestNotificationConservationProperty(t *testing.T) {
	f := func(blocksRaw uint8, groupRaw uint8) bool {
		blocks := int(blocksRaw)%200 + 1
		group := int(groupRaw) % 32 // 0 disables aggregation
		env := sim.NewEnv()
		nq := channel.NewNotifQueue(1 << 12)
		cfg := Config{
			Name: "prop", Microarch: Kepler, NumSMs: 4,
			SM:          SMResources{MaxBlocks: 16, MaxThreads: 1024, MaxRegisters: 65536, MaxSharedMem: 64 << 10},
			NumHWQueues: 4,
			AggGroup:    group,
		}
		d := NewDevice(env, cfg, nq)
		d.Submit(0, &Launch{
			Spec: &KernelSpec{
				Name: "k", Blocks: blocks, ThreadsPerBlock: 64, RegsPerThread: 8,
				BlockDuration: 5 * sim.Microsecond,
			},
			KernelID:     9,
			Instrumented: true,
		})
		env.Run()
		buf := make([]channel.Notification, 1<<12)
		n := nq.Poll(buf)
		placed, completed := 0, 0
		for i := 0; i < n; i++ {
			switch buf[i].Type() {
			case channel.Placement:
				placed += int(buf[i].GroupCount())
			case channel.Completion:
				completed += int(buf[i].GroupCount())
			default:
				return false
			}
			if buf[i].KernelID() != 9 {
				return false
			}
		}
		return placed == blocks && completed == blocks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestUtilizationBoundedProperty: device utilization is always in [0, 1].
func TestUtilizationBoundedProperty(t *testing.T) {
	f := func(jobs uint8) bool {
		env := sim.NewEnv()
		d := testDevice(env, 2, 2)
		n := int(jobs)%10 + 1
		for i := 0; i < n; i++ {
			d.Submit(i%2, &Launch{Spec: simpleKernel("k", i%3+1, sim.Time(i+1)*sim.Microsecond)})
		}
		env.Run()
		u := d.Utilization()
		return u >= 0 && u <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
