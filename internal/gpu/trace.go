package gpu

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"paella/internal/sim"
)

// segment is one contiguous residence of a group of blocks on an SM.
type segment struct {
	SM       int
	Kernel   string
	Job      string
	KernelID uint32
	Blocks   int
	Start    sim.Time
	End      sim.Time
}

// Trace records per-SM execution history, used to verify scheduling
// behaviour (Figure 1) and to render timelines in cmd/paella-trace.
type Trace struct {
	segs []segment
}

// NewTrace returns an empty trace recorder.
func NewTrace() *Trace { return &Trace{} }

func (t *Trace) add(s segment) { t.segs = append(t.segs, s) }

// Len returns the number of recorded segments.
func (t *Trace) Len() int { return len(t.segs) }

// Segment is the exported view of a trace entry.
type Segment struct {
	SM       int
	Kernel   string
	Job      string
	KernelID uint32
	Blocks   int
	Start    sim.Time
	End      sim.Time
}

// Segments returns all recorded segments ordered by (start, SM).
func (t *Trace) Segments() []Segment {
	out := make([]Segment, len(t.segs))
	for i, s := range t.segs {
		out[i] = Segment(s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].SM < out[j].SM
	})
	return out
}

// Makespan returns the end time of the last segment (zero for an empty
// trace).
func (t *Trace) Makespan() sim.Time {
	var end sim.Time
	for _, s := range t.segs {
		if s.End > end {
			end = s.End
		}
	}
	return end
}

// JobSpans returns, per job tag, the [first placement, last completion]
// interval observed on the device.
func (t *Trace) JobSpans() map[string][2]sim.Time {
	spans := make(map[string][2]sim.Time)
	for _, s := range t.segs {
		sp, ok := spans[s.Job]
		if !ok {
			spans[s.Job] = [2]sim.Time{s.Start, s.End}
			continue
		}
		if s.Start < sp[0] {
			sp[0] = s.Start
		}
		if s.End > sp[1] {
			sp[1] = s.End
		}
		spans[s.Job] = sp
	}
	return spans
}

// WriteJSON emits the trace as a JSON array of segments (ns timestamps),
// for external tooling.
func (t *Trace) WriteJSON(w io.Writer) error {
	type jsonSeg struct {
		SM       int    `json:"sm"`
		Kernel   string `json:"kernel"`
		Job      string `json:"job"`
		KernelID uint32 `json:"kernel_id"`
		Blocks   int    `json:"blocks"`
		StartNs  int64  `json:"start_ns"`
		EndNs    int64  `json:"end_ns"`
	}
	segs := t.Segments()
	out := make([]jsonSeg, len(segs))
	for i, s := range segs {
		out[i] = jsonSeg{
			SM: s.SM, Kernel: s.Kernel, Job: s.Job, KernelID: s.KernelID,
			Blocks: s.Blocks, StartNs: int64(s.Start), EndNs: int64(s.End),
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Render draws an ASCII timeline, one row per SM, with one column per
// quantum of the given width. Jobs are labelled by the first rune of their
// tag. It is the textual analogue of Figure 1.
func (t *Trace) Render(numSMs int, quantum sim.Time) string {
	if quantum <= 0 || t.Len() == 0 {
		return ""
	}
	span := t.Makespan()
	cols := int((span + quantum - 1) / quantum)
	rows := make([][]rune, numSMs)
	for i := range rows {
		rows[i] = make([]rune, cols)
		for j := range rows[i] {
			rows[i][j] = '.'
		}
	}
	for _, s := range t.segs {
		if s.SM >= numSMs {
			continue
		}
		label := '#'
		if s.Job != "" {
			label = []rune(s.Job)[0]
		}
		for c := int(s.Start / quantum); c < cols && sim.Time(c)*quantum < s.End; c++ {
			rows[s.SM][c] = label
		}
	}
	var b strings.Builder
	for i, row := range rows {
		fmt.Fprintf(&b, "SM%-2d |%s|\n", i, string(row))
	}
	return b.String()
}
