package autoscale

import (
	"errors"

	"paella/internal/cluster"
	"paella/internal/core"
	"paella/internal/gateway"
	"paella/internal/sim"
)

// Counts is the Front's conservation ledger: every submitted request must
// end in exactly one of the three terminal columns, however much the fleet
// churned underneath it.
type Counts struct {
	// Submitted counts unique request ids accepted by Submit.
	Submitted int
	// Completed, Shed, and Failed partition the terminal outcomes.
	Completed, Shed, Failed int
}

// Conserved reports the invariant completed + shed + failed == submitted.
func (c Counts) Conserved() bool {
	return c.Completed+c.Shed+c.Failed == c.Submitted
}

// Front is the autoscaling driver's submission path: a cluster connection
// wrapped with terminal-outcome accounting, scaler signal feeds, and the
// retry loop for moments when no replica is routable (mid-drain, or the
// whole pool warming). Use it instead of a bare cluster.Conn so
// conservation holds by construction.
type Front struct {
	s    *Scaler
	conn *cluster.Conn
	// submitAt maps outstanding request ids to their submit stamps (for
	// latency observation; entries are removed at the terminal event).
	submitAt map[uint64]sim.Time
	counts   Counts

	// OnComplete and OnFailed forward the connection's terminal events
	// after accounting (optional).
	OnComplete func(id uint64)
	OnFailed   func(id uint64, err error)
}

// NewFront connects the scaler's cluster and wires terminal accounting.
func NewFront(s *Scaler) *Front {
	f := &Front{s: s, conn: s.c.Connect(), submitAt: make(map[uint64]sim.Time)}
	f.conn.OnComplete = func(id uint64) { f.terminal(id, nil) }
	f.conn.OnFailed = func(id uint64, err error) { f.terminal(id, err) }
	return f
}

// Submit routes one request, retrying on the control timeline while the
// pool has no routable replica (the -1 result). A request is counted
// submitted exactly once however many resubmissions it takes; admission
// sheds and routed requests proceed to their usual terminal events.
func (f *Front) Submit(req core.Request) {
	if _, seen := f.submitAt[req.ID]; !seen {
		f.submitAt[req.ID] = f.s.env.Now()
		f.counts.Submitted++
		f.s.ObserveSubmit()
	}
	if f.conn.Submit(req) == -1 {
		if f.s.c.LiveReplicas() == 0 {
			f.terminal(req.ID, cluster.ErrReplicaCrashed)
			return
		}
		f.s.env.DoAfter(f.s.cfg.RetryBackoff, func() { f.Submit(req) })
	}
}

// terminal folds one terminal event into the ledger and the scaler's
// signal feeds, then forwards to the user callback.
func (f *Front) terminal(id uint64, err error) {
	at, ok := f.submitAt[id]
	if !ok {
		return // duplicate terminal (defensive; the Conn already dedups)
	}
	delete(f.submitAt, id)
	latency := f.s.env.Now() - at
	switch {
	case err == nil:
		f.counts.Completed++
		f.s.ObserveTerminal(latency, OutcomeCompleted)
		if f.OnComplete != nil {
			f.OnComplete(id)
		}
		return
	case errors.Is(err, gateway.ErrTenantShed):
		f.counts.Shed++
		f.s.ObserveTerminal(latency, OutcomeShed)
	default:
		f.counts.Failed++
		f.s.ObserveTerminal(latency, OutcomeFailed)
	}
	if f.OnFailed != nil {
		f.OnFailed(id, err)
	}
}

// Counts returns the conservation ledger so far.
func (f *Front) Counts() Counts { return f.counts }

// Outstanding returns how many submitted requests have not yet terminated.
func (f *Front) Outstanding() int { return len(f.submitAt) }

// Conn exposes the underlying cluster connection (tests).
func (f *Front) Conn() *cluster.Conn { return f.conn }
