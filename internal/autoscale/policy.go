package autoscale

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Signals is the policy's read-only view of the fleet at one control tick:
// pool occupancy, queue pressure, smoothed traffic rates, and the SLO burn
// monitor's state. Everything is measured on the virtual clock by the
// Scaler, so identical runs present identical signal sequences.
type Signals struct {
	// Active, Warming, Draining, and Parked count replicas in each pool
	// state (crashed replicas are in no pool).
	Active, Warming, Draining, Parked int
	// Target is the previous tick's clamped target — the "hold" value for
	// policies with nothing to say.
	Target int
	// InFlight is the fleet-wide count of routed-but-unfinished requests.
	InFlight int
	// ArrivalRate is the offered load observed over the last tick, req/s.
	ArrivalRate float64
	// CompletionRate is the fleet's served rate over the last tick, req/s.
	CompletionRate float64
	// ReplicaRate is the estimated sustainable per-replica throughput in
	// req/s (the running maximum of smoothed per-replica completion rates,
	// or the configured hint). Zero until the fleet has served traffic.
	ReplicaRate float64
	// SLOFiring reports whether the scaler's burn-rate monitor is firing
	// (always false when no SLO is configured).
	SLOFiring bool
}

// Provisioned returns the capacity the fleet is paying for or about to
// have: active plus warming replicas (draining replicas are on their way
// out and do not count).
func (s Signals) Provisioned() int { return s.Active + s.Warming }

// Policy decides the desired pool size each control tick. Implementations
// may keep internal state (trends, quiet counters) but must be
// deterministic: the same signal sequence yields the same targets. The
// scaler clamps the returned target to [Min, Max] and owns all mechanics —
// warmup, drain, billing.
type Policy interface {
	// Name identifies the policy in reports and the registry.
	Name() string
	// Target returns the desired number of provisioned replicas.
	Target(sig Signals) int
}

// PolicyConfig is the JSON-codable parameterization of a registered
// policy (`paella-sim -autoscale`, experiment grids, fuzzing). Zero-valued
// knobs take the policy's documented default.
type PolicyConfig struct {
	// Name selects the registered policy.
	Name string `json:"name"`
	// Fixed is the static policy's pool size (0 = hold the initial pool).
	Fixed int `json:"fixed,omitempty"`
	// HiQueue and LoQueue are the queue-depth hysteresis thresholds in
	// requests per active replica: above HiQueue scale up, below LoQueue
	// scale down (defaults 8 and 2).
	HiQueue float64 `json:"hi_queue,omitempty"`
	LoQueue float64 `json:"lo_queue,omitempty"`
	// HoldTicks is how many consecutive quiet (non-firing) ticks the
	// slo-burn policy waits before releasing one replica (default 10).
	HoldTicks int `json:"hold_ticks,omitempty"`
	// Headroom is the predictive policy's over-provisioning multiplier on
	// the forecast demand (default 1.25).
	Headroom float64 `json:"headroom,omitempty"`
	// Lookahead is the predictive policy's forecast horizon in ticks
	// (default 5): it provisions for rate + slope·Lookahead.
	Lookahead int `json:"lookahead,omitempty"`
}

// Validate reports parameter errors (unknown policy, inverted thresholds,
// out-of-range knobs).
func (pc PolicyConfig) Validate() error {
	if _, ok := policies[pc.Name]; !ok {
		return fmt.Errorf("autoscale: unknown policy %q (have %s)", pc.Name, strings.Join(Names(), ", "))
	}
	switch {
	case pc.Fixed < 0 || pc.Fixed > 1<<20:
		return fmt.Errorf("autoscale: fixed pool %d", pc.Fixed)
	case !(pc.HiQueue >= 0 && pc.HiQueue <= 1e6) || !(pc.LoQueue >= 0 && pc.LoQueue <= 1e6):
		// Negated form also rejects NaN.
		return fmt.Errorf("autoscale: queue thresholds %f/%f outside [0, 1e6]", pc.HiQueue, pc.LoQueue)
	case pc.HiQueue > 0 && pc.HiQueue <= pickDefault(pc.LoQueue, 2):
		return fmt.Errorf("autoscale: hi_queue %f must exceed lo_queue %f", pc.HiQueue, pickDefault(pc.LoQueue, 2))
	case pc.LoQueue > 0 && pc.LoQueue >= pickDefault(pc.HiQueue, 8):
		return fmt.Errorf("autoscale: lo_queue %f must undercut hi_queue %f", pc.LoQueue, pickDefault(pc.HiQueue, 8))
	case pc.HoldTicks < 0 || pc.HoldTicks > 1<<20:
		return fmt.Errorf("autoscale: hold_ticks %d", pc.HoldTicks)
	case pc.Headroom < 0 || math.IsNaN(pc.Headroom) || pc.Headroom > 100:
		return fmt.Errorf("autoscale: headroom %f", pc.Headroom)
	case pc.Headroom > 0 && pc.Headroom < 1:
		return fmt.Errorf("autoscale: headroom %f must be at least 1", pc.Headroom)
	case pc.Lookahead < 0 || pc.Lookahead > 1<<20:
		return fmt.Errorf("autoscale: lookahead %d", pc.Lookahead)
	}
	return nil
}

// Marshal encodes the config as canonical JSON: parse(marshal(pc))
// round-trips to an identical document for any valid config.
func (pc PolicyConfig) Marshal() []byte {
	data, err := json.Marshal(pc)
	if err != nil {
		panic(err) // no marshal-hostile fields
	}
	return data
}

// ParsePolicyConfig decodes and validates a PolicyConfig from JSON,
// rejecting unknown fields so a typo'd knob fails loudly.
func ParsePolicyConfig(data []byte) (PolicyConfig, error) {
	var pc PolicyConfig
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&pc); err != nil {
		return PolicyConfig{}, fmt.Errorf("autoscale: policy config: %w", err)
	}
	if dec.More() {
		return PolicyConfig{}, fmt.Errorf("autoscale: policy config: trailing data")
	}
	if err := pc.Validate(); err != nil {
		return PolicyConfig{}, err
	}
	return pc, nil
}

// pickDefault substitutes a default for an unset (zero) knob.
func pickDefault(v, def float64) float64 {
	if v == 0 {
		return def
	}
	return v
}

// clampTarget bounds a computed pool size so threshold extremes can never
// overflow the int conversion (the scaler clamps to [Min, Max] anyway).
func clampTarget(want float64) int {
	if !(want >= 1) { // negated form catches NaN
		return 1
	}
	if want > 1<<20 {
		return 1 << 20
	}
	return int(want)
}

// policies is the registry, mirroring gateway.Policy's Register/New/Names
// shape: constructors take the (validated) config and apply defaults.
var policies = map[string]func(PolicyConfig) Policy{}

// Register adds a policy constructor under a unique name. Call from
// package init; duplicate names panic.
func Register(name string, mk func(PolicyConfig) Policy) {
	if _, dup := policies[name]; dup {
		panic(fmt.Sprintf("autoscale: duplicate policy %q", name))
	}
	policies[name] = mk
}

// New returns a fresh instance of the named policy with default knobs.
func New(name string) (Policy, error) {
	return NewFromConfig(PolicyConfig{Name: name})
}

// NewFromConfig validates the config and builds its policy.
func NewFromConfig(pc PolicyConfig) (Policy, error) {
	if err := pc.Validate(); err != nil {
		return nil, err
	}
	return policies[pc.Name](pc), nil
}

// Names lists the registered policies, sorted.
func Names() []string {
	out := make([]string, 0, len(policies))
	for name := range policies {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register("static", func(pc PolicyConfig) Policy { return &staticPolicy{fixed: pc.Fixed} })
	Register("queue-depth", func(pc PolicyConfig) Policy {
		p := &queueDepthPolicy{hi: pc.HiQueue, lo: pc.LoQueue}
		p.defaults()
		return p
	})
	Register("step", func(pc PolicyConfig) Policy {
		p := &stepPolicy{queueDepthPolicy{hi: pc.HiQueue, lo: pc.LoQueue}}
		p.defaults()
		return p
	})
	Register("slo-burn", func(pc PolicyConfig) Policy {
		hold := pc.HoldTicks
		if hold == 0 {
			hold = 10
		}
		return &sloBurnPolicy{hold: hold}
	})
	Register("predictive", func(pc PolicyConfig) Policy {
		p := &predictivePolicy{headroom: pc.Headroom, lookahead: pc.Lookahead}
		if p.headroom == 0 {
			p.headroom = 1.25
		}
		if p.lookahead == 0 {
			p.lookahead = 5
		}
		return p
	})
}

// staticPolicy pins the pool at a fixed size — the provisioning baseline
// the adaptive policies are judged against (static-min vs static-peak in
// the frontier experiment).
type staticPolicy struct{ fixed int }

func (p *staticPolicy) Name() string { return "static" }

// Target returns the fixed size, or holds the current target when none was
// configured.
func (p *staticPolicy) Target(sig Signals) int {
	if p.fixed > 0 {
		return p.fixed
	}
	return sig.Target
}

// queueDepthPolicy scales on outstanding requests per active replica with
// hysteresis: above hi it jumps the pool to what would bring the queue to
// the hi/lo midpoint, below lo it shrinks likewise. The classic
// reactive threshold autoscaler.
type queueDepthPolicy struct{ hi, lo float64 }

func (p *queueDepthPolicy) defaults() {
	if p.hi == 0 {
		p.hi = 8
	}
	if p.lo == 0 {
		p.lo = 2
	}
}

func (p *queueDepthPolicy) Name() string { return "queue-depth" }

// Target jumps directly to the size that restores the midpoint queue.
func (p *queueDepthPolicy) Target(sig Signals) int {
	prov := sig.Provisioned()
	if prov == 0 {
		return 1
	}
	perRep := float64(sig.InFlight) / float64(prov)
	if perRep <= p.hi && perRep >= p.lo {
		return sig.Target
	}
	mid := (p.hi + p.lo) / 2
	return clampTarget(math.Ceil(float64(sig.InFlight) / mid))
}

// stepPolicy is queue-depth's conservative cousin: the same hysteresis
// band, but it only ever moves the pool by one replica per tick.
type stepPolicy struct{ queueDepthPolicy }

func (p *stepPolicy) Name() string { return "step" }

// Target nudges the pool by at most ±1.
func (p *stepPolicy) Target(sig Signals) int {
	prov := sig.Provisioned()
	if prov == 0 {
		return 1
	}
	perRep := float64(sig.InFlight) / float64(prov)
	switch {
	case perRep > p.hi:
		return prov + 1
	case perRep < p.lo:
		return prov - 1
	default:
		return sig.Target
	}
}

// sloBurnPolicy scales on the telemetry burn-rate monitor: while the SLO
// is burning error budget too fast it grows the pool aggressively (half
// again per tick), and only after `hold` consecutive quiet ticks does it
// release one replica — asymmetric because missing the SLO costs more
// than a briefly oversized fleet.
type sloBurnPolicy struct {
	hold  int
	quiet int
}

func (p *sloBurnPolicy) Name() string { return "slo-burn" }

// Target grows by max(1, provisioned/2) while firing, shrinks by one after
// a sustained quiet period.
func (p *sloBurnPolicy) Target(sig Signals) int {
	prov := sig.Provisioned()
	if sig.SLOFiring {
		p.quiet = 0
		grow := prov / 2
		if grow < 1 {
			grow = 1
		}
		return prov + grow
	}
	p.quiet++
	if p.quiet >= p.hold {
		p.quiet = 0
		return prov - 1
	}
	return sig.Target
}

// predictivePolicy forecasts demand with a double-smoothed trend: an EWMA
// of the arrival rate plus its slope projected `lookahead` ticks out,
// divided by the estimated per-replica capacity with a headroom margin.
// On a diurnal curve the slope term buys capacity before the morning ramp
// arrives instead of after queues have built.
type predictivePolicy struct {
	headroom  float64
	lookahead int

	ewma    float64
	started bool
}

func (p *predictivePolicy) Name() string { return "predictive" }

// Target provisions ceil((ewma + slope·lookahead) · headroom / replicaRate).
func (p *predictivePolicy) Target(sig Signals) int {
	const alpha = 0.3
	prev := p.ewma
	if !p.started {
		p.ewma = sig.ArrivalRate
		p.started = true
	} else {
		p.ewma = alpha*sig.ArrivalRate + (1-alpha)*p.ewma
	}
	if sig.ReplicaRate <= 0 {
		return sig.Target // no capacity estimate yet: hold
	}
	slope := p.ewma - prev
	pred := p.ewma + slope*float64(p.lookahead)
	if pred < 0 {
		pred = 0
	}
	return clampTarget(math.Ceil(pred * p.headroom / sig.ReplicaRate))
}
