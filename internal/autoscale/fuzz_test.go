package autoscale

import (
	"bytes"
	"testing"
)

// FuzzAutoscalePolicyConfig fuzzes the policy-config codec:
// ParsePolicyConfig must never panic, any config it accepts must build a
// working policy, and marshal→parse→marshal must be a fixed point — the
// property `paella-sim -autoscale` and the frontier experiment rely on to
// reproduce a recorded policy parameterization exactly. Built policies
// also run a short synthetic signal sweep: targets must be finite and the
// policy must never panic on extreme signals.
func FuzzAutoscalePolicyConfig(f *testing.F) {
	f.Add([]byte(`{"name":"static","fixed":6}`))
	f.Add([]byte(`{"name":"queue-depth","hi_queue":12,"lo_queue":3}`))
	f.Add([]byte(`{"name":"step"}`))
	f.Add([]byte(`{"name":"slo-burn","hold_ticks":20}`))
	f.Add([]byte(`{"name":"predictive","headroom":1.5,"lookahead":8}`))
	f.Add([]byte(`{"name":"oracle"}`))                                // invalid: unknown policy
	f.Add([]byte(`{"name":"queue-depth","hi_queue":2,"lo_queue":5}`)) // invalid: inverted
	f.Fuzz(func(t *testing.T, data []byte) {
		pc, err := ParsePolicyConfig(data)
		if err != nil {
			return // rejected input: the only requirement is "no panic"
		}
		if err := pc.Validate(); err != nil {
			t.Fatalf("accepted config fails Validate: %v", err)
		}
		enc := pc.Marshal()
		pc2, err := ParsePolicyConfig(enc)
		if err != nil {
			t.Fatalf("marshal of a valid config does not re-parse: %v\n%s", err, enc)
		}
		if enc2 := pc2.Marshal(); !bytes.Equal(enc, enc2) {
			t.Fatalf("round trip not stable:\n%s\nvs\n%s", enc, enc2)
		}
		p, err := NewFromConfig(pc)
		if err != nil {
			t.Fatalf("valid config does not build: %v", err)
		}
		if p.Name() == "" {
			t.Fatal("unnamed policy")
		}
		// Sweep synthetic signals: extreme queues, zero fleets, firing SLOs.
		for _, sig := range []Signals{
			{},
			{Active: 1, Target: 1, InFlight: 1 << 20, ArrivalRate: 1e6, ReplicaRate: 1},
			{Active: 64, Warming: 8, Draining: 8, Target: 64, SLOFiring: true, ReplicaRate: 500, ArrivalRate: 3},
			{Active: 2, Target: 2, ArrivalRate: 0, CompletionRate: 0, ReplicaRate: 1000},
		} {
			got := p.Target(sig)
			if got < -(1<<30) || got > 1<<30 {
				t.Fatalf("policy %s target %d unreasonable for %+v", p.Name(), got, sig)
			}
		}
	})
}
