package autoscale_test

import (
	"math"
	"reflect"
	"testing"

	"paella/internal/autoscale"
	"paella/internal/cluster"
	"paella/internal/compiler"
	"paella/internal/core"
	"paella/internal/gpu"
	"paella/internal/sched"
	"paella/internal/sim"
	"paella/internal/telemetry"
	"paella/internal/vram"
)

// scriptPolicy replays a fixed target sequence, then holds the last value
// — the unit tests' way of steering the scaler deterministically.
type scriptPolicy struct {
	targets []int
	i       int
}

func (p *scriptPolicy) Name() string { return "script" }

func (p *scriptPolicy) Target(autoscale.Signals) int {
	if p.i < len(p.targets) {
		v := p.targets[p.i]
		p.i++
		return v
	}
	return p.targets[len(p.targets)-1]
}

// newUnitCluster builds a 2×T4 single-timeline cluster with VRAM budgets
// and one 8 MiB model, the fixture for the mechanics tests.
func newUnitCluster(t *testing.T, env *sim.Env) *cluster.Cluster {
	t.Helper()
	devs := []gpu.Config{gpu.TeslaT4(), gpu.TeslaT4()}
	c, err := cluster.NewWithConfig(env, devs, func(int, gpu.Config) core.Config {
		cfg := core.DefaultConfig(sched.NewPaella(10000))
		cfg.VRAM = &vram.Config{CapacityBytes: 32 << 20}
		return cfg
	}, cluster.NewLeastLoaded())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterModel(autoscaleModel("autonet-a", 400, 8), compiler.DefaultConfig(), 1); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestScalerColdStartThenDrain walks one replica through the full
// lifecycle: parked → warming (paying a real PCIe transfer) → active →
// draining → parked again with weights evicted and billing closed.
func TestScalerColdStartThenDrain(t *testing.T) {
	env := sim.NewEnv()
	c := newUnitCluster(t, env)
	pol := &scriptPolicy{targets: []int{2, 2, 1, 1, 1}}
	s, err := autoscale.NewScaler(env, c, autoscale.Config{
		Min: 1, Max: 2, Initial: 1,
		Interval:       sim.Millisecond,
		Policy:         pol,
		DollarsPerHour: []float64{1.0, 1.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.State(0); got != autoscale.ReplicaActive {
		t.Fatalf("initial replica state %s", got)
	}
	if got := s.State(1); got != autoscale.ReplicaParked {
		t.Fatalf("spare replica state %s", got)
	}
	if c.Routable(1) {
		t.Fatal("parked replica still routable")
	}

	s.Start()
	// Just after the first tick the spare must be warming, not routable.
	env.RunUntil(sim.Millisecond + 10*sim.Microsecond)
	if got := s.State(1); got != autoscale.ReplicaWarming {
		t.Fatalf("state after scale-up tick: %s", got)
	}
	if c.Routable(1) {
		t.Fatal("warming replica routable before its weights landed")
	}

	// 8 MiB over the PCIe link lands well before the next tick.
	env.RunUntil(2*sim.Millisecond - 10*sim.Microsecond)
	if got := s.State(1); got != autoscale.ReplicaActive {
		t.Fatalf("state after warmup: %s", got)
	}
	if !c.Routable(1) {
		t.Fatal("warmed replica not routable")
	}
	if !c.Dispatcher(1).ModelResident("autonet-a") {
		t.Fatal("warmup did not page the weights in")
	}
	st := s.ScaleStats()
	if st.ScaleUps != 1 || st.ColdStarts != 1 {
		t.Fatalf("cold-start stats: %+v", st)
	}
	if st.ColdStartBytes != 8<<20 {
		t.Fatalf("cold start paged %d bytes, want %d", st.ColdStartBytes, 8<<20)
	}
	if st.ColdStartNs <= 0 {
		t.Fatalf("cold start took %v", st.ColdStartNs)
	}

	// Tick 3 drops the target to 1: replica 1 (highest index) drains, and
	// with no in-flight work the following tick parks and evicts it.
	env.RunUntil(3*sim.Millisecond + 10*sim.Microsecond)
	if got := s.State(1); got != autoscale.ReplicaDraining {
		t.Fatalf("state after scale-down tick: %s", got)
	}
	if c.Routable(1) {
		t.Fatal("draining replica still routable")
	}
	env.RunUntil(4*sim.Millisecond + 10*sim.Microsecond)
	if got := s.State(1); got != autoscale.ReplicaParked {
		t.Fatalf("state after drain completion: %s", got)
	}
	if c.Dispatcher(1).VRAM().Resident("autonet-a") {
		t.Fatal("parked replica still holds weights")
	}
	st = s.ScaleStats()
	if st.ScaleDowns != 1 || st.Parks != 1 {
		t.Fatalf("drain stats: %+v", st)
	}

	// Billing: replica 0 runs the whole time; replica 1 only its
	// warming→draining window. Total is strictly between 1× and 2× the
	// elapsed virtual time.
	env.RunUntil(10 * sim.Millisecond)
	now := env.Now()
	sec := s.ReplicaSeconds(now)
	if sec <= now.Seconds() || sec >= 2*now.Seconds() {
		t.Fatalf("billed %.6fs over %.6fs elapsed", sec, now.Seconds())
	}
	if cost := s.Cost(now); cost <= 0 {
		t.Fatalf("cost %.9f with non-zero prices", cost)
	}
	if ma := s.MeanActive(now); ma <= 1 || ma >= 2 {
		t.Fatalf("mean active %.3f outside (1, 2)", ma)
	}
}

// TestScalerReactivatesDrainingReplica: scale-up while a drain is pending
// must rescue the still-warm replica instead of paying a new cold start.
func TestScalerReactivatesDrainingReplica(t *testing.T) {
	env := sim.NewEnv()
	c := newUnitCluster(t, env)
	// A ~3ms inference keeps the drain in flight across two control ticks.
	if err := c.RegisterModel(autoscaleModel("autonet-slow", 3000, 4), compiler.DefaultConfig(), 1); err != nil {
		t.Fatal(err)
	}
	// Up to 2, down to 1, straight back to 2: the third move lands while
	// replica 1 is draining (a request keeps it busy across the tick).
	pol := &scriptPolicy{targets: []int{2, 2, 1, 2, 2}}
	s, err := autoscale.NewScaler(env, c, autoscale.Config{
		Min: 1, Max: 2, Initial: 1,
		Interval: sim.Millisecond,
		Policy:   pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	front := autoscale.NewFront(s)
	s.Start()
	// Park a long-ish request on replica 1 right after it warms so the
	// drain cannot complete before the reactivation tick.
	env.At(2*sim.Millisecond+200*sim.Microsecond, func() {
		c.SetRoutable(0, false) // steer the request onto replica 1
		front.Submit(core.Request{ID: 1, Model: "autonet-slow", Submit: env.Now()})
		c.SetRoutable(0, true)
	})
	env.RunUntil(4*sim.Millisecond + 10*sim.Microsecond)
	if got := s.State(1); got != autoscale.ReplicaActive {
		t.Fatalf("state after reactivation tick: %s", got)
	}
	st := s.ScaleStats()
	if st.Reactivations != 1 {
		t.Fatalf("reactivation stats: %+v", st)
	}
	if st.ColdStarts != 1 {
		t.Fatalf("reactivation must not pay a second cold start: %+v", st)
	}
	env.RunUntil(20 * sim.Millisecond)
	if !front.Counts().Conserved() || front.Counts().Completed != 1 {
		t.Fatalf("request lost across the drain/reactivate cycle: %+v", front.Counts())
	}
}

// TestFrontRetriesWhileUnroutable: with every replica drained out of
// routing, Submit must park the request on the retry loop and deliver it
// once capacity returns — one submission, one completion.
func TestFrontRetriesWhileUnroutable(t *testing.T) {
	env := sim.NewEnv()
	c := newUnitCluster(t, env)
	s, err := autoscale.NewScaler(env, c, autoscale.Config{
		Min: 1, Max: 2,
		Interval:     sim.Millisecond,
		Policy:       &scriptPolicy{targets: []int{1}},
		RetryBackoff: 50 * sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	front := autoscale.NewFront(s)
	env.At(100*sim.Microsecond, func() {
		c.SetRoutable(0, false) // nothing routable now
		front.Submit(core.Request{ID: 7, Model: "autonet-a", Submit: env.Now()})
	})
	env.At(sim.Millisecond, func() { c.SetRoutable(0, true) })
	env.RunUntil(20 * sim.Millisecond)
	counts := front.Counts()
	if counts.Submitted != 1 || counts.Completed != 1 {
		t.Fatalf("retry loop lost the request: %+v", counts)
	}
	if front.Outstanding() != 0 {
		t.Fatal("request never left the outstanding map")
	}
}

// TestScalerAttainment checks the SLO attainment statistic fed through
// ObserveTerminal: completions within the deadline attain, everything
// else burns budget.
func TestScalerAttainment(t *testing.T) {
	env := sim.NewEnv()
	c := newUnitCluster(t, env)
	s, err := autoscale.NewScaler(env, c, autoscale.Config{
		Min: 1, Max: 2,
		Policy: &scriptPolicy{targets: []int{1}},
		SLO: telemetry.SLOConfig{
			Name: "jct@5ms", Deadline: 5 * sim.Millisecond, Target: 0.9,
			Short: sim.Millisecond, Long: 10 * sim.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Attainment(); got != 1 {
		t.Fatalf("attainment before traffic: %f", got)
	}
	s.ObserveTerminal(2*sim.Millisecond, autoscale.OutcomeCompleted)  // good
	s.ObserveTerminal(20*sim.Millisecond, autoscale.OutcomeCompleted) // late
	s.ObserveTerminal(sim.Millisecond, autoscale.OutcomeShed)         // burns
	s.ObserveTerminal(sim.Millisecond, autoscale.OutcomeFailed)       // burns
	if got := s.Attainment(); got != 0.25 {
		t.Fatalf("attainment %f, want 0.25", got)
	}
}

// TestScalerConfigValidation walks the constructor's rejection table.
func TestScalerConfigValidation(t *testing.T) {
	env := sim.NewEnv()
	c := newUnitCluster(t, env)
	pol := &scriptPolicy{targets: []int{1}}
	bad := []autoscale.Config{
		{Min: 1, Max: 2},                                            // nil policy
		{Min: 0, Max: 2, Policy: pol},                               // min < 1
		{Min: 1, Max: 5, Policy: pol},                               // max > cluster size
		{Min: 2, Max: 1, Policy: pol},                               // min > max
		{Min: 1, Max: 2, Initial: 4, Policy: pol},                   // initial > max
		{Min: 1, Max: 2, Policy: pol, DollarsPerHour: []float64{1}}, // wrong price count
	}
	for i, cfg := range bad {
		if _, err := autoscale.NewScaler(env, c, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := autoscale.NewScaler(env, c, autoscale.Config{Min: 1, Max: 2, Policy: pol}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

// TestPolicyRegistry checks the registry surface: the five shipped
// policies under their sorted names, and rejection of unknown ones.
func TestPolicyRegistry(t *testing.T) {
	want := []string{"predictive", "queue-depth", "slo-burn", "static", "step"}
	if got := autoscale.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("registry names %v, want %v", got, want)
	}
	for _, name := range want {
		p, err := autoscale.New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("policy %q reports name %q", name, p.Name())
		}
	}
	if _, err := autoscale.New("oracle"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestQueueDepthPolicy checks the hysteresis band: hold inside, jump to
// the midpoint-restoring size outside.
func TestQueueDepthPolicy(t *testing.T) {
	p, err := autoscale.New("queue-depth")
	if err != nil {
		t.Fatal(err)
	}
	hold := autoscale.Signals{Active: 2, Target: 2, InFlight: 10} // 5/replica in [2, 8]
	if got := p.Target(hold); got != 2 {
		t.Fatalf("in-band target %d, want hold 2", got)
	}
	// 40 in flight on 2 replicas: 20/replica > 8 → ceil(40/5) = 8.
	spike := autoscale.Signals{Active: 2, Target: 2, InFlight: 40}
	if got := p.Target(spike); got != 8 {
		t.Fatalf("overload target %d, want 8", got)
	}
	// 1 in flight on 4 replicas: 0.25 < 2 → ceil(1/5) = 1.
	idle := autoscale.Signals{Active: 4, Target: 4, InFlight: 1}
	if got := p.Target(idle); got != 1 {
		t.Fatalf("idle target %d, want 1", got)
	}
}

// TestStepPolicy checks the ±1 variant never moves more than one replica.
func TestStepPolicy(t *testing.T) {
	p, err := autoscale.New("step")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Target(autoscale.Signals{Active: 2, Target: 2, InFlight: 40}); got != 3 {
		t.Fatalf("step up target %d, want 3", got)
	}
	if got := p.Target(autoscale.Signals{Active: 4, Target: 4, InFlight: 1}); got != 3 {
		t.Fatalf("step down target %d, want 3", got)
	}
	if got := p.Target(autoscale.Signals{Active: 2, Target: 2, InFlight: 10}); got != 2 {
		t.Fatalf("in-band target %d, want hold 2", got)
	}
}

// TestSLOBurnPolicy checks the asymmetric shape: grow half-again while
// firing, release one only after a sustained quiet run.
func TestSLOBurnPolicy(t *testing.T) {
	p, err := autoscale.NewFromConfig(autoscale.PolicyConfig{Name: "slo-burn", HoldTicks: 3})
	if err != nil {
		t.Fatal(err)
	}
	firing := autoscale.Signals{Active: 4, Target: 4, SLOFiring: true}
	if got := p.Target(firing); got != 6 {
		t.Fatalf("firing target %d, want 6", got)
	}
	quiet := autoscale.Signals{Active: 4, Target: 4}
	if got := p.Target(quiet); got != 4 {
		t.Fatalf("quiet tick 1 target %d, want hold 4", got)
	}
	if got := p.Target(quiet); got != 4 {
		t.Fatalf("quiet tick 2 target %d, want hold 4", got)
	}
	if got := p.Target(quiet); got != 3 {
		t.Fatalf("quiet tick 3 target %d, want release to 3", got)
	}
	// A fresh burn resets the quiet counter.
	if got := p.Target(firing); got != 6 {
		t.Fatalf("re-fire target %d, want 6", got)
	}
	if got := p.Target(quiet); got != 4 {
		t.Fatalf("post-fire quiet target %d, want hold", got)
	}
}

// TestPredictivePolicy checks the trend-following forecast: a rising
// arrival ramp must provision ahead of the instantaneous demand.
func TestPredictivePolicy(t *testing.T) {
	p, err := autoscale.New("predictive")
	if err != nil {
		t.Fatal(err)
	}
	// No capacity estimate yet: hold.
	if got := p.Target(autoscale.Signals{Target: 2, ArrivalRate: 1000}); got != 2 {
		t.Fatalf("no-estimate target %d, want hold 2", got)
	}
	// Steady 1000 req/s at 600 req/s/replica with 1.25 headroom → ~3.
	var got int
	for i := 0; i < 10; i++ {
		got = p.Target(autoscale.Signals{Target: 2, ArrivalRate: 1000, ReplicaRate: 600})
	}
	if got != 3 {
		t.Fatalf("steady target %d, want 3", got)
	}
	// A ramp must forecast above the steady answer for the same rate.
	ramp, err := autoscale.New("predictive")
	if err != nil {
		t.Fatal(err)
	}
	rate := 200.0
	for i := 0; i < 10; i++ {
		got = ramp.Target(autoscale.Signals{Target: 2, ArrivalRate: rate, ReplicaRate: 600})
		rate += 300
	}
	steady := (rate - 300 + 600 - 1) / 600 // ceil(instantaneous/rate) without headroom
	if got <= int(steady) {
		t.Fatalf("ramp target %d not ahead of instantaneous need %d", got, int(steady))
	}
}

// TestOptimizeMix checks the greedy fleet-mix optimizer: efficiency
// ordering, per-offer caps, and the error cases.
func TestOptimizeMix(t *testing.T) {
	offers := []autoscale.Offer{
		{Name: "t4", Dev: gpu.TeslaT4(), DollarsPerHour: 0.53, RatePerSec: 2000},
		{Name: "p100", Dev: gpu.TeslaP100(), DollarsPerHour: 1.46, RatePerSec: 3000},
		{Name: "gtx1660", Dev: gpu.GTX1660Super(), DollarsPerHour: 0.25, RatePerSec: 900},
	}
	// Efficiency $/req/s: t4 2.65e-4 < gtx 2.78e-4 < p100 4.87e-4.
	mix, err := autoscale.OptimizeMix(offers, 10000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mix.Counts, []int{5, 0, 0}) {
		t.Fatalf("mix %v, want all-T4", mix.Counts)
	}
	if mix.RatePerSec < 10000 || math.Abs(mix.CostPerHour-5*0.53) > 1e-9 {
		t.Fatalf("mix capacity %.0f cost %.2f", mix.RatePerSec, mix.CostPerHour)
	}

	// Cap the efficient type: the spill goes to the next-best offer.
	offers[0].Max = 2
	mix, err = autoscale.OptimizeMix(offers, 10000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mix.Counts[0] != 2 || mix.Counts[2] == 0 {
		t.Fatalf("capped mix %v, want T4 capped at 2 with GTX spill", mix.Counts)
	}
	if mix.RatePerSec < 10000 {
		t.Fatalf("capped mix undershoots: %.0f", mix.RatePerSec)
	}

	// Devices expansion matches the counts, in offer order.
	devs, prices, names := mix.Devices(offers)
	if len(devs) != mix.Replicas() || len(prices) != len(devs) || len(names) != len(devs) {
		t.Fatalf("expansion lengths %d/%d/%d for %d replicas", len(devs), len(prices), len(names), mix.Replicas())
	}
	if names[0] != "t4" || prices[0] != 0.53 {
		t.Fatalf("expansion order wrong: %v %v", names, prices)
	}

	// Error cases: no offers, bad demand, unsatisfiable caps.
	if _, err := autoscale.OptimizeMix(nil, 1000, 1); err == nil {
		t.Error("no offers accepted")
	}
	if _, err := autoscale.OptimizeMix(offers, 0, 1); err == nil {
		t.Error("zero demand accepted")
	}
	for i := range offers {
		offers[i].Max = 1
	}
	if _, err := autoscale.OptimizeMix(offers, 100000, 1); err == nil {
		t.Error("unsatisfiable demand accepted")
	}
}
