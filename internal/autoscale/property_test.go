package autoscale_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"paella/internal/autoscale"
	"paella/internal/cluster"
	"paella/internal/compiler"
	"paella/internal/core"
	"paella/internal/gateway"
	"paella/internal/gpu"
	"paella/internal/model"
	"paella/internal/sched"
	"paella/internal/sim"
	"paella/internal/vram"
	"paella/internal/workload"
)

// guardBalancer wraps a balancer and records any pick that lands on a
// replica the autoscaler does not consider active — the property "no job
// is ever routed to a draining or retired replica", checked by stable
// physical ID at pick time (picks are synchronous on the control
// timeline, so the scaler's state is exact when Pick runs).
type guardBalancer struct {
	inner      cluster.Balancer
	state      func(id int) autoscale.ReplicaState
	violations []string
}

func (g *guardBalancer) Name() string { return g.inner.Name() }

func (g *guardBalancer) Pick(req gateway.Request, replicas []gateway.Replica) int {
	idx := g.inner.Pick(req, replicas)
	if g.state != nil && idx >= 0 && idx < len(replicas) {
		id := replicas[idx].ID
		if st := g.state(id); st != autoscale.ReplicaActive {
			g.violations = append(g.violations,
				fmt.Sprintf("replica %d picked while %s", id, st))
		}
	}
	return idx
}

// TestAutoscaleConservationUnderChurn is the churn property, driven by
// testing/quick over random (seed, policy, shape) triples: for every
// autoscaled run, completed + shed + failed must equal submitted, nothing
// may remain outstanding after the drain window, no in-flight work may
// survive on any replica, and no request may ever be routed to a replica
// that is draining, parked, or warming.
func TestAutoscaleConservationUnderChurn(t *testing.T) {
	policies := autoscale.Names()
	shapes := []func(seed int64) workload.TrafficSpec{diurnalCell, spikeCell}

	prop := func(seed int64, polPick, shapePick uint8) bool {
		if seed < 0 {
			seed = -seed
		}
		seed = seed%1000 + 1
		policy := policies[int(polPick)%len(policies)]
		spec := shapes[int(shapePick)%len(shapes)](seed)
		// Shrink the trace: the property needs churn, not scale.
		spec.Duration /= 2
		spec.Period /= 2
		spec.SpikeAt /= 2
		spec.SpikeDuration /= 2

		w := sim.NewWorld()
		w.SetParallel(true)
		defer w.Close()
		guard := &guardBalancer{inner: cluster.NewLeastLoaded()}
		devs := []gpu.Config{gpu.TeslaT4(), gpu.TeslaT4(), gpu.TeslaT4()}
		c, err := cluster.NewWorldWithConfig(w, devs, func(int, gpu.Config) core.Config {
			cfg := core.DefaultConfig(sched.NewPaella(10000))
			cfg.VRAM = &vram.Config{CapacityBytes: 32 << 20}
			return cfg
		}, guard, func(int, *sim.Env) {})
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []*model.Model{
			autoscaleModel("autonet-a", 400, 8),
			autoscaleModel("autonet-b", 300, 6),
		} {
			if err := c.RegisterModel(m, compiler.DefaultConfig(), 1); err != nil {
				t.Fatal(err)
			}
		}
		pol, err := autoscale.New(policy)
		if err != nil {
			t.Fatal(err)
		}
		s, err := autoscale.NewScaler(w.Ctrl(), c, autoscale.Config{
			Min: 1, Max: 3, Initial: 2,
			Interval: 5 * sim.Millisecond,
			Policy:   pol,
		})
		if err != nil {
			t.Fatal(err)
		}
		guard.state = s.State
		front := autoscale.NewFront(s)

		reqs := workload.MustGenerateTraffic(spec)
		last := sim.Time(0)
		for i, r := range reqs {
			id := uint64(i + 1)
			req := core.Request{ID: id, Model: r.Model, Client: r.Client, Submit: r.At}
			last = r.At
			w.Ctrl().At(r.At, func() { front.Submit(req) })
		}
		s.Start()
		w.RunUntil(last + 2*sim.Second)

		counts := front.Counts()
		if counts.Submitted != len(reqs) {
			t.Logf("%s/%d: submitted %d of %d", policy, seed, counts.Submitted, len(reqs))
			return false
		}
		if !counts.Conserved() {
			t.Logf("%s/%d: leaked: %+v", policy, seed, counts)
			return false
		}
		if front.Outstanding() != 0 {
			t.Logf("%s/%d: %d outstanding after drain", policy, seed, front.Outstanding())
			return false
		}
		for i := 0; i < c.Size(); i++ {
			if c.InFlight(i) != 0 {
				t.Logf("%s/%d: replica %d still has in-flight work", policy, seed, i)
				return false
			}
		}
		if len(guard.violations) != 0 {
			t.Logf("%s/%d: %d routing violations, first: %s",
				policy, seed, len(guard.violations), guard.violations[0])
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
