package autoscale_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"testing"

	"paella/internal/autoscale"
	"paella/internal/cluster"
	"paella/internal/compiler"
	"paella/internal/core"
	"paella/internal/gpu"
	"paella/internal/model"
	"paella/internal/sched"
	"paella/internal/sim"
	"paella/internal/telemetry"
	"paella/internal/trace"
	"paella/internal/vram"
	"paella/internal/workload"
)

// autoscaleModel synthesizes a small weighted model so cold starts page
// real bytes: exec times are hundreds of microseconds (a busy replica
// queues visibly at the cell's rates) and weights are megabytes (a warmup
// costs a visible PCIe transfer).
func autoscaleModel(name string, execUs, weightMiB int) *model.Model {
	return model.Generate(model.ZooEntry{
		Name:        name,
		ExecTime:    sim.Time(execUs) * sim.Microsecond,
		Executions:  6,
		Unique:      3,
		InputBytes:  4096,
		OutputBytes: 4096,
		WeightBytes: weightMiB << 20,
	})
}

// diurnalCell compresses a day into 100ms: trough at the trace's start and
// end, peak in the middle, so every run exercises scale-down (over-
// provisioned trough) and scale-up (under-provisioned ramp).
func diurnalCell(seed int64) workload.TrafficSpec {
	return workload.TrafficSpec{
		Shape:          workload.ShapeDiurnal,
		Mix:            workload.Uniform("autonet-a", "autonet-b"),
		Sigma:          1.0,
		BaseRatePerSec: 9000,
		Amplitude:      0.8,
		Period:         100 * sim.Millisecond,
		Duration:       200 * sim.Millisecond,
		Clients:        100_000,
		Seed:           seed,
	}
}

// spikeCell is the flash crowd: steady base load, then 6× for 40ms.
func spikeCell(seed int64) workload.TrafficSpec {
	return workload.TrafficSpec{
		Shape:          workload.ShapeSpike,
		Mix:            workload.Uniform("autonet-a", "autonet-b"),
		Sigma:          1.0,
		BaseRatePerSec: 2500,
		SpikeFactor:    8,
		SpikeAt:        60 * sim.Millisecond,
		SpikeDuration:  40 * sim.Millisecond,
		Duration:       180 * sim.Millisecond,
		Clients:        50_000,
		Seed:           seed,
	}
}

// autoscaleResult captures everything observable about one autoscaled run:
// per-request metrics, failure and scaling-event logs, the conservation
// ledger, cost/attainment summary, telemetry export, and (traced cells)
// merged trace bytes.
type autoscaleResult struct {
	metricsJSON   string
	failures      string
	events        string
	summary       string
	telemetryJSON string
	traceBytes    string
	counts        autoscale.Counts
	stats         autoscale.Stats
	outstanding   int
}

// runAutoscaleCell executes one cell of the autoscale identity matrix on
// the World engine: a 4×T4 fleet with per-replica VRAM budgets (so warmup
// pages weights over PCIe), a Scaler driving the named policy, and an
// open-loop trace from the traffic generators.
func runAutoscaleCell(t *testing.T, policyName string, spec workload.TrafficSpec, parallel, speculate, traced bool) autoscaleResult {
	t.Helper()
	w := sim.NewWorld()
	w.SetParallel(parallel)
	w.SetSpeculative(speculate)
	defer w.Close()

	var ctrlRec *trace.Recorder
	shardRecs := make([]*trace.Recorder, 4)
	if traced {
		ctrlRec = trace.New()
		w.Ctrl().SetRecorder(ctrlRec)
	}
	// The control timeline carries the autoscaler's own instruments
	// (active_replicas, scale_ups, cold_start_ns, ...) so they join the
	// bit-identity comparison.
	ctrlMt := telemetry.NewMeter("front", 0)
	w.Ctrl().SetMeter(ctrlMt)
	shardMts := []*telemetry.Meter{ctrlMt}

	devs := []gpu.Config{gpu.TeslaT4(), gpu.TeslaT4(), gpu.TeslaT4(), gpu.TeslaT4()}
	c, err := cluster.NewWorldWithConfig(w, devs, func(int, gpu.Config) core.Config {
		cfg := core.DefaultConfig(sched.NewPaella(10000))
		cfg.VRAM = &vram.Config{CapacityBytes: 32 << 20}
		return cfg
	}, cluster.NewLeastLoaded(), func(i int, shard *sim.Env) {
		if traced {
			shardRecs[i] = trace.New()
			shard.SetRecorder(shardRecs[i])
		}
		mt := telemetry.NewMeter(fmt.Sprintf("replica%d", i), 0)
		shard.SetMeter(mt)
		shardMts = append(shardMts, mt)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []*model.Model{
		autoscaleModel("autonet-a", 400, 8),
		autoscaleModel("autonet-b", 300, 6),
	} {
		if err := c.RegisterModel(m, compiler.DefaultConfig(), 1); err != nil {
			t.Fatal(err)
		}
	}

	pol, err := autoscale.New(policyName)
	if err != nil {
		t.Fatal(err)
	}
	s, err := autoscale.NewScaler(w.Ctrl(), c, autoscale.Config{
		Min: 1, Max: 4, Initial: 3,
		Interval: 5 * sim.Millisecond,
		Policy:   pol,
		SLO: telemetry.SLOConfig{
			Name: "jct@5ms", Deadline: 5 * sim.Millisecond, Target: 0.9,
			Short: sim.Millisecond, Long: 10 * sim.Millisecond,
		},
		DollarsPerHour: []float64{0.53, 0.53, 0.53, 0.53},
	})
	if err != nil {
		t.Fatal(err)
	}
	front := autoscale.NewFront(s)
	fails := map[uint64]string{}
	front.OnFailed = func(id uint64, err error) { fails[id] = err.Error() }

	reqs, err := workload.GenerateTraffic(spec)
	if err != nil {
		t.Fatal(err)
	}
	last := sim.Time(0)
	for i, r := range reqs {
		id := uint64(i + 1)
		req := core.Request{ID: id, Model: r.Model, Client: r.Client, Tenant: r.Tenant, Submit: r.At}
		last = r.At
		w.Ctrl().At(r.At, func() { front.Submit(req) })
	}
	s.Start()
	w.RunUntil(last + 2*sim.Second)

	res := autoscaleResult{counts: front.Counts(), stats: s.ScaleStats(), outstanding: front.Outstanding()}
	recs := c.Collector().Records()
	sort.Slice(recs, func(a, b int) bool { return recs[a].ID < recs[b].ID })
	mj, err := json.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	res.metricsJSON = string(mj)
	var fids []uint64
	for id := range fails {
		fids = append(fids, id)
	}
	sort.Slice(fids, func(a, b int) bool { return fids[a] < fids[b] })
	for _, id := range fids {
		res.failures += fmt.Sprintf("%d:%s;", id, fails[id])
	}
	for _, e := range s.Events() {
		res.events += fmt.Sprintf("%d:r%d:%s:%d;", e.At, e.Replica, e.Kind, e.Active)
	}
	now := w.Ctrl().Now()
	res.summary = fmt.Sprintf("cost=%.9f repsec=%.6f mean=%.6f attain=%.6f target=%d",
		s.Cost(now), s.ReplicaSeconds(now), s.MeanActive(now), s.Attainment(), s.Target())
	if traced {
		var buf bytes.Buffer
		all := []*trace.Recorder{ctrlRec}
		all = append(all, shardRecs...)
		if err := trace.WriteChromeTraceAll(&buf, all...); err != nil {
			t.Fatal(err)
		}
		res.traceBytes = buf.String()
	}
	var tbuf bytes.Buffer
	if err := telemetry.WriteJSON(&tbuf, now, telemetry.Export{Meters: shardMts}); err != nil {
		t.Fatal(err)
	}
	res.telemetryJSON = tbuf.String()
	return res
}

// TestAutoscaleSerialParallelBitIdentical is the identity matrix's
// autoscaling column: policies × traffic shapes × seeds, each cell run
// serially and in parallel on the World engine with replica churn
// (cold-start warmups, drains, parks) happening mid-trace. The comparison
// covers per-request metrics, failure summaries, the scaling-event log,
// the cost/attainment summary, the telemetry export (including the
// autoscaler's control-timeline instruments), and — on the traced cell —
// merged trace bytes.
func TestAutoscaleSerialParallelBitIdentical(t *testing.T) {
	shapes := []struct {
		name string
		mk   func(seed int64) workload.TrafficSpec
	}{
		{"diurnal", diurnalCell},
		{"spike", spikeCell},
	}
	for _, policy := range []string{"queue-depth", "predictive", "slo-burn"} {
		for _, sh := range shapes {
			for _, seed := range []int64{1, 2} {
				name := fmt.Sprintf("%s/%s/seed%d", policy, sh.name, seed)
				t.Run(name, func(t *testing.T) {
					traced := policy == "queue-depth" && sh.name == "diurnal" && seed == 1
					spec := sh.mk(seed)
					serial := runAutoscaleCell(t, policy, spec, false, false, traced)
					par := runAutoscaleCell(t, policy, spec, true, false, traced)

					if serial.counts.Completed == 0 {
						t.Fatal("no requests completed; workload broken")
					}
					if !serial.counts.Conserved() {
						t.Fatalf("conservation violated: %+v", serial.counts)
					}
					if serial.outstanding != 0 {
						t.Fatalf("%d requests never terminated", serial.outstanding)
					}
					// Every cell must exercise the drain protocol: the fleet
					// starts over-provisioned for the trough/base load, so every
					// policy retires replicas — and those drains must fully park.
					if serial.stats.ScaleDowns == 0 || serial.stats.Parks == 0 {
						t.Fatalf("drain column unexercised: %+v", serial.stats)
					}
					if serial.counts != par.counts {
						t.Fatalf("ledgers diverge: serial %+v, parallel %+v", serial.counts, par.counts)
					}
					if serial.stats != par.stats {
						t.Fatalf("scale stats diverge: serial %+v, parallel %+v", serial.stats, par.stats)
					}
					if serial.metricsJSON != par.metricsJSON {
						t.Fatal("per-request metrics JSON diverges between serial and parallel")
					}
					if serial.failures != par.failures {
						t.Fatalf("failure summaries diverge:\n serial: %s\n parallel: %s",
							serial.failures, par.failures)
					}
					if serial.events != par.events {
						t.Fatalf("scaling-event logs diverge:\n serial: %s\n parallel: %s",
							serial.events, par.events)
					}
					if serial.summary != par.summary {
						t.Fatalf("cost summaries diverge:\n serial: %s\n parallel: %s",
							serial.summary, par.summary)
					}
					if serial.telemetryJSON != par.telemetryJSON {
						t.Fatal("telemetry export diverges between serial and parallel")
					}
					if serial.traceBytes != par.traceBytes {
						t.Fatal("merged trace bytes diverge between serial and parallel")
					}
				})
			}
		}
	}
}

// TestAutoscaleColdStartPaging pins the cold-start column: the reactive
// policies must scale up mid-trace and those warmups must page real bytes
// through the VRAM manager over the PCIe link.
func TestAutoscaleColdStartPaging(t *testing.T) {
	for _, policy := range []string{"queue-depth", "predictive"} {
		t.Run(policy, func(t *testing.T) {
			res := runAutoscaleCell(t, policy, diurnalCell(1), true, false, false)
			if res.stats.ScaleUps == 0 || res.stats.ColdStarts == 0 {
				t.Fatalf("no cold starts: %+v", res.stats)
			}
			if res.stats.ColdStartBytes == 0 {
				t.Fatalf("cold starts paged no bytes: %+v", res.stats)
			}
			if res.stats.ColdStartNs == 0 {
				t.Fatalf("cold starts took no time: %+v", res.stats)
			}
		})
	}
}

// TestAutoscaleRunRepeatable: the same cell twice on the parallel engine
// gives identical bytes — determinism across runs, not just across modes.
func TestAutoscaleRunRepeatable(t *testing.T) {
	a := runAutoscaleCell(t, "queue-depth", spikeCell(5), true, false, false)
	b := runAutoscaleCell(t, "queue-depth", spikeCell(5), true, false, false)
	if a.metricsJSON != b.metricsJSON || a.failures != b.failures || a.events != b.events ||
		a.summary != b.summary || a.telemetryJSON != b.telemetryJSON || a.traceBytes != b.traceBytes {
		t.Fatal("parallel runs with identical seeds diverge")
	}
}

// TestAutoscaleSpeculativeBitIdentical extends the autoscaling column to
// the speculative engine: replica churn (cold-start warmups, drains, parks)
// under the adaptive speculation window must stay byte-for-byte
// serial≡parallel. Cells compare spec-serial against spec-parallel —
// speculation defers cross-timeline posts to the barrier, so it is a
// different (equally valid) simulation than the conservative cells above.
func TestAutoscaleSpeculativeBitIdentical(t *testing.T) {
	shapes := []struct {
		name string
		mk   func(seed int64) workload.TrafficSpec
	}{
		{"diurnal", diurnalCell},
		{"spike", spikeCell},
	}
	for _, policy := range []string{"queue-depth", "slo-burn"} {
		for _, sh := range shapes {
			t.Run(fmt.Sprintf("%s/%s", policy, sh.name), func(t *testing.T) {
				traced := policy == "queue-depth" && sh.name == "diurnal"
				spec := sh.mk(1)
				serial := runAutoscaleCell(t, policy, spec, false, true, traced)
				par := runAutoscaleCell(t, policy, spec, true, true, traced)
				if serial.counts.Completed == 0 {
					t.Fatal("no requests completed; workload broken")
				}
				if !serial.counts.Conserved() {
					t.Fatalf("conservation violated: %+v", serial.counts)
				}
				if serial.outstanding != 0 {
					t.Fatalf("%d requests never terminated", serial.outstanding)
				}
				if serial.counts != par.counts {
					t.Fatalf("ledgers diverge: serial %+v, parallel %+v", serial.counts, par.counts)
				}
				if serial.stats != par.stats {
					t.Fatalf("scale stats diverge: serial %+v, parallel %+v", serial.stats, par.stats)
				}
				if serial.metricsJSON != par.metricsJSON {
					t.Fatal("per-request metrics JSON diverges between serial and parallel")
				}
				if serial.failures != par.failures {
					t.Fatalf("failure summaries diverge:\n serial: %s\n parallel: %s",
						serial.failures, par.failures)
				}
				if serial.events != par.events {
					t.Fatalf("scaling-event logs diverge:\n serial: %s\n parallel: %s",
						serial.events, par.events)
				}
				if serial.summary != par.summary {
					t.Fatalf("cost summaries diverge:\n serial: %s\n parallel: %s",
						serial.summary, par.summary)
				}
				if serial.telemetryJSON != par.telemetryJSON {
					t.Fatal("telemetry export diverges between serial and parallel")
				}
				if serial.traceBytes != par.traceBytes {
					t.Fatal("merged trace bytes diverge between serial and parallel")
				}
			})
		}
	}
}
