// Package autoscale scales a cluster's replica pool on the virtual clock —
// an extension in the spirit of the paper's §8, which positions Paella's
// software-defined scheduling to compose hierarchically with cluster-level
// scheduling. The §5 dispatcher answers "which kernel next" on one GPU;
// this package asks the fleet-level question — how many replicas, as
// millions of simulated users ebb and flow. A Scaler ticks on the control
// timeline, reads live fleet signals (queue pressure, traffic rates, SLO
// burn), asks a pluggable Policy for a target pool size, and owns the
// mechanics the policy abstracts away: scale-up pays a realistic cold
// start (weight paging through internal/vram over the PCIe link), and
// scale-down drains a replica's in-flight work before retiring it, so
// every request still ends in exactly one completion or one typed error.
// Replica-hour billing and the heterogeneous fleet-mix optimizer
// (OptimizeMix) turn the same machinery into an SLO-vs-cost frontier.
package autoscale

import (
	"fmt"

	"paella/internal/cluster"
	"paella/internal/metrics"
	"paella/internal/sim"
	"paella/internal/telemetry"
)

// ReplicaState is one replica's position in the autoscaler's lifecycle.
type ReplicaState uint8

const (
	// ReplicaParked is off the bill: not routable, weights evicted.
	ReplicaParked ReplicaState = iota
	// ReplicaWarming is paying its cold start: billed, not yet routable.
	ReplicaWarming
	// ReplicaActive serves traffic: billed and routable.
	ReplicaActive
	// ReplicaDraining is retiring: billed, not routable, finishing its
	// in-flight work before parking.
	ReplicaDraining
)

// String names the state for reports.
func (s ReplicaState) String() string {
	switch s {
	case ReplicaWarming:
		return "warming"
	case ReplicaActive:
		return "active"
	case ReplicaDraining:
		return "draining"
	default:
		return "parked"
	}
}

// EventKind classifies one scaling event.
type EventKind uint8

const (
	// EventScaleUp begins a parked replica's warmup.
	EventScaleUp EventKind = iota
	// EventWarmDone completes a warmup: the replica joins the routable pool.
	EventWarmDone
	// EventReactivate cancels an in-progress drain — the cheapest capacity
	// is a still-warm replica on its way out.
	EventReactivate
	// EventDrainBegin removes a replica from routing to let it drain.
	EventDrainBegin
	// EventParked retires a drained replica: weights evicted, billing off.
	EventParked
)

// String names the event kind for reports.
func (k EventKind) String() string {
	switch k {
	case EventScaleUp:
		return "scale-up"
	case EventWarmDone:
		return "warm-done"
	case EventReactivate:
		return "reactivate"
	case EventDrainBegin:
		return "drain-begin"
	default:
		return "parked"
	}
}

// Event is one deterministic entry in the scaling log.
type Event struct {
	// At is the virtual time of the transition.
	At sim.Time
	// Replica is the stable physical replica index.
	Replica int
	// Kind classifies the transition.
	Kind EventKind
	// Active is the routable-pool size after the transition.
	Active int
}

// Stats aggregates the run's scaling activity.
type Stats struct {
	// ScaleUps counts parked→warming transitions; Reactivations counts
	// draining→active rescues; ScaleDowns counts active→draining.
	ScaleUps, Reactivations, ScaleDowns int
	// Parks counts completed drains (replica fully retired).
	Parks int
	// ColdStarts counts completed warmups, ColdStartNs their total wall
	// time on the virtual clock, and ColdStartBytes the weights paged —
	// the run's cold-start spend.
	ColdStarts     int
	ColdStartNs    sim.Time
	ColdStartBytes int64
}

// Config parameterizes a Scaler.
type Config struct {
	// Min and Max bound the provisioned pool (replicas outside Max never
	// activate). Min must be at least 1 so traffic always has somewhere to
	// go; Max defaults to the cluster size.
	Min, Max int
	// Initial is the pool size at time zero (0 = Min). Initial replicas
	// start active and billed, without a cold start — the fleet predates
	// the trace.
	Initial int
	// Interval is the control-loop tick (0 = 50ms of virtual time).
	Interval sim.Time
	// Policy decides the target pool size each tick. Required.
	Policy Policy
	// SLO optionally configures a telemetry burn-rate monitor over the
	// fleet's delivered latencies; its Deadline also defines the
	// attainment statistic. A zero Deadline disables both (SLOFiring stays
	// false).
	SLO telemetry.SLOConfig
	// DollarsPerHour prices each replica for Cost (len == cluster size);
	// nil bills everything at zero.
	DollarsPerHour []float64
	// ReplicaRatePerSec hints the per-replica sustainable throughput for
	// the predictive policy; 0 learns it from observed completion rates.
	ReplicaRatePerSec float64
	// RetryBackoff is the Front's resubmit delay when no replica can take
	// a request (0 = 20µs).
	RetryBackoff sim.Time
}

// Scaler is the control loop. Construct with New, attach traffic through
// Front, then Start before running the simulation. All state lives on the
// control timeline: ticks, warmup completions, and terminal observations
// serialize there, so serial and parallel world runs are bit-identical.
type Scaler struct {
	env *sim.Env
	c   *cluster.Cluster
	cfg Config

	state  []ReplicaState
	target int

	// Billing: onSince stamps when a replica last left Parked; billedNs
	// accumulates closed non-parked intervals.
	onSince  []sim.Time
	billedNs []sim.Time
	// coldSince stamps an in-progress warmup's start.
	coldSince []sim.Time

	// activeNs integrates routable-pool size over time for MeanActive.
	activeNs   float64
	lastActive sim.Time

	events  []Event
	stats   Stats
	running bool

	// Per-tick traffic counters, fed by Front.
	submittedTick, completedTick int
	// muRaw/muEst learn the per-replica sustainable rate (req/s).
	muRaw, muEst float64

	// SLO machinery: a private meter hosting the burn monitor, the alert
	// cursor, and the attainment counters.
	slomt    *telemetry.Meter
	alertIdx int
	firing   bool
	sloGood  int
	sloTotal int

	// Environment telemetry instruments (nil-safe when no meter attached).
	mt      *telemetry.Meter
	gActive telemetry.MetricID
	gTarget telemetry.MetricID
	cUps    telemetry.MetricID
	cDowns  telemetry.MetricID
	cCold   telemetry.MetricID
	hColdNs telemetry.MetricID
}

// NewScaler validates the config and builds the scaler: replicas
// [0, Initial) start active, the rest park immediately (unroutable,
// weights cold). (New is the policy-registry constructor, mirroring
// gateway.New.)
func NewScaler(env *sim.Env, c *cluster.Cluster, cfg Config) (*Scaler, error) {
	if cfg.Max == 0 {
		cfg.Max = c.Size()
	}
	switch {
	case cfg.Policy == nil:
		return nil, fmt.Errorf("autoscale: nil policy")
	case cfg.Min < 1:
		return nil, fmt.Errorf("autoscale: min %d must be at least 1", cfg.Min)
	case cfg.Max > c.Size():
		return nil, fmt.Errorf("autoscale: max %d exceeds cluster size %d", cfg.Max, c.Size())
	case cfg.Min > cfg.Max:
		return nil, fmt.Errorf("autoscale: min %d exceeds max %d", cfg.Min, cfg.Max)
	case cfg.DollarsPerHour != nil && len(cfg.DollarsPerHour) != c.Size():
		return nil, fmt.Errorf("autoscale: %d prices for %d replicas", len(cfg.DollarsPerHour), c.Size())
	}
	if cfg.Initial == 0 {
		cfg.Initial = cfg.Min
	}
	if cfg.Initial < cfg.Min || cfg.Initial > cfg.Max {
		return nil, fmt.Errorf("autoscale: initial %d outside [%d, %d]", cfg.Initial, cfg.Min, cfg.Max)
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 50 * sim.Millisecond
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 20 * sim.Microsecond
	}
	s := &Scaler{
		env: env, c: c, cfg: cfg,
		state:      make([]ReplicaState, c.Size()),
		onSince:    make([]sim.Time, c.Size()),
		billedNs:   make([]sim.Time, c.Size()),
		coldSince:  make([]sim.Time, c.Size()),
		target:     cfg.Initial,
		lastActive: env.Now(),
		muEst:      cfg.ReplicaRatePerSec,
	}
	now := env.Now()
	for i := 0; i < c.Size(); i++ {
		if i < cfg.Initial {
			s.state[i] = ReplicaActive
			s.onSince[i] = now
		} else {
			s.state[i] = ReplicaParked
			c.SetRoutable(i, false)
		}
	}
	if cfg.SLO.Deadline > 0 {
		s.slomt = telemetry.NewMeter("autoscale-slo", 0)
		s.slomt.SLO(cfg.SLO)
	}
	s.mt = telemetry.FromEnv(env)
	if s.mt != nil {
		s.gActive = s.mt.Gauge("autoscale/active_replicas")
		s.gTarget = s.mt.Gauge("autoscale/target")
		s.cUps = s.mt.Counter("autoscale/scale_ups")
		s.cDowns = s.mt.Counter("autoscale/scale_downs")
		s.cCold = s.mt.Counter("autoscale/cold_starts")
		s.hColdNs = s.mt.Histogram("autoscale/cold_start_ns")
		s.mt.Set(s.gActive, now, float64(cfg.Initial))
		s.mt.Set(s.gTarget, now, float64(cfg.Initial))
	}
	return s, nil
}

// Start arms the control loop: the first tick fires one interval from now.
func (s *Scaler) Start() {
	if s.running {
		return
	}
	s.running = true
	s.scheduleTick()
}

// Stop disarms the control loop (pending drains stay unroutable).
func (s *Scaler) Stop() { s.running = false }

func (s *Scaler) scheduleTick() {
	s.env.DoAfter(s.cfg.Interval, func() {
		if !s.running {
			return
		}
		s.tick()
		s.scheduleTick()
	})
}

// tick is one control-loop iteration: finish drains, read signals, ask the
// policy, and move the pool toward the clamped target.
func (s *Scaler) tick() {
	now := s.env.Now()

	// Retire replicas whose drain completed.
	for i, st := range s.state {
		if st == ReplicaDraining && s.c.InFlight(i) == 0 {
			s.park(i, now)
		}
	}

	sig := s.signals(now)
	target := s.cfg.Policy.Target(sig)
	if target < s.cfg.Min {
		target = s.cfg.Min
	}
	if target > s.cfg.Max {
		target = s.cfg.Max
	}
	s.target = target
	s.mt.Set(s.gTarget, now, float64(target))

	prov := sig.Active + sig.Warming
	switch {
	case target > prov:
		s.grow(target-prov, now)
	case target < prov:
		s.shrink(prov-target, now)
	}
	s.mt.Set(s.gActive, now, float64(s.CountState(ReplicaActive)))

	s.submittedTick = 0
	s.completedTick = 0
}

// signals assembles the policy's view of the fleet at this tick.
func (s *Scaler) signals(now sim.Time) Signals {
	sig := Signals{Target: s.target}
	for i, st := range s.state {
		if !s.c.Alive(i) {
			continue
		}
		switch st {
		case ReplicaActive:
			sig.Active++
		case ReplicaWarming:
			sig.Warming++
		case ReplicaDraining:
			sig.Draining++
		default:
			sig.Parked++
		}
		sig.InFlight += s.c.InFlight(i)
	}
	sec := s.cfg.Interval.Seconds()
	sig.ArrivalRate = float64(s.submittedTick) / sec
	sig.CompletionRate = float64(s.completedTick) / sec
	if sig.Active > 0 && s.completedTick > 0 {
		r := sig.CompletionRate / float64(sig.Active)
		if s.muRaw == 0 {
			s.muRaw = r
		} else {
			s.muRaw = 0.5*s.muRaw + 0.5*r
		}
		if s.cfg.ReplicaRatePerSec <= 0 && s.muRaw > s.muEst {
			s.muEst = s.muRaw
		}
	}
	sig.ReplicaRate = s.muEst
	if s.slomt != nil {
		alerts := s.slomt.Alerts()
		for ; s.alertIdx < len(alerts); s.alertIdx++ {
			s.firing = alerts[s.alertIdx].Firing
		}
		sig.SLOFiring = s.firing
	}
	return sig
}

// grow adds capacity: first rescue draining replicas (still warm — a free
// reactivation), then warm parked ones, both lowest index first for
// determinism.
func (s *Scaler) grow(n int, now sim.Time) {
	for i := 0; i < len(s.state) && n > 0; i++ {
		if s.state[i] == ReplicaDraining && s.c.Alive(i) {
			s.markActive(i)
			s.c.SetRoutable(i, true)
			s.stats.Reactivations++
			s.events = append(s.events, Event{At: now, Replica: i, Kind: EventReactivate, Active: s.CountState(ReplicaActive)})
			n--
		}
	}
	for i := 0; i < len(s.state) && n > 0; i++ {
		if s.state[i] != ReplicaParked || !s.c.Alive(i) {
			continue
		}
		s.state[i] = ReplicaWarming
		s.onSince[i] = now
		s.coldSince[i] = now
		s.stats.ScaleUps++
		s.mt.Add(s.cUps, now, 1)
		s.events = append(s.events, Event{At: now, Replica: i, Kind: EventScaleUp, Active: s.CountState(ReplicaActive)})
		i := i
		s.stats.ColdStartBytes += s.c.Warmup(i, func() { s.warmDone(i) })
		n--
	}
}

// warmDone completes replica i's cold start on the control timeline.
func (s *Scaler) warmDone(i int) {
	if s.state[i] != ReplicaWarming || !s.c.Alive(i) {
		return
	}
	now := s.env.Now()
	s.markActive(i)
	s.c.SetRoutable(i, true)
	d := now - s.coldSince[i]
	s.stats.ColdStarts++
	s.stats.ColdStartNs += d
	s.mt.Add(s.cCold, now, 1)
	s.mt.Observe(s.hColdNs, now, float64(d))
	s.events = append(s.events, Event{At: now, Replica: i, Kind: EventWarmDone, Active: s.CountState(ReplicaActive)})
	s.mt.Set(s.gActive, now, float64(s.CountState(ReplicaActive)))
}

// shrink drains n active replicas, highest index first (warming replicas
// finish their cold start; draining an in-progress transfer is not worth
// the complexity for a control loop that can reactivate next tick).
func (s *Scaler) shrink(n int, now sim.Time) {
	for i := len(s.state) - 1; i >= 0 && n > 0; i-- {
		if s.state[i] != ReplicaActive || !s.c.Alive(i) {
			continue
		}
		s.markDraining(i)
		s.c.SetRoutable(i, false)
		s.stats.ScaleDowns++
		s.mt.Add(s.cDowns, now, 1)
		s.events = append(s.events, Event{At: now, Replica: i, Kind: EventDrainBegin, Active: s.CountState(ReplicaActive)})
		n--
	}
}

// park retires a fully drained replica: weights evicted, billing closed.
func (s *Scaler) park(i int, now sim.Time) {
	s.state[i] = ReplicaParked
	s.c.EvictAll(i)
	s.billedNs[i] += now - s.onSince[i]
	s.stats.Parks++
	s.events = append(s.events, Event{At: now, Replica: i, Kind: EventParked, Active: s.CountState(ReplicaActive)})
}

// markActive moves a replica into the active pool, updating the
// active-count time integral.
func (s *Scaler) markActive(i int) {
	s.integrateActive()
	s.state[i] = ReplicaActive
}

// markDraining moves a replica out of the active pool.
func (s *Scaler) markDraining(i int) {
	s.integrateActive()
	s.state[i] = ReplicaDraining
}

// integrateActive folds the elapsed interval into the active-count
// integral before a pool change.
func (s *Scaler) integrateActive() {
	now := s.env.Now()
	s.activeNs += float64(now-s.lastActive) * float64(s.CountState(ReplicaActive))
	s.lastActive = now
}

// ObserveSubmit feeds one newly submitted request into the tick's arrival
// counter (Front calls this; drivers bypassing Front may too).
func (s *Scaler) ObserveSubmit() { s.submittedTick++ }

// Outcome classifies a request's terminal event for ObserveTerminal.
type Outcome uint8

const (
	// OutcomeCompleted is a successful delivery.
	OutcomeCompleted Outcome = iota
	// OutcomeShed is an admission-refused request (gateway.ErrTenantShed).
	OutcomeShed
	// OutcomeFailed is any other typed failure.
	OutcomeFailed
)

// ObserveTerminal feeds one terminal event: the completion-rate counter,
// the SLO burn monitor, and the attainment statistic (a request attains
// the SLO when it completed within the deadline; shed and failed requests
// burn budget).
func (s *Scaler) ObserveTerminal(latency sim.Time, outcome Outcome) {
	now := s.env.Now()
	if outcome == OutcomeCompleted {
		s.completedTick++
	}
	if s.cfg.SLO.Deadline <= 0 {
		return
	}
	good := outcome == OutcomeCompleted && latency <= s.cfg.SLO.Deadline
	s.sloTotal++
	if good {
		s.sloGood++
	}
	if s.slomt != nil {
		s.slomt.RecordJob(now, &metrics.JobRecord{
			Submit: now - latency, Admit: now - latency,
			ExecDone: now, Delivered: now,
			Failed: outcome != OutcomeCompleted,
		})
	}
}

// State returns replica i's lifecycle state.
func (s *Scaler) State(i int) ReplicaState { return s.state[i] }

// Target returns the last clamped policy target.
func (s *Scaler) Target() int { return s.target }

// CountState returns how many replicas are in the given state.
func (s *Scaler) CountState(st ReplicaState) int {
	n := 0
	for _, v := range s.state {
		if v == st {
			n++
		}
	}
	return n
}

// Events returns the scaling log in emission order.
func (s *Scaler) Events() []Event { return s.events }

// ScaleStats returns the run's aggregate scaling activity.
func (s *Scaler) ScaleStats() Stats { return s.stats }

// QuiesceTime returns the billing horizon for a run whose trace ended at
// end: end itself, or the last scaling transition if the fleet was still
// draining and parking replicas past it. The billing accessors
// (ReplicaSeconds, Cost, MeanActive) integrate "up to now" and assume now
// is at least as late as every internal transition — pass them a
// QuiesceTime, not a raw trace end, when the run was driven beyond it.
func (s *Scaler) QuiesceTime(end sim.Time) sim.Time {
	for _, e := range s.events {
		if e.At > end {
			end = e.At
		}
	}
	return end
}

// ReplicaSeconds returns the fleet's billed (non-parked) replica time up
// to now, in seconds.
func (s *Scaler) ReplicaSeconds(now sim.Time) float64 {
	var total sim.Time
	for i, ns := range s.billedNs {
		total += ns
		if s.state[i] != ReplicaParked {
			total += now - s.onSince[i]
		}
	}
	return total.Seconds()
}

// Cost returns the fleet's dollar spend up to now under the configured
// per-replica $/hr prices (zero without prices).
func (s *Scaler) Cost(now sim.Time) float64 {
	if s.cfg.DollarsPerHour == nil {
		return 0
	}
	var dollars float64
	for i, ns := range s.billedNs {
		t := ns
		if s.state[i] != ReplicaParked {
			t += now - s.onSince[i]
		}
		dollars += t.Seconds() / 3600 * s.cfg.DollarsPerHour[i]
	}
	return dollars
}

// MeanActive returns the time-averaged routable-pool size up to now.
func (s *Scaler) MeanActive(now sim.Time) float64 {
	total := s.activeNs + float64(now-s.lastActive)*float64(s.CountState(ReplicaActive))
	if now <= 0 {
		return float64(s.CountState(ReplicaActive))
	}
	return total / float64(now)
}

// Attainment returns the fraction of terminated requests that met the SLO
// deadline (1 when no SLO is configured or nothing terminated yet).
func (s *Scaler) Attainment() float64 {
	if s.sloTotal == 0 {
		return 1
	}
	return float64(s.sloGood) / float64(s.sloTotal)
}
