package autoscale

import (
	"fmt"
	"sort"

	"paella/internal/gpu"
)

// Offer is one purchasable GPU type for the fleet-mix optimizer: a device
// configuration, its hourly price, and its measured per-replica
// throughput for the target model mix (calibrate with a short saturating
// run — the experiment does).
type Offer struct {
	// Name labels the type in reports ("t4", "p100", "gtx1660").
	Name string
	// Dev is the device configuration replicas of this type run.
	Dev gpu.Config
	// DollarsPerHour is the hourly price per replica.
	DollarsPerHour float64
	// RatePerSec is the sustainable per-replica throughput in req/s.
	RatePerSec float64
	// Max caps how many replicas of this type are available (0 = 64).
	Max int
}

// FleetMix is an optimizer solution: how many replicas of each offer to
// provision, with the mix's aggregate price and capacity.
type FleetMix struct {
	// Counts is parallel to the offers slice passed to OptimizeMix.
	Counts []int
	// CostPerHour is the mix's total hourly price.
	CostPerHour float64
	// RatePerSec is the mix's total sustained capacity.
	RatePerSec float64
}

// Replicas returns the mix's total replica count.
func (m FleetMix) Replicas() int {
	n := 0
	for _, c := range m.Counts {
		n += c
	}
	return n
}

// OptimizeMix picks the cheapest heterogeneous fleet that sustains the
// demand: offers are ranked by cost efficiency ($ per unit of throughput,
// ties broken by name for determinism) and filled greedily until capacity
// covers demand·headroom, falling over to the next type when one caps
// out. Greedy is exact here up to one replica of rounding — replica
// counts are integers, so the last replica of the efficient type may
// overshoot where a fractional replica of a pricier type would not; the
// optimizer keeps the overshoot (capacity errs high, never low).
func OptimizeMix(offers []Offer, demandPerSec, headroom float64) (FleetMix, error) {
	if len(offers) == 0 {
		return FleetMix{}, fmt.Errorf("autoscale: no offers")
	}
	if demandPerSec <= 0 {
		return FleetMix{}, fmt.Errorf("autoscale: demand %f", demandPerSec)
	}
	if headroom < 1 {
		headroom = 1
	}
	for _, o := range offers {
		if o.RatePerSec <= 0 || o.DollarsPerHour <= 0 {
			return FleetMix{}, fmt.Errorf("autoscale: offer %q needs positive rate and price", o.Name)
		}
	}
	order := make([]int, len(offers))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ea := offers[order[a]].DollarsPerHour / offers[order[a]].RatePerSec
		eb := offers[order[b]].DollarsPerHour / offers[order[b]].RatePerSec
		if ea != eb {
			return ea < eb
		}
		return offers[order[a]].Name < offers[order[b]].Name
	})
	need := demandPerSec * headroom
	mix := FleetMix{Counts: make([]int, len(offers))}
	for _, i := range order {
		if mix.RatePerSec >= need {
			break
		}
		o := offers[i]
		limit := o.Max
		if limit <= 0 {
			limit = 64
		}
		for n := 0; n < limit && mix.RatePerSec < need; n++ {
			mix.Counts[i]++
			mix.RatePerSec += o.RatePerSec
			mix.CostPerHour += o.DollarsPerHour
		}
	}
	if mix.RatePerSec < need {
		return mix, fmt.Errorf("autoscale: offers sustain %.0f req/s, need %.0f", mix.RatePerSec, need)
	}
	return mix, nil
}

// Devices expands the mix into per-replica device configs and prices, in
// offer order — the shape cluster.NewWorldWithConfig and Config
// DollarsPerHour consume.
func (m FleetMix) Devices(offers []Offer) (devs []gpu.Config, dollarsPerHour []float64, names []string) {
	for i, n := range m.Counts {
		for j := 0; j < n; j++ {
			devs = append(devs, offers[i].Dev)
			dollarsPerHour = append(dollarsPerHour, offers[i].DollarsPerHour)
			names = append(names, offers[i].Name)
		}
	}
	return devs, dollarsPerHour, names
}
