package fault

import (
	"fmt"
	"math/rand"

	"paella/internal/channel"
	"paella/internal/cluster"
	"paella/internal/core"
	"paella/internal/gpu"
	"paella/internal/sim"
	"paella/internal/trace"
)

// Targets names the live components a plan's events act on. Fields may be
// nil (or empty): an event whose target is absent is skipped and counted,
// so one plan runs unchanged across differently-shaped experiments.
type Targets struct {
	// Device receives SM retirements and the notification drop/dup hook.
	Device *gpu.Device
	// Dispatcher receives PCIe brownouts, load failures, and VRAM pressure.
	Dispatcher *core.Dispatcher
	// Conns are the client connections disconnect-client indexes into.
	Conns []*core.ClientConn
	// Cluster receives replica crashes.
	Cluster *cluster.Cluster
}

// Injector schedules a plan's events onto the simulation clock and applies
// them to the targets. All randomness (per-notification drop/dup draws)
// comes from the plan's seed, so runs replay byte-identically.
type Injector struct {
	env  *sim.Env
	plan *Plan
	t    Targets
	rng  *rand.Rand

	applied map[Kind]int
	skipped map[Kind]int

	rec   *trace.Recorder
	track trace.TrackID
}

// NewInjector binds a validated plan to its targets.
func NewInjector(env *sim.Env, plan *Plan, t Targets) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	in := &Injector{
		env:     env,
		plan:    plan,
		t:       t,
		rng:     rand.New(rand.NewSource(plan.Seed ^ 0x6661756c74)),
		applied: make(map[Kind]int),
		skipped: make(map[Kind]int),
	}
	if rec := trace.FromEnv(env); rec != nil {
		in.rec = rec
		in.track = rec.Thread(rec.Process("fault"), "inject")
	}
	return in, nil
}

// Install schedules every event at its virtual time. Call once, before
// (or during) the run; events in the past of the current clock fire at the
// next tick.
func (in *Injector) Install() {
	for _, e := range in.plan.Sorted() {
		e := e
		at := e.At
		if now := in.env.Now(); at < now {
			at = now
		}
		in.env.At(at, func() { in.apply(e) })
	}
}

func (in *Injector) apply(e Event) {
	ok := false
	switch e.Kind {
	case KindRetireSM:
		if d := in.t.Device; d != nil && e.SM < d.Config().NumSMs {
			d.RetireSM(e.SM)
			ok = true
		}
	case KindRestoreSM:
		if d := in.t.Device; d != nil && e.SM < d.Config().NumSMs {
			d.RestoreSM(e.SM)
			ok = true
		}
	case KindPCIeBrownout:
		if d := in.t.Dispatcher; d != nil {
			d.SetPCIeFactor(e.Factor)
			ok = true
		}
	case KindPCIeRestore:
		if d := in.t.Dispatcher; d != nil {
			d.SetPCIeFactor(1)
			ok = true
		}
	case KindDropNotifs:
		if d := in.t.Device; d != nil {
			in.setNotifFault(d, e.Drop, e.Dup)
			ok = true
		}
	case KindFailLoad:
		if d := in.t.Dispatcher; d != nil {
			for i := 0; i < e.Count; i++ {
				d.FailNextLoad(e.Model)
			}
			ok = true
		}
	case KindVRAMPressure:
		if d := in.t.Dispatcher; d != nil && d.VRAM() != nil {
			d.InjectVRAMPressure(e.Bytes)
			ok = true
		}
	case KindVRAMRelease:
		if d := in.t.Dispatcher; d != nil && d.VRAM() != nil {
			d.ReleaseVRAMPressure()
			ok = true
		}
	case KindDisconnectClient:
		if e.Client < len(in.t.Conns) && in.t.Conns[e.Client] != nil {
			in.t.Conns[e.Client].Disconnect()
			ok = true
		}
	case KindCrashReplica:
		if c := in.t.Cluster; c != nil && e.Replica < c.Size() {
			c.Crash(e.Replica)
			ok = true
		}
	}
	if ok {
		in.applied[e.Kind]++
	} else {
		in.skipped[e.Kind]++
	}
	if in.rec != nil {
		in.rec.InstantArgs(in.track, string(e.Kind), "fault", in.env.Now(),
			trace.Bool("applied", ok))
	}
}

// setNotifFault installs (or, at zero rates, clears) the per-notification
// drop/dup hook. Each record consumes exactly one draw from the seeded rng,
// so the decision sequence is a pure function of plan seed and simulation
// order.
func (in *Injector) setNotifFault(d *gpu.Device, drop, dup float64) {
	if drop == 0 && dup == 0 {
		d.SetNotifFault(nil)
		return
	}
	rng := in.rng
	d.SetNotifFault(func(channel.Notification) channel.NotifVerdict {
		x := rng.Float64()
		switch {
		case x < drop:
			return channel.NotifDrop
		case x < drop+dup:
			return channel.NotifDup
		default:
			return channel.NotifKeep
		}
	})
}

// Applied returns how many events of each kind took effect.
func (in *Injector) Applied() map[Kind]int {
	out := make(map[Kind]int, len(in.applied))
	for k, v := range in.applied {
		out[k] = v
	}
	return out
}

// Skipped returns how many events found no target.
func (in *Injector) Skipped() map[Kind]int {
	out := make(map[Kind]int, len(in.skipped))
	for k, v := range in.skipped {
		out[k] = v
	}
	return out
}

// Summary renders a one-line account of the injector's activity.
func (in *Injector) Summary() string {
	a, s := 0, 0
	for _, v := range in.applied {
		a += v
	}
	for _, v := range in.skipped {
		s += v
	}
	return fmt.Sprintf("fault: %d events applied, %d skipped (seed %d)", a, s, in.plan.Seed)
}
