package fault

import (
	"reflect"
	"testing"

	"paella/internal/sim"
)

// TestPlanRoundTrip: Marshal ∘ ParsePlan is the identity on a plan using
// every event kind.
func TestPlanRoundTrip(t *testing.T) {
	p := &Plan{
		Seed: 7,
		Events: []Event{
			{At: 0, Kind: KindDropNotifs, Drop: 0.01, Dup: 0.002},
			{At: 1 * sim.Millisecond, Kind: KindRetireSM, SM: 3},
			{At: 2 * sim.Millisecond, Kind: KindPCIeBrownout, Factor: 0.5},
			{At: 3 * sim.Millisecond, Kind: KindFailLoad, Model: "resnet18", Count: 2},
			{At: 4 * sim.Millisecond, Kind: KindVRAMPressure, Bytes: 64 << 20},
			{At: 5 * sim.Millisecond, Kind: KindVRAMRelease},
			{At: 6 * sim.Millisecond, Kind: KindPCIeRestore},
			{At: 7 * sim.Millisecond, Kind: KindRestoreSM, SM: 3},
			{At: 8 * sim.Millisecond, Kind: KindDisconnectClient, Client: 1},
			{At: 9 * sim.Millisecond, Kind: KindCrashReplica, Replica: 1},
		},
	}
	got, err := ParsePlan(p.Marshal())
	if err != nil {
		t.Fatalf("ParsePlan(Marshal(p)): %v", err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

// TestValidateRejects: each malformed event is refused with an error.
func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
	}{
		{"unknown kind", Event{Kind: "meteor-strike"}},
		{"negative time", Event{At: -1, Kind: KindPCIeRestore}},
		{"negative sm", Event{Kind: KindRetireSM, SM: -1}},
		{"zero brownout factor", Event{Kind: KindPCIeBrownout, Factor: 0}},
		{"brownout factor above one", Event{Kind: KindPCIeBrownout, Factor: 1.5}},
		{"drop above one", Event{Kind: KindDropNotifs, Drop: 1.5}},
		{"drop plus dup above one", Event{Kind: KindDropNotifs, Drop: 0.7, Dup: 0.7}},
		{"fail-load without model", Event{Kind: KindFailLoad, Count: 1}},
		{"fail-load without count", Event{Kind: KindFailLoad, Model: "x"}},
		{"pressure without bytes", Event{Kind: KindVRAMPressure}},
		{"negative client", Event{Kind: KindDisconnectClient, Client: -2}},
		{"negative replica", Event{Kind: KindCrashReplica, Replica: -1}},
	}
	for _, tc := range cases {
		p := &Plan{Events: []Event{tc.ev}}
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.ev)
		}
	}
}

// TestSortedStable: Sorted orders by time but keeps plan order for ties,
// and does not mutate the plan.
func TestSortedStable(t *testing.T) {
	p := &Plan{Events: []Event{
		{At: 20, Kind: KindPCIeRestore},
		{At: 10, Kind: KindRetireSM, SM: 1},
		{At: 10, Kind: KindRetireSM, SM: 2},
		{At: 0, Kind: KindDropNotifs, Drop: 0.1},
	}}
	s := p.Sorted()
	wantSM := []int{-1, 1, 2, -1}
	for i, e := range s {
		if i > 0 && e.At < s[i-1].At {
			t.Fatalf("Sorted out of order at %d: %v < %v", i, e.At, s[i-1].At)
		}
		if e.Kind == KindRetireSM && e.SM != wantSM[i] {
			t.Fatalf("tie order broken: event %d has SM %d, want %d", i, e.SM, wantSM[i])
		}
	}
	if p.Events[0].At != 20 {
		t.Fatal("Sorted mutated the plan")
	}
}

// TestSynthesize: equal arguments give equal plans, intensity 0 is empty,
// severity parameters scale with intensity, and every plan validates.
func TestSynthesize(t *testing.T) {
	const horizon = 4 * sim.Second
	if p := Synthesize(1, 0, horizon, 40); len(p.Events) != 0 {
		t.Fatalf("intensity 0 produced %d events", len(p.Events))
	}
	a := Synthesize(9, 0.5, horizon, 40)
	b := Synthesize(9, 0.5, horizon, 40)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Synthesize is not deterministic")
	}
	count := func(p *Plan, k Kind) int {
		n := 0
		for _, e := range p.Events {
			if e.Kind == k {
				n++
			}
		}
		return n
	}
	for _, intensity := range []float64{0.1, 0.5, 1.0} {
		p := Synthesize(9, intensity, horizon, 40)
		if err := p.Validate(); err != nil {
			t.Fatalf("intensity %v: %v", intensity, err)
		}
		retired := count(p, KindRetireSM)
		if retired < 1 || retired > 10 {
			t.Fatalf("intensity %v retires %d of 40 SMs", intensity, retired)
		}
		if count(p, KindDropNotifs) != 1 || count(p, KindPCIeBrownout) != 1 {
			t.Fatalf("intensity %v missing drop/brownout events", intensity)
		}
	}
	low, high := Synthesize(9, 0.25, horizon, 40), Synthesize(9, 1.0, horizon, 40)
	if count(low, KindRetireSM) >= count(high, KindRetireSM) {
		t.Fatal("retirements do not grow with intensity")
	}
	if low.Events[0].Drop >= high.Events[0].Drop {
		t.Fatal("notification loss does not grow with intensity")
	}
}
