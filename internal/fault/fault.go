// Package fault is the simulator's deterministic fault-injection layer: a
// seeded, virtual-time-stamped schedule of degradations (the FaultPlan)
// that an Injector wires into a running experiment's components. It
// stress-tests the paper's central claim from the failure side — §5.2's
// dispatcher builds its occupancy mirror from instrumented notifications,
// so the interesting question is what happens when those notifications
// (or the SMs, PCIe link, weight loads, clients, and replicas around
// them) misbehave. Every injected fault is paired with a reaction
// elsewhere in the tree (kernel watchdog and bounded re-dispatch in
// internal/core, load retry with backoff, admission shedding, cluster
// failover), preserving one invariant: no admitted job is silently lost —
// each ends in exactly one completion or one typed error.
//
// Plans are JSON (ParsePlan) so `paella-sim -faults plan.json` and the
// chaos experiment can replay identical schedules; equal seeds give
// byte-identical runs.
package fault

import (
	"encoding/json"
	"fmt"
	"sort"

	"paella/internal/sim"
)

// Kind names one category of injected fault.
type Kind string

// The fault vocabulary. Each kind targets one component; events whose
// target is absent from the run (e.g. VRAM pressure without a VRAM budget)
// are counted as skipped, not errors, so one plan works across experiment
// configurations.
const (
	// KindRetireSM takes SM index SM offline (ECC retirement semantics:
	// resident blocks drain, no new placements). The dispatcher's mirror
	// rescales to the surviving capacity.
	KindRetireSM Kind = "retire-sm"
	// KindRestoreSM brings a retired SM back online.
	KindRestoreSM Kind = "restore-sm"
	// KindPCIeBrownout scales the PCIe link bandwidth by Factor (0 < f ≤ 1);
	// weight loads and tensor copies slow accordingly.
	KindPCIeBrownout Kind = "pcie-brownout"
	// KindPCIeRestore restores full PCIe bandwidth.
	KindPCIeRestore Kind = "pcie-restore"
	// KindDropNotifs makes the device's notification emit path drop each
	// record with probability Drop and duplicate it with probability Dup
	// (seeded; zero both to clear). The dispatcher's watchdog and
	// clamp/infer logic recover.
	KindDropNotifs Kind = "drop-notifs"
	// KindFailLoad makes the next Count weight loads of Model fail; the
	// dispatcher retries with exponential backoff up to its budget.
	KindFailLoad Kind = "fail-load"
	// KindVRAMPressure carves Bytes out of the device-memory budget (a
	// co-tenant allocation spike), evicting LRU unpinned models.
	KindVRAMPressure Kind = "vram-pressure"
	// KindVRAMRelease returns all injected memory pressure.
	KindVRAMRelease Kind = "vram-release"
	// KindDisconnectClient severs client index Client mid-flight; its live
	// jobs terminate with a typed error, queued requests are rejected.
	KindDisconnectClient Kind = "disconnect-client"
	// KindCrashReplica kills replica index Replica of a cluster; pending
	// requests fail over to the survivors.
	KindCrashReplica Kind = "crash-replica"
)

// Event is one scheduled fault. At is virtual time; the remaining fields
// parameterize the kind (unused ones stay zero).
type Event struct {
	// At is when the fault fires, in virtual nanoseconds.
	At sim.Time `json:"at_ns"`
	// Kind selects the fault.
	Kind Kind `json:"kind"`

	// SM is the target SM index (retire-sm, restore-sm).
	SM int `json:"sm,omitempty"`
	// Factor is the PCIe bandwidth multiplier (pcie-brownout).
	Factor float64 `json:"factor,omitempty"`
	// Drop and Dup are per-record probabilities (drop-notifs).
	Drop float64 `json:"drop,omitempty"`
	Dup  float64 `json:"dup,omitempty"`
	// Model and Count select weight-load failures (fail-load).
	Model string `json:"model,omitempty"`
	Count int    `json:"count,omitempty"`
	// Bytes is the pressure size (vram-pressure).
	Bytes int64 `json:"bytes,omitempty"`
	// Client is the target client index (disconnect-client).
	Client int `json:"client,omitempty"`
	// Replica is the target replica index (crash-replica).
	Replica int `json:"replica,omitempty"`
}

// Plan is a reproducible fault schedule: a seed (driving every
// probabilistic decision, e.g. per-notification drops) plus an ordered
// event list.
type Plan struct {
	// Seed drives the injector's randomness; equal seeds replay
	// identically.
	Seed int64 `json:"seed"`
	// Events fire at their virtual times, earliest first.
	Events []Event `json:"events"`
}

// Validate checks every event's kind and parameters.
func (p *Plan) Validate() error {
	for i, e := range p.Events {
		if e.At < 0 {
			return fmt.Errorf("fault: event %d: negative time %d", i, e.At)
		}
		switch e.Kind {
		case KindRetireSM, KindRestoreSM:
			if e.SM < 0 {
				return fmt.Errorf("fault: event %d: negative SM index", i)
			}
		case KindPCIeBrownout:
			if e.Factor <= 0 || e.Factor > 1 {
				return fmt.Errorf("fault: event %d: brownout factor %v outside (0,1]", i, e.Factor)
			}
		case KindPCIeRestore, KindVRAMRelease:
		case KindDropNotifs:
			if e.Drop < 0 || e.Drop > 1 || e.Dup < 0 || e.Dup > 1 || e.Drop+e.Dup > 1 {
				return fmt.Errorf("fault: event %d: drop %v / dup %v not probabilities", i, e.Drop, e.Dup)
			}
		case KindFailLoad:
			if e.Model == "" || e.Count <= 0 {
				return fmt.Errorf("fault: event %d: fail-load needs model and positive count", i)
			}
		case KindVRAMPressure:
			if e.Bytes <= 0 {
				return fmt.Errorf("fault: event %d: vram-pressure needs positive bytes", i)
			}
		case KindDisconnectClient:
			if e.Client < 0 {
				return fmt.Errorf("fault: event %d: negative client index", i)
			}
		case KindCrashReplica:
			if e.Replica < 0 {
				return fmt.Errorf("fault: event %d: negative replica index", i)
			}
		default:
			return fmt.Errorf("fault: event %d: unknown kind %q", i, e.Kind)
		}
	}
	return nil
}

// Sorted returns the events ordered by time (stable, so same-time events
// keep their plan order).
func (p *Plan) Sorted() []Event {
	out := append([]Event(nil), p.Events...)
	sort.SliceStable(out, func(a, b int) bool { return out[a].At < out[b].At })
	return out
}

// ParsePlan decodes and validates a JSON plan.
func ParsePlan(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Marshal encodes the plan as indented JSON (the inverse of ParsePlan).
func (p *Plan) Marshal() []byte {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		panic(err) // plain structs cannot fail to marshal
	}
	return data
}

// Synthesize builds a plan whose severity scales with intensity ∈ [0,1]
// over the given horizon — the chaos experiment's sweep axis:
//
//   - intensity 0: empty plan (healthy baseline).
//   - low: one SM retired mid-run, a mild PCIe brownout window, a trickle
//     of dropped notifications.
//   - high: several SMs retired, a deep brownout, percent-level
//     notification loss plus duplication.
//
// sms is the device's SM count (retirements stay a strict minority so the
// run keeps making progress). Equal arguments give equal plans.
func Synthesize(seed int64, intensity float64, horizon sim.Time, sms int) *Plan {
	if intensity < 0 {
		intensity = 0
	}
	if intensity > 1 {
		intensity = 1
	}
	p := &Plan{Seed: seed}
	if intensity == 0 {
		return p
	}
	// Notification loss from the start: up to 2% dropped, 0.5% duplicated.
	p.Events = append(p.Events, Event{
		At:   0,
		Kind: KindDropNotifs,
		Drop: 0.02 * intensity,
		Dup:  0.005 * intensity,
	})
	// Retire up to a quarter of the SMs, spread over the first half of the
	// horizon.
	retire := int(float64(sms) / 4 * intensity)
	if retire < 1 {
		retire = 1
	}
	for i := 0; i < retire; i++ {
		p.Events = append(p.Events, Event{
			At:   horizon / 4 * sim.Time(i+1) / sim.Time(retire) * 2,
			Kind: KindRetireSM,
			SM:   i,
		})
	}
	// One brownout window in the middle third: bandwidth drops to as low
	// as 20% of nominal.
	p.Events = append(p.Events, Event{
		At:     horizon / 3,
		Kind:   KindPCIeBrownout,
		Factor: 1 - 0.8*intensity,
	}, Event{
		At:   horizon * 2 / 3,
		Kind: KindPCIeRestore,
	})
	return p
}
