package fault

import (
	"bytes"
	"testing"
)

// FuzzFaultPlanJSON fuzzes the plan codec: ParsePlan must never panic on
// arbitrary bytes, and any plan it accepts must survive a
// marshal→parse→marshal round trip unchanged — the property `paella-sim
// -faults plan.json` and the chaos experiment rely on to replay identical
// schedules from a file.
func FuzzFaultPlanJSON(f *testing.F) {
	f.Add([]byte(`{"seed":7,"events":[{"at_ns":1000,"kind":"retire-sm","sm":3}]}`))
	f.Add([]byte(`{"seed":1,"events":[{"at_ns":0,"kind":"drop-notifs","drop":0.02,"dup":0.005},{"at_ns":5,"kind":"pcie-brownout","factor":0.5}]}`))
	f.Add([]byte(`{"seed":-1,"events":[{"at_ns":2,"kind":"fail-load","model":"resnet18","count":2}]}`))
	f.Add([]byte(`{"events":[{"at_ns":-5,"kind":"retire-sm"}]}`)) // invalid: negative time
	f.Add([]byte(`{"events":[{"kind":"nonsense"}]}`))             // invalid: unknown kind
	f.Add(Synthesize(42, 0.7, 1e9, 40).Marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParsePlan(data)
		if err != nil {
			return // rejected input: the only requirement is "no panic"
		}
		// Accepted plans re-validate (ParsePlan already validated, but the
		// pair must agree).
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted plan fails Validate: %v", err)
		}
		// Sorted is a time-ordered permutation.
		sorted := p.Sorted()
		if len(sorted) != len(p.Events) {
			t.Fatalf("Sorted changed length: %d -> %d", len(p.Events), len(sorted))
		}
		for i := 1; i < len(sorted); i++ {
			if sorted[i].At < sorted[i-1].At {
				t.Fatalf("Sorted not ordered at %d: %d after %d", i, sorted[i].At, sorted[i-1].At)
			}
		}
		// Round trip: marshal → parse → marshal is a fixed point.
		enc := p.Marshal()
		p2, err := ParsePlan(enc)
		if err != nil {
			t.Fatalf("marshal of a valid plan does not re-parse: %v\n%s", err, enc)
		}
		if enc2 := p2.Marshal(); !bytes.Equal(enc, enc2) {
			t.Fatalf("round trip not stable:\n%s\nvs\n%s", enc, enc2)
		}
	})
}
