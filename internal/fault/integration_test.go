package fault_test

import (
	"bytes"
	"testing"

	"paella/internal/fault"
	"paella/internal/metrics"
	"paella/internal/model"
	"paella/internal/serving"
	"paella/internal/sim"
	"paella/internal/trace"
	"paella/internal/workload"
)

// midIntensityPlan is the acceptance scenario: one retired SM, one PCIe
// brownout window, and 1% notification loss — all mid-run.
func midIntensityPlan(seed int64, horizon sim.Time) *fault.Plan {
	return &fault.Plan{
		Seed: seed,
		Events: []fault.Event{
			{At: 0, Kind: fault.KindDropNotifs, Drop: 0.01, Dup: 0.002},
			{At: horizon / 4, Kind: fault.KindRetireSM, SM: 0},
			{At: horizon / 3, Kind: fault.KindPCIeBrownout, Factor: 0.4},
			{At: horizon * 2 / 3, Kind: fault.KindPCIeRestore},
		},
	}
}

func chaosTrace(t *testing.T, jobs int) ([]workload.Request, []*model.Model) {
	t.Helper()
	models := model.Table2Models()[:2]
	names := make([]string, len(models))
	for i, m := range models {
		names[i] = m.Name
	}
	reqs, err := workload.Generate(workload.Spec{
		Mix: workload.Uniform(names...), Sigma: 1.5,
		RatePerSec: 300, Jobs: jobs, Clients: 4, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return reqs, models
}

func runFaulty(t *testing.T, reqs []workload.Request, models []*model.Model,
	plan *fault.Plan, rec *trace.Recorder) (*metrics.Collector, *fault.Injector) {
	t.Helper()
	sys, err := serving.NewSystem("Paella")
	if err != nil {
		t.Fatal(err)
	}
	opts := serving.DefaultOptions()
	opts.Models = models
	opts.Faults = plan
	opts.Trace = rec
	opts.MaxSimTime = reqs[len(reqs)-1].At + 30*sim.Second
	col, err := serving.RunTrace(sys, reqs, opts)
	if err != nil {
		t.Fatal(err)
	}
	inj := sys.(interface{ Injector() *fault.Injector }).Injector()
	return col, inj
}

// TestMidIntensityZeroLoss is the PR's acceptance bar: under the
// mid-intensity plan (1 retired SM + a PCIe brownout + 1% notification
// drop), every admitted job still ends in exactly one completion or one
// typed failure — none are silently lost.
func TestMidIntensityZeroLoss(t *testing.T) {
	reqs, models := chaosTrace(t, 400)
	plan := midIntensityPlan(5, reqs[len(reqs)-1].At)
	col, inj := runFaulty(t, reqs, models, plan, nil)

	if lost := len(reqs) - col.Len(); lost != 0 {
		t.Fatalf("%d of %d jobs lost (no terminal record)", lost, len(reqs))
	}
	for _, r := range col.Records() {
		if !r.Failed && r.Delivered == 0 {
			t.Fatalf("record %d neither delivered nor failed", r.ID)
		}
	}
	applied := inj.Applied()
	for _, k := range []fault.Kind{fault.KindDropNotifs, fault.KindRetireSM,
		fault.KindPCIeBrownout, fault.KindPCIeRestore} {
		if applied[k] != 1 {
			t.Fatalf("event %s applied %d times, want 1 (%s)", k, applied[k], inj.Summary())
		}
	}
	// Degradation must be graceful, not free: the faults leave a visible
	// footprint in ok-latency versus a healthy run of the same trace.
	healthy, _ := runFaulty(t, reqs, models, &fault.Plan{Seed: 5}, nil)
	if col.Succeeded().P99() <= healthy.P99() {
		t.Fatalf("faulty p99 %v not above healthy p99 %v", col.Succeeded().P99(), healthy.P99())
	}
}

// TestInjectorSkipsAbsentTargets: events whose target is not part of the
// run (no cluster, no VRAM budget, out-of-range client) are counted as
// skipped, so one plan works across experiment shapes.
func TestInjectorSkipsAbsentTargets(t *testing.T) {
	reqs, models := chaosTrace(t, 50)
	plan := &fault.Plan{
		Seed: 1,
		Events: []fault.Event{
			{At: 0, Kind: fault.KindCrashReplica, Replica: 0},          // no cluster
			{At: 0, Kind: fault.KindVRAMPressure, Bytes: 1 << 20},      // no VRAM budget
			{At: 0, Kind: fault.KindDisconnectClient, Client: 1 << 20}, // out of range
			{At: 1 * sim.Microsecond, Kind: fault.KindRetireSM, SM: 0}, // applies
		},
	}
	col, inj := runFaulty(t, reqs, models, plan, nil)
	if col.Len() != len(reqs) {
		t.Fatalf("lost jobs under skip-only plan: %d of %d", col.Len(), len(reqs))
	}
	skipped, applied := inj.Skipped(), inj.Applied()
	for _, k := range []fault.Kind{fault.KindCrashReplica, fault.KindVRAMPressure,
		fault.KindDisconnectClient} {
		if skipped[k] != 1 {
			t.Fatalf("event %s skipped %d times, want 1", k, skipped[k])
		}
	}
	if applied[fault.KindRetireSM] != 1 {
		t.Fatalf("retire-sm applied %d times, want 1", applied[fault.KindRetireSM])
	}
}

// TestFaultDeterminism (satellite 5): the same seed and FaultPlan replay
// byte-identically — metrics snapshot and structured trace both — while a
// different plan seed shifts the probabilistic drops and so the timings.
func TestFaultDeterminism(t *testing.T) {
	reqs, models := chaosTrace(t, 200)
	horizon := reqs[len(reqs)-1].At
	plan := func(seed int64) *fault.Plan {
		p := midIntensityPlan(seed, horizon)
		p.Events[0].Drop = 0.05 // enough loss that seeds visibly diverge
		return p
	}
	snapshot := func(seed int64) (string, string) {
		rec := trace.New()
		col, _ := runFaulty(t, reqs, models, plan(seed), rec)
		var mbuf, tbuf bytes.Buffer
		if err := col.WriteJSON(&mbuf); err != nil {
			t.Fatal(err)
		}
		if err := rec.WriteChromeTrace(&tbuf); err != nil {
			t.Fatal(err)
		}
		return mbuf.String(), tbuf.String()
	}
	m1, t1 := snapshot(5)
	m2, t2 := snapshot(5)
	if m1 != m2 {
		t.Fatal("same seed+plan: metrics snapshots differ")
	}
	if t1 != t2 {
		t.Fatal("same seed+plan: traces differ")
	}
	m3, _ := snapshot(6)
	if m1 == m3 {
		t.Fatal("different plan seed reproduced byte-identical metrics")
	}
}
