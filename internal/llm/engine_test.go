package llm

import (
	"testing"

	"paella/internal/gpu"
	"paella/internal/metrics"
	"paella/internal/sim"
)

// testConfig is a tiny fast model: 4 tokens per KV page, microsecond-scale
// kernels, zero weight bytes so the whole (small) VRAM budget is KV pool.
func testConfig(kvPages int, continuous bool) Config {
	return Config{
		Spec: Spec{
			Name:                  "tiny",
			KVBytesPerToken:       1 << 10,
			PrefillTokensPerBlock: 4,
			PrefillThreads:        128,
			PrefillBlockTime:      20 * sim.Microsecond,
			ProfilePromptTokens:   16,
			DecodeBlocks:          2,
			DecodeThreads:         128,
			DecodeBlockTime:       10 * sim.Microsecond,
		},
		DevCfg:       gpu.TeslaT4(),
		VRAMBytes:    int64(kvPages) * (4 << 10),
		KVBlockBytes: 4 << 10,
		MaxBatch:     4,
		Continuous:   continuous,
	}
}

func runEngine(t *testing.T, cfg Config, reqs []Request) (*Engine, *metrics.Collector) {
	t.Helper()
	env := sim.NewEnv()
	col := metrics.NewCollector()
	eng := MustNewEngine(env, MustCompileSpec(cfg), col)
	for _, r := range reqs {
		r := r
		env.Do(r.Submit, func() { eng.Admit(r) })
	}
	env.Run()
	eng.Mem().CheckInvariants()
	return eng, col
}

func TestEngineSingleRequest(t *testing.T) {
	eng, col := runEngine(t, testConfig(64, true), []Request{
		{ID: 1, Client: 0, Submit: 0, Prompt: 6, Output: 3},
	})
	recs := col.Records()
	if len(recs) != 1 {
		t.Fatalf("%d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Failed || r.OutputTokens != 3 || r.PromptTokens != 6 {
		t.Fatalf("bad record: %+v", r)
	}
	if r.FirstToken == 0 || r.FirstToken >= r.ExecDone {
		t.Fatalf("FirstToken %v not inside (0, ExecDone=%v)", r.FirstToken, r.ExecDone)
	}
	// TTFT covers prefill; TPOT covers the per-token decode cadence.
	if r.TTFT() <= 0 || r.TPOT() <= 0 {
		t.Fatalf("TTFT=%v TPOT=%v, want both positive", r.TTFT(), r.TPOT())
	}
	if eng.Mem().KVBlocks() != 0 {
		t.Fatalf("%d KV pages leaked after retirement", eng.Mem().KVBlocks())
	}
	if eng.InFlight() != 0 {
		t.Fatalf("InFlight = %d after drain", eng.InFlight())
	}
	if got := eng.Iterations(); got != 3 {
		t.Fatalf("%d decode iterations for 3 output tokens, want 3", got)
	}
}

// TestContinuousJoinsAtIterationBoundary: a request arriving mid-decode of
// another joins the running batch at the next iteration boundary instead of
// waiting for a drain — the defining behaviour of continuous batching.
func TestContinuousJoinsAtIterationBoundary(t *testing.T) {
	_, col := runEngine(t, testConfig(64, true), []Request{
		{ID: 1, Client: 0, Submit: 0, Prompt: 8, Output: 32},
		{ID: 2, Client: 1, Submit: 100 * sim.Microsecond, Prompt: 8, Output: 8},
	})
	recs := byID(t, col, 2)
	for id, r := range recs {
		if r.Failed {
			t.Fatalf("request %d failed", id)
		}
		if r.BatchSize < 2 {
			t.Errorf("request %d rode max batch %d, want ≥2 (joined mid-flight)", id, r.BatchSize)
		}
	}
	// The latecomer must finish before the long request: it joined without
	// waiting for the drain.
	if !(recs[2].ExecDone < recs[1].ExecDone) {
		t.Fatalf("latecomer finished at %v, after the long request's %v",
			recs[2].ExecDone, recs[1].ExecDone)
	}
}

// TestStaticBatchingWaitsForDrain: under launch-time batching the same
// latecomer is locked out until the in-flight batch fully drains.
func TestStaticBatchingWaitsForDrain(t *testing.T) {
	_, col := runEngine(t, testConfig(64, false), []Request{
		{ID: 1, Client: 0, Submit: 0, Prompt: 8, Output: 32},
		{ID: 2, Client: 1, Submit: 100 * sim.Microsecond, Prompt: 8, Output: 8},
	})
	recs := byID(t, col, 2)
	if recs[2].FirstToken <= recs[1].ExecDone {
		t.Fatalf("latecomer's first token at %v, before the batch drained at %v",
			recs[2].FirstToken, recs[1].ExecDone)
	}
	if recs[2].BatchSize != 1 {
		t.Fatalf("latecomer rode batch %d under static batching, want 1", recs[2].BatchSize)
	}
}

// TestKVPreemption: two sequences whose combined KV demand exceeds the pool
// force preemption-by-recompute; both still finish, and all pages drain.
func TestKVPreemption(t *testing.T) {
	eng, col := runEngine(t, testConfig(6, true), []Request{
		{ID: 1, Client: 0, Submit: 0, Prompt: 8, Output: 8},
		{ID: 2, Client: 1, Submit: 0, Prompt: 8, Output: 8},
	})
	recs := byID(t, col, 2)
	for id, r := range recs {
		if r.Failed {
			t.Fatalf("request %d failed under KV pressure", id)
		}
		if r.OutputTokens != 8 {
			t.Fatalf("request %d produced %d tokens, want 8", id, r.OutputTokens)
		}
	}
	if eng.Preemptions() == 0 {
		t.Fatal("no preemptions despite 8-page demand in a 6-page pool")
	}
	if recs[1].Preemptions+recs[2].Preemptions != eng.Preemptions() {
		t.Fatalf("per-record preemptions %d+%d != engine total %d",
			recs[1].Preemptions, recs[2].Preemptions, eng.Preemptions())
	}
	if eng.Mem().KVBlocks() != 0 {
		t.Fatalf("%d KV pages leaked", eng.Mem().KVBlocks())
	}
}

// TestKVExhaustedTerminal: a sequence whose demand can never fit fails with
// a typed terminal record instead of deadlocking the engine.
func TestKVExhaustedTerminal(t *testing.T) {
	eng, col := runEngine(t, testConfig(2, true), []Request{
		{ID: 1, Client: 0, Submit: 0, Prompt: 12, Output: 4},
	})
	recs := col.Records()
	if len(recs) != 1 || !recs[0].Failed {
		t.Fatalf("impossible request did not fail terminally: %+v", recs)
	}
	if eng.Mem().KVBlocks() != 0 || eng.InFlight() != 0 {
		t.Fatal("failed request left KV pages or inflight state behind")
	}
}

// TestPrefillHandoff: a prefill-only engine hands the sequence off (freeing
// its local pages); a decode engine finishes it from the transferred KV.
func TestPrefillHandoff(t *testing.T) {
	env := sim.NewEnv()
	col := metrics.NewCollector()
	comp := MustCompileSpec(testConfig(64, true))
	pre := MustNewEngine(env, comp, col)
	dec := MustNewEngine(env, comp, col)
	pre.HandoffPrefill = func(h Handoff) { dec.AdmitDecoded(h) }
	env.Do(0, func() { pre.Admit(Request{ID: 1, Client: 0, Prompt: 8, Output: 4}) })
	env.Run()
	recs := col.Records()
	if len(recs) != 1 || recs[0].Failed || recs[0].OutputTokens != 4 {
		t.Fatalf("handoff did not complete: %+v", recs)
	}
	if pre.Mem().KVBlocks() != 0 {
		t.Fatalf("prefill engine kept %d KV pages after handoff", pre.Mem().KVBlocks())
	}
	if pre.InFlight() != 0 || dec.InFlight() != 0 {
		t.Fatalf("inflight %d/%d after drain, want 0/0", pre.InFlight(), dec.InFlight())
	}
	if dec.Iterations() != 4 {
		t.Fatalf("%d decode iterations on the decode engine, want 4", dec.Iterations())
	}
}

func byID(t *testing.T, col *metrics.Collector, want int) map[uint64]metrics.JobRecord {
	t.Helper()
	recs := col.Records()
	if len(recs) != want {
		t.Fatalf("%d records, want %d", len(recs), want)
	}
	out := make(map[uint64]metrics.JobRecord, len(recs))
	for _, r := range recs {
		out[r.ID] = r
	}
	return out
}
