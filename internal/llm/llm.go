// Package llm adds autoregressive (generative) serving on top of the
// Paella building blocks: a prefill kernel computes the prompt's KV state
// in one pass, then one decode kernel execution per output token extends
// it. The KV cache is paged through internal/vram in fixed-size blocks
// (vLLM-style), so memory is committed token-by-token and reclaimed by
// preemption-by-recompute when the device runs out. Decode launches are
// batched continuously: requests join and retire at iteration boundaries
// rather than at batch-formation time, and each iteration is charged to
// every member's client through the §6 fairness machinery.
package llm

import (
	"fmt"

	"paella/internal/compiler"
	"paella/internal/gpu"
	"paella/internal/model"
	"paella/internal/sim"
	"paella/internal/vram"
)

// Kernel names in the compiled two-kernel LLM library. The prefill grid is
// sized per request (blocks = ⌈tokens/PrefillTokensPerBlock⌉) but keeps the
// library name, so profile statistics aggregate across prompt lengths.
const (
	PrefillKernel = "llm/prefill"
	DecodeKernel  = "llm/decode"
)

// Spec describes one generative model: its memory footprint and the
// execution configurations of its two kernels.
type Spec struct {
	Name string
	// WeightBytes is the device-resident parameter footprint, pinned for
	// the engine's lifetime; the rest of VRAM is the KV-page pool.
	WeightBytes int64
	// KVBytesPerToken is the per-token KV-cache footprint across all
	// layers (2 · layers · hidden · bytes-per-scalar).
	KVBytesPerToken int64

	// Prefill processes PrefillTokensPerBlock prompt tokens per thread
	// block, so its grid — and device pressure — scales with prompt length.
	PrefillTokensPerBlock int
	PrefillThreads        int
	PrefillRegs           int
	PrefillBlockTime      sim.Time
	// ProfilePromptTokens sizes the representative prompt used when
	// profiling the prefill kernel.
	ProfilePromptTokens int

	// Decode runs one fixed small grid per iteration (one token per
	// member); batching widens it n× with the profiled sub-linear scale.
	DecodeBlocks    int
	DecodeThreads   int
	DecodeRegs      int
	DecodeBlockTime sim.Time
}

// DefaultSpec returns a mid-size generative model calibrated for the Tesla
// T4: ~12 GiB of fp16 weights leaves ~4 GiB of KV pool on a 16 GiB card,
// and 64 KiB/token packs 32 tokens into one 2 MiB page.
func DefaultSpec() Spec {
	return Spec{
		Name:                  "llm-7b",
		WeightBytes:           12 << 30,
		KVBytesPerToken:       64 << 10,
		PrefillTokensPerBlock: 4,
		PrefillThreads:        512,
		PrefillRegs:           64,
		PrefillBlockTime:      400 * sim.Microsecond,
		ProfilePromptTokens:   200,
		DecodeBlocks:          8,
		DecodeThreads:         256,
		DecodeRegs:            64,
		DecodeBlockTime:       250 * sim.Microsecond,
	}
}

// Validate reports a descriptive error for nonsensical specs.
func (s *Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("llm: spec without a name")
	case s.WeightBytes < 0:
		return fmt.Errorf("llm %q: negative weight footprint", s.Name)
	case s.KVBytesPerToken <= 0:
		return fmt.Errorf("llm %q: KV bytes per token %d", s.Name, s.KVBytesPerToken)
	case s.PrefillTokensPerBlock <= 0:
		return fmt.Errorf("llm %q: prefill tokens per block %d", s.Name, s.PrefillTokensPerBlock)
	case s.PrefillThreads <= 0 || s.DecodeThreads <= 0:
		return fmt.Errorf("llm %q: non-positive block size", s.Name)
	case s.PrefillBlockTime <= 0 || s.DecodeBlockTime <= 0:
		return fmt.Errorf("llm %q: non-positive block duration", s.Name)
	case s.DecodeBlocks <= 0:
		return fmt.Errorf("llm %q: decode grid size %d", s.Name, s.DecodeBlocks)
	case s.ProfilePromptTokens <= 0:
		return fmt.Errorf("llm %q: profile prompt length %d", s.Name, s.ProfilePromptTokens)
	}
	return nil
}

// Config assembles one engine's model, device, and serving knobs.
type Config struct {
	Spec   Spec
	DevCfg gpu.Config
	// VRAMBytes is the device-memory budget (0 → DevCfg.VRAMBytes).
	VRAMBytes int64
	// KVBlockBytes is the KV-page granularity (0 → vram.DefaultBlockBytes).
	KVBlockBytes int64
	// MaxBatch caps the decode batch width (0 → 8).
	MaxBatch int
	// Continuous selects iteration-boundary batching: requests join and
	// retire between decode iterations. False selects launch-time (static)
	// batching: the batch is formed once, padded at its formation width,
	// and admits nobody until it fully drains — the baseline continuous
	// batching exists to beat.
	Continuous bool
	// FairnessThreshold is the Paella policy's deficit bound (0 → 10000).
	FairnessThreshold float64
	// ProfileRuns is the profiling repetition count (0 → 3).
	ProfileRuns int
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if err := out.Spec.Validate(); err != nil {
		return out, err
	}
	if out.VRAMBytes == 0 {
		out.VRAMBytes = out.DevCfg.VRAMBytes
	}
	if out.KVBlockBytes == 0 {
		out.KVBlockBytes = vram.DefaultBlockBytes
	}
	if out.MaxBatch <= 0 {
		out.MaxBatch = 8
	}
	if out.FairnessThreshold == 0 {
		out.FairnessThreshold = 10000
	}
	if out.ProfileRuns <= 0 {
		out.ProfileRuns = 3
	}
	if out.KVBlockBytes < out.Spec.KVBytesPerToken {
		return out, fmt.Errorf("llm %q: KV page (%d B) smaller than one token's KV (%d B)",
			out.Spec.Name, out.KVBlockBytes, out.Spec.KVBytesPerToken)
	}
	if out.VRAMBytes <= out.Spec.WeightBytes {
		return out, fmt.Errorf("llm %q: weights (%d B) leave no KV pool in %d B of VRAM",
			out.Spec.Name, out.Spec.WeightBytes, out.VRAMBytes)
	}
	return out, nil
}

// Compiled is a spec after the compiler's profiling pass: the two kernel
// templates plus the learned timing/batch-scaling profile the engine's
// scheduler estimates run on.
type Compiled struct {
	Cfg     Config
	Profile *compiler.Profile

	prefill gpu.KernelSpec // template; Blocks sized per request
	decode  gpu.KernelSpec
	// tokensPerPage is how many tokens' KV one vram block holds.
	tokensPerPage int

	prefillSpecs map[int]*gpu.KernelSpec // by block count
	decodeSpecs  map[int]*gpu.KernelSpec // by batch width
}

// CompileSpec runs the standard submission pipeline on the two-kernel LLM
// library: instrument, then profile on the target device so the engine
// knows mean kernel times and the decode kernel's batch-scaling α.
func CompileSpec(cfg Config) (*Compiled, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := cfg.Spec
	prefill := gpu.KernelSpec{
		Name:            PrefillKernel,
		Blocks:          pagesCeil(s.ProfilePromptTokens, s.PrefillTokensPerBlock),
		ThreadsPerBlock: s.PrefillThreads,
		RegsPerThread:   s.PrefillRegs,
		BlockDuration:   s.PrefillBlockTime,
	}
	decode := gpu.KernelSpec{
		Name:            DecodeKernel,
		Blocks:          s.DecodeBlocks,
		ThreadsPerBlock: s.DecodeThreads,
		RegsPerThread:   s.DecodeRegs,
		BlockDuration:   s.DecodeBlockTime,
	}
	m := &model.Model{
		Name:        s.Name,
		WeightBytes: int(s.WeightBytes),
		Kernels:     []*gpu.KernelSpec{&prefill, &decode},
		Seq:         []int{0, 1},
	}
	ins, err := compiler.Compile(m, compiler.DefaultConfig(), cfg.DevCfg, cfg.ProfileRuns)
	if err != nil {
		return nil, fmt.Errorf("llm %q: %w", s.Name, err)
	}
	return &Compiled{
		Cfg:           cfg,
		Profile:       ins.Profile,
		prefill:       prefill,
		decode:        decode,
		tokensPerPage: int(cfg.KVBlockBytes / s.KVBytesPerToken),
		prefillSpecs:  make(map[int]*gpu.KernelSpec),
		decodeSpecs:   make(map[int]*gpu.KernelSpec),
	}, nil
}

// MustCompileSpec is CompileSpec for known-good configurations.
func MustCompileSpec(cfg Config) *Compiled {
	c, err := CompileSpec(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// TokensPerPage returns how many tokens' KV state one page holds.
func (c *Compiled) TokensPerPage() int { return c.tokensPerPage }

// PagesFor returns the KV pages needed to hold the given token count.
func (c *Compiled) PagesFor(tokens int) int {
	return pagesCeil(tokens, c.tokensPerPage)
}

// PrefillSpec returns the prefill launch configuration for a prompt of the
// given token count (grid sized to the prompt, cached per block count).
func (c *Compiled) PrefillSpec(tokens int) *gpu.KernelSpec {
	blocks := pagesCeil(tokens, c.Cfg.Spec.PrefillTokensPerBlock)
	if k := c.prefillSpecs[blocks]; k != nil {
		return k
	}
	k := c.prefill
	k.Blocks = blocks
	c.prefillSpecs[blocks] = &k
	return &k
}

// DecodeSpec returns the n-way batched decode launch configuration, widened
// with the profiled per-block batch scale (cached per width).
func (c *Compiled) DecodeSpec(n int) *gpu.KernelSpec {
	if k := c.decodeSpecs[n]; k != nil {
		return k
	}
	k := c.decode.Batched(n, c.Profile.BatchScale(DecodeKernel, n))
	c.decodeSpecs[n] = k
	return k
}

// DecodeMean returns the profiled solo decode-iteration time. It feeds
// the SRPT estimates and the gateway's per-replica cost pricing.
func (c *Compiled) DecodeMean() sim.Time { return c.Profile.MeanTime(DecodeKernel) }

// PrefillMean returns the profiled prefill time for a representative
// Spec.ProfilePromptTokens-token prompt. It feeds the SRPT estimates and
// the gateway's per-replica cost pricing.
func (c *Compiled) PrefillMean() sim.Time { return c.Profile.MeanTime(PrefillKernel) }

func pagesCeil(n, per int) int {
	if per <= 0 {
		panic("llm: non-positive divisor")
	}
	return (n + per - 1) / per
}
