package llm

import (
	"errors"
	"fmt"

	"paella/internal/gpu"
	"paella/internal/metrics"
	"paella/internal/sched"
	"paella/internal/sim"
	"paella/internal/telemetry"
	"paella/internal/vram"
)

// ErrKVExhausted is the terminal paging failure: a sequence's KV demand can
// never be satisfied (it exceeds the device's whole KV pool), or no live
// work remains that could ever free the pages it is waiting for. The engine
// fails such requests instead of spinning the preemption machinery.
var ErrKVExhausted = errors.New("llm: KV demand exceeds device capacity")

// errKVStall is the retriable sibling: pages are unavailable right now but
// in-flight work will release some. Internal only — stalled sequences wait
// in place and are re-kicked on every completion.
var errKVStall = errors.New("llm: KV pages unavailable")

// Hardware-queue assignment: decode iterations and prefill passes ride
// separate queues so the two phases overlap on the device — which is
// exactly the prefill/decode interference that disaggregation removes.
const (
	decodeQueue  = 0
	prefillQueue = 1
)

// Request is one generative inference call: a prompt to prefill and a
// target number of output tokens to decode (sampled by the workload layer;
// the simulator knows the length up front, the scheduler must not exploit
// beyond what Paella's profile-based estimates would know).
type Request struct {
	ID     uint64
	Client int
	// Submit is when the client issued the call (for end-to-end metrics;
	// Admit is stamped by the engine).
	Submit sim.Time
	Prompt int
	Output int
	// Tenant identifies the workload owner for multi-tenant QoS accounting
	// (copied into the request's JobRecord; the PD front's admission
	// control keys on it). Empty means untenanted.
	Tenant string
	// Session groups turns of one conversation: the PD front's affinity
	// routing keeps a session on the replica holding its KV state. Zero
	// means sessionless.
	Session uint64
}

// Handoff carries a prefilled sequence between engines in a disaggregated
// prefill/decode deployment: the request plus its metrics record so far.
// The KV pages themselves are freed on the prefill device and re-reserved
// on the decode device after the transfer the caller models.
type Handoff struct {
	Req Request
	Rec metrics.JobRecord
}

// seqState is one request's lifetime inside an engine.
type seqState struct {
	req Request
	rec metrics.JobRecord
	tag string

	entry sched.JobEntry
	// generated counts decode tokens produced so far. Preemption keeps it:
	// recompute prefills prompt+generated tokens, then decoding resumes.
	generated int
	// pages is the KV pages currently reserved for this sequence.
	pages int
	// needCompute marks a sequence whose KV state must be (re)built by a
	// prefill pass — fresh arrivals and preemption victims. False for
	// handed-off sequences whose KV arrives over the interconnect.
	needCompute bool
	inPolicy    bool

	// Latency-anatomy stamps. prefillStart marks an in-flight prefill
	// pass (consumed into rec.PrefillNs at completion); stallStart marks a
	// paging preemption (consumed into rec.StallNs when the recompute
	// prefill launches, or at failure); readyAt marks the decode-loop join
	// (consumed into rec.BatchWaitNs at the sequence's first iteration —
	// the launch-time batching wait the continuous mode removes).
	prefillStart sim.Time
	stallStart   sim.Time
	readyAt      sim.Time
}

// Engine serves one generative model on one device: a FIFO prefill lane on
// its own hardware queue, and a continuously-batched decode loop that
// rebuilds its batch from the Paella policy at every iteration boundary.
type Engine struct {
	env    *sim.Env
	dev    *gpu.Device
	mem    *vram.Manager
	comp   *Compiled
	policy sched.Policy
	col    *metrics.Collector

	// prefillQ holds sequences awaiting KV pages and (when needCompute) a
	// prefill pass, FIFO. At most one prefill kernel is in flight.
	prefillQ    []*seqState
	prefillBusy bool
	// ready mirrors the policy's membership for deterministic victim scans.
	ready []*seqState
	// batch is the in-flight decode iteration's membership; group is the
	// static-mode resident batch (persists across iterations until drained).
	batch      []*seqState
	group      []*seqState
	groupWidth int
	decodeBusy bool

	maxKVPages  int
	inflight    int
	preemptions int
	iterations  uint64

	// mt is the optional windowed telemetry meter (internal/telemetry):
	// decode-batch width histogram, preemption counter, and per-request
	// records at retirement. KV-page and used-byte gauges ride the VRAM
	// manager's own meter attachment.
	mt        *telemetry.Meter
	mtDecodeW telemetry.MetricID
	mtPreempt telemetry.MetricID

	// HandoffPrefill, when set, makes this a prefill-only engine: a
	// completed prefill releases its local KV pages and hands the sequence
	// to the callback (the disaggregation front models the transfer and
	// calls AdmitDecoded on a decode engine).
	HandoffPrefill func(Handoff)
	// OnFinish observes every terminal record (after the collector).
	OnFinish func(metrics.JobRecord)
}

// NewEngine builds an engine on the environment: device, VRAM manager with
// the model's weights pinned resident, and a Paella policy for decode order.
func NewEngine(env *sim.Env, comp *Compiled, col *metrics.Collector) (*Engine, error) {
	cfg := comp.Cfg
	mem, err := vram.NewManager(vram.Config{CapacityBytes: cfg.VRAMBytes, BlockBytes: cfg.KVBlockBytes})
	if err != nil {
		return nil, err
	}
	name := cfg.Spec.Name + "/weights"
	if err := mem.Register(name, cfg.Spec.WeightBytes); err != nil {
		return nil, err
	}
	mem.Pin(name, env.Now())
	if cfg.Spec.WeightBytes > 0 {
		if err := mem.BeginLoad(name, env.Now()); err != nil {
			return nil, err
		}
		mem.FinishLoad(name, env.Now())
	}
	e := &Engine{
		env:        env,
		dev:        gpu.NewDevice(env, cfg.DevCfg, nil),
		mem:        mem,
		comp:       comp,
		policy:     sched.NewPaella(cfg.FairnessThreshold),
		col:        col,
		maxKVPages: int(cfg.VRAMBytes/cfg.KVBlockBytes) - mem.UsedBlocks(),
	}
	if e.maxKVPages <= 0 {
		return nil, fmt.Errorf("llm %q: weights leave no KV pages", cfg.Spec.Name)
	}
	if mt := telemetry.FromEnv(env); mt != nil {
		e.mt = mt
		e.mtDecodeW = mt.Histogram("llm/decode_width")
		e.mtPreempt = mt.Counter("llm/preemptions")
		mem.AttachMeter(mt)
	}
	return e, nil
}

// MustNewEngine is NewEngine for known-good configurations.
func MustNewEngine(env *sim.Env, comp *Compiled, col *metrics.Collector) *Engine {
	e, err := NewEngine(env, comp, col)
	if err != nil {
		panic(err)
	}
	return e
}

// Admit accepts a fresh request: it queues for KV pages and a prefill pass,
// then joins the decode loop (or the handoff callback, on a prefill-only
// engine).
func (e *Engine) Admit(req Request) {
	now := e.env.Now()
	s := &seqState{req: req, needCompute: true, tag: fmt.Sprintf("llm-%d", req.ID)}
	s.rec = metrics.JobRecord{
		ID: req.ID, Model: e.comp.Cfg.Spec.Name, Client: req.Client,
		Tenant: req.Tenant, Submit: req.Submit, Admit: now,
		PromptTokens: req.Prompt,
	}
	e.admit(s, now, e.comp.PrefillMean()+sim.Time(req.Output)*e.comp.DecodeMean())
}

// AdmitDecoded accepts a sequence prefilled elsewhere (disaggregated
// serving): its KV state arrives with the handoff, so it needs pages but no
// prefill pass before joining the decode loop.
func (e *Engine) AdmitDecoded(h Handoff) {
	now := e.env.Now()
	s := &seqState{req: h.Req, rec: h.Rec, tag: fmt.Sprintf("llm-%d", h.Req.ID)}
	e.admit(s, now, sim.Time(h.Req.Output)*e.comp.DecodeMean())
}

func (e *Engine) admit(s *seqState, now sim.Time, estimate sim.Time) {
	s.entry = sched.JobEntry{
		ID: s.req.ID, Client: s.req.Client, Arrival: now,
		Total: estimate, Remaining: estimate, Payload: s,
	}
	e.policy.JobAdmitted(s.req.Client)
	e.inflight++
	e.prefillQ = append(e.prefillQ, s)
	e.kickPrefill()
}

// kickPrefill drains the prefill queue head-first: reserve KV pages, then
// either launch the prefill kernel (needCompute) or go straight to the
// decode loop (handed-off KV). A head that cannot get pages stalls the
// queue — FIFO order is part of the determinism contract — unless no live
// work could ever free pages, which is terminal.
func (e *Engine) kickPrefill() {
	for len(e.prefillQ) > 0 {
		s := e.prefillQ[0]
		if s.needCompute && e.prefillBusy {
			return
		}
		tokens := s.req.Prompt + s.generated
		switch err := e.reserveFor(s, tokens, nil); {
		case err == nil:
		case errors.Is(err, ErrKVExhausted):
			e.prefillQ = e.prefillQ[1:]
			e.fail(s)
			continue
		default:
			if e.noProgressPossible() {
				e.prefillQ = e.prefillQ[1:]
				e.fail(s)
				continue
			}
			return
		}
		e.prefillQ = e.prefillQ[1:]
		if !s.needCompute {
			e.decodeReady(s)
			continue
		}
		e.prefillBusy = true
		now := e.env.Now()
		if s.stallStart > 0 {
			// Preemption stall ends where the recompute pass launches.
			s.rec.StallNs += now - s.stallStart
			s.stallStart = 0
		}
		s.prefillStart = now
		if s.rec.FirstDispatch == 0 {
			s.rec.FirstDispatch = now
		}
		e.policy.Dispatched(&s.entry)
		e.dev.Submit(prefillQueue, &gpu.Launch{
			Spec:       e.comp.PrefillSpec(tokens),
			JobTag:     s.tag,
			OnComplete: func() { e.prefillDone(s) },
		})
	}
}

// noProgressPossible reports whether nothing in flight or runnable could
// ever release KV pages — the stalled queue head would wait forever.
func (e *Engine) noProgressPossible() bool {
	return !e.decodeBusy && !e.prefillBusy && len(e.ready) == 0 && len(e.group) == 0
}

func (e *Engine) prefillDone(s *seqState) {
	e.prefillBusy = false
	now := e.env.Now()
	if s.prefillStart > 0 {
		s.rec.PrefillNs += now - s.prefillStart
		s.prefillStart = 0
	}
	if e.HandoffPrefill != nil {
		if s.pages > 0 {
			e.mem.ReleaseKV(s.pages, now)
			s.pages = 0
		}
		e.policy.JobFinished(s.req.Client)
		e.inflight--
		h := Handoff{Req: s.req, Rec: s.rec}
		e.kickPrefill()
		e.HandoffPrefill(h)
		return
	}
	e.decodeReady(s)
	e.kickPrefill()
}

func (e *Engine) decodeReady(s *seqState) {
	s.needCompute = false
	s.readyAt = e.env.Now()
	s.entry.Remaining = sim.Time(s.req.Output-s.generated) * e.comp.DecodeMean()
	e.addToPolicy(s)
	e.maybeIterate()
}

// maybeIterate forms and launches the next decode iteration. Continuous
// mode rebuilds the batch from the policy every iteration (joins and
// retirements at iteration boundaries); static mode forms a batch only
// when the previous one has fully drained and pads its launches at the
// formation width until then.
func (e *Engine) maybeIterate() {
	if e.decodeBusy {
		return
	}
	var members []*seqState
	width := 0
	if e.comp.Cfg.Continuous {
		for len(members) < e.comp.Cfg.MaxBatch {
			j := e.policy.Pick()
			if j == nil {
				break
			}
			s := j.Payload.(*seqState)
			e.removeFromPolicy(s)
			members = append(members, s)
		}
	} else {
		if len(e.group) == 0 {
			for len(e.group) < e.comp.Cfg.MaxBatch {
				j := e.policy.Pick()
				if j == nil {
					break
				}
				s := j.Payload.(*seqState)
				e.removeFromPolicy(s)
				e.group = append(e.group, s)
			}
			e.groupWidth = len(e.group)
		}
		members = append(members, e.group...)
		width = e.groupWidth
	}
	if len(members) == 0 {
		return
	}

	// Grow every member's KV by one token before launching. A member that
	// cannot grow even after preemption waits out this iteration; one whose
	// demand can never fit fails.
	var alive []*seqState
	for i := 0; i < len(members); i++ {
		s := members[i]
		if s == nil {
			continue
		}
		victims := func() *seqState {
			if v := e.readyVictim(); v != nil {
				return v
			}
			// Sacrifice a not-yet-grown member from the batch tail: the
			// SRPT-front member must make progress or the loop deadlocks
			// with every sequence holding pages and none able to grow.
			best, bi := (*seqState)(nil), -1
			for j := i + 1; j < len(members); j++ {
				m := members[j]
				if m == nil || m.pages == 0 {
					continue
				}
				if best == nil || worseThan(m, best) {
					best, bi = m, j
				}
			}
			if best != nil {
				members[bi] = nil
				e.dropFromGroup(best)
			}
			return best
		}
		switch err := e.reserveFor(s, s.req.Prompt+s.generated+1, victims); {
		case err == nil:
			alive = append(alive, s)
		case errors.Is(err, ErrKVExhausted):
			e.dropFromGroup(s)
			e.fail(s)
		default:
			// Stall: skip this iteration. Static members stay in the group;
			// continuous ones return to the policy to be re-picked.
			if e.comp.Cfg.Continuous {
				e.addToPolicy(s)
			}
		}
	}
	if len(alive) == 0 {
		return
	}
	if width == 0 {
		width = len(alive)
	}
	now := e.env.Now()
	entries := make([]*sched.JobEntry, len(alive))
	for i, s := range alive {
		entries[i] = &s.entry
		if s.rec.FirstDispatch == 0 {
			s.rec.FirstDispatch = now
		}
		if s.rec.FirstToken == 0 && s.readyAt > 0 {
			// Decode-loop join wait before the first token: under static
			// batching a latecomer sits here while the formed group drains
			// — the phase the TTFT win comes from.
			s.rec.BatchWaitNs += now - s.readyAt
		}
		s.readyAt = 0
		if width > s.rec.BatchSize {
			s.rec.BatchSize = width
		}
	}
	e.mt.Observe(e.mtDecodeW, now, float64(width))
	sched.BatchDispatched(e.policy, entries)
	e.batch = alive
	e.decodeBusy = true
	e.iterations++
	e.dev.Submit(decodeQueue, &gpu.Launch{
		Spec:       e.comp.DecodeSpec(width),
		JobTag:     DecodeKernel,
		OnComplete: e.iterDone,
	})
}

func (e *Engine) iterDone() {
	now := e.env.Now()
	e.decodeBusy = false
	batch := e.batch
	e.batch = nil
	for _, s := range batch {
		s.generated++
		if s.rec.FirstToken == 0 {
			s.rec.FirstToken = now
		}
		if s.generated >= s.req.Output {
			e.retire(s, now)
		} else if e.comp.Cfg.Continuous {
			s.entry.Remaining = sim.Time(s.req.Output-s.generated) * e.comp.DecodeMean()
			e.addToPolicy(s)
		}
	}
	e.kickPrefill()
	e.maybeIterate()
}

func (e *Engine) retire(s *seqState, now sim.Time) {
	s.rec.ExecDone, s.rec.Delivered = now, now
	s.rec.OutputTokens = s.generated
	if s.pages > 0 {
		e.mem.ReleaseKV(s.pages, now)
		s.pages = 0
	}
	e.dropFromGroup(s)
	e.policy.JobFinished(s.req.Client)
	e.inflight--
	e.col.Add(s.rec)
	e.mt.RecordJob(s.rec.Delivered, &s.rec)
	if e.OnFinish != nil {
		e.OnFinish(s.rec)
	}
}

func (e *Engine) fail(s *seqState) {
	now := e.env.Now()
	if s.stallStart > 0 {
		s.rec.StallNs += now - s.stallStart
		s.stallStart = 0
	}
	s.rec.Failed = true
	if s.rec.FailureReason == "" {
		s.rec.FailureReason = ErrKVExhausted.Error()
	}
	// Stamp ExecDone at the failure too: without it TPOT went negative for
	// failed sequences past their first token, and CommNs swallowed the
	// whole queue wait as "communication".
	s.rec.ExecDone = now
	s.rec.Delivered = now
	s.rec.OutputTokens = s.generated
	if s.pages > 0 {
		e.mem.ReleaseKV(s.pages, now)
		s.pages = 0
	}
	if s.inPolicy {
		e.removeFromPolicy(s)
	}
	e.dropFromGroup(s)
	e.policy.JobFinished(s.req.Client)
	e.inflight--
	e.col.Add(s.rec)
	e.mt.RecordJob(s.rec.Delivered, &s.rec)
	if e.OnFinish != nil {
		e.OnFinish(s.rec)
	}
}

// reserveFor grows s's KV reservation to cover the given token count,
// invoking victims (when non-nil) to free pages by preemption until the
// reservation fits. Partial progress is kept: a stalled sequence retains
// the pages it already holds and retries with the smaller deficit later.
func (e *Engine) reserveFor(s *seqState, tokens int, victims func() *seqState) error {
	target := e.comp.PagesFor(tokens)
	if target > e.maxKVPages {
		return ErrKVExhausted
	}
	need := target - s.pages
	if need <= 0 {
		return nil
	}
	for {
		if err := e.mem.ReserveKV(need, e.env.Now()); err == nil {
			s.pages = target
			return nil
		}
		if victims == nil {
			return errKVStall
		}
		v := victims()
		if v == nil {
			return errKVStall
		}
		e.preempt(v)
	}
}

// preempt evicts a sequence's KV pages and schedules it for recompute: the
// generated tokens are kept, so the re-prefill covers prompt+generated and
// decoding resumes where it stopped (vLLM's recompute-style preemption).
func (e *Engine) preempt(v *seqState) {
	if v.inPolicy {
		e.removeFromPolicy(v)
	}
	if v.pages > 0 {
		e.mem.ReleaseKV(v.pages, e.env.Now())
		v.pages = 0
	}
	v.needCompute = true
	v.rec.Preemptions++
	v.stallStart = e.env.Now()
	e.preemptions++
	e.mt.Add(e.mtPreempt, e.env.Now(), 1)
	e.prefillQ = append(e.prefillQ, v)
}

// readyVictim picks the preemption victim among policy-resident sequences:
// the one SRPT would serve last (max remaining, then max ID) — evicting the
// longest-remaining waiter costs the least expected progress.
func (e *Engine) readyVictim() *seqState {
	var best *seqState
	for _, s := range e.ready {
		if s.pages == 0 {
			continue
		}
		if best == nil || worseThan(s, best) {
			best = s
		}
	}
	return best
}

// worseThan orders preemption candidates: a is a better victim than b when
// it has more remaining work (ID-descending tiebreak for determinism).
func worseThan(a, b *seqState) bool {
	if a.entry.Remaining != b.entry.Remaining {
		return a.entry.Remaining > b.entry.Remaining
	}
	return a.req.ID > b.req.ID
}

func (e *Engine) addToPolicy(s *seqState) {
	e.policy.Add(&s.entry)
	s.inPolicy = true
	e.ready = append(e.ready, s)
}

func (e *Engine) removeFromPolicy(s *seqState) {
	e.policy.Remove(&s.entry)
	s.inPolicy = false
	for i, r := range e.ready {
		if r == s {
			e.ready = append(e.ready[:i], e.ready[i+1:]...)
			break
		}
	}
}

func (e *Engine) dropFromGroup(s *seqState) {
	for i, g := range e.group {
		if g == s {
			e.group = append(e.group[:i], e.group[i+1:]...)
			if len(e.group) == 0 {
				e.groupWidth = 0
			}
			return
		}
	}
}

// InFlight returns the number of admitted, unfinished sequences.
func (e *Engine) InFlight() int { return e.inflight }

// Preemptions returns how many KV preemption-by-recompute events occurred.
func (e *Engine) Preemptions() int { return e.preemptions }

// Iterations returns how many decode iterations were launched.
func (e *Engine) Iterations() uint64 { return e.iterations }

// Mem exposes the engine's VRAM manager (KV-page stats, invariants).
func (e *Engine) Mem() *vram.Manager { return e.mem }

// Device exposes the engine's simulated GPU.
func (e *Engine) Device() *gpu.Device { return e.dev }
