package cluster

import (
	"testing"

	"paella/internal/compiler"
	"paella/internal/core"
	"paella/internal/gateway"
	"paella/internal/gpu"
	"paella/internal/model"
	"paella/internal/sched"
	"paella/internal/sim"
	"paella/internal/vram"
)

func mkCluster(t *testing.T, b Balancer, devs ...gpu.Config) (*sim.Env, *Cluster) {
	t.Helper()
	env := sim.NewEnv()
	if len(devs) == 0 {
		devs = []gpu.Config{gpu.TeslaT4(), gpu.TeslaT4()}
	}
	c, err := New(env, devs, func() sched.Policy { return sched.NewPaella(10000) }, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterModel(model.TinyNet(), compiler.DefaultConfig(), 1); err != nil {
		t.Fatal(err)
	}
	return env, c
}

func TestClusterAllComplete(t *testing.T) {
	env, c := mkCluster(t, NewRoundRobin())
	conn := c.Connect()
	done := 0
	conn.OnComplete = func(uint64) { done++ }
	for i := 0; i < 40; i++ {
		id := uint64(i + 1)
		env.At(sim.Time(i)*20*sim.Microsecond, func() {
			conn.Submit(core.Request{ID: id, Model: "tinynet", Submit: env.Now()})
		})
	}
	env.Run()
	if done != 40 {
		t.Fatalf("completed %d of 40", done)
	}
	if c.Collector().Len() != 40 {
		t.Fatalf("merged collector has %d records", c.Collector().Len())
	}
}

func TestRoundRobinSpreads(t *testing.T) {
	env, c := mkCluster(t, NewRoundRobin())
	conn := c.Connect()
	counts := map[int]int{}
	for i := 0; i < 10; i++ {
		id := uint64(i + 1)
		env.At(0, func() {
			counts[conn.Submit(core.Request{ID: id, Model: "tinynet", Submit: 0})]++
		})
	}
	env.Run()
	if counts[0] != 5 || counts[1] != 5 {
		t.Fatalf("round robin spread = %v", counts)
	}
}

func TestLeastLoadedAvoidsBusyGPU(t *testing.T) {
	env, c := mkCluster(t, NewLeastLoaded())
	conn := c.Connect()
	// Pre-load GPU 0 through the balancer's own accounting.
	c.inflight[0] = 10
	picked := -1
	env.At(0, func() {
		picked = conn.Submit(core.Request{ID: 1, Model: "tinynet", Submit: 0})
	})
	env.Run()
	if picked != 1 {
		t.Fatalf("least-loaded picked GPU %d, want 1", picked)
	}
}

func TestLeastLoadedCapacityNormalized(t *testing.T) {
	// A big and a small GPU, equally idle: both are fine; load one job on
	// the big GPU — per-capacity load still favours the big one over a
	// tiny GPU with one job.
	big := gpu.TeslaT4() // 40 SMs
	small := gpu.TeslaT4()
	small.NumSMs = 4
	views := []GPUView{
		{Index: 0, InFlight: 2, Capacity: big.NumSMs * big.SM.MaxThreads},
		{Index: 1, InFlight: 1, Capacity: small.NumSMs * small.SM.MaxThreads},
	}
	if got := NewLeastLoaded().Pick(gateway.Request{Model: "m"}, views); got != 0 {
		t.Fatalf("capacity-normalized pick = %d, want 0 (big GPU)", got)
	}
}

func TestModelAffinityStable(t *testing.T) {
	b := NewModelAffinity(100) // never spill
	views := []GPUView{{Index: 0}, {Index: 1}, {Index: 2}}
	first := b.Pick(gateway.Request{Model: "resnet18"}, views)
	for i := 0; i < 5; i++ {
		if got := b.Pick(gateway.Request{Model: "resnet18"}, views); got != first {
			t.Fatalf("affinity not stable: %d then %d", first, got)
		}
	}
	// Different models should (for these names) not all land together.
	spread := map[int]bool{first: true}
	for _, m := range []string{"mobilenetv2", "inceptionv3", "densenet", "googlenet"} {
		spread[b.Pick(gateway.Request{Model: m}, views)] = true
	}
	if len(spread) < 2 {
		t.Fatal("affinity hashed every model to one GPU")
	}
}

func TestModelAffinitySpills(t *testing.T) {
	b := NewModelAffinity(1.5)
	views := []GPUView{{Index: 0, InFlight: 0, Capacity: 1}, {Index: 1, InFlight: 0, Capacity: 1}}
	home := b.Pick(gateway.Request{Model: "resnet18"}, views)
	// Overload the home GPU: with spill factor 1.5 and average load 5,
	// home load 10 > 7.5 ⇒ spill to the other GPU.
	views[home].InFlight = 10
	views[1-home].InFlight = 0
	if got := b.Pick(gateway.Request{Model: "resnet18"}, views); got == home {
		t.Fatalf("affinity did not spill from overloaded home %d", home)
	}
}

func TestHeterogeneousCluster(t *testing.T) {
	env, c := mkCluster(t, NewLeastLoaded(), gpu.TeslaT4(), gpu.TeslaP100())
	conn := c.Connect()
	done := 0
	conn.OnComplete = func(uint64) { done++ }
	for i := 0; i < 20; i++ {
		id := uint64(i + 1)
		env.At(sim.Time(i)*50*sim.Microsecond, func() {
			conn.Submit(core.Request{ID: id, Model: "tinynet", Submit: env.Now()})
		})
	}
	env.Run()
	if done != 20 {
		t.Fatalf("completed %d of 20", done)
	}
}

func TestEmptyClusterRejected(t *testing.T) {
	env := sim.NewEnv()
	if _, err := New(env, nil, func() sched.Policy { return sched.NewFIFO() }, NewRoundRobin()); err == nil {
		t.Fatal("empty cluster constructed")
	}
}

// TestClusterScalesThroughput: two GPUs drain a saturating burst in about
// half the time one GPU takes.
func TestClusterScalesThroughput(t *testing.T) {
	run := func(devs ...gpu.Config) sim.Time {
		env := sim.NewEnv()
		c, err := New(env, devs, func() sched.Policy { return sched.NewPaella(10000) }, NewLeastLoaded())
		if err != nil {
			t.Fatal(err)
		}
		m := model.Generate(model.Table2()[4]) // resnet50
		if err := c.RegisterModel(m, compiler.DefaultConfig(), 1); err != nil {
			t.Fatal(err)
		}
		conn := c.Connect()
		var last sim.Time
		done := 0
		conn.OnComplete = func(uint64) { done++; last = env.Now() }
		const jobs = 60
		for i := 0; i < jobs; i++ {
			id := uint64(i + 1)
			env.At(0, func() {
				conn.Submit(core.Request{ID: id, Model: m.Name, Submit: 0})
			})
		}
		env.Run()
		if done != jobs {
			t.Fatalf("completed %d of %d", done, jobs)
		}
		return last
	}
	one := run(gpu.TeslaT4())
	two := run(gpu.TeslaT4(), gpu.TeslaT4())
	ratio := float64(one) / float64(two)
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("2-GPU speedup = %.2f×, want ≈2×", ratio)
	}
}

// TestModelAffinityHeterogeneousNormalized: the spill check compares
// capacity-normalized loads. A big GPU carrying more raw jobs than the
// cluster average — but proportionally to its size — must not trigger a
// spill, while a genuinely overloaded small home must.
func TestModelAffinityHeterogeneousNormalized(t *testing.T) {
	b := NewModelAffinity(1.5)
	views := []GPUView{
		{Index: 0, Capacity: 10},
		{Index: 1, Capacity: 100},
	}
	home := b.Pick(gateway.Request{Model: "resnet18"}, views)

	// Load both GPUs to identical normalized load (0.4): raw counts differ
	// 10×, but neither is relatively overloaded, so the home sticks.
	views[0].InFlight = 4
	views[1].InFlight = 40
	if got := b.Pick(gateway.Request{Model: "resnet18"}, views); got != home {
		t.Fatalf("affinity spilled from proportionally-loaded home %d to %d", home, got)
	}

	// Now overload the home in normalized terms while keeping its raw
	// count below the other GPU's: only a normalized comparison spills.
	small, big := 0, 1
	if home == 1 {
		small, big = 1, 0
	}
	_ = small
	views[home].InFlight = views[home].Capacity // load 1.0
	views[big].InFlight = 0
	if home == 0 {
		// home is the small GPU: raw 10 vs 0 — both raw and normalized
		// comparisons would spill; make the other GPU raw-heavier so only
		// the normalized comparison does.
		views[1].InFlight = 20 // load 0.2
	}
	if got := b.Pick(gateway.Request{Model: "resnet18"}, views); got == home {
		t.Fatalf("affinity failed to spill from overloaded home %d (views %+v)", home, views)
	}
}

// TestResidencyAwarePickPrefersWarm: unit-level routing — warm beats cold
// regardless of load, loading beats cold, and the fallback handles
// all-cold.
func TestResidencyAwarePickPrefersWarm(t *testing.T) {
	b := NewResidencyAware(nil)
	views := []GPUView{
		{Index: 0, InFlight: 9, Capacity: 10, Warm: true},
		{Index: 1, InFlight: 0, Capacity: 10},
	}
	if got := b.Pick(gateway.Request{Model: "m"}, views); got != 0 {
		t.Fatalf("picked cold idle GPU %d over warm busy one", got)
	}
	// Two warm replicas: normalized load breaks the tie.
	views[1].Warm = true
	if got := b.Pick(gateway.Request{Model: "m"}, views); got != 1 {
		t.Fatalf("picked busier warm replica %d", got)
	}
	// No warm copy, one loading: join the in-flight load.
	views[0].Warm, views[1].Warm = false, false
	views[0].Loading = true
	if got := b.Pick(gateway.Request{Model: "m"}, views); got != 0 {
		t.Fatalf("did not join in-flight load, picked %d", got)
	}
	// All cold: fall back to least-loaded.
	views[0].Loading = false
	if got := b.Pick(gateway.Request{Model: "m"}, views); got != 1 {
		t.Fatalf("fallback picked %d, want least-loaded 1", got)
	}
}

// mkVRAMCluster builds a 2-GPU cluster whose dispatchers carry a VRAM
// budget, with two weighted models registered.
func mkVRAMCluster(t *testing.T, b Balancer, capacity int64) (*sim.Env, *Cluster) {
	t.Helper()
	env := sim.NewEnv()
	devs := []gpu.Config{gpu.TeslaT4(), gpu.TeslaT4()}
	c, err := NewWithConfig(env, devs, func(int, gpu.Config) core.Config {
		cfg := core.DefaultConfig(sched.NewPaella(10000))
		cfg.VRAM = &vram.Config{CapacityBytes: capacity, BlockBytes: 1 << 20}
		return cfg
	}, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"wa", "wb"} {
		m := model.TinyNet()
		m.Name = name
		m.WeightBytes = 24 << 20
		if err := c.RegisterModel(m, compiler.DefaultConfig(), 1); err != nil {
			t.Fatal(err)
		}
	}
	return env, c
}

// TestClusterResidencyRouting: after each model warms up on one GPU, the
// residency-aware balancer keeps routing it there — so the second wave of
// requests sees zero cold starts, where least-loaded routing would bounce
// models between GPUs and re-page weights.
func TestClusterResidencyRouting(t *testing.T) {
	// Round-robin fallback spreads cold models across GPUs; with the
	// default least-loaded fallback, two idle GPUs tie and every cold
	// model would land on GPU 0, evicting each other forever.
	env, c := mkVRAMCluster(t, NewResidencyAware(NewRoundRobin()), 32<<20)
	conn := c.Connect()
	done := 0
	conn.OnComplete = func(uint64) { done++ }
	models := []string{"wa", "wb"}
	for i := 0; i < 20; i++ {
		id := uint64(i + 1)
		m := models[i%2]
		env.At(sim.Time(i)*5*sim.Millisecond, func() {
			conn.Submit(core.Request{ID: id, Model: m, Submit: env.Now()})
		})
	}
	env.Run()
	if done != 20 {
		t.Fatalf("completed %d of 20", done)
	}
	cold := c.Collector().ColdStarts()
	if cold != 2 {
		t.Fatalf("cold starts = %d, want exactly 2 (one per model)", cold)
	}
	// Each GPU ended up the stable home of one model.
	var loads uint64
	for i := 0; i < c.Size(); i++ {
		loads += c.Dispatcher(i).VRAM().Stats().Loads
	}
	if loads != 2 {
		t.Fatalf("total weight loads = %d, want 2", loads)
	}
}

// TestCrashFailover: crashing one replica mid-run moves its pending
// requests to the survivor; completions plus typed failures account for
// every submission, and new submissions avoid the dead replica.
func TestCrashFailover(t *testing.T) {
	env, c := mkCluster(t, NewRoundRobin())
	conn := c.Connect()
	completed, failed := 0, 0
	conn.OnComplete = func(uint64) { completed++ }
	conn.OnFailed = func(uint64, error) { failed++ }
	submitted := 0
	for i := 0; i < 60; i++ {
		id := uint64(i + 1)
		env.At(sim.Time(i)*10*sim.Microsecond, func() {
			if conn.Submit(core.Request{ID: id, Model: "tinynet", Submit: env.Now()}) >= 0 {
				submitted++
			}
		})
	}
	env.At(150*sim.Microsecond, func() { c.Crash(0) })
	var lateGPU int
	env.At(200*sim.Microsecond, func() {
		lateGPU = conn.Submit(core.Request{ID: 1000, Model: "tinynet", Submit: env.Now()})
		if lateGPU >= 0 {
			submitted++
		}
	})
	env.Run()

	if !c.Alive(1) || c.Alive(0) {
		t.Fatalf("liveness after crash: gpu0=%v gpu1=%v", c.Alive(0), c.Alive(1))
	}
	if c.LiveReplicas() != 1 || c.Crashes() != 1 {
		t.Fatalf("LiveReplicas=%d Crashes=%d, want 1/1", c.LiveReplicas(), c.Crashes())
	}
	if lateGPU != 1 {
		t.Fatalf("post-crash submission routed to GPU %d, want survivor 1", lateGPU)
	}
	if completed+failed != submitted {
		t.Fatalf("conservation: %d completed + %d failed != %d submitted",
			completed, failed, submitted)
	}
	if completed == 0 {
		t.Fatal("nothing completed after failover")
	}
}

// TestCrashAllReplicas: with every replica dead, Submit reports no target
// and pending work fails with ErrReplicaCrashed rather than hanging.
func TestCrashAllReplicas(t *testing.T) {
	env, c := mkCluster(t, NewRoundRobin())
	conn := c.Connect()
	var lastErr error
	failed := 0
	conn.OnFailed = func(_ uint64, err error) { failed++; lastErr = err }
	for i := 0; i < 8; i++ {
		id := uint64(i + 1)
		env.At(0, func() {
			conn.Submit(core.Request{ID: id, Model: "tinynet", Submit: env.Now()})
		})
	}
	env.At(5*sim.Microsecond, func() { c.Crash(0); c.Crash(1) })
	rejected := false
	env.At(10*sim.Microsecond, func() {
		rejected = conn.Submit(core.Request{ID: 99, Model: "tinynet", Submit: env.Now()}) < 0
	})
	env.Run()

	if !rejected {
		t.Fatal("Submit found a replica on a fully-dead cluster")
	}
	if failed == 0 || lastErr != ErrReplicaCrashed {
		t.Fatalf("pending work: failed=%d lastErr=%v, want ErrReplicaCrashed", failed, lastErr)
	}
	if c.LiveReplicas() != 0 {
		t.Fatalf("LiveReplicas=%d, want 0", c.LiveReplicas())
	}
}
