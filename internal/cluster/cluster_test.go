package cluster

import (
	"testing"

	"paella/internal/compiler"
	"paella/internal/core"
	"paella/internal/gpu"
	"paella/internal/model"
	"paella/internal/sched"
	"paella/internal/sim"
)

func mkCluster(t *testing.T, b Balancer, devs ...gpu.Config) (*sim.Env, *Cluster) {
	t.Helper()
	env := sim.NewEnv()
	if len(devs) == 0 {
		devs = []gpu.Config{gpu.TeslaT4(), gpu.TeslaT4()}
	}
	c, err := New(env, devs, func() sched.Policy { return sched.NewPaella(10000) }, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterModel(model.TinyNet(), compiler.DefaultConfig(), 1); err != nil {
		t.Fatal(err)
	}
	return env, c
}

func TestClusterAllComplete(t *testing.T) {
	env, c := mkCluster(t, NewRoundRobin())
	conn := c.Connect()
	done := 0
	conn.OnComplete = func(uint64) { done++ }
	for i := 0; i < 40; i++ {
		id := uint64(i + 1)
		env.At(sim.Time(i)*20*sim.Microsecond, func() {
			conn.Submit(core.Request{ID: id, Model: "tinynet", Submit: env.Now()})
		})
	}
	env.Run()
	if done != 40 {
		t.Fatalf("completed %d of 40", done)
	}
	if c.Collector().Len() != 40 {
		t.Fatalf("merged collector has %d records", c.Collector().Len())
	}
}

func TestRoundRobinSpreads(t *testing.T) {
	env, c := mkCluster(t, NewRoundRobin())
	conn := c.Connect()
	counts := map[int]int{}
	for i := 0; i < 10; i++ {
		id := uint64(i + 1)
		env.At(0, func() {
			counts[conn.Submit(core.Request{ID: id, Model: "tinynet", Submit: 0})]++
		})
	}
	env.Run()
	if counts[0] != 5 || counts[1] != 5 {
		t.Fatalf("round robin spread = %v", counts)
	}
}

func TestLeastLoadedAvoidsBusyGPU(t *testing.T) {
	env, c := mkCluster(t, NewLeastLoaded())
	conn := c.Connect()
	// Pre-load GPU 0 through the balancer's own accounting.
	c.inflight[0] = 10
	picked := -1
	env.At(0, func() {
		picked = conn.Submit(core.Request{ID: 1, Model: "tinynet", Submit: 0})
	})
	env.Run()
	if picked != 1 {
		t.Fatalf("least-loaded picked GPU %d, want 1", picked)
	}
}

func TestLeastLoadedCapacityNormalized(t *testing.T) {
	// A big and a small GPU, equally idle: both are fine; load one job on
	// the big GPU — per-capacity load still favours the big one over a
	// tiny GPU with one job.
	big := gpu.TeslaT4() // 40 SMs
	small := gpu.TeslaT4()
	small.NumSMs = 4
	views := []GPUView{
		{Index: 0, InFlight: 2, Capacity: big.NumSMs * big.SM.MaxThreads},
		{Index: 1, InFlight: 1, Capacity: small.NumSMs * small.SM.MaxThreads},
	}
	if got := NewLeastLoaded().Pick("m", views); got != 0 {
		t.Fatalf("capacity-normalized pick = %d, want 0 (big GPU)", got)
	}
}

func TestModelAffinityStable(t *testing.T) {
	b := NewModelAffinity(100) // never spill
	views := []GPUView{{Index: 0}, {Index: 1}, {Index: 2}}
	first := b.Pick("resnet18", views)
	for i := 0; i < 5; i++ {
		if got := b.Pick("resnet18", views); got != first {
			t.Fatalf("affinity not stable: %d then %d", first, got)
		}
	}
	// Different models should (for these names) not all land together.
	spread := map[int]bool{first: true}
	for _, m := range []string{"mobilenetv2", "inceptionv3", "densenet", "googlenet"} {
		spread[b.Pick(m, views)] = true
	}
	if len(spread) < 2 {
		t.Fatal("affinity hashed every model to one GPU")
	}
}

func TestModelAffinitySpills(t *testing.T) {
	b := NewModelAffinity(1.5)
	views := []GPUView{{Index: 0, InFlight: 0, Capacity: 1}, {Index: 1, InFlight: 0, Capacity: 1}}
	home := b.Pick("resnet18", views)
	// Overload the home GPU: with spill factor 1.5 and average load 5,
	// home load 10 > 7.5 ⇒ spill to the other GPU.
	views[home].InFlight = 10
	views[1-home].InFlight = 0
	if got := b.Pick("resnet18", views); got == home {
		t.Fatalf("affinity did not spill from overloaded home %d", home)
	}
}

func TestHeterogeneousCluster(t *testing.T) {
	env, c := mkCluster(t, NewLeastLoaded(), gpu.TeslaT4(), gpu.TeslaP100())
	conn := c.Connect()
	done := 0
	conn.OnComplete = func(uint64) { done++ }
	for i := 0; i < 20; i++ {
		id := uint64(i + 1)
		env.At(sim.Time(i)*50*sim.Microsecond, func() {
			conn.Submit(core.Request{ID: id, Model: "tinynet", Submit: env.Now()})
		})
	}
	env.Run()
	if done != 20 {
		t.Fatalf("completed %d of 20", done)
	}
}

func TestEmptyClusterRejected(t *testing.T) {
	env := sim.NewEnv()
	if _, err := New(env, nil, func() sched.Policy { return sched.NewFIFO() }, NewRoundRobin()); err == nil {
		t.Fatal("empty cluster constructed")
	}
}

// TestClusterScalesThroughput: two GPUs drain a saturating burst in about
// half the time one GPU takes.
func TestClusterScalesThroughput(t *testing.T) {
	run := func(devs ...gpu.Config) sim.Time {
		env := sim.NewEnv()
		c, err := New(env, devs, func() sched.Policy { return sched.NewPaella(10000) }, NewLeastLoaded())
		if err != nil {
			t.Fatal(err)
		}
		m := model.Generate(model.Table2()[4]) // resnet50
		if err := c.RegisterModel(m, compiler.DefaultConfig(), 1); err != nil {
			t.Fatal(err)
		}
		conn := c.Connect()
		var last sim.Time
		done := 0
		conn.OnComplete = func(uint64) { done++; last = env.Now() }
		const jobs = 60
		for i := 0; i < jobs; i++ {
			id := uint64(i + 1)
			env.At(0, func() {
				conn.Submit(core.Request{ID: id, Model: m.Name, Submit: 0})
			})
		}
		env.Run()
		if done != jobs {
			t.Fatalf("completed %d of %d", done, jobs)
		}
		return last
	}
	one := run(gpu.TeslaT4())
	two := run(gpu.TeslaT4(), gpu.TeslaT4())
	ratio := float64(one) / float64(two)
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("2-GPU speedup = %.2f×, want ≈2×", ratio)
	}
}
