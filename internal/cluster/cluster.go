// Package cluster fronts multiple independent Paella instances — one
// dispatcher per GPU — with a cluster-level balancer. The paper's §8 notes
// that cluster-level scheduling composes with Paella through the standard
// hierarchical-scheduling literature; this package provides that hook: a
// request is routed to a GPU by a pluggable Balancer, then scheduled on
// that GPU by the full Paella machinery.
package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"

	"paella/internal/compiler"
	"paella/internal/core"
	"paella/internal/gpu"
	"paella/internal/metrics"
	"paella/internal/model"
	"paella/internal/sched"
	"paella/internal/sim"
	"paella/internal/trace"
	"paella/internal/vram"
)

// ErrReplicaCrashed is the typed failure delivered through Conn.OnFailed
// when a request's replica crashed and no live replica remained to fail
// over to (or the failover submit could not be placed).
var ErrReplicaCrashed = errors.New("cluster: replica crashed, failover impossible")

// GPUView is the balancer's read-only view of one GPU's load.
type GPUView struct {
	// Index identifies the GPU within the cluster.
	Index int
	// InFlight is the number of admitted-but-unfinished jobs.
	InFlight int
	// Capacity is the GPU's thread-slot count (for heterogeneous
	// clusters).
	Capacity int
	// Warm reports whether the GPU holds the current request's model
	// weights resident in device memory; Loading, whether they are being
	// paged in. Both false when the GPU runs without a VRAM budget
	// (everything is implicitly warm — Submit then sets Warm).
	Warm    bool
	Loading bool
}

// loadOf returns the view's capacity-normalized load.
func (g GPUView) loadOf() float64 {
	cap := float64(g.Capacity)
	if cap <= 0 {
		cap = 1
	}
	return float64(g.InFlight) / cap
}

// Balancer routes a request to a GPU.
type Balancer interface {
	// Name returns the balancer's short name.
	Name() string
	// Pick selects the target GPU for a request to the named model.
	Pick(modelName string, gpus []GPUView) int
}

// roundRobin cycles through GPUs regardless of load.
type roundRobin struct{ next int }

// NewRoundRobin returns a load-oblivious rotating balancer.
func NewRoundRobin() Balancer { return &roundRobin{} }

func (b *roundRobin) Name() string { return "round-robin" }

func (b *roundRobin) Pick(_ string, gpus []GPUView) int {
	i := b.next % len(gpus)
	b.next++
	return i
}

// leastLoaded picks the GPU with the fewest in-flight jobs per unit of
// capacity.
type leastLoaded struct{}

// NewLeastLoaded returns a capacity-normalized least-outstanding balancer.
func NewLeastLoaded() Balancer { return leastLoaded{} }

func (leastLoaded) Name() string { return "least-loaded" }

func (leastLoaded) Pick(_ string, gpus []GPUView) int {
	best, bestLoad := 0, -1.0
	for _, g := range gpus {
		load := g.loadOf()
		if bestLoad < 0 || load < bestLoad {
			best, bestLoad = g.Index, load
		}
	}
	return best
}

// modelAffinity hashes each model onto a home GPU (maximizing warm-model
// locality, as real clusters do to avoid reloading weights), spilling to
// the least-loaded GPU when the home is overloaded beyond the spill
// factor.
type modelAffinity struct {
	spill float64
}

// NewModelAffinity returns an affinity balancer that spills when the home
// GPU carries more than spillFactor× the cluster-average load.
func NewModelAffinity(spillFactor float64) Balancer {
	if spillFactor <= 0 {
		spillFactor = 2
	}
	return &modelAffinity{spill: spillFactor}
}

func (b *modelAffinity) Name() string { return "model-affinity" }

func (b *modelAffinity) Pick(modelName string, gpus []GPUView) int {
	h := fnv.New32a()
	h.Write([]byte(modelName))
	home := int(h.Sum32()) % len(gpus)
	if home < 0 {
		home += len(gpus)
	}
	// Compare capacity-normalized loads: on a heterogeneous cluster a big
	// GPU legitimately carries more raw in-flight jobs than a small one,
	// and raw counts would make the affinity balancer spill off (or stick
	// to) the wrong GPUs.
	total := 0.0
	for _, g := range gpus {
		total += g.loadOf()
	}
	avg := total / float64(len(gpus))
	if avg > 0 && gpus[home].loadOf() > b.spill*avg {
		return leastLoaded{}.Pick(modelName, gpus)
	}
	return home
}

// residencyAware routes to a GPU that already holds the model's weights —
// first preferring resident copies, then in-flight loads (the weights are
// already on the wire; joining them avoids a duplicate multi-hundred-MB
// transfer) — falling back to the wrapped balancer when no GPU has the
// model. Within each preference tier ties break by capacity-normalized
// load, so a hot model still spreads across its warm replicas.
type residencyAware struct {
	fallback Balancer
}

// NewResidencyAware returns the residency-aware balancer; a nil fallback
// defaults to least-loaded.
func NewResidencyAware(fallback Balancer) Balancer {
	if fallback == nil {
		fallback = NewLeastLoaded()
	}
	return &residencyAware{fallback: fallback}
}

func (b *residencyAware) Name() string { return "residency-aware" }

func (b *residencyAware) Pick(modelName string, gpus []GPUView) int {
	if g := pickLeastLoadedWhere(gpus, func(g GPUView) bool { return g.Warm }); g >= 0 {
		return g
	}
	if g := pickLeastLoadedWhere(gpus, func(g GPUView) bool { return g.Loading }); g >= 0 {
		return g
	}
	return b.fallback.Pick(modelName, gpus)
}

// pickLeastLoadedWhere returns the least-loaded GPU satisfying ok, or -1.
func pickLeastLoadedWhere(gpus []GPUView, ok func(GPUView) bool) int {
	best, bestLoad := -1, 0.0
	for _, g := range gpus {
		if !ok(g) {
			continue
		}
		load := g.loadOf()
		if best < 0 || load < bestLoad {
			best, bestLoad = g.Index, load
		}
	}
	return best
}

// Cluster is a set of Paella instances behind one balancer.
type Cluster struct {
	env *sim.Env
	// world is non-nil when the cluster runs on the conservative-window
	// engine: each dispatcher lives on its own shard Env (shard index ==
	// replica index), env is the world's control Env, and all cross-replica
	// work — routing, failover, terminal delivery — executes as control
	// events with the shards parked at a barrier.
	world    *sim.World
	disps    []*core.Dispatcher
	balancer Balancer
	views    []GPUView
	// inflight counts requests routed to each GPU and not yet completed —
	// maintained at the balancer, where the routing decision is made
	// (backend admission counters lag by the channel latency).
	inflight []int
	// alive marks replicas that have not crashed; the balancer only ever
	// sees live replicas. conns tracks every cluster-level connection for
	// crash failover.
	alive   []bool
	crashes int
	conns   []*Conn

	// rec is the structured tracing recorder (nil = disabled); routing
	// decisions are instants on routeTrack.
	rec        *trace.Recorder
	routeTrack trace.TrackID
}

// New builds a cluster with one dispatcher per device configuration
// (possibly heterogeneous). Each dispatcher gets a fresh policy from
// mkPolicy.
func New(env *sim.Env, devs []gpu.Config, mkPolicy func() sched.Policy, b Balancer) (*Cluster, error) {
	return NewWithConfig(env, devs, func(int, gpu.Config) core.Config {
		return core.DefaultConfig(mkPolicy())
	}, b)
}

// NewWithConfig builds a cluster with a caller-supplied dispatcher
// configuration per device — the hook for per-GPU VRAM budgets, ablation
// modes, or tuned dispatcher costs. mkCfg is called once per device with
// its index and configuration.
func NewWithConfig(env *sim.Env, devs []gpu.Config, mkCfg func(i int, dev gpu.Config) core.Config, b Balancer) (*Cluster, error) {
	return build(env, nil, devs, mkCfg, b, nil)
}

// NewWorld builds a cluster on a sim.World: each replica (dispatcher, GPU,
// cudart/PCIe link, VRAM state) is placed on its own shard Env, so replica
// windows can execute concurrently while routing, failover, and terminal
// delivery serialize on the control Env. Request generators and fault
// injectors must schedule on w.Ctrl(). The world must have no shards yet.
func NewWorld(w *sim.World, devs []gpu.Config, mkPolicy func() sched.Policy, b Balancer) (*Cluster, error) {
	return NewWorldWithConfig(w, devs, func(int, gpu.Config) core.Config {
		return core.DefaultConfig(mkPolicy())
	}, b, nil)
}

// NewWorldWithConfig is NewWorld with a per-device dispatcher configuration
// and an optional setup hook invoked with each replica's shard Env before
// the dispatcher is built on it (e.g. to attach a per-replica trace
// recorder).
func NewWorldWithConfig(w *sim.World, devs []gpu.Config, mkCfg func(i int, dev gpu.Config) core.Config, b Balancer, setup func(i int, shard *sim.Env)) (*Cluster, error) {
	if w.NumShards() != 0 {
		return nil, fmt.Errorf("cluster: world already has %d shards", w.NumShards())
	}
	return build(w.Ctrl(), w, devs, mkCfg, b, setup)
}

func build(env *sim.Env, w *sim.World, devs []gpu.Config, mkCfg func(i int, dev gpu.Config) core.Config, b Balancer, setup func(i int, shard *sim.Env)) (*Cluster, error) {
	if len(devs) == 0 {
		return nil, fmt.Errorf("cluster: no devices")
	}
	c := &Cluster{env: env, world: w, balancer: b, inflight: make([]int, len(devs)), alive: make([]bool, len(devs))}
	for i := range c.alive {
		c.alive[i] = true
	}
	if rec := trace.FromEnv(env); rec != nil {
		c.rec = rec
		c.routeTrack = rec.Thread(rec.Process("cluster"), "route")
	}
	for i, dev := range devs {
		denv := env
		if w != nil {
			denv = w.AddShard()
			if setup != nil {
				setup(i, denv)
			}
		}
		d := core.NewWithDevice(denv, dev, mkCfg(i, dev))
		d.Start()
		c.disps = append(c.disps, d)
		c.views = append(c.views, GPUView{
			Index:    i,
			Capacity: dev.NumSMs * dev.SM.MaxThreads,
		})
	}
	return c, nil
}

// World returns the conservative-window engine the cluster runs on, or nil
// when it runs on a single serial Env.
func (c *Cluster) World() *sim.World { return c.world }

// Size returns the number of GPUs.
func (c *Cluster) Size() int { return len(c.disps) }

// Dispatcher returns the i-th GPU's dispatcher.
func (c *Cluster) Dispatcher(i int) *core.Dispatcher { return c.disps[i] }

// RegisterModel compiles the model per device configuration and registers
// it everywhere (heterogeneous clusters profile separately per GPU).
func (c *Cluster) RegisterModel(m *model.Model, cfg compiler.Config, profileRuns int) error {
	for _, d := range c.disps {
		ins, err := compiler.Compile(m, cfg, d.Device().Config(), profileRuns)
		if err != nil {
			return err
		}
		if err := d.RegisterModel(ins); err != nil {
			return err
		}
	}
	return nil
}

// Conn is a client connection spanning the whole cluster: one shared
// memory region per GPU, with completions funneled to a single callback.
// The connection tracks where each outstanding request was routed so a
// replica crash can fail pending requests over to the survivors; late
// events from a crashed-but-still-draining replica are deduplicated (first
// terminal outcome wins).
type Conn struct {
	cluster *Cluster
	conns   []*core.ClientConn
	// pending maps each outstanding request to its current route (and keeps
	// the original request for failover re-submission).
	pending map[uint64]route
	// order lists outstanding request ids in submission order. Failover
	// walks it so crashed requests re-enter the balancer in the order they
	// were submitted — an explicit insertion-ordered structure rather than
	// map iteration (nondeterministic) or an id sort (wrong order if ids
	// are not monotone). Entries are removed lazily: ids no longer pending
	// (or re-routed since) are skipped and periodically compacted away.
	order []uint64

	// OnComplete receives every finished request id, whichever GPU served
	// it.
	OnComplete func(reqID uint64)
	// OnFailed receives every request id that terminated with a typed error
	// (dispatcher-side failures pass through; ErrReplicaCrashed when
	// failover was impossible).
	OnFailed func(reqID uint64, err error)
}

type route struct {
	gpu int
	req core.Request
}

// Connect attaches a client to every GPU in the cluster.
func (c *Cluster) Connect() *Conn {
	cn := &Conn{cluster: c, pending: make(map[uint64]route)}
	for g, d := range c.disps {
		g := g
		conn := d.Connect()
		if w := c.world; w != nil {
			// The dispatcher's callbacks fire as replica-shard events;
			// terminal touches cluster-wide state (pending, inflight, the
			// user callbacks), so it must cross to the control timeline.
			// Post stamps the true delivery time and the barrier replays
			// posts in canonical order, keeping runs bit-identical whether
			// shards executed serially or in parallel.
			conn.OnComplete = func(id uint64) {
				w.Post(g, func() { cn.terminal(g, id, nil) })
			}
			conn.OnFailed = func(id uint64, err error) {
				w.Post(g, func() { cn.terminal(g, id, err) })
			}
		} else {
			conn.OnComplete = func(id uint64) { cn.terminal(g, id, nil) }
			conn.OnFailed = func(id uint64, err error) { cn.terminal(g, id, err) }
		}
		cn.conns = append(cn.conns, conn)
	}
	c.conns = append(c.conns, cn)
	return cn
}

// terminal folds one replica's completion or typed failure into the
// connection. Events from a GPU the request is no longer routed to (a
// crashed replica draining, or a duplicate) are dropped.
func (cn *Conn) terminal(g int, id uint64, err error) {
	rt, ok := cn.pending[id]
	if !ok || rt.gpu != g {
		return
	}
	delete(cn.pending, id)
	cn.cluster.inflight[g]--
	if err != nil {
		if cn.OnFailed != nil {
			cn.OnFailed(id, err)
		}
		return
	}
	if cn.OnComplete != nil {
		cn.OnComplete(id)
	}
}

// Submit routes the request through the balancer to one live GPU. It
// returns the chosen GPU index, or -1 if that GPU's ring was full or no
// live replica remains.
func (cn *Conn) Submit(req core.Request) int {
	c := cn.cluster
	// The balancer only sees live replicas. Its contract returns either a
	// position in the slice it was given or that element's Index field, so
	// the compacted slice renumbers Index to its own positions and liveIdx
	// maps the pick back to the real GPU.
	views := c.views[:0:0]
	var liveIdx []int
	for i := range c.disps {
		if !c.alive[i] {
			continue
		}
		v := GPUView{
			Index:    len(views),
			InFlight: c.inflight[i],
			Capacity: c.views[i].Capacity,
		}
		v.Warm, v.Loading = c.residency(i, req.Model)
		views = append(views, v)
		liveIdx = append(liveIdx, i)
	}
	if len(views) == 0 {
		return -1
	}
	pick := c.balancer.Pick(req.Model, views)
	if pick < 0 || pick >= len(views) {
		panic(fmt.Sprintf("cluster: balancer %q picked GPU %d of %d", c.balancer.Name(), pick, len(views)))
	}
	g := liveIdx[pick]
	if c.rec != nil {
		c.rec.InstantArgs(c.routeTrack, req.Model, "route", c.env.Now(),
			trace.Int("gpu", int64(g)),
			trace.Str("balancer", c.balancer.Name()),
			trace.Bool("warm", views[pick].Warm),
			trace.Bool("loading", views[pick].Loading))
	}
	orig := req
	req.Client = cn.conns[g].ID
	if !cn.conns[g].Submit(req) {
		return -1
	}
	cn.pending[req.ID] = route{gpu: g, req: orig}
	cn.order = append(cn.order, req.ID)
	if len(cn.order) > 4*len(cn.pending)+16 {
		cn.compactOrder()
	}
	c.inflight[g]++
	return g
}

// compactOrder drops order entries for requests that have terminated,
// keeping the first (original-submission) occurrence of each pending id.
func (cn *Conn) compactOrder() {
	kept := cn.order[:0]
	seen := make(map[uint64]bool, len(cn.pending))
	for _, id := range cn.order {
		if _, ok := cn.pending[id]; ok && !seen[id] {
			seen[id] = true
			kept = append(kept, id)
		}
	}
	cn.order = kept
}

// Crash kills replica i (fault injection: the whole serving process died).
// The replica's dispatcher loop stops, the balancer stops routing to it,
// and every connection's requests pending on it fail over to the surviving
// replicas — re-entering the balancer with their original submit times, so
// recovery latency shows up in JCT. When no live replica remains, pending
// requests terminate with ErrReplicaCrashed through Conn.OnFailed. Late
// completions from the crashed replica's drained pipeline are ignored.
func (c *Cluster) Crash(i int) {
	if !c.alive[i] {
		return
	}
	c.alive[i] = false
	c.crashes++
	c.disps[i].Stop()
	if c.rec != nil {
		c.rec.InstantArgs(c.routeTrack, "replica", "crash", c.env.Now(),
			trace.Int("gpu", int64(i)), trace.Int("live", int64(c.LiveReplicas())))
	}
	for _, cn := range c.conns {
		cn.failover(i)
	}
}

// failover re-routes the connection's requests pending on crashed GPU g, in
// submission order (via the insertion-ordered id list — never map
// iteration, whose order varies run to run).
func (cn *Conn) failover(g int) {
	var ids []uint64
	for _, id := range cn.order {
		if rt, ok := cn.pending[id]; ok && rt.gpu == g {
			ids = append(ids, id)
		}
	}
	for _, id := range ids {
		rt, ok := cn.pending[id]
		if !ok || rt.gpu != g {
			// A duplicate order entry for an id that was already failed
			// over (and is now routed elsewhere, or terminated).
			continue
		}
		delete(cn.pending, id)
		cn.cluster.inflight[g]--
		if cn.Submit(rt.req) < 0 {
			if cn.OnFailed != nil {
				cn.OnFailed(id, ErrReplicaCrashed)
			}
		}
	}
}

// Alive reports whether replica i has not crashed.
func (c *Cluster) Alive(i int) bool { return c.alive[i] }

// LiveReplicas returns the number of replicas still alive.
func (c *Cluster) LiveReplicas() int {
	n := 0
	for _, a := range c.alive {
		if a {
			n++
		}
	}
	return n
}

// Crashes returns how many replicas have been crashed.
func (c *Cluster) Crashes() int { return c.crashes }

// residency classifies GPU i's copy of the named model's weights. A GPU
// without a VRAM budget holds everything, so it reports warm.
func (c *Cluster) residency(i int, modelName string) (warm, loading bool) {
	mgr := c.disps[i].VRAM()
	if mgr == nil || !mgr.Registered(modelName) {
		return true, false
	}
	switch mgr.State(modelName) {
	case vram.Resident:
		return true, false
	case vram.Loading:
		return false, true
	default:
		return false, false
	}
}

// Collector returns a merged view of all GPUs' completion records.
func (c *Cluster) Collector() *metrics.Collector {
	merged := metrics.NewCollector()
	for _, d := range c.disps {
		for _, r := range d.Collector().Records() {
			merged.Add(r)
		}
	}
	return merged
}
