// Package cluster fronts multiple independent Paella instances — one
// dispatcher per GPU — with a cluster-level routing layer. The paper's §8
// notes that cluster-level scheduling composes with Paella through the
// standard hierarchical-scheduling literature; this package provides that
// hook: a request is admitted and routed to a GPU by an internal/gateway
// policy (predicted-latency, affinity, or the classic load heuristics),
// then scheduled on that GPU by the full Paella machinery. Per-tenant
// token-bucket admission control (gateway.Admission) sheds excess traffic
// at the front door with a typed error before it can queue behind anyone
// else's requests.
package cluster

import (
	"errors"
	"fmt"

	"paella/internal/compiler"
	"paella/internal/core"
	"paella/internal/cudart"
	"paella/internal/gateway"
	"paella/internal/gpu"
	"paella/internal/metrics"
	"paella/internal/model"
	"paella/internal/sched"
	"paella/internal/sim"
	"paella/internal/telemetry"
	"paella/internal/trace"
	"paella/internal/vram"
)

// ErrReplicaCrashed is the typed failure delivered through Conn.OnFailed
// when a request's replica crashed and no live replica remained to fail
// over to (or the failover submit could not be placed).
var ErrReplicaCrashed = errors.New("cluster: replica crashed, failover impossible")

// Shed is the sentinel Conn.Submit returns for a request refused by the
// gateway's admission control: the request is terminal (OnFailed has
// already delivered gateway.ErrTenantShed) and must not be retried, unlike
// the -1 ring-full result.
const Shed = -2

// GPUView is the routing policy's read-only view of one replica. It is the
// gateway's Replica type: routing was extracted from this package into
// internal/gateway, and the alias keeps existing call sites compiling.
type GPUView = gateway.Replica

// Balancer routes a request to a GPU. It is the gateway's Policy
// interface; construct instances via the gateway registry (gateway.New) or
// the re-exported constructors below.
type Balancer = gateway.Policy

// NewRoundRobin returns a load-oblivious rotating balancer.
func NewRoundRobin() Balancer { return gateway.NewRoundRobin() }

// NewLeastLoaded returns a capacity-normalized least-outstanding balancer.
func NewLeastLoaded() Balancer { return gateway.NewLeastLoaded() }

// NewModelAffinity returns an affinity balancer that spills when the home
// GPU carries more than spillFactor× the cluster-average load.
func NewModelAffinity(spillFactor float64) Balancer {
	return gateway.NewModelAffinity(spillFactor)
}

// NewResidencyAware returns the residency-aware balancer; a nil fallback
// defaults to least-loaded.
func NewResidencyAware(fallback Balancer) Balancer {
	return gateway.NewResidencyAware(fallback)
}

// Cluster is a set of Paella instances behind one gateway policy.
type Cluster struct {
	env *sim.Env
	// world is non-nil when the cluster runs on the conservative-window
	// engine: each dispatcher lives on its own shard Env (shard index ==
	// replica index), env is the world's control Env, and all cross-replica
	// work — routing, failover, terminal delivery — executes as control
	// events with the shards parked at a barrier.
	world    *sim.World
	disps    []*core.Dispatcher
	balancer Balancer
	views    []GPUView
	// inflight counts requests routed to each GPU and not yet completed —
	// maintained at the balancer, where the routing decision is made
	// (backend admission counters lag by the channel latency).
	inflight []int
	// pendingNs tracks each replica's routed-but-unfinished predicted work
	// in nanoseconds of its own profiled service time — the queue signal
	// behind predicted-latency routing. Charged at route time, refunded at
	// the terminal event (or failover), using the same per-model cost so
	// the account always drains to zero.
	pendingNs []sim.Time
	// costNs maps model → per-replica profiled service estimate
	// (Profile.TotalTime of the per-device compilation); weightBytes maps
	// model → weight footprint for the cold-start penalty estimate.
	costNs      map[string][]sim.Time
	weightBytes map[string]int64
	// alive marks replicas that have not crashed; the balancer only ever
	// sees live replicas. conns tracks every cluster-level connection for
	// crash failover.
	alive   []bool
	crashes int
	conns   []*Conn

	// routable marks replicas the gateway may route new work to. Unlike
	// alive (a crash — involuntary, with failover), clearing routable is the
	// autoscaler's voluntary drain: in-flight requests finish where they
	// are, only new arrivals skip the replica. All replicas start routable.
	routable []bool
	// modelOrder lists registered models in registration order, the
	// deterministic iteration order for Warmup/EvictAll (map iteration
	// would vary run to run).
	modelOrder []string

	// admission is the gateway's per-tenant token-bucket controller (nil =
	// no admission control). shedCol collects the failed records of shed
	// requests so Collector() preserves the conservation invariant.
	admission *gateway.Admission
	shedCol   *metrics.Collector

	// rec is the structured tracing recorder (nil = disabled); routing
	// decisions are instants on routeTrack.
	rec        *trace.Recorder
	routeTrack trace.TrackID

	// gw holds the lazily registered gateway telemetry instruments. They
	// register on first use of a gateway feature (admission, tenants, or a
	// prediction-driven policy), never for classic balancer runs — keeping
	// pre-gateway telemetry exports byte-identical.
	gw gwMetrics
}

// gwMetrics is the cluster's gateway-layer instrument set on the control
// timeline's meter: one routed counter and predicted-latency histogram per
// policy, a fleet-wide shed counter, and per-tenant admitted/shed
// counters created as tenants first appear.
type gwMetrics struct {
	on       bool
	mt       *telemetry.Meter
	routed   telemetry.MetricID
	predNs   telemetry.MetricID
	shed     telemetry.MetricID
	admitted telemetry.MetricID
	tenants  map[string]tenantMetrics
}

type tenantMetrics struct {
	admitted telemetry.MetricID
	shed     telemetry.MetricID
}

// activate registers the gateway instruments (idempotent).
func (g *gwMetrics) activate(policy string) {
	if g.on {
		return
	}
	g.on = true
	g.routed = g.mt.Counter("gateway/" + policy + "/routed")
	g.predNs = g.mt.Histogram("gateway/" + policy + "/predicted_ns")
	g.admitted = g.mt.Counter("gateway/admitted")
	g.shed = g.mt.Counter("gateway/shed")
	g.tenants = make(map[string]tenantMetrics)
}

// tenant returns (registering on first sight) the tenant's counters.
func (g *gwMetrics) tenant(name string) tenantMetrics {
	tm, ok := g.tenants[name]
	if !ok {
		tm = tenantMetrics{
			admitted: g.mt.Counter("gateway/tenant/" + name + "/admitted"),
			shed:     g.mt.Counter("gateway/tenant/" + name + "/shed"),
		}
		g.tenants[name] = tm
	}
	return tm
}

// New builds a cluster with one dispatcher per device configuration
// (possibly heterogeneous). Each dispatcher gets a fresh policy from
// mkPolicy.
func New(env *sim.Env, devs []gpu.Config, mkPolicy func() sched.Policy, b Balancer) (*Cluster, error) {
	return NewWithConfig(env, devs, func(int, gpu.Config) core.Config {
		return core.DefaultConfig(mkPolicy())
	}, b)
}

// NewWithConfig builds a cluster with a caller-supplied dispatcher
// configuration per device — the hook for per-GPU VRAM budgets, ablation
// modes, or tuned dispatcher costs. mkCfg is called once per device with
// its index and configuration.
func NewWithConfig(env *sim.Env, devs []gpu.Config, mkCfg func(i int, dev gpu.Config) core.Config, b Balancer) (*Cluster, error) {
	return build(env, nil, devs, mkCfg, b, nil)
}

// NewWorld builds a cluster on a sim.World: each replica (dispatcher, GPU,
// cudart/PCIe link, VRAM state) is placed on its own shard Env, so replica
// windows can execute concurrently while routing, failover, and terminal
// delivery serialize on the control Env. Request generators and fault
// injectors must schedule on w.Ctrl(). The world must have no shards yet.
func NewWorld(w *sim.World, devs []gpu.Config, mkPolicy func() sched.Policy, b Balancer) (*Cluster, error) {
	return NewWorldWithConfig(w, devs, func(int, gpu.Config) core.Config {
		return core.DefaultConfig(mkPolicy())
	}, b, nil)
}

// NewWorldWithConfig is NewWorld with a per-device dispatcher configuration
// and an optional setup hook invoked with each replica's shard Env before
// the dispatcher is built on it (e.g. to attach a per-replica trace
// recorder).
func NewWorldWithConfig(w *sim.World, devs []gpu.Config, mkCfg func(i int, dev gpu.Config) core.Config, b Balancer, setup func(i int, shard *sim.Env)) (*Cluster, error) {
	if w.NumShards() != 0 {
		return nil, fmt.Errorf("cluster: world already has %d shards", w.NumShards())
	}
	return build(w.Ctrl(), w, devs, mkCfg, b, setup)
}

func build(env *sim.Env, w *sim.World, devs []gpu.Config, mkCfg func(i int, dev gpu.Config) core.Config, b Balancer, setup func(i int, shard *sim.Env)) (*Cluster, error) {
	if len(devs) == 0 {
		return nil, fmt.Errorf("cluster: no devices")
	}
	c := &Cluster{
		env: env, world: w, balancer: b,
		inflight:    make([]int, len(devs)),
		pendingNs:   make([]sim.Time, len(devs)),
		alive:       make([]bool, len(devs)),
		costNs:      make(map[string][]sim.Time),
		weightBytes: make(map[string]int64),
		shedCol:     metrics.NewCollector(),
	}
	c.routable = make([]bool, len(devs))
	for i := range c.alive {
		c.alive[i] = true
		c.routable[i] = true
	}
	if rec := trace.FromEnv(env); rec != nil {
		c.rec = rec
		c.routeTrack = rec.Thread(rec.Process("cluster"), "route")
	}
	c.gw.mt = telemetry.FromEnv(env)
	for i, dev := range devs {
		denv := env
		if w != nil {
			denv = w.AddShard()
			if setup != nil {
				setup(i, denv)
			}
		}
		d := core.NewWithDevice(denv, dev, mkCfg(i, dev))
		d.Start()
		c.disps = append(c.disps, d)
		c.views = append(c.views, GPUView{
			Index:    i,
			Capacity: dev.NumSMs * dev.SM.MaxThreads,
		})
	}
	// A prediction-driven policy activates the gateway instruments up
	// front; classic balancers stay instrument-free unless admission or
	// tenancy appears.
	if n := b.Name(); n == "predicted-latency" || n == "affinity" {
		c.gw.activate(n)
	}
	return c, nil
}

// SetAdmission installs (or, with nil, removes) the gateway's per-tenant
// token-bucket admission controller. Requests whose tenant is over its
// rate terminate immediately with gateway.ErrTenantShed through
// Conn.OnFailed and a failed record in Collector().
func (c *Cluster) SetAdmission(a *gateway.Admission) {
	c.admission = a
	if a != nil {
		c.gw.activate(c.balancer.Name())
	}
}

// Admission returns the installed admission controller, or nil.
func (c *Cluster) Admission() *gateway.Admission { return c.admission }

// World returns the conservative-window engine the cluster runs on, or nil
// when it runs on a single serial Env.
func (c *Cluster) World() *sim.World { return c.world }

// Size returns the number of GPUs.
func (c *Cluster) Size() int { return len(c.disps) }

// Dispatcher returns the i-th GPU's dispatcher.
func (c *Cluster) Dispatcher(i int) *core.Dispatcher { return c.disps[i] }

// RegisterModel compiles the model per device configuration and registers
// it everywhere (heterogeneous clusters profile separately per GPU). The
// per-device profiles also feed the gateway's latency predictor: each
// replica advertises queue depth and request cost in its own profiled
// nanoseconds.
func (c *Cluster) RegisterModel(m *model.Model, cfg compiler.Config, profileRuns int) error {
	costs := make([]sim.Time, len(c.disps))
	for i, d := range c.disps {
		ins, err := compiler.Compile(m, cfg, d.Device().Config(), profileRuns)
		if err != nil {
			return err
		}
		if err := d.RegisterModel(ins); err != nil {
			return err
		}
		costs[i] = ins.Profile.TotalTime()
	}
	c.costNs[m.Name] = costs
	c.weightBytes[m.Name] = int64(m.WeightBytes)
	c.modelOrder = append(c.modelOrder, m.Name)
	return nil
}

// SetRoutable marks replica i eligible (or not) for new routing decisions.
// Draining a replica — SetRoutable(i, false) — is voluntary: requests
// already routed there run to their terminal event (watch InFlight reach
// zero), only new arrivals go elsewhere. Contrast Crash, which is
// involuntary and fails pending work over.
func (c *Cluster) SetRoutable(i int, ok bool) { c.routable[i] = ok }

// Routable reports whether the gateway may route new work to replica i.
func (c *Cluster) Routable(i int) bool { return c.routable[i] }

// RoutableReplicas returns the number of live, routable replicas.
func (c *Cluster) RoutableReplicas() int {
	n := 0
	for i := range c.routable {
		if c.alive[i] && c.routable[i] {
			n++
		}
	}
	return n
}

// InFlight returns the number of requests routed to replica i and not yet
// terminal — the autoscaler's drain-completion signal.
func (c *Cluster) InFlight(i int) int { return c.inflight[i] }

// QueuedNs returns replica i's routed-but-unfinished predicted work in its
// own profiled nanoseconds (the predicted-latency queue signal).
func (c *Cluster) QueuedNs(i int) sim.Time { return c.pendingNs[i] }

// Models returns the registered model names in registration order.
func (c *Cluster) Models() []string { return c.modelOrder }

// WeightBytesOf returns the registered weight footprint of a model (zero
// for models registered outside RegisterModel).
func (c *Cluster) WeightBytesOf(model string) int64 { return c.weightBytes[model] }

// ModelCostNs returns replica g's profiled service estimate for the model
// (zero for models registered outside RegisterModel) — the gateway's
// per-replica cost view, exposed for the autoscaler's capacity math.
func (c *Cluster) ModelCostNs(g int, model string) sim.Time { return c.costOf(g, model) }

// Warmup pages every registered model's weights into replica i's device
// memory — the autoscaler's cold-start: a newly activated replica pays the
// real host→device transfer over its PCIe link before it can serve warm.
// Models already resident (or loading) are skipped, as are models that do
// not fit the free budget — warmup never evicts a warmer neighbor. Without
// a VRAM budget the full registered weight set pays one bulk transfer at
// the link's modeled bandwidth. done fires exactly once on the control
// timeline when the last transfer lands (immediately-after-now when there
// is nothing to page). Returns the number of bytes being paged.
func (c *Cluster) Warmup(i int, done func()) int64 {
	d := c.disps[i]
	if c.rec != nil {
		c.rec.InstantArgs(c.routeTrack, "replica", "warmup", c.env.Now(),
			trace.Int("gpu", int64(i)))
	}
	// Transfer completions fire as replica-shard events; the autoscaler's
	// state lives on the control timeline, so cross back through the
	// barrier's canonical post order (bit-identical serial vs parallel).
	finish := done
	if w := c.world; w != nil {
		finish = func() { w.Post(i, done) }
	}
	mgr := d.VRAM()
	if mgr == nil {
		var total int64
		for _, name := range c.modelOrder {
			total += c.weightBytes[name]
		}
		c.env.DoAfter(d.ColdLoadDuration(total), done)
		return total
	}
	shard := d.Env()
	var bytes int64
	outstanding := 0
	for _, name := range c.modelOrder {
		wb := c.weightBytes[name]
		if wb <= 0 || !mgr.Registered(name) || mgr.State(name) != vram.Cold {
			continue
		}
		if wb > mgr.FreeBytes() {
			continue
		}
		if err := mgr.BeginLoad(name, shard.Now()); err != nil {
			continue
		}
		outstanding++
		bytes += wb
		name := name
		d.PCIe().Transfer(cudart.HostToDevice, int(wb), func() {
			mgr.FinishLoad(name, shard.Now())
			outstanding--
			if outstanding == 0 {
				finish()
			}
		})
	}
	if outstanding == 0 {
		// Nothing to page — already warm, or nothing fits. Still deliver
		// done asynchronously so the caller sees one consistent shape.
		c.env.DoAfter(0, done)
	}
	return bytes
}

// EvictAll drops every resident, unpinned model from replica i's device
// memory (no-op without a VRAM budget) — the autoscaler's park step: a
// retired replica releases its weights, so a later re-activation pays the
// full cold-start again.
func (c *Cluster) EvictAll(i int) {
	mgr := c.disps[i].VRAM()
	if mgr == nil {
		return
	}
	for _, name := range mgr.ResidentModels() {
		if mgr.Pinned(name) == 0 {
			_ = mgr.Evict(name)
		}
	}
	if c.rec != nil {
		c.rec.InstantArgs(c.routeTrack, "replica", "park-evict", c.env.Now(),
			trace.Int("gpu", int64(i)))
	}
}

// Conn is a client connection spanning the whole cluster: one shared
// memory region per GPU, with completions funneled to a single callback.
// The connection tracks where each outstanding request was routed so a
// replica crash can fail pending requests over to the survivors; late
// events from a crashed-but-still-draining replica are deduplicated (first
// terminal outcome wins).
type Conn struct {
	cluster *Cluster
	conns   []*core.ClientConn
	// pending maps each outstanding request to its current route (and keeps
	// the original request for failover re-submission).
	pending map[uint64]route
	// order lists outstanding request ids in submission order. Failover
	// walks it so crashed requests re-enter the balancer in the order they
	// were submitted — an explicit insertion-ordered structure rather than
	// map iteration (nondeterministic) or an id sort (wrong order if ids
	// are not monotone). Entries are removed lazily: ids no longer pending
	// (or re-routed since) are skipped and periodically compacted away.
	order []uint64

	// OnComplete receives every finished request id, whichever GPU served
	// it.
	OnComplete func(reqID uint64)
	// OnFailed receives every request id that terminated with a typed error
	// (dispatcher-side failures pass through; ErrReplicaCrashed when
	// failover was impossible; gateway.ErrTenantShed when admission refused
	// the request).
	OnFailed func(reqID uint64, err error)
}

type route struct {
	gpu int
	req core.Request
}

// termCrossing is the PostCall context for a connection's completions from
// one replica; terminalOK is the matching callback (arg = request id).
type termCrossing struct {
	cn *Conn
	g  int
}

var terminalOK sim.EventFn = func(ctx any, arg uint64) {
	t := ctx.(*termCrossing)
	t.cn.terminal(t.g, arg, nil)
}

// Connect attaches a client to every GPU in the cluster.
func (c *Cluster) Connect() *Conn {
	cn := &Conn{cluster: c, pending: make(map[uint64]route)}
	for g, d := range c.disps {
		g := g
		conn := d.Connect()
		if w := c.world; w != nil {
			// The dispatcher's callbacks fire as replica-shard events;
			// terminal touches cluster-wide state (pending, inflight, the
			// user callbacks), so it must cross to the control timeline.
			// The post stamps the true delivery time and the barrier replays
			// posts in canonical order, keeping runs bit-identical whether
			// shards executed serially or in parallel. Completions ride the
			// typed PostCall form — one per request, so a closure per
			// message would be a steady-state allocation.
			tc := &termCrossing{cn: cn, g: g}
			conn.OnComplete = func(id uint64) {
				w.PostCall(g, terminalOK, tc, id)
			}
			conn.OnFailed = func(id uint64, err error) {
				w.Post(g, func() { cn.terminal(g, id, err) })
			}
		} else {
			conn.OnComplete = func(id uint64) { cn.terminal(g, id, nil) }
			conn.OnFailed = func(id uint64, err error) { cn.terminal(g, id, err) }
		}
		cn.conns = append(cn.conns, conn)
	}
	c.conns = append(c.conns, cn)
	return cn
}

// terminal folds one replica's completion or typed failure into the
// connection. Events from a GPU the request is no longer routed to (a
// crashed replica draining, or a duplicate) are dropped.
func (cn *Conn) terminal(g int, id uint64, err error) {
	rt, ok := cn.pending[id]
	if !ok || rt.gpu != g {
		return
	}
	delete(cn.pending, id)
	cn.cluster.unroute(g, rt.req)
	if err != nil {
		if cn.OnFailed != nil {
			cn.OnFailed(id, err)
		}
		return
	}
	if cn.OnComplete != nil {
		cn.OnComplete(id)
	}
}

// unroute refunds a request's routing account on replica g.
func (c *Cluster) unroute(g int, req core.Request) {
	c.inflight[g]--
	c.pendingNs[g] -= c.costOf(g, req.Model)
}

// costOf returns the profiled service estimate of the model on replica g
// (zero for models registered outside RegisterModel).
func (c *Cluster) costOf(g int, model string) sim.Time {
	if costs, ok := c.costNs[model]; ok {
		return costs[g]
	}
	return 0
}

// loadPenalty estimates the weight-load time a cold request would pay on
// replica g: the model's weight footprint over the replica's PCIe link
// (including any injected brownout), zero when the replica has no VRAM
// budget or the model is unknown.
func (c *Cluster) loadPenalty(g int, model string) sim.Time {
	bytes := c.weightBytes[model]
	if bytes <= 0 {
		return 0
	}
	pcie := c.disps[g].PCIe()
	if pcie == nil {
		return 0
	}
	return pcie.Duration(int(bytes))
}

// Submit routes the request through the admission controller and the
// gateway policy to one live GPU. It returns the chosen GPU index; -1 if
// that GPU's ring was full or no live replica remains (retryable); or Shed
// if admission refused the request (terminal — OnFailed has fired with
// gateway.ErrTenantShed).
func (cn *Conn) Submit(req core.Request) int {
	c := cn.cluster
	if err := c.admission.Admit(req.Tenant, c.env.Now()); err != nil {
		cn.shed(req, err)
		return Shed
	}
	if c.admission != nil {
		c.gw.mt.Add(c.gw.admitted, c.env.Now(), 1)
		if req.Tenant != "" {
			c.gw.mt.Add(c.gw.tenant(req.Tenant).admitted, c.env.Now(), 1)
		}
	}
	return cn.submitRouted(req)
}

// shed terminates an admission-refused request: a failed record with the
// typed reason (conservation: every request still ends in exactly one
// terminal event), telemetry counters, a trace instant, and the client
// callback.
func (cn *Conn) shed(req core.Request, err error) {
	c := cn.cluster
	now := c.env.Now()
	c.shedCol.Add(metrics.JobRecord{
		ID: req.ID, Model: req.Model, Client: req.Client, Tenant: req.Tenant,
		Submit: req.Submit, Admit: now, ExecDone: now, Delivered: now,
		Failed: true, FailureReason: err.Error(),
	})
	c.gw.mt.Add(c.gw.shed, now, 1)
	if req.Tenant != "" {
		c.gw.mt.Add(c.gw.tenant(req.Tenant).shed, now, 1)
	}
	if c.rec != nil {
		c.rec.InstantArgs(c.routeTrack, req.Model, "shed", now,
			trace.Int("id", int64(req.ID)),
			trace.Str("tenant", req.Tenant))
	}
	if cn.OnFailed != nil {
		cn.OnFailed(req.ID, err)
	}
}

// submitRouted routes an already-admitted request (failover re-entries
// skip admission — the request was charged once at first submission).
func (cn *Conn) submitRouted(req core.Request) int {
	c := cn.cluster
	// The policy only sees live replicas. Its contract returns a position
	// in the slice it was given, so the compacted slice renumbers Index to
	// its own positions (ID keeps the stable physical index) and liveIdx
	// maps the pick back to the real GPU.
	views := c.views[:0:0]
	var liveIdx []int
	for i := range c.disps {
		if !c.alive[i] || !c.routable[i] {
			continue
		}
		v := GPUView{
			Index:    len(views),
			ID:       i,
			InFlight: c.inflight[i],
			Capacity: c.views[i].Capacity,
			QueueNs:  c.pendingNs[i],
			CostNs:   c.costOf(i, req.Model),
		}
		v.Warm, v.Loading = c.residency(i, req.Model)
		if !v.Warm {
			v.LoadPenaltyNs = c.loadPenalty(i, req.Model)
		}
		views = append(views, v)
		liveIdx = append(liveIdx, i)
	}
	if len(views) == 0 {
		return -1
	}
	pick := c.balancer.Pick(gateway.Request{Model: req.Model, Tenant: req.Tenant, Session: req.Session}, views)
	if pick < 0 || pick >= len(views) {
		panic(fmt.Sprintf("cluster: balancer %q picked GPU %d of %d", c.balancer.Name(), pick, len(views)))
	}
	g := liveIdx[pick]
	if c.rec != nil {
		c.rec.InstantArgs(c.routeTrack, req.Model, "route", c.env.Now(),
			trace.Int("gpu", int64(g)),
			trace.Str("balancer", c.balancer.Name()),
			trace.Bool("warm", views[pick].Warm),
			trace.Bool("loading", views[pick].Loading))
	}
	if c.gw.on {
		c.gw.mt.Add(c.gw.routed, c.env.Now(), 1)
		c.gw.mt.Observe(c.gw.predNs, c.env.Now(), float64(views[pick].Predicted()))
	}
	orig := req
	req.Client = cn.conns[g].ID
	if !cn.conns[g].Submit(req) {
		return -1
	}
	cn.pending[req.ID] = route{gpu: g, req: orig}
	cn.order = append(cn.order, req.ID)
	if len(cn.order) > 4*len(cn.pending)+16 {
		cn.compactOrder()
	}
	c.inflight[g]++
	c.pendingNs[g] += views[pick].CostNs
	return g
}

// compactOrder drops order entries for requests that have terminated,
// keeping the first (original-submission) occurrence of each pending id.
func (cn *Conn) compactOrder() {
	kept := cn.order[:0]
	seen := make(map[uint64]bool, len(cn.pending))
	for _, id := range cn.order {
		if _, ok := cn.pending[id]; ok && !seen[id] {
			seen[id] = true
			kept = append(kept, id)
		}
	}
	cn.order = kept
}

// Crash kills replica i (fault injection: the whole serving process died).
// The replica's dispatcher loop stops, the balancer stops routing to it,
// and every connection's requests pending on it fail over to the surviving
// replicas — re-entering the balancer with their original submit times, so
// recovery latency shows up in JCT. When no live replica remains, pending
// requests terminate with ErrReplicaCrashed through Conn.OnFailed. Late
// completions from the crashed replica's drained pipeline are ignored.
func (c *Cluster) Crash(i int) {
	if !c.alive[i] {
		return
	}
	c.alive[i] = false
	c.crashes++
	c.disps[i].Stop()
	if c.rec != nil {
		c.rec.InstantArgs(c.routeTrack, "replica", "crash", c.env.Now(),
			trace.Int("gpu", int64(i)), trace.Int("live", int64(c.LiveReplicas())))
	}
	for _, cn := range c.conns {
		cn.failover(i)
	}
}

// failover re-routes the connection's requests pending on crashed GPU g, in
// submission order (via the insertion-ordered id list — never map
// iteration, whose order varies run to run). Re-entries skip admission:
// each request was charged against its tenant once, at first submission.
func (cn *Conn) failover(g int) {
	var ids []uint64
	for _, id := range cn.order {
		if rt, ok := cn.pending[id]; ok && rt.gpu == g {
			ids = append(ids, id)
		}
	}
	for _, id := range ids {
		rt, ok := cn.pending[id]
		if !ok || rt.gpu != g {
			// A duplicate order entry for an id that was already failed
			// over (and is now routed elsewhere, or terminated).
			continue
		}
		delete(cn.pending, id)
		cn.cluster.unroute(g, rt.req)
		if cn.submitRouted(rt.req) < 0 {
			if cn.OnFailed != nil {
				cn.OnFailed(id, ErrReplicaCrashed)
			}
		}
	}
}

// Alive reports whether replica i has not crashed.
func (c *Cluster) Alive(i int) bool { return c.alive[i] }

// LiveReplicas returns the number of replicas still alive.
func (c *Cluster) LiveReplicas() int {
	n := 0
	for _, a := range c.alive {
		if a {
			n++
		}
	}
	return n
}

// Crashes returns how many replicas have been crashed.
func (c *Cluster) Crashes() int { return c.crashes }

// residency classifies GPU i's copy of the named model's weights. A GPU
// without a VRAM budget holds everything, so it reports warm.
func (c *Cluster) residency(i int, modelName string) (warm, loading bool) {
	mgr := c.disps[i].VRAM()
	if mgr == nil || !mgr.Registered(modelName) {
		return true, false
	}
	switch mgr.State(modelName) {
	case vram.Resident:
		return true, false
	case vram.Loading:
		return false, true
	default:
		return false, false
	}
}

// Collector returns a merged view of all GPUs' completion records, plus
// the failed records of gateway-shed requests.
func (c *Cluster) Collector() *metrics.Collector {
	merged := metrics.NewCollector()
	for _, d := range c.disps {
		for _, r := range d.Collector().Records() {
			merged.Add(r)
		}
	}
	for _, r := range c.shedCol.Records() {
		merged.Add(r)
	}
	return merged
}
