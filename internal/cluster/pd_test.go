package cluster_test

import (
	"math/rand"
	"testing"

	"paella/internal/cluster"
	"paella/internal/gpu"
	"paella/internal/llm"
	"paella/internal/metrics"
	"paella/internal/sim"
)

// llmTestConfig is the tiny fast generative model shared by the pd and
// identity tests: zero weight bytes (the whole pool is KV pages), 4 tokens
// per 4 KiB page, microsecond-scale kernels.
func llmTestConfig(kvPages int) llm.Config {
	return llm.Config{
		Spec: llm.Spec{
			Name:                  "tiny",
			KVBytesPerToken:       1 << 10,
			PrefillTokensPerBlock: 4,
			PrefillThreads:        128,
			PrefillBlockTime:      20 * sim.Microsecond,
			ProfilePromptTokens:   16,
			DecodeBlocks:          2,
			DecodeThreads:         128,
			DecodeBlockTime:       10 * sim.Microsecond,
		},
		DevCfg:       gpu.TeslaT4(),
		VRAMBytes:    int64(kvPages) * (4 << 10),
		KVBlockBytes: 4 << 10,
		MaxBatch:     4,
		Continuous:   true,
	}
}

// submitPDLoad schedules n seeded open-loop requests on the front's control
// timeline and returns the last arrival time.
func submitPDLoad(env *sim.Env, pd *cluster.PD, seed int64, n int) sim.Time {
	rng := rand.New(rand.NewSource(seed))
	at := sim.Time(0)
	for i := 0; i < n; i++ {
		at += sim.Time(rng.Intn(80)+10) * sim.Microsecond
		req := llm.Request{
			ID:     uint64(i + 1),
			Client: i % 4,
			Submit: at,
			Prompt: rng.Intn(24) + 4,
			Output: rng.Intn(12) + 2,
		}
		env.At(at, func() { pd.Submit(req) })
	}
	return at
}

func TestPDColocatedRoutesAndCompletes(t *testing.T) {
	env := sim.NewEnv()
	pd, err := cluster.NewPD(env, cluster.PDConfig{LLM: llmTestConfig(256), Prefills: 2})
	if err != nil {
		t.Fatal(err)
	}
	finished := 0
	pd.OnFinish = func(metrics.JobRecord) { finished++ }
	last := submitPDLoad(env, pd, 42, 24)
	env.RunUntil(last + sim.Second)
	if finished != 24 || pd.InFlight() != 0 {
		t.Fatalf("finished %d of 24, %d still inflight", finished, pd.InFlight())
	}
	if n, b := pd.Transfers(); n != 0 || b != 0 {
		t.Fatalf("colocated deployment made %d KV transfers (%d bytes)", n, b)
	}
	// Least-outstanding routing must have spread the load across replicas.
	for i := 0; i < pd.Size(); i++ {
		if pd.Engine(i).Iterations() == 0 {
			t.Fatalf("replica %d never decoded; routing is not spreading load", i)
		}
	}
	for _, r := range pd.Collector().Records() {
		if r.Failed || r.OutputTokens == 0 || r.KVTransferNs != 0 {
			t.Fatalf("bad colocated record: %+v", r)
		}
	}
}

func TestPDSplitTransfersKV(t *testing.T) {
	env := sim.NewEnv()
	cfg := cluster.PDConfig{LLM: llmTestConfig(256), Prefills: 1, Decodes: 1}
	pd, err := cluster.NewPD(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := submitPDLoad(env, pd, 7, 16)
	env.RunUntil(last + sim.Second)
	recs := pd.Collector().Records()
	if len(recs) != 16 {
		t.Fatalf("%d records, want 16", len(recs))
	}
	var wantBytes int64
	for _, r := range recs {
		if r.Failed {
			t.Fatalf("request %d failed", r.ID)
		}
		if r.KVTransferNs <= 0 {
			t.Fatalf("request %d crossed without KV-transfer time: %+v", r.ID, r)
		}
		wantBytes += int64(r.PromptTokens) * cfg.LLM.Spec.KVBytesPerToken
	}
	n, b := pd.Transfers()
	if n != 16 || b != wantBytes {
		t.Fatalf("transfers = %d (%d B), want 16 (%d B)", n, b, wantBytes)
	}
	// The prefill replica must end with no KV pages (all handed off) and
	// the decode replica must have done all the decoding.
	if pd.Engine(0).Mem().KVBlocks() != 0 {
		t.Fatalf("prefill replica kept %d KV pages", pd.Engine(0).Mem().KVBlocks())
	}
	if pd.Engine(0).Iterations() != 0 || pd.Engine(1).Iterations() == 0 {
		t.Fatalf("iterations split %d/%d, want 0/>0",
			pd.Engine(0).Iterations(), pd.Engine(1).Iterations())
	}
}

// TestPDSplitUnderKVPressure: a small decode-side pool forces preemption
// in the disaggregated deployment; everything still completes and drains.
func TestPDSplitUnderKVPressure(t *testing.T) {
	env := sim.NewEnv()
	pd, err := cluster.NewPD(env, cluster.PDConfig{LLM: llmTestConfig(10), Prefills: 1, Decodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	last := submitPDLoad(env, pd, 3, 12)
	env.RunUntil(last + 2*sim.Second)
	recs := pd.Collector().Records()
	if len(recs) != 12 {
		t.Fatalf("%d records, want 12", len(recs))
	}
	for _, r := range recs {
		if r.Failed {
			t.Fatalf("request %d failed under KV pressure", r.ID)
		}
	}
	for i := 0; i < pd.Size(); i++ {
		pd.Engine(i).Mem().CheckInvariants()
		if pd.Engine(i).Mem().KVBlocks() != 0 {
			t.Fatalf("replica %d leaked KV pages", i)
		}
	}
}
