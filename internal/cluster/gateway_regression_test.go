package cluster_test

import (
	"bytes"
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"paella/internal/cluster"
	"paella/internal/compiler"
	"paella/internal/core"
	"paella/internal/gpu"
	"paella/internal/model"
	"paella/internal/sched"
	"paella/internal/sim"
	"paella/internal/telemetry"
	"paella/internal/trace"
	"paella/internal/vram"
)

// updateGolden regenerates the pre-refactor golden snapshots. The committed
// files were produced BEFORE routing was extracted from internal/cluster
// into internal/gateway, so running this test without the flag proves the
// extraction is behavior-preserving byte-for-byte: identical per-request
// metrics JSON, identical merged Perfetto trace bytes, and identical
// windowed telemetry export for every legacy balancer with the gateway's
// new machinery (admission, tenants, prediction) disabled.
var updateGolden = flag.Bool("update", false, "rewrite testdata golden snapshots")

// preGatewayBlob runs one deterministic cluster workload under the named
// balancer and returns every observable byte: sorted per-request metrics
// JSON, the telemetry export, and the merged trace.
func preGatewayBlob(t *testing.T, mkBal func() cluster.Balancer, onWorld bool) []byte {
	t.Helper()
	devs := []gpu.Config{gpu.TeslaT4(), gpu.GTX1660Super(), gpu.TeslaT4()}
	// Small kernel graphs (traces stay commit-sized) with real weight
	// footprints (residency stays interesting against the 96 MiB budget).
	zoo := make([]*model.Model, 4)
	for i := range zoo {
		zoo[i] = model.Generate(model.ZooEntry{
			Name:        fmt.Sprintf("gwreg-%d", i),
			ExecTime:    sim.Time(150+60*i) * sim.Microsecond,
			Executions:  5,
			Unique:      3,
			InputBytes:  16 << 10,
			OutputBytes: 4 << 10,
			WeightBytes: (24 + 16*i) << 20,
		})
	}

	mkCfg := func(int, gpu.Config) core.Config {
		cfg := core.DefaultConfig(sched.NewPaella(10000))
		// A tight per-replica weight budget so residency state (warm /
		// loading / cold) differs across replicas and the residency-aware
		// balancer's decisions are exercised, not vacuous.
		cfg.VRAM = &vram.Config{CapacityBytes: 96 << 20}
		return cfg
	}

	var c *cluster.Cluster
	var err error
	var run func(until sim.Time)
	var now func() sim.Time
	var schedule func(at sim.Time, fn func())
	var recs []*trace.Recorder
	var mts []*telemetry.Meter

	if onWorld {
		w := sim.NewWorld()
		defer w.Close()
		ctrlRec := trace.New()
		w.Ctrl().SetRecorder(ctrlRec)
		recs = append(recs, ctrlRec)
		c, err = cluster.NewWorldWithConfig(w, devs, mkCfg, mkBal(), func(i int, shard *sim.Env) {
			r := trace.New()
			shard.SetRecorder(r)
			recs = append(recs, r)
			mt := telemetry.NewMeter(fmt.Sprintf("replica%d", i), 0)
			mt.SLO(telemetry.SLOConfig{
				Name: "goodput@5ms", Deadline: 5 * sim.Millisecond, Target: 0.99,
				Short: sim.Millisecond, Long: 10 * sim.Millisecond,
			})
			shard.SetMeter(mt)
			mts = append(mts, mt)
		})
		if err != nil {
			t.Fatal(err)
		}
		run = func(until sim.Time) { w.RunUntil(until) }
		now = func() sim.Time { return w.Ctrl().Now() }
		schedule = func(at sim.Time, fn func()) { w.Ctrl().At(at, fn) }
	} else {
		env := sim.NewEnv()
		rec := trace.New()
		env.SetRecorder(rec)
		recs = append(recs, rec)
		mt := telemetry.NewMeter("cluster", 0)
		mt.SLO(telemetry.SLOConfig{
			Name: "goodput@5ms", Deadline: 5 * sim.Millisecond, Target: 0.99,
			Short: sim.Millisecond, Long: 10 * sim.Millisecond,
		})
		env.SetMeter(mt)
		mts = append(mts, mt)
		c, err = cluster.NewWithConfig(env, devs, mkCfg, mkBal())
		if err != nil {
			t.Fatal(err)
		}
		run = func(until sim.Time) { env.RunUntil(until) }
		now = func() sim.Time { return env.Now() }
		schedule = func(at sim.Time, fn func()) { env.At(at, fn) }
	}

	for _, m := range zoo {
		if err := c.RegisterModel(m, compiler.DefaultConfig(), 1); err != nil {
			t.Fatal(err)
		}
	}
	conn := c.Connect()

	// Deterministic bursty arrivals with a skewed model mix: hot model 0
	// takes half the traffic, the tail keeps paging weights in and out.
	rng := rand.New(rand.NewSource(42))
	const n = 120
	at := sim.Time(0)
	for i := 0; i < n; i++ {
		at += sim.Time(rng.Intn(90)+10) * sim.Microsecond
		mi := 0
		if rng.Intn(2) == 1 {
			mi = rng.Intn(len(zoo))
		}
		id, name, when := uint64(i+1), zoo[mi].Name, at
		schedule(when, func() {
			conn.Submit(core.Request{ID: id, Model: name, Client: int(id) % 4, Submit: now()})
		})
	}
	run(at + 6*sim.Second)

	var blob bytes.Buffer
	blob.WriteString("== metrics ==\n")
	col := c.Collector()
	if col.Len() == 0 {
		t.Fatal("no requests completed; regression workload broken")
	}
	if err := col.WriteJSON(&blob); err != nil {
		t.Fatal(err)
	}
	blob.WriteString("== telemetry ==\n")
	if err := telemetry.WriteJSON(&blob, now(), telemetry.Export{Collector: col, Meters: mts}); err != nil {
		t.Fatal(err)
	}
	blob.WriteString("== trace ==\n")
	if err := trace.WriteChromeTraceAll(&blob, recs...); err != nil {
		t.Fatal(err)
	}
	return blob.Bytes()
}

// TestRoutingExtractionGolden locks the routing extraction: every legacy
// balancer, run with all gateway features disabled, must reproduce the
// pre-refactor snapshot byte-for-byte — metrics, telemetry, and trace.
// Regenerate (only with behavior changes that are themselves intended) via
//
//	go test ./internal/cluster -run TestRoutingExtractionGolden -update
func TestRoutingExtractionGolden(t *testing.T) {
	cases := []struct {
		name    string
		mk      func() cluster.Balancer
		onWorld bool
	}{
		{"round-robin", cluster.NewRoundRobin, false},
		{"least-loaded", cluster.NewLeastLoaded, false},
		{"model-affinity", func() cluster.Balancer { return cluster.NewModelAffinity(2) }, false},
		{"residency-aware", func() cluster.Balancer { return cluster.NewResidencyAware(nil) }, false},
		{"residency-aware-world", func() cluster.Balancer { return cluster.NewResidencyAware(nil) }, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got := preGatewayBlob(t, tc.mk, tc.onWorld)
			path := filepath.Join("testdata", "golden_pre_gateway_"+tc.name+".gz")
			if *updateGolden {
				var buf bytes.Buffer
				zw := gzip.NewWriter(&buf)
				if _, err := zw.Write(got); err != nil {
					t.Fatal(err)
				}
				if err := zw.Close(); err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			f, err := os.Open(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update before refactoring): %v", err)
			}
			defer f.Close()
			zr, err := gzip.NewReader(f)
			if err != nil {
				t.Fatal(err)
			}
			want, err := io.ReadAll(zr)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("output diverged from pre-refactor snapshot %s:\n got %d bytes, want %d bytes\nfirst difference near byte %d",
					path, len(got), len(want), firstDiff(got, want))
			}
		})
	}
}

// firstDiff returns the index of the first differing byte.
func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
