package cluster

import (
	"fmt"

	"paella/internal/cudart"
	"paella/internal/gateway"
	"paella/internal/llm"
	"paella/internal/metrics"
	"paella/internal/sim"
	"paella/internal/telemetry"
)

// PDConfig describes a generative-serving deployment: N replicas either
// colocated (every engine prefills and decodes its own requests) or
// disaggregated (dedicated prefill replicas hand prefilled KV state to
// dedicated decode replicas over the interconnect). Disaggregation trades
// a per-request KV transfer for decode replicas whose iteration cadence is
// never perturbed by long prefill grids.
type PDConfig struct {
	LLM llm.Config
	// Prefills and Decodes are the replica counts. Decodes == 0 selects the
	// colocated deployment: Prefills full engines, no transfers.
	Prefills int
	Decodes  int
	// LinkLatency and LinkBytesPerNs model the KV-transfer interconnect
	// (defaults: 10µs setup, 12 B/ns — the PCIe peer-to-peer path).
	LinkLatency    sim.Time
	LinkBytesPerNs float64
	// ShardSetup, if set, runs for each engine's Env right after the shard
	// is created and before the engine is built — the hook to attach
	// per-shard trace recorders or telemetry meters. On a serial Env it
	// runs once per engine with the shared Env.
	ShardSetup func(i int, env *sim.Env)
	// MakePolicy, if set, replaces the built-in least-outstanding routing
	// with a gateway policy: one instance routes submissions (across the
	// prefill replicas, or the whole colocated fleet) and a second,
	// independent instance places KV handoffs across the decode replicas.
	// Replica views carry queued work and request cost in profiled
	// token-time, so predicted-latency and affinity compose with
	// disaggregation. Nil keeps the legacy router bit-for-bit.
	MakePolicy func() gateway.Policy
	// Engines, if set, overrides the per-engine llm config (length must be
	// Prefills+Decodes). This models heterogeneous pools — a degraded or
	// throttled replica, a mixed-generation fleet — and each engine's
	// profiled kernel means price its own replica view, so the gateway's
	// predicted-latency policy sees the speed difference that a raw
	// in-flight count hides. Nil uses LLM for every engine.
	Engines []llm.Config
}

func (c *PDConfig) withDefaults() (PDConfig, error) {
	out := *c
	if out.Prefills <= 0 {
		return out, fmt.Errorf("cluster: pd needs at least one replica, got %d", out.Prefills)
	}
	if out.Decodes < 0 {
		return out, fmt.Errorf("cluster: negative decode replica count %d", out.Decodes)
	}
	if out.LinkLatency == 0 {
		out.LinkLatency = 10 * sim.Microsecond
	}
	if out.LinkBytesPerNs == 0 {
		out.LinkBytesPerNs = 12.0
	}
	if out.Engines != nil && len(out.Engines) != out.Prefills+out.Decodes {
		return out, fmt.Errorf("cluster: %d engine configs for %d replicas",
			len(out.Engines), out.Prefills+out.Decodes)
	}
	return out, nil
}

// engineCfg returns engine i's llm config: the per-engine override when
// PDConfig.Engines is set, the shared LLM config otherwise.
func (c *PDConfig) engineCfg(i int) llm.Config {
	if c.Engines != nil {
		return c.Engines[i]
	}
	return c.LLM
}

// PD fronts a set of llm engines with least-outstanding routing and, when
// disaggregated, the prefill→decode KV handoff pipeline. On a sim.World
// each engine lives on its own shard Env; routing, handoff, and transfer
// completion serialize on the control Env exactly as Cluster does, so runs
// are bit-identical serial or parallel.
type PD struct {
	env   *sim.Env
	world *sim.World
	cfg   PDConfig

	engines []*llm.Engine
	envs    []*sim.Env
	cols    []*metrics.Collector
	// inflight counts requests currently assigned to each engine,
	// maintained at the front where routing decides.
	inflight []int
	link     *cudart.PCIeLink

	// Gateway-policy state (all inert when cfg.MakePolicy is nil): the
	// submit- and handoff-side policy instances, per-engine queued
	// token-time, each request's outstanding charge, each engine's profiled
	// prefill/decode means, the admission controller, and shed records.
	routePol  gateway.Policy
	decodePol gateway.Policy
	pendingNs []sim.Time
	charge    map[uint64]chargeEntry
	prefillNs []sim.Time
	decodeNs  []sim.Time
	admission *gateway.Admission
	shedCol   *metrics.Collector
	gw        gwMetrics

	transfers int
	kvBytes   int64

	// mt is the control timeline's telemetry meter (nil = disabled):
	// handoff count and per-transfer KV latency.
	mt         *telemetry.Meter
	mtHandoffs telemetry.MetricID
	mtKVNs     telemetry.MetricID

	// OnFinish observes every terminal record on the control timeline.
	OnFinish func(metrics.JobRecord)
}

// NewPD builds the deployment on a single serial Env.
func NewPD(env *sim.Env, cfg PDConfig) (*PD, error) {
	return buildPD(env, nil, cfg)
}

// NewPDWorld builds the deployment on a conservative-window engine: one
// shard per llm engine. The world must have no shards yet; request
// generators must schedule on w.Ctrl().
func NewPDWorld(w *sim.World, cfg PDConfig) (*PD, error) {
	if w.NumShards() != 0 {
		return nil, fmt.Errorf("cluster: world already has %d shards", w.NumShards())
	}
	return buildPD(w.Ctrl(), w, cfg)
}

func buildPD(env *sim.Env, w *sim.World, cfg PDConfig) (*PD, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	pd := &PD{env: env, world: w, cfg: cfg, shedCol: metrics.NewCollector()}
	pd.link = cudart.NewPCIeLink(env, cfg.LinkLatency, cfg.LinkBytesPerNs)
	if mt := telemetry.FromEnv(env); mt != nil {
		pd.mt = mt
		pd.mtHandoffs = mt.Counter("pd/kv_handoffs")
		pd.mtKVNs = mt.Histogram("pd/kv_handoff_ns")
	}
	pd.gw.mt = telemetry.FromEnv(env)
	if cfg.MakePolicy != nil {
		pd.routePol = cfg.MakePolicy()
		pd.decodePol = cfg.MakePolicy()
		pd.charge = make(map[uint64]chargeEntry)
		pd.gw.activate(pd.routePol.Name())
	}
	n := cfg.Prefills + cfg.Decodes
	for i := 0; i < n; i++ {
		senv := env
		if w != nil {
			senv = w.AddShard()
		}
		if cfg.ShardSetup != nil {
			cfg.ShardSetup(i, senv)
		}
		// Each engine compiles its own copy: the Compiled's launch-spec
		// caches are mutated at runtime and must not be shared across
		// shards. Profiling is deterministic, so same-config copies agree.
		comp, err := llm.CompileSpec(cfg.engineCfg(i))
		if err != nil {
			return nil, err
		}
		// Each engine's own profiled means price its replica view — on a
		// heterogeneous pool a slow engine quotes honest (higher) costs.
		pd.prefillNs = append(pd.prefillNs, comp.PrefillMean())
		pd.decodeNs = append(pd.decodeNs, comp.DecodeMean())
		col := metrics.NewCollector()
		eng, err := llm.NewEngine(senv, comp, col)
		if err != nil {
			return nil, err
		}
		i := i
		eng.OnFinish = func(rec metrics.JobRecord) { pd.cross(i, func() { pd.finished(i, rec) }) }
		if pd.split() && i < cfg.Prefills {
			eng.HandoffPrefill = func(h llm.Handoff) { pd.cross(i, func() { pd.handoff(i, h) }) }
		}
		pd.engines = append(pd.engines, eng)
		pd.envs = append(pd.envs, senv)
		pd.cols = append(pd.cols, col)
		pd.inflight = append(pd.inflight, 0)
		pd.pendingNs = append(pd.pendingNs, 0)
	}
	return pd, nil
}

// chargeEntry is one outstanding request's routing account: the engine it
// is charged to and the profiled token-time charged.
type chargeEntry struct {
	engine int
	cost   sim.Time
}

// prefillCost prices one request's prefill pass on engine g by scaling
// g's profiled mean (measured at Spec.ProfilePromptTokens) to the actual
// prompt length — the prefill grid grows with tokens, so a 2000-token
// prompt is not one unit of load but ten.
func (pd *PD) prefillCost(g, promptTokens int) sim.Time {
	basis := pd.cfg.engineCfg(g).Spec.ProfilePromptTokens
	if basis <= 0 || promptTokens <= 0 {
		return pd.prefillNs[g]
	}
	return pd.prefillNs[g] * sim.Time(promptTokens) / sim.Time(basis)
}

// requestCost prices one request on engine g: its prefill pass plus, when
// the engine also decodes (colocated deployments), its decode iterations.
func (pd *PD) requestCost(g int, req llm.Request) sim.Time {
	cost := pd.prefillCost(g, req.Prompt)
	if !pd.split() {
		cost += sim.Time(req.Output) * pd.decodeNs[g]
	}
	return cost
}

// SetAdmission installs (or removes) per-tenant token-bucket admission on
// the PD front. Shed requests terminate through OnFinish with a failed
// record carrying gateway.ErrTenantShed.
func (pd *PD) SetAdmission(a *gateway.Admission) {
	pd.admission = a
	if a != nil {
		name := "least-loaded"
		if pd.routePol != nil {
			name = pd.routePol.Name()
		}
		pd.gw.activate(name)
	}
}

// Admission returns the installed admission controller, or nil.
func (pd *PD) Admission() *gateway.Admission { return pd.admission }

// split reports whether the deployment is disaggregated.
func (pd *PD) split() bool { return pd.cfg.Decodes > 0 }

// cross runs fn on the control timeline: shard-side engine callbacks must
// not touch front state (inflight counters, the link) directly when the
// engine lives on a shard.
func (pd *PD) cross(from int, fn func()) {
	if pd.world != nil {
		pd.world.Post(from, fn)
		return
	}
	fn()
}

// toEngine runs fn against engine g's state on its own timeline. From a
// control event the shards are parked at the window barrier, so scheduling
// at the shard's current time is the canonical ctrl→shard crossing.
func (pd *PD) toEngine(g int, fn func(*llm.Engine)) {
	eng := pd.engines[g]
	if pd.world == nil {
		fn(eng)
		return
	}
	senv := pd.envs[g]
	senv.Do(senv.Now(), func() { fn(eng) })
}

// leastLoadedIn picks the engine with the fewest assigned requests among
// indices [lo, hi), lowest index on ties.
func (pd *PD) leastLoadedIn(lo, hi int) int {
	best, bestLoad := lo, pd.inflight[lo]
	for i := lo + 1; i < hi; i++ {
		if pd.inflight[i] < bestLoad {
			best, bestLoad = i, pd.inflight[i]
		}
	}
	return best
}

// views builds gateway replica views over engines [lo, hi): queued work in
// profiled token-time, this request's estimated cost on each engine (a
// slow replica quotes more), all replicas warm (generative weights stay
// resident; affinity differentiates by session).
func (pd *PD) views(lo, hi int, costOf func(g int) sim.Time) []gateway.Replica {
	out := make([]gateway.Replica, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, gateway.Replica{
			Index: i - lo, ID: i,
			InFlight: pd.inflight[i], Capacity: 1,
			QueueNs: pd.pendingNs[i], CostNs: costOf(i),
			Warm: true,
		})
	}
	return out
}

// pickIn routes within engines [lo, hi): the configured gateway policy
// when present, the legacy least-outstanding scan otherwise.
func (pd *PD) pickIn(pol gateway.Policy, lo, hi int, req llm.Request, costOf func(g int) sim.Time) int {
	if pol == nil {
		return pd.leastLoadedIn(lo, hi)
	}
	views := pd.views(lo, hi, costOf)
	pick := pol.Pick(gateway.Request{Model: pd.cfg.LLM.Spec.Name, Tenant: req.Tenant, Session: req.Session}, views)
	if pick < 0 || pick >= len(views) {
		panic(fmt.Sprintf("cluster: pd policy %q picked engine %d of %d", pol.Name(), pick, len(views)))
	}
	if pd.gw.on {
		pd.gw.mt.Add(pd.gw.routed, pd.env.Now(), 1)
		pd.gw.mt.Observe(pd.gw.predNs, pd.env.Now(), float64(views[pick].Predicted()))
	}
	return lo + pick
}

// Submit routes one request: through the admission controller, then to a
// prefill replica (disaggregated) or a full engine (colocated) — picked by
// the gateway policy when configured, least-outstanding otherwise. It
// returns the chosen engine index, or Shed when admission refused the
// request (terminal: OnFinish has observed the failed record). Call on the
// control timeline.
func (pd *PD) Submit(req llm.Request) int {
	now := pd.env.Now()
	if err := pd.admission.Admit(req.Tenant, now); err != nil {
		rec := metrics.JobRecord{
			ID: req.ID, Model: pd.cfg.LLM.Spec.Name, Client: req.Client,
			Tenant: req.Tenant, Submit: req.Submit, Admit: now,
			ExecDone: now, Delivered: now, PromptTokens: req.Prompt,
			Failed: true, FailureReason: err.Error(),
		}
		pd.shedCol.Add(rec)
		pd.gw.mt.Add(pd.gw.shed, now, 1)
		if req.Tenant != "" {
			pd.gw.mt.Add(pd.gw.tenant(req.Tenant).shed, now, 1)
		}
		if pd.OnFinish != nil {
			pd.OnFinish(rec)
		}
		return Shed
	}
	if pd.admission != nil {
		pd.gw.mt.Add(pd.gw.admitted, now, 1)
		if req.Tenant != "" {
			pd.gw.mt.Add(pd.gw.tenant(req.Tenant).admitted, now, 1)
		}
	}
	hi := len(pd.engines)
	if pd.split() {
		hi = pd.cfg.Prefills
	}
	g := pd.pickIn(pd.routePol, 0, hi, req, func(i int) sim.Time { return pd.requestCost(i, req) })
	pd.inflight[g]++
	if pd.charge != nil {
		cost := pd.requestCost(g, req)
		pd.pendingNs[g] += cost
		pd.charge[req.ID] = chargeEntry{engine: g, cost: cost}
	}
	pd.toEngine(g, func(eng *llm.Engine) { eng.Admit(req) })
	return g
}

// handoff moves a prefilled sequence to a decode replica: pick the
// least-loaded one, model the KV transfer on the interconnect, then admit
// the sequence with its transferred KV state.
func (pd *PD) handoff(from int, h llm.Handoff) {
	pd.inflight[from]--
	decodeCost := func(g int) sim.Time { return sim.Time(h.Req.Output) * pd.decodeNs[g] }
	if pd.charge != nil {
		if ch, ok := pd.charge[h.Req.ID]; ok {
			pd.pendingNs[ch.engine] -= ch.cost
		}
	}
	d := pd.pickIn(pd.decodePol, pd.cfg.Prefills, len(pd.engines), h.Req, decodeCost)
	pd.inflight[d]++
	if pd.charge != nil {
		pd.pendingNs[d] += decodeCost(d)
		pd.charge[h.Req.ID] = chargeEntry{engine: d, cost: decodeCost(d)}
	}
	bytes := int(int64(h.Req.Prompt) * pd.cfg.engineCfg(from).Spec.KVBytesPerToken)
	pd.transfers++
	pd.kvBytes += int64(bytes)
	enq := pd.env.Now()
	if pd.mt != nil {
		pd.mt.Add(pd.mtHandoffs, enq, 1)
	}
	pd.link.Transfer(cudart.DeviceToDevice, bytes, func() {
		h := h
		h.Rec.KVTransferNs += pd.env.Now() - enq
		if pd.mt != nil {
			pd.mt.Observe(pd.mtKVNs, pd.env.Now(), float64(pd.env.Now()-enq))
		}
		pd.toEngine(d, func(eng *llm.Engine) { eng.AdmitDecoded(h) })
	})
}

func (pd *PD) finished(idx int, rec metrics.JobRecord) {
	pd.inflight[idx]--
	if pd.charge != nil {
		if ch, ok := pd.charge[rec.ID]; ok {
			pd.pendingNs[ch.engine] -= ch.cost
			delete(pd.charge, rec.ID)
		}
	}
	if pd.OnFinish != nil {
		pd.OnFinish(rec)
	}
}

// World returns the conservative-window engine, or nil when serial.
func (pd *PD) World() *sim.World { return pd.world }

// Size returns the engine count.
func (pd *PD) Size() int { return len(pd.engines) }

// Engine returns the i-th engine (prefill replicas first).
func (pd *PD) Engine(i int) *llm.Engine { return pd.engines[i] }

// InFlight returns the front's view of outstanding requests.
func (pd *PD) InFlight() int {
	total := 0
	for _, n := range pd.inflight {
		total += n
	}
	return total
}

// Transfers returns the KV handoff count and total bytes moved.
func (pd *PD) Transfers() (int, int64) { return pd.transfers, pd.kvBytes }

// Preemptions sums KV preemptions across engines.
func (pd *PD) Preemptions() int {
	total := 0
	for _, e := range pd.engines {
		total += e.Preemptions()
	}
	return total
}

// KVPeakPages returns the highest per-engine KV page watermark.
func (pd *PD) KVPeakPages() int {
	peak := 0
	for _, e := range pd.engines {
		if p := e.Mem().Stats().KVPeakBlocks; p > peak {
			peak = p
		}
	}
	return peak
}

// Collector returns a merged view of all engines' completion records, plus
// the failed records of gateway-shed requests.
func (pd *PD) Collector() *metrics.Collector {
	merged := metrics.NewCollector()
	for _, col := range pd.cols {
		for _, r := range col.Records() {
			merged.Add(r)
		}
	}
	for _, r := range pd.shedCol.Records() {
		merged.Add(r)
	}
	return merged
}
