package cluster

import (
	"fmt"

	"paella/internal/cudart"
	"paella/internal/llm"
	"paella/internal/metrics"
	"paella/internal/sim"
	"paella/internal/telemetry"
)

// PDConfig describes a generative-serving deployment: N replicas either
// colocated (every engine prefills and decodes its own requests) or
// disaggregated (dedicated prefill replicas hand prefilled KV state to
// dedicated decode replicas over the interconnect). Disaggregation trades
// a per-request KV transfer for decode replicas whose iteration cadence is
// never perturbed by long prefill grids.
type PDConfig struct {
	LLM llm.Config
	// Prefills and Decodes are the replica counts. Decodes == 0 selects the
	// colocated deployment: Prefills full engines, no transfers.
	Prefills int
	Decodes  int
	// LinkLatency and LinkBytesPerNs model the KV-transfer interconnect
	// (defaults: 10µs setup, 12 B/ns — the PCIe peer-to-peer path).
	LinkLatency    sim.Time
	LinkBytesPerNs float64
	// ShardSetup, if set, runs for each engine's Env right after the shard
	// is created and before the engine is built — the hook to attach
	// per-shard trace recorders or telemetry meters. On a serial Env it
	// runs once per engine with the shared Env.
	ShardSetup func(i int, env *sim.Env)
}

func (c *PDConfig) withDefaults() (PDConfig, error) {
	out := *c
	if out.Prefills <= 0 {
		return out, fmt.Errorf("cluster: pd needs at least one replica, got %d", out.Prefills)
	}
	if out.Decodes < 0 {
		return out, fmt.Errorf("cluster: negative decode replica count %d", out.Decodes)
	}
	if out.LinkLatency == 0 {
		out.LinkLatency = 10 * sim.Microsecond
	}
	if out.LinkBytesPerNs == 0 {
		out.LinkBytesPerNs = 12.0
	}
	return out, nil
}

// PD fronts a set of llm engines with least-outstanding routing and, when
// disaggregated, the prefill→decode KV handoff pipeline. On a sim.World
// each engine lives on its own shard Env; routing, handoff, and transfer
// completion serialize on the control Env exactly as Cluster does, so runs
// are bit-identical serial or parallel.
type PD struct {
	env   *sim.Env
	world *sim.World
	cfg   PDConfig

	engines []*llm.Engine
	envs    []*sim.Env
	cols    []*metrics.Collector
	// inflight counts requests currently assigned to each engine,
	// maintained at the front where routing decides.
	inflight []int
	link     *cudart.PCIeLink

	transfers int
	kvBytes   int64

	// mt is the control timeline's telemetry meter (nil = disabled):
	// handoff count and per-transfer KV latency.
	mt         *telemetry.Meter
	mtHandoffs telemetry.MetricID
	mtKVNs     telemetry.MetricID

	// OnFinish observes every terminal record on the control timeline.
	OnFinish func(metrics.JobRecord)
}

// NewPD builds the deployment on a single serial Env.
func NewPD(env *sim.Env, cfg PDConfig) (*PD, error) {
	return buildPD(env, nil, cfg)
}

// NewPDWorld builds the deployment on a conservative-window engine: one
// shard per llm engine. The world must have no shards yet; request
// generators must schedule on w.Ctrl().
func NewPDWorld(w *sim.World, cfg PDConfig) (*PD, error) {
	if w.NumShards() != 0 {
		return nil, fmt.Errorf("cluster: world already has %d shards", w.NumShards())
	}
	return buildPD(w.Ctrl(), w, cfg)
}

func buildPD(env *sim.Env, w *sim.World, cfg PDConfig) (*PD, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	pd := &PD{env: env, world: w, cfg: cfg}
	pd.link = cudart.NewPCIeLink(env, cfg.LinkLatency, cfg.LinkBytesPerNs)
	if mt := telemetry.FromEnv(env); mt != nil {
		pd.mt = mt
		pd.mtHandoffs = mt.Counter("pd/kv_handoffs")
		pd.mtKVNs = mt.Histogram("pd/kv_handoff_ns")
	}
	n := cfg.Prefills + cfg.Decodes
	for i := 0; i < n; i++ {
		senv := env
		if w != nil {
			senv = w.AddShard()
		}
		if cfg.ShardSetup != nil {
			cfg.ShardSetup(i, senv)
		}
		// Each engine compiles its own copy: the Compiled's launch-spec
		// caches are mutated at runtime and must not be shared across
		// shards. Profiling is deterministic, so the copies agree.
		comp, err := llm.CompileSpec(cfg.LLM)
		if err != nil {
			return nil, err
		}
		col := metrics.NewCollector()
		eng, err := llm.NewEngine(senv, comp, col)
		if err != nil {
			return nil, err
		}
		i := i
		eng.OnFinish = func(rec metrics.JobRecord) { pd.cross(i, func() { pd.finished(i, rec) }) }
		if pd.split() && i < cfg.Prefills {
			eng.HandoffPrefill = func(h llm.Handoff) { pd.cross(i, func() { pd.handoff(i, h) }) }
		}
		pd.engines = append(pd.engines, eng)
		pd.envs = append(pd.envs, senv)
		pd.cols = append(pd.cols, col)
		pd.inflight = append(pd.inflight, 0)
	}
	return pd, nil
}

// split reports whether the deployment is disaggregated.
func (pd *PD) split() bool { return pd.cfg.Decodes > 0 }

// cross runs fn on the control timeline: shard-side engine callbacks must
// not touch front state (inflight counters, the link) directly when the
// engine lives on a shard.
func (pd *PD) cross(from int, fn func()) {
	if pd.world != nil {
		pd.world.Post(from, fn)
		return
	}
	fn()
}

// toEngine runs fn against engine g's state on its own timeline. From a
// control event the shards are parked at the window barrier, so scheduling
// at the shard's current time is the canonical ctrl→shard crossing.
func (pd *PD) toEngine(g int, fn func(*llm.Engine)) {
	eng := pd.engines[g]
	if pd.world == nil {
		fn(eng)
		return
	}
	senv := pd.envs[g]
	senv.Do(senv.Now(), func() { fn(eng) })
}

// leastLoadedIn picks the engine with the fewest assigned requests among
// indices [lo, hi), lowest index on ties.
func (pd *PD) leastLoadedIn(lo, hi int) int {
	best, bestLoad := lo, pd.inflight[lo]
	for i := lo + 1; i < hi; i++ {
		if pd.inflight[i] < bestLoad {
			best, bestLoad = i, pd.inflight[i]
		}
	}
	return best
}

// Submit routes one request: to the least-loaded prefill replica
// (disaggregated) or the least-loaded engine (colocated). It returns the
// chosen engine index. Call on the control timeline.
func (pd *PD) Submit(req llm.Request) int {
	hi := len(pd.engines)
	if pd.split() {
		hi = pd.cfg.Prefills
	}
	g := pd.leastLoadedIn(0, hi)
	pd.inflight[g]++
	pd.toEngine(g, func(eng *llm.Engine) { eng.Admit(req) })
	return g
}

// handoff moves a prefilled sequence to a decode replica: pick the
// least-loaded one, model the KV transfer on the interconnect, then admit
// the sequence with its transferred KV state.
func (pd *PD) handoff(from int, h llm.Handoff) {
	pd.inflight[from]--
	d := pd.leastLoadedIn(pd.cfg.Prefills, len(pd.engines))
	pd.inflight[d]++
	bytes := int(int64(h.Req.Prompt) * pd.cfg.LLM.Spec.KVBytesPerToken)
	pd.transfers++
	pd.kvBytes += int64(bytes)
	enq := pd.env.Now()
	if pd.mt != nil {
		pd.mt.Add(pd.mtHandoffs, enq, 1)
	}
	pd.link.Transfer(cudart.DeviceToDevice, bytes, func() {
		h := h
		h.Rec.KVTransferNs += pd.env.Now() - enq
		if pd.mt != nil {
			pd.mt.Observe(pd.mtKVNs, pd.env.Now(), float64(pd.env.Now()-enq))
		}
		pd.toEngine(d, func(eng *llm.Engine) { eng.AdmitDecoded(h) })
	})
}

func (pd *PD) finished(idx int, rec metrics.JobRecord) {
	pd.inflight[idx]--
	if pd.OnFinish != nil {
		pd.OnFinish(rec)
	}
}

// World returns the conservative-window engine, or nil when serial.
func (pd *PD) World() *sim.World { return pd.world }

// Size returns the engine count.
func (pd *PD) Size() int { return len(pd.engines) }

// Engine returns the i-th engine (prefill replicas first).
func (pd *PD) Engine(i int) *llm.Engine { return pd.engines[i] }

// InFlight returns the front's view of outstanding requests.
func (pd *PD) InFlight() int {
	total := 0
	for _, n := range pd.inflight {
		total += n
	}
	return total
}

// Transfers returns the KV handoff count and total bytes moved.
func (pd *PD) Transfers() (int, int64) { return pd.transfers, pd.kvBytes }

// Preemptions sums KV preemptions across engines.
func (pd *PD) Preemptions() int {
	total := 0
	for _, e := range pd.engines {
		total += e.Preemptions()
	}
	return total
}

// KVPeakPages returns the highest per-engine KV page watermark.
func (pd *PD) KVPeakPages() int {
	peak := 0
	for _, e := range pd.engines {
		if p := e.Mem().Stats().KVPeakBlocks; p > peak {
			peak = p
		}
	}
	return peak
}

// Collector returns a merged view of all engines' completion records.
func (pd *PD) Collector() *metrics.Collector {
	merged := metrics.NewCollector()
	for _, col := range pd.cols {
		for _, r := range col.Records() {
			merged.Add(r)
		}
	}
	return merged
}
