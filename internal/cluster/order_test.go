package cluster

import (
	"testing"

	"paella/internal/core"
	"paella/internal/gateway"
	"paella/internal/sim"
)

// TestFailoverSubmissionOrder: requests pending on a crashed replica
// re-enter the balancer in submission order — the insertion-ordered list,
// not id order (the regression would re-route 3 before 5 below) and never
// map-iteration order.
func TestFailoverSubmissionOrder(t *testing.T) {
	env, c := mkCluster(t, &pinned{gpu: 0})
	conn := c.Connect()
	// Non-monotone ids, all pinned to GPU 0, still in flight at crash time.
	ids := []uint64{5, 3, 9}
	env.At(0, func() {
		for _, id := range ids {
			if conn.Submit(core.Request{ID: id, Model: "tinynet", Submit: 0}) != 0 {
				t.Errorf("request %d not routed to GPU 0", id)
			}
		}
	})
	env.At(sim.Microsecond, func() { c.Crash(0) })
	env.RunUntil(2 * sim.Microsecond)
	// Failover appends re-submitted ids to the order list as it processes
	// them; the tail is therefore the processing order.
	tail := conn.order[len(conn.order)-len(ids):]
	for i, id := range ids {
		if tail[i] != id {
			t.Fatalf("failover order = %v, want submission order %v", tail, ids)
		}
	}
	env.Run()
}

// pinned routes everything to one GPU while it is in the live view, else
// to live view position 0.
type pinned struct{ gpu int }

func (p *pinned) Name() string { return "pinned" }
func (p *pinned) Pick(_ gateway.Request, gpus []GPUView) int {
	if p.gpu < len(gpus) {
		return p.gpu
	}
	return 0
}

// TestOrderCompaction: the insertion-order list does not grow with total
// throughput — terminated ids are compacted away.
func TestOrderCompaction(t *testing.T) {
	env, c := mkCluster(t, NewRoundRobin())
	conn := c.Connect()
	for i := 0; i < 400; i++ {
		id := uint64(i + 1)
		env.At(sim.Time(i)*50*sim.Microsecond, func() {
			conn.Submit(core.Request{ID: id, Model: "tinynet", Submit: env.Now()})
		})
	}
	env.Run()
	if len(conn.pending) != 0 {
		t.Fatalf("%d requests still pending after drain", len(conn.pending))
	}
	if len(conn.order) > 64 {
		t.Fatalf("order list retains %d entries after all 400 requests terminated", len(conn.order))
	}
}
