package cluster_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"paella/internal/cluster"
	"paella/internal/compiler"
	"paella/internal/core"
	"paella/internal/fault"
	"paella/internal/gateway"
	"paella/internal/gpu"
	"paella/internal/llm"
	"paella/internal/metrics"
	"paella/internal/model"
	"paella/internal/sched"
	"paella/internal/sim"
	"paella/internal/telemetry"
	"paella/internal/trace"
)

// worldRunResult captures everything observable about one cluster run:
// metrics (every per-request record, JSON-encoded), the failure summary,
// and the merged Perfetto trace bytes.
type worldRunResult struct {
	metricsJSON   string
	failures      string
	traceBytes    string
	telemetryJSON string
	completed     int
	failed        int
}

// chaosLowPlan is the identity matrix's non-trivial fault column: a
// notification drop/dup fault and a PCIe brownout on replica 0, then a full
// replica-0 crash mid-run forcing failover.
func chaosLowPlan(seed int64) *fault.Plan {
	return &fault.Plan{
		Seed: seed,
		Events: []fault.Event{
			{At: 200 * sim.Microsecond, Kind: fault.KindDropNotifs, Drop: 0.05, Dup: 0.02},
			{At: 400 * sim.Microsecond, Kind: fault.KindPCIeBrownout, Factor: 0.5},
			{At: 900 * sim.Microsecond, Kind: fault.KindPCIeRestore},
			{At: 1200 * sim.Microsecond, Kind: fault.KindCrashReplica, Replica: 0},
		},
	}
}

// runWorldCluster executes one cell of the matrix on the World engine.
// maxBatch > 1 turns on dispatcher dynamic batching (the matrix's batching
// column): every replica batches same-kernel jobs with a 50µs formation
// window, which must not cost any determinism.
func runWorldCluster(t *testing.T, seed int64, mkBal func() cluster.Balancer, plan *fault.Plan, parallel, speculate, traced bool, maxBatch int) worldRunResult {
	t.Helper()
	w := sim.NewWorld()
	w.SetParallel(parallel)
	w.SetSpeculative(speculate)
	defer w.Close()
	var ctrlRec *trace.Recorder
	shardRecs := make([]*trace.Recorder, 4)
	shardMts := make([]*telemetry.Meter, 4)
	if traced {
		ctrlRec = trace.New()
		w.Ctrl().SetRecorder(ctrlRec)
	}
	devs := []gpu.Config{gpu.TeslaT4(), gpu.TeslaT4(), gpu.TeslaT4(), gpu.TeslaT4()}
	c, err := cluster.NewWorldWithConfig(w, devs, func(int, gpu.Config) core.Config {
		cfg := core.DefaultConfig(sched.NewPaella(10000))
		if maxBatch > 1 {
			cfg.MaxBatch = maxBatch
			cfg.BatchWindow = 50 * sim.Microsecond
		}
		if plan != nil {
			// Faulty cells arm the recovery machinery, mirroring how the
			// serving layer runs fault plans: tolerant notification handling
			// plus the kernel watchdog.
			cfg.FaultTolerant = true
			cfg.KernelTimeout = 50 * sim.Microsecond
		}
		return cfg
	}, mkBal(), func(i int, shard *sim.Env) {
		if traced {
			shardRecs[i] = trace.New()
			shard.SetRecorder(shardRecs[i])
		}
		// The telemetry column rides the traced cells: one meter per
		// shard (meters are single-shard state), with an SLO monitor so
		// the alert stream joins the bit-identity comparison.
		shardMts[i] = telemetry.NewMeter(fmt.Sprintf("replica%d", i), 0)
		shardMts[i].SLO(telemetry.SLOConfig{
			Name: "goodput@5ms", Deadline: 5 * sim.Millisecond, Target: 0.99,
			Short: sim.Millisecond, Long: 10 * sim.Millisecond,
		})
		shard.SetMeter(shardMts[i])
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterModel(model.TinyNet(), compiler.DefaultConfig(), 1); err != nil {
		t.Fatal(err)
	}
	conn := c.Connect()
	res := worldRunResult{}
	fails := map[uint64]string{}
	conn.OnComplete = func(uint64) { res.completed++ }
	conn.OnFailed = func(id uint64, err error) {
		res.failed++
		fails[id] = err.Error()
	}

	if plan != nil {
		inj, err := fault.NewInjector(w.Ctrl(), plan, fault.Targets{
			Device:     c.Dispatcher(0).Device(),
			Dispatcher: c.Dispatcher(0),
			Cluster:    c,
		})
		if err != nil {
			t.Fatal(err)
		}
		inj.Install()
	}

	// Deterministic open-loop arrivals from the seed (ids 1..n).
	rng := rand.New(rand.NewSource(seed))
	const n = 90
	at := sim.Time(0)
	last := sim.Time(0)
	for i := 0; i < n; i++ {
		at += sim.Time(rng.Intn(60)+5) * sim.Microsecond
		last = at
		id := uint64(i + 1)
		w.Ctrl().At(at, func() {
			conn.Submit(core.Request{ID: id, Model: "tinynet", Submit: w.Ctrl().Now()})
		})
	}
	w.RunUntil(last + 4*sim.Second)

	recs := c.Collector().Records()
	sort.Slice(recs, func(a, b int) bool { return recs[a].ID < recs[b].ID })
	mj, err := json.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	res.metricsJSON = string(mj)
	var fids []uint64
	for id := range fails {
		fids = append(fids, id)
	}
	sort.Slice(fids, func(a, b int) bool { return fids[a] < fids[b] })
	for _, id := range fids {
		res.failures += fmt.Sprintf("%d:%s;", id, fails[id])
	}
	if traced {
		var buf bytes.Buffer
		all := []*trace.Recorder{ctrlRec}
		all = append(all, shardRecs...)
		if err := trace.WriteChromeTraceAll(&buf, all...); err != nil {
			t.Fatal(err)
		}
		res.traceBytes = buf.String()
	}
	var tbuf bytes.Buffer
	if err := telemetry.WriteJSON(&tbuf, w.Ctrl().Now(), telemetry.Export{Meters: shardMts}); err != nil {
		t.Fatal(err)
	}
	res.telemetryJSON = tbuf.String()
	return res
}

// TestWorldSerialParallelBitIdentical is the acceptance-criterion matrix:
// seeds × balancers × fault plans, each cell run serially and in parallel
// on the World engine, comparing per-request metrics JSON, failure
// summaries, and (on the traced cells) merged Perfetto trace bytes.
func TestWorldSerialParallelBitIdentical(t *testing.T) {
	balancers := []struct {
		name string
		mk   func() cluster.Balancer
	}{
		{"round-robin", cluster.NewRoundRobin},
		{"least-loaded", cluster.NewLeastLoaded},
		{"residency-aware", func() cluster.Balancer { return cluster.NewResidencyAware(nil) }},
	}
	plans := []struct {
		name string
		mk   func(seed int64) *fault.Plan
	}{
		{"none", func(int64) *fault.Plan { return nil }},
		{"chaos-low", chaosLowPlan},
	}
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		for _, b := range balancers {
			for _, p := range plans {
				for _, maxBatch := range []int{0, 4} {
					name := fmt.Sprintf("seed%d/%s/%s/batch%d", seed, b.name, p.name, maxBatch)
					t.Run(name, func(t *testing.T) {
						// Trace a deterministic subset: full trace comparison is
						// the expensive axis, one seed of it per cell suffices.
						traced := seed == 3
						serial := runWorldCluster(t, seed, b.mk, p.mk(seed), false, false, traced, maxBatch)
						par := runWorldCluster(t, seed, b.mk, p.mk(seed), true, false, traced, maxBatch)
						if serial.completed == 0 {
							t.Fatal("no requests completed; workload broken")
						}
						if serial.completed+serial.failed != 90 {
							t.Fatalf("conservation: %d completed + %d failed != 90",
								serial.completed, serial.failed)
						}
						if serial.completed != par.completed || serial.failed != par.failed {
							t.Fatalf("outcome counts diverge: serial %d/%d, parallel %d/%d",
								serial.completed, serial.failed, par.completed, par.failed)
						}
						if serial.metricsJSON != par.metricsJSON {
							t.Fatal("per-request metrics JSON diverges between serial and parallel")
						}
						if serial.failures != par.failures {
							t.Fatalf("failure summaries diverge:\n serial: %s\n parallel: %s",
								serial.failures, par.failures)
						}
						if serial.traceBytes != par.traceBytes {
							t.Fatal("merged trace bytes diverge between serial and parallel")
						}
						if serial.telemetryJSON != par.telemetryJSON {
							t.Fatal("telemetry export diverges between serial and parallel")
						}
					})
				}
			}
		}
	}
}

// runWorldLLM executes one cell of the matrix's LLM column: a generative
// prefill/decode deployment (colocated or disaggregated) on the World
// engine, with a KV pool small enough that paging preemption fires.
func runWorldLLM(t *testing.T, seed int64, split, parallel, speculate bool) worldRunResult {
	t.Helper()
	w := sim.NewWorld()
	w.SetParallel(parallel)
	w.SetSpeculative(speculate)
	defer w.Close()
	cfg := cluster.PDConfig{LLM: llmTestConfig(24), Prefills: 2}
	if split {
		cfg.Prefills, cfg.Decodes = 1, 1
	}
	// The telemetry column: a meter on the control timeline (routing,
	// KV-handoff instruments) and one per engine shard via ShardSetup.
	ctrlMt := telemetry.NewMeter("front", 0)
	w.Ctrl().SetMeter(ctrlMt)
	shardMts := []*telemetry.Meter{ctrlMt}
	cfg.ShardSetup = func(i int, env *sim.Env) {
		mt := telemetry.NewMeter(fmt.Sprintf("engine%d", i), 0)
		mt.SLO(telemetry.SLOConfig{
			Name: "ttft@2ms", Metric: telemetry.SLOTTFT, Deadline: 2 * sim.Millisecond,
			Target: 0.9, Short: sim.Millisecond, Long: 10 * sim.Millisecond,
		})
		env.SetMeter(mt)
		shardMts = append(shardMts, mt)
	}
	pd, err := cluster.NewPDWorld(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := worldRunResult{}
	pd.OnFinish = func(r metrics.JobRecord) {
		if r.Failed {
			res.failed++
		} else {
			res.completed++
		}
	}
	rng := rand.New(rand.NewSource(seed))
	const n = 60
	at := sim.Time(0)
	for i := 0; i < n; i++ {
		at += sim.Time(rng.Intn(80)+10) * sim.Microsecond
		req := llm.Request{
			ID:     uint64(i + 1),
			Client: i % 4,
			Submit: at,
			Prompt: rng.Intn(24) + 4,
			Output: rng.Intn(12) + 2,
		}
		w.Ctrl().At(at, func() { pd.Submit(req) })
	}
	w.RunUntil(at + 2*sim.Second)
	recs := pd.Collector().Records()
	sort.Slice(recs, func(a, b int) bool { return recs[a].ID < recs[b].ID })
	mj, err := json.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	res.metricsJSON = string(mj)
	var tbuf bytes.Buffer
	if err := telemetry.WriteJSON(&tbuf, w.Ctrl().Now(), telemetry.Export{Collector: pd.Collector(), Meters: shardMts}); err != nil {
		t.Fatal(err)
	}
	res.telemetryJSON = tbuf.String()
	return res
}

// TestWorldSerialParallelBitIdenticalLLM extends the acceptance matrix with
// the generative column: seeds × {colocated, disaggregated}, each run
// serially and in parallel, comparing the sorted per-request metrics JSON
// (which includes TTFT inputs, token counts, preemptions, and KV-transfer
// times — any scheduling divergence shows up there).
func TestWorldSerialParallelBitIdenticalLLM(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		for _, split := range []bool{false, true} {
			name := fmt.Sprintf("seed%d/colocated", seed)
			if split {
				name = fmt.Sprintf("seed%d/disaggregated", seed)
			}
			t.Run(name, func(t *testing.T) {
				serial := runWorldLLM(t, seed, split, false, false)
				par := runWorldLLM(t, seed, split, true, false)
				if serial.completed == 0 {
					t.Fatal("no requests completed; workload broken")
				}
				if serial.completed+serial.failed != 60 {
					t.Fatalf("conservation: %d completed + %d failed != 60",
						serial.completed, serial.failed)
				}
				if serial.completed != par.completed || serial.failed != par.failed {
					t.Fatalf("outcome counts diverge: serial %d/%d, parallel %d/%d",
						serial.completed, serial.failed, par.completed, par.failed)
				}
				if serial.metricsJSON != par.metricsJSON {
					t.Fatal("per-request metrics JSON diverges between serial and parallel")
				}
				if serial.telemetryJSON != par.telemetryJSON {
					t.Fatal("telemetry export diverges between serial and parallel")
				}
			})
		}
	}
}

// runWorldGateway executes one cell of the matrix's gateway column: a
// tenant-tagged workload routed by a gateway policy (predicted-latency or
// affinity) with optional token-bucket admission, on the World engine. The
// control timeline carries its own meter so the gateway's routing and
// admission instruments join the bit-identity comparison.
func runWorldGateway(t *testing.T, seed int64, mkBal func() cluster.Balancer, admitPS float64, parallel, speculate bool) worldRunResult {
	t.Helper()
	w := sim.NewWorld()
	w.SetParallel(parallel)
	w.SetSpeculative(speculate)
	defer w.Close()
	ctrlMt := telemetry.NewMeter("front", 0)
	w.Ctrl().SetMeter(ctrlMt)
	shardMts := []*telemetry.Meter{ctrlMt}
	devs := []gpu.Config{gpu.TeslaT4(), gpu.TeslaT4(), gpu.TeslaT4(), gpu.TeslaT4()}
	c, err := cluster.NewWorldWithConfig(w, devs, func(int, gpu.Config) core.Config {
		return core.DefaultConfig(sched.NewPaella(10000))
	}, mkBal(), func(i int, shard *sim.Env) {
		mt := telemetry.NewMeter(fmt.Sprintf("replica%d", i), 0)
		shard.SetMeter(mt)
		shardMts = append(shardMts, mt)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterModel(model.TinyNet(), compiler.DefaultConfig(), 1); err != nil {
		t.Fatal(err)
	}
	if admitPS > 0 {
		// A shallow bucket (Burst 4) against the trace's ~28k req/s arrival
		// spike guarantees the shed path is exercised in-cell.
		c.SetAdmission(gateway.NewAdmission(gateway.AdmissionConfig{
			Default: gateway.TenantLimit{RatePerSec: admitPS, Burst: 4},
		}))
	}
	conn := c.Connect()
	res := worldRunResult{}
	fails := map[uint64]string{}
	conn.OnComplete = func(uint64) { res.completed++ }
	conn.OnFailed = func(id uint64, err error) {
		res.failed++
		fails[id] = err.Error()
	}
	rng := rand.New(rand.NewSource(seed))
	const n = 90
	at := sim.Time(0)
	last := sim.Time(0)
	tenants := []string{"tenant-a", "tenant-b", "tenant-c"}
	for i := 0; i < n; i++ {
		at += sim.Time(rng.Intn(60)+5) * sim.Microsecond
		last = at
		id := uint64(i + 1)
		tn := tenants[i%len(tenants)]
		session := uint64(i%5) + 1
		w.Ctrl().At(at, func() {
			conn.Submit(core.Request{ID: id, Model: "tinynet", Tenant: tn,
				Session: session, Submit: w.Ctrl().Now()})
		})
	}
	w.RunUntil(last + 4*sim.Second)
	recs := c.Collector().Records()
	sort.Slice(recs, func(a, b int) bool { return recs[a].ID < recs[b].ID })
	mj, err := json.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	res.metricsJSON = string(mj)
	var fids []uint64
	for id := range fails {
		fids = append(fids, id)
	}
	sort.Slice(fids, func(a, b int) bool { return fids[a] < fids[b] })
	for _, id := range fids {
		res.failures += fmt.Sprintf("%d:%s;", id, fails[id])
	}
	var tbuf bytes.Buffer
	if err := telemetry.WriteJSON(&tbuf, w.Ctrl().Now(), telemetry.Export{Meters: shardMts}); err != nil {
		t.Fatal(err)
	}
	res.telemetryJSON = tbuf.String()
	return res
}

// TestWorldSerialParallelBitIdenticalGateway extends the acceptance matrix
// with the gateway column: seeds × {predicted-latency, affinity} ×
// {admission off, admission on}, each run serially and in parallel. The
// comparison covers per-request metrics (including tenant tags and shed
// records), failure summaries, and the telemetry export with the gateway's
// routing, prediction, and per-tenant admission instruments.
func TestWorldSerialParallelBitIdenticalGateway(t *testing.T) {
	balancers := []struct {
		name string
		mk   func() cluster.Balancer
	}{
		{"predicted-latency", gateway.NewPredictedLatency},
		{"affinity", func() cluster.Balancer { return gateway.NewAffinity(0) }},
	}
	for _, seed := range []int64{1, 2, 3} {
		for _, b := range balancers {
			for _, admitPS := range []float64{0, 3000} {
				mode := "admit-off"
				if admitPS > 0 {
					mode = "admit-on"
				}
				name := fmt.Sprintf("seed%d/%s/%s", seed, b.name, mode)
				t.Run(name, func(t *testing.T) {
					serial := runWorldGateway(t, seed, b.mk, admitPS, false, false)
					par := runWorldGateway(t, seed, b.mk, admitPS, true, false)
					if serial.completed == 0 {
						t.Fatal("no requests completed; workload broken")
					}
					if serial.completed+serial.failed != 90 {
						t.Fatalf("conservation: %d completed + %d failed != 90",
							serial.completed, serial.failed)
					}
					if admitPS > 0 && serial.failed == 0 {
						t.Fatal("admission cell shed nothing; tighten the rate")
					}
					if serial.completed != par.completed || serial.failed != par.failed {
						t.Fatalf("outcome counts diverge: serial %d/%d, parallel %d/%d",
							serial.completed, serial.failed, par.completed, par.failed)
					}
					if serial.metricsJSON != par.metricsJSON {
						t.Fatal("per-request metrics JSON diverges between serial and parallel")
					}
					if serial.failures != par.failures {
						t.Fatalf("failure summaries diverge:\n serial: %s\n parallel: %s",
							serial.failures, par.failures)
					}
					if serial.telemetryJSON != par.telemetryJSON {
						t.Fatal("telemetry export diverges between serial and parallel")
					}
				})
			}
		}
	}
}

// TestWorldRunRepeatable: the same seed twice on the parallel engine gives
// identical bytes — determinism across runs, not just across modes.
func TestWorldRunRepeatable(t *testing.T) {
	a := runWorldCluster(t, 11, cluster.NewLeastLoaded, chaosLowPlan(11), true, false, true, 4)
	b := runWorldCluster(t, 11, cluster.NewLeastLoaded, chaosLowPlan(11), true, false, true, 4)
	if a.metricsJSON != b.metricsJSON || a.failures != b.failures || a.traceBytes != b.traceBytes ||
		a.telemetryJSON != b.telemetryJSON {
		t.Fatal("parallel runs with identical seeds diverge")
	}
}

// compareCells is the byte-for-byte cell comparison shared by the
// speculative matrix below: outcome counts, per-request metrics JSON,
// failure summaries, trace bytes, and the telemetry export.
func compareCells(t *testing.T, total int, serial, par worldRunResult) {
	t.Helper()
	if serial.completed == 0 {
		t.Fatal("no requests completed; workload broken")
	}
	if total > 0 && serial.completed+serial.failed != total {
		t.Fatalf("conservation: %d completed + %d failed != %d",
			serial.completed, serial.failed, total)
	}
	if serial.completed != par.completed || serial.failed != par.failed {
		t.Fatalf("outcome counts diverge: serial %d/%d, parallel %d/%d",
			serial.completed, serial.failed, par.completed, par.failed)
	}
	if serial.metricsJSON != par.metricsJSON {
		t.Fatal("per-request metrics JSON diverges between serial and parallel")
	}
	if serial.failures != par.failures {
		t.Fatalf("failure summaries diverge:\n serial: %s\n parallel: %s",
			serial.failures, par.failures)
	}
	if serial.traceBytes != par.traceBytes {
		t.Fatal("merged trace bytes diverge between serial and parallel")
	}
	if serial.telemetryJSON != par.telemetryJSON {
		t.Fatal("telemetry export diverges between serial and parallel")
	}
}

// TestWorldSpeculativeBitIdentical extends the determinism wall to the
// speculative engine: every column of the matrix — plain cluster, batched,
// faulty (rollback-relevant crash/failover cells), LLM colocated and
// disaggregated, and gateway with admission — must stay byte-for-byte
// serial≡parallel with speculation enabled. Speculation changes *which*
// simulation runs (posts defer to the adaptive barrier), so cells are
// compared spec-serial against spec-parallel, never against conservative.
func TestWorldSpeculativeBitIdentical(t *testing.T) {
	for _, seed := range []int64{1, 3} {
		for _, maxBatch := range []int{0, 4} {
			for _, plan := range []string{"none", "chaos-low"} {
				name := fmt.Sprintf("cluster/seed%d/%s/batch%d", seed, plan, maxBatch)
				t.Run(name, func(t *testing.T) {
					var p *fault.Plan
					if plan == "chaos-low" {
						p = chaosLowPlan(seed)
					}
					traced := seed == 3
					serial := runWorldCluster(t, seed, cluster.NewLeastLoaded, p, false, true, traced, maxBatch)
					par := runWorldCluster(t, seed, cluster.NewLeastLoaded, p, true, true, traced, maxBatch)
					compareCells(t, 90, serial, par)
				})
			}
		}
	}
	for _, seed := range []int64{1, 2} {
		for _, split := range []bool{false, true} {
			name := fmt.Sprintf("llm/seed%d/split=%v", seed, split)
			t.Run(name, func(t *testing.T) {
				serial := runWorldLLM(t, seed, split, false, true)
				par := runWorldLLM(t, seed, split, true, true)
				compareCells(t, 60, serial, par)
			})
		}
	}
	for _, admitPS := range []float64{0, 3000} {
		name := fmt.Sprintf("gateway/admit=%v", admitPS > 0)
		t.Run(name, func(t *testing.T) {
			serial := runWorldGateway(t, 1, gateway.NewPredictedLatency, admitPS, false, true)
			par := runWorldGateway(t, 1, gateway.NewPredictedLatency, admitPS, true, true)
			compareCells(t, 90, serial, par)
		})
	}
}
