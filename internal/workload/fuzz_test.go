package workload

import (
	"bytes"
	"testing"
)

// FuzzTrafficSpecJSON fuzzes the traffic-spec codec: ParseTrafficSpec
// must never panic on arbitrary bytes, any spec it accepts must
// re-validate, and marshal→parse→marshal must be a fixed point — the
// property `paella-sim -traffic spec.json` relies on to reproduce a
// recorded load shape exactly. Accepted non-replay specs also generate a
// tiny clamped trace to exercise the generator on fuzz-shaped parameters
// without unbounded work.
func FuzzTrafficSpecJSON(f *testing.F) {
	f.Add([]byte(`{"shape":"diurnal","mix":{"Models":["a","b"],"Weights":[1,1]},"sigma":1.5,"base_rate_per_sec":4000,"amplitude":0.7,"period_ns":2000000000,"duration_ns":2000000000,"clients":1000000,"seed":1}`))
	f.Add([]byte(`{"shape":"spike","mix":{"Models":["m"],"Weights":[1]},"sigma":2,"base_rate_per_sec":1500,"spike_factor":5,"spike_at_ns":1000000000,"spike_duration_ns":500000000,"jobs":100,"clients":250,"seed":7,"tenants":4}`))
	f.Add([]byte(`{"shape":"constant","mix":{"Models":["m"],"Weights":[1]},"sigma":0,"base_rate_per_sec":100,"jobs":10,"clients":1,"seed":0}`))
	f.Add([]byte(`{"shape":"replay","replay_path":"trace.ndjson"}`))
	f.Add([]byte(`{"shape":"diurnal","amplitude":0.99}`)) // invalid: amplitude + missing fields
	f.Add([]byte(`{"shape":"lunar"}`))                    // invalid: unknown shape
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseTrafficSpec(data)
		if err != nil {
			return // rejected input: the only requirement is "no panic"
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted spec fails Validate: %v", err)
		}
		enc := s.Marshal()
		s2, err := ParseTrafficSpec(enc)
		if err != nil {
			t.Fatalf("marshal of a valid spec does not re-parse: %v\n%s", err, enc)
		}
		if enc2 := s2.Marshal(); !bytes.Equal(enc, enc2) {
			t.Fatalf("round trip not stable:\n%s\nvs\n%s", enc, enc2)
		}
		if s.Shape == ShapeReplay {
			return
		}
		// Generate a bounded sample of the accepted envelope: cap the work
		// so fuzz-shaped rates/durations cannot explode.
		s.Jobs = 64
		s.Duration = 0
		if s.BaseRatePerSec < 1 {
			s.BaseRatePerSec = 1
		}
		if s.BaseRatePerSec > 1e6 {
			s.BaseRatePerSec = 1e6
		}
		reqs, err := GenerateTraffic(s)
		if err != nil {
			return // clamping may have invalidated a Duration-only spec
		}
		prev := reqs[0].At
		for i, r := range reqs {
			if r.At < prev {
				t.Fatalf("arrivals not monotone at %d", i)
			}
			prev = r.At
			if r.Model == "" || r.Client < 0 || r.Client >= s.Clients {
				t.Fatalf("malformed request %d: %+v", i, r)
			}
		}
	})
}
