package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"

	"paella/internal/sim"
)

// Shape selects a traffic generator's rate envelope: how the offered load
// evolves over virtual time. The per-request machinery (lognormal gaps,
// weighted model mix, uniform client/tenant attribution) is shared with
// Generate; the shape only modulates the instantaneous target rate.
type Shape string

const (
	// ShapeConstant is a flat rate — Generate's behaviour, expressed as a
	// TrafficSpec so the autoscaling drivers handle every shape uniformly.
	ShapeConstant Shape = "constant"
	// ShapeDiurnal is a day/night sine: the rate swings around
	// BaseRatePerSec with relative amplitude Amplitude over one Period,
	// starting at the trough (virtual midnight).
	ShapeDiurnal Shape = "diurnal"
	// ShapeSpike is a flash crowd: flat at BaseRatePerSec except for a
	// SpikeFactor× burst during [SpikeAt, SpikeAt+SpikeDuration).
	ShapeSpike Shape = "spike"
	// ShapeReplay replays a recorded NDJSON trace instead of generating
	// arrivals (see ReadNDJSON); the spec only carries the file path.
	ShapeReplay Shape = "replay"
)

// TrafficSpec parameterizes an open-loop, rate-modulated request trace for
// the fleet-autoscaling experiments: millions of simulated clients whose
// offered load ebbs and flows on the virtual clock. The zero value is not
// valid; Validate reports what is missing. Durations serialize as
// nanoseconds (the `_ns` fields), matching the trace interchange format.
type TrafficSpec struct {
	// Shape selects the rate envelope.
	Shape Shape `json:"shape"`
	// Mix is the weighted model mixture (unused for ShapeReplay).
	Mix Mix `json:"mix"`
	// Sigma is the lognormal inter-arrival shape parameter (burstiness).
	Sigma float64 `json:"sigma"`
	// BaseRatePerSec is the envelope's midline offered load in req/s.
	BaseRatePerSec float64 `json:"base_rate_per_sec"`
	// Amplitude is the diurnal swing as a fraction of the base rate, in
	// [0, 0.95]: the peak offers Base·(1+A), the trough Base·(1−A).
	Amplitude float64 `json:"amplitude,omitempty"`
	// Period is the diurnal cycle length (one virtual day).
	Period sim.Time `json:"period_ns,omitempty"`
	// SpikeFactor is the flash-crowd multiplier (> 1).
	SpikeFactor float64 `json:"spike_factor,omitempty"`
	// SpikeAt is when the flash crowd arrives.
	SpikeAt sim.Time `json:"spike_at_ns,omitempty"`
	// SpikeDuration is how long the flash crowd lasts.
	SpikeDuration sim.Time `json:"spike_duration_ns,omitempty"`
	// Duration generates arrivals until this virtual time (0 = use Jobs).
	Duration sim.Time `json:"duration_ns,omitempty"`
	// Jobs caps the number of requests (0 = use Duration). At least one of
	// Jobs and Duration must be set; when both are, the earlier stops.
	Jobs int `json:"jobs,omitempty"`
	// Clients is the submitting-client population; requests draw an index
	// uniformly, so "millions of users" is just a large value here.
	Clients int `json:"clients"`
	// Seed makes the trace reproducible.
	Seed int64 `json:"seed"`
	// Tenants tags requests with a uniformly drawn tenant exactly like
	// Spec.Tenants; zero draws no extra random numbers, keeping untenanted
	// traces bit-identical (the PR 8 invariant).
	Tenants int `json:"tenants,omitempty"`
	// ReplayPath names the NDJSON trace to replay (ShapeReplay only).
	ReplayPath string `json:"replay_path,omitempty"`
}

// Validate reports parameter errors.
func (s TrafficSpec) Validate() error {
	switch s.Shape {
	case ShapeReplay:
		if s.ReplayPath == "" {
			return fmt.Errorf("workload: replay traffic needs replay_path")
		}
		return nil
	case ShapeConstant, ShapeDiurnal, ShapeSpike:
	default:
		return fmt.Errorf("workload: unknown traffic shape %q", s.Shape)
	}
	switch {
	case len(s.Mix.Models) == 0:
		return fmt.Errorf("workload: empty model mix")
	case !(s.Sigma >= 0 && s.Sigma <= 8):
		// Negated form also rejects NaN; σ beyond 8 is no longer a
		// latency distribution, it is an integer-overflow generator.
		return fmt.Errorf("workload: sigma %f outside [0, 8]", s.Sigma)
	case !(s.BaseRatePerSec > 0) || math.IsInf(s.BaseRatePerSec, 0):
		return fmt.Errorf("workload: base rate %f", s.BaseRatePerSec)
	case s.Jobs < 0:
		return fmt.Errorf("workload: jobs %d", s.Jobs)
	case s.Duration < 0:
		return fmt.Errorf("workload: negative duration")
	case s.Jobs == 0 && s.Duration == 0:
		return fmt.Errorf("workload: need jobs or duration")
	case s.Clients <= 0:
		return fmt.Errorf("workload: clients %d", s.Clients)
	case s.Tenants < 0:
		return fmt.Errorf("workload: tenants %d", s.Tenants)
	}
	for _, w := range s.Mix.Weights {
		if w < 0 {
			return fmt.Errorf("workload: negative weight")
		}
	}
	if s.Shape == ShapeDiurnal {
		if !(s.Amplitude >= 0 && s.Amplitude <= 0.95) { // negated form rejects NaN
			return fmt.Errorf("workload: diurnal amplitude %f outside [0, 0.95]", s.Amplitude)
		}
		if s.Period <= 0 {
			return fmt.Errorf("workload: diurnal period %v", s.Period)
		}
	}
	if s.Shape == ShapeSpike {
		if !(s.SpikeFactor > 1 && s.SpikeFactor <= 1e6) { // negated form rejects NaN
			return fmt.Errorf("workload: spike factor %f outside (1, 1e6]", s.SpikeFactor)
		}
		if s.SpikeAt < 0 || s.SpikeDuration <= 0 {
			return fmt.Errorf("workload: spike window [%v, +%v)", s.SpikeAt, s.SpikeDuration)
		}
	}
	return nil
}

// RateAt returns the envelope's instantaneous target rate at virtual time
// t, in req/s. It is exact for constant and spike shapes and the sine
// midline for diurnal; the generator samples it at each arrival.
func (s TrafficSpec) RateAt(t sim.Time) float64 {
	switch s.Shape {
	case ShapeDiurnal:
		phase := 2*math.Pi*float64(t)/float64(s.Period) - math.Pi/2
		return s.BaseRatePerSec * (1 + s.Amplitude*math.Sin(phase))
	case ShapeSpike:
		if t >= s.SpikeAt && t < s.SpikeAt+s.SpikeDuration {
			return s.BaseRatePerSec * s.SpikeFactor
		}
		return s.BaseRatePerSec
	default:
		return s.BaseRatePerSec
	}
}

// GenerateTraffic produces the rate-modulated request trace. Each arrival
// draws its gap from a lognormal whose mean tracks the envelope's current
// rate (RateAt), then its model and client exactly as Generate does — the
// same three draws per request, with the optional tenant draw last, so a
// Tenants == 0 spec consumes no extra randomness. ShapeReplay is not
// generated here: load the recorded trace with ReadNDJSON.
func GenerateTraffic(s TrafficSpec) ([]Request, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Shape == ShapeReplay {
		return nil, fmt.Errorf("workload: replay traffic is loaded with ReadNDJSON, not generated")
	}
	rng := rand.New(rand.NewSource(s.Seed))
	var wsum float64
	for _, w := range s.Mix.Weights {
		wsum += w
	}
	var reqs []Request
	if s.Jobs > 0 {
		reqs = make([]Request, 0, s.Jobs)
	}
	// maxTraceNs bounds the trace horizon (~4.6 virtual days) so a
	// heavy-tailed gap draw can never overflow sim.Time.
	const maxTraceNs = 4e14
	var t float64
	for {
		if s.Jobs > 0 && len(reqs) == s.Jobs {
			break
		}
		rate := s.RateAt(sim.Time(t))
		meanGap := float64(sim.Second) / rate
		mu := math.Log(meanGap) - s.Sigma*s.Sigma/2
		t += math.Exp(mu + s.Sigma*rng.NormFloat64())
		if t > maxTraceNs {
			return nil, fmt.Errorf("workload: trace horizon exceeds %v", sim.Time(maxTraceNs))
		}
		if s.Duration > 0 && sim.Time(t) > s.Duration {
			break
		}
		r := Request{
			At:     sim.Time(t),
			Model:  pickModel(rng, s.Mix, wsum),
			Client: rng.Intn(s.Clients),
		}
		if s.Tenants > 0 {
			r.Tenant = fmt.Sprintf("tenant-%d", rng.Intn(s.Tenants))
		}
		reqs = append(reqs, r)
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("workload: traffic spec generated no requests")
	}
	return reqs, nil
}

// MustGenerateTraffic is GenerateTraffic for known-good specs; it panics on
// error.
func MustGenerateTraffic(s TrafficSpec) []Request {
	reqs, err := GenerateTraffic(s)
	if err != nil {
		panic(err)
	}
	return reqs
}

// ParseTrafficSpec decodes and validates a TrafficSpec from JSON — the
// codec behind `paella-sim -traffic <spec.json>` and the fuzz target. It
// rejects unknown fields so a typo'd knob fails loudly instead of running
// the default silently.
func ParseTrafficSpec(data []byte) (TrafficSpec, error) {
	var s TrafficSpec
	dec := json.NewDecoder(newByteReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return TrafficSpec{}, fmt.Errorf("workload: traffic spec: %w", err)
	}
	// Trailing garbage after the spec object is a malformed file.
	if dec.More() {
		return TrafficSpec{}, fmt.Errorf("workload: traffic spec: trailing data")
	}
	if err := s.Validate(); err != nil {
		return TrafficSpec{}, err
	}
	return s, nil
}

// Marshal encodes the spec as canonical JSON: parse(marshal(s)) round-trips
// to an identical document for any valid spec.
func (s TrafficSpec) Marshal() []byte {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic(err) // no marshal-hostile fields
	}
	return data
}

// newByteReader wraps a byte slice for streaming JSON decode without
// copying (bytes.NewReader would drag in an import for one call site).
func newByteReader(data []byte) io.Reader { return &byteReader{data: data} }

type byteReader struct{ data []byte }

func (r *byteReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

// ndjsonReq is the per-line wire format of an NDJSON trace — identical to
// the array-JSON entry format, one object per line.
type ndjsonReq struct {
	AtNs   int64  `json:"at_ns"`
	Model  string `json:"model"`
	Client int    `json:"client"`
	Tenant string `json:"tenant,omitempty"`
}

// WriteNDJSON streams a trace as newline-delimited JSON, one request per
// line — the interchange format for replaying recorded traffic at
// million-request scale, where a single JSON array would have to be held
// in memory whole to decode.
func WriteNDJSON(w io.Writer, reqs []Request) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range reqs {
		r := &reqs[i]
		if err := enc.Encode(ndjsonReq{
			AtNs: int64(r.At), Model: r.Model, Client: r.Client, Tenant: r.Tenant,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadNDJSON loads a trace previously saved with WriteNDJSON (blank lines
// are skipped), enforcing the same well-formedness rules as ReadJSON:
// monotone non-negative arrivals, named models, non-negative clients.
func ReadNDJSON(r io.Reader) ([]Request, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var out []Request
	prev := sim.Time(-1)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		blank := true
		for _, b := range raw {
			if b != ' ' && b != '\t' && b != '\r' {
				blank = false
				break
			}
		}
		if blank {
			continue
		}
		var jr ndjsonReq
		if err := json.Unmarshal(raw, &jr); err != nil {
			return nil, fmt.Errorf("workload: ndjson line %d: %w", line, err)
		}
		if jr.AtNs < 0 || sim.Time(jr.AtNs) < prev {
			return nil, fmt.Errorf("workload: ndjson arrivals not monotone at line %d", line)
		}
		if jr.Model == "" || jr.Client < 0 {
			return nil, fmt.Errorf("workload: malformed ndjson line %d", line)
		}
		prev = sim.Time(jr.AtNs)
		out = append(out, Request{At: prev, Model: jr.Model, Client: jr.Client, Tenant: jr.Tenant})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workload: empty ndjson trace")
	}
	return out, nil
}
